(* optsample — command-line front end.

   Subcommands:
     repro    — run the paper-reproduction experiments (all or named)
     distinct — estimate a distinct count over two synthetic sets
     maxdom   — estimate max dominance over synthetic traffic
     derive   — machine-derive an estimator with the designer engine
     exists   — query the LP existence oracle *)

open Cmdliner

let ppf = Format.std_formatter

(* Shared -j/--jobs option: 0 = auto (OPTSAMPLE_JOBS env var, else
   Domain.recommended_domain_count). The pool only affects wall-clock
   time; every result is identical to a sequential run. *)
let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of domains for parallel sections (default: the \
           $(b,OPTSAMPLE_JOBS) environment variable, else the recommended \
           domain count). Results are independent of N.")

let pool_of_jobs jobs =
  if jobs > 0 then Numerics.Pool.create ~domains:jobs ()
  else Numerics.Pool.create ()

(* Shared --strict flag: degradations (solver fallbacks, jittered
   retries) abort with a structured diagnostic instead of being recovered
   and logged. *)
let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Treat any solver degradation (fallback chain, jittered retry) \
           as an error: the first one aborts with its structured \
           diagnostic and exit code 2, instead of being recovered and \
           reported on stderr.")

(* Shared observability options: --trace FILE turns full tracing on and
   writes a Chrome trace_event JSON at exit; --metrics prints the
   counter/histogram/cache dump to stderr. Both default to off, leaving
   the instrumentation at its single-branch disabled cost. *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record spans for the whole run and write a Chrome trace_event \
           JSON document to $(docv) (open in chrome://tracing or \
           Perfetto). Implies $(b,--metrics)-level counters.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Collect counters and latency histograms during the run and \
           print them to stderr at exit.")

let with_obs ~trace ~metrics body =
  (match (trace, metrics) with
  | Some _, _ -> Numerics.Obs.set_level Numerics.Obs.Trace
  | None, true -> Numerics.Obs.set_level Numerics.Obs.Metrics
  | None, false -> ());
  body ();
  (match trace with
  | Some path ->
      Numerics.Obs.write_chrome_trace ~path;
      Format.eprintf "trace written to %s@." path
  | None -> ());
  if metrics || trace <> None then
    Format.eprintf "%a@." Numerics.Obs.pp_metrics ()

let with_strict strict body =
  Numerics.Robust.set_mode
    (if strict then Numerics.Robust.Strict else Numerics.Robust.Graceful);
  Numerics.Robust.reset_degradations ();
  match body () with
  | () ->
      let ds = Numerics.Robust.degradations () in
      if ds <> [] then begin
        Format.eprintf "note: %d solver degradation(s) recovered:@."
          (List.length ds);
        List.iter
          (fun d -> Format.eprintf "  %a@." Numerics.Robust.pp_degradation d)
          ds
      end
  | exception Numerics.Robust.Solver_error f ->
      Format.eprintf "solver error: %a@." Numerics.Robust.pp f;
      exit 2

(* ---------- repro ---------- *)

let experiments =
  [
    ("fig1", Experiments.Fig1.run);
    ("table41", Experiments.Table41.run);
    ("table42", Experiments.Table42.run);
    ("fig2", Experiments.Fig2.run);
    ("fig3", Experiments.Fig3.run);
    ("fig4", Experiments.Fig4.run);
    ("fig5", Experiments.Fig5.run);
    ("fig6", Experiments.Fig6.run);
    ("fig7", Experiments.Fig7.run);
    ("table51", Experiments.Table51.run);
    ("thm61", Experiments.Thm61.run);
    ("coeffs", Experiments.Coeffs.run);
    ("coord", Experiments.Coord.run);
    ("bottomk", Experiments.Bottomk.run);
    ("quantiles", Experiments.Quantiles.run);
    ("multiperiod", Experiments.Multiperiod.run);
  ]

let repro_cmd =
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"EXPERIMENT"
          ~doc:"Experiments to run (default: all). One of fig1 table41 \
                table42 fig2 fig3 fig4 fig5 fig6 fig7 table51 thm61 coeffs.")
  in
  let run names jobs strict trace metrics =
    let todo = if names = [] then List.map fst experiments else names in
    match List.filter (fun n -> not (List.mem_assoc n experiments)) todo with
    | _ :: _ as unknown ->
        List.iter
          (fun n -> Format.eprintf "unknown experiment %S@." n)
          unknown;
        exit 1
    | [] ->
        with_obs ~trace ~metrics @@ fun () ->
        with_strict strict @@ fun () ->
        let pool = pool_of_jobs jobs in
        let outputs =
          Numerics.Pool.parallel_list_map pool
            (fun n ->
              let f = List.assoc n experiments in
              Numerics.Obs.span ~cat:"experiment" ("repro." ^ n) @@ fun () ->
              let b = Buffer.create 4096 in
              let bf = Format.formatter_of_buffer b in
              f bf;
              Format.pp_print_flush bf ();
              Buffer.contents b)
            todo
        in
        List.iter (fun out -> Format.fprintf ppf "%s@." out) outputs;
        Numerics.Pool.shutdown pool
  in
  Cmd.v
    (Cmd.info "repro" ~doc:"Reproduce the paper's tables and figures")
    Term.(const run $ names $ jobs_arg $ strict_arg $ trace_arg $ metrics_arg)

(* ---------- distinct ---------- *)

let distinct_cmd =
  let n =
    Arg.(value & opt int 10_000 & info [ "n" ] ~doc:"Per-instance set size.")
  in
  let jaccard =
    Arg.(
      value & opt float 0.5
      & info [ "j"; "jaccard" ] ~doc:"Jaccard coefficient of the two sets.")
  in
  let p =
    Arg.(value & opt float 0.05 & info [ "p" ] ~doc:"Sampling probability.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master seed.") in
  let run n jaccard p seed =
    let a, b = Workload.Setpairs.pair ~n ~jaccard in
    let seeds = Sampling.Seeds.create ~master:seed Sampling.Seeds.Independent in
    let s1 = Aggregates.Distinct.sample_binary seeds ~p ~instance:0 a in
    let s2 = Aggregates.Distinct.sample_binary seeds ~p ~instance:1 b in
    let c =
      Aggregates.Distinct.classify seeds ~p1:p ~p2:p ~s1 ~s2
        ~select:(fun _ -> true)
    in
    let truth = Workload.Setpairs.union_size a b in
    Format.fprintf ppf "truth = %d, sampled %d + %d keys@." truth
      (List.length s1) (List.length s2);
    Format.fprintf ppf "OR^(L)  = %.1f@."
      (Aggregates.Distinct.l_estimate c ~p1:p ~p2:p);
    Format.fprintf ppf "OR^(U)  = %.1f@."
      (Aggregates.Distinct.u_estimate c ~p1:p ~p2:p);
    Format.fprintf ppf "OR^(HT) = %.1f@."
      (Aggregates.Distinct.ht_estimate c ~p1:p ~p2:p);
    let d = float_of_int truth in
    Format.fprintf ppf "exact stddev: L %.1f, HT %.1f@."
      (sqrt (Aggregates.Distinct.var_l ~d ~jaccard ~p1:p ~p2:p))
      (sqrt (Aggregates.Distinct.var_ht ~d ~p1:p ~p2:p))
  in
  Cmd.v
    (Cmd.info "distinct" ~doc:"Distinct count over two sampled sets")
    Term.(const run $ n $ jaccard $ p $ seed)

(* ---------- maxdom ---------- *)

let maxdom_cmd =
  let percent =
    Arg.(
      value & opt float 5.
      & info [ "percent" ] ~doc:"Expected percentage of keys sampled.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Use the full-size Section 8.2 workload.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master seed.") in
  let run percent full seed strict trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    with_strict strict @@ fun () ->
    let params =
      if full then Workload.Traffic.default
      else
        {
          Workload.Traffic.default with
          Workload.Traffic.n_shared = 2_200;
          n_only = 2_700;
          total_per_hour = 1.1e5;
        }
    in
    let ((a, b) as pair) = Workload.Traffic.generate params in
    Format.fprintf ppf "workload: %a@." Workload.Traffic.pp_stats
      (Workload.Traffic.stats pair);
    let instances = [ a; b ] in
    let truth = Sampling.Instance.max_dominance instances in
    let k inst =
      percent /. 100. *. float_of_int (Sampling.Instance.cardinality inst)
    in
    let taus =
      [|
        Sampling.Poisson.tau_for_expected_size a (k a);
        Sampling.Poisson.tau_for_expected_size b (k b);
      |]
    in
    let seeds = Sampling.Seeds.create ~master:seed Sampling.Seeds.Independent in
    let samples = Aggregates.Sum_agg.sample_pps seeds ~taus instances in
    let all _ = true in
    Format.fprintf ppf "truth    = %.4e@." truth;
    Format.fprintf ppf "max^(L)  = %.4e@."
      (Aggregates.Dominance.max_dominance_l samples ~select:all);
    Format.fprintf ppf "max^(HT) = %.4e@."
      (Aggregates.Dominance.max_dominance_ht samples ~select:all);
    let vht, vl =
      Aggregates.Dominance.exact_variances ~taus ~instances ~select:all
    in
    Format.fprintf ppf "exact se: L %.2f%%, HT %.2f%% (Var ratio %.2f)@."
      (100. *. sqrt vl /. truth)
      (100. *. sqrt vht /. truth)
      (vht /. vl)
  in
  Cmd.v
    (Cmd.info "maxdom" ~doc:"Max dominance over two-hour traffic")
    Term.(const run $ percent $ full $ seed $ strict_arg $ trace_arg
          $ metrics_arg)

(* ---------- derive ---------- *)

let derive_cmd =
  let fn =
    Arg.(
      value
      & opt (enum [ ("max", `Max); ("or", `Or); ("min", `Min) ]) `Max
      & info [ "f" ] ~doc:"Function to estimate: max, or, min.")
  in
  let probs =
    Arg.(
      value & opt (list float) [ 0.5; 0.5 ]
      & info [ "p" ] ~doc:"Per-instance sampling probabilities.")
  in
  let grid =
    Arg.(
      value & opt (list float) [ 0.; 1. ]
      & info [ "grid" ] ~doc:"Value grid per entry.")
  in
  let order =
    Arg.(
      value
      & opt (enum [ ("dense", `L); ("sparse", `U) ]) `L
      & info [ "order" ]
          ~doc:"dense = order-based L (Algorithm 1); sparse = partition U \
                (Algorithm 2).")
  in
  let run fn probs grid order strict trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    with_strict strict @@ fun () ->
    let probs = Array.of_list probs in
    let f =
      match fn with
      | `Max -> fun v -> Array.fold_left Float.max 0. v
      | `Min -> fun v -> Array.fold_left Float.min infinity v
      | `Or -> fun v -> if Array.exists (fun x -> x > 0.5) v then 1. else 0.
    in
    let module D = Estcore.Designer in
    let problem = D.Problems.oblivious ~probs ~grid ~f () in
    let result =
      match order with
      | `L ->
          Result.map
            (fun est -> (est, None))
            (D.solve_order (D.Problems.sort_data D.Problems.order_l problem))
      | `U -> (
          let batches =
            D.Problems.batches_by
              (fun v ->
                Array.fold_left (fun a x -> if x > 0. then a + 1 else a) 0 v)
              problem.D.data
          in
          match D.solve_partition_robust ~batches ~f ~dist:problem.D.dist () with
          | Error fl -> Error (Numerics.Robust.to_string fl)
          | Ok { D.estimator; provenance } -> Ok (estimator, Some provenance))
    in
    match result with
    | Error e -> Format.fprintf ppf "no estimator: %s@." e
    | Ok (est, provenance) ->
        Format.fprintf ppf
          "derived estimator (unbiased: %b, min estimate: %.4f):@."
          (D.is_unbiased problem est)
          (D.min_estimate est);
        List.iter
          (fun (k, v) ->
            Format.fprintf ppf "  (%s) -> %.6f@."
              (String.concat ", "
                 (Array.to_list
                    (Array.map
                       (function
                         | None -> "·" | Some x -> Printf.sprintf "%g" x)
                       k)))
              v)
          (List.sort compare (D.bindings est));
        Option.iter
          (fun (p : D.provenance) ->
            Format.fprintf ppf
              "provenance: %d batch(es), %d by clean QP, %d degraded@."
              p.D.batches p.D.qp_clean
              (List.length p.D.degraded);
            List.iter
              (fun b -> Format.fprintf ppf "  %a@." D.pp_batch_outcome b)
              p.D.degraded)
          provenance
  in
  Cmd.v
    (Cmd.info "derive"
       ~doc:"Machine-derive an optimal estimator (Algorithms 1/2)")
    Term.(const run $ fn $ probs $ grid $ order $ strict_arg $ trace_arg
          $ metrics_arg)

(* ---------- catalog ---------- *)

let catalog_cmd =
  let run () = Estcore.Catalog.print ppf in
  Cmd.v
    (Cmd.info "catalog" ~doc:"List the estimators, their models and properties")
    Term.(const run $ const ())

(* ---------- plots ---------- *)

let plots_cmd =
  let dir =
    Arg.(value & opt string "plots" & info [ "dir" ] ~doc:"Output directory.")
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Full-size Figure 7 workload.")
  in
  let run dir full jobs strict trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    with_strict strict @@ fun () ->
    let pool = pool_of_jobs jobs in
    let paths =
      if full then
        Experiments.Figures.write_all ~pool
          ~fig7_params:Workload.Traffic.default ~dir ()
      else Experiments.Figures.write_all ~pool ~dir ()
    in
    List.iter (fun p -> Format.fprintf ppf "%s@." p) paths;
    Numerics.Pool.shutdown pool
  in
  Cmd.v
    (Cmd.info "plots" ~doc:"Render the paper's figures to SVG files")
    Term.(const run $ dir $ full $ jobs_arg $ strict_arg $ trace_arg
          $ metrics_arg)

(* ---------- sample / estimate: the persisted-sample pipeline ---------- *)

let gen_cmd =
  let n = Arg.(value & opt int 5_000 & info [ "n" ] ~doc:"Number of keys.") in
  let zipf = Arg.(value & opt float 0.8 & info [ "zipf" ] ~doc:"Value skew.") in
  let total = Arg.(value & opt float 1e5 & info [ "total" ] ~doc:"Total value.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let out = Arg.(required & opt (some string) None & info [ "o"; "out" ] ~doc:"Output file.") in
  let run n zipf total seed out =
    let insts =
      Workload.Changes.generate
        { Workload.Changes.default with Workload.Changes.n_keys = n; r = 1;
          zipf_s = zipf; total; seed }
    in
    Sampling.Io.write_instance ~path:out (List.hd insts);
    Format.fprintf ppf "wrote %d-key instance to %s@." n out
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic instance file")
    Term.(const run $ n $ zipf $ total $ seed $ out)

let sample_cmd =
  let input = Arg.(required & opt (some file) None & info [ "i"; "input" ] ~doc:"Instance file.") in
  let out = Arg.(required & opt (some string) None & info [ "o"; "out" ] ~doc:"Sample output file.") in
  let k = Arg.(value & opt float 500. & info [ "k" ] ~doc:"Expected sample size.") in
  let master = Arg.(value & opt int 42 & info [ "master" ] ~doc:"Master hash seed (must be shared with `estimate`).") in
  let instance = Arg.(value & opt int 0 & info [ "instance" ] ~doc:"Instance id (position in the later estimate).") in
  let run input out k master instance =
    let inst =
      match Sampling.Io.read_instance_opt ~path:input with
      | Ok i -> i
      | Error e ->
          Format.eprintf "cannot read instance %s: %a@." input
            Sampling.Io.pp_parse_error e;
          exit 1
    in
    if k <= 0. then begin
      Format.eprintf "expected sample size k = %g must be positive@." k;
      exit 1
    end;
    (* k beyond the instance size means "keep everything": tau = 0. *)
    let k = Float.min k (float_of_int (Sampling.Instance.cardinality inst)) in
    let tau = Sampling.Poisson.tau_for_expected_size inst k in
    let seeds = Sampling.Seeds.create ~master Sampling.Seeds.Independent in
    let s = Sampling.Poisson.pps_sample seeds ~instance ~tau inst in
    Sampling.Io.write_pps ~path:out s;
    Format.fprintf ppf
      "sampled %d of %d keys (tau = %g) into %s — the instance can now be        discarded@."
      (List.length s.Sampling.Poisson.entries)
      (Sampling.Instance.cardinality inst)
      tau out
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:"PPS-sample an instance file (what a data source would retain)")
    Term.(const run $ input $ out $ k $ master $ instance)

let estimate_cmd =
  let s1 = Arg.(required & opt (some file) None & info [ "s1" ] ~doc:"Sample of instance 0.") in
  let s2 = Arg.(required & opt (some file) None & info [ "s2" ] ~doc:"Sample of instance 1.") in
  let master = Arg.(value & opt int 42 & info [ "master" ] ~doc:"Master hash seed used when sampling.") in
  let run s1 s2 master strict trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    with_strict strict @@ fun () ->
    let read path =
      match Sampling.Io.read_pps_opt ~path with
      | Ok s -> s
      | Error e ->
          Format.eprintf "cannot read sample %s: %a@." path
            Sampling.Io.pp_parse_error e;
          exit 1
    in
    let a = read s1 in
    let b = read s2 in
    let seeds = Sampling.Seeds.create ~master Sampling.Seeds.Independent in
    let samples =
      {
        Aggregates.Sum_agg.seeds;
        taus = [| a.Sampling.Poisson.tau; b.Sampling.Poisson.tau |];
        samples = [| a; b |];
      }
    in
    let all _ = true in
    Format.fprintf ppf "max-dominance  max^(L)  = %.6e@."
      (Aggregates.Dominance.max_dominance_l samples ~select:all);
    Format.fprintf ppf "max-dominance  max^(HT) = %.6e@."
      (Aggregates.Dominance.max_dominance_ht samples ~select:all);
    Format.fprintf ppf "min-dominance  min^(HT) = %.6e@."
      (Aggregates.Dominance.min_dominance_ht samples ~select:all)
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Estimate multi-instance aggregates from two persisted samples")
    Term.(const run $ s1 $ s2 $ master $ strict_arg $ trace_arg $ metrics_arg)

let outcome_cmd =
  let s1 = Arg.(required & opt (some file) None & info [ "s1" ] ~doc:"Sample of the first instance.") in
  let s2 = Arg.(required & opt (some file) None & info [ "s2" ] ~doc:"Sample of the second instance.") in
  let key = Arg.(required & opt (some int) None & info [ "key" ] ~doc:"Key to reconstruct the outcome of.") in
  let master = Arg.(value & opt int 42 & info [ "master" ] ~doc:"Master hash seed used when sampling.") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "out" ] ~doc:"Persist the outcome to this file.") in
  let run s1 s2 key master out =
    let read path =
      match Sampling.Io.read_pps_opt ~path with
      | Ok s -> s
      | Error e ->
          Format.eprintf "cannot read sample %s: %a@." path
            Sampling.Io.pp_parse_error e;
          exit 1
    in
    let a = read s1 in
    let b = read s2 in
    let seeds = Sampling.Seeds.create ~master Sampling.Seeds.Independent in
    let samples =
      {
        Aggregates.Sum_agg.seeds;
        taus = [| a.Sampling.Poisson.tau; b.Sampling.Poisson.tau |];
        samples = [| a; b |];
      }
    in
    let o = Aggregates.Sum_agg.key_outcome samples key in
    Array.iteri
      (fun i v ->
        match v with
        | Some v ->
            Format.fprintf ppf
              "instance %d: sampled, v = %g (tau = %g, seed = %g)@." i v
              o.Sampling.Outcome.Pps.taus.(i) o.Sampling.Outcome.Pps.seeds.(i)
        | None ->
            Format.fprintf ppf
              "instance %d: not sampled, v < %g (tau = %g, seed = %g)@." i
              (Sampling.Outcome.Pps.upper_bound o i)
              o.Sampling.Outcome.Pps.taus.(i) o.Sampling.Outcome.Pps.seeds.(i))
      o.Sampling.Outcome.Pps.values;
    Format.fprintf ppf "max^(L)  = %.6e@." (Estcore.Max_pps.l o);
    Format.fprintf ppf "max^(HT) = %.6e@." (Estcore.Ht.max_pps o);
    match out with
    | Some path ->
        Sampling.Io.write_outcome ~path o;
        Format.fprintf ppf "outcome written to %s@." path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "outcome"
       ~doc:
         "Reconstruct (and optionally persist) a single key's outcome from \
          two persisted samples")
    Term.(const run $ s1 $ s2 $ key $ master $ out)

(* ---------- serve / client: the streaming summary service ---------- *)

let port_arg =
  (* A bare int would let out-of-range ports truncate inside htons and
     bind somewhere unrelated. *)
  let port_conv =
    let parse s =
      match int_of_string_opt s with
      | Some p when p >= 1 && p <= 65535 -> Ok p
      | _ -> Error (`Msg (Printf.sprintf "port %s not in 1..65535" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt port_conv 7411 & info [ "port" ] ~doc:"TCP port (1-65535).")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Bind/connect address.")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (overrides $(b,--host)/$(b,--port)).")

let serve_cmd =
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ]
          ~doc:
            "Store shard (mailbox) count; 0 = the $(b,-j) pool size. \
             Summaries and answers never depend on it.")
  in
  let master = Arg.(value & opt int 42 & info [ "master" ] ~doc:"Master hash seed.") in
  let shared =
    Arg.(
      value & flag
      & info [ "shared-seeds" ]
          ~doc:
            "Coordinated sampling: all instances share one seed per key \
             (required by the jaccard/l1/union/intersection queries).")
  in
  let tau = Arg.(value & opt float 100. & info [ "tau" ] ~doc:"Default PPS threshold.") in
  let k = Arg.(value & opt int 64 & info [ "k" ] ~doc:"Default bottom-k / VarOpt size.") in
  let p = Arg.(value & opt float 0.05 & info [ "p" ] ~doc:"Default binary sampling probability.") in
  let flush_every =
    Arg.(value & opt int 8192 & info [ "flush-every" ] ~doc:"Auto-flush threshold (pending records).")
  in
  let snapshot =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Warm start: load this snapshot if it exists (write one back \
             with the SNAPSHOT request).")
  in
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"DIR"
          ~doc:
            "Durable op log: recover from the newest checkpoint + log in \
             $(docv) (created if missing), then log every mutating \
             request. SNAPSHOT requests roll the log over as a \
             checkpoint. Excludes $(b,--snapshot).")
  in
  let fsync =
    Arg.(
      value & opt string "always"
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:
            "WAL fsync policy: $(b,always) (no acknowledged record is \
             ever lost), $(b,interval=N) (fsync every N appends), or \
             $(b,never).")
  in
  let max_inflight =
    Arg.(
      value & opt int 65536
      & info [ "max-inflight" ]
          ~doc:
            "Admission limit: shed ingest (structured overloaded error \
             with a retry_after_ms hint) when a shard has this many \
             records pending.")
  in
  let timeout_ms =
    Arg.(
      value & opt int 0
      & info [ "timeout-ms" ]
          ~doc:
            "Per-session read timeout in milliseconds (SO_RCVTIMEO); 0 = \
             none. Idle sessions are answered a structured timeout error \
             and closed.")
  in
  let backlog =
    Arg.(value & opt int 16 & info [ "backlog" ] ~doc:"Listen backlog.")
  in
  let max_line_bytes =
    Arg.(
      value & opt int 8192
      & info [ "max-line-bytes" ]
          ~doc:
            "Reject request lines longer than this (structured error, \
             connection closed).")
  in
  let max_conns =
    Arg.(
      value
      & opt int Server.Daemon.default_config.Server.Daemon.max_conns
      & info [ "max-conns" ]
          ~doc:
            "Maximum simultaneous connections in the event loop (select \
             is FD_SETSIZE-bound, so at most ~960); excess connections \
             wait in the listen backlog.")
  in
  let run host port socket shards master shared tau k p flush_every snapshot
      wal fsync max_inflight timeout_ms backlog max_line_bytes max_conns jobs
      strict trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    with_strict strict @@ fun () ->
    let pool = pool_of_jobs jobs in
    let shards = if shards > 0 then shards else Numerics.Pool.size pool in
    let cfg =
      {
        Server.Store.shards;
        master;
        mode =
          (if shared then Sampling.Seeds.Shared else Sampling.Seeds.Independent);
        default_tau = tau;
        default_k = k;
        default_p = p;
        flush_every;
        max_inflight;
      }
    in
    if wal <> None && snapshot <> None then begin
      Format.eprintf
        "--wal and --snapshot are exclusive: the WAL directory holds its \
         own checkpoints@.";
      exit 1
    end;
    let store, wal_handle =
      match wal with
      | Some dir -> (
          let fsync =
            match Server.Wal.fsync_policy_of_string fsync with
            | Ok p -> p
            | Error m ->
                Format.eprintf "%s@." m;
                exit 1
          in
          let wcfg = { (Server.Wal.default_config ~dir) with fsync } in
          match Server.Wal.recover ~pool ~store_cfg:cfg wcfg with
          | Error m ->
              Format.eprintf "cannot recover from WAL %s: %s@." dir m;
              exit 1
          | Ok r ->
              Format.fprintf ppf
                "wal recovery: %d instance(s), %d op(s) replayed%s%s%s@."
                (List.length (Server.Store.instances r.Server.Wal.store))
                r.Server.Wal.replayed
                (match r.Server.Wal.checkpoint_epoch with
                | Some e -> Printf.sprintf " on checkpoint epoch %d" e
                | None -> " (cold start)")
                (if r.Server.Wal.truncated_bytes > 0 then
                   Printf.sprintf ", %d torn byte(s) dropped"
                     r.Server.Wal.truncated_bytes
                 else "")
                (match r.Server.Wal.skipped_checkpoints with
                | [] -> ""
                | q ->
                    Printf.sprintf ", %d checkpoint(s) quarantined"
                      (List.length q));
              (r.Server.Wal.store, Some r.Server.Wal.wal))
      | None -> (
          match snapshot with
          | Some path when Sys.file_exists path -> (
              match Server.Snapshot.load ~pool ~shards path with
              | Ok st ->
                  Format.fprintf ppf "warm start: %d instance(s) from %s@."
                    (List.length (Server.Store.instances st))
                    path;
                  (st, None)
              | Error e ->
                  Format.eprintf "cannot load snapshot %s: %a@." path
                    Sampling.Io.pp_parse_error e;
                  exit 1)
          | _ -> (Server.Store.create ~pool cfg, None))
    in
    let engine = Server.Engine.create ?wal:wal_handle store in
    let dcfg =
      {
        Server.Daemon.default_config with
        Server.Daemon.backlog;
        max_line_bytes;
        read_timeout_s = float_of_int timeout_ms /. 1000.;
        max_conns;
      }
    in
    let sock =
      match socket with
      | Some path -> (
          match Server.Daemon.listen_unix ~backlog ~path () with
          | Ok sock ->
              Format.fprintf ppf "listening on %s (%d shard(s))@." path shards;
              sock
          | Error m ->
              Format.eprintf "%s@." m;
              exit 1)
      | None ->
          let sock, bound = Server.Daemon.listen_tcp ~host ~backlog ~port () in
          Format.fprintf ppf "listening on %s:%d (%d shard(s))@." host bound
            shards;
          sock
    in
    Server.Daemon.serve ~config:dcfg engine sock;
    Option.iter Server.Wal.close wal_handle;
    Format.fprintf ppf "shutdown@.";
    Numerics.Pool.shutdown pool
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the streaming summary daemon (line protocol, v1)")
    Term.(
      const run $ host_arg $ port_arg $ socket_arg $ shards $ master $ shared
      $ tau $ k $ p $ flush_every $ snapshot $ wal $ fsync $ max_inflight
      $ timeout_ms $ backlog $ max_line_bytes $ max_conns $ jobs_arg
      $ strict_arg $ trace_arg $ metrics_arg)

let client_cmd =
  let requests =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Requests to send (quote each one, e.g. 'QUERY max a b' or \
             'QUERY jaccard a b'). With none, requests are read from stdin, \
             one per line.")
  in
  let retries =
    Arg.(
      value & opt int 5
      & info [ "retries" ]
          ~doc:
            "Retry attempts for dropped connections and overloaded \
             responses (exponential backoff with full jitter, honoring \
             the server's retry_after_ms hint); 1 = fail fast.")
  in
  let retry_base_ms =
    Arg.(
      value & opt int 10
      & info [ "retry-base-ms" ] ~doc:"Base backoff delay in milliseconds.")
  in
  let batch =
    Arg.(
      value & opt int 0
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Coalesce consecutive INGEST requests for one instance into \
             INGESTN batches of up to $(docv) records (one response per \
             batch). Other requests flush the pending batch first. 0 = \
             send every request as-is.")
  in
  let run host port socket retries retry_base_ms batch requests =
    let conn =
      match socket with
      | Some path -> Server.Client.connect_unix ~path
      | None -> Server.Client.connect_tcp ~host ~port ()
    in
    let retry =
      {
        Server.Client.default_retry with
        attempts = max 1 retries;
        base_delay_ms = retry_base_ms;
      }
    in
    match conn with
    | Error m ->
        Format.eprintf "cannot connect: %s@." m;
        exit 1
    | Ok c ->
        let print_response = function
          | Ok response ->
              Format.fprintf ppf "%s@." response;
              Server.Protocol.json_ok response
          | Error m ->
              Format.eprintf "connection error: %s@." m;
              exit 1
        in
        (* PULL / SYNC answer a header plus payload lines — read them
           through request_lines so the payload never desynchronizes the
           connection (left-over lines would be mistaken for the next
           response). *)
        let multiline line =
          match Server.Protocol.parse line with
          | Ok (Server.Protocol.Pull _ | Server.Protocol.Sync) -> true
          | _ -> false
        in
        let send_raw line =
          if multiline line then (
            match Server.Client.request_lines c line with
            | Ok (header, payload) ->
                Format.fprintf ppf "%s@." header;
                List.iter (fun l -> Format.fprintf ppf "%s@." l) payload;
                Server.Protocol.json_ok header
            | Error m ->
                Format.eprintf "connection error: %s@." m;
                exit 1)
          else print_response (Server.Client.request_retry ~retry c line)
        in
        (* --batch coalescer: consecutive INGESTs into one instance pile
           up until the batch is full or a different request (or a
           different instance) flushes them as one INGESTN. *)
        let pending_name = ref "" in
        let pending = ref [] in
        let npending = ref 0 in
        let flush_batch () =
          if !npending = 0 then true
          else begin
            let name = !pending_name in
            let records = Array.of_list (List.rev !pending) in
            pending := [];
            npending := 0;
            print_response (Server.Client.ingest_many ~retry c ~name records)
          end
        in
        let send line =
          if batch <= 0 then send_raw line
          else
            match Server.Protocol.parse line with
            | Ok (Server.Protocol.Ingest { name; key; weight }) ->
                let switched =
                  if !npending > 0 && !pending_name <> name then flush_batch ()
                  else true
                in
                pending_name := name;
                pending := (key, weight) :: !pending;
                incr npending;
                let full = if !npending >= batch then flush_batch () else true in
                switched && full
            | _ -> (
                match flush_batch () with
                | flushed -> send_raw line && flushed)
        in
        let ok =
          if requests <> [] then
            List.fold_left (fun acc r -> send r && acc) true requests
          else begin
            let acc = ref true in
            (try
               while true do
                 let line = input_line stdin in
                 if String.trim line <> "" then acc := send line && !acc
               done
             with End_of_file -> ());
            !acc
          end
        in
        let ok = flush_batch () && ok in
        Server.Client.close c;
        if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send requests to a running optsample daemon and print responses")
    Term.(
      const run $ host_arg $ port_arg $ socket_arg $ retries $ retry_base_ms
      $ batch $ requests)

(* ---------- route: the cluster front door ---------- *)

let route_cmd =
  let backends =
    Arg.(
      value & opt_all string []
      & info [ "backend" ] ~docv:"ADDR"
          ~doc:
            "A storage daemon to route over: $(i,HOST:PORT), $(i,PORT) \
             (localhost), or a Unix-socket path (anything containing a \
             '/'). Repeatable; backend order is the placement order and \
             must be identical across router restarts.")
  in
  let master = Arg.(value & opt int 42 & info [ "master" ] ~doc:"Master hash seed; must match every backend.") in
  let shared =
    Arg.(
      value & flag
      & info [ "shared-seeds" ]
          ~doc:"Coordinated sampling mode; must match every backend.")
  in
  let tau = Arg.(value & opt float 100. & info [ "tau" ] ~doc:"Default PPS threshold for CREATE without one.") in
  let k = Arg.(value & opt int 64 & info [ "k" ] ~doc:"Default bottom-k / VarOpt size.") in
  let p = Arg.(value & opt float 0.05 & info [ "p" ] ~doc:"Default binary sampling probability.") in
  let retries =
    Arg.(
      value & opt int 5
      & info [ "retries" ]
          ~doc:
            "Retry attempts per backend request (dropped connections, \
             overloaded responses); 1 = fail fast.")
  in
  let retry_base_ms =
    Arg.(
      value & opt int 10
      & info [ "retry-base-ms" ] ~doc:"Base backoff delay in milliseconds.")
  in
  let timeout_ms =
    Arg.(
      value & opt int 0
      & info [ "timeout-ms" ]
          ~doc:"Per-session read timeout in milliseconds; 0 = none.")
  in
  let backlog =
    Arg.(value & opt int 16 & info [ "backlog" ] ~doc:"Listen backlog.")
  in
  let max_line_bytes =
    Arg.(
      value & opt int 8192
      & info [ "max-line-bytes" ]
          ~doc:"Reject request lines longer than this.")
  in
  let max_conns =
    Arg.(
      value
      & opt int Server.Daemon.default_config.Server.Daemon.max_conns
      & info [ "max-conns" ]
          ~doc:"Maximum simultaneous connections in the event loop.")
  in
  let parse_backend s =
    if String.contains s '/' then Ok (Unix.ADDR_UNIX s)
    else
      let mk host port =
        match int_of_string_opt port with
        | Some p when p >= 1 && p <= 65535 -> (
            match Unix.inet_addr_of_string host with
            | addr -> Ok (Unix.ADDR_INET (addr, p))
            | exception Failure _ ->
                Error (Printf.sprintf "bad backend host %S" host))
        | _ -> Error (Printf.sprintf "bad backend port %S" port)
      in
      match String.rindex_opt s ':' with
      | Some i ->
          mk (String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1))
      | None -> mk "127.0.0.1" s
  in
  let run host port socket backends master shared tau k p retries retry_base_ms
      timeout_ms backlog max_line_bytes max_conns =
    if backends = [] then begin
      Format.eprintf "route needs at least one --backend@.";
      exit 1
    end;
    let addrs =
      List.map
        (fun s ->
          match parse_backend s with
          | Ok a -> a
          | Error m ->
              Format.eprintf "%s@." m;
              exit 1)
        backends
    in
    let cfg =
      {
        Server.Store.shards = 1;
        master;
        mode =
          (if shared then Sampling.Seeds.Shared else Sampling.Seeds.Independent);
        default_tau = tau;
        default_k = k;
        default_p = p;
        flush_every = 8192;
        max_inflight = 65536;
      }
    in
    let retry =
      {
        Server.Client.default_retry with
        attempts = max 1 retries;
        base_delay_ms = retry_base_ms;
      }
    in
    match Server.Router.connect ~retry ~store_cfg:cfg addrs with
    | Error m ->
        Format.eprintf "cannot start router: %s@." m;
        exit 1
    | Ok t ->
        let dcfg =
          {
            Server.Daemon.default_config with
            Server.Daemon.backlog;
            max_line_bytes;
            read_timeout_s = float_of_int timeout_ms /. 1000.;
            max_conns;
          }
        in
        let sock =
          match socket with
          | Some path -> (
              match Server.Daemon.listen_unix ~backlog ~path () with
              | Ok sock ->
                  Format.fprintf ppf "routing %d backend(s) on %s@."
                    (Server.Router.backend_count t)
                    path;
                  sock
              | Error m ->
                  Format.eprintf "%s@." m;
                  exit 1)
          | None ->
              let sock, bound =
                Server.Daemon.listen_tcp ~host ~backlog ~port ()
              in
              Format.fprintf ppf "routing %d backend(s) on %s:%d@."
                (Server.Router.backend_count t)
                host bound;
              sock
        in
        Server.Router.serve ~config:dcfg t sock;
        Server.Router.close t;
        Format.fprintf ppf "shutdown@."
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Run the cluster router: fan writes to key owners, answer queries \
          from merged summaries (bit-identical to a single node)")
    Term.(
      const run $ host_arg $ port_arg $ socket_arg $ backends $ master $ shared
      $ tau $ k $ p $ retries $ retry_base_ms $ timeout_ms $ backlog
      $ max_line_bytes $ max_conns)

(* ---------- exists ---------- *)

let exists_cmd =
  let fn =
    Arg.(
      value
      & opt (enum [ ("or", `Or); ("xor", `Xor) ]) `Or
      & info [ "f" ] ~doc:"Function: or, xor.")
  in
  let p1 = Arg.(value & opt float 0.3 & info [ "p1" ] ~doc:"Probability 1.") in
  let p2 = Arg.(value & opt float 0.3 & info [ "p2" ] ~doc:"Probability 2.") in
  let known =
    Arg.(value & flag & info [ "known-seeds" ] ~doc:"Seeds available.")
  in
  let run fn p1 p2 known =
    let feasible =
      match (fn, known) with
      | `Or, false -> Estcore.Existence.or_unknown_seeds ~p1 ~p2
      | `Or, true -> Estcore.Existence.or_known_seeds ~p1 ~p2
      | `Xor, false -> Estcore.Existence.xor_unknown_seeds ~p1 ~p2
      | `Xor, true ->
          Estcore.Existence.exists
            (Estcore.Designer.Problems.binary_known_seeds ~probs:[| p1; p2 |]
               ~f:(fun v ->
                 if (v.(0) > 0.5) <> (v.(1) > 0.5) then 1. else 0.)
               ())
    in
    Format.fprintf ppf
      "nonnegative unbiased estimator %s (p = %.2f, %.2f, %s seeds)@."
      (if feasible then "EXISTS" else "DOES NOT EXIST")
      p1 p2
      (if known then "known" else "unknown")
  in
  Cmd.v
    (Cmd.info "exists" ~doc:"LP existence oracle (Theorem 6.1)")
    Term.(const run $ fn $ p1 $ p2 $ known)

let () =
  let info =
    Cmd.info "optsample" ~version:"1.0.0"
      ~doc:
        "Optimal unbiased estimators over sampled instances (Cohen & \
         Kaplan, PODS 2011)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            repro_cmd; distinct_cmd; maxdom_cmd; derive_cmd; exists_cmd;
            gen_cmd; sample_cmd; estimate_cmd; outcome_cmd; serve_cmd;
            route_cmd; client_cmd; plots_cmd; catalog_cmd;
          ]))
