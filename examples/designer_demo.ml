(* The estimator designer: machine-derive Pareto-optimal unbiased
   estimators for schemes the paper does not tabulate, and certify
   (im)possibility results.

     dune exec examples/designer_demo.exe

   1. Derive max^(L) for r = 3 instances with *different* sampling
      probabilities (the paper's closed form covers uniform p only) on a
      small value grid, check it, and print the outcome table.
   2. Derive the symmetric sparse-first OR^(U) for r = 3.
   3. Ask the LP oracle where estimating OR without seed knowledge is
      possible (Theorem 6.1's boundary p₁ + p₂ ≥ 1). *)

module D = Estcore.Designer

let vmax v = Array.fold_left Float.max 0. v

let pp_key ppf k =
  Format.fprintf ppf "(%s)"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (function None -> "·" | Some x -> Printf.sprintf "%g" x)
             k)))

let () =
  (* --- 1. Order-based (Algorithm 1) derivation, r = 3, non-uniform p. *)
  let probs = [| 0.3; 0.5; 0.7 |] in
  let grid = [ 0.; 1.; 2. ] in
  Format.printf
    "1. max^(L) for r = 3, p = (0.3, 0.5, 0.7), values {0,1,2} — a case \
     the paper leaves to its general recursion (our library instantiates \
     it as Max_oblivious.l_r3; the engine must agree):@.";
  let problem =
    D.Problems.oblivious ~probs ~grid ~f:vmax ()
    |> D.Problems.sort_data D.Problems.order_l
  in
  (match D.solve_order problem with
  | Error e -> Format.printf "  derivation failed: %s@." e
  | Ok est ->
      Format.printf "  unbiased on all %d data vectors: %b; min estimate %.3f@."
        (List.length problem.D.data)
        (D.is_unbiased problem est)
        (D.min_estimate est);
      Format.printf "  sample of the derived outcome table:@.";
      D.bindings est
      |> List.sort compare
      |> List.filteri (fun i _ -> i mod 7 = 0)
      |> List.iter (fun (k, v) ->
             Format.printf "    f(%a) = %.4f@." pp_key k v);
      let agrees =
        List.for_all
          (fun (k, v) ->
            let o = { Sampling.Outcome.Oblivious.probs; values = k } in
            Numerics.Special.float_equal ~eps:1e-7
              (Estcore.Max_oblivious.l_r3 o)
              v)
          (D.bindings est)
      in
      Format.printf "  agrees with the closed-form recursion (l_r3): %b@."
        agrees;
      (* Variance comparison against HT on a representative vector. *)
      let v = [| 2.; 1.; 1. |] in
      let var_ht =
        (Estcore.Exact.oblivious ~probs ~v Estcore.Ht.max_oblivious)
          .Estcore.Exact.var
      in
      Format.printf "  on data (2,1,1): Var[derived] = %.3f vs Var[HT] = %.3f@."
        (D.variance problem est v) var_ht);

  (* --- 2. Ordered-partition (Algorithm 2) derivation: OR^(U), r = 3. *)
  Format.printf
    "@.2. sparse-first symmetric OR^(U) for r = 3, p = 0.25 each:@.";
  let probs = [| 0.25; 0.25; 0.25 |] in
  let or3 v = if vmax v > 0.5 then 1. else 0. in
  let problem = D.Problems.oblivious ~probs ~grid:[ 0.; 1. ] ~f:or3 () in
  let batches =
    D.Problems.batches_by
      (fun v -> Array.fold_left (fun a x -> if x > 0. then a + 1 else a) 0 v)
      problem.D.data
  in
  (match D.solve_partition ~batches ~f:or3 ~dist:problem.D.dist () with
  | Error e -> Format.printf "  derivation failed: %s@." e
  | Ok est ->
      Format.printf "  unbiased: %b, nonnegative: %b@."
        (D.is_unbiased problem est)
        (D.min_estimate est >= -1e-7);
      List.iter
        (fun (k, v) ->
          if abs_float v > 1e-9 then Format.printf "    f(%a) = %.4f@." pp_key k v)
        (List.sort compare (D.bindings est)));

  (* --- 3. Existence certificates (Theorem 6.1). *)
  Format.printf
    "@.3. can OR of two bits be estimated without seed knowledge?@.";
  List.iter
    (fun p ->
      Format.printf "   p1 = p2 = %.2f: %s@." p
        (if Estcore.Existence.or_unknown_seeds ~p1:p ~p2:p then
           "yes — LP feasible"
         else "no — LP infeasible (Theorem 6.1)"))
    [ 0.2; 0.4; 0.5; 0.55; 0.8 ];
  Format.printf
    "   (with known seeds it is always possible: p = 0.05 → %b)@."
    (Estcore.Existence.or_known_seeds ~p1:0.05 ~p2:0.05)
