(* The merge algebra behind cluster mode, and the cluster itself.

   In-process: payload round trips, the strict parser's guards, and the
   laws — merge is commutative, associative up to bit-identity, has the
   empty summary as identity, and reproduces a single store's summaries
   bit-for-bit when per-key weight sums are exact (disjoint partitions
   always; overlapping keys with dyadic weights). Ingestion order across
   keys never changes a byte of a snapshot, a PULL payload or STATS.

   End to end: 2- and 4-daemon clusters behind the router answer all
   four query kinds byte-identically to a single daemon that ingested
   everything — including after one daemon is killed and its partition
   recovered from a SYNC-shipped checkpoint on a fresh process. *)

module P = Server.Protocol
module Store = Server.Store
module Merge = Server.Merge
module Engine = Server.Engine
module Router = Server.Router
module Daemon = Server.Daemon
module Client = Server.Client
module Snapshot = Server.Snapshot

let master = 4242
let tau = 50.
let k = 32
let p = 0.2

let cfg ?(shards = 1) ?(mode = Sampling.Seeds.Independent) () =
  { Store.default_config with Store.shards; master; flush_every = 4096; mode }

let seeds ?(mode = Sampling.Seeds.Independent) () =
  Sampling.Seeds.create ~master mode

(* Quarter-unit weights: dyadic rationals whose sums stay exact in
   binary floating point at these magnitudes, so re-associating additions
   (what a merge does to overlapping keys) cannot change a bit. *)
let records ~seed n =
  let rng = Numerics.Prng.create ~seed () in
  Array.init n (fun _ ->
      ( 1 + Numerics.Prng.int rng 512,
        0.25 *. float_of_int (1 + Numerics.Prng.int rng 64) ))

let ingest_all st name recs =
  Array.iter
    (fun (key, weight) ->
      match Store.ingest st ~name ~key ~weight with
      | Ok () -> ()
      | Error e -> Alcotest.failf "ingest: %s" (Store.ingest_error_to_string e))
    recs

(* One store, instances created in a fixed order, each fed its records. *)
let store_of ?mode parts =
  let st = Store.create (cfg ?mode ()) in
  List.iter
    (fun (name, _) ->
      match Store.create_instance st ~name ~tau ~k ~p () with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "create %s: %s" name m)
    parts;
  List.iter (fun (name, recs) -> ingest_all st name recs) parts;
  Store.flush st;
  st

let export st name =
  match Store.find st name with
  | Some inst -> Store.export_summary inst
  | None -> Alcotest.failf "instance %s missing" name

let merge_exn a b =
  match Merge.merge (seeds ()) a b with
  | Ok s -> s
  | Error m -> Alcotest.failf "merge: %s" m

let check_payload msg expected actual =
  Alcotest.(check (list string)) msg (Merge.payload expected)
    (Merge.payload actual)

(* ------------------------------------------------------------------ *)
(* Payload round trip and parser guards                                 *)
(* ------------------------------------------------------------------ *)

let test_payload_roundtrip () =
  let st = store_of [ ("a", records ~seed:11 2000) ] in
  let s = export st "a" in
  let lines = Merge.payload s in
  Alcotest.(check bool) "payload is nonempty" true (List.length lines > 2);
  match Merge.of_lines lines with
  | Error m -> Alcotest.failf "of_lines rejected its own payload: %s" m
  | Ok s' ->
      check_payload "payload round trips bit-for-bit" s s';
      Alcotest.(check int) "records survive" s.Store.s_records
        s'.Store.s_records

let test_of_lines_guards () =
  let st = store_of [ ("a", records ~seed:12 400) ] in
  let lines = Merge.payload (export st "a") in
  let reject msg mutate =
    match Merge.of_lines (mutate lines) with
    | Ok _ -> Alcotest.failf "%s: expected a parse error" msg
    | Error e ->
        Alcotest.(check bool)
          (msg ^ " carries a message")
          true
          (String.length e > 0)
  in
  reject "empty payload" (fun _ -> []);
  reject "missing end" (fun ls ->
      List.filter (fun l -> l <> "end") ls);
  reject "trailing garbage" (fun ls -> ls @ [ "w 9 0x1p0" ]);
  reject "descending keys" (fun ls ->
      List.concat_map
        (fun l ->
          if String.length l > 2 && String.sub l 0 2 = "w " then
            [ l; "w 0 0x1p0" ]
          else [ l ])
        ls);
  reject "sampled key without a weight" (fun ls ->
      List.concat_map
        (fun l ->
          if String.length l > 8 && String.sub l 0 8 = "summary " then
            [ l; "s 1000000 0x1p0" ]
          else [ l ])
        ls);
  reject "section out of order" (fun ls ->
      (* move the first weight line to the very end, after the samples *)
      match
        List.partition
          (fun l -> String.length l > 2 && String.sub l 0 2 = "w ")
          ls
      with
      | w :: ws, rest ->
          List.filter (fun l -> l <> "end") (ws @ rest) @ [ w; "end" ]
      | [], _ -> [ "not a payload" ])

(* ------------------------------------------------------------------ *)
(* The algebra                                                          *)
(* ------------------------------------------------------------------ *)

let test_merge_empty_identity () =
  let st = store_of [ ("a", records ~seed:21 1500) ] in
  let empty_st = store_of [ ("a", [||]) ] in
  let s = export st "a" in
  let e = export empty_st "a" in
  check_payload "empty is a right identity" s (merge_exn s e);
  check_payload "empty is a left identity" s (merge_exn e s)

let test_merge_commutative () =
  let s1 = export (store_of [ ("a", records ~seed:31 1200) ]) "a" in
  let s2 = export (store_of [ ("a", records ~seed:32 1300) ]) "a" in
  check_payload "merge commutes (overlapping keys)" (merge_exn s1 s2)
    (merge_exn s2 s1)

let test_merge_associative () =
  let s1 = export (store_of [ ("a", records ~seed:41 900) ]) "a" in
  let s2 = export (store_of [ ("a", records ~seed:42 900) ]) "a" in
  let s3 = export (store_of [ ("a", records ~seed:43 900) ]) "a" in
  check_payload "merge associates bit-for-bit"
    (merge_exn (merge_exn s1 s2) s3)
    (merge_exn s1 (merge_exn s2 s3))

let test_merge_rejects_mismatch () =
  let s1 = export (store_of [ ("a", records ~seed:51 100) ]) "a" in
  let st2 = Store.create (cfg ()) in
  (match Store.create_instance st2 ~name:"a" ~tau:(tau *. 2.) ~k ~p () with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "create: %s" m);
  Store.flush st2;
  let s2 = export st2 "a" in
  match Merge.merge (seeds ()) s1 s2 with
  | Ok _ -> Alcotest.fail "merging mismatched tau must fail"
  | Error m ->
      Alcotest.(check bool) "diagnostic names the mismatch" true
        (String.length m > 0)

(* merge (ingest A) (ingest B) = ingest (A ∪ B), overlapping keys, on
   dyadic weights — the strongest exactness claim. *)
let test_merge_equals_union_overlap () =
  let ra = records ~seed:61 1100 and rb = records ~seed:62 1400 in
  let sa = export (store_of [ ("a", ra) ]) "a" in
  let sb = export (store_of [ ("a", rb) ]) "a" in
  let union = export (store_of [ ("a", Array.append ra rb) ]) "a" in
  check_payload "merge of overlapping halves equals the union ingest" union
    (merge_exn sa sb)

(* The router's law: partition the stream by key ownership across 1, 2
   and 4 stores; the merged summaries — and every query answer computed
   from them — are bit-identical to the unpartitioned store. Shared-mode
   stores additionally survive a snapshot → restart round trip with
   byte-identical answers (the snapshot header carries the seed mode). *)
let check_partitions_equal_single_node ?mode kinds =
  let names = [ "a"; "b" ] in
  let recs = [ ("a", records ~seed:71 3000); ("b", records ~seed:72 3000) ] in
  let single = store_of ?mode recs in
  let single_engine = Engine.create single in
  let query_all e =
    List.map
      (fun kind ->
        match Engine.query e kind names with
        | Ok r -> r
        | Error m -> Alcotest.failf "query: %s" m)
      kinds
  in
  let reference = query_all single_engine in
  List.iter
    (fun nparts ->
      let stores =
        Array.init nparts (fun _ ->
            let st = Store.create (cfg ?mode ()) in
            List.iter
              (fun name ->
                match Store.create_instance st ~name ~tau ~k ~p () with
                | Ok _ -> ()
                | Error m -> Alcotest.failf "create: %s" m)
              names;
            st)
      in
      List.iter
        (fun (name, rs) ->
          Array.iter
            (fun ((key, weight) : int * float) ->
              let o = Router.owner ~backends:nparts key in
              match Store.ingest stores.(o) ~name ~key ~weight with
              | Ok () -> ()
              | Error e ->
                  Alcotest.failf "ingest: %s" (Store.ingest_error_to_string e))
            rs)
        recs;
      Array.iter Store.flush stores;
      let merged_summaries =
        List.map
          (fun name ->
            let parts =
              Array.to_list (Array.map (fun st -> export st name) stores)
            in
            match Merge.merge_all (seeds ?mode ()) parts with
            | Ok s -> s
            | Error m -> Alcotest.failf "merge_all: %s" m)
          names
      in
      List.iter2
        (fun name merged ->
          check_payload
            (Printf.sprintf "%s over %d partitions equals single node" name
               nparts)
            (export single name) merged)
        names merged_summaries;
      match Merge.materialize (cfg ?mode ()) merged_summaries with
      | Error m -> Alcotest.failf "materialize: %s" m
      | Ok st ->
          Alcotest.(check (list string))
            (Printf.sprintf "answers over %d partitions bit-identical" nparts)
            reference
            (query_all (Engine.create st));
          (* ... and again on the store a restart would reload. *)
          let reloaded =
            match Snapshot.of_string_r (Snapshot.to_string st) with
            | Ok st' -> st'
            | Error e ->
                Alcotest.failf "snapshot reload: %s"
                  (Sampling.Io.parse_error_to_string e)
          in
          Alcotest.(check (list string))
            (Printf.sprintf
               "answers after snapshot restart bit-identical (%d partitions)"
               nparts)
            reference
            (query_all (Engine.create reloaded)))
    [ 1; 2; 4 ]

let test_partitions_equal_single_node () =
  check_partitions_equal_single_node [ P.Max; P.Or; P.Distinct; P.Dominance ]

let test_partitions_equal_single_node_similarity () =
  check_partitions_equal_single_node ~mode:Sampling.Seeds.Shared
    [ P.Jaccard; P.L1; P.Union; P.Intersection ]

(* Satellite: ingestion order across keys never changes a byte — same
   records forward and reversed give identical snapshots, PULL payloads
   and STATS. (Per-key arrival order is the only order summaries depend
   on; distinct keys make any interleaving equivalent.) *)
let test_order_independent_exports () =
  let n = 1500 in
  let rng = Numerics.Prng.create ~seed:81 () in
  let recs =
    Array.init n (fun i ->
        ((i * 7) + 1, 0.25 *. float_of_int (1 + Numerics.Prng.int rng 64)))
  in
  let rev = Array.of_list (List.rev (Array.to_list recs)) in
  let st1 = store_of [ ("a", recs) ] in
  let st2 = store_of [ ("a", rev) ] in
  Alcotest.(check string) "snapshots byte-identical across ingest orders"
    (Snapshot.to_string st1) (Snapshot.to_string st2);
  check_payload "PULL payloads byte-identical across ingest orders"
    (export st1 "a") (export st2 "a");
  let stats st =
    let response, _ = Engine.handle_request (Engine.create st) P.Stats in
    response
  in
  Alcotest.(check string) "STATS byte-identical across ingest orders"
    (stats st1) (stats st2)

(* ------------------------------------------------------------------ *)
(* End to end: the cluster                                              *)
(* ------------------------------------------------------------------ *)

let connect_exn where = function
  | Ok c -> c
  | Error m -> Alcotest.failf "connect %s: %s" where m

let ok_exn c line =
  match Client.request_retry c line with
  | Ok resp ->
      if not (P.json_ok resp) then
        Alcotest.failf "request %S answered %s" line resp;
      resp
  | Error m -> Alcotest.failf "request %S: %s" line m

let create_line name = Printf.sprintf "CREATE %s tau=%g k=%d p=%g" name tau k p

(* Mixed ingestion — half single INGEST lines, half one INGESTN batch —
   through whatever endpoint [c] is (a daemon or the router). *)
let feed c name recs =
  let n = Array.length recs in
  let half = n / 2 in
  Array.iter
    (fun (key, weight) ->
      ignore (ok_exn c (Printf.sprintf "INGEST %s %d %h" name key weight)))
    (Array.sub recs 0 half);
  match Client.ingest_many c ~name (Array.sub recs half (n - half)) with
  | Ok resp ->
      if not (P.json_ok resp) then Alcotest.failf "ingest_many answered %s" resp
  | Error m -> Alcotest.failf "ingest_many: %s" m

let default_kinds = [ "max"; "or"; "distinct"; "dominance" ]
let similarity_kinds = [ "jaccard"; "l1"; "union"; "intersection" ]

let queries ?(kinds = default_kinds) c =
  List.map (fun kind -> ok_exn c (Printf.sprintf "QUERY %s a b" kind)) kinds

let e2e_recs () =
  [ ("a", records ~seed:91 1200); ("b", records ~seed:92 1200) ]

(* Reference: one daemon, no router. *)
let single_node_answers ?mode ?kinds recs =
  let daemon = Daemon.start (Engine.create (Store.create (cfg ?mode ()))) in
  let c =
    connect_exn "daemon" (Client.connect_tcp ~port:(Daemon.port daemon) ())
  in
  List.iter (fun (name, _) -> ignore (ok_exn c (create_line name))) recs;
  List.iter (fun (name, rs) -> feed c name rs) recs;
  let answers = queries ?kinds c in
  ignore (ok_exn c "SHUTDOWN");
  Client.close c;
  Daemon.join daemon;
  answers

let cluster_answers ?mode ?kinds ?probe ~nbackends recs =
  let backends =
    Array.init nbackends (fun _ ->
        Daemon.start (Engine.create (Store.create (cfg ?mode ()))))
  in
  let addrs =
    Array.to_list
      (Array.map
         (fun d ->
           Unix.ADDR_INET
             (Unix.inet_addr_of_string "127.0.0.1", Daemon.port d))
         backends)
  in
  let router =
    match Router.connect ~store_cfg:(cfg ?mode ()) addrs with
    | Ok t -> t
    | Error m -> Alcotest.failf "router connect: %s" m
  in
  let rd = Router.start router in
  let c = connect_exn "router" (Client.connect_tcp ~port:(Daemon.port rd) ()) in
  List.iter (fun (name, _) -> ignore (ok_exn c (create_line name))) recs;
  List.iter (fun (name, rs) -> feed c name rs) recs;
  let answers = queries ?kinds c in
  Option.iter (fun f -> f c) probe;
  ignore (ok_exn c "SHUTDOWN");
  Client.close c;
  Daemon.join rd;
  Router.close router;
  Array.iter
    (fun d ->
      let bc =
        connect_exn "backend" (Client.connect_tcp ~port:(Daemon.port d) ())
      in
      ignore (ok_exn bc "SHUTDOWN");
      Client.close bc;
      Daemon.join d)
    backends;
  answers

let test_e2e_cluster_bit_identical () =
  let recs = e2e_recs () in
  let reference = single_node_answers recs in
  List.iter
    (fun nbackends ->
      Alcotest.(check (list string))
        (Printf.sprintf "%d-daemon cluster bit-identical to single node"
           nbackends)
        reference
        (cluster_answers ~nbackends recs))
    [ 2; 4 ]

(* The similarity verbs through the router: PULL → merge → materialize →
   local L* answers byte-identical to a single shared-seed daemon. The
   probe also pins the router's refusal discipline — an unknown query
   kind is answered [kind="bad_request"] on the same connection, which
   keeps serving afterwards. *)
let test_e2e_cluster_similarity_bit_identical () =
  let recs = e2e_recs () in
  let mode = Sampling.Seeds.Shared in
  let kinds = similarity_kinds @ default_kinds in
  let reference = single_node_answers ~mode ~kinds recs in
  let probe c =
    match Client.request_retry c "QUERY frobnicate a b" with
    | Error m -> Alcotest.failf "router dropped an unknown kind: %s" m
    | Ok resp ->
        Alcotest.(check bool) "unknown kind answered not-ok" false
          (P.json_ok resp);
        Alcotest.(check (option string)) "unknown kind is bad_request"
          (Some "bad_request")
          (P.json_field "kind" resp);
        ignore (ok_exn c "STATS")
  in
  List.iter
    (fun nbackends ->
      Alcotest.(check (list string))
        (Printf.sprintf
           "%d-daemon cluster similarity answers bit-identical to single node"
           nbackends)
        reference
        (cluster_answers ~mode ~kinds ~probe ~nbackends recs))
    [ 2; 4 ]

(* Failover: kill a daemon, recover its partition on a fresh process from
   a SYNC-shipped checkpoint, and keep ingesting — final answers must
   equal a single node that saw everything. Backends live on Unix-socket
   paths so the replacement daemon is reachable at the dead one's
   address. *)
let sock_path i =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "optsample-merge-%d-%d.sock" (Unix.getpid ()) i)

let spawn_unix_daemon ~path engine =
  match Daemon.listen_unix ~path () with
  | Error m -> Alcotest.failf "listen %s: %s" path m
  | Ok sock -> Domain.spawn (fun () -> Daemon.serve engine sock)

let test_e2e_failover_checkpoint () =
  let recs = e2e_recs () in
  let half (name, rs) =
    let n = Array.length rs in
    ((name, Array.sub rs 0 (n / 2)), (name, Array.sub rs (n / 2) (n - n / 2)))
  in
  let first, second = List.split (List.map half recs) in
  let reference = single_node_answers recs in
  let paths = [ sock_path 0; sock_path 1 ] in
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
  let dom1 =
    spawn_unix_daemon ~path:(List.nth paths 0)
      (Engine.create (Store.create (cfg ())))
  in
  let dom2 =
    spawn_unix_daemon ~path:(List.nth paths 1)
      (Engine.create (Store.create (cfg ())))
  in
  let addrs = List.map (fun p -> Unix.ADDR_UNIX p) paths in
  let router =
    match Router.connect ~store_cfg:(cfg ()) addrs with
    | Ok t -> t
    | Error m -> Alcotest.failf "router connect: %s" m
  in
  let rd = Router.start router in
  let c = connect_exn "router" (Client.connect_tcp ~port:(Daemon.port rd) ()) in
  List.iter (fun (name, _) -> ignore (ok_exn c (create_line name))) recs;
  List.iter (fun (name, rs) -> feed c name rs) first;
  (* Ship backend 0's checkpoint over SYNC, then kill it. *)
  let b0 =
    connect_exn "backend 0" (Client.connect_unix ~path:(List.nth paths 0))
  in
  let shipped =
    match Client.request_lines b0 "SYNC" with
    | Ok (header, lines) ->
        if not (P.json_ok header) then
          Alcotest.failf "SYNC answered %s" header;
        String.concat "\n" lines ^ "\n"
    | Error m -> Alcotest.failf "SYNC: %s" m
  in
  ignore (ok_exn b0 "SHUTDOWN");
  Client.close b0;
  Domain.join dom1;
  (* Recover the partition on a fresh daemon at the same address. *)
  let st0 =
    match Snapshot.of_string_r shipped with
    | Ok st -> st
    | Error e ->
        Alcotest.failf "shipped checkpoint unusable: %s"
          (Sampling.Io.parse_error_to_string e)
  in
  let dom1' = spawn_unix_daemon ~path:(List.nth paths 0) (Engine.create st0) in
  (* Keep ingesting through the router (its connection to backend 0
     re-dials transparently), then compare. *)
  List.iter (fun (name, rs) -> feed c name rs) second;
  Alcotest.(check (list string))
    "answers after failover bit-identical to an uninterrupted single node"
    reference (queries c);
  ignore (ok_exn c "SHUTDOWN");
  Client.close c;
  Daemon.join rd;
  Router.close router;
  List.iteri
    (fun i path ->
      let bc =
        connect_exn
          (Printf.sprintf "backend %d" i)
          (Client.connect_unix ~path)
      in
      ignore (ok_exn bc "SHUTDOWN");
      Client.close bc)
    paths;
  Domain.join dom1';
  Domain.join dom2;
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths

(* SYNC under a WAL rolls the log over: the response carries a fresh
   epoch each time, and the shipped text is a loadable snapshot. *)
let test_sync_checkpoints_wal () =
  let dir = Filename.temp_file "merge-wal" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let wcfg = Server.Wal.default_config ~dir in
  let r =
    match Server.Wal.recover ~store_cfg:(cfg ()) wcfg with
    | Ok r -> r
    | Error m -> Alcotest.failf "wal recover: %s" m
  in
  let daemon =
    Daemon.start (Engine.create ~wal:r.Server.Wal.wal r.Server.Wal.store)
  in
  let c =
    connect_exn "daemon" (Client.connect_tcp ~port:(Daemon.port daemon) ())
  in
  ignore (ok_exn c (create_line "a"));
  ignore (ok_exn c "INGEST a 7 1.5");
  let sync () =
    match Client.request_lines c "SYNC" with
    | Ok (header, lines) ->
        if not (P.json_ok header) then
          Alcotest.failf "SYNC answered %s" header;
        let epoch =
          match
            Option.bind (P.json_field "epoch" header) int_of_string_opt
          with
          | Some e -> e
          | None -> Alcotest.failf "SYNC under a WAL must report an epoch"
        in
        (epoch, String.concat "\n" lines ^ "\n")
    | Error m -> Alcotest.failf "SYNC: %s" m
  in
  let e1, shipped = sync () in
  ignore (ok_exn c "INGEST a 9 2.5");
  let e2, _ = sync () in
  Alcotest.(check bool) "each SYNC rolls a fresh epoch" true (e2 > e1);
  (match Snapshot.of_string_r shipped with
  | Ok st ->
      Alcotest.(check int) "shipped checkpoint holds the instance" 1
        (List.length (Store.instances st))
  | Error e ->
      Alcotest.failf "shipped checkpoint unusable: %s"
        (Sampling.Io.parse_error_to_string e));
  ignore (ok_exn c "SHUTDOWN");
  Client.close c;
  Daemon.join daemon;
  Server.Wal.close r.Server.Wal.wal

let () =
  Alcotest.run "merge"
    [
      ( "payload",
        [
          Alcotest.test_case "round trip" `Quick test_payload_roundtrip;
          Alcotest.test_case "strict parser guards" `Quick
            test_of_lines_guards;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "empty identity" `Quick test_merge_empty_identity;
          Alcotest.test_case "commutative" `Quick test_merge_commutative;
          Alcotest.test_case "associative" `Quick test_merge_associative;
          Alcotest.test_case "config mismatch rejected" `Quick
            test_merge_rejects_mismatch;
          Alcotest.test_case "overlap merge equals union ingest" `Quick
            test_merge_equals_union_overlap;
          Alcotest.test_case "1/2/4 partitions equal single node" `Slow
            test_partitions_equal_single_node;
          Alcotest.test_case
            "similarity over 1/2/4 partitions equals single node, survives \
             restart"
            `Slow test_partitions_equal_single_node_similarity;
          Alcotest.test_case "exports independent of ingest order" `Quick
            test_order_independent_exports;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "2/4-daemon cluster bit-identical" `Slow
            test_e2e_cluster_bit_identical;
          Alcotest.test_case
            "shared-seed cluster serves similarity bit-identical" `Slow
            test_e2e_cluster_similarity_bit_identical;
          Alcotest.test_case "failover from shipped checkpoint" `Slow
            test_e2e_failover_checkpoint;
          Alcotest.test_case "sync checkpoints the wal" `Quick
            test_sync_checkpoints_wal;
        ] );
    ]
