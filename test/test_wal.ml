(* Durability & overload tests: the CRC'd writer, WAL frames, recovery
   (checkpoint + delta, torn tails, corrupt-checkpoint fallback), the
   crash-recovery property suite driven by injected I/O faults,
   admission control / shedding, client retry, and daemon hardening. *)

module F = Numerics.Faultify
module P = Server.Protocol
module Store = Server.Store
module Engine = Server.Engine
module Snapshot = Server.Snapshot
module Wal = Server.Wal
module Durable = Server.Durable
module Daemon = Server.Daemon
module Client = Server.Client

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let with_dir prefix f =
  let dir = fresh_dir prefix in
  Fun.protect ~finally:(fun () -> F.disarm_io (); rm_rf dir) (fun () -> f dir)

let get = function Ok v -> v | Error m -> Alcotest.failf "unexpected error: %s" m

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec find i = i + n <= h && (String.sub hay i n = needle || find (i + 1)) in
  find 0

(* ------------------------------------------------------------------ *)
(* Durable                                                             *)
(* ------------------------------------------------------------------ *)

let test_crc32 () =
  (* The IEEE 802.3 check value. *)
  Alcotest.(check int32) "check value" 0xCBF43926l (Durable.crc32 "123456789");
  Alcotest.(check int32) "empty" 0l (Durable.crc32 "");
  let s = "the quick brown fox jumps over the lazy dog" in
  let split =
    Durable.crc32_update (Durable.crc32_update 0l s 0 17) s 17
      (String.length s - 17)
  in
  Alcotest.(check int32) "streaming equals one-shot" (Durable.crc32 s) split

let test_atomic_write () =
  with_dir "durable" @@ fun dir ->
  let path = Filename.concat dir "f" in
  get (Durable.write_file_atomic ~site:"t" ~path "first\n");
  Alcotest.(check string) "roundtrip" "first\n" (get (Durable.read_file path));
  get (Durable.write_file_atomic ~site:"t" ~path "second\n");
  Alcotest.(check string) "replaced" "second\n" (get (Durable.read_file path));
  (* A torn write mid-replace must leave the previous file untouched. *)
  F.arm_io ~rate:1.0 ~kinds:[ F.Io_torn_write ] ~seed:3 ();
  (match Durable.write_file_atomic ~site:"t" ~path "third--longer\n" with
  | exception F.Crash _ -> ()
  | Ok () -> Alcotest.fail "expected an injected crash"
  | Error m -> Alcotest.failf "expected a crash, got error %s" m);
  F.disarm_io ();
  Alcotest.(check bool) "fault fired" true (F.io_injection_count () >= 1);
  Alcotest.(check string) "previous file intact" "second\n"
    (get (Durable.read_file path))

let test_short_write_restores_tail () =
  with_dir "durable" @@ fun dir ->
  let path = Filename.concat dir "log" in
  let w = get (Durable.openw ~path) in
  get (Durable.append ~site:"t" w "good-record|");
  F.arm_io ~rate:1.0 ~kinds:[ F.Io_short_write ] ~seed:5 ();
  (match Durable.append ~site:"t" w "doomed-record|" with
  | Ok () -> Alcotest.fail "expected the injected short write"
  | Error _ -> ());
  F.disarm_io ();
  (* The prefix the short write put on disk was truncated away. *)
  Alcotest.(check int) "offset unchanged" 12 (Durable.offset w);
  get (Durable.append ~site:"t" w "next-record|");
  Durable.close w;
  Alcotest.(check string) "file is consistent" "good-record|next-record|"
    (get (Durable.read_file path))

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let sample_ops =
  [
    Wal.Create { name = "a-1.x"; tau = 0x1.9p6; k = 32; p = 0.2 };
    Wal.Ingest { name = "a-1.x"; key = 17; weight = 3.5 };
    Wal.Ingest { name = "b"; key = 0; weight = 0x1.fffp-3 };
    Wal.Ingest_batch
      { name = "b"; records = [| (3, 1.5); (17, 0x1.23p-4); (3, 0.25) |] };
    Wal.Flush;
  ]

let test_frame_roundtrip () =
  let buf = String.concat "" (List.map Wal.encode_frame sample_ops) in
  let rec decode pos acc =
    match Wal.decode_at buf pos with
    | Wal.End -> List.rev acc
    | Wal.Frame (op, next) -> decode next (op :: acc)
    | Wal.Torn m -> Alcotest.failf "unexpected torn frame: %s" m
  in
  let ops = decode 0 [] in
  Alcotest.(check bool) "all ops decode to themselves" true (ops = sample_ops)

let test_frame_torn_detection () =
  let frame = Wal.encode_frame (List.nth sample_ops 1) in
  (* Any strict prefix is torn, never a bogus decode. *)
  for cut = 1 to String.length frame - 1 do
    match Wal.decode_at (String.sub frame 0 cut) 0 with
    | Wal.Torn _ -> ()
    | Wal.End -> Alcotest.failf "prefix of %d bytes decoded as End" cut
    | Wal.Frame _ -> Alcotest.failf "prefix of %d bytes decoded as a frame" cut
  done;
  (* A flipped payload bit is a CRC mismatch. *)
  let corrupt =
    String.mapi
      (fun i c -> if i = 10 then Char.chr (Char.code c lxor 1) else c)
      frame
  in
  (match Wal.decode_at corrupt 0 with
  | Wal.Torn m ->
      Alcotest.(check bool) "CRC diagnostic" true (contains "CRC" m)
  | _ -> Alcotest.fail "bit flip not detected");
  Alcotest.(check bool) "empty is End" true (Wal.decode_at "" 0 = Wal.End)

let test_batch_frame_capacity () =
  (* The group-commit invariant rests on one batch = one frame, so the
     worst-case INGESTN batch — [Protocol.max_batch] records, each with
     the widest possible key and weight tokens — must fit under the
     decoder's payload cap, or a legal batch would be unrecoverable. *)
  let records = Array.make P.max_batch (max_int, Float.max_float) in
  let op = Wal.Ingest_batch { name = String.make 256 'n'; records } in
  let frame = Wal.encode_frame op in
  Alcotest.(check bool)
    (Printf.sprintf "worst-case batch payload (%d bytes) fits max_payload (%d)"
       (String.length frame - 8) Wal.max_payload)
    true
    (String.length frame - 8 <= Wal.max_payload);
  match Wal.decode_at frame 0 with
  | Wal.Frame (op', next) ->
      Alcotest.(check bool) "roundtrips bit-exactly" true (op' = op);
      Alcotest.(check int) "whole frame consumed" (String.length frame) next
  | Wal.Torn m -> Alcotest.failf "worst-case batch frame torn: %s" m
  | Wal.End -> Alcotest.fail "worst-case batch frame decoded as End"

(* ------------------------------------------------------------------ *)
(* The scripted workload shared by the WAL / crash tests               *)
(* ------------------------------------------------------------------ *)

let cfg = { Store.default_config with master = 11 }

let script : Wal.op list =
  let rng = Numerics.Prng.create ~seed:7 () in
  let ingests =
    List.init 48 (fun i ->
        let name = if i mod 2 = 0 then "a" else "b" in
        let key = Numerics.Prng.int rng 24 in
        let weight = 0.5 +. (Numerics.Prng.float rng *. 9.5) in
        Wal.Ingest { name; key; weight })
  in
  let rec splice i = function
    | [] -> []
    | op :: rest -> if i = 24 then op :: Wal.Flush :: rest else op :: splice (i + 1) rest
  in
  Wal.Create { name = "a"; tau = 60.; k = 32; p = 0.2 }
  :: Wal.Create { name = "b"; tau = 60.; k = 32; p = 0.2 }
  :: splice 1 ingests

let n_script = List.length script

let req_of_op = function
  | Wal.Create { name; tau; k; p } ->
      P.Create { name; tau = Some tau; k = Some k; p = Some p }
  | Wal.Ingest { name; key; weight } -> P.Ingest { name; key; weight }
  | Wal.Ingest_batch _ ->
      invalid_arg "req_of_op: batch ops execute via Engine.handle_ingest_many"
  | Wal.Flush -> P.Flush

let take n l = List.filteri (fun i _ -> i < n) l

(* Uninterrupted reference: the first [m] script ops applied straight to
   a store, no WAL. *)
let reference_store m =
  let st = Store.create cfg in
  List.iter
    (fun op ->
      match op with
      | Wal.Create { name; tau; k; p } ->
          ignore (get (Store.create_instance st ~name ~tau ~k ~p ()))
      | Wal.Ingest { name; key; weight } -> (
          match Store.ingest st ~name ~key ~weight with
          | Ok () -> ()
          | Error e -> Alcotest.failf "ref ingest: %s" (Store.ingest_error_to_string e))
      | Wal.Ingest_batch { name; records } ->
          (* Reference semantics of a batch: its records, in order. *)
          Array.iter
            (fun (key, weight) ->
              match Store.ingest st ~name ~key ~weight with
              | Ok () -> ()
              | Error e ->
                  Alcotest.failf "ref ingest: %s"
                    (Store.ingest_error_to_string e))
            records
      | Wal.Flush -> Store.flush st)
    (take m script);
  Store.flush st;
  st

let answers st =
  let e = Engine.create st in
  List.map
    (fun kind ->
      match Engine.query e kind [ "a"; "b" ] with
      | Ok r -> r
      | Error m -> Alcotest.failf "query: %s" m)
    [ P.Max; P.Or; P.Distinct; P.Dominance ]

let weights_of st name =
  let acc = ref [] in
  Sampling.Instance.iter
    (fun k v -> acc := (k, v) :: !acc)
    (Store.to_instance (Option.get (Store.find st name)));
  List.sort compare !acc

(* Bit-identical state and answers vs. the uninterrupted prefix run. *)
let check_equals_reference ~msg recovered m =
  let ref_st = reference_store m in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: weights of %s bit-identical to prefix %d" msg name m)
        true
        (weights_of recovered name = weights_of ref_st name))
    [ "a"; "b" ];
  List.iter2
    (fun expected actual ->
      Alcotest.(check string) (msg ^ ": query response bit-identical") expected
        actual)
    (answers ref_st) (answers recovered)

let wal_cfg ?(fsync = Wal.Always) ?(segment_bytes = 1 lsl 22) dir =
  { Wal.dir; fsync; segment_bytes }

let run_ops engine ops =
  List.iter
    (fun op ->
      let resp =
        match op with
        | Wal.Ingest_batch { name; records } ->
            Engine.handle_ingest_many engine ~name records
        | op -> fst (Engine.handle_request engine (req_of_op op))
      in
      if not (P.json_ok resp) then Alcotest.failf "op rejected: %s" resp)
    ops

(* ------------------------------------------------------------------ *)
(* WAL basics                                                          *)
(* ------------------------------------------------------------------ *)

let test_wal_cold_start_and_replay () =
  with_dir "wal" @@ fun dir ->
  let r = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  Alcotest.(check bool) "cold start" true (r.Wal.checkpoint_epoch = None);
  Alcotest.(check int) "nothing replayed" 0 r.Wal.replayed;
  let engine = Engine.create ~wal:r.Wal.wal r.Wal.store in
  run_ops engine script;
  Wal.close r.Wal.wal;
  (* Restart: everything comes back from the log alone. *)
  let r2 = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  Alcotest.(check int) "all ops replayed" n_script r2.Wal.replayed;
  Alcotest.(check int) "no torn tail" 0 r2.Wal.truncated_bytes;
  check_equals_reference ~msg:"full replay" r2.Wal.store n_script;
  Wal.close r2.Wal.wal

let test_wal_segment_rotation () =
  with_dir "wal" @@ fun dir ->
  (* Tiny segments force many rotations. *)
  let r = get (Wal.recover ~store_cfg:cfg (wal_cfg ~segment_bytes:256 dir)) in
  let engine = Engine.create ~wal:r.Wal.wal r.Wal.store in
  run_ops engine script;
  Wal.close r.Wal.wal;
  let segments =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".log")
  in
  Alcotest.(check bool)
    (Printf.sprintf "rotated into several segments (%d)" (List.length segments))
    true
    (List.length segments > 3);
  let r2 = get (Wal.recover ~store_cfg:cfg (wal_cfg ~segment_bytes:256 dir)) in
  Alcotest.(check int) "all ops replayed across segments" n_script
    r2.Wal.replayed;
  check_equals_reference ~msg:"rotated replay" r2.Wal.store n_script;
  Wal.close r2.Wal.wal

let test_wal_checkpoint () =
  with_dir "wal" @@ fun dir ->
  let r = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  let engine = Engine.create ~wal:r.Wal.wal r.Wal.store in
  let mid = 30 in
  run_ops engine (take mid script);
  Alcotest.(check int) "first checkpoint epoch" 1
    (get (Wal.checkpoint r.Wal.wal r.Wal.store));
  run_ops engine (List.filteri (fun i _ -> i >= mid) script);
  Wal.close r.Wal.wal;
  let r2 = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  Alcotest.(check bool) "recovered on checkpoint" true
    (r2.Wal.checkpoint_epoch = Some 1);
  Alcotest.(check int) "only the delta replayed" (n_script - mid) r2.Wal.replayed;
  check_equals_reference ~msg:"checkpoint + delta" r2.Wal.store n_script;
  (* A second checkpoint prunes the pre-fallback generation. *)
  Alcotest.(check int) "second checkpoint epoch" 2
    (get (Wal.checkpoint r2.Wal.wal r2.Wal.store));
  let files = Array.to_list (Sys.readdir dir) in
  Alcotest.(check bool) "checkpoint 1 kept as fallback" true
    (List.mem "checkpoint-000001.snap" files);
  Alcotest.(check bool) "epoch-0 segments pruned" true
    (not (List.exists (fun n -> contains "wal-000000-" n) files));
  Wal.close r2.Wal.wal

let test_wal_torn_tail_tolerated () =
  with_dir "wal" @@ fun dir ->
  let r = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  let engine = Engine.create ~wal:r.Wal.wal r.Wal.store in
  run_ops engine script;
  let segment = Wal.segment r.Wal.wal in
  Wal.close r.Wal.wal;
  (* Hand-tear the tail: half of one more frame, as a crash would. *)
  let frame = Wal.encode_frame (Wal.Ingest { name = "a"; key = 9; weight = 2. }) in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 segment in
  output_string oc (String.sub frame 0 (String.length frame / 2));
  close_out oc;
  let r2 = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  Alcotest.(check bool) "torn bytes reported" true (r2.Wal.truncated_bytes > 0);
  Alcotest.(check int) "complete frames all replayed" n_script r2.Wal.replayed;
  check_equals_reference ~msg:"torn tail dropped" r2.Wal.store n_script;
  Wal.close r2.Wal.wal;
  (* The tear was physically truncated: a third recovery sees none. *)
  let r3 = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  Alcotest.(check int) "tail gone after truncation" 0 r3.Wal.truncated_bytes;
  Wal.close r3.Wal.wal

let test_wal_corrupt_checkpoint_fallback () =
  with_dir "wal" @@ fun dir ->
  let r = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  let engine = Engine.create ~wal:r.Wal.wal r.Wal.store in
  run_ops engine (take 20 script);
  ignore (get (Wal.checkpoint r.Wal.wal r.Wal.store));
  run_ops engine (List.filteri (fun i _ -> i >= 20 && i < 40) script);
  ignore (get (Wal.checkpoint r.Wal.wal r.Wal.store));
  run_ops engine (List.filteri (fun i _ -> i >= 40) script);
  Wal.close r.Wal.wal;
  (* Flip one byte in the newest checkpoint. *)
  let victim = Filename.concat dir "checkpoint-000002.snap" in
  let s = get (Durable.read_file victim) in
  let pos = String.index s '\n' + 1 in
  let s' = String.mapi (fun i c -> if i = pos then 'z' else c) s in
  let oc = open_out_bin victim in
  output_string oc s';
  close_out oc;
  let r2 = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  Alcotest.(check bool) "fell back one generation" true
    (r2.Wal.checkpoint_epoch = Some 1);
  Alcotest.(check int) "one checkpoint quarantined" 1
    (List.length r2.Wal.skipped_checkpoints);
  Alcotest.(check bool) "quarantine file exists" true
    (Sys.file_exists (victim ^ ".corrupt"));
  (* Both epochs' deltas replayed on top of the older checkpoint. *)
  Alcotest.(check int) "replayed both generations" (n_script - 20) r2.Wal.replayed;
  check_equals_reference ~msg:"checkpoint fallback" r2.Wal.store n_script;
  Wal.close r2.Wal.wal

(* ------------------------------------------------------------------ *)
(* Crash-recovery property suite                                       *)
(* ------------------------------------------------------------------ *)

(* Kill the WAL-backed engine at 1-based op [at] by arming exactly one
   injected fault kind, restart from disk, and require state and query
   answers bit-identical to an uninterrupted run over the surviving
   prefix ([at - 1] for a torn write — the frame never completed — and
   [at] for an fsync failure at fsync=always — the frame is complete,
   durability merely unconfirmed). [ckpt], when set, checkpoints after
   that many ops first. *)
let crash_at ?ckpt ~at ~kind ~survives msg () =
  with_dir "crash" @@ fun dir ->
  let r = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  let engine = Engine.create ~wal:r.Wal.wal r.Wal.store in
  let crashed = ref false in
  List.iteri
    (fun i op ->
      let n = i + 1 in
      if not !crashed then
        if n = at then begin
          F.arm_io ~rate:1.0 ~kinds:[ kind ] ~seed:13 ();
          (match Engine.handle_request engine (req_of_op op) with
          | exception F.Crash _ -> crashed := true
          | resp, _ ->
              Alcotest.failf "%s: expected a crash at op %d, got %s" msg at resp);
          F.disarm_io ()
        end
        else begin
          run_ops engine [ op ];
          match ckpt with
          | Some c when c = n -> ignore (get (Wal.checkpoint r.Wal.wal r.Wal.store))
          | _ -> ()
        end)
    script;
  Alcotest.(check bool) (msg ^ ": fault fired") true !crashed;
  Alcotest.(check bool) (msg ^ ": injection counted") true
    (F.io_injection_count () >= 1);
  (* The "process" died: abandon engine and store, recover from disk. *)
  let r2 = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  check_equals_reference ~msg r2.Wal.store survives;
  Wal.close r2.Wal.wal

let test_crash_torn_early = crash_at ~at:10 ~kind:F.Io_torn_write ~survives:9 "torn@10"
let test_crash_torn_last =
  crash_at ~at:n_script ~kind:F.Io_torn_write ~survives:(n_script - 1) "torn@last"

let test_crash_fsync_fail =
  (* fsync=always: the frame is on disk, so the op survives — the
     acknowledged prefix 1..24 certainly does (never silently dropped). *)
  crash_at ~at:25 ~kind:F.Io_fsync_fail ~survives:25 "fsync-fail@25"

let test_crash_torn_after_checkpoint =
  crash_at ~ckpt:30 ~at:40 ~kind:F.Io_torn_write ~survives:39 "torn@40 after ckpt@30"

let test_shed_then_killed () =
  (* A short write shears the op out of the log without killing the
     process; the op is answered as an error (not acknowledged) and a
     later crash + recovery lands exactly on the prefix before it. *)
  with_dir "crash" @@ fun dir ->
  let at = 15 in
  let r = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  let engine = Engine.create ~wal:r.Wal.wal r.Wal.store in
  List.iteri
    (fun i op ->
      let n = i + 1 in
      if n < at then run_ops engine [ op ]
      else if n = at then begin
        F.arm_io ~rate:1.0 ~kinds:[ F.Io_short_write ] ~seed:17 ();
        let resp, _ = Engine.handle_request engine (req_of_op op) in
        F.disarm_io ();
        Alcotest.(check bool) "short write answered as error" false
          (P.json_ok resp);
        Alcotest.(check (option string)) "wal error kind" (Some "wal")
          (P.json_field "kind" resp)
      end)
    script;
  (* Kill without closing; the unacknowledged op must not reappear. *)
  let r2 = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  check_equals_reference ~msg:"short-write@15" r2.Wal.store (at - 1);
  Wal.close r2.Wal.wal

let test_crash_during_checkpoint () =
  (* Tearing the checkpoint write itself must cost nothing: the rename
     never happened, recovery ignores the half-written tmp and replays
     the full log. *)
  with_dir "crash" @@ fun dir ->
  let mid = 30 in
  let r = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  let engine = Engine.create ~wal:r.Wal.wal r.Wal.store in
  run_ops engine (take mid script);
  F.arm_io ~rate:1.0 ~kinds:[ F.Io_torn_write ] ~seed:19 ();
  (match Wal.checkpoint r.Wal.wal r.Wal.store with
  | exception F.Crash _ -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected a crash mid-checkpoint");
  F.disarm_io ();
  let r2 = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  Alcotest.(check bool) "no checkpoint survived" true
    (r2.Wal.checkpoint_epoch = None);
  Alcotest.(check bool) "tmp cleaned up" true
    (not
       (Array.exists
          (fun n -> Filename.check_suffix n ".tmp")
          (Sys.readdir dir)));
  check_equals_reference ~msg:"crash in checkpoint" r2.Wal.store mid;
  Wal.close r2.Wal.wal

let test_crash_torn_batch () =
  (* Group commit's crash contract: a batched frame torn mid-write is
     dropped {e atomically} on recovery — none of its records survive,
     not a prefix of them. *)
  with_dir "crash" @@ fun dir ->
  let mid = 20 in
  let r = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  let engine = Engine.create ~wal:r.Wal.wal r.Wal.store in
  run_ops engine (take mid script);
  (* Keys >= 100 never appear in the script, so any survivor from this
     batch would be unambiguous. *)
  let records = Array.init 16 (fun i -> (100 + i, 2.5 +. float_of_int i)) in
  F.arm_io ~rate:1.0 ~kinds:[ F.Io_torn_write ] ~seed:29 ();
  (match Engine.handle_ingest_many engine ~name:"a" records with
  | exception F.Crash _ -> ()
  | resp -> Alcotest.failf "expected a crash mid-batch, got %s" resp);
  F.disarm_io ();
  let r2 = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  Alcotest.(check int) "only the pre-batch prefix replayed" mid r2.Wal.replayed;
  Alcotest.(check bool) "torn batch frame truncated" true
    (r2.Wal.truncated_bytes > 0);
  let weights = weights_of r2.Wal.store "a" in
  Array.iter
    (fun (key, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "no partial record: key %d absent" key)
        true
        (not (List.mem_assoc key weights)))
    records;
  check_equals_reference ~msg:"torn batch dropped atomically" r2.Wal.store mid;
  Wal.close r2.Wal.wal

let test_wal_batch_replay_equals_singles () =
  (* The script's ingests regrouped as one INGESTN batch per instance:
     per-instance arrival order is unchanged, so recovery must land on
     bits identical to the single-op reference run. *)
  with_dir "wal" @@ fun dir ->
  let batch name =
    script
    |> List.filter_map (function
         | Wal.Ingest { name = n; key; weight } when n = name ->
             Some (key, weight)
         | _ -> None)
    |> Array.of_list
  in
  let r = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  let engine = Engine.create ~wal:r.Wal.wal r.Wal.store in
  run_ops engine
    [
      Wal.Create { name = "a"; tau = 60.; k = 32; p = 0.2 };
      Wal.Create { name = "b"; tau = 60.; k = 32; p = 0.2 };
      Wal.Ingest_batch { name = "a"; records = batch "a" };
      Wal.Ingest_batch { name = "b"; records = batch "b" };
    ];
  Wal.close r.Wal.wal;
  let r2 = get (Wal.recover ~store_cfg:cfg (wal_cfg dir)) in
  Alcotest.(check int) "two creates + two batch frames replayed" 4
    r2.Wal.replayed;
  check_equals_reference ~msg:"batched replay equals singles" r2.Wal.store
    n_script;
  Wal.close r2.Wal.wal

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let test_shed_policy () =
  let st =
    Store.create
      { cfg with flush_every = max_int; max_inflight = 4 }
  in
  ignore (get (Store.create_instance st ~name:"a" ()));
  for key = 1 to 4 do
    match Store.ingest st ~name:"a" ~key ~weight:1. with
    | Ok () -> ()
    | Error e -> Alcotest.failf "ingest %d: %s" key (Store.ingest_error_to_string e)
  done;
  (match Store.ingest st ~name:"a" ~key:5 ~weight:1. with
  | Error (Store.Overloaded { depth; limit }) ->
      Alcotest.(check int) "depth at limit" 4 depth;
      Alcotest.(check int) "limit reported" 4 limit
  | Ok () -> Alcotest.fail "expected a shed"
  | Error e -> Alcotest.failf "wrong error: %s" (Store.ingest_error_to_string e));
  (* check_ingest agrees, with no side effect. *)
  (match Store.check_ingest st ~name:"a" ~weight:1. with
  | Error (Store.Overloaded _) -> ()
  | _ -> Alcotest.fail "check_ingest should shed too");
  (* The engine answers the structured error with a retry hint. *)
  let e = Engine.create st in
  let resp, _ =
    Engine.handle_request e (P.Ingest { name = "a"; key = 5; weight = 1. })
  in
  Alcotest.(check bool) "shed response not ok" false (P.json_ok resp);
  Alcotest.(check (option string)) "kind" (Some "overloaded")
    (P.json_field "kind" resp);
  (match P.json_float_field "retry_after_ms" resp with
  | Some ms -> Alcotest.(check bool) "positive hint" true (ms >= 1.)
  | None -> Alcotest.fail "retry_after_ms missing");
  (* Draining restores admission. *)
  Store.flush st;
  (match Store.ingest st ~name:"a" ~key:5 ~weight:1. with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-flush: %s" (Store.ingest_error_to_string e));
  Store.flush st;
  Alcotest.(check int) "all five records applied" 5
    (Store.cardinality (Option.get (Store.find st "a")))

(* ------------------------------------------------------------------ *)
(* Client retry                                                        *)
(* ------------------------------------------------------------------ *)

let test_backoff_schedule () =
  let retry = { Client.default_retry with base_delay_ms = 10; max_delay_ms = 500 } in
  let schedule seed =
    let rng = Numerics.Prng.create ~seed () in
    List.init 12 (fun attempt -> Client.backoff_ms rng retry ~attempt)
  in
  Alcotest.(check (list int)) "deterministic for a fixed seed" (schedule 5)
    (schedule 5);
  List.iteri
    (fun attempt d ->
      let cap = min 500 (10 * (1 lsl attempt)) in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in [0, %d)" attempt cap)
        true
        (d >= 0 && d < cap))
    (schedule 5);
  Alcotest.(check bool) "seeds decorrelate" true (schedule 5 <> schedule 6)

let test_client_reconnect () =
  let st = Store.create cfg in
  let daemon = Daemon.start (Engine.create st) in
  let c =
    get (Client.connect_tcp ~port:(Daemon.port daemon) ())
  in
  Alcotest.(check bool) "create ok" true
    (P.json_ok (get (Client.request c "CREATE a tau=50 k=16 p=0.2")));
  ignore (get (Client.request c "QUIT"));
  (* The server closed the session: a plain request fails... *)
  (match Client.request c "STATS" with
  | Error _ -> ()
  | Ok r -> Alcotest.failf "expected a dropped connection, got %s" r);
  (* ...and request_retry re-dials and succeeds. *)
  Alcotest.(check bool) "retry reconnects" true
    (P.json_ok (get (Client.request_retry ~sleep:(fun _ -> ()) c "STATS")));
  ignore (get (Client.request c "SHUTDOWN"));
  Client.close c;
  Daemon.join daemon

let test_retry_honors_overload () =
  (* A store that sheds on the very first record: every retry is shed
     too, and the recorded sleeps are exactly the server's hints. *)
  let st =
    Store.create { cfg with flush_every = max_int; max_inflight = 0 }
  in
  let daemon = Daemon.start (Engine.create st) in
  let c = get (Client.connect_tcp ~port:(Daemon.port daemon) ()) in
  Alcotest.(check bool) "create ok" true
    (P.json_ok (get (Client.request c "CREATE a tau=50 k=16 p=0.2")));
  let sleeps = ref [] in
  let retry = { Client.default_retry with attempts = 3 } in
  let resp =
    get
      (Client.request_retry ~retry
         ~sleep:(fun ms -> sleeps := ms :: !sleeps)
         c "INGEST a 1 2.5")
  in
  Alcotest.(check bool) "still shed after retries" false (P.json_ok resp);
  Alcotest.(check (option string)) "kind overloaded" (Some "overloaded")
    (P.json_field "kind" resp);
  Alcotest.(check int) "slept between attempts" (retry.Client.attempts - 1)
    (List.length !sleeps);
  let hint =
    int_of_float (Option.get (P.json_float_field "retry_after_ms" resp))
  in
  List.iter
    (fun ms -> Alcotest.(check int) "honored the server hint" hint ms)
    !sleeps;
  ignore (get (Client.request c "SHUTDOWN"));
  Client.close c;
  Daemon.join daemon

let test_batch_retry_whole () =
  (* A shed batch is retried {e whole}: admission checks the batch
     before anything is logged or queued, so a retry can never
     double-apply a half-landed prefix. *)
  let st = Store.create { cfg with flush_every = max_int; max_inflight = 8 } in
  let daemon = Daemon.start (Engine.create st) in
  let c = get (Client.connect_tcp ~port:(Daemon.port daemon) ()) in
  Alcotest.(check bool) "create ok" true
    (P.json_ok (get (Client.request c "CREATE a tau=50 k=16 p=0.2")));
  let sleeps = ref [] in
  let retry = { Client.default_retry with attempts = 3 } in
  let big = Array.init 9 (fun i -> (i + 1, 1.5)) in
  let resp =
    get
      (Client.ingest_many ~retry
         ~sleep:(fun ms -> sleeps := ms :: !sleeps)
         c ~name:"a" big)
  in
  Alcotest.(check (option string)) "whole batch shed" (Some "overloaded")
    (P.json_field "kind" resp);
  Alcotest.(check int) "slept between whole-batch retries"
    (retry.Client.attempts - 1)
    (List.length !sleeps);
  Alcotest.(check int) "never half-applied" 0 (Store.pending st);
  (* One record fewer fits the budget exactly — and lands whole. *)
  let fits = Array.init 8 (fun i -> (i + 1, 1.5)) in
  let resp = get (Client.ingest_many c ~name:"a" fits) in
  Alcotest.(check bool) "batch within budget lands" true (P.json_ok resp);
  Alcotest.(check (option string)) "ingested count" (Some "8")
    (P.json_field "ingested" resp);
  Alcotest.(check int) "all queued" 8 (Store.pending st);
  ignore (get (Client.request c "SHUTDOWN"));
  Client.close c;
  Daemon.join daemon

let test_batch_malformed_body () =
  (* A poisoned body line yields one error response for the whole batch
     while the remaining body lines are still consumed — the framing
     stays in sync and the session survives. *)
  let st = Store.create cfg in
  let daemon = Daemon.start (Engine.create st) in
  let c = get (Client.connect_tcp ~port:(Daemon.port daemon) ()) in
  Alcotest.(check bool) "create ok" true
    (P.json_ok (get (Client.request c "CREATE a tau=50 k=16 p=0.2")));
  let resp = get (Client.request c "INGESTN a 3\n1 2.5\nbogus line\n3 1.25") in
  Alcotest.(check bool) "poisoned batch rejected" false (P.json_ok resp);
  Alcotest.(check bool) "session still in sync" true
    (P.json_ok (get (Client.request c "STATS")));
  Store.flush st;
  Alcotest.(check int) "nothing applied" 0
    (Store.cardinality (Option.get (Store.find st "a")));
  (* A well-formed batch through the same session lands whole. *)
  let resp = get (Client.request c "INGESTN a 2\n7 1.5\n9 2.5") in
  Alcotest.(check bool) "batch ok" true (P.json_ok resp);
  Alcotest.(check (option string)) "ingested count" (Some "2")
    (P.json_field "ingested" resp);
  Store.flush st;
  Alcotest.(check int) "both records applied" 2
    (Store.cardinality (Option.get (Store.find st "a")));
  ignore (get (Client.request c "SHUTDOWN"));
  Client.close c;
  Daemon.join daemon

let test_conn_drop_injection () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ca = P.Conn.of_fd a and cb = P.Conn.of_fd b in
  F.arm_io ~rate:1.0 ~kinds:[ F.Io_drop ] ~seed:3 ();
  (match P.Conn.output_line ca "hello" with
  | () -> Alcotest.fail "expected the injected drop"
  | exception Sys_error _ -> ());
  F.disarm_io ();
  Alcotest.(check bool) "drop counted" true (F.io_injection_count () >= 1);
  Alcotest.(check bool) "peer sees EOF" true (P.Conn.input_line_opt cb = None);
  P.Conn.close cb

(* ------------------------------------------------------------------ *)
(* Daemon hardening                                                    *)
(* ------------------------------------------------------------------ *)

let test_listen_unix_guard () =
  let path = Filename.temp_file "optsample" ".sock" in
  (* The temp file is a REGULAR file: refusing to unlink it is the whole
     point. *)
  (match Daemon.listen_unix ~path () with
  | Error m ->
      Alcotest.(check bool) "diagnostic names the conflict" true
        (contains "not a socket" m)
  | Ok sock ->
      Unix.close sock;
      Alcotest.fail "listen_unix destroyed a regular file");
  Sys.remove path;
  (* A stale socket file is reclaimed. *)
  let sock = get (Daemon.listen_unix ~path ()) in
  Unix.close sock;
  Alcotest.(check bool) "socket file left behind" true (Sys.file_exists path);
  let sock2 = get (Daemon.listen_unix ~path ()) in
  Unix.close sock2;
  Sys.remove path

let test_line_too_long () =
  let st = Store.create cfg in
  let config = { Daemon.default_config with max_line_bytes = 64 } in
  let daemon = Daemon.start ~config (Engine.create st) in
  let c = get (Client.connect_tcp ~port:(Daemon.port daemon) ()) in
  let resp = get (Client.request c ("INGEST " ^ String.make 200 'a')) in
  Alcotest.(check bool) "rejected" false (P.json_ok resp);
  Alcotest.(check (option string)) "kind" (Some "line_too_long")
    (P.json_field "kind" resp);
  (* The session was closed: the daemon accepts a fresh connection. *)
  (match Client.request c "STATS" with
  | Error _ -> ()
  | Ok r -> Alcotest.failf "expected a closed session, got %s" r);
  let c2 = get (Client.connect_tcp ~port:(Daemon.port daemon) ()) in
  ignore (get (Client.request c2 "SHUTDOWN"));
  Client.close c;
  Client.close c2;
  Daemon.join daemon

let test_read_timeout () =
  let st = Store.create cfg in
  let config = { Daemon.default_config with read_timeout_s = 0.15 } in
  let daemon = Daemon.start ~config (Engine.create st) in
  let c = get (Client.connect_tcp ~port:(Daemon.port daemon) ()) in
  Unix.sleepf 0.5;
  (* The server timed the session out: either the structured timeout
     error is still in flight, or the connection is already gone. *)
  (match Client.request c "STATS" with
  | Ok resp ->
      Alcotest.(check bool) "not ok" false (P.json_ok resp);
      Alcotest.(check (option string)) "kind" (Some "timeout")
        (P.json_field "kind" resp)
  | Error _ -> ());
  let c2 = get (Client.connect_tcp ~port:(Daemon.port daemon) ()) in
  ignore (get (Client.request c2 "SHUTDOWN"));
  Client.close c;
  Client.close c2;
  Daemon.join daemon

(* ------------------------------------------------------------------ *)
(* Snapshot robustness (satellite)                                     *)
(* ------------------------------------------------------------------ *)

let test_snapshot_robustness () =
  with_dir "snap" @@ fun dir ->
  let st = reference_store n_script in
  let path = Filename.concat dir "s.snap" in
  ignore (get (Snapshot.write st ~path));
  let good = get (Durable.read_file path) in
  (* Truncated file: strict parser rejects. *)
  let tpath = Filename.concat dir "t.snap" in
  let oc = open_out_bin tpath in
  output_string oc (String.sub good 0 (String.length good / 2));
  close_out oc;
  (match Snapshot.load tpath with
  | Error e ->
      Alcotest.(check bool) "truncation diagnosed" true
        (String.length e.Sampling.Io.message > 0)
  | Ok _ -> Alcotest.fail "truncated snapshot accepted");
  (* Bit-flipped second line: rejected with that line's number. *)
  let pos = String.index good '\n' + 1 in
  let flipped = String.mapi (fun i c -> if i = pos then 'z' else c) good in
  let fpath = Filename.concat dir "f.snap" in
  let oc = open_out_bin fpath in
  output_string oc flipped;
  close_out oc;
  (match Snapshot.load fpath with
  | Error e -> Alcotest.(check int) "line-numbered diagnostic" 2 e.Sampling.Io.line
  | Ok _ -> Alcotest.fail "bit-flipped snapshot accepted");
  (* Mid-write crash: the previous snapshot at the path survives. *)
  F.arm_io ~rate:1.0 ~kinds:[ F.Io_torn_write ] ~seed:23 ();
  (match Snapshot.write st ~path with
  | exception F.Crash _ -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected a crash mid-write");
  F.disarm_io ();
  Alcotest.(check string) "previous snapshot intact" good
    (get (Durable.read_file path));
  match Snapshot.load path with
  | Ok st2 -> check_equals_reference ~msg:"reload after crashed rewrite" st2 n_script
  | Error e -> Alcotest.failf "reload: %s" e.Sampling.Io.message

let () =
  Alcotest.run "wal"
    [
      ( "durable",
        [
          Alcotest.test_case "crc32" `Quick test_crc32;
          Alcotest.test_case "atomic write survives torn replace" `Quick
            test_atomic_write;
          Alcotest.test_case "short write restores the tail" `Quick
            test_short_write_restores_tail;
        ] );
      ( "frames",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "torn and corrupt detection" `Quick
            test_frame_torn_detection;
          Alcotest.test_case "worst-case batch fits one frame" `Quick
            test_batch_frame_capacity;
        ] );
      ( "wal",
        [
          Alcotest.test_case "cold start and full replay" `Quick
            test_wal_cold_start_and_replay;
          Alcotest.test_case "segment rotation" `Quick test_wal_segment_rotation;
          Alcotest.test_case "checkpoint shortens replay and prunes" `Quick
            test_wal_checkpoint;
          Alcotest.test_case "torn tail tolerated and truncated" `Quick
            test_wal_torn_tail_tolerated;
          Alcotest.test_case "corrupt checkpoint falls back a generation"
            `Quick test_wal_corrupt_checkpoint_fallback;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "torn write early" `Quick test_crash_torn_early;
          Alcotest.test_case "torn write on the last op" `Quick
            test_crash_torn_last;
          Alcotest.test_case "fsync failure keeps the acknowledged prefix"
            `Quick test_crash_fsync_fail;
          Alcotest.test_case "torn write after a checkpoint" `Quick
            test_crash_torn_after_checkpoint;
          Alcotest.test_case "short write sheds the op, then crash" `Quick
            test_shed_then_killed;
          Alcotest.test_case "crash during checkpoint write" `Quick
            test_crash_during_checkpoint;
          Alcotest.test_case "torn batched frame dropped atomically" `Quick
            test_crash_torn_batch;
          Alcotest.test_case "batched replay equals singles" `Quick
            test_wal_batch_replay_equals_singles;
        ] );
      ( "admission",
        [ Alcotest.test_case "bounded mailboxes shed" `Quick test_shed_policy ] );
      ( "client",
        [
          Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
          Alcotest.test_case "reconnect after drop" `Quick test_client_reconnect;
          Alcotest.test_case "retry honors overload hints" `Quick
            test_retry_honors_overload;
          Alcotest.test_case "shed batch retried whole" `Quick
            test_batch_retry_whole;
          Alcotest.test_case "malformed batch body keeps framing in sync"
            `Quick test_batch_malformed_body;
          Alcotest.test_case "injected connection drop" `Quick
            test_conn_drop_injection;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "listen_unix refuses non-sockets" `Quick
            test_listen_unix_guard;
          Alcotest.test_case "over-long lines rejected" `Quick test_line_too_long;
          Alcotest.test_case "read timeout" `Quick test_read_timeout;
        ] );
      ( "snapshot-robustness",
        [
          Alcotest.test_case "truncated, flipped, crashed writes" `Quick
            test_snapshot_robustness;
        ] );
    ]
