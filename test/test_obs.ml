(* Observability layer: span nesting, cross-domain counter determinism,
   disabled-mode overhead, and the Chrome trace sink.

   Obs is process-wide state; every test runs under [with_level], which
   resets the registry, raises the level for its body, and restores
   [Off] + a clean registry afterwards so suites stay independent. *)

open Numerics

let with_level lvl f =
  Obs.reset ();
  Obs.set_level lvl;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_level Obs.Off;
      Obs.reset ())
    f

let with_pool domains f =
  let p = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* --- span nesting under nested Pool.map ---------------------------- *)

let test_span_nesting () =
  with_level Obs.Trace (fun () ->
      with_pool 2 (fun p ->
          let out =
            Obs.span ~cat:"test" "outer" (fun () ->
                Pool.parallel_map p
                  (fun x ->
                    Obs.span ~cat:"test" "inner" (fun () ->
                        Pool.parallel_map p (fun y -> y * 2) [| x; x + 1 |]))
                  [| 1; 2; 3 |])
          in
          Alcotest.(check int) "work happened" 3 (Array.length out));
      let events = Obs.events () in
      let named n = List.filter (fun e -> e.Obs.ev_name = n) events in
      let outer =
        match named "outer" with
        | [ e ] -> e
        | es -> Alcotest.failf "expected 1 outer span, got %d" (List.length es)
      in
      let inners = named "inner" in
      Alcotest.(check int) "one inner span per element" 3 (List.length inners);
      (* Nesting is dynamic extent: every inner span's interval lies
         inside the outer span's interval. *)
      let inside parent child =
        child.Obs.ev_ts_ns >= parent.Obs.ev_ts_ns
        && Int64.add child.Obs.ev_ts_ns child.Obs.ev_dur_ns
           <= Int64.add parent.Obs.ev_ts_ns parent.Obs.ev_dur_ns
      in
      List.iter
        (fun i ->
          if not (inside outer i) then
            Alcotest.failf "inner span [%Ld,+%Ld] escapes outer [%Ld,+%Ld]"
              i.Obs.ev_ts_ns i.Obs.ev_dur_ns outer.Obs.ev_ts_ns
              outer.Obs.ev_dur_ns)
        inners;
      (* Pool chunk spans were retained too (parallel_map ran). *)
      Alcotest.(check bool)
        "pool.chunk spans present" true
        (named "pool.chunk" <> []))

(* --- counter merge determinism across domains ---------------------- *)

let test_counter_merge_deterministic () =
  let total_of_run () =
    with_level Obs.Metrics (fun () ->
        with_pool 4 (fun p ->
            ignore
              (Pool.parallel_init p ~n:1000 (fun i ->
                   Obs.count "test.tick";
                   Obs.count ~by:2 "test.pair";
                   i)));
        (List.assoc "test.tick" (Obs.counters ()),
         List.assoc "test.pair" (Obs.counters ())))
  in
  (* Shards are per-domain and merged on read; the pool join gives the
     happens-before edge, so totals are exact — not approximately right
     under contention, but equal on every run. *)
  for run = 1 to 3 do
    let ticks, pairs = total_of_run () in
    Alcotest.(check int) (Printf.sprintf "run %d: ticks" run) 1000 ticks;
    Alcotest.(check int) (Printf.sprintf "run %d: pairs" run) 2000 pairs
  done

let test_histogram_merge () =
  with_level Obs.Metrics (fun () ->
      with_pool 4 (fun p ->
          ignore
            (Pool.parallel_init p ~n:64 (fun i ->
                 Obs.observe_ns "test.lat" (Int64.of_int ((i + 1) * 100));
                 i)));
      match List.assoc_opt "test.lat" (Obs.histograms ()) with
      | None -> Alcotest.fail "histogram missing"
      | Some h ->
          Alcotest.(check int) "count" 64 h.Obs.h_count;
          (* sum of (i+1)*100 for i in 0..63 = 100 * 64*65/2 *)
          Alcotest.(check (float 0.)) "sum" 208_000. h.Obs.h_sum_ns;
          Alcotest.(check int)
            "buckets account for every observation" 64
            (Array.fold_left ( + ) 0 h.Obs.h_buckets);
          Alcotest.(check bool)
            "p99 ≥ p50" true
            (Obs.hist_quantile h 0.99 >= Obs.hist_quantile h 0.5))

(* --- disabled mode: one branch, no allocation ---------------------- *)

let test_disabled_no_alloc () =
  Obs.reset ();
  Obs.set_level Obs.Off;
  let body () = () in
  (* Warm up so any one-time setup is done before measuring. *)
  Obs.count "test.off";
  Obs.span "test.off" body;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.count "test.off";
    Obs.count ~by:3 "test.off";
    Obs.observe_ns "test.off" 5L;
    Obs.span "test.off" body
  done;
  let w1 = Gc.minor_words () in
  (* The two Gc.minor_words floats are themselves boxed; anything beyond
     that small constant means the disabled path allocates per call. *)
  let delta = w1 -. w0 in
  if delta > 64. then
    Alcotest.failf "disabled instrumentation allocated %.0f words" delta;
  (* And nothing was recorded. *)
  Alcotest.(check (list (pair string int))) "no counters" [] (Obs.counters ())

(* --- Chrome trace golden test -------------------------------------- *)

(* A derivation under Trace must leave solver and designer spans with
   the documented names, and the rendered document must be loadable
   Chrome trace JSON. *)
let expected_span_names =
  [ "qp.minimize"; "designer.solve_partition"; "designer.batch" ]

let test_chrome_trace_golden () =
  with_level Obs.Trace (fun () ->
      let module D = Estcore.Designer in
      let f v = Float.max v.(0) v.(1) in
      let problem =
        D.Problems.oblivious ~probs:[| 0.3; 0.6 |] ~grid:[ 0.; 1. ] ~f ()
      in
      let batches =
        D.Problems.batches_by
          (fun v -> Array.fold_left (fun a x -> if x > 0. then a + 1 else a) 0 v)
          problem.D.data
      in
      (match D.solve_partition_robust ~batches ~f ~dist:problem.D.dist () with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "derivation failed: %s" (Robust.to_string e));
      let names =
        List.sort_uniq compare
          (List.map (fun e -> e.Obs.ev_name) (Obs.events ()))
      in
      List.iter
        (fun n ->
          if not (List.mem n names) then
            Alcotest.failf "expected span %S in trace (got: %s)" n
              (String.concat ", " names))
        expected_span_names;
      let buf = Buffer.create 4096 in
      Obs.chrome_trace buf;
      let doc = Buffer.contents buf in
      (* Structural checks: the trace_event envelope, complete events,
         and every expected span name serialized. *)
      let contains sub =
        let n = String.length doc and m = String.length sub in
        let rec go i = i + m <= n && (String.sub doc i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        "traceEvents envelope" true
        (contains "\"traceEvents\"");
      Alcotest.(check bool) "complete events" true (contains "\"ph\": \"X\"");
      List.iter
        (fun n ->
          Alcotest.(check bool)
            (Printf.sprintf "span %S serialized" n)
            true
            (contains (Printf.sprintf "\"name\": %S" n)))
        expected_span_names;
      (* Balanced braces/brackets outside strings: a cheap well-formedness
         proxy that catches truncated or mis-nested output. *)
      let depth = ref 0 and square = ref 0 and in_str = ref false in
      String.iteri
        (fun i c ->
          if !in_str then (
            if c = '"' && (i = 0 || doc.[i - 1] <> '\\') then in_str := false)
          else
            match c with
            | '"' -> in_str := true
            | '{' -> incr depth
            | '}' -> decr depth
            | '[' -> incr square
            | ']' -> decr square
            | _ -> ())
        doc;
      Alcotest.(check int) "braces balanced" 0 !depth;
      Alcotest.(check int) "brackets balanced" 0 !square;
      Alcotest.(check bool) "not in string at EOF" false !in_str)

(* --- metrics JSON sink --------------------------------------------- *)

let test_metrics_json_shape () =
  with_level Obs.Metrics (fun () ->
      Obs.count "test.shape";
      Obs.observe_ns "test.shape" 123L;
      let buf = Buffer.create 256 in
      Obs.metrics_json buf;
      let doc = Buffer.contents buf in
      let contains sub =
        let n = String.length doc and m = String.length sub in
        let rec go i = i + m <= n && (String.sub doc i m = sub || go (i + 1)) in
        go 0
      in
      List.iter
        (fun key ->
          Alcotest.(check bool)
            (Printf.sprintf "has %s" key)
            true
            (contains (Printf.sprintf "\"%s\":" key)))
        [ "counters"; "histograms"; "caches" ];
      Alcotest.(check bool)
        "counter serialized" true
        (contains "\"name\": \"test.shape\""))

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting under nested Pool.map" `Quick
            test_span_nesting;
          Alcotest.test_case "chrome trace golden" `Quick
            test_chrome_trace_golden;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter merge deterministic" `Quick
            test_counter_merge_deterministic;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "metrics json shape" `Quick
            test_metrics_json_shape;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "disabled mode does not allocate" `Quick
            test_disabled_no_alloc;
        ] );
    ]
