(* Unit and property tests for the sampling substrate. *)

open Sampling

let check_float ?(eps = 1e-9) msg expected actual =
  if not (Numerics.Special.float_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let qtest ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* ------------------------------------------------------------------ *)
(* Rank                                                                *)
(* ------------------------------------------------------------------ *)

let test_rank_pps () =
  check_float "pps rank" 0.25 (Rank.rank Rank.PPS ~w:2. ~u:0.5);
  check_float "pps zero weight" infinity (Rank.rank Rank.PPS ~w:0. ~u:0.5)

let test_rank_exp () =
  check_float "exp rank" (-.log 0.5 /. 2.) (Rank.rank Rank.EXP ~w:2. ~u:0.5)

let test_rank_invalid () =
  Alcotest.check_raises "u = 0 rejected"
    (Invalid_argument "Rank.rank: seed must be in (0,1)") (fun () ->
      ignore (Rank.rank Rank.PPS ~w:1. ~u:0.))

let test_cdf () =
  check_float "pps cdf below" 0.6 (Rank.cdf Rank.PPS ~w:2. 0.3);
  check_float "pps cdf capped" 1. (Rank.cdf Rank.PPS ~w:2. 0.7);
  check_float "exp cdf" (1. -. exp (-0.6)) (Rank.cdf Rank.EXP ~w:2. 0.3);
  check_float "zero weight" 0. (Rank.cdf Rank.PPS ~w:0. 0.5);
  check_float "inclusion_prob alias" (Rank.cdf Rank.EXP ~w:3. 0.2)
    (Rank.inclusion_prob Rank.EXP ~w:3. ~tau:0.2)

let test_min_rank_exp () =
  check_float "min-rank CDF" (1. -. exp (-1.)) (Rank.min_rank_exp_total 2. 0.5)

let prop_cdf_rank_inverse =
  qtest "F_w(rank(u)) = u for both families"
    QCheck.(pair (float_bound_inclusive 1.) (float_bound_inclusive 10.))
    (fun (u0, w0) ->
      let u = 0.001 +. (0.998 *. u0) in
      let w = 0.1 +. w0 in
      List.for_all
        (fun fam ->
          Numerics.Special.float_equal ~eps:1e-9
            (Rank.cdf fam ~w (Rank.rank fam ~w ~u))
            u)
        [ Rank.PPS; Rank.EXP ])

(* ------------------------------------------------------------------ *)
(* Seeds                                                               *)
(* ------------------------------------------------------------------ *)

let test_seeds_shared () =
  let s = Seeds.create ~master:7 Seeds.Shared in
  check_float "same across instances"
    (Seeds.seed s ~instance:0 ~key:42)
    (Seeds.seed s ~instance:5 ~key:42)

let test_seeds_independent () =
  let s = Seeds.create ~master:7 Seeds.Independent in
  Alcotest.(check bool) "instances differ" true
    (Seeds.seed s ~instance:0 ~key:42 <> Seeds.seed s ~instance:1 ~key:42)

let test_seeds_deterministic () =
  let s = Seeds.create ~master:7 Seeds.Independent in
  let s' = Seeds.create ~master:7 Seeds.Independent in
  check_float "recomputable"
    (Seeds.seed s ~instance:3 ~key:9)
    (Seeds.seed s' ~instance:3 ~key:9)

let test_seeds_master () =
  let a = Seeds.create ~master:1 Seeds.Shared in
  let b = Seeds.create ~master:2 Seeds.Shared in
  Alcotest.(check bool) "masters differ" true
    (Seeds.seed a ~instance:0 ~key:5 <> Seeds.seed b ~instance:0 ~key:5)

let test_seeds_string () =
  let s = Seeds.create ~master:7 Seeds.Shared in
  let u = Seeds.seed_string s ~instance:0 ~key:"10.0.0.1" in
  Alcotest.(check bool) "in (0,1)" true (u > 0. && u < 1.)

let prop_consistent_ranks =
  qtest "shared seeds give consistent ranks"
    QCheck.(triple small_int (float_bound_inclusive 10.) (float_bound_inclusive 10.))
    (fun (key, w1, w2) ->
      let s = Seeds.create ~master:11 Seeds.Shared in
      let w1 = 0.1 +. w1 and w2 = 0.1 +. w2 in
      let r1 = Seeds.rank s Rank.PPS ~instance:0 ~key ~w:w1 in
      let r2 = Seeds.rank s Rank.PPS ~instance:1 ~key ~w:w2 in
      if w1 >= w2 then r1 <= r2 else r1 >= r2)

(* ------------------------------------------------------------------ *)
(* Instance                                                            *)
(* ------------------------------------------------------------------ *)

let test_instance_build () =
  let i = Instance.of_assoc [ (1, 2.); (2, 0.); (1, 3.); (5, 1.) ] in
  check_float "dup summed" 5. (Instance.value i 1);
  check_float "zero dropped" 0. (Instance.value i 2);
  Alcotest.(check bool) "mem" false (Instance.mem i 2);
  Alcotest.(check int) "cardinality" 2 (Instance.cardinality i);
  check_float "total" 6. (Instance.total i);
  Alcotest.(check (list int)) "keys" [ 1; 5 ] (Instance.keys i)

let test_instance_negative () =
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Instance.of_assoc: negative value") (fun () ->
      ignore (Instance.of_assoc [ (1, -2.) ]))

let test_instance_of_keys () =
  let i = Instance.of_keys [ 3; 1; 4 ] in
  check_float "binary" 1. (Instance.value i 3);
  Alcotest.(check int) "card" 3 (Instance.cardinality i)

let test_union_and_vectors () =
  let a = Instance.of_assoc [ (1, 2.); (2, 3.) ] in
  let b = Instance.of_assoc [ (2, 1.); (4, 5.) ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 4 ] (Instance.union_keys [ a; b ]);
  Alcotest.(check (array (float 1e-9))) "v(2)" [| 3.; 1. |]
    (Instance.values_of_key [ a; b ] 2)

let test_norms () =
  let a = Instance.of_assoc [ (1, 2.); (2, 3.) ] in
  let b = Instance.of_assoc [ (2, 1.); (4, 5.) ] in
  check_float "max dominance" (2. +. 3. +. 5.) (Instance.max_dominance [ a; b ]);
  check_float "min dominance" 1. (Instance.min_dominance [ a; b ]);
  check_float "l1" (2. +. 2. +. 5.) (Instance.l1_distance a b);
  Alcotest.(check int) "distinct" 3 (Instance.distinct_count [ a; b ]);
  check_float "jaccard" (1. /. 3.) (Instance.jaccard a b)

let test_jaccard_empty () =
  check_float "empty sets" 1. (Instance.jaccard Instance.empty Instance.empty)

(* ------------------------------------------------------------------ *)
(* Outcome                                                             *)
(* ------------------------------------------------------------------ *)

let test_oblivious_enumerate () =
  let probs = [| 0.3; 0.7; 0.5 |] in
  let outs = Outcome.Oblivious.enumerate ~probs [| 1.; 2.; 3. |] in
  Alcotest.(check int) "2^3 outcomes" 8 (List.length outs);
  check_float "probs sum to 1" 1.
    (List.fold_left (fun acc (p, _) -> acc +. p) 0. outs)

let test_oblivious_mask () =
  let probs = [| 0.3; 0.7 |] in
  let o = Outcome.Oblivious.of_mask ~probs [| 5.; 6. |] [| true; false |] in
  Alcotest.(check (list int)) "sampled" [ 0 ] (Outcome.Oblivious.sampled o);
  Alcotest.(check (list (float 0.))) "values" [ 5. ]
    (Outcome.Oblivious.sampled_values o);
  check_float "mask prob" (0.3 *. 0.3)
    (Outcome.Oblivious.prob_of_mask ~probs:[| 0.3; 0.7 |] [| true; false |])

let test_oblivious_draw_stats () =
  let rng = Numerics.Prng.create ~seed:21 () in
  let probs = [| 0.3; 0.7 |] in
  let n = 50_000 in
  let count = [| 0; 0 |] in
  for _ = 1 to n do
    let o = Outcome.Oblivious.draw rng ~probs [| 1.; 1. |] in
    List.iter (fun i -> count.(i) <- count.(i) + 1) (Outcome.Oblivious.sampled o)
  done;
  check_float ~eps:0.02 "p1 frequency" 0.3 (float_of_int count.(0) /. float_of_int n);
  check_float ~eps:0.02 "p2 frequency" 0.7 (float_of_int count.(1) /. float_of_int n)

let test_pps_of_seeds () =
  let taus = [| 1.; 2. |] in
  let o = Outcome.Pps.of_seeds ~taus ~seeds:[| 0.4; 0.4 |] [| 0.5; 0.5 |] in
  (* Entry 0: 0.5 >= 0.4·1 → sampled; entry 1: 0.5 < 0.4·2 → not. *)
  Alcotest.(check (list int)) "sampled" [ 0 ] (Outcome.Pps.sampled o);
  check_float "upper bound of unsampled" 0.8 (Outcome.Pps.upper_bound o 1);
  check_float "value of sampled" 0.5 (Outcome.Pps.upper_bound o 0);
  check_float "inclusion prob" 0.25
    (Outcome.Pps.inclusion_prob ~taus [| 0.5; 0.5 |] 1)

let test_pps_boundary () =
  let o = Outcome.Pps.of_seeds ~taus:[| 1. |] ~seeds:[| 0.5 |] [| 0.5 |] in
  Alcotest.(check (list int)) "v = u·tau is sampled" [ 0 ] (Outcome.Pps.sampled o)

let test_pps_expectation_constant () =
  check_float "E[const]" 7.
    (Outcome.Pps.expectation ~taus:[| 1.; 1.3 |] ~v:[| 0.4; 0.9 |] (fun _ -> 7.))

let test_pps_expectation_indicator () =
  let taus = [| 1.; 1.3 |] in
  let v = [| 0.4; 0.9 |] in
  let e =
    Outcome.Pps.expectation ~taus ~v (fun o ->
        if List.mem 0 (Outcome.Pps.sampled o) then 1. else 0.)
  in
  check_float ~eps:1e-9 "Pr[0 sampled] = v1/tau1" 0.4 e;
  let e2 =
    Outcome.Pps.expectation ~taus ~v (fun o ->
        if Outcome.Pps.sampled o = [ 0; 1 ] then 1. else 0.)
  in
  check_float ~eps:1e-9 "Pr[both]" (0.4 *. (0.9 /. 1.3)) e2

let test_binary_outcomes () =
  let probs = [| 0.3; 0.6 |] in
  let o = Outcome.Binary.of_below ~probs ~below:[| true; true |] [| 1; 0 |] in
  Alcotest.(check bool) "sampled 0" true o.Outcome.Binary.sampled.(0);
  Alcotest.(check bool) "not sampled 1" false o.Outcome.Binary.sampled.(1);
  Alcotest.(check (option int)) "knows v0 = 1" (Some 1) (Outcome.Binary.known_value o 0);
  Alcotest.(check (option int)) "knows v1 = 0" (Some 0) (Outcome.Binary.known_value o 1);
  let o2 = Outcome.Binary.of_below ~probs ~below:[| false; true |] [| 1; 1 |] in
  Alcotest.(check (option int)) "unknown" None (Outcome.Binary.known_value o2 0)

let test_binary_enumerate () =
  let outs = Outcome.Binary.enumerate ~probs:[| 0.3; 0.6 |] [| 1; 0 |] in
  Alcotest.(check int) "4 outcomes" 4 (List.length outs);
  check_float "sum 1" 1. (List.fold_left (fun a (p, _) -> a +. p) 0. outs)

let test_binary_rejects_nonbinary () =
  Alcotest.check_raises "values must be 0/1"
    (Invalid_argument "Binary: data must be 0/1") (fun () ->
      ignore
        (Outcome.Binary.of_below ~probs:[| 0.5 |] ~below:[| true |] [| 2 |]))

let test_binary_to_oblivious () =
  let probs = [| 0.3; 0.6 |] in
  let o = Outcome.Binary.of_below ~probs ~below:[| true; false |] [| 1; 1 |] in
  let m = Outcome.Binary.to_oblivious o in
  Alcotest.(check (list (float 0.))) "mapped values" [ 1. ]
    (Outcome.Oblivious.sampled_values m);
  let o2 = Outcome.Binary.of_below ~probs ~below:[| true; true |] [| 1; 0 |] in
  let m2 = Outcome.Binary.to_oblivious o2 in
  Alcotest.(check (list int)) "zero revealed as oblivious sample" [ 0; 1 ]
    (Outcome.Oblivious.sampled m2)

(* ------------------------------------------------------------------ *)
(* Poisson                                                             *)
(* ------------------------------------------------------------------ *)

let small_instance =
  Instance.of_assoc (List.init 100 (fun i -> (i + 1, float_of_int (1 + (i mod 10)))))

let test_pps_sample_rule () =
  let seeds = Seeds.create ~master:3 Seeds.Independent in
  let tau = 20. in
  let s = Poisson.pps_sample seeds ~instance:0 ~tau small_instance in
  (* Verify every key against the rule v >= u·tau. *)
  Instance.iter
    (fun h v ->
      let u = Seeds.seed seeds ~instance:0 ~key:h in
      let inside = List.mem_assoc h s.Poisson.entries in
      Alcotest.(check bool)
        (Printf.sprintf "key %d" h)
        (v >= u *. tau) inside)
    small_instance

let test_pps_expected_size () =
  check_float "closed form"
    (Instance.fold (fun _ v a -> a +. Float.min 1. (v /. 20.)) small_instance 0.)
    (Poisson.pps_expected_size ~tau:20. small_instance)

let test_tau_for_expected_size_full () =
  (* k = n means "keep everything". The old code returned tau = 0, which
     pps_sample then rejected — the CLI default (k larger than a small
     instance, clamped to n) crashed. *)
  let inst = Instance.of_assoc [ (1, 2.); (2, 3.); (3, 0.5) ] in
  let tau = Poisson.tau_for_expected_size inst 3. in
  Alcotest.(check bool) "tau positive" true (tau > 0.);
  check_float ~eps:1e-9 "expected size n" 3.
    (Poisson.pps_expected_size ~tau inst);
  let seeds = Seeds.create ~master:42 Seeds.Independent in
  let s = Poisson.pps_sample seeds ~instance:0 ~tau inst in
  Alcotest.(check int) "every key sampled" 3
    (List.length s.Poisson.entries)

let test_tau_for_expected_size () =
  let k = 13. in
  let tau = Poisson.tau_for_expected_size small_instance k in
  check_float ~eps:1e-6 "inverse" k (Poisson.pps_expected_size ~tau small_instance)

let test_pps_ht_unbiased () =
  let total = Instance.total small_instance in
  let acc = Numerics.Stats.Acc.create () in
  for m = 1 to 400 do
    let seeds = Seeds.create ~master:m Seeds.Independent in
    let s = Poisson.pps_sample seeds ~instance:0 ~tau:30. small_instance in
    Numerics.Stats.Acc.add acc (Poisson.pps_ht_estimate s ~select:(fun _ -> true))
  done;
  let mean = Numerics.Stats.Acc.mean acc in
  let sd = sqrt (Numerics.Stats.Acc.var acc /. 400.) in
  if abs_float (mean -. total) > 5. *. sd +. 1e-9 then
    Alcotest.failf "HT biased: mean %g vs %g (sd %g)" mean total sd

let test_oblivious_sample () =
  let seeds = Seeds.create ~master:3 Seeds.Independent in
  let domain = List.init 200 (fun i -> i + 1) in
  let s = Poisson.oblivious_sample seeds ~instance:0 ~p:0.4 ~domain small_instance in
  Alcotest.(check int) "domain size" 200 s.Poisson.domain_size;
  (* Inclusion decided by seed < p, value irrelevant (keys 101.. have 0). *)
  List.iter
    (fun h ->
      let u = Seeds.seed seeds ~instance:0 ~key:h in
      Alcotest.(check bool)
        (Printf.sprintf "key %d" h)
        (u < 0.4)
        (List.mem_assoc h s.Poisson.entries))
    domain

let test_oblivious_ht () =
  let seeds = Seeds.create ~master:3 Seeds.Independent in
  let domain = List.init 100 (fun i -> i + 1) in
  let acc = Numerics.Stats.Acc.create () in
  for m = 1 to 400 do
    let seeds = Seeds.create ~master:m (Seeds.mode seeds) in
    let s = Poisson.oblivious_sample seeds ~instance:0 ~p:0.3 ~domain small_instance in
    Numerics.Stats.Acc.add acc
      (Poisson.oblivious_ht_estimate s ~select:(fun _ -> true))
  done;
  let total = Instance.total small_instance in
  let mean = Numerics.Stats.Acc.mean acc in
  let sd = sqrt (Numerics.Stats.Acc.var acc /. 400.) in
  if abs_float (mean -. total) > 5. *. sd then
    Alcotest.failf "oblivious HT biased: %g vs %g" mean total

let test_key_outcome_pps () =
  let seeds = Seeds.create ~master:3 Seeds.Independent in
  let a = Instance.of_assoc [ (1, 0.8); (2, 0.1) ] in
  let b = Instance.of_assoc [ (1, 0.2); (3, 0.9) ] in
  let taus = [| 1.; 1. |] in
  let o = Poisson.key_outcome_pps seeds ~taus ~instances:[ a; b ] 1 in
  Alcotest.(check int) "r = 2" 2 (Outcome.Pps.r o);
  (* Values must match the instance data where sampled. *)
  List.iter
    (fun i ->
      match o.Outcome.Pps.values.(i) with
      | Some v -> check_float "sampled value" (Instance.value (if i = 0 then a else b) 1) v
      | None -> ())
    [ 0; 1 ]

let test_key_outcome_binary () =
  let seeds = Seeds.create ~master:3 Seeds.Independent in
  let a = Instance.of_keys [ 1; 2 ] in
  let b = Instance.of_keys [ 2 ] in
  let o = Poisson.key_outcome_binary seeds ~probs:[| 0.9; 0.9 |] ~instances:[ a; b ] 2 in
  Alcotest.(check int) "r" 2 (Outcome.Binary.r o);
  let o1 = Poisson.key_outcome_binary seeds ~probs:[| 0.9; 0.9 |] ~instances:[ a; b ] 1 in
  Alcotest.(check bool) "key 1 absent from b never sampled there" false
    o1.Outcome.Binary.sampled.(1)

(* ------------------------------------------------------------------ *)
(* Bottom-k                                                            *)
(* ------------------------------------------------------------------ *)

let test_bottomk_size_and_threshold () =
  let seeds = Seeds.create ~master:5 Seeds.Independent in
  let s = Bottom_k.sample seeds ~family:Rank.PPS ~instance:0 ~k:10 small_instance in
  Alcotest.(check int) "k entries" 10 (List.length s.Bottom_k.entries);
  (* Threshold is strictly above every sampled rank. *)
  List.iter
    (fun e ->
      Alcotest.(check bool) "rank below threshold" true
        (e.Bottom_k.rank <= s.Bottom_k.threshold))
    s.Bottom_k.entries;
  (* Sample of everything: threshold infinite. *)
  let s2 = Bottom_k.sample seeds ~family:Rank.PPS ~instance:0 ~k:1000 small_instance in
  Alcotest.(check int) "all keys" 100 (List.length s2.Bottom_k.entries);
  Alcotest.(check bool) "threshold inf" true (s2.Bottom_k.threshold = infinity)

let test_bottomk_rank_order () =
  let seeds = Seeds.create ~master:5 Seeds.Independent in
  let s = Bottom_k.sample seeds ~family:Rank.EXP ~instance:0 ~k:10 small_instance in
  let ranks = List.map (fun e -> e.Bottom_k.rank) s.Bottom_k.entries in
  Alcotest.(check bool) "sorted" true (List.sort compare ranks = ranks)

let test_priority_equals_rc () =
  let seeds = Seeds.create ~master:5 Seeds.Independent in
  let s = Bottom_k.sample seeds ~family:Rank.PPS ~instance:0 ~k:20 small_instance in
  check_float ~eps:1e-9 "priority = RC for PPS ranks"
    (Bottom_k.rc_estimate s ~select:(fun _ -> true))
    (Bottom_k.priority_estimate s ~select:(fun _ -> true))

let test_priority_exp_rejected () =
  let seeds = Seeds.create ~master:5 Seeds.Independent in
  let s = Bottom_k.sample seeds ~family:Rank.EXP ~instance:0 ~k:5 small_instance in
  Alcotest.check_raises "EXP rejected"
    (Invalid_argument "Bottom_k.priority_estimate: PPS ranks only") (fun () ->
      ignore (Bottom_k.priority_estimate s ~select:(fun _ -> true)))

let test_bottomk_rc_unbiased () =
  let total = Instance.total small_instance in
  List.iter
    (fun family ->
      let acc = Numerics.Stats.Acc.create () in
      for m = 1 to 500 do
        let seeds = Seeds.create ~master:m Seeds.Independent in
        let s = Bottom_k.sample seeds ~family ~instance:0 ~k:20 small_instance in
        Numerics.Stats.Acc.add acc (Bottom_k.rc_estimate s ~select:(fun _ -> true))
      done;
      let mean = Numerics.Stats.Acc.mean acc in
      let sd = sqrt (Numerics.Stats.Acc.var acc /. 500.) in
      if abs_float (mean -. total) > 5. *. sd then
        Alcotest.failf "RC biased (%s): %g vs %g"
          (Format.asprintf "%a" Rank.pp_family family)
          mean total)
    [ Rank.PPS; Rank.EXP ]

(* ------------------------------------------------------------------ *)
(* VarOpt                                                              *)
(* ------------------------------------------------------------------ *)

let test_varopt_invariants () =
  let rng = Numerics.Prng.create ~seed:31 () in
  let t = Varopt.of_instance ~k:16 rng small_instance in
  Alcotest.(check int) "size = k" 16 (Varopt.size t);
  check_float "total tracked" (Instance.total small_instance) (Varopt.total_weight t);
  (* The full-population estimate is exact (variance-optimal ⇒ zero
     variance on the total). *)
  check_float ~eps:1e-6 "sum of adjusted weights = total"
    (Instance.total small_instance)
    (Varopt.estimate t ~select:(fun _ -> true));
  (* Adjusted weights are at least the threshold or the exact weight. *)
  List.iter
    (fun (h, w) ->
      let orig = Instance.value small_instance h in
      check_float "adjusted = max(w, tau)" (Float.max orig (Varopt.threshold t)) w)
    (Varopt.entries t)

let test_varopt_under_capacity () =
  let rng = Numerics.Prng.create ~seed:31 () in
  let t = Varopt.create ~k:10 in
  Varopt.add t rng ~key:1 ~weight:5.;
  Varopt.add t rng ~key:2 ~weight:3.;
  Alcotest.(check int) "size" 2 (Varopt.size t);
  check_float "threshold 0" 0. (Varopt.threshold t);
  check_float "exact estimate" 8. (Varopt.estimate t ~select:(fun _ -> true))

let test_varopt_subset_unbiased () =
  let select h = h mod 3 = 0 in
  let truth =
    Instance.fold (fun h v a -> if select h then a +. v else a) small_instance 0.
  in
  let acc = Numerics.Stats.Acc.create () in
  for m = 1 to 600 do
    let rng = Numerics.Prng.create ~seed:m () in
    let t = Varopt.of_instance ~k:16 rng small_instance in
    Numerics.Stats.Acc.add acc (Varopt.estimate t ~select)
  done;
  let mean = Numerics.Stats.Acc.mean acc in
  let sd = sqrt (Numerics.Stats.Acc.var acc /. 600.) in
  if abs_float (mean -. truth) > 5. *. sd then
    Alcotest.failf "varopt subset biased: %g vs %g (sd %g)" mean truth sd

let test_varopt_rejects_bad_weight () =
  let rng = Numerics.Prng.create () in
  let t = Varopt.create ~k:2 in
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Varopt.add: weight must be positive") (fun () ->
      Varopt.add t rng ~key:1 ~weight:0.)

let prop_varopt_total_preserved =
  qtest ~count:50 "varopt estimate of the whole population is exact"
    QCheck.small_int
    (fun seed ->
      let rng = Numerics.Prng.create ~seed () in
      let n = 20 + Numerics.Prng.int rng 50 in
      let inst =
        Instance.of_assoc
          (List.init n (fun i -> (i + 1, 0.5 +. (10. *. Numerics.Prng.float rng))))
      in
      let t = Varopt.of_instance ~k:8 rng inst in
      Numerics.Special.float_equal ~eps:1e-6 (Instance.total inst)
        (Varopt.estimate t ~select:(fun _ -> true)))

(* The fast two-structure insertion must land on exactly the threshold
   the O(k log k) sort-based oracle computes: before each full-capacity
   add, the k+1 candidates are the current adjusted weights plus the
   newcomer, and the post-add τ solves Σ min(1, w/τ) = k over them. *)
let test_varopt_tau_matches_oracle () =
  let k = 8 in
  List.iter
    (fun seed ->
      let rng = Numerics.Prng.create ~seed () in
      let wrng = Numerics.Prng.create ~seed:(seed + 1000) () in
      let t = Varopt.create ~k in
      for key = 1 to 120 do
        let weight = 0.25 +. (10. *. Numerics.Prng.float wrng) in
        if Varopt.size t = k then begin
          let cands =
            Array.of_list (weight :: List.map snd (Varopt.entries t))
          in
          let expect = Varopt.solve_tau k cands in
          Varopt.add t rng ~key ~weight;
          check_float ~eps:1e-9 "tau = solve_tau oracle" expect
            (Varopt.threshold t)
        end
        else Varopt.add t rng ~key ~weight
      done)
    [ 1; 2; 3 ]

let test_varopt_total_across_k () =
  let n = 150 in
  let inst =
    Instance.of_assoc
      (List.init n (fun i -> (i + 1, 0.1 +. float_of_int ((i * 7) mod 23))))
  in
  List.iter
    (fun k ->
      let rng = Numerics.Prng.create ~seed:(100 + k) () in
      let t = Varopt.of_instance ~k rng inst in
      Alcotest.(check int)
        (Printf.sprintf "size, k=%d" k)
        (Stdlib.min k n) (Varopt.size t);
      check_float ~eps:1e-6
        (Printf.sprintf "estimate = total, k=%d" k)
        (Instance.total inst)
        (Varopt.estimate t ~select:(fun _ -> true));
      let tau = Varopt.threshold t in
      List.iter
        (fun (_, w) ->
          if w < tau -. 1e-9 then
            Alcotest.failf "k=%d: adjusted weight %g below tau %g" k w tau)
        (Varopt.entries t))
    [ 1; 2; 3; 5; 8; 16; 64; 127; 200 ]

(* Distributional agreement with the seed implementation: the two walk
   their drop candidates differently, so they are not draw-for-draw
   equal, but per-key inclusion probabilities must match. Compare
   frequencies over many independent streams with a two-sample normal
   bound (4.5σ per key; seeds fixed, so the outcome is deterministic). *)
let test_varopt_matches_reference_frequencies () =
  let n_keys = 40 in
  let inst =
    Instance.of_assoc
      (List.init n_keys (fun i ->
           (i + 1, 0.5 +. (float_of_int ((i * 13) mod 19) /. 3.))))
  in
  let k = 8 in
  let streams = 10_000 in
  let fast = Array.make (n_keys + 1) 0 in
  let refc = Array.make (n_keys + 1) 0 in
  for s = 1 to streams do
    let rng = Numerics.Prng.create ~seed:s () in
    let t = Varopt.of_instance ~k rng inst in
    List.iter (fun (h, _) -> fast.(h) <- fast.(h) + 1) (Varopt.entries t);
    let rng = Numerics.Prng.create ~seed:(s + 777_777) () in
    let r = Varopt.Reference.of_instance ~k rng inst in
    List.iter
      (fun (h, _) -> refc.(h) <- refc.(h) + 1)
      (Varopt.Reference.entries r)
  done;
  let nf = float_of_int streams in
  for h = 1 to n_keys do
    let pf = float_of_int fast.(h) /. nf in
    let pr = float_of_int refc.(h) /. nf in
    let p = (pf +. pr) /. 2. in
    let sd = sqrt (Float.max 1e-9 (p *. (1. -. p) *. 2. /. nf)) in
    if abs_float (pf -. pr) > 4.5 *. sd then
      Alcotest.failf "key %d inclusion: fast %.4f vs reference %.4f (sd %.5f)"
        h pf pr sd
  done

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

let test_summary_schemes () =
  let seeds = Seeds.create ~master:8 Seeds.Independent in
  List.iter
    (fun scheme ->
      let s = Summary.summarize seeds scheme ~instance:0 small_instance in
      Alcotest.(check bool) "scheme preserved" true (Summary.scheme s = scheme);
      Alcotest.(check bool) "nonempty" true (Summary.size s > 0);
      let ks = Summary.keys s in
      Alcotest.(check bool) "sorted" true (List.sort compare ks = ks);
      List.iter
        (fun h -> Alcotest.(check bool) "mem" true (Summary.mem s h))
        ks)
    [
      Summary.Poisson_pps { tau = 30. };
      Summary.Bottom_k { k = 15; family = Rank.PPS };
      Summary.Bottom_k { k = 15; family = Rank.EXP };
      Summary.Var_opt { k = 15 };
    ]

let test_summary_fixed_size () =
  let seeds = Seeds.create ~master:8 Seeds.Independent in
  List.iter
    (fun scheme ->
      let s = Summary.summarize seeds scheme ~instance:0 small_instance in
      Alcotest.(check int) "size = k" 15 (Summary.size s))
    [ Summary.Bottom_k { k = 15; family = Rank.PPS }; Summary.Var_opt { k = 15 } ]

let test_summary_unbiased () =
  let total = Instance.total small_instance in
  List.iter
    (fun scheme ->
      let acc = Numerics.Stats.Acc.create () in
      for m = 1 to 400 do
        let seeds = Seeds.create ~master:m Seeds.Independent in
        let s = Summary.summarize seeds scheme ~instance:0 small_instance in
        Numerics.Stats.Acc.add acc (Summary.subset_sum s ~select:(fun _ -> true))
      done;
      let mean = Numerics.Stats.Acc.mean acc in
      let sd = sqrt (Numerics.Stats.Acc.var acc /. 400.) in
      if abs_float (mean -. total) > (5. *. sd) +. 1e-9 then
        Alcotest.failf "summary subset-sum biased: %g vs %g" mean total)
    [
      Summary.Poisson_pps { tau = 30. };
      Summary.Bottom_k { k = 20; family = Rank.PPS };
      Summary.Bottom_k { k = 20; family = Rank.EXP };
      Summary.Var_opt { k = 20 };
    ]

let test_summary_thresholds () =
  let seeds = Seeds.create ~master:8 Seeds.Independent in
  let p = Summary.summarize seeds (Summary.Poisson_pps { tau = 30. }) ~instance:0 small_instance in
  Alcotest.(check (option (float 1e-12))) "poisson tau" (Some 30.) (Summary.threshold p);
  let bk = Summary.summarize seeds (Summary.Bottom_k { k = 10; family = Rank.PPS }) ~instance:0 small_instance in
  (match Summary.threshold bk with
  | Some tau -> Alcotest.(check bool) "positive" true (tau > 0.)
  | None -> Alcotest.fail "expected a threshold");
  let bke = Summary.summarize seeds (Summary.Bottom_k { k = 10; family = Rank.EXP }) ~instance:0 small_instance in
  Alcotest.(check bool) "exp ranks expose none" true (Summary.threshold bke = None);
  let vo = Summary.summarize seeds (Summary.Var_opt { k = 10 }) ~instance:0 small_instance in
  Alcotest.(check bool) "varopt exposes none" true (Summary.threshold vo = None)

(* ------------------------------------------------------------------ *)
(* Io                                                                  *)
(* ------------------------------------------------------------------ *)

let test_io_instance_roundtrip () =
  let inst = Instance.of_assoc [ (1, 0.1); (7, 3.25); (42, 1e-9); (5, 123456.789) ] in
  let s = Io.instance_to_string inst in
  let back = Io.instance_of_string s in
  Alcotest.(check (list int)) "keys" (Instance.keys inst) (Instance.keys back);
  List.iter
    (fun k -> check_float ~eps:0. "lossless value" (Instance.value inst k) (Instance.value back k))
    (Instance.keys inst)

let test_io_pps_roundtrip () =
  let p = { Poisson.instance_id = 3; tau = 0.7321; entries = [ (1, 2.5); (9, 0.125) ] } in
  let back = Io.pps_of_string (Io.pps_to_string p) in
  Alcotest.(check int) "id" p.Poisson.instance_id back.Poisson.instance_id;
  check_float ~eps:0. "tau" p.Poisson.tau back.Poisson.tau;
  Alcotest.(check int) "entries" 2 (List.length back.Poisson.entries);
  check_float ~eps:0. "entry" 0.125 (List.assoc 9 back.Poisson.entries)

let test_io_files () =
  let path = Filename.temp_file "inst" ".txt" in
  let inst = Instance.of_assoc [ (1, 2.); (2, 3.) ] in
  Io.write_instance ~path inst;
  let back = Io.read_instance ~path in
  Sys.remove path;
  check_float "value" 3. (Instance.value back 2)

let test_io_comments_and_blanks () =
  let s = "# a comment
optsample-instance 1

1 0x1p+1
# mid comment
2 0x1.8p+1
" in
  let i = Io.instance_of_string s in
  check_float "parses around comments" 2. (Instance.value i 1);
  check_float "second" 3. (Instance.value i 2)

let test_io_errors () =
  Alcotest.(check bool) "wrong magic" true
    (try ignore (Io.instance_of_string "nonsense 9
1 2"); false
     with Failure _ -> true);
  Alcotest.(check bool) "bad entry" true
    (try ignore (Io.instance_of_string "optsample-instance 1
oops"); false
     with Failure _ -> true);
  Alcotest.(check bool) "empty" true
    (try ignore (Io.pps_of_string ""); false with Failure _ -> true)

let test_io_result_roundtrip () =
  let inst = Instance.of_assoc [ (1, 0.1); (7, 3.25); (42, 1e-9) ] in
  (match Io.instance_of_string_r (Io.instance_to_string inst) with
  | Error e -> Alcotest.failf "instance: %s" (Io.parse_error_to_string e)
  | Ok back ->
      Alcotest.(check (list int)) "keys" (Instance.keys inst) (Instance.keys back));
  let p = { Poisson.instance_id = 3; tau = 0.7321; entries = [ (1, 2.5); (9, 0.125) ] } in
  match Io.pps_of_string_r (Io.pps_to_string p) with
  | Error e -> Alcotest.failf "pps: %s" (Io.parse_error_to_string e)
  | Ok back ->
      Alcotest.(check int) "id" 3 back.Poisson.instance_id;
      check_float ~eps:0. "tau" p.Poisson.tau back.Poisson.tau

let fail_line what expected = function
  | Ok _ -> Alcotest.failf "%s: expected a parse error" what
  | Error { Io.line; message } ->
      Alcotest.(check int)
        (Printf.sprintf "%s reports its line (%s)" what message)
        expected line

let test_io_malformed_structured () =
  (* Truncated pps header: tau missing. *)
  fail_line "truncated header" 1 (Io.pps_of_string_r "optsample-pps 1 5\n1 0x1p+0");
  (* Wrong magic is a line-1 diagnosis too. *)
  fail_line "wrong magic" 1 (Io.instance_of_string_r "nonsense 9\n1 0x1p+0");
  (* A value that is not a float literal, on its actual line. *)
  fail_line "bad hex float" 3
    (Io.instance_of_string_r "optsample-instance 1\n1 0x1p+0\n2 0xzz");
  (* Non-numeric key. *)
  fail_line "bad key" 2 (Io.instance_of_string_r "optsample-instance 1\nkey 0x1p+0");
  (* Duplicate key: the diagnostic names the repeated line and the
     message references where it was first seen. *)
  (match
     Io.instance_of_string_r "optsample-instance 1\n1 0x1p+0\n2 0x1p+1\n1 0x1p+2"
   with
  | Ok _ -> Alcotest.fail "duplicate key accepted"
  | Error { Io.line; message } ->
      Alcotest.(check int) "duplicate reported on its line" 4 line;
      Alcotest.(check bool)
        (Printf.sprintf "message mentions first sighting (%s)" message)
        true
        (String.length message > 0
        && String.index_opt message '2' <> None));
  (* Empty input. *)
  fail_line "empty pps" 0 (Io.pps_of_string_r "");
  (* Bad tau in the pps header. *)
  fail_line "bad tau" 1 (Io.pps_of_string_r "optsample-pps 1 5 oops\n1 0x1p+0")

let test_io_crlf_and_final_line () =
  (* CRLF files (Windows editors, git autocrlf) must parse with the same
     values as their LF twins. The '\r' used to be glued to the last
     field and break float parsing on every line. *)
  let crlf = "optsample-instance 1\r\n1 0x1p+1\r\n2 0x1.8p+1\r\n" in
  (match Io.instance_of_string_r crlf with
  | Error e -> Alcotest.failf "CRLF rejected: %s" (Io.parse_error_to_string e)
  | Ok i ->
      check_float ~eps:0. "CRLF value 1" 2. (Instance.value i 1);
      check_float ~eps:0. "CRLF value 2" 3. (Instance.value i 2));
  (* A final line without a trailing newline still parses and still
     carries its own line number in diagnostics. *)
  (match Io.instance_of_string_r "optsample-instance 1\n1 0x1p+1\n2 0x1.8p+1" with
  | Error e ->
      Alcotest.failf "missing trailing newline rejected: %s"
        (Io.parse_error_to_string e)
  | Ok i -> check_float ~eps:0. "last line sans newline" 3. (Instance.value i 2));
  fail_line "CRLF error keeps its line" 3
    (Io.instance_of_string_r "optsample-instance 1\r\n1 0x1p+1\r\n2 0xzz\r\n");
  fail_line "unterminated error line" 3
    (Io.instance_of_string_r "optsample-instance 1\n1 0x1p+1\n2 0xzz")

let test_io_weight_guards () =
  (* Negative weights used to surface from Instance.of_assoc as a
     "line 0" failure; now the parser rejects them on their own line. *)
  fail_line "negative weight" 3
    (Io.instance_of_string_r "optsample-instance 1\n1 0x1p+0\n2 -0x1p+0");
  (* NaN passed the old [v < 0.] check and poisoned downstream sums. *)
  fail_line "nan weight" 2
    (Io.instance_of_string_r "optsample-instance 1\n1 nan");
  fail_line "infinite weight" 2
    (Io.instance_of_string_r "optsample-instance 1\n1 infinity");
  (* Zero is a legitimate weight (an item that cannot be sampled). *)
  match Io.instance_of_string_r "optsample-instance 1\n1 0x0p+0\n2 0x1p+0" with
  | Error e -> Alcotest.failf "zero weight rejected: %s" (Io.parse_error_to_string e)
  | Ok i -> check_float ~eps:0. "zero weight kept" 0. (Instance.value i 1)

let test_io_pps_tau_guards () =
  (* tau is a sampling threshold: non-positive or non-finite values make
     every inclusion probability meaningless. *)
  fail_line "nan tau" 1 (Io.pps_of_string_r "optsample-pps 1 5 nan\n1 0x1p+0");
  fail_line "zero tau" 1 (Io.pps_of_string_r "optsample-pps 1 5 0x0p+0\n1 0x1p+0");
  fail_line "negative tau" 1
    (Io.pps_of_string_r "optsample-pps 1 5 -0x1p+0\n1 0x1p+0");
  fail_line "infinite tau" 1
    (Io.pps_of_string_r "optsample-pps 1 5 infinity\n1 0x1p+0");
  match Io.pps_of_string_r "optsample-pps 1 5 0x1p-1\r\n1 0x1p+0\r" with
  | Error e -> Alcotest.failf "CRLF pps rejected: %s" (Io.parse_error_to_string e)
  | Ok p -> check_float ~eps:0. "CRLF pps tau" 0.5 p.Poisson.tau

let test_io_read_opt_missing_file () =
  match Io.read_instance_opt ~path:"/nonexistent/optsample-test-io" with
  | Ok _ -> Alcotest.fail "expected an error for a missing file"
  | Error { Io.line; message } ->
      Alcotest.(check int) "not line-specific" 0 line;
      Alcotest.(check bool)
        (Printf.sprintf "mentions the path (%s)" message)
        true
        (String.length message > 0)

let test_io_outcome_roundtrip () =
  (* Outcome persistence is lossless: thresholds, seeds, sampled values
     and the sampled/unsampled distinction all survive. *)
  let o =
    {
      Outcome.Pps.taus = [| 30.; 45. |];
      seeds = [| 0.125; 0.7321 |];
      values = [| Some 12.5; None |];
    }
  in
  (match Io.outcome_of_string_r (Io.outcome_to_string o) with
  | Error e -> Alcotest.failf "outcome: %s" (Io.parse_error_to_string e)
  | Ok back ->
      Alcotest.(check int) "arity" 2 (Array.length back.Outcome.Pps.taus);
      Array.iteri
        (fun i t -> check_float ~eps:0. "tau" t back.Outcome.Pps.taus.(i))
        o.Outcome.Pps.taus;
      Array.iteri
        (fun i u -> check_float ~eps:0. "seed" u back.Outcome.Pps.seeds.(i))
        o.Outcome.Pps.seeds;
      Alcotest.(check bool) "values" true
        (back.Outcome.Pps.values = o.Outcome.Pps.values));
  (* File round trip. *)
  let path = Filename.temp_file "outcome" ".txt" in
  Io.write_outcome ~path o;
  let back = Io.read_outcome ~path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true
    (back.Outcome.Pps.values = o.Outcome.Pps.values)

let test_io_outcome_estimate_after_reload () =
  (* The per-key estimators see exactly the persisted outcome. *)
  let seeds = Seeds.create ~master:7 Seeds.Independent in
  let o =
    Sampling.Outcome.Pps.of_seeds ~taus:[| 30.; 45. |]
      ~seeds:
        [|
          Seeds.seed seeds ~instance:0 ~key:3; Seeds.seed seeds ~instance:1 ~key:3;
        |]
      [| 20.; 1.5 |]
  in
  let back = Io.outcome_of_string (Io.outcome_to_string o) in
  check_float ~eps:0. "same HT estimate" (Estcore.Ht.max_pps o)
    (Estcore.Ht.max_pps back);
  check_float ~eps:0. "same L estimate" (Estcore.Max_pps.l o)
    (Estcore.Max_pps.l back)

let test_io_outcome_guards () =
  let header = "optsample-outcome 1 2\n" in
  fail_line "wrong magic" 1 (Io.outcome_of_string_r "nonsense 1 2\n0x1p+0 0x1p-1 -");
  fail_line "bad arity" 1 (Io.outcome_of_string_r "optsample-outcome 1 zero\n");
  (* Arity mismatch is structural, not line-specific. *)
  fail_line "missing entries" 0 (Io.outcome_of_string_r (header ^ "0x1p+0 0x1p-1 -"));
  fail_line "seed out of range" 2
    (Io.outcome_of_string_r (header ^ "0x1p+0 0x1p+1 -\n0x1p+0 0x1p-1 -"));
  fail_line "bad tau" 3
    (Io.outcome_of_string_r (header ^ "0x1p+0 0x1p-1 -\n-0x1p+0 0x1p-1 -"));
  fail_line "negative value" 2
    (Io.outcome_of_string_r (header ^ "0x1p+0 0x1p-1 -0x1p+0\n0x1p+0 0x1p-1 -"));
  (* A sampled value below u·tau contradicts the sampling predicate. *)
  fail_line "inconsistent sampled value" 2
    (Io.outcome_of_string_r
       (header ^ "0x1p+4 0x1p-1 0x1p+0\n0x1p+0 0x1p-1 -"))

let test_io_sample_estimate_after_reload () =
  (* The deployment story: sample at the source, persist, estimate later. *)
  let seeds = Seeds.create ~master:12 Seeds.Independent in
  let sample = Poisson.pps_sample seeds ~instance:0 ~tau:30. small_instance in
  let reloaded = Io.pps_of_string (Io.pps_to_string sample) in
  check_float ~eps:0. "same estimate"
    (Poisson.pps_ht_estimate sample ~select:(fun _ -> true))
    (Poisson.pps_ht_estimate reloaded ~select:(fun _ -> true))

let () =
  Alcotest.run "sampling"
    [
      ( "rank",
        [
          Alcotest.test_case "pps" `Quick test_rank_pps;
          Alcotest.test_case "exp" `Quick test_rank_exp;
          Alcotest.test_case "invalid seed" `Quick test_rank_invalid;
          Alcotest.test_case "cdf" `Quick test_cdf;
          Alcotest.test_case "min-rank exp" `Quick test_min_rank_exp;
          prop_cdf_rank_inverse;
        ] );
      ( "seeds",
        [
          Alcotest.test_case "shared" `Quick test_seeds_shared;
          Alcotest.test_case "independent" `Quick test_seeds_independent;
          Alcotest.test_case "deterministic" `Quick test_seeds_deterministic;
          Alcotest.test_case "master" `Quick test_seeds_master;
          Alcotest.test_case "string keys" `Quick test_seeds_string;
          prop_consistent_ranks;
        ] );
      ( "instance",
        [
          Alcotest.test_case "build" `Quick test_instance_build;
          Alcotest.test_case "negative" `Quick test_instance_negative;
          Alcotest.test_case "of_keys" `Quick test_instance_of_keys;
          Alcotest.test_case "union/vectors" `Quick test_union_and_vectors;
          Alcotest.test_case "norms" `Quick test_norms;
          Alcotest.test_case "jaccard empty" `Quick test_jaccard_empty;
        ] );
      ( "outcome",
        [
          Alcotest.test_case "oblivious enumerate" `Quick test_oblivious_enumerate;
          Alcotest.test_case "oblivious mask" `Quick test_oblivious_mask;
          Alcotest.test_case "oblivious draw stats" `Quick test_oblivious_draw_stats;
          Alcotest.test_case "pps of_seeds" `Quick test_pps_of_seeds;
          Alcotest.test_case "pps boundary" `Quick test_pps_boundary;
          Alcotest.test_case "pps E[const]" `Quick test_pps_expectation_constant;
          Alcotest.test_case "pps E[indicator]" `Quick test_pps_expectation_indicator;
          Alcotest.test_case "binary outcomes" `Quick test_binary_outcomes;
          Alcotest.test_case "binary enumerate" `Quick test_binary_enumerate;
          Alcotest.test_case "binary domain check" `Quick test_binary_rejects_nonbinary;
          Alcotest.test_case "binary→oblivious map" `Quick test_binary_to_oblivious;
        ] );
      ( "poisson",
        [
          Alcotest.test_case "pps rule" `Quick test_pps_sample_rule;
          Alcotest.test_case "expected size" `Quick test_pps_expected_size;
          Alcotest.test_case "tau inverse" `Quick test_tau_for_expected_size;
          Alcotest.test_case "tau for k = n" `Quick
            test_tau_for_expected_size_full;
          Alcotest.test_case "pps HT unbiased" `Slow test_pps_ht_unbiased;
          Alcotest.test_case "oblivious rule" `Quick test_oblivious_sample;
          Alcotest.test_case "oblivious HT unbiased" `Slow test_oblivious_ht;
          Alcotest.test_case "key outcome pps" `Quick test_key_outcome_pps;
          Alcotest.test_case "key outcome binary" `Quick test_key_outcome_binary;
        ] );
      ( "bottom-k",
        [
          Alcotest.test_case "size/threshold" `Quick test_bottomk_size_and_threshold;
          Alcotest.test_case "rank order" `Quick test_bottomk_rank_order;
          Alcotest.test_case "priority = RC" `Quick test_priority_equals_rc;
          Alcotest.test_case "EXP priority rejected" `Quick test_priority_exp_rejected;
          Alcotest.test_case "RC unbiased" `Slow test_bottomk_rc_unbiased;
        ] );
      ( "summary",
        [
          Alcotest.test_case "schemes" `Quick test_summary_schemes;
          Alcotest.test_case "fixed size" `Quick test_summary_fixed_size;
          Alcotest.test_case "unbiased" `Slow test_summary_unbiased;
          Alcotest.test_case "thresholds" `Quick test_summary_thresholds;
        ] );
      ( "io",
        [
          Alcotest.test_case "instance roundtrip" `Quick test_io_instance_roundtrip;
          Alcotest.test_case "pps roundtrip" `Quick test_io_pps_roundtrip;
          Alcotest.test_case "file io" `Quick test_io_files;
          Alcotest.test_case "comments/blanks" `Quick test_io_comments_and_blanks;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "result roundtrip" `Quick test_io_result_roundtrip;
          Alcotest.test_case "malformed input (structured)" `Quick
            test_io_malformed_structured;
          Alcotest.test_case "CRLF and final line" `Quick
            test_io_crlf_and_final_line;
          Alcotest.test_case "weight guards" `Quick test_io_weight_guards;
          Alcotest.test_case "pps tau guards" `Quick test_io_pps_tau_guards;
          Alcotest.test_case "missing file" `Quick test_io_read_opt_missing_file;
          Alcotest.test_case "estimate after reload" `Quick test_io_sample_estimate_after_reload;
          Alcotest.test_case "outcome roundtrip" `Quick test_io_outcome_roundtrip;
          Alcotest.test_case "outcome estimate after reload" `Quick
            test_io_outcome_estimate_after_reload;
          Alcotest.test_case "outcome guards" `Quick test_io_outcome_guards;
          (qtest ~count:100 "instance roundtrip (random)"
             QCheck.(list_of_size Gen.(0 -- 40) (pair small_nat (float_bound_inclusive 100.)))
             (fun pairs ->
               let inst = Instance.of_assoc (List.map (fun (k, v) -> (k, abs_float v)) pairs) in
               let back = Io.instance_of_string (Io.instance_to_string inst) in
               Instance.keys inst = Instance.keys back
               && List.for_all
                    (fun k -> Instance.value inst k = Instance.value back k)
                    (Instance.keys inst)));
        ] );
      ( "varopt",
        [
          Alcotest.test_case "invariants" `Quick test_varopt_invariants;
          Alcotest.test_case "under capacity" `Quick test_varopt_under_capacity;
          Alcotest.test_case "subset unbiased" `Slow test_varopt_subset_unbiased;
          Alcotest.test_case "weight guard" `Quick test_varopt_rejects_bad_weight;
          Alcotest.test_case "tau matches sort oracle" `Quick
            test_varopt_tau_matches_oracle;
          Alcotest.test_case "total preserved across k" `Quick
            test_varopt_total_across_k;
          Alcotest.test_case "inclusion frequencies match reference" `Slow
            test_varopt_matches_reference_frequencies;
          prop_varopt_total_preserved;
        ] );
    ]
