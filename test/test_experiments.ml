(* End-to-end checks of every paper experiment: the shape claims the
   evaluation section makes must hold in our reproduction. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if not (Numerics.Special.float_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* E1 / Figure 1 *)

let test_fig1_endpoints () =
  let rows = Experiments.Fig1.series ~steps:10 () in
  let first = List.hd rows in
  let last = List.nth rows 10 in
  check_float ~eps:1e-9 "L/HT at min=0" (11. /. 27.) first.Experiments.Fig1.l_over_ht;
  check_float ~eps:1e-9 "U/HT at min=0" (1. /. 3.) first.Experiments.Fig1.u_over_ht;
  check_float ~eps:1e-9 "L/HT at min=max" (1. /. 9.) last.Experiments.Fig1.l_over_ht;
  check_float ~eps:1e-9 "U/HT at min=max" (1. /. 3.) last.Experiments.Fig1.u_over_ht

let test_fig1_closed_forms () =
  let probs = [| 0.5; 0.5 |] in
  List.iter
    (fun (mx, mn) ->
      let v = [| mx; mn |] in
      let cf_ht, cf_l, cf_u = Experiments.Fig1.variance_closed_forms ~mx ~mn in
      check_float "HT" cf_ht (Estcore.Max_oblivious.var_ht_r2 ~probs ~v);
      check_float "L" cf_l (Estcore.Max_oblivious.var_l_r2 ~probs ~v);
      check_float "U" cf_u (Estcore.Max_oblivious.var_u_r2 ~probs ~v))
    [ (1., 0.); (1., 0.5); (1., 1.); (7., 3.) ]

let test_fig1_both_dominate () =
  List.iter
    (fun r ->
      Alcotest.(check bool) "ratios below 1" true
        (r.Experiments.Fig1.l_over_ht < 1. && r.Experiments.Fig1.u_over_ht < 1.))
    (Experiments.Fig1.series ~steps:20 ())

(* E2 / E3 *)

let test_table41_engine () =
  Alcotest.(check bool) "engine agrees" true
    (Experiments.Table41.engine_agrees ~p1:0.3 ~p2:0.6 ())

let test_table42_engines () =
  Alcotest.(check bool) "U" true (Experiments.Table42.engine_agrees_u ~p1:0.3 ~p2:0.4 ());
  Alcotest.(check bool) "Uas" true
    (Experiments.Table42.engine_agrees_uas ~p1:0.3 ~p2:0.4 ())

(* E4/E5 / Figure 2 *)

let test_fig2_ordering () =
  (* For small p the L/U estimators sharply improve on HT; on (1,1) the
     improvement is a square-root. *)
  List.iter
    (fun r ->
      let open Experiments.Fig2 in
      Alcotest.(check bool) "L(1,1) <= HT" true (r.l_11 <= r.ht +. 1e-9);
      Alcotest.(check bool) "L(1,0) <= HT" true (r.l_10 <= r.ht +. 1e-9);
      Alcotest.(check bool) "U(1,1) <= HT" true (r.u_11 <= r.ht +. 1e-9);
      Alcotest.(check bool) "U(1,0) <= HT" true (r.u_10 <= r.ht +. 1e-9))
    (Experiments.Fig2.series ())

let test_fig2_asymptotics () =
  List.iter
    (fun (label, ratio) ->
      Alcotest.(check bool) label true (abs_float (ratio -. 1.) < 0.01))
    (Experiments.Fig2.asymptotics ~p:0.001)

(* E6 / Figure 3 *)

let test_fig3_all_cases_unbiased () =
  List.iter
    (fun (label, taus, v) ->
      Alcotest.(check bool) label true (Experiments.Fig3.unbiased_on ~taus ~v))
    (Experiments.Fig3.case_grid ())

(* E7 / Figure 4 *)

let test_fig4_bound () =
  List.iter
    (fun rho ->
      Alcotest.(check bool)
        (Printf.sprintf "rho = %g" rho)
        true
        (Experiments.Fig4.ratio_bound_holds ~rho ()))
    [ 0.99; 0.5; 0.1; 0.01 ]

let test_fig4_ht_flat_l_decreasing () =
  let rows = Experiments.Fig4.panel ~rho:0.5 ~steps:4 () in
  let first = List.hd rows and last = List.nth rows 4 in
  (* HT normalized variance is independent of min; L decreases to 0 at
     min = max only when max >= tau; here it decreases strictly. *)
  check_float ~eps:1e-9 "HT flat" first.Experiments.Fig4.nvar_ht
    last.Experiments.Fig4.nvar_ht;
  Alcotest.(check bool) "L decreasing" true
    (last.Experiments.Fig4.nvar_l < first.Experiments.Fig4.nvar_l)

(* E8 / Figure 5 *)

let test_fig5 () =
  Alcotest.(check bool) "aggregates" true (Experiments.Fig5.aggregates_match ());
  Alcotest.(check bool) "bottom-3" true (Experiments.Fig5.independent_bottom3_match ())

(* E9 / Figure 6 *)

let test_fig6_ratio_asymptote () =
  let rows = Experiments.Fig6.series ~cv:0.1 ~ns:[ 1e8 ] () in
  let r = List.hd rows in
  List.iteri
    (fun i j ->
      let expected = sqrt (1. -. j) /. 2. in
      let got = r.Experiments.Fig6.s_l.(i) /. r.Experiments.Fig6.s_ht.(i) in
      if j < 1. then
        check_float ~eps:0.02 (Printf.sprintf "ratio at J=%.1f" j) expected got
      else
        Alcotest.(check bool) "J=1 ratio tiny" true (got < 0.01))
    Experiments.Fig6.jaccards

let test_fig6_j1_plateau () =
  (* At J = 1, the L estimator needs O(1) samples: s stops growing. *)
  let rows = Experiments.Fig6.series ~cv:0.1 ~ns:[ 1e6; 1e8; 1e10 ] () in
  let s_at n =
    let r = List.find (fun r -> r.Experiments.Fig6.n = n) rows in
    r.Experiments.Fig6.s_l.(3)
  in
  check_float ~eps:0.01 "plateau 1e6 vs 1e10" (s_at 1e6) (s_at 1e10)

let test_fig6_ht_sqrt_growth () =
  (* s(HT) ≈ cv⁻¹·√n·(1+J)^-1/2·... — i.e. grows like √n: 100× n gives 10× s. *)
  let rows = Experiments.Fig6.series ~cv:0.1 ~ns:[ 1e6; 1e8 ] () in
  match rows with
  | [ a; b ] ->
      check_float ~eps:0.01 "sqrt growth" 10.
        (b.Experiments.Fig6.s_ht.(0) /. a.Experiments.Fig6.s_ht.(0))
  | _ -> Alcotest.fail "expected 2 rows"

(* E10 / Figure 7 — scaled-down traffic to keep the test fast. *)

let small_traffic =
  {
    Workload.Traffic.default with
    Workload.Traffic.n_shared = 1100;
    n_only = 1350;
    total_per_hour = 5.5e4;
  }

let test_fig7_ratio_regime () =
  let rows =
    Experiments.Fig7.series ~percents:[ 1.; 5.; 20. ] ~params:small_traffic ()
  in
  List.iter
    (fun r ->
      let open Experiments.Fig7 in
      Alcotest.(check bool)
        (Printf.sprintf "ratio at %.0f%% in band" r.percent)
        true
        (r.nvar_l > 0. && r.nvar_ht /. r.nvar_l > 1.5 && r.nvar_ht /. r.nvar_l < 4.))
    rows

let test_fig7_variance_decreasing () =
  let rows =
    Experiments.Fig7.series ~percents:[ 1.; 5.; 20. ] ~params:small_traffic ()
  in
  let nv = List.map (fun r -> r.Experiments.Fig7.nvar_l) rows in
  Alcotest.(check bool) "monotone decreasing in sampling rate" true
    (List.sort (fun a b -> compare b a) nv = nv)

let test_fig7_empirical_consistency () =
  let eh, el = Experiments.Fig7.empirical_check ~trials:5 ~percent:10. ~params:small_traffic () in
  Alcotest.(check bool) "relative errors are small and L <= HT-ish" true
    (eh < 0.2 && el < 0.2)

(* E11, E12, E13 *)

let test_table51 () =
  Alcotest.(check bool) "tables" true (Experiments.Table51.tables_match ~p1:0.3 ~p2:0.45);
  Alcotest.(check bool) "unbiased" true (Experiments.Table51.unbiased ~p1:0.3 ~p2:0.45)

let test_thm61 () = Alcotest.(check bool) "certificates" true (Experiments.Thm61.all_match ())

let test_coeffs () =
  Alcotest.(check bool) "closed forms" true (Experiments.Coeffs.closed_forms_match ~p:0.37);
  Alcotest.(check bool) "unbiased to r=6" true (Experiments.Coeffs.unbiased_up_to ~p:0.3 ());
  Alcotest.(check bool) "lemma 4.2 grid" true
    (List.for_all (fun (_, _, ok) -> ok) (Experiments.Coeffs.lemma42_grid ()))

(* Smoke: every experiment's run function executes without raising and
   produces output (full fig7/coord use scaled workloads elsewhere; these
   are Slow). *)
let smoke name run =
  Alcotest.test_case name `Slow (fun () ->
      let b = Buffer.create 4096 in
      let f = Format.formatter_of_buffer b in
      run f;
      Format.pp_print_flush f ();
      Alcotest.(check bool) (name ^ " prints") true (Buffer.length b > 100))

let () =
  Alcotest.run "experiments"
    [
      ( "fig1",
        [
          Alcotest.test_case "endpoints" `Quick test_fig1_endpoints;
          Alcotest.test_case "closed forms" `Quick test_fig1_closed_forms;
          Alcotest.test_case "dominance" `Quick test_fig1_both_dominate;
        ] );
      ( "tables-4x",
        [
          Alcotest.test_case "table 4.1 engine" `Quick test_table41_engine;
          Alcotest.test_case "table 4.2 engines" `Quick test_table42_engines;
        ] );
      ( "fig2",
        [
          Alcotest.test_case "ordering" `Quick test_fig2_ordering;
          Alcotest.test_case "asymptotics" `Quick test_fig2_asymptotics;
        ] );
      ("fig3", [ Alcotest.test_case "unbiased cases" `Quick test_fig3_all_cases_unbiased ]);
      ( "fig4",
        [
          Alcotest.test_case "ratio bound" `Quick test_fig4_bound;
          Alcotest.test_case "HT flat / L decreasing" `Quick test_fig4_ht_flat_l_decreasing;
        ] );
      ("fig5", [ Alcotest.test_case "worked example" `Quick test_fig5 ]);
      ( "fig6",
        [
          Alcotest.test_case "ratio asymptote" `Quick test_fig6_ratio_asymptote;
          Alcotest.test_case "J=1 plateau" `Quick test_fig6_j1_plateau;
          Alcotest.test_case "HT sqrt growth" `Quick test_fig6_ht_sqrt_growth;
        ] );
      ( "fig7",
        [
          Alcotest.test_case "ratio regime" `Slow test_fig7_ratio_regime;
          Alcotest.test_case "variance decreasing" `Slow test_fig7_variance_decreasing;
          Alcotest.test_case "empirical consistency" `Slow test_fig7_empirical_consistency;
        ] );
      ("table51", [ Alcotest.test_case "section 5.1" `Quick test_table51 ]);
      ("thm61", [ Alcotest.test_case "certificates" `Quick test_thm61 ]);
      ("coeffs", [ Alcotest.test_case "theorem 4.2" `Quick test_coeffs ]);
      ( "smoke",
        [
          smoke "fig1" Experiments.Fig1.run;
          smoke "table41" Experiments.Table41.run;
          smoke "table42" Experiments.Table42.run;
          smoke "fig2" Experiments.Fig2.run;
          smoke "fig3" Experiments.Fig3.run;
          smoke "fig5" Experiments.Fig5.run;
          smoke "fig6" Experiments.Fig6.run;
          smoke "table51" Experiments.Table51.run;
          smoke "thm61" Experiments.Thm61.run;
          smoke "coeffs" Experiments.Coeffs.run;
          smoke "quantiles" Experiments.Quantiles.run;
        ] );
    ]
