(* Allocation assertion helper for the flat-evaluator guarantee.

   [assert_no_alloc] measures the [Gc.minor_words] delta across many
   calls of a thunk and fails unless it is exactly zero. The guarantee
   is per *call*, so the thunk must not capture freshly allocated state;
   warm-up calls first let one-time lazy initialization (closure
   specialization, cache fills) happen outside the measured window.

   The measurement is meaningful only on the native compiler —
   bytecode boxes floats at every step — so under [Other]/[Bytecode]
   backends the check degrades to "the thunk runs without raising". *)

let is_native = Sys.backend_type = Sys.Native

let assert_no_alloc ?(runs = 50_000) ?(warmup = 100) name (f : unit -> unit) =
  for _ = 1 to warmup do
    f ()
  done;
  if not is_native then f ()
  else begin
    let before = Gc.minor_words () in
    for _ = 1 to runs do
      f ()
    done;
    let delta = Gc.minor_words () -. before in
    if delta <> 0. then
      Alcotest.failf "%s: allocated %.0f minor words over %d calls (%.2f/call)"
        name delta runs (delta /. float_of_int runs)
  end
