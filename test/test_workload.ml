(* Tests for the workload generators. *)

module I = Sampling.Instance

let check_float ?(eps = 1e-9) msg expected actual =
  if not (Numerics.Special.float_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_zipf_pmf () =
  let z = Workload.Zipf.create ~n:100 ~s:1.1 in
  let total = ref 0. in
  for i = 1 to 100 do
    let p = Workload.Zipf.pmf z i in
    Alcotest.(check bool) "positive" true (p > 0.);
    total := !total +. p
  done;
  check_float ~eps:1e-9 "pmf sums to 1" 1. !total;
  check_float "out of range" 0. (Workload.Zipf.pmf z 101);
  Alcotest.(check bool) "decreasing" true
    (Workload.Zipf.pmf z 1 > Workload.Zipf.pmf z 2)

let test_zipf_draw () =
  let z = Workload.Zipf.create ~n:50 ~s:1. in
  let rng = Numerics.Prng.create ~seed:3 () in
  let counts = Array.make 50 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Workload.Zipf.draw z rng in
    Alcotest.(check bool) "in range" true (i >= 1 && i <= 50);
    counts.(i - 1) <- counts.(i - 1) + 1
  done;
  (* Empirical frequency of rank 1 close to pmf. *)
  check_float ~eps:0.01 "rank-1 frequency"
    (Workload.Zipf.pmf z 1)
    (float_of_int counts.(0) /. float_of_int n)

let test_zipf_frequencies () =
  let f = Workload.Zipf.frequencies ~n:10 ~s:0.8 ~total:100. in
  check_float ~eps:1e-9 "sums to total" 100. (Array.fold_left ( +. ) 0. f);
  Alcotest.(check bool) "monotone" true (f.(0) > f.(9))

(* ------------------------------------------------------------------ *)
(* Setpairs                                                            *)
(* ------------------------------------------------------------------ *)

let test_setpairs_sizes () =
  List.iter
    (fun j ->
      let a, b = Workload.Setpairs.pair ~n:1000 ~jaccard:j in
      Alcotest.(check int) "size A" 1000 (I.cardinality a);
      Alcotest.(check int) "size B" 1000 (I.cardinality b);
      check_float ~eps:0.01 "achieved jaccard" j
        (Workload.Setpairs.actual_jaccard a b))
    [ 0.; 0.25; 0.5; 0.9; 1. ]

let test_setpairs_union () =
  let a, b = Workload.Setpairs.pair ~n:100 ~jaccard:0.5 in
  (* J = 0.5 with n = 100: intersection ≈ 67, union ≈ 133. *)
  Alcotest.(check bool) "union size" true
    (abs (Workload.Setpairs.union_size a b - 133) <= 1)

let test_setpairs_guards () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Setpairs.pair: n must be positive")
    (fun () -> ignore (Workload.Setpairs.pair ~n:0 ~jaccard:0.5));
  Alcotest.check_raises "J > 1" (Invalid_argument "Setpairs.pair: jaccard in [0,1]")
    (fun () -> ignore (Workload.Setpairs.pair ~n:5 ~jaccard:1.5))

(* ------------------------------------------------------------------ *)
(* Traffic                                                             *)
(* ------------------------------------------------------------------ *)

let test_traffic_calibration () =
  let s = Workload.Traffic.stats (Workload.Traffic.generate Workload.Traffic.default) in
  Alcotest.(check int) "keys hour 1" 24_500 s.Workload.Traffic.keys_hour1;
  Alcotest.(check int) "keys hour 2" 24_500 s.Workload.Traffic.keys_hour2;
  Alcotest.(check int) "union" 38_000 s.Workload.Traffic.keys_union;
  check_float ~eps:1e-6 "flows hour 1" 5.5e5 s.Workload.Traffic.flows_hour1;
  check_float ~eps:1e-6 "flows hour 2" 5.5e5 s.Workload.Traffic.flows_hour2;
  (* Paper's sum-max: 7.47e5; ours must land within 2%. *)
  Alcotest.(check bool)
    (Printf.sprintf "sum-max %.3e near 7.47e5" s.Workload.Traffic.sum_max)
    true
    (abs_float (s.Workload.Traffic.sum_max -. 7.47e5) /. 7.47e5 < 0.02)

let test_traffic_deterministic () =
  let s1 = Workload.Traffic.stats (Workload.Traffic.generate Workload.Traffic.default) in
  let s2 = Workload.Traffic.stats (Workload.Traffic.generate Workload.Traffic.default) in
  check_float "reproducible" s1.Workload.Traffic.sum_max s2.Workload.Traffic.sum_max

let test_traffic_custom_params () =
  let p = { Workload.Traffic.default with n_shared = 100; n_only = 50; seed = 1 } in
  let s = Workload.Traffic.stats (Workload.Traffic.generate p) in
  Alcotest.(check int) "keys/hour" 150 s.Workload.Traffic.keys_hour1;
  Alcotest.(check int) "union" 200 s.Workload.Traffic.keys_union

let test_traffic_stream_calibration () =
  let p = Workload.Traffic.default in
  let h1 = Workload.Traffic.Stream.create ~hour:1 p in
  let h2 = Workload.Traffic.Stream.create ~hour:2 p in
  Alcotest.(check int) "length" 24_500 (Workload.Traffic.Stream.length h1);
  let a = Workload.Traffic.Stream.to_instance h1 in
  let b = Workload.Traffic.Stream.to_instance h2 in
  let s = Workload.Traffic.stats (a, b) in
  Alcotest.(check int) "keys hour 1" 24_500 s.Workload.Traffic.keys_hour1;
  Alcotest.(check int) "keys hour 2" 24_500 s.Workload.Traffic.keys_hour2;
  Alcotest.(check int) "union" 38_000 s.Workload.Traffic.keys_union;
  check_float ~eps:1e-6 "flows hour 1" 5.5e5 s.Workload.Traffic.flows_hour1;
  check_float ~eps:1e-6 "flows hour 2" 5.5e5 s.Workload.Traffic.flows_hour2

let test_traffic_stream_pull () =
  let p = { Workload.Traffic.default with n_shared = 40; n_only = 10 } in
  let t = Workload.Traffic.Stream.create p in
  Alcotest.(check int) "remaining" 50 (Workload.Traffic.Stream.remaining t);
  Alcotest.(check bool) "has next" true (Workload.Traffic.Stream.has_next t);
  let k1, w1 = Workload.Traffic.Stream.next t in
  Alcotest.(check int) "first key is shared rank 1" 1 k1;
  Alcotest.(check bool) "positive weight" true (w1 > 0.);
  Alcotest.(check int) "remaining after pull" 49
    (Workload.Traffic.Stream.remaining t);
  (* Drain; the pulled records match a fresh identical stream. *)
  let rest = Workload.Traffic.Stream.to_instance t in
  Alcotest.(check int) "rest cardinality" 49 (I.cardinality rest);
  let t' = Workload.Traffic.Stream.create p in
  let k1', w1' = Workload.Traffic.Stream.next t' in
  Alcotest.(check int) "deterministic key" k1 k1';
  check_float ~eps:0. "deterministic weight" w1 w1';
  Alcotest.(check bool) "exhausted" false (Workload.Traffic.Stream.has_next t);
  Alcotest.check_raises "next past end"
    (Failure "Traffic.Stream.next: exhausted") (fun () ->
      ignore (Workload.Traffic.Stream.next t))

let test_traffic_stream_guards () =
  Alcotest.check_raises "hour out of range"
    (Invalid_argument "Traffic.Stream.create: hour 3") (fun () ->
      ignore (Workload.Traffic.Stream.create ~hour:3 Workload.Traffic.default))

(* ------------------------------------------------------------------ *)
(* Changes                                                             *)
(* ------------------------------------------------------------------ *)

let test_changes_shape () =
  let p = { Workload.Changes.default with n_keys = 500; r = 3 } in
  let insts = Workload.Changes.generate p in
  Alcotest.(check int) "r instances" 3 (List.length insts);
  List.iter
    (fun i ->
      Alcotest.(check bool) "roughly (1-change_prob) keys present" true
        (let c = I.cardinality i in
         c > 400 && c <= 500))
    insts

let test_changes_no_change () =
  let p = { Workload.Changes.default with n_keys = 200; change_prob = 0.; jitter = 0. } in
  match Workload.Changes.generate p with
  | [ a; b ] ->
      Alcotest.(check int) "all keys" 200 (I.cardinality a);
      check_float "identical instances" 0. (I.l1_distance a b);
      check_float "similarity 1" 1. (Workload.Changes.similarity [ a; b ])
  | _ -> Alcotest.fail "expected 2 instances"

let test_changes_similarity_bounds () =
  let insts = Workload.Changes.generate Workload.Changes.default in
  let s = Workload.Changes.similarity insts in
  Alcotest.(check bool) "in [0,1]" true (s >= 0. && s <= 1.)

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "pmf" `Quick test_zipf_pmf;
          Alcotest.test_case "draw" `Quick test_zipf_draw;
          Alcotest.test_case "frequencies" `Quick test_zipf_frequencies;
        ] );
      ( "setpairs",
        [
          Alcotest.test_case "sizes and jaccard" `Quick test_setpairs_sizes;
          Alcotest.test_case "union size" `Quick test_setpairs_union;
          Alcotest.test_case "guards" `Quick test_setpairs_guards;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "section 8.2 calibration" `Quick test_traffic_calibration;
          Alcotest.test_case "deterministic" `Quick test_traffic_deterministic;
          Alcotest.test_case "custom params" `Quick test_traffic_custom_params;
          Alcotest.test_case "stream calibration" `Quick
            test_traffic_stream_calibration;
          Alcotest.test_case "stream pull semantics" `Quick
            test_traffic_stream_pull;
          Alcotest.test_case "stream guards" `Quick test_traffic_stream_guards;
        ] );
      ( "changes",
        [
          Alcotest.test_case "shape" `Quick test_changes_shape;
          Alcotest.test_case "no-change degenerate" `Quick test_changes_no_change;
          Alcotest.test_case "similarity bounds" `Quick test_changes_similarity_bounds;
        ] );
    ]
