(* Tests for the paper's estimators: unbiasedness (exact), the printed
   closed forms, dominance, monotonicity, nonnegativity, and the variance
   formulas of Sections 4 and 5. *)

open Estcore
module OO = Sampling.Outcome.Oblivious
module OP = Sampling.Outcome.Pps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (Numerics.Special.float_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let qtest ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let vmax = Array.fold_left Float.max 0.

(* Grids used throughout. *)
let prob_grid = [ (0.5, 0.5); (0.3, 0.6); (0.15, 0.8); (0.9, 0.2) ]

let value_grid =
  [
    [| 0.; 0. |];
    [| 1.; 0. |];
    [| 0.; 1. |];
    [| 1.; 1. |];
    [| 5.; 2. |];
    [| 2.; 5. |];
    [| 3.; 3. |];
    [| 0.; 7. |];
  ]

(* ------------------------------------------------------------------ *)
(* Ht                                                                  *)
(* ------------------------------------------------------------------ *)

let test_ht_single () =
  check_float "sampled" 10. (Ht.single ~p:0.5 ~sampled:true ~value:5.);
  check_float "unsampled" 0. (Ht.single ~p:0.5 ~sampled:false ~value:5.);
  check_float "variance (1)" 25. (Ht.single_variance ~p:0.5 ~value:5.)

let test_ht_single_variance_exact () =
  (* Bernoulli(p) of v/p: exact variance equals eq. (1). *)
  let p = 0.3 and v = 4. in
  let exact = (p *. ((v /. p) ** 2.)) -. (v *. v) in
  check_float "eq (1)" exact (Ht.single_variance ~p ~value:v)

let test_ht_multi_oblivious () =
  let probs = [| 0.5; 0.4 |] in
  let o_all = OO.of_mask ~probs [| 3.; 7. |] [| true; true |] in
  let o_one = OO.of_mask ~probs [| 3.; 7. |] [| true; false |] in
  check_float "positive when all sampled" (7. /. 0.2) (Ht.max_oblivious o_all);
  check_float "zero otherwise" 0. (Ht.max_oblivious o_one);
  check_float "min" (3. /. 0.2) (Ht.min_oblivious o_all);
  check_float "range" (4. /. 0.2) (Ht.range_oblivious o_all);
  check_float "2nd largest" (3. /. 0.2) (Ht.quantile_oblivious ~l:2 o_all)

let test_ht_unbiased_exact () =
  List.iter
    (fun (p1, p2) ->
      List.iter
        (fun v ->
          let probs = [| p1; p2 |] in
          let m = Exact.oblivious ~probs ~v Ht.max_oblivious in
          check_float ~eps:1e-9 "E[HT] = max" (vmax v) m.Exact.mean;
          check_float ~eps:1e-9 "Var[HT] closed form"
            (Ht.multi_oblivious_variance ~probs ~fv:(vmax v))
            m.Exact.var)
        value_grid)
    prob_grid

let test_ht_max_pps_cases () =
  let taus = [| 1.; 1. |] in
  (* Both sampled: estimate max / (p1*p2) with p_i = min(1, max/tau_i). *)
  let o = OP.of_seeds ~taus ~seeds:[| 0.1; 0.1 |] [| 0.6; 0.3 |] in
  check_float "determined" (0.6 /. (0.6 *. 0.6)) (Ht.max_pps o);
  (* One sampled, unsampled bound below the sampled max: determined. *)
  let o = OP.of_seeds ~taus ~seeds:[| 0.1; 0.5 |] [| 0.6; 0.3 |] in
  check_float "bound below max" (0.6 /. (0.6 *. 0.6)) (Ht.max_pps o);
  (* One sampled, bound above the max: zero. *)
  let o = OP.of_seeds ~taus ~seeds:[| 0.1; 0.8 |] [| 0.6; 0.3 |] in
  check_float "bound above max" 0. (Ht.max_pps o);
  (* Empty outcome: zero. *)
  let o = OP.of_seeds ~taus ~seeds:[| 0.9; 0.8 |] [| 0.6; 0.3 |] in
  check_float "empty" 0. (Ht.max_pps o)

let test_ht_max_pps_unbiased () =
  List.iter
    (fun (taus, v) ->
      let m = Exact.pps ~taus ~v Ht.max_pps in
      check_float ~eps:1e-8 "E = max" (vmax v) m.Exact.mean;
      check_float ~eps:1e-7 "variance closed form"
        (Ht.max_pps_variance ~taus ~v)
        m.Exact.var)
    [
      ([| 1.; 1. |], [| 0.6; 0.3 |]);
      ([| 1.; 1.3 |], [| 0.9; 0.05 |]);
      ([| 1.3; 0.6 |], [| 0.9; 0.3 |]);
      ([| 1.; 1. |], [| 0.; 0.4 |]);
    ]

let test_ht_min_pps_unbiased () =
  let taus = [| 1.; 1.3 |] in
  let v = [| 0.6; 0.3 |] in
  let m = Exact.pps ~taus ~v Ht.min_pps in
  check_float ~eps:1e-8 "E = min" 0.3 m.Exact.mean

(* ------------------------------------------------------------------ *)
(* Max_oblivious: the L estimator                                      *)
(* ------------------------------------------------------------------ *)

let test_l_r2_unbiased_grid () =
  List.iter
    (fun (p1, p2) ->
      List.iter
        (fun v ->
          let m = Exact.oblivious ~probs:[| p1; p2 |] ~v Max_oblivious.l_r2 in
          check_float ~eps:1e-9
            (Printf.sprintf "E[L] p=(%.2f,%.2f)" p1 p2)
            (vmax v) m.Exact.mean)
        value_grid)
    prob_grid

let test_l_r2_figure1_table () =
  (* Figure 1's table at p = 1/2, data (v1, v2) = (3, 2). *)
  let probs = [| 0.5; 0.5 |] in
  let v = [| 3.; 2. |] in
  let est mask = Max_oblivious.l_r2 (OO.of_mask ~probs v mask) in
  check_float "S={}" 0. (est [| false; false |]);
  check_float "S={1}" (4. *. 3. /. 3.) (est [| true; false |]);
  check_float "S={2}" (4. *. 2. /. 3.) (est [| false; true |]);
  check_float "S={1,2}" (((8. *. 3.) -. (4. *. 2.)) /. 3.) (est [| true; true |])

let test_l_r2_determining_vector () =
  let probs = [| 0.5; 0.5 |] in
  let o = OO.of_mask ~probs [| 3.; 9. |] [| false; true |] in
  Alcotest.(check (array (float 1e-12)))
    "unsampled gets max sampled" [| 9.; 9. |]
    (Max_oblivious.determining_vector_l o);
  let o0 = OO.of_mask ~probs [| 3.; 9. |] [| false; false |] in
  Alcotest.(check (array (float 1e-12)))
    "empty gets zeros" [| 0.; 0. |]
    (Max_oblivious.determining_vector_l o0)

let test_l_dominates_ht () =
  List.iter
    (fun (p1, p2) ->
      let probs = [| p1; p2 |] in
      Alcotest.(check bool)
        (Printf.sprintf "L dominates HT at (%.2f,%.2f)" p1 p2)
        true
        (Exact.dominates
           ~var_a:(fun v -> Max_oblivious.var_l_r2 ~probs ~v)
           ~var_b:(fun v -> Max_oblivious.var_ht_r2 ~probs ~v)
           value_grid))
    prob_grid

let test_l_u_incomparable () =
  (* Pareto: L beats U on dense data, U beats L on sparse data (p=1/2). *)
  let probs = [| 0.5; 0.5 |] in
  let dense = [| 4.; 4. |] and sparse = [| 4.; 0. |] in
  Alcotest.(check bool) "L better on equal values" true
    (Max_oblivious.var_l_r2 ~probs ~v:dense
    < Max_oblivious.var_u_r2 ~probs ~v:dense);
  Alcotest.(check bool) "U better on single value" true
    (Max_oblivious.var_u_r2 ~probs ~v:sparse
    < Max_oblivious.var_l_r2 ~probs ~v:sparse)

let test_l_monotone_r2 () =
  (* More informative outcomes give estimates at least as large. *)
  List.iter
    (fun (p1, p2) ->
      let probs = [| p1; p2 |] in
      List.iter
        (fun v ->
          let est mask = Max_oblivious.l_r2 (OO.of_mask ~probs v mask) in
          let full = est [| true; true |] in
          Alcotest.(check bool) "S1 le full" true (est [| true; false |] <= full +. 1e-9);
          Alcotest.(check bool) "S2 le full" true (est [| false; true |] <= full +. 1e-9))
        (List.filter (fun v -> vmax v > 0.) value_grid))
    prob_grid

let prop_l_r2_nonnegative =
  qtest "max^(L) r=2 is nonnegative"
    QCheck.(
      quad (float_bound_inclusive 1.) (float_bound_inclusive 1.)
        (float_bound_inclusive 100.) (float_bound_inclusive 100.))
    (fun (p1, p2, v1, v2) ->
      let p1 = 0.05 +. (0.9 *. p1) and p2 = 0.05 +. (0.9 *. p2) in
      let probs = [| p1; p2 |] in
      List.for_all
        (fun mask ->
          Max_oblivious.l_r2 (OO.of_mask ~probs [| v1; v2 |] mask) >= -1e-9)
        [
          [| false; false |]; [| true; false |]; [| false; true |]; [| true; true |];
        ])

let prop_l_r2_unbiased =
  qtest ~count:100 "max^(L) r=2 unbiased on random data"
    QCheck.(
      quad (float_bound_inclusive 1.) (float_bound_inclusive 1.)
        (float_bound_inclusive 100.) (float_bound_inclusive 100.))
    (fun (p1, p2, v1, v2) ->
      let p1 = 0.05 +. (0.9 *. p1) and p2 = 0.05 +. (0.9 *. p2) in
      let m =
        Exact.oblivious ~probs:[| p1; p2 |] ~v:[| v1; v2 |] Max_oblivious.l_r2
      in
      Numerics.Special.float_equal ~eps:1e-8 (Float.max v1 v2) m.Exact.mean)

let test_coeffs_closed_forms () =
  List.iter
    (fun p ->
      let c2 = Max_oblivious.Coeffs.compute ~r:2 ~p in
      let a = Max_oblivious.Coeffs.alpha c2 in
      let d = p *. p *. (2. -. p) in
      check_float "alpha1 r2" (1. /. d) a.(0);
      check_float "alpha2 r2" (-.(1. -. p) /. d) a.(1);
      let pre = Max_oblivious.Coeffs.prefix_sums c2 in
      check_float "A2 = 1/(p(2-p))" (1. /. (p *. (2. -. p))) pre.(1);
      check_float "A1" (1. /. d) pre.(0))
    [ 0.1; 0.37; 0.5; 0.8 ]

let test_coeffs_r3_closed_form () =
  let p = 0.42 in
  let c = Max_oblivious.Coeffs.compute ~r:3 ~p in
  let a = Max_oblivious.Coeffs.alpha c in
  let d = 3. -. (3. *. p) +. (p *. p) in
  let p3 = p *. p *. p in
  check_float "alpha1 r3"
    ((2. -. (2. *. p) +. (p *. p)) /. (p3 *. (2. -. p) *. d))
    a.(0);
  check_float "alpha2 r3" (-.(1. -. p) /. (p3 *. d)) a.(1);
  check_float "alpha3 r3"
    (-.((1. -. p) ** 2.) /. (p *. p *. (2. -. p) *. d))
    a.(2)

let test_coeffs_sum_is_ar () =
  (* sum of alphas = A_r = 1/(1 - (1-p)^r): the estimate on all-equal data. *)
  List.iter
    (fun (r, p) ->
      let c = Max_oblivious.Coeffs.compute ~r ~p in
      let total = Array.fold_left ( +. ) 0. (Max_oblivious.Coeffs.alpha c) in
      check_float "sum alpha = A_r"
        (1. /. (1. -. ((1. -. p) ** float_of_int r)))
        total)
    [ (2, 0.3); (4, 0.5); (6, 0.1); (8, 0.7) ]

let test_coeffs_invalid () =
  Alcotest.check_raises "r = 0"
    (Invalid_argument "Coeffs.compute: r must be >= 1") (fun () ->
      ignore (Max_oblivious.Coeffs.compute ~r:0 ~p:0.5));
  Alcotest.check_raises "p = 0"
    (Invalid_argument "Coeffs.compute: p must be in (0,1]") (fun () ->
      ignore (Max_oblivious.Coeffs.compute ~r:2 ~p:0.))

let test_l_uniform_unbiased_r345 () =
  List.iter
    (fun r ->
      let p = 0.35 in
      let c = Max_oblivious.Coeffs.compute ~r ~p in
      let probs = Array.make r p in
      List.iter
        (fun v ->
          let m = Exact.oblivious ~probs ~v (Max_oblivious.l_uniform c) in
          check_float ~eps:1e-8
            (Printf.sprintf "unbiased r=%d" r)
            (vmax v) m.Exact.mean)
        [
          Array.init r (fun i -> float_of_int (i + 1));
          Array.make r 2.;
          Array.init r (fun i -> if i = r - 1 then 9. else 0.);
          Array.init r (fun i -> float_of_int (i mod 2));
        ])
    [ 3; 4; 5 ]

let test_l_uniform_matches_r2 () =
  let p = 0.4 in
  let c = Max_oblivious.Coeffs.compute ~r:2 ~p in
  let probs = [| p; p |] in
  List.iter
    (fun v ->
      List.iter
        (fun mask ->
          let o = OO.of_mask ~probs v mask in
          check_float "uniform = general r2 formula" (Max_oblivious.l_r2 o)
            (Max_oblivious.l_uniform c o))
        [ [| false; false |]; [| true; false |]; [| false; true |]; [| true; true |] ])
    value_grid

let test_l_uniform_tie_invariance () =
  (* With equal sampled values the sorting permutation is not unique; the
     estimate must not depend on it (Theorem 4.1) — exercised by tied data
     across all outcomes. *)
  let p = 0.3 in
  let r = 4 in
  let c = Max_oblivious.Coeffs.compute ~r ~p in
  let probs = Array.make r p in
  let v = [| 5.; 5.; 2.; 2. |] in
  let m = Exact.oblivious ~probs ~v (Max_oblivious.l_uniform c) in
  check_float ~eps:1e-9 "unbiased with ties" 5. m.Exact.mean

let test_l_dispatch () =
  let o =
    OO.of_mask
      ~probs:[| 0.3; 0.3; 0.4; 0.4 |]
      [| 1.; 2.; 3.; 4. |]
      [| true; true; true; true |]
  in
  Alcotest.check_raises "non-uniform r>3 rejected"
    (Invalid_argument "Max_oblivious.l: r > 3 requires uniform probabilities")
    (fun () -> ignore (Max_oblivious.l o));
  (* r = 3 non-uniform dispatches to l_r3. *)
  let o3 =
    OO.of_mask ~probs:[| 0.3; 0.5; 0.7 |] [| 1.; 2.; 3. |]
      [| true; true; true |]
  in
  check_float "r=3 dispatch" (Max_oblivious.l_r3 o3) (Max_oblivious.l o3)

let test_l_r3_unbiased_general_p () =
  (* The Theorem 4.1 recursion at r = 3 with arbitrary probabilities:
     exact unbiasedness on profiles with distinct values, ties, zeros,
     and all orderings. *)
  List.iter
    (fun probs ->
      List.iter
        (fun v ->
          let m = Exact.oblivious ~probs ~v Max_oblivious.l_r3 in
          check_float ~eps:1e-9
            (Printf.sprintf "E p=(%.1f,%.1f,%.1f)" probs.(0) probs.(1) probs.(2))
            (vmax v) m.Exact.mean)
        [
          [| 5.; 3.; 1. |];
          [| 1.; 3.; 5. |];
          [| 3.; 5.; 1. |];
          [| 4.; 4.; 4. |];
          [| 5.; 5.; 1. |];
          [| 1.; 5.; 5. |];
          [| 0.; 2.; 7. |];
          [| 7.; 0.; 0. |];
          [| 0.; 0.; 0. |];
        ])
    [ [| 0.3; 0.5; 0.7 |]; [| 0.2; 0.2; 0.9 |]; [| 0.6; 0.1; 0.4 |] ]

let test_l_r3_matches_uniform () =
  let p = 0.4 in
  let c = Max_oblivious.Coeffs.compute ~r:3 ~p in
  let probs = Array.make 3 p in
  List.iter
    (fun v ->
      List.iter
        (fun bits ->
          let mask = Array.init 3 (fun i -> bits land (1 lsl i) <> 0) in
          let o = OO.of_mask ~probs v mask in
          check_float "agrees with Thm 4.2 coefficients"
            (Max_oblivious.l_uniform c o)
            (Max_oblivious.l_r3 o))
        (List.init 8 Fun.id))
    [ [| 3.; 2.; 1. |]; [| 1.; 2.; 3. |]; [| 2.; 2.; 2. |]; [| 0.; 5.; 5. |] ]

let test_l_r3_engine_agreement () =
  (* Machine-derived table on a grid equals the closed-form recursion. *)
  let probs = [| 0.3; 0.5; 0.7 |] in
  let problem =
    Estcore.Designer.Problems.oblivious ~probs ~grid:[ 0.; 1.; 2. ]
      ~f:(fun v -> vmax v)
      ()
    |> Estcore.Designer.Problems.sort_data Estcore.Designer.Problems.order_l
  in
  match Estcore.Designer.solve_order problem with
  | Error e -> Alcotest.failf "engine failed: %s" e
  | Ok est ->
      List.iter
        (fun (k, derived) ->
          let o = { Sampling.Outcome.Oblivious.probs; values = k } in
          check_float ~eps:1e-7 "engine = closed form"
            (Max_oblivious.l_r3 o) derived)
        (Estcore.Designer.bindings est)

let test_l_r3_dominates_ht () =
  let probs = [| 0.3; 0.5; 0.7 |] in
  let grid =
    [
      [| 1.; 0.; 0. |];
      [| 0.; 0.; 1. |];
      [| 1.; 1.; 1. |];
      [| 3.; 2.; 1. |];
      [| 1.; 2.; 3. |];
      [| 5.; 5.; 0. |];
    ]
  in
  Alcotest.(check bool) "dominates HT" true
    (Exact.dominates
       ~var_a:(fun v -> (Exact.oblivious ~probs ~v Max_oblivious.l_r3).Exact.var)
       ~var_b:(fun v -> (Exact.oblivious ~probs ~v Ht.max_oblivious).Exact.var)
       grid)

let test_l_uniform_guard () =
  let c = Max_oblivious.Coeffs.compute ~r:2 ~p:0.5 in
  let o = OO.of_mask ~probs:[| 0.5; 0.4 |] [| 1.; 2. |] [| true; true |] in
  Alcotest.check_raises "prob mismatch"
    (Invalid_argument "Max_oblivious.l_uniform: non-uniform probabilities")
    (fun () -> ignore (Max_oblivious.l_uniform c o))

let test_lemma42_r_up_to_8 () =
  List.iter
    (fun r ->
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "lemma 4.2 at r=%d p=%.2f" r p)
            true
            (Max_oblivious.Coeffs.lemma42_holds
               (Max_oblivious.Coeffs.compute ~r ~p)))
        [ 0.05; 0.2; 0.5; 0.9 ])
    [ 2; 3; 4; 5; 6; 7; 8 ]

let test_l_uniform_dominates_ht_r4 () =
  let p = 0.4 in
  let r = 4 in
  let c = Max_oblivious.Coeffs.compute ~r ~p in
  let probs = Array.make r p in
  let grid =
    [
      [| 1.; 0.; 0.; 0. |];
      [| 1.; 1.; 1.; 1. |];
      [| 4.; 3.; 2.; 1. |];
      [| 5.; 5.; 0.; 0. |];
    ]
  in
  Alcotest.(check bool) "dominates HT (r=4)" true
    (Exact.dominates
       ~var_a:(fun v ->
         (Exact.oblivious ~probs ~v (Max_oblivious.l_uniform c)).Exact.var)
       ~var_b:(fun v -> (Exact.oblivious ~probs ~v Ht.max_oblivious).Exact.var)
       grid)

(* ------------------------------------------------------------------ *)
(* Max_oblivious.General: Theorem 4.1 for any r, arbitrary p           *)
(* ------------------------------------------------------------------ *)

let test_general_matches_r2 () =
  let probs = [| 0.3; 0.6 |] in
  let g = Max_oblivious.General.create ~probs in
  List.iter
    (fun v ->
      List.iter
        (fun bits ->
          let mask = Array.init 2 (fun i -> bits land (1 lsl i) <> 0) in
          let o = OO.of_mask ~probs v mask in
          check_float "= eq (12)" (Max_oblivious.l_r2 o)
            (Max_oblivious.General.estimate g o))
        (List.init 4 Fun.id))
    value_grid

let test_general_matches_r3 () =
  let probs = [| 0.3; 0.5; 0.7 |] in
  let g = Max_oblivious.General.create ~probs in
  List.iter
    (fun v ->
      List.iter
        (fun bits ->
          let mask = Array.init 3 (fun i -> bits land (1 lsl i) <> 0) in
          let o = OO.of_mask ~probs v mask in
          check_float "= l_r3" (Max_oblivious.l_r3 o)
            (Max_oblivious.General.estimate g o))
        (List.init 8 Fun.id))
    [ [| 5.; 2.; 1. |]; [| 1.; 2.; 5. |]; [| 3.; 3.; 3. |]; [| 0.; 4.; 4. |] ]

let test_general_matches_uniform () =
  let p = 0.4 in
  let g = Max_oblivious.General.create ~probs:(Array.make 4 p) in
  let c = Max_oblivious.Coeffs.compute ~r:4 ~p in
  let probs = Array.make 4 p in
  let rng = Numerics.Prng.create ~seed:5 () in
  for _ = 1 to 100 do
    let v = Array.init 4 (fun _ -> Float.round (10. *. Numerics.Prng.float rng)) in
    let o = OO.draw rng ~probs v in
    check_float "= Thm 4.2 coefficients" (Max_oblivious.l_uniform c o)
      (Max_oblivious.General.estimate g o)
  done

let test_general_unbiased_r5 () =
  let probs = [| 0.2; 0.35; 0.5; 0.65; 0.8 |] in
  let g = Max_oblivious.General.create ~probs in
  List.iter
    (fun v ->
      let m = Exact.oblivious ~probs ~v (Max_oblivious.General.estimate g) in
      check_float ~eps:1e-9 "unbiased r=5" (vmax v) m.Exact.mean)
    [
      [| 5.; 4.; 3.; 2.; 1. |];
      [| 1.; 2.; 3.; 4.; 5. |];
      [| 2.; 2.; 2.; 2.; 2. |];
      [| 0.; 0.; 7.; 0.; 0. |];
      [| 3.; 3.; 0.; 1.; 3. |];
      [| 0.; 0.; 0.; 0.; 0. |];
    ]

let test_general_dominates_ht_r4 () =
  let probs = [| 0.25; 0.4; 0.55; 0.7 |] in
  let g = Max_oblivious.General.create ~probs in
  Alcotest.(check bool) "dominates HT" true
    (Exact.dominates
       ~var_a:(fun v ->
         (Exact.oblivious ~probs ~v (Max_oblivious.General.estimate g)).Exact.var)
       ~var_b:(fun v -> (Exact.oblivious ~probs ~v Ht.max_oblivious).Exact.var)
       [
         [| 1.; 0.; 0.; 0. |];
         [| 0.; 0.; 0.; 1. |];
         [| 1.; 1.; 1.; 1. |];
         [| 4.; 3.; 2.; 1. |];
         [| 1.; 2.; 3.; 4. |];
       ])

let test_general_prefix_sums () =
  (* Full prefix = eq. (16); r=2 prefixes match the closed forms. *)
  let probs = [| 0.3; 0.6 |] in
  let g = Max_oblivious.General.create ~probs in
  check_float "A_full"
    (1. /. (1. -. (0.7 *. 0.4)))
    (Max_oblivious.General.prefix_sum g [ 0; 1 ]);
  (* A_1 with prefix {i}: estimate on outcome S={i} with value v is
     v·A_1({i}); compare against eq. (12)'s v/(p_i q). *)
  let q = 0.3 +. 0.6 -. 0.18 in
  check_float "A_1({0})" (1. /. (0.3 *. q)) (Max_oblivious.General.prefix_sum g [ 0 ]);
  check_float "A_1({1})" (1. /. (0.6 *. q)) (Max_oblivious.General.prefix_sum g [ 1 ])

let test_general_guards () =
  Alcotest.check_raises "bad prob"
    (Invalid_argument "General.create: probabilities must be in (0,1]")
    (fun () -> ignore (Max_oblivious.General.create ~probs:[| 0.5; 0. |]));
  let g = Max_oblivious.General.create ~probs:[| 0.5; 0.5 |] in
  Alcotest.check_raises "empty prefix"
    (Invalid_argument "General.prefix_sum: empty prefix") (fun () ->
      ignore (Max_oblivious.General.prefix_sum g []));
  let o = OO.of_mask ~probs:[| 0.4; 0.5 |] [| 1.; 1. |] [| true; true |] in
  Alcotest.check_raises "prob mismatch"
    (Invalid_argument "General.estimate: probability mismatch") (fun () ->
      ignore (Max_oblivious.General.estimate g o))

(* ------------------------------------------------------------------ *)
(* Max_oblivious: the U estimators                                     *)
(* ------------------------------------------------------------------ *)

let test_u_unbiased_grid () =
  List.iter
    (fun (p1, p2) ->
      List.iter
        (fun v ->
          let probs = [| p1; p2 |] in
          let mu = Exact.oblivious ~probs ~v Max_oblivious.u_r2 in
          check_float ~eps:1e-9 "E[U] = max" (vmax v) mu.Exact.mean;
          let ma = Exact.oblivious ~probs ~v Max_oblivious.u_asym_r2 in
          check_float ~eps:1e-9 "E[Uas] = max" (vmax v) ma.Exact.mean)
        value_grid)
    prob_grid

let test_u_figure1_values () =
  let probs = [| 0.5; 0.5 |] in
  let est mask v = Max_oblivious.u_r2 (OO.of_mask ~probs v mask) in
  check_float "S={1}: 2v1" 8. (est [| true; false |] [| 4.; 1. |]);
  check_float "S={1,2}: 2max-2min" 6. (est [| true; true |] [| 4.; 1. |]);
  check_float "S={}" 0. (est [| false; false |] [| 4.; 1. |])

let test_u_variance_closed_form () =
  (* Corrected Figure 1 variance (see EXPERIMENTS.md erratum): at p = 1/2,
     Var[U] = max^2 + 2 min^2 - 2 max min. *)
  let probs = [| 0.5; 0.5 |] in
  List.iter
    (fun v ->
      let mx = vmax v
      and mn = Float.min v.(0) v.(1) in
      check_float "corrected Var[U]"
        ((mx *. mx) +. (2. *. mn *. mn) -. (2. *. mx *. mn))
        (Max_oblivious.var_u_r2 ~probs ~v))
    value_grid

let test_l_variance_closed_form () =
  (* Figure 1: Var[L] = (11/9)max^2 + (8/9)min^2 - (16/9) max min. *)
  let probs = [| 0.5; 0.5 |] in
  List.iter
    (fun v ->
      let mx = vmax v
      and mn = Float.min v.(0) v.(1) in
      check_float "Var[L] closed form"
        (((11. /. 9.) *. mx *. mx)
        +. ((8. /. 9.) *. mn *. mn)
        -. ((16. /. 9.) *. mx *. mn))
        (Max_oblivious.var_l_r2 ~probs ~v))
    value_grid

let test_u_dominates_ht () =
  List.iter
    (fun (p1, p2) ->
      let probs = [| p1; p2 |] in
      Alcotest.(check bool) "U dominates HT" true
        (Exact.dominates
           ~var_a:(fun v -> Max_oblivious.var_u_r2 ~probs ~v)
           ~var_b:(fun v -> Max_oblivious.var_ht_r2 ~probs ~v)
           value_grid))
    prob_grid

let test_uas_asymmetry () =
  (* Uas prioritizes (v,0) vectors: at least as good as U there, and no
     better than U on (0,v) (strict when p1 + p2 < 1). *)
  let probs = [| 0.3; 0.4 |] in
  let var_uas v = (Exact.oblivious ~probs ~v Max_oblivious.u_asym_r2).Exact.var in
  Alcotest.(check bool) "Uas <= U on (v,0)" true
    (var_uas [| 5.; 0. |] <= Max_oblivious.var_u_r2 ~probs ~v:[| 5.; 0. |] +. 1e-9);
  Alcotest.(check bool) "Uas >= U on (0,v)" true
    (var_uas [| 0.; 5. |] >= Max_oblivious.var_u_r2 ~probs ~v:[| 0.; 5. |] -. 1e-9);
  Alcotest.(check bool) "strictly better somewhere" true
    (var_uas [| 5.; 0. |] < Max_oblivious.var_u_r2 ~probs ~v:[| 5.; 0. |] -. 1e-9)

let prop_u_nonnegative =
  qtest "max^(U) r=2 is nonnegative"
    QCheck.(
      quad (float_bound_inclusive 1.) (float_bound_inclusive 1.)
        (float_bound_inclusive 100.) (float_bound_inclusive 100.))
    (fun (p1, p2, v1, v2) ->
      let p1 = 0.05 +. (0.9 *. p1) and p2 = 0.05 +. (0.9 *. p2) in
      let probs = [| p1; p2 |] in
      List.for_all
        (fun mask ->
          Max_oblivious.u_r2 (OO.of_mask ~probs [| v1; v2 |] mask) >= -1e-9
          && Max_oblivious.u_asym_r2 (OO.of_mask ~probs [| v1; v2 |] mask)
             >= -1e-9)
        [
          [| false; false |]; [| true; false |]; [| false; true |]; [| true; true |];
        ])

(* ------------------------------------------------------------------ *)
(* Or_oblivious                                                        *)
(* ------------------------------------------------------------------ *)

let bin_grid = [ [| 0.; 0. |]; [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] ]

let test_or_unbiased () =
  List.iter
    (fun (p1, p2) ->
      List.iter
        (fun v ->
          let probs = [| p1; p2 |] in
          let f = if vmax v > 0. then 1. else 0. in
          List.iter
            (fun est ->
              let m = Exact.oblivious ~probs ~v est in
              check_float ~eps:1e-9 "unbiased OR" f m.Exact.mean)
            [ Or_oblivious.ht; Or_oblivious.l_r2; Or_oblivious.u_r2 ])
        bin_grid)
    prob_grid

let test_or_var_closed_forms () =
  List.iter
    (fun (p1, p2) ->
      let probs = [| p1; p2 |] in
      (* (23) *)
      check_float "eq 23" ((1. /. (p1 *. p2)) -. 1.) (Or_oblivious.var_ht ~probs);
      check_float "eq 23 vs exact"
        (Exact.oblivious ~probs ~v:[| 1.; 1. |] Or_oblivious.ht).Exact.var
        (Or_oblivious.var_ht ~probs);
      (* (24) *)
      let q = p1 +. p2 -. (p1 *. p2) in
      check_float "eq 24" ((1. /. q) -. 1.) (Or_oblivious.var_l_11 ~p1 ~p2);
      check_float "eq 24 vs exact"
        (Exact.oblivious ~probs ~v:[| 1.; 1. |] Or_oblivious.l_r2).Exact.var
        (Or_oblivious.var_l_11 ~p1 ~p2);
      (* Section 4.3 display for (1,0). *)
      let byhand =
        (1. -. p1)
        +. (p1 *. (1. -. p2) *. (((1. /. q) -. 1.) ** 2.))
        +. (p1 *. p2 *. (((1. /. (p1 *. q)) -. 1.) ** 2.))
      in
      check_float "var L (1,0) display" byhand (Or_oblivious.var_l_10 ~p1 ~p2))
    prob_grid

let test_or_domain_guard () =
  let o = OO.of_mask ~probs:[| 0.5; 0.5 |] [| 2.; 0. |] [| true; false |] in
  Alcotest.check_raises "non-binary rejected"
    (Invalid_argument "Or_oblivious: values must be 0/1") (fun () ->
      ignore (Or_oblivious.l_r2 o))

let test_or_uniform_r3 () =
  let p = 0.3 in
  let c = Max_oblivious.Coeffs.compute ~r:3 ~p in
  let probs = Array.make 3 p in
  List.iter
    (fun v ->
      let f = if vmax v > 0. then 1. else 0. in
      let m = Exact.oblivious ~probs ~v (Or_oblivious.l_uniform c) in
      check_float ~eps:1e-9 "OR^(L) r=3 unbiased" f m.Exact.mean)
    [ [| 0.; 0.; 0. |]; [| 1.; 0.; 0. |]; [| 1.; 1.; 0. |]; [| 1.; 1.; 1. |] ]

let test_or_asymptotics () =
  let p = 1e-3 in
  check_float ~eps:2e-3 "HT ~ 1/p^2" 1.
    (Or_oblivious.var_ht ~probs:[| p; p |] *. p *. p);
  check_float ~eps:5e-3 "L(1,0) ~ 1/(4p^2)" 1.
    (Or_oblivious.var_l_10 ~p1:p ~p2:p *. 4. *. p *. p);
  check_float ~eps:5e-3 "L(1,1) ~ 1/(2p)" 1.
    (Or_oblivious.var_l_11 ~p1:p ~p2:p *. 2. *. p);
  check_float ~eps:5e-3 "U(1,1) ~ 1/(2p)" 1.
    (Or_oblivious.var_u_11 ~p1:p ~p2:p *. 2. *. p)

(* ------------------------------------------------------------------ *)
(* Max_pps                                                             *)
(* ------------------------------------------------------------------ *)

let test_pps_determining_vector () =
  let taus = [| 1.; 1.3 |] in
  let v = [| 0.6; 0.25 |] in
  let phi seeds = Max_pps.determining_vector (OP.of_seeds ~taus ~seeds v) in
  Alcotest.(check (array (float 1e-12))) "empty" [| 0.; 0. |] (phi [| 0.9; 0.9 |]);
  Alcotest.(check (array (float 1e-12)))
    "S={1}, capped at v1" [| 0.6; 0.6 |]
    (phi [| 0.3; 0.9 |]);
  Alcotest.(check (array (float 1e-9)))
    "S={1}, seed bound" [| 0.6; 0.39 |]
    (phi [| 0.3; 0.3 |]);
  Alcotest.(check (array (float 1e-12)))
    "S={1,2}" [| 0.6; 0.25 |]
    (phi [| 0.3; 0.1 |])

let test_pps_equal_values_form () =
  (* (25) with v below both thresholds equals tau1 tau2/(tau1+tau2-v). *)
  let tau1 = 1. and tau2 = 1.3 in
  let v = 0.5 in
  check_float "eq 25 small v"
    (tau1 *. tau2 /. (tau1 +. tau2 -. v))
    (Max_pps.equal_values_estimate ~tau1 ~tau2 v);
  (* v above tau1 and tau2: always sampled, estimate = v. *)
  check_float "eq 25 large v" 1.4 (Max_pps.equal_values_estimate ~tau1 ~tau2 1.4)

let test_pps_case26 () =
  (* lo >= tau_lo: est = lo + (hi-lo)/min(1, hi/tau_hi). *)
  check_float "eq 26"
    (1.5 +. 0.5)
    (Max_pps.estimate_det ~tau_hi:1. ~tau_lo:1.3 ~hi:2.0 ~lo:1.5);
  check_float "eq 26 hi below tau"
    (0.8 +. (0.1 /. 0.9))
    (Max_pps.estimate_det ~tau_hi:1. ~tau_lo:0.7 ~hi:0.9 ~lo:0.8)

let test_pps_case3 () =
  check_float "hi >= tau_hi gives est = hi" 1.2
    (Max_pps.estimate_det ~tau_hi:1. ~tau_lo:1.3 ~hi:1.2 ~lo:0.4)

let test_pps_unbiased_cases () =
  List.iter
    (fun (label, taus, v) ->
      let m = Exact.pps ~taus ~v Max_pps.l in
      check_float ~eps:1e-7 label (vmax v) m.Exact.mean)
    (Experiments.Fig3.case_grid ())

let test_pps_case_boundaries_continuous () =
  (* The closed-form cases agree at their boundaries. *)
  let tau_hi = 1.3 and tau_lo = 0.6 in
  (* lo -> tau_lo: case 5 meets case (26). *)
  let from5 = Max_pps.estimate_det ~tau_hi ~tau_lo ~hi:0.9 ~lo:(0.6 -. 1e-10) in
  let from26 = Max_pps.estimate_det ~tau_hi ~tau_lo ~hi:0.9 ~lo:0.6 in
  check_float ~eps:1e-6 "case5/case26 boundary" from26 from5;
  (* hi -> tau_hi: case 5 meets case 3. *)
  let from5 = Max_pps.estimate_det ~tau_hi ~tau_lo ~hi:(1.3 -. 1e-10) ~lo:0.3 in
  let from3 = Max_pps.estimate_det ~tau_hi ~tau_lo ~hi:1.3 ~lo:0.3 in
  check_float ~eps:1e-5 "case5/case3 boundary" from3 from5;
  (* hi -> lo: case 4 meets eq. 25. *)
  let t1 = 1. and t2 = 1.3 in
  let from4 =
    Max_pps.estimate_det ~tau_hi:t1 ~tau_lo:t2 ~hi:0.5 ~lo:(0.5 -. 1e-10)
  in
  check_float ~eps:1e-6 "case4/eq25 boundary"
    (Max_pps.equal_values_estimate ~tau1:t1 ~tau2:t2 0.5)
    from4

let test_pps_l_dominates_ht () =
  List.iter
    (fun (taus, v) ->
      let vl = (Exact.pps_r2_fast ~taus ~v Max_pps.l).Exact.var in
      let vht = Ht.max_pps_variance ~taus ~v in
      Alcotest.(check bool) "L variance at most HT's" true (vl <= vht +. 1e-9))
    [
      ([| 1.; 1. |], [| 0.5; 0.3 |]);
      ([| 1.; 1.3 |], [| 0.9; 0.05 |]);
      ([| 1.3; 0.6 |], [| 0.9; 0.3 |]);
      ([| 1.; 1. |], [| 0.01; 0.005 |]);
    ]

let test_pps_ratio_bound () =
  (* tau1 = tau2 = tau*. The paper claims Var[HT]/Var[L] >= (1+rho)/rho
     everywhere, but that rests on an idealized two-valued estimate at
     min = 0 inconsistent with its own Figure 3 table (see EXPERIMENTS.md).
     We assert the measured properties: ratio >= 1.9 everywhere,
     increasing in min/max, and >= (1+rho)/rho at min = max. *)
  let taus = [| 1.; 1. |] in
  List.iter
    (fun rho ->
      let ratios =
        List.map
          (fun frac ->
            let v = [| rho; rho *. frac |] in
            let vl = (Exact.pps_r2_fast ~taus ~v Max_pps.l).Exact.var in
            let vht = Ht.max_pps_variance ~taus ~v in
            vht /. vl)
          [ 0.; 0.25; 0.5; 0.75; 1. ]
      in
      List.iter
        (fun ratio ->
          Alcotest.(check bool)
            (Printf.sprintf "floor at rho=%.2f" rho)
            true (ratio >= 1.9))
        ratios;
      Alcotest.(check bool) "increasing in min/max" true
        (List.sort compare ratios = ratios);
      Alcotest.(check bool) "paper bound at min=max" true
        (List.nth ratios 4 >= ((1. +. rho) /. rho) -. 1e-6))
    [ 0.9; 0.5; 0.1; 0.01 ]

let test_pps_extreme_variance_forms () =
  (* Var[HT | (rho tau, x)]/tau^2 = rho^2 (1/rho^2 - 1) = 1 - rho^2 for any
     x <= rho tau. The paper additionally claims Var[L | (rho tau, 0)] =
     (rho - rho^2) tau^2; the actual Figure 3 estimator has strictly
     larger variance there (its one-entry estimate varies with the
     revealed seed bound) — we assert the measured relationship. *)
  let taus = [| 1.; 1. |] in
  let rho = 0.3 in
  let v = [| rho; 0. |] in
  check_float ~eps:1e-9 "HT indep of min"
    (1. -. (rho *. rho))
    (Ht.max_pps_variance ~taus ~v);
  let vl = (Exact.pps_r2_fast ~taus ~v Max_pps.l).Exact.var in
  Alcotest.(check bool) "above the idealized two-point variance" true
    (vl > (rho -. (rho *. rho)) +. 0.01);
  Alcotest.(check bool) "still dominates HT" true
    (vl < Ht.max_pps_variance ~taus ~v)

let test_pps_fast_matches_full () =
  List.iter
    (fun (taus, v) ->
      let fast = Exact.pps_r2_fast ~taus ~v Max_pps.l in
      let full = Exact.pps ~taus ~v Max_pps.l in
      check_float ~eps:1e-6 "means agree" full.Exact.mean fast.Exact.mean;
      check_float ~eps:1e-5 "vars agree" full.Exact.var fast.Exact.var)
    [
      ([| 1.; 1.3 |], [| 0.6; 0.25 |]);
      ([| 1.3; 0.6 |], [| 0.9; 0.3 |]);
      ([| 1.; 1. |], [| 0.7; 0. |]);
    ]

let prop_pps_l_nonnegative =
  qtest ~count:300 "max^(L) PPS estimates are nonnegative"
    QCheck.(
      quad (float_bound_inclusive 1.) (float_bound_inclusive 1.)
        (float_bound_inclusive 1.) (float_bound_inclusive 1.))
    (fun (v1, v2, u1, u2) ->
      let taus = [| 1.; 1.3 |] in
      let u1 = 0.001 +. (0.998 *. u1) and u2 = 0.001 +. (0.998 *. u2) in
      let o = OP.of_seeds ~taus ~seeds:[| u1; u2 |] [| v1; v2 |] in
      Max_pps.l o >= -1e-9)

let test_pps_erratum_30_negative_control () =
  (* The paper's printed eq. (30) — with ln((s−lo)·τ1/(τ2(s−hi))) instead
     of the corrected ln((s−lo)·τ2/(τ1·lo)) — violates unbiasedness; this
     negative control documents erratum 3 (see EXPERIMENTS.md). *)
  let printed_case5 ~tau_hi:t1 ~tau_lo:t2 ~hi ~lo =
    let tt = t1 *. t2 and s = t1 +. t2 in
    t1 +. t2 -. (tt /. hi)
    +. (tt *. (t1 -. hi) /. (hi *. s)
       *. log ((s -. lo) *. t1 /. (t2 *. (s -. hi))))
    +. (t2 *. (t1 -. hi) *. (t2 -. lo) /. ((s -. lo) *. hi))
  in
  let printed_est (o : OP.t) =
    let phi = Max_pps.determining_vector o in
    let hi, lo, tau_hi, tau_lo =
      if phi.(0) >= phi.(1) then (phi.(0), phi.(1), o.OP.taus.(0), o.OP.taus.(1))
      else (phi.(1), phi.(0), o.OP.taus.(1), o.OP.taus.(0))
    in
    if hi > 0. && lo < hi && lo < tau_lo && tau_lo <= hi && hi <= tau_hi then
      printed_case5 ~tau_hi ~tau_lo ~hi ~lo
    else Max_pps.l o
  in
  let taus = [| 1.3; 0.6 |] in
  let v = [| 0.9; 0.3 |] in
  let m = Exact.pps ~taus ~v printed_est in
  Alcotest.(check bool)
    (Printf.sprintf "printed form is biased (E = %.6f ≠ 0.9)" m.Exact.mean)
    true
    (abs_float (m.Exact.mean -. 0.9) > 1e-3);
  (* while the corrected implementation is unbiased on the same data *)
  let m' = Exact.pps ~taus ~v Max_pps.l in
  check_float ~eps:1e-7 "corrected form unbiased" 0.9 m'.Exact.mean

let prop_pps_l_unbiased_random =
  qtest ~count:80 "max^(L) PPS unbiased on random (taus, v)"
    QCheck.(
      quad (float_bound_inclusive 1.) (float_bound_inclusive 1.)
        (float_bound_inclusive 1.) (float_bound_inclusive 1.))
    (fun (t1, t2, v1, v2) ->
      let taus = [| 0.5 +. t1; 0.5 +. (1.5 *. t2) |] in
      let v = [| 1.2 *. v1; 1.2 *. v2 |] in
      let m = Exact.pps_r2_fast ~taus ~v Max_pps.l in
      Numerics.Special.float_equal ~eps:1e-6 (vmax v) m.Exact.mean)

let prop_pps_l_dominates_random =
  (* Dominance over HT holds with equal thresholds (the paper's setting
     for the claim and for Figure 4); for strongly unequal thresholds it
     can fail — see the dedicated test below and EXPERIMENTS.md. *)
  qtest ~count:80 "max^(L) PPS variance ≤ HT's (equal thresholds)"
    QCheck.(
      triple (float_bound_inclusive 1.) (float_bound_inclusive 1.)
        (float_bound_inclusive 1.))
    (fun (t, v1, v2) ->
      let tau = 0.5 +. (1.5 *. t) in
      let taus = [| tau; tau |] in
      let v = [| 1.2 *. v1; 1.2 *. v2 |] in
      let vl = (Exact.pps_r2_fast ~taus ~v Max_pps.l).Exact.var in
      vl <= Ht.max_pps_variance ~taus ~v +. 1e-7)

let test_pps_l_nondominance_unequal_taus () =
  (* Finding (not stated in the paper): with unequal thresholds the
     Pareto-optimal max^(L) can have HIGHER variance than max^(HT) — the
     L order prioritizes similar-valued data, and pays on dissimilar data
     when the large value sits in the high-threshold instance. Verified
     by exact quadrature and Monte Carlo. *)
  let taus = [| 1.; 3. |] in
  let v = [| 0.; 0.9 |] in
  let vl = (Exact.pps_r2_fast ~taus ~v Max_pps.l).Exact.var in
  let vht = Ht.max_pps_variance ~taus ~v in
  Alcotest.(check bool)
    (Printf.sprintf "L loses here: %.4f > %.4f" vl vht)
    true (vl > vht);
  (* ... while at equal thresholds the same data has L dominating. *)
  let vl' = (Exact.pps_r2_fast ~taus:[| 1.; 1. |] ~v Max_pps.l).Exact.var in
  let vht' = Ht.max_pps_variance ~taus:[| 1.; 1. |] ~v in
  Alcotest.(check bool) "dominates at equal taus" true (vl' <= vht' +. 1e-9)

let prop_coordinated_unbiased_random =
  qtest ~count:80 "coordinated max unbiased on random (taus, v), r ≤ 4"
    QCheck.small_int
    (fun seed ->
      let rng = Numerics.Prng.create ~seed () in
      let r = 2 + Numerics.Prng.int rng 3 in
      let taus = Array.init r (fun _ -> 0.5 +. (1.5 *. Numerics.Prng.float rng)) in
      let v = Array.init r (fun _ -> 1.2 *. Numerics.Prng.float rng) in
      let m = Coordinated.moments ~taus ~v Coordinated.max_ht in
      Numerics.Special.float_equal ~eps:1e-6 (vmax v) m.Exact.mean)

let prop_min_pps_unbiased_random =
  qtest ~count:60 "min^(HT) PPS unbiased on random data"
    QCheck.(
      quad (float_bound_inclusive 1.) (float_bound_inclusive 1.)
        (float_bound_inclusive 1.) (float_bound_inclusive 1.))
    (fun (t1, t2, v1, v2) ->
      let taus = [| 0.5 +. t1; 0.5 +. (1.5 *. t2) |] in
      (* strictly positive values so min is attainable *)
      let v = [| 0.05 +. v1; 0.05 +. v2 |] in
      let m = Exact.pps_r2_fast ~taus ~v Ht.min_pps in
      Numerics.Special.float_equal ~eps:1e-6 (Float.min v.(0) v.(1)) m.Exact.mean)

(* ------------------------------------------------------------------ *)
(* Or_weighted                                                         *)
(* ------------------------------------------------------------------ *)

let test_or_weighted_unbiased () =
  List.iter
    (fun (p1, p2) ->
      Alcotest.(check bool) "unbiased" true (Experiments.Table51.unbiased ~p1 ~p2))
    prob_grid

let test_or_weighted_tables () =
  List.iter
    (fun (p1, p2) ->
      Alcotest.(check bool) "tables" true
        (Experiments.Table51.tables_match ~p1 ~p2))
    prob_grid

let test_or_weighted_variance_transfer () =
  (* Section 5: variance identical to the weight-oblivious estimators. *)
  List.iter
    (fun (p1, p2) ->
      check_float "L (1,1)"
        (Or_oblivious.var_l_11 ~p1 ~p2)
        (Or_weighted.var_l ~p1 ~p2 ~v:[| 1; 1 |]);
      check_float "L (1,0)"
        (Or_oblivious.var_l_10 ~p1 ~p2)
        (Or_weighted.var_l ~p1 ~p2 ~v:[| 1; 0 |]);
      check_float "U (1,0)"
        (Or_oblivious.var_u_10 ~p1 ~p2)
        (Or_weighted.var_u ~p1 ~p2 ~v:[| 1; 0 |]);
      check_float "HT"
        (Or_oblivious.var_ht ~probs:[| p1; p2 |])
        (Or_weighted.var_ht ~p1 ~p2 ~v:[| 1; 1 |]))
    prob_grid

(* ------------------------------------------------------------------ *)
(* Exact                                                               *)
(* ------------------------------------------------------------------ *)

let test_exact_constant () =
  let m = Exact.oblivious ~probs:[| 0.5; 0.5 |] ~v:[| 1.; 2. |] (fun _ -> 3.) in
  check_float "mean" 3. m.Exact.mean;
  check_float "var" 0. m.Exact.var

let test_exact_monte_carlo_agrees () =
  let probs = [| 0.5; 0.5 |] in
  let v = [| 3.; 2. |] in
  let exact = Exact.oblivious ~probs ~v Max_oblivious.l_r2 in
  let rng = Numerics.Prng.create ~seed:77 () in
  let mc =
    Exact.monte_carlo ~rng ~n:200_000
      ~draw:(fun rng -> OO.draw rng ~probs v)
      Max_oblivious.l_r2
  in
  check_float ~eps:0.02 "MC mean" exact.Exact.mean mc.Exact.mean;
  check_float ~eps:0.05 "MC var" exact.Exact.var mc.Exact.var

let test_exact_dominates () =
  Alcotest.(check bool) "reflexive" true
    (Exact.dominates ~var_a:(fun _ -> 1.) ~var_b:(fun _ -> 1.) [ [| 0. |] ]);
  Alcotest.(check bool) "strict" false
    (Exact.dominates ~var_a:(fun _ -> 2.) ~var_b:(fun _ -> 1.) [ [| 0. |] ])

(* The sharded Monte-Carlo path must give bit-identical moments whether
   the shards run sequentially or on a pool of any size: substream s is
   a function of (master, s) only, and shard accumulators merge in shard
   order. *)
let test_monte_carlo_pool_deterministic () =
  let probs = [| 0.5; 0.5 |] in
  let v = [| 3.; 2. |] in
  let rng = Numerics.Prng.create ~seed:77 () in
  let mc ?pool () =
    Exact.monte_carlo ?pool ~master:31 ~rng ~n:50_000
      ~draw:(fun rng -> OO.draw rng ~probs v)
      Max_oblivious.l_r2
  in
  let seq = mc () in
  let exact = Exact.oblivious ~probs ~v Max_oblivious.l_r2 in
  check_float ~eps:0.05 "sharded MC is still consistent" exact.Exact.mean
    seq.Exact.mean;
  List.iter
    (fun domains ->
      let pool = Numerics.Pool.create ~domains () in
      let par = Fun.protect
          ~finally:(fun () -> Numerics.Pool.shutdown pool)
          (fun () -> mc ~pool ())
      in
      if par.Exact.mean <> seq.Exact.mean || par.Exact.var <> seq.Exact.var
      then
        Alcotest.failf
          "pool size %d: (%.17g, %.17g) <> sequential (%.17g, %.17g)" domains
          par.Exact.mean par.Exact.var seq.Exact.mean seq.Exact.var)
    [ 1; 2; 4 ]

let test_exact_dominates_pool () =
  let grid = List.init 25 (fun i -> [| float_of_int i /. 24.; 0.3 |]) in
  let var_a v = v.(0) *. v.(0) and var_b v = (v.(0) *. v.(0)) +. 0.1 in
  let pool = Numerics.Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Numerics.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check bool) "pooled = sequential" true
        (Exact.dominates ~pool ~var_a ~var_b grid
        = Exact.dominates ~var_a ~var_b grid);
      Alcotest.(check bool) "pooled strict" false
        (Exact.dominates ~pool ~var_a:var_b ~var_b:var_a grid))

(* ------------------------------------------------------------------ *)
(* Flat (allocation-free) evaluators                                   *)
(*                                                                     *)
(* The contract is twofold and both halves are load-bearing for the    *)
(* serving path: every flat evaluator must be bit-identical to its     *)
(* reference evaluator (not merely close — the engine swaps one for    *)
(* the other and responses must not change), and a call must allocate  *)
(* zero minor words (measured, via Allocheck).                         *)
(* ------------------------------------------------------------------ *)

let check_bits msg expected actual =
  if Int64.bits_of_float expected <> Int64.bits_of_float actual then
    Alcotest.failf "%s: expected %h, got %h" msg expected actual

let test_flat_l_uniform_bit_identity () =
  let rng = Numerics.Prng.create ~seed:71 () in
  List.iter
    (fun (r, p) ->
      let coeffs = Max_oblivious.Coeffs.compute ~r ~p in
      let probs = Array.make r p in
      let buf = Evalbuf.create ~r_max:r in
      (* the empty outcome first: the 0-estimate short circuit *)
      let empty = OO.of_mask ~probs (Array.make r 1.) (Array.make r false) in
      Evalbuf.load_oblivious buf empty;
      Max_oblivious.Flat.l_uniform_into coeffs buf ~dst:buf.Evalbuf.out ~di:0;
      check_bits
        (Printf.sprintf "r=%d empty" r)
        (Max_oblivious.l_uniform coeffs empty)
        (Evalbuf.result buf);
      for trial = 1 to 200 do
        let v =
          Array.init r (fun i ->
              if (trial + i) mod 5 = 0 then 0.
              else 10. *. Numerics.Prng.float rng)
        in
        let o = OO.draw rng ~probs v in
        Evalbuf.load_oblivious buf o;
        Max_oblivious.Flat.l_uniform_into coeffs buf ~dst:buf.Evalbuf.out ~di:0;
        check_bits
          (Printf.sprintf "r=%d trial %d" r trial)
          (Max_oblivious.l_uniform coeffs o)
          (Evalbuf.result buf)
      done)
    [ (2, 0.5); (8, 0.3); (32, 0.2) ]

let test_flat_general_bit_identity () =
  (* r = 2: exhaustive masks over the value grid, heterogeneous p. *)
  List.iter
    (fun (p1, p2) ->
      let probs = [| p1; p2 |] in
      let g = Max_oblivious.General.create ~probs in
      let buf = Evalbuf.create ~r_max:2 in
      List.iter
        (fun v ->
          List.iter
            (fun mask ->
              let o = OO.of_mask ~probs v mask in
              Evalbuf.load_oblivious buf o;
              Max_oblivious.Flat.general_into g buf ~dst:buf.Evalbuf.out ~di:0;
              check_bits "general r=2"
                (Max_oblivious.General.estimate g o)
                (Evalbuf.result buf))
            [
              [| false; false |];
              [| true; false |];
              [| false; true |];
              [| true; true |];
            ])
        value_grid)
    prob_grid;
  (* r = 5: random draws (values with ties and zeros). *)
  let rng = Numerics.Prng.create ~seed:72 () in
  let probs = [| 0.2; 0.35; 0.5; 0.65; 0.8 |] in
  let g = Max_oblivious.General.create ~probs in
  let buf = Evalbuf.create ~r_max:5 in
  for trial = 1 to 200 do
    let v =
      Array.init 5 (fun i ->
          if (trial + i) mod 4 = 0 then 0.
          else Float.round (8. *. Numerics.Prng.float rng))
    in
    let o = OO.draw rng ~probs v in
    Evalbuf.load_oblivious buf o;
    Max_oblivious.Flat.general_into g buf ~dst:buf.Evalbuf.out ~di:0;
    check_bits "general r=5"
      (Max_oblivious.General.estimate g o)
      (Evalbuf.result buf)
  done

let test_flat_pps_bit_identity () =
  let rng = Numerics.Prng.create ~seed:73 () in
  List.iter
    (fun taus ->
      let buf = Evalbuf.create ~r_max:2 in
      for trial = 1 to 300 do
        let v =
          [|
            (if trial mod 7 = 0 then 0.
             else 1.2 *. taus.(0) *. Numerics.Prng.float rng);
            (if trial mod 11 = 0 then 0.
             else 1.2 *. taus.(1) *. Numerics.Prng.float rng);
          |]
        in
        let o = OP.draw rng ~taus v in
        Evalbuf.load_pps buf o;
        Max_pps.Flat.l_into ~taus buf ~dst:buf.Evalbuf.out ~di:0;
        check_bits
          (Printf.sprintf "taus (%g,%g) trial %d" taus.(0) taus.(1) trial)
          (Max_pps.l o) (Evalbuf.result buf)
      done)
    [ [| 1.; 1. |]; [| 1.; 3. |]; [| 10.; 4. |] ]

let test_flat_estimate_det_cases () =
  (* Every closed-form branch of Figure 3 plus edge determining vectors:
     zeros, equal values, values at / just under the threshold, tiny and
     huge magnitudes — and a NaN input, which must take the same branch
     (all comparisons false) on both sides. *)
  let dst = Float.Array.make 1 Float.nan in
  let check ~tau_hi ~tau_lo ~hi ~lo =
    Max_pps.Flat.estimate_det_into ~tau_hi ~tau_lo ~hi ~lo dst 0;
    let expected = Max_pps.estimate_det ~tau_hi ~tau_lo ~hi ~lo in
    let actual = Float.Array.get dst 0 in
    if
      not (Float.is_nan expected && Float.is_nan actual)
      && Int64.bits_of_float expected <> Int64.bits_of_float actual
    then
      Alcotest.failf "estimate_det (tau %h %h, v %h %h): expected %h, got %h"
        tau_hi tau_lo hi lo expected actual
  in
  List.iter
    (fun (tau_hi, tau_lo) ->
      List.iter
        (fun (hi, lo) ->
          if hi >= lo || Float.is_nan hi then check ~tau_hi ~tau_lo ~hi ~lo)
        [
          (0., 0.);
          (1e-12, 0.);
          (0.3, 0.3);
          (0.7, 0.2);
          (tau_lo /. 2., tau_lo /. 2.);
          (tau_hi *. 0.999999, 0.);
          (tau_hi *. 0.999999, tau_lo *. 0.999999);
          (tau_hi /. 3., tau_lo /. 7.);
          (1e9 *. Float.min tau_hi tau_lo, 0.1);
          (Float.nan, 0.5);
        ])
    [ (1., 1.); (1., 3.); (3., 1.); (10., 4.) ]

let test_flat_ht_bit_identity () =
  let rng = Numerics.Prng.create ~seed:74 () in
  (* weighted known-seeds variant, r = 2 *)
  let taus = [| 5.; 3. |] in
  let buf = Evalbuf.create ~r_max:2 in
  for trial = 1 to 300 do
    let v =
      [|
        (if trial mod 6 = 0 then 0. else 6. *. Numerics.Prng.float rng);
        (if trial mod 9 = 0 then 0. else 4. *. Numerics.Prng.float rng);
      |]
    in
    let o = OP.draw rng ~taus v in
    Evalbuf.load_pps buf o;
    Ht.Flat.max_pps_into ~taus buf ~dst:buf.Evalbuf.out ~di:0;
    check_bits "ht pps" (Ht.max_pps o) (Evalbuf.result buf)
  done;
  (* weight-oblivious variant, r = 3 *)
  let probs = [| 0.4; 0.6; 0.8 |] in
  let buf = Evalbuf.create ~r_max:3 in
  for trial = 1 to 300 do
    let v =
      Array.init 3 (fun i ->
          if (trial + i) mod 5 = 0 then 0.
          else 7. *. Numerics.Prng.float rng)
    in
    let o = OO.draw rng ~probs v in
    Evalbuf.load_oblivious buf o;
    Ht.Flat.max_oblivious_into ~probs buf ~dst:buf.Evalbuf.out ~di:0;
    check_bits "ht oblivious" (Ht.max_oblivious o) (Evalbuf.result buf)
  done

let test_or_table_bit_identity () =
  let module T = Or_oblivious.Table in
  let states =
    [ (T.state_unsampled, None); (T.state_zero, Some 0.); (T.state_one, Some 1.) ]
  in
  List.iter
    (fun (p1, p2) ->
      let t = T.create ~p1 ~p2 in
      let dst = Float.Array.make 1 0. in
      List.iter
        (fun (s0, v0) ->
          List.iter
            (fun (s1, v1) ->
              let o =
                { Sampling.Outcome.Oblivious.probs = [| p1; p2 |];
                  values = [| v0; v1 |] }
              in
              let code = T.code s0 s1 in
              let reference = Or_oblivious.l_r2 o in
              check_bits "cell" reference (T.cell t code);
              T.eval_into t ~code ~dst ~di:0;
              check_bits "eval_into" reference (Float.Array.get dst 0);
              Float.Array.set dst 0 1.25;
              T.add_into t ~code dst;
              check_bits "add_into" (1.25 +. reference) (Float.Array.get dst 0))
            states)
        states)
    prob_grid

let test_flat_zero_alloc () =
  let rng = Numerics.Prng.create ~seed:77 () in
  (* max^(L), uniform coefficients, r = 8 *)
  let coeffs8 = Max_oblivious.Coeffs.compute ~r:8 ~p:0.3 in
  let probs8 = Array.make 8 0.3 in
  let buf8 = Evalbuf.create ~r_max:8 in
  Evalbuf.load_oblivious buf8
    (OO.draw rng ~probs:probs8 (Array.init 8 (fun i -> float_of_int (i + 1))));
  Allocheck.assert_no_alloc "Max_oblivious.Flat.l_uniform_into" (fun () ->
      Max_oblivious.Flat.l_uniform_into coeffs8 buf8 ~dst:buf8.Evalbuf.out ~di:0);
  (* max^(L), general Theorem 4.1 table, r = 5 heterogeneous p *)
  let probs5 = [| 0.2; 0.35; 0.5; 0.65; 0.8 |] in
  let g5 = Max_oblivious.General.create ~probs:probs5 in
  let buf5 = Evalbuf.create ~r_max:5 in
  Evalbuf.load_oblivious buf5
    (OO.draw rng ~probs:probs5 [| 1.; 0.; 3.; 2.; 5. |]);
  Allocheck.assert_no_alloc "Max_oblivious.Flat.general_into" (fun () ->
      Max_oblivious.Flat.general_into g5 buf5 ~dst:buf5.Evalbuf.out ~di:0);
  (* weighted PPS max^(L) and max^(HT), r = 2 *)
  let taus = [| 5.; 3. |] in
  let bufp = Evalbuf.create ~r_max:2 in
  Evalbuf.load_pps bufp (OP.of_seeds ~taus ~seeds:[| 0.3; 0.8 |] [| 2.5; 1. |]);
  Allocheck.assert_no_alloc "Max_pps.Flat.l_into" (fun () ->
      Max_pps.Flat.l_into ~taus bufp ~dst:bufp.Evalbuf.out ~di:0);
  Allocheck.assert_no_alloc "Max_pps.Flat.estimate_det_into" (fun () ->
      Max_pps.Flat.estimate_det_into ~tau_hi:5. ~tau_lo:3. ~hi:2.5 ~lo:1.
        bufp.Evalbuf.out 0);
  Allocheck.assert_no_alloc "Ht.Flat.max_pps_into" (fun () ->
      Ht.Flat.max_pps_into ~taus bufp ~dst:bufp.Evalbuf.out ~di:0);
  Allocheck.assert_no_alloc "Ht.Flat.max_oblivious_into" (fun () ->
      Ht.Flat.max_oblivious_into ~probs:probs8 buf8 ~dst:buf8.Evalbuf.out ~di:0);
  (* OR^(L) r=2 table reads *)
  let ot = Or_oblivious.Table.create ~p1:0.3 ~p2:0.6 in
  let code = Or_oblivious.Table.(code state_one state_unsampled) in
  let acc = Float.Array.make 1 0. in
  Allocheck.assert_no_alloc "Or_oblivious.Table.eval_into" (fun () ->
      Or_oblivious.Table.eval_into ot ~code ~dst:acc ~di:0);
  Allocheck.assert_no_alloc "Or_oblivious.Table.add_into" (fun () ->
      Or_oblivious.Table.add_into ot ~code acc)

let () =
  Alcotest.run "estcore"
    [
      ( "ht",
        [
          Alcotest.test_case "single" `Quick test_ht_single;
          Alcotest.test_case "single variance" `Quick test_ht_single_variance_exact;
          Alcotest.test_case "multi oblivious" `Quick test_ht_multi_oblivious;
          Alcotest.test_case "unbiased + eq (10)" `Quick test_ht_unbiased_exact;
          Alcotest.test_case "max pps cases" `Quick test_ht_max_pps_cases;
          Alcotest.test_case "max pps unbiased" `Quick test_ht_max_pps_unbiased;
          Alcotest.test_case "min pps unbiased" `Quick test_ht_min_pps_unbiased;
        ] );
      ( "max-L",
        [
          Alcotest.test_case "unbiased on grid" `Quick test_l_r2_unbiased_grid;
          Alcotest.test_case "figure 1 table" `Quick test_l_r2_figure1_table;
          Alcotest.test_case "determining vector" `Quick test_l_r2_determining_vector;
          Alcotest.test_case "dominates HT" `Quick test_l_dominates_ht;
          Alcotest.test_case "L/U incomparable" `Quick test_l_u_incomparable;
          Alcotest.test_case "monotone" `Quick test_l_monotone_r2;
          Alcotest.test_case "Var[L] closed form" `Quick test_l_variance_closed_form;
          prop_l_r2_nonnegative;
          prop_l_r2_unbiased;
        ] );
      ( "coeffs",
        [
          Alcotest.test_case "r=2 closed form" `Quick test_coeffs_closed_forms;
          Alcotest.test_case "r=3 closed form" `Quick test_coeffs_r3_closed_form;
          Alcotest.test_case "sum = A_r" `Quick test_coeffs_sum_is_ar;
          Alcotest.test_case "input guards" `Quick test_coeffs_invalid;
          Alcotest.test_case "unbiased r=3,4,5" `Quick test_l_uniform_unbiased_r345;
          Alcotest.test_case "matches r=2 formula" `Quick test_l_uniform_matches_r2;
          Alcotest.test_case "tie invariance" `Quick test_l_uniform_tie_invariance;
          Alcotest.test_case "dispatch guard" `Quick test_l_dispatch;
          Alcotest.test_case "r=3 general p unbiased" `Quick test_l_r3_unbiased_general_p;
          Alcotest.test_case "r=3 matches uniform" `Quick test_l_r3_matches_uniform;
          Alcotest.test_case "r=3 engine agreement" `Quick test_l_r3_engine_agreement;
          Alcotest.test_case "r=3 dominates HT" `Quick test_l_r3_dominates_ht;
          Alcotest.test_case "uniformity guard" `Quick test_l_uniform_guard;
          Alcotest.test_case "lemma 4.2 to r=8" `Quick test_lemma42_r_up_to_8;
          Alcotest.test_case "dominates HT r=4" `Quick test_l_uniform_dominates_ht_r4;
        ] );
      ( "general",
        [
          Alcotest.test_case "matches r=2" `Quick test_general_matches_r2;
          Alcotest.test_case "matches r=3" `Quick test_general_matches_r3;
          Alcotest.test_case "matches uniform" `Quick test_general_matches_uniform;
          Alcotest.test_case "unbiased r=5 mixed p" `Quick test_general_unbiased_r5;
          Alcotest.test_case "dominates HT r=4" `Quick test_general_dominates_ht_r4;
          Alcotest.test_case "prefix sums" `Quick test_general_prefix_sums;
          Alcotest.test_case "guards" `Quick test_general_guards;
          (qtest ~count:60 "General unbiased for random p (r ≤ 4)"
             QCheck.small_int
             (fun seed ->
               let rng = Numerics.Prng.create ~seed () in
               let r = 2 + Numerics.Prng.int rng 3 in
               let probs =
                 Array.init r (fun _ -> 0.1 +. (0.85 *. Numerics.Prng.float rng))
               in
               let g = Max_oblivious.General.create ~probs in
               let v =
                 Array.init r (fun _ ->
                     Float.round (9. *. Numerics.Prng.float rng))
               in
               let m =
                 Exact.oblivious ~probs ~v (Max_oblivious.General.estimate g)
               in
               Numerics.Special.float_equal ~eps:1e-8 (vmax v) m.Exact.mean));
          (qtest ~count:60
             "General coefficients: α₁ > 0, α_i ≤ 0 for i > 1 (Lemma 4.2 \
              conjecture, heterogeneous p)"
             QCheck.small_int
             (fun seed ->
               let rng = Numerics.Prng.create ~seed () in
               let r = 2 + Numerics.Prng.int rng 4 in
               let probs =
                 Array.init r (fun _ -> 0.1 +. (0.85 *. Numerics.Prng.float rng))
               in
               let g = Max_oblivious.General.create ~probs in
               (* A random permutation's consecutive prefix sums. *)
               let order = Array.init r Fun.id in
               Numerics.Prng.shuffle rng order;
               let ok = ref true in
               let prev = ref 0. in
               let prefix = ref [] in
               Array.iteri
                 (fun pos i ->
                   prefix := i :: !prefix;
                   let a = Max_oblivious.General.prefix_sum g !prefix in
                   let alpha = a -. !prev in
                   if pos = 0 then begin
                     if alpha <= 0. then ok := false
                   end
                   else if alpha > 1e-9 then ok := false;
                   prev := a)
                 order;
               !ok));
        ] );
      ( "max-U",
        [
          Alcotest.test_case "unbiased" `Quick test_u_unbiased_grid;
          Alcotest.test_case "figure 1 values" `Quick test_u_figure1_values;
          Alcotest.test_case "Var[U] (corrected)" `Quick test_u_variance_closed_form;
          Alcotest.test_case "dominates HT" `Quick test_u_dominates_ht;
          Alcotest.test_case "asymmetric variant" `Quick test_uas_asymmetry;
          prop_u_nonnegative;
        ] );
      ( "or",
        [
          Alcotest.test_case "unbiased" `Quick test_or_unbiased;
          Alcotest.test_case "variance closed forms" `Quick test_or_var_closed_forms;
          Alcotest.test_case "domain guard" `Quick test_or_domain_guard;
          Alcotest.test_case "uniform r=3" `Quick test_or_uniform_r3;
          Alcotest.test_case "asymptotics" `Quick test_or_asymptotics;
        ] );
      ( "max-pps",
        [
          Alcotest.test_case "determining vector" `Quick test_pps_determining_vector;
          Alcotest.test_case "eq 25" `Quick test_pps_equal_values_form;
          Alcotest.test_case "eq 26" `Quick test_pps_case26;
          Alcotest.test_case "case hi above tau" `Quick test_pps_case3;
          Alcotest.test_case "unbiased all cases" `Quick test_pps_unbiased_cases;
          Alcotest.test_case "case boundaries" `Quick test_pps_case_boundaries_continuous;
          Alcotest.test_case "dominates HT" `Quick test_pps_l_dominates_ht;
          Alcotest.test_case "ratio bound" `Quick test_pps_ratio_bound;
          Alcotest.test_case "extreme variances" `Quick test_pps_extreme_variance_forms;
          Alcotest.test_case "fast = full quadrature" `Quick test_pps_fast_matches_full;
          Alcotest.test_case "erratum 3 negative control" `Quick
            test_pps_erratum_30_negative_control;
          prop_pps_l_nonnegative;
          prop_pps_l_unbiased_random;
          prop_pps_l_dominates_random;
          Alcotest.test_case "non-dominance at unequal taus" `Quick
            test_pps_l_nondominance_unequal_taus;
          prop_coordinated_unbiased_random;
          prop_min_pps_unbiased_random;
        ] );
      ( "or-weighted",
        [
          Alcotest.test_case "unbiased" `Quick test_or_weighted_unbiased;
          Alcotest.test_case "printed tables" `Quick test_or_weighted_tables;
          Alcotest.test_case "variance transfer" `Quick test_or_weighted_variance_transfer;
        ] );
      ( "flat",
        [
          Alcotest.test_case "max^(L) uniform bit-identity r=2,8,32" `Quick
            test_flat_l_uniform_bit_identity;
          Alcotest.test_case "max^(L) general bit-identity" `Quick
            test_flat_general_bit_identity;
          Alcotest.test_case "max^(L) PPS bit-identity" `Quick
            test_flat_pps_bit_identity;
          Alcotest.test_case "Fig 3 cases bit-identity + edges" `Quick
            test_flat_estimate_det_cases;
          Alcotest.test_case "HT bit-identity" `Quick test_flat_ht_bit_identity;
          Alcotest.test_case "OR^(L) r=2 table bit-identity" `Quick
            test_or_table_bit_identity;
          Alcotest.test_case "zero allocation per call" `Quick
            test_flat_zero_alloc;
        ] );
      ( "exact",
        [
          Alcotest.test_case "constant estimator" `Quick test_exact_constant;
          Alcotest.test_case "monte carlo agrees" `Slow test_exact_monte_carlo_agrees;
          Alcotest.test_case "monte carlo pool-deterministic" `Quick
            test_monte_carlo_pool_deterministic;
          Alcotest.test_case "dominates with pool" `Quick
            test_exact_dominates_pool;
          Alcotest.test_case "dominates" `Quick test_exact_dominates;
        ] );
    ]
