(* The monotone-estimation engine (Estcore.Monotone) and the similarity
   query layer (Aggregates.Similarity) built on it.

   The oracle is brute-force enumeration of the coordinated sample
   space: the outcome — and therefore any estimator of it — is constant
   between consecutive entry points of the data, so exact moments are a
   finite sum of piece-length-weighted midpoint evaluations. Every L*
   closed form is checked unbiased and finite-variance against that
   enumeration, cross-checked against the quadrature engines
   (Monotone.lstar over the step trajectory, Coordinated.expectation
   over the seed line), pinned to the known optimal estimators it must
   specialize to, and its Flat serving twin is pinned bit-identical. *)

module M = Estcore.Monotone
module C = Estcore.Coordinated
module EB = Estcore.Evalbuf
module Sim = Aggregates.Similarity
module Sum_agg = Aggregates.Sum_agg

let fmax = Array.fold_left Float.max 0.
let fmin a = Array.fold_left Float.min infinity a
let fsum = Array.fold_left ( +. ) 0.

(* --- the enumeration oracle --- *)

(* Seed-line pieces: between consecutive entry points the sampled set —
   and any estimator reading only the outcome — is constant, so the
   midpoint value is the piece's value and the moment sums are exact. *)
let pieces ~taus ~v =
  let pts =
    Array.to_list (Array.mapi (fun i vi -> Float.min 1. (vi /. taus.(i))) v)
    |> List.filter (fun a -> a > 0. && a < 1.)
  in
  let pts = List.sort_uniq Float.compare ((0. :: [ 1. ]) @ pts) in
  let rec consecutive = function
    | a :: (b :: _ as rest) -> (a, b) :: consecutive rest
    | _ -> []
  in
  consecutive pts

let enum_moments ~taus ~v est =
  List.fold_left
    (fun (m1, m2) (a, b) ->
      let u = 0.5 *. (a +. b) in
      let x = est (C.of_seed ~taus ~u v) in
      (m1 +. (x *. (b -. a)), m2 +. (x *. x *. (b -. a))))
    (0., 0.) (pieces ~taus ~v)

let close ?(tol = 1e-12) msg expected got =
  let scale = Float.max 1. (Float.abs expected) in
  if Float.abs (expected -. got) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected got

(* Data configurations exercising every closed-form branch: equal and
   unequal thresholds, values above threshold (entry point 1), zero
   entries (never sampled), equal values, proportional value/threshold
   pairs (coincident entry points), r up to 4. *)
let configs =
  [ ("equal-taus", [| 10.; 10. |], [| 3.; 7. |]);
    ("unequal-taus", [| 10.; 5. |], [| 3.; 7. |]);
    ("above-threshold", [| 2.; 5. |], [| 3.; 7. |]);
    ("both-above", [| 2.; 3. |], [| 5.; 7. |]);
    ("zero-entry", [| 10.; 10. |], [| 0.; 4. |]);
    ("equal-values", [| 10.; 8. |], [| 6.; 6. |]);
    ("coincident-entry-points", [| 10.; 20. |], [| 2.; 4. |]);
    ("r3", [| 10.; 8.; 6. |], [| 2.; 5.; 9. |]);
    ("r4-mixed", [| 10.; 3.; 8.; 12. |], [| 2.; 5.; 0.; 9. |]) ]

(* --- unbiasedness and finite variance, per query kind --- *)

(* union → L*-max, intersection → L*-min, l1 → their per-key difference,
   jaccard → the same two sums as numerator and denominator. *)
let test_unbiased_per_kind () =
  List.iter
    (fun (label, taus, v) ->
      let check_kind kind est truth =
        let mean, second = enum_moments ~taus ~v est in
        close (Printf.sprintf "%s/%s unbiased" label kind) truth mean;
        let var = second -. (mean *. mean) in
        if not (Float.is_finite var) then
          Alcotest.failf "%s/%s variance not finite" label kind;
        if var < -1e-9 then
          Alcotest.failf "%s/%s negative variance %g" label kind var
      in
      let minv = if Array.exists (fun x -> x = 0.) v then 0. else fmin v in
      check_kind "union(max)" M.max_lstar (fmax v);
      check_kind "intersection(min)" M.min_lstar minv;
      check_kind "l1(max-min)"
        (fun o -> M.max_lstar o -. M.min_lstar o)
        (fmax v -. minv);
      (* jaccard is the ratio of the two sums; unbiasedness lives in the
         components, so pin both through one outcome evaluation. *)
      check_kind "jaccard-numerator" M.min_lstar minv;
      check_kind "jaccard-denominator" M.max_lstar (fmax v);
      check_kind "sum(ht-anchor)" M.sum_lstar (fsum v))
    configs

(* The enumeration itself cross-checked against the independent
   quadrature moment engine (different machinery, same answer). *)
let test_enumeration_matches_quadrature () =
  List.iter
    (fun (label, taus, v) ->
      List.iter
        (fun (kind, est) ->
          let mean, second = enum_moments ~taus ~v est in
          let q = C.moments ~taus ~v est in
          close ~tol:1e-6
            (Printf.sprintf "%s/%s mean: enumeration vs quadrature" label kind)
            mean q.Estcore.Exact.mean;
          close ~tol:1e-6
            (Printf.sprintf "%s/%s var: enumeration vs quadrature" label kind)
            (second -. (mean *. mean))
            q.Estcore.Exact.var)
        [ ("max", M.max_lstar); ("min", M.min_lstar) ])
    configs

(* --- L* specializes to the known optimal estimators --- *)

let seed_grid = List.init 400 (fun i -> (float_of_int i +. 0.5) /. 400.)

let test_specializes_to_known_estimators () =
  List.iter
    (fun (label, taus, v) ->
      let equal_taus =
        Array.for_all (fun t -> Float.equal t taus.(0)) taus
      in
      List.iter
        (fun u ->
          let o = C.of_seed ~taus ~u v in
          (* L*-min is the inverse-probability estimator for any
             thresholds (all-or-nothing information ⇒ L* = HT). *)
          let lm = M.min_lstar o and ht = C.min_ht o in
          if not (Float.equal lm ht) then
            Alcotest.failf "%s: min_lstar %.17g <> min_ht %.17g at u=%g" label
              lm ht u;
          (* With equal thresholds the max trajectory has one jump and
             L*-max is the classic optimal coordinated max estimator. *)
          if equal_taus then begin
            let lx = M.max_lstar o and hx = C.max_ht o in
            if not (Float.equal lx hx) then
              Alcotest.failf "%s: max_lstar %.17g <> max_ht %.17g at u=%g"
                label lx hx u
          end)
        seed_grid)
    configs

(* --- step trajectories and the quadrature engine --- *)

let test_steps_closed_form_vs_quadrature () =
  List.iter
    (fun (label, taus, v) ->
      List.iter
        (fun u ->
          let o = C.of_seed ~taus ~u v in
          List.iter
            (fun (kind, steps_of, lstar_of) ->
              let s = steps_of o in
              let closed = M.lstar_steps s in
              close
                (Printf.sprintf "%s/%s closed form = direct walk" label kind)
                (lstar_of o) closed;
              (* estimability: the trajectory reaches f(v) as x → 0⁺
                 whenever anything was observed at all *)
              if Array.length s.M.xs > 0 then begin
                let lb = M.lb_of_steps s in
                close
                  (Printf.sprintf "%s/%s lb(0+) = total" label kind)
                  (M.total s) (lb.M.at 1e-12);
                (* the generic quadrature engine agrees with the
                   telescoped closed form *)
                close ~tol:1e-9
                  (Printf.sprintf "%s/%s quadrature lstar = closed form" label
                     kind)
                  closed (M.lstar lb ~u)
              end)
            [ ("max", M.max_steps, M.max_lstar);
              ("min", M.min_steps, M.min_lstar);
              ("sum", M.sum_steps, M.sum_lstar) ])
        [ 0.05; 0.3; 0.7; 0.95 ])
    configs

let test_lstar_rejects_bad_seed () =
  let lb = { M.at = (fun _ -> 1.); breakpoints = [] } in
  List.iter
    (fun u ->
      match M.lstar lb ~u with
      | _ -> Alcotest.failf "lstar accepted seed %g" u
      | exception Invalid_argument _ -> ())
    [ 0.; -0.5; 1.5; Float.nan ]

(* --- the guard --- *)

let test_guard () =
  let d0 = Numerics.Robust.degradation_count () in
  close "guard passes clean values" 5.25 (M.guard ~site:"test.monotone" 5.25);
  close "guard passes zero" 0. (M.guard ~site:"test.monotone" 0.);
  Alcotest.(check int) "clean values do not degrade" d0
    (Numerics.Robust.degradation_count ());
  close "guard clamps negatives" 0. (M.guard ~site:"test.monotone" (-3.));
  close "guard clamps nan" 0. (M.guard ~site:"test.monotone" Float.nan);
  close "guard clamps infinity" 0. (M.guard ~site:"test.monotone" infinity);
  Alcotest.(check int) "each pathology is recorded" (d0 + 3)
    (Numerics.Robust.degradation_count ())

(* --- Flat twins: bit-identity and zero allocation --- *)

let bits = Int64.bits_of_float

let test_flat_bit_identity () =
  let rng = Numerics.Prng.create ~seed:1234 () in
  let dst = Float.Array.make 1 0. in
  let check_outcome label taus o =
    let buf = EB.create ~r_max:(Array.length taus) in
    EB.load_pps buf o;
    M.Flat.max_into ~taus buf ~dst ~di:0;
    let flat_max = Float.Array.get dst 0 in
    if bits flat_max <> bits (M.max_lstar o) then
      Alcotest.failf "%s: Flat.max_into %.17g <> max_lstar %.17g" label
        flat_max (M.max_lstar o);
    M.Flat.min_into ~taus buf ~dst ~di:0;
    let flat_min = Float.Array.get dst 0 in
    if bits flat_min <> bits (M.min_lstar o) then
      Alcotest.failf "%s: Flat.min_into %.17g <> min_lstar %.17g" label
        flat_min (M.min_lstar o)
  in
  (* every config at a deterministic seed sweep (hits each branch and
     the coincident-entry-point tie-breaks) ... *)
  List.iter
    (fun (label, taus, v) ->
      List.iter
        (fun u -> check_outcome label taus (C.of_seed ~taus ~u v))
        seed_grid)
    configs;
  (* ... plus random r up to 5 with clustered values forcing ties *)
  for case = 1 to 500 do
    let r = 2 + Numerics.Prng.int rng 4 in
    let taus =
      Array.init r (fun _ -> float_of_int (2 + Numerics.Prng.int rng 10))
    in
    let v =
      Array.init r (fun _ -> float_of_int (Numerics.Prng.int rng 8))
    in
    check_outcome
      (Printf.sprintf "random case %d" case)
      taus
      (C.draw rng ~taus v)
  done

let test_flat_no_alloc () =
  let taus = [| 10.; 8.; 6. |] in
  let o = C.of_seed ~taus ~u:0.3 [| 3.; 5.; 9. |] in
  let buf = EB.create ~r_max:3 in
  EB.load_pps buf o;
  let dst = Float.Array.make 1 0. in
  Allocheck.assert_no_alloc "Monotone.Flat.max_into" (fun () ->
      M.Flat.max_into ~taus buf ~dst ~di:0);
  Allocheck.assert_no_alloc "Monotone.Flat.min_into" (fun () ->
      M.Flat.min_into ~taus buf ~dst ~di:0)

(* --- the similarity layer --- *)

let shared_seeds () = Sampling.Seeds.create ~master:97 Sampling.Seeds.Shared

let sim_instances () =
  let rng = Numerics.Prng.create ~seed:555 () in
  let inst n offset =
    Sampling.Instance.of_assoc
      (List.init n (fun i ->
           ( offset + (i * 3),
             0.25 *. float_of_int (1 + Numerics.Prng.int rng 40) )))
  in
  (* overlapping key ranges: a real union/intersection structure *)
  [ inst 400 0; inst 400 300 ]

let sim_samples () =
  Sum_agg.sample_pps (shared_seeds ()) ~taus:[| 30.; 40. |] (sim_instances ())

let test_similarity_flat_bit_identity () =
  let ps = sim_samples () in
  let reference = Sim.sums ps ~select:(fun _ -> true) in
  let flat = Sim.sums_flat ps ~select:(fun _ -> true) in
  if bits reference.Sim.union_hat <> bits flat.Sim.union_hat then
    Alcotest.failf "union: reference %.17g <> flat %.17g" reference.Sim.union_hat
      flat.Sim.union_hat;
  if bits reference.Sim.inter_hat <> bits flat.Sim.inter_hat then
    Alcotest.failf "intersection: reference %.17g <> flat %.17g"
      reference.Sim.inter_hat flat.Sim.inter_hat;
  Alcotest.(check bool) "union estimate positive" true
    (reference.Sim.union_hat > 0.);
  (* the select filter narrows both paths identically *)
  let sel h = h mod 2 = 0 in
  let r2 = Sim.sums ps ~select:sel and f2 = Sim.sums_flat ps ~select:sel in
  if bits r2.Sim.union_hat <> bits f2.Sim.union_hat
     || bits r2.Sim.inter_hat <> bits f2.Sim.inter_hat
  then Alcotest.fail "filtered sums differ between reference and flat"

let test_similarity_derived_queries () =
  let ps = sim_samples () in
  let s = Sim.sums_flat ps ~select:(fun _ -> true) in
  close "l1 = union - intersection" (s.Sim.union_hat -. s.Sim.inter_hat)
    (Sim.l1 s);
  close "jaccard = intersection / union"
    (s.Sim.inter_hat /. s.Sim.union_hat)
    (Sim.jaccard s);
  close "jaccard of an empty union is 0" 0.
    (Sim.jaccard { Sim.union_hat = 0.; inter_hat = 0. });
  (* sanity against the data: weighted jaccard of these instances is
     strictly between 0 and 1, and the estimate should land inside with
     these sample sizes *)
  let j = Sim.jaccard s in
  Alcotest.(check bool) "jaccard estimate within (0,1)" true
    (j > 0. && j < 1.)

(* The whole aggregate is unbiased by per-key linearity; pin the
   aggregate against an independently-computed per-key reference sum
   (Sum_agg.estimate with the reference estimators, no guard). *)
let test_similarity_matches_per_key_sum () =
  let ps = sim_samples () in
  let s = Sim.sums_flat ps ~select:(fun _ -> true) in
  let union_ref =
    Sum_agg.estimate ps ~est:M.max_lstar ~select:(fun _ -> true)
  in
  let inter_ref =
    Sum_agg.estimate ps ~est:M.min_lstar ~select:(fun _ -> true)
  in
  close "union sum = per-key L*-max sum" union_ref s.Sim.union_hat;
  close "intersection sum = per-key L*-min sum" inter_ref s.Sim.inter_hat

let () =
  Alcotest.run "monotone"
    [
      ( "oracle",
        [
          Alcotest.test_case "L* unbiased, finite variance, per kind" `Quick
            test_unbiased_per_kind;
          Alcotest.test_case "enumeration matches quadrature moments" `Quick
            test_enumeration_matches_quadrature;
        ] );
      ( "engine",
        [
          Alcotest.test_case "specializes to known optimal estimators" `Quick
            test_specializes_to_known_estimators;
          Alcotest.test_case "steps closed form vs quadrature" `Quick
            test_steps_closed_form_vs_quadrature;
          Alcotest.test_case "rejects seeds outside (0,1]" `Quick
            test_lstar_rejects_bad_seed;
          Alcotest.test_case "nonnegativity guard degrades to 0" `Quick
            test_guard;
        ] );
      ( "flat",
        [
          Alcotest.test_case "bit-identical to references" `Quick
            test_flat_bit_identity;
          Alcotest.test_case "zero minor words per call" `Quick
            test_flat_no_alloc;
        ] );
      ( "similarity",
        [
          Alcotest.test_case "flat sums bit-identical to reference" `Quick
            test_similarity_flat_bit_identity;
          Alcotest.test_case "jaccard / l1 derivations" `Quick
            test_similarity_derived_queries;
          Alcotest.test_case "aggregate equals per-key sum" `Quick
            test_similarity_matches_per_key_sum;
        ] );
    ]
