(* The deterministic fault-injection harness and the degradation ladders
   it exercises: every injected failure must be either recovered (with an
   audit trail) or reported as a structured failure — never an uncaught
   exception, never a NaN or negative estimate. *)

open Numerics

let check_float = Alcotest.(check (float 1e-9))

(* Run [body] with faults armed and the degradation log clean, restoring
   Graceful mode and disarming whatever happens. *)
let with_faults ?rate ?kinds ~seed body =
  Robust.reset_degradations ();
  Faultify.arm ?rate ?kinds ~seed ();
  Fun.protect
    ~finally:(fun () ->
      Faultify.disarm ();
      Robust.set_mode Robust.Graceful;
      Robust.reset_degradations ())
    body

(* ---------- the harness itself ---------- *)

let fire_trace n =
  List.init n (fun _ ->
      ( Faultify.fire ~site:"qp.active_set"
          ~kinds:[ Faultify.Nan; Faultify.Non_convergence; Faultify.Infeasible ],
        Faultify.fire ~site:"integrate.gl_pieces"
          ~kinds:[ Faultify.Nan; Faultify.Non_convergence ] ))

let test_deterministic () =
  let a = with_faults ~seed:42 (fun () -> fire_trace 200) in
  let b = with_faults ~seed:42 (fun () -> fire_trace 200) in
  Alcotest.(check bool) "same seed, same trace" true (a = b);
  let c = with_faults ~seed:43 (fun () -> fire_trace 200) in
  Alcotest.(check bool) "different seed, different trace" true (a <> c);
  let fired =
    List.exists (fun (x, y) -> x <> None || y <> None) a
  in
  Alcotest.(check bool) "rate 0.5 fires within 200 draws" true fired

let test_rate_bounds () =
  let none =
    with_faults ~rate:0.0 ~seed:1 (fun () -> fire_trace 100)
  in
  Alcotest.(check bool) "rate 0 never fires" true
    (List.for_all (fun (x, y) -> x = None && y = None) none);
  let all = with_faults ~rate:1.0 ~seed:1 (fun () -> fire_trace 100) in
  Alcotest.(check bool) "rate 1 always fires" true
    (List.for_all (fun (x, y) -> x <> None && y <> None) all)

let test_disarmed_is_free () =
  Faultify.disarm ();
  Alcotest.(check bool) "disarmed" false (Faultify.armed ());
  Alcotest.(check (option reject)) "no fire when disarmed" None
    (Faultify.fire ~site:"qp.active_set" ~kinds:[ Faultify.Nan ])

let test_kind_filter () =
  with_faults ~rate:1.0 ~kinds:[ Faultify.Infeasible ] ~seed:9 (fun () ->
      (* The site only accepts Nan/Non_convergence: nothing eligible. *)
      Alcotest.(check (option reject)) "no eligible kind" None
        (Faultify.fire ~site:"integrate.gl_pieces"
           ~kinds:[ Faultify.Nan; Faultify.Non_convergence ]);
      match
        Faultify.fire ~site:"qp.active_set"
          ~kinds:[ Faultify.Nan; Faultify.Non_convergence; Faultify.Infeasible ]
      with
      | Some Faultify.Infeasible -> ()
      | _ -> Alcotest.fail "expected an Infeasible injection")

(* ---------- per-solver recovery ---------- *)

(* A feasible little QP: min x² + y²  s.t.  x + y = 1, x,y >= 0. *)
let qp_r ?attempts () =
  Qp.minimize_r ?attempts ~q:[| 2.; 2. |] ~c:[| 0.; 0. |] ~a_ub:[||]
    ~b_ub:[||]
    ~a_eq:[| [| 1.; 1. |] |]
    ~b_eq:[| 1. |] ()

let test_qp_injected_recovers () =
  (* Nan / Non_convergence injections are retryable: the jittered retry
     runs clean (injection fires once per call) and must succeed. *)
  with_faults ~rate:1.0
    ~kinds:[ Faultify.Nan; Faultify.Non_convergence ]
    ~seed:5
    (fun () ->
      match qp_r () with
      | Error f -> Alcotest.failf "not recovered: %s" (Robust.to_string f)
      | Ok r ->
          Alcotest.(check bool) "used a retry" true (r.Qp.retries > 0);
          check_float "x" 0.5 r.Qp.x.(0);
          check_float "y" 0.5 r.Qp.x.(1));
  Alcotest.(check bool) "injections counted" true (Faultify.injection_count () > 0)

let test_qp_injected_infeasible_is_structured () =
  with_faults ~rate:1.0 ~kinds:[ Faultify.Infeasible ] ~seed:5 (fun () ->
      match qp_r () with
      | Error { Robust.reason = Robust.Infeasible; _ } -> ()
      | Error f -> Alcotest.failf "wrong failure: %s" (Robust.to_string f)
      | Ok _ -> Alcotest.fail "expected Error Infeasible")

let test_simplex_injected_is_structured () =
  with_faults ~rate:1.0 ~seed:5 (fun () ->
      match
        Simplex.maximize_r ~c:[| 1. |] ~a_ub:[| [| 1. |] |] ~b_ub:[| 2. |]
          ~a_eq:[||] ~b_eq:[||] ()
      with
      | Error { Robust.solver = Robust.Simplex_lp; _ } -> ()
      | Error f -> Alcotest.failf "wrong solver: %s" (Robust.to_string f)
      | Ok _ -> Alcotest.fail "expected a structured failure")

let test_quadrature_injected_recovers () =
  let f x = (x *. x) +. sin x in
  let clean = Integrate.robust_pieces ~breakpoints:[ 0.5 ] f 0. 1. in
  with_faults ~rate:1.0 ~seed:11 (fun () ->
      let v = Integrate.robust_pieces ~breakpoints:[ 0.5 ] f 0. 1. in
      Alcotest.(check (float 1e-8)) "fallback agrees with clean path" clean v;
      Alcotest.(check bool) "degradation recorded" true
        (Robust.degradation_count () > 0));
  (* Clean path is bit-identical to the historical gl_pieces ~n:32. *)
  Alcotest.(check bool) "clean path bit-identical" true
    (Integrate.robust_pieces ~breakpoints:[ 0.5 ] f 0. 1.
    = Integrate.gl_pieces ~n:32 ~breakpoints:[ 0.5 ] f 0. 1.)

let test_robust_integral_injected () =
  let f x = exp (-.x) in
  let exact = 1. -. exp (-1.) in
  with_faults ~rate:1.0 ~seed:13 (fun () ->
      match Integrate.robust f 0. 1. with
      | Ok v -> Alcotest.(check (float 1e-8)) "recovered integral" exact v
      | Error f -> Alcotest.failf "not recovered: %s" (Robust.to_string f))

let test_bisect_injected_is_structured () =
  with_faults ~rate:1.0 ~seed:17 (fun () ->
      match Special.solve_bisect_r (fun x -> x -. 0.25) 0. 1. with
      | Error { Robust.solver = Robust.Root_find; _ } -> ()
      | Error f -> Alcotest.failf "wrong solver: %s" (Robust.to_string f)
      | Ok _ -> Alcotest.fail "expected a structured failure")

(* ---------- designer ladder ---------- *)

let or_problem () =
  let f v = if Array.exists (fun x -> x > 0.5) v then 1. else 0. in
  let problem =
    Estcore.Designer.Problems.oblivious ~probs:[| 0.4; 0.6 |] ~grid:[ 0.; 1. ]
      ~f ()
  in
  let batches =
    Estcore.Designer.Problems.batches_by
      (fun v -> Array.fold_left (fun a x -> if x > 0. then a + 1 else a) 0 v)
      problem.Estcore.Designer.data
  in
  (problem, batches, f)

let test_designer_degrades_gracefully () =
  let problem, batches, f = or_problem () in
  with_faults ~rate:1.0 ~seed:23 (fun () ->
      match
        Estcore.Designer.solve_partition_robust ~batches ~f
          ~dist:problem.Estcore.Designer.dist ()
      with
      | Error fl -> Alcotest.failf "sweep aborted: %s" (Robust.to_string fl)
      | Ok { Estcore.Designer.estimator; provenance } ->
          Alcotest.(check bool) "every injected batch has provenance" true
            (provenance.Estcore.Designer.degraded <> []);
          Alcotest.(check bool) "provenance covers all batches" true
            (provenance.Estcore.Designer.qp_clean
             + List.length provenance.Estcore.Designer.degraded
            >= provenance.Estcore.Designer.batches);
          List.iter
            (fun (_, v) ->
              Alcotest.(check bool) "finite estimate" true (Float.is_finite v);
              Alcotest.(check bool) "nonnegative estimate" true (v >= -1e-9))
            (Estcore.Designer.bindings estimator);
          Alcotest.(check bool) "injections actually fired" true
            (Faultify.injection_count () > 0))

let test_designer_clean_matches_plain () =
  (* Without injection, the robust solver must agree with solve_partition
     exactly (same QP, no fallback taken). *)
  let problem, batches, f = or_problem () in
  let plain =
    match
      Estcore.Designer.solve_partition ~batches ~f
        ~dist:problem.Estcore.Designer.dist ()
    with
    | Ok est -> Estcore.Designer.bindings est
    | Error e -> Alcotest.failf "plain solver failed: %s" e
  in
  match
    Estcore.Designer.solve_partition_robust ~batches ~f
      ~dist:problem.Estcore.Designer.dist ()
  with
  | Error fl -> Alcotest.failf "robust solver failed: %s" (Robust.to_string fl)
  | Ok { Estcore.Designer.estimator; provenance } ->
      Alcotest.(check bool) "no degradations on clean input" true
        (provenance.Estcore.Designer.degraded = []);
      List.iter
        (fun (k, v) ->
          let v' = List.assoc k plain in
          check_float "same estimate" v' v)
        (Estcore.Designer.bindings estimator)

let test_strict_mode_errors () =
  let problem, batches, f = or_problem () in
  with_faults ~rate:1.0 ~seed:23 (fun () ->
      Robust.set_mode Robust.Strict;
      (match
         Estcore.Designer.solve_partition_robust ~batches ~f
           ~dist:problem.Estcore.Designer.dist ()
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "strict mode must surface the degradation");
      (* The strict failure must be a clean [Error], not a logged
         recovery. *)
      Alcotest.(check int) "no silent log entries in strict mode" 0
        (Robust.degradation_count ()))

let test_strict_quadrature_raises () =
  with_faults ~rate:1.0 ~seed:29 (fun () ->
      Robust.set_mode Robust.Strict;
      match Integrate.robust_pieces ~breakpoints:[] (fun x -> x) 0. 1. with
      | _ -> Alcotest.fail "expected Solver_error in strict mode"
      | exception Robust.Solver_error _ -> ())

(* ---------- end-to-end sweeps under injection ---------- *)

let finite x = Float.is_finite x

let small_traffic =
  {
    Workload.Traffic.default with
    Workload.Traffic.n_shared = 60;
    n_only = 40;
    total_per_hour = 3_000.;
  }

let test_sweeps_complete_under_injection () =
  with_faults ~rate:0.3 ~seed:31 (fun () ->
      let rows1 = Experiments.Fig1.series ~steps:6 () in
      List.iter
        (fun r ->
          Alcotest.(check bool) "fig1 finite" true
            (finite r.Experiments.Fig1.l_over_ht
            && finite r.Experiments.Fig1.u_over_ht))
        rows1;
      let rows2 = Experiments.Fig2.series ~ps:[ 0.2; 0.5 ] () in
      List.iter
        (fun r ->
          Alcotest.(check bool) "fig2 finite and nonnegative" true
            (finite r.Experiments.Fig2.ht
            && finite r.Experiments.Fig2.l_11
            && finite r.Experiments.Fig2.u_10
            && r.Experiments.Fig2.ht >= 0.))
        rows2;
      let rows4 = Experiments.Fig4.panel ~rho:0.5 ~steps:6 () in
      List.iter
        (fun r ->
          Alcotest.(check bool) "fig4 finite and nonnegative" true
            (finite r.Experiments.Fig4.nvar_ht
            && finite r.Experiments.Fig4.nvar_l
            && r.Experiments.Fig4.nvar_ht >= -1e-9
            && r.Experiments.Fig4.nvar_l >= -1e-9))
        rows4;
      let rows7 =
        Experiments.Fig7.series ~percents:[ 5. ] ~params:small_traffic ()
      in
      List.iter
        (fun r ->
          Alcotest.(check bool) "fig7 finite and nonnegative" true
            (finite r.Experiments.Fig7.nvar_ht
            && finite r.Experiments.Fig7.nvar_l
            && r.Experiments.Fig7.nvar_ht >= 0.
            && r.Experiments.Fig7.nvar_l >= 0.))
        rows7;
      Alcotest.(check bool) "faults actually fired during the sweeps" true
        (Faultify.injection_count () > 0))

let test_sweep_rows_match_clean () =
  (* Graceful degradation must not change the numbers materially: the
     fallback rungs hit the same integrals to >= 1e-6 accuracy. *)
  let clean = Experiments.Fig4.panel ~rho:0.5 ~steps:4 () in
  let injected =
    with_faults ~rate:0.3 ~seed:37 (fun () ->
        Experiments.Fig4.panel ~rho:0.5 ~steps:4 ())
  in
  List.iter2
    (fun (a : Experiments.Fig4.row) (b : Experiments.Fig4.row) ->
      Alcotest.(check (float 1e-5)) "nvar_ht agrees" a.nvar_ht b.nvar_ht;
      Alcotest.(check (float 1e-5)) "nvar_l agrees" a.nvar_l b.nvar_l)
    clean injected

let () =
  Alcotest.run "robustness"
    [
      ( "faultify",
        [
          Alcotest.test_case "deterministic traces" `Quick test_deterministic;
          Alcotest.test_case "rate bounds" `Quick test_rate_bounds;
          Alcotest.test_case "disarmed is free" `Quick test_disarmed_is_free;
          Alcotest.test_case "kind filter" `Quick test_kind_filter;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "qp recovers via jittered retry" `Quick
            test_qp_injected_recovers;
          Alcotest.test_case "qp injected infeasible is structured" `Quick
            test_qp_injected_infeasible_is_structured;
          Alcotest.test_case "simplex injected is structured" `Quick
            test_simplex_injected_is_structured;
          Alcotest.test_case "quadrature ladder recovers" `Quick
            test_quadrature_injected_recovers;
          Alcotest.test_case "robust integral recovers" `Quick
            test_robust_integral_injected;
          Alcotest.test_case "bisect injected is structured" `Quick
            test_bisect_injected_is_structured;
        ] );
      ( "designer",
        [
          Alcotest.test_case "degrades gracefully with provenance" `Quick
            test_designer_degrades_gracefully;
          Alcotest.test_case "clean path matches plain solver" `Quick
            test_designer_clean_matches_plain;
          Alcotest.test_case "strict mode surfaces errors" `Quick
            test_strict_mode_errors;
          Alcotest.test_case "strict quadrature raises Solver_error" `Quick
            test_strict_quadrature_raises;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "fig1/2/4/7 complete under injection" `Slow
            test_sweeps_complete_under_injection;
          Alcotest.test_case "injected rows match clean rows" `Slow
            test_sweep_rows_match_clean;
        ] );
    ]
