(* Unit and property tests for the numerics substrate. *)

open Numerics

let check_float ?(eps = 1e-9) msg expected actual =
  if not (Special.float_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let qtest ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Prng.create ~seed:123 () in
  let b = Prng.create ~seed:123 () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 () in
  let b = Prng.create ~seed:2 () in
  Alcotest.(check bool) "different seeds differ" true (Prng.bits64 a <> Prng.bits64 b)

let test_prng_float_range () =
  let r = Prng.create ~seed:5 () in
  for _ = 1 to 10_000 do
    let x = Prng.float r in
    if x < 0. || x >= 1. then Alcotest.failf "float out of range: %g" x
  done

let test_prng_float_open () =
  let r = Prng.create ~seed:6 () in
  for _ = 1 to 10_000 do
    let x = Prng.float_open r in
    if x <= 0. || x >= 1. then Alcotest.failf "float_open out of range: %g" x
  done

let test_prng_int_bounds () =
  let r = Prng.create ~seed:7 () in
  for _ = 1 to 10_000 do
    let x = Prng.int r 17 in
    if x < 0 || x >= 17 then Alcotest.failf "int out of bounds: %d" x
  done

let test_prng_int_uniformity () =
  let r = Prng.create ~seed:8 () in
  let cells = Array.make 16 0 in
  let n = 160_000 in
  for _ = 1 to n do
    let i = Prng.int r 16 in
    cells.(i) <- cells.(i) + 1
  done;
  let chi2 = Stats.chi_square_uniform ~counts:cells in
  (* 15 dof; 99.99th percentile ≈ 44.3. *)
  if chi2 > 44.3 then Alcotest.failf "chi-square too large: %g" chi2

let test_prng_bool_balance () =
  let r = Prng.create ~seed:9 () in
  let n = 100_000 in
  let heads = ref 0 in
  for _ = 1 to n do
    if Prng.bool r then incr heads
  done;
  let frac = float_of_int !heads /. float_of_int n in
  if abs_float (frac -. 0.5) > 0.01 then Alcotest.failf "biased coin: %g" frac

let test_prng_exponential_mean () =
  let r = Prng.create ~seed:10 () in
  let acc = Stats.Acc.create () in
  for _ = 1 to 200_000 do
    Stats.Acc.add acc (Prng.exponential r 2.)
  done;
  check_float ~eps:0.02 "Exp(2) mean" 0.5 (Stats.Acc.mean acc)

let test_prng_split_independent () =
  let a = Prng.create ~seed:11 () in
  let b = Prng.split a in
  Alcotest.(check bool) "split streams differ" true (Prng.bits64 a <> Prng.bits64 b)

let test_prng_copy () =
  let a = Prng.create ~seed:12 () in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_shuffle_permutation () =
  let r = Prng.create ~seed:13 () in
  let a = Array.init 50 Fun.id in
  Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "multiset preserved" (Array.init 50 Fun.id) sorted

let test_prng_int_invalid () =
  let r = Prng.create () in
  Alcotest.check_raises "n = 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int r 0))

let test_xoshiro_jump_changes_state () =
  let a = Prng.Xoshiro256.create 99L in
  let b = Prng.Xoshiro256.copy a in
  Prng.Xoshiro256.jump b;
  Alcotest.(check bool) "jumped stream differs" true
    (Prng.Xoshiro256.next a <> Prng.Xoshiro256.next b)

let test_splitmix_mix_distinct () =
  let seen = Hashtbl.create 64 in
  for i = 0 to 1000 do
    Hashtbl.replace seen (Prng.SplitMix64.mix (Int64.of_int i)) ()
  done;
  Alcotest.(check int) "mix is injective on small range" 1001 (Hashtbl.length seen)

(* ------------------------------------------------------------------ *)
(* Hashing                                                             *)
(* ------------------------------------------------------------------ *)

let test_hash_deterministic () =
  Alcotest.(check int64) "hash_int deterministic"
    (Hashing.hash_int ~salt:5L 42)
    (Hashing.hash_int ~salt:5L 42)

let test_hash_salt_sensitivity () =
  Alcotest.(check bool) "salts matter" true
    (Hashing.hash_int ~salt:1L 42 <> Hashing.hash_int ~salt:2L 42)

let test_hash_key_sensitivity () =
  Alcotest.(check bool) "keys matter" true
    (Hashing.hash_int ~salt:1L 42 <> Hashing.hash_int ~salt:1L 43)

let test_hash_string () =
  Alcotest.(check bool) "string hash distinguishes" true
    (Hashing.hash_string ~salt:1L "abc" <> Hashing.hash_string ~salt:1L "abd");
  Alcotest.(check int64) "string hash deterministic"
    (Hashing.hash_string ~salt:1L "abc")
    (Hashing.hash_string ~salt:1L "abc")

let test_to_unit_range () =
  for i = 0 to 10_000 do
    let u = Hashing.to_unit (Hashing.hash_int ~salt:3L i) in
    if u < 0. || u >= 1. then Alcotest.failf "to_unit out of range: %g" u;
    let v = Hashing.uniform_int ~salt:3L i in
    if v <= 0. || v >= 1. then Alcotest.failf "uniform_int out of range: %g" v
  done

let test_uniform_int_uniformity () =
  let cells = Array.make 10 0 in
  let n = 100_000 in
  for i = 0 to n - 1 do
    let u = Hashing.uniform_int ~salt:77L i in
    let c = int_of_float (u *. 10.) in
    cells.(min 9 c) <- cells.(min 9 c) + 1
  done;
  let chi2 = Stats.chi_square_uniform ~counts:cells in
  if chi2 > 33.7 (* 9 dof, 99.99% *) then Alcotest.failf "hash not uniform: %g" chi2

let test_salt_of_instance_distinct () =
  let s0 = Hashing.salt_of_instance ~master:1 0 in
  let s1 = Hashing.salt_of_instance ~master:1 1 in
  let s0' = Hashing.salt_of_instance ~master:2 0 in
  Alcotest.(check bool) "instances distinct" true (s0 <> s1);
  Alcotest.(check bool) "masters distinct" true (s0 <> s0')

let test_combine_noncommutative () =
  Alcotest.(check bool) "combine order matters" true
    (Hashing.combine 1L 2L <> Hashing.combine 2L 1L)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_acc_basic () =
  let a = Stats.Acc.create () in
  List.iter (Stats.Acc.add a) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Stats.Acc.count a);
  check_float "mean" 2.5 (Stats.Acc.mean a);
  check_float "var" 1.25 (Stats.Acc.var a);
  check_float "var_sample" (5. /. 3.) (Stats.Acc.var_sample a);
  check_float "min" 1. (Stats.Acc.min a);
  check_float "max" 4. (Stats.Acc.max a)

(* Degenerate accumulators (n = 0, n = 1) must be NaN-free: an empty
   pool shard or single-trial cell used to report NaN mean/variance and
   poison any downstream merge or ratio. *)
let test_acc_empty () =
  let a = Stats.Acc.create () in
  check_float "empty mean" 0. (Stats.Acc.mean a);
  check_float "empty var" 0. (Stats.Acc.var a);
  check_float "empty var_sample" 0. (Stats.Acc.var_sample a);
  check_float "empty stddev" 0. (Stats.Acc.stddev a);
  check_float "empty stderr" 0. (Stats.Acc.stderr a);
  Alcotest.(check bool) "empty min" true (Stats.Acc.min a = infinity);
  Alcotest.(check bool) "empty max" true (Stats.Acc.max a = neg_infinity)

let test_acc_single () =
  let a = Stats.Acc.create () in
  Stats.Acc.add a 7.5;
  check_float "single mean" 7.5 (Stats.Acc.mean a);
  check_float "single var" 0. (Stats.Acc.var a);
  check_float "single var_sample" 0. (Stats.Acc.var_sample a);
  check_float "single stderr" 0. (Stats.Acc.stderr a)

let test_acc_merge_empty () =
  let a = Stats.Acc.create () and e = Stats.Acc.create () in
  List.iter (Stats.Acc.add a) [ 2.; 4.; 6. ];
  List.iter
    (fun m ->
      check_float "mean preserved" (Stats.Acc.mean a) (Stats.Acc.mean m);
      check_float "var preserved" (Stats.Acc.var a) (Stats.Acc.var m);
      Alcotest.(check int) "count preserved" 3 (Stats.Acc.count m))
    [ Stats.Acc.merge a e; Stats.Acc.merge e a ];
  let ee = Stats.Acc.merge e (Stats.Acc.create ()) in
  check_float "empty+empty mean" 0. (Stats.Acc.mean ee);
  check_float "empty+empty var" 0. (Stats.Acc.var ee)

let test_normal_ci_guard () =
  Alcotest.check_raises "n = 0 raises"
    (Invalid_argument "Stats.normal_ci: n must be positive") (fun () ->
      ignore (Stats.normal_ci ~level:0.95 ~mean:0. ~var:1. ~n:0))

let test_acc_merge () =
  let a = Stats.Acc.create () and b = Stats.Acc.create () in
  let all = Stats.Acc.create () in
  List.iter
    (fun x ->
      Stats.Acc.add all x;
      if x < 3. then Stats.Acc.add a x else Stats.Acc.add b x)
    [ 1.; 2.; 3.; 4.; 5.; 10. ];
  let m = Stats.Acc.merge a b in
  check_float "merged mean" (Stats.Acc.mean all) (Stats.Acc.mean m);
  check_float "merged var" (Stats.Acc.var all) (Stats.Acc.var m);
  Alcotest.(check int) "merged count" 6 (Stats.Acc.count m)

let test_cov_correlation () =
  let c = Stats.Cov.create () in
  List.iter (fun x -> Stats.Cov.add c x (2. *. x +. 1.)) [ 1.; 2.; 3.; 4. ];
  check_float "perfect corr" 1. (Stats.Cov.corr c);
  let d = Stats.Cov.create () in
  List.iter (fun x -> Stats.Cov.add d x (-.x)) [ 1.; 2.; 3.; 4. ];
  check_float "anti corr" (-1.) (Stats.Cov.corr d)

let test_cov_value () =
  let c = Stats.Cov.create () in
  List.iter2 (Stats.Cov.add c) [ 1.; 2.; 3. ] [ 2.; 4.; 3. ];
  (* means: 2, 3; cov = ((−1)(−1)+(0)(1)+(1)(0))/3 = 1/3 *)
  check_float "cov" (1. /. 3.) (Stats.Cov.cov c)

let test_batch_stats () =
  check_float "mean" 2. (Stats.mean [| 1.; 2.; 3. |]);
  check_float "variance" (2. /. 3.) (Stats.variance [| 1.; 2.; 3. |]);
  check_float "stddev" (sqrt (2. /. 3.)) (Stats.stddev [| 1.; 2.; 3. |]);
  check_float "cv" 0.5 (Stats.cv ~mean:2. ~var:1.)

let test_erf () =
  check_float ~eps:1e-6 "erf 0" 0. (Stats.erf 0.);
  check_float ~eps:1e-4 "erf 1" 0.8427007929 (Stats.erf 1.);
  check_float ~eps:1e-4 "erf -1" (-0.8427007929) (Stats.erf (-1.));
  check_float ~eps:1e-6 "erf 5" 1. (Stats.erf 5.)

let test_z_of_level () =
  check_float ~eps:1e-3 "z(0.95)" 1.95996 (Stats.z_of_level 0.95);
  check_float ~eps:1e-3 "z(0.99)" 2.57583 (Stats.z_of_level 0.99)

let test_normal_ci () =
  let lo, hi = Stats.normal_ci ~level:0.95 ~mean:10. ~var:4. ~n:100 in
  check_float ~eps:1e-3 "ci lo" (10. -. (1.95996 *. 0.2)) lo;
  check_float ~eps:1e-3 "ci hi" (10. +. (1.95996 *. 0.2)) hi

let test_quantile () =
  let a = [| 5.; 1.; 3.; 2.; 4. |] in
  check_float "median" 3. (Stats.quantile a 0.5);
  check_float "min" 1. (Stats.quantile a 0.);
  check_float "max" 5. (Stats.quantile a 1.);
  check_float "q25" 2. (Stats.quantile a 0.25)

let test_chi_square () =
  check_float "uniform counts" 0. (Stats.chi_square_uniform ~counts:[| 5; 5; 5 |]);
  (* counts (10,5,0): expected 5 each → (25 + 0 + 25)/5 = 10. *)
  check_float "skewed" 10. (Stats.chi_square_uniform ~counts:[| 10; 5; 0 |])

(* ------------------------------------------------------------------ *)
(* Special                                                             *)
(* ------------------------------------------------------------------ *)

let test_binomial () =
  check_float "C(10,3)" 120. (Special.binomial 10 3);
  check_float "C(5,0)" 1. (Special.binomial 5 0);
  check_float "C(5,5)" 1. (Special.binomial 5 5);
  check_float "C(5,6)" 0. (Special.binomial 5 6);
  check_float "C(5,-1)" 0. (Special.binomial 5 (-1));
  check_float "C(52,5)" 2598960. (Special.binomial 52 5)

let test_binomial_int () =
  Alcotest.(check int) "C(10,3)" 120 (Special.binomial_int 10 3);
  Alcotest.(check int) "C(20,10)" 184756 (Special.binomial_int 20 10)

let test_pow_int () =
  check_float "2^10" 1024. (Special.pow_int 2. 10);
  check_float "x^0" 1. (Special.pow_int 3.7 0);
  check_float "0.5^3" 0.125 (Special.pow_int 0.5 3)

let test_log_binomial () =
  check_float ~eps:1e-9 "log C(10,3)" (log 120.) (Special.log_binomial 10 3)

let test_falling () =
  check_float "5·4·3" 60. (Special.falling 5. 3);
  check_float "x^(0)" 1. (Special.falling 5. 0)

let test_harmonic () =
  check_float "H1" 1. (Special.harmonic 1);
  check_float "H4" (25. /. 12.) (Special.harmonic 4);
  check_float "gen s=1" (Special.harmonic 10) (Special.generalized_harmonic 10 1.)

let test_solve_bisect () =
  let root = Special.solve_bisect (fun x -> (x *. x) -. 2.) 0. 2. in
  check_float ~eps:1e-10 "sqrt 2" (sqrt 2.) root;
  let root = Special.solve_bisect (fun x -> x -. 1.) 1. 5. in
  check_float "root at endpoint" 1. root

let test_solve_bisect_no_sign_change () =
  Alcotest.check_raises "rejects same-sign interval"
    (Invalid_argument "Special.solve_bisect: no sign change on interval")
    (fun () -> ignore (Special.solve_bisect (fun x -> (x *. x) +. 1.) 0. 1.))

let test_float_equal () =
  Alcotest.(check bool) "exact" true (Special.float_equal 1. 1.);
  Alcotest.(check bool) "relative" true (Special.float_equal 1e12 (1e12 +. 1.));
  Alcotest.(check bool) "distinct" false (Special.float_equal 1. 1.1)

(* ------------------------------------------------------------------ *)
(* Integrate                                                           *)
(* ------------------------------------------------------------------ *)

let test_simpson_poly () =
  check_float ~eps:1e-10 "x^2 on [0,1]" (1. /. 3.)
    (Integrate.simpson (fun x -> x *. x) 0. 1.);
  check_float ~eps:1e-9 "sin on [0,pi]" 2. (Integrate.simpson sin 0. Float.pi)

let test_simpson_pieces_kink () =
  check_float ~eps:1e-10 "|x-1/2| on [0,1]" 0.25
    (Integrate.simpson_pieces ~breakpoints:[ 0.5 ]
       (fun x -> abs_float (x -. 0.5))
       0. 1.)

let test_trapezoid () =
  check_float ~eps:1e-4 "trapezoid x^2" (1. /. 3.)
    (Integrate.trapezoid_grid ~n:1000 (fun x -> x *. x) 0. 1.)

let test_gauss_legendre_exactness () =
  (* GL with 32 nodes is exact for polynomials of degree 63. *)
  check_float ~eps:1e-12 "x^10 on [0,1]" (1. /. 11.)
    (Integrate.gauss_legendre (fun x -> x ** 10.) 0. 1.);
  check_float ~eps:1e-12 "x^63 on [0,1]" (1. /. 64.)
    (Integrate.gauss_legendre (fun x -> x ** 63.) 0. 1.)

let test_gauss_legendre_analytic () =
  check_float ~eps:1e-12 "exp on [0,1]" (exp 1. -. 1.)
    (Integrate.gauss_legendre exp 0. 1.);
  check_float ~eps:1e-10 "log singular-ish" (-1.)
    (Integrate.gl_pieces
       ~breakpoints:(List.init 12 (fun k -> 10. ** float_of_int (-k - 1)))
       log 0. 1. |> fun x -> x +. 0. )

let test_gl_pieces_matches_simpson () =
  let f x = 1. /. (1. +. (x *. x)) in
  check_float ~eps:1e-9 "atan integrand"
    (Integrate.simpson f 0. 1.)
    (Integrate.gl_pieces ~breakpoints:[ 0.3; 0.7 ] f 0. 1.)

let test_expectation_2d () =
  check_float ~eps:1e-8 "xy over unit square" 0.25
    (Integrate.expectation_2d ~breaks_x:[] ~breaks_y:[] (fun x y -> x *. y))

(* ------------------------------------------------------------------ *)
(* Linalg                                                              *)
(* ------------------------------------------------------------------ *)

let test_solve_2x2 () =
  let x = Linalg.solve [| [| 2.; 1. |]; [| 1.; 3. |] |] [| 5.; 10. |] in
  check_float "x0" 1. x.(0);
  check_float "x1" 3. x.(1)

let test_solve_3x3 () =
  let a = [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |]; [| 7.; 8.; 10. |] |] in
  let b = [| 6.; 15.; 25. |] in
  let x = Linalg.solve a b in
  let back = Linalg.mat_vec a x in
  Array.iteri (fun i v -> check_float ~eps:1e-9 "residual" b.(i) v) back

let test_solve_singular () =
  (match Linalg.solve [| [| 1.; 2. |]; [| 2.; 4. |] |] [| 1.; 2. |] with
  | _ -> Alcotest.fail "expected Failure on a singular system"
  | exception Failure msg ->
      Alcotest.(check bool)
        "message names the singularity" true
        (String.length msg > 0
        && String.sub msg 0 21 = "Linalg.solve: singula"));
  match Linalg.solve_r [| [| 1.; 2. |]; [| 2.; 4. |] |] [| 1.; 2. |] with
  | Ok _ -> Alcotest.fail "expected Error Singular"
  | Error f ->
      Alcotest.(check bool)
        "structured Singular" true
        (f.Robust.reason = Robust.Singular)

let test_mat_ops () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let c = Linalg.mat_mul a b in
  check_float "mul" 2. c.(0).(0);
  check_float "mul" 1. c.(0).(1);
  let t = Linalg.transpose a in
  check_float "transpose" 3. t.(0).(1);
  check_float "dot" 11. (Linalg.vec_dot [| 1.; 2. |] [| 3.; 4. |]);
  check_float "norm_inf" 4. (Linalg.vec_norm_inf [| -4.; 3. |])

let test_lstsq () =
  (* Overdetermined consistent: y = 2x. *)
  let a = [| [| 1. |]; [| 2. |]; [| 3. |] |] in
  let b = [| 2.; 4.; 6. |] in
  let x = Linalg.solve_lstsq a b in
  check_float ~eps:1e-6 "slope" 2. x.(0)

let test_rank () =
  Alcotest.(check int) "full rank" 2
    (Linalg.rank_estimate [| [| 1.; 0. |]; [| 0.; 1. |] |]);
  Alcotest.(check int) "rank deficient" 1
    (Linalg.rank_estimate [| [| 1.; 2. |]; [| 2.; 4. |] |]);
  Alcotest.(check int) "rectangular" 2
    (Linalg.rank_estimate [| [| 1.; 0.; 1. |]; [| 0.; 1.; 1. |] |])

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)
(* ------------------------------------------------------------------ *)

let test_simplex_basic () =
  match
    Simplex.maximize ~c:[| 1.; 1. |]
      ~a_ub:[| [| 1.; 2. |]; [| 1.; 0. |] |]
      ~b_ub:[| 4.; 3. |] ~a_eq:[||] ~b_eq:[||] ()
  with
  | Simplex.Optimal (v, x) ->
      check_float ~eps:1e-8 "objective" 3.5 v;
      check_float ~eps:1e-8 "x0" 3. x.(0);
      check_float ~eps:1e-8 "x1" 0.5 x.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_equality () =
  match
    Simplex.maximize ~c:[| 0.; 1. |] ~a_ub:[||] ~b_ub:[||]
      ~a_eq:[| [| 1.; 1. |] |] ~b_eq:[| 2. |] ()
  with
  | Simplex.Optimal (v, x) ->
      check_float ~eps:1e-8 "objective" 2. v;
      check_float ~eps:1e-8 "x1 = 2" 2. x.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  match
    Simplex.maximize ~c:[| 1. |] ~a_ub:[||] ~b_ub:[||]
      ~a_eq:[| [| 1. |]; [| 1. |] |] ~b_eq:[| 1.; 2. |] ()
  with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  match
    Simplex.maximize ~c:[| 1. |] ~a_ub:[||] ~b_ub:[||] ~a_eq:[||] ~b_eq:[||] ()
  with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_negative_rhs () =
  (* -x ≤ -1  ⇔  x ≥ 1; maximize -x ⇒ x = 1. *)
  match
    Simplex.maximize ~c:[| -1. |] ~a_ub:[| [| -1. |] |] ~b_ub:[| -1. |]
      ~a_eq:[||] ~b_eq:[||] ()
  with
  | Simplex.Optimal (v, x) ->
      check_float ~eps:1e-8 "objective" (-1.) v;
      check_float ~eps:1e-8 "x" 1. x.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_solve_eq_nonneg () =
  (match Simplex.solve_eq_nonneg [| [| 1.; 1. |] |] [| 1. |] with
  | Some x ->
      check_float ~eps:1e-8 "sums to 1" 1. (x.(0) +. x.(1));
      Alcotest.(check bool) "nonneg" true (x.(0) >= -1e-9 && x.(1) >= -1e-9)
  | None -> Alcotest.fail "expected feasible");
  match Simplex.solve_eq_nonneg [| [| 1.; 1. |] |] [| -1. |] with
  | None -> ()
  | Some _ -> Alcotest.fail "expected infeasible (x ≥ 0 cannot sum to −1)"

let test_simplex_degenerate () =
  (* Redundant equality rows must not break phase 1. *)
  match
    Simplex.maximize ~c:[| 1.; 0. |] ~a_ub:[| [| 1.; 0. |] |] ~b_ub:[| 2. |]
      ~a_eq:[| [| 1.; 1. |]; [| 2.; 2. |] |] ~b_eq:[| 3.; 6. |] ()
  with
  | Simplex.Optimal (v, _) -> check_float ~eps:1e-8 "objective" 2. v
  | _ -> Alcotest.fail "expected optimal"

(* ------------------------------------------------------------------ *)
(* Qp                                                                  *)
(* ------------------------------------------------------------------ *)

let test_qp_unconstrained () =
  (* min (x−3)² + (y−4)² with x,y ≥ 0: optimum at targets. *)
  match
    Qp.least_squares_targets ~weights:[| 1.; 1. |] ~targets:[| 3.; 4. |]
      ~a_ub:[||] ~b_ub:[||] ~a_eq:[||] ~b_eq:[||] ()
  with
  | Some r ->
      check_float ~eps:1e-7 "x" 3. r.Qp.x.(0);
      check_float ~eps:1e-7 "y" 4. r.Qp.x.(1);
      check_float ~eps:1e-7 "objective" 0. r.Qp.objective
  | None -> Alcotest.fail "expected feasible"

let test_qp_equality () =
  (* min (x−1)² + (y−1)² s.t. x + y = 1 → (1/2, 1/2). *)
  match
    Qp.least_squares_targets ~weights:[| 1.; 1. |] ~targets:[| 1.; 1. |]
      ~a_ub:[||] ~b_ub:[||] ~a_eq:[| [| 1.; 1. |] |] ~b_eq:[| 1. |] ()
  with
  | Some r ->
      check_float ~eps:1e-7 "x" 0.5 r.Qp.x.(0);
      check_float ~eps:1e-7 "y" 0.5 r.Qp.x.(1)
  | None -> Alcotest.fail "expected feasible"

let test_qp_active_inequality () =
  (* min (x−2)² s.t. x ≤ 1 → x = 1. *)
  match
    Qp.least_squares_targets ~weights:[| 1. |] ~targets:[| 2. |]
      ~a_ub:[| [| 1. |] |] ~b_ub:[| 1. |] ~a_eq:[||] ~b_eq:[||] ()
  with
  | Some r -> check_float ~eps:1e-7 "clamped" 1. r.Qp.x.(0)
  | None -> Alcotest.fail "expected feasible"

let test_qp_nonneg_bound () =
  (* min (x+1)²: unconstrained optimum −1 is cut by x ≥ 0. *)
  match
    Qp.least_squares_targets ~weights:[| 1. |] ~targets:[| -1. |] ~a_ub:[||]
      ~b_ub:[||] ~a_eq:[||] ~b_eq:[||] ()
  with
  | Some r -> check_float ~eps:1e-7 "clamped at 0" 0. r.Qp.x.(0)
  | None -> Alcotest.fail "expected feasible"

let test_qp_infeasible () =
  match
    Qp.least_squares_targets ~weights:[| 1. |] ~targets:[| 0. |] ~a_ub:[||]
      ~b_ub:[||] ~a_eq:[| [| 1. |] |] ~b_eq:[| -2. |] ()
  with
  | None -> ()
  | Some _ -> Alcotest.fail "expected infeasible (x ≥ 0 vs x = −2)"

let test_qp_or_u_construction () =
  (* The OR^(U) batch QP at p1 = p2 = p < 1/2 (see Section 4.2): variables
     x1 = est(S={1},1), y1 = est(S={1,2},(1,0)), x2, y2 — the optimum is
     x = 1/(2p(1−p)), y = 1/(2p²). *)
  let p = 0.3 in
  let pq = p *. (1. -. p) and pp = p *. p in
  let a_eq =
    [| [| pq; pp; 0.; 0. |]; [| 0.; 0.; pq; pp |] |]
  in
  let b_eq = [| 1.; 1. |] in
  (* nonnegativity-preservation for (1,1): pq·x1 + pq·x2 ≤ 1. *)
  let a_ub = [| [| pq; 0.; pq; 0. |] |] in
  let b_ub = [| 1. |] in
  match
    Qp.least_squares_targets
      ~weights:[| pq; pp; pq; pp |]
      ~targets:[| 1.; 1.; 1.; 1. |] ~a_ub ~b_ub ~a_eq ~b_eq ()
  with
  | Some r ->
      check_float ~eps:1e-6 "x1" (1. /. (2. *. pq)) r.Qp.x.(0);
      check_float ~eps:1e-6 "y1" (1. /. (2. *. pp)) r.Qp.x.(1);
      check_float ~eps:1e-6 "x2" (1. /. (2. *. pq)) r.Qp.x.(2)
  | None -> Alcotest.fail "expected feasible"

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let prop_float_range =
  qtest "prng float stays in [0,1)" QCheck.small_int (fun s ->
      let r = Prng.create ~seed:s () in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Prng.float r in
        if x < 0. || x >= 1. then ok := false
      done;
      !ok)

let prop_acc_var_nonneg =
  qtest "Welford variance is nonnegative"
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.))
    (fun xs ->
      let a = Stats.Acc.create () in
      List.iter (Stats.Acc.add a) xs;
      xs = [] || Stats.Acc.var a >= -1e-12)

let prop_quantile_bounds =
  qtest "quantile within min..max"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 30) (float_bound_inclusive 100.))
        (float_bound_inclusive 1.))
    (fun (xs, q) ->
      match xs with
      | [] -> true
      | _ ->
          let a = Array.of_list xs in
          let v = Stats.quantile a q in
          let mn = Array.fold_left Float.min infinity a in
          let mx = Array.fold_left Float.max neg_infinity a in
          v >= mn -. 1e-9 && v <= mx +. 1e-9)

let prop_pow_int =
  qtest "pow_int agrees with **"
    QCheck.(pair (float_bound_inclusive 3.) (int_bound 20))
    (fun (x, n) ->
      let x = 0.1 +. abs_float x in
      Special.float_equal ~eps:1e-9 (Special.pow_int x n) (x ** float_of_int n))

let prop_solve_roundtrip =
  qtest ~count:100 "linalg solve round-trips" QCheck.small_int (fun seed ->
      let r = Prng.create ~seed () in
      let n = 1 + Prng.int r 5 in
      (* Diagonally dominant → well conditioned. *)
      let a =
        Array.init n (fun i ->
            Array.init n (fun j ->
                if i = j then 10. +. Prng.float r else Prng.float r))
      in
      let b = Array.init n (fun _ -> Prng.float r *. 10.) in
      let x = Linalg.solve a b in
      let back = Linalg.mat_vec a x in
      Array.for_all2 (fun u v -> Special.float_equal ~eps:1e-8 u v) back b)

let prop_simplex_constructed_feasible =
  qtest ~count:100 "simplex finds constructed-feasible systems feasible"
    QCheck.small_int
    (fun seed ->
      let r = Prng.create ~seed () in
      let n = 2 + Prng.int r 4 in
      let m = 1 + Prng.int r 3 in
      (* Pick x0 ≥ 0, random A, set b = A x0 ⇒ feasible by construction. *)
      let x0 = Array.init n (fun _ -> Prng.float r *. 5.) in
      let a =
        Array.init m (fun _ -> Array.init n (fun _ -> (Prng.float r *. 4.) -. 2.))
      in
      let b = Array.map (fun row -> Linalg.vec_dot row x0) a in
      Simplex.solve_eq_nonneg a b <> None)

let test_qp_duplicate_constraints () =
  (* Regression: duplicate inequality rows used to cycle the active-set
     loop (symmetric designer batches produce many exact duplicates). *)
  let row = [| 1.; 1. |] in
  match
    Qp.least_squares_targets ~weights:[| 1.; 1. |] ~targets:[| 2.; 2. |]
      ~a_ub:[| row; row; row; Array.copy row |]
      ~b_ub:[| 1.; 1.; 1.; 1. |] ~a_eq:[||] ~b_eq:[||] ()
  with
  | Some r ->
      check_float ~eps:1e-6 "x" 0.5 r.Qp.x.(0);
      check_float ~eps:1e-6 "y" 0.5 r.Qp.x.(1)
  | None -> Alcotest.fail "expected feasible"

let test_qp_redundant_equalities () =
  (* Equality + an identical inequality: must not produce a singular
     KKT failure. *)
  match
    Qp.least_squares_targets ~weights:[| 1. |] ~targets:[| 3. |]
      ~a_ub:[| [| 1. |] |] ~b_ub:[| 2. |] ~a_eq:[| [| 1. |] |] ~b_eq:[| 2. |] ()
  with
  | Some r -> check_float ~eps:1e-6 "pinned" 2. r.Qp.x.(0)
  | None -> Alcotest.fail "expected feasible"

let prop_qp_respects_constraints =
  qtest ~count:100 "QP solution satisfies its constraints" QCheck.small_int
    (fun seed ->
      let r = Prng.create ~seed () in
      let n = 2 + Prng.int r 3 in
      let targets = Array.init n (fun _ -> (Prng.float r *. 4.) -. 1.) in
      let a_eq = [| Array.make n 1. |] in
      let b_eq = [| 1. +. Prng.float r |] in
      match
        Qp.least_squares_targets ~weights:(Array.make n 1.) ~targets
          ~a_ub:[||] ~b_ub:[||] ~a_eq ~b_eq ()
      with
      | None -> false
      | Some { Qp.x; _ } ->
          Special.float_equal ~eps:1e-6 (Array.fold_left ( +. ) 0. x) b_eq.(0)
          && Array.for_all (fun v -> v >= -1e-7) x)

(* ------------------------------------------------------------------ *)
(* Acc.merge (parallel Welford)                                        *)
(* ------------------------------------------------------------------ *)

let rel_close ?(tol = 1e-9) a b =
  (Float.is_nan a && Float.is_nan b)
  || abs_float (a -. b) <= tol *. (1. +. Float.max (abs_float a) (abs_float b))

let prop_acc_merge_of_splits =
  qtest ~count:500 "Acc.merge of splits = sequential accumulator"
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 60) (float_range (-1000.) 1000.))
        (list_of_size Gen.(0 -- 60) (float_range (-1000.) 1000.)))
    (fun (xs, ys) ->
      let seq = Stats.Acc.create () in
      List.iter (Stats.Acc.add seq) (xs @ ys);
      let a = Stats.Acc.create () and b = Stats.Acc.create () in
      List.iter (Stats.Acc.add a) xs;
      List.iter (Stats.Acc.add b) ys;
      let m = Stats.Acc.merge a b in
      Stats.Acc.count m = Stats.Acc.count seq
      && rel_close (Stats.Acc.mean m) (Stats.Acc.mean seq)
      && rel_close (Stats.Acc.var m) (Stats.Acc.var seq)
      && (xs = [] && ys = []
         || Stats.Acc.min m = Stats.Acc.min seq
            && Stats.Acc.max m = Stats.Acc.max seq))

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let with_pool domains f =
  let p = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let pool_sizes = [ 1; 2; 4 ]

let test_pool_parallel_map () =
  let input = Array.init 137 (fun i -> i) in
  let f i = float_of_int (i * i) +. 0.5 in
  let expected = Array.map f input in
  List.iter
    (fun d ->
      with_pool d (fun p ->
          Alcotest.(check (array (float 0.)))
            (Printf.sprintf "map, %d domains" d)
            expected
            (Pool.parallel_map p f input)))
    pool_sizes

let test_pool_for_reduce_bit_identical () =
  (* Values chosen so float addition is order sensitive; the pool must
     reduce left-to-right regardless of its size. *)
  let n = 1000 in
  let body i = 1. /. float_of_int (i + 1) in
  let seq = ref 0. in
  for i = 0 to n - 1 do
    seq := !seq +. body i
  done;
  List.iter
    (fun d ->
      with_pool d (fun p ->
          let s =
            Pool.parallel_for_reduce p ~n ~body ~init:0. ~combine:( +. )
          in
          if s <> !seq then
            Alcotest.failf "%d domains: %.17g <> %.17g" d s !seq))
    pool_sizes

let test_pool_map_streams_deterministic () =
  let draw rng _i =
    let acc = ref 0. in
    for _ = 1 to 100 do
      acc := !acc +. Prng.float rng
    done;
    !acc
  in
  let reference =
    Array.init 17 (fun i -> draw (Prng.substream ~master:42 i) i)
  in
  List.iter
    (fun d ->
      with_pool d (fun p ->
          let got = Pool.map_streams p ~master:42 ~n:17 draw in
          if got <> reference then
            Alcotest.failf "map_streams differs with %d domains" d))
    pool_sizes

let test_pool_nested () =
  with_pool 3 (fun p ->
      let outer =
        Pool.parallel_init p ~n:4 (fun i ->
            Array.fold_left ( + ) 0
              (Pool.parallel_init p ~n:5 (fun j -> (10 * i) + j)))
      in
      Alcotest.(check (array int))
        "nested totals"
        (Array.init 4 (fun i -> (50 * i) + 10))
        outer)

exception Boom

let test_pool_exception () =
  with_pool 2 (fun p ->
      match
        Pool.parallel_init p ~n:8 (fun i -> if i = 5 then raise Boom else i)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom -> ();
      (* the pool stays usable after a failed run *)
      Alcotest.(check (array int))
        "pool survives" (Array.init 6 Fun.id)
        (Pool.parallel_init p ~n:6 Fun.id))

let test_pool_shutdown_inline () =
  let p = Pool.create ~domains:4 () in
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  Alcotest.(check (array int))
    "inline after shutdown" (Array.init 9 Fun.id)
    (Pool.parallel_init p ~n:9 Fun.id)

(* ------------------------------------------------------------------ *)
(* Memo + chunk granularity                                            *)
(* ------------------------------------------------------------------ *)

let int_memo ~capacity name =
  Memo.create ~capacity ~name ~hash:Hashtbl.hash ~equal:Int.equal ()

let test_memo_hit_miss () =
  let m = int_memo ~capacity:4 "test.hit_miss" in
  let computed = ref 0 in
  let f k =
    Memo.find_or_add m k (fun () ->
        incr computed;
        k * k)
  in
  Alcotest.(check int) "first" 9 (f 3);
  Alcotest.(check int) "second" 9 (f 3);
  Alcotest.(check int) "computed once" 1 !computed;
  let s = Memo.stats m in
  Alcotest.(check int) "hits" 1 s.Memo.hits;
  Alcotest.(check int) "misses" 1 s.Memo.misses;
  Alcotest.(check int) "entries" 1 s.Memo.entries;
  Memo.clear m;
  Alcotest.(check int) "cleared" 0 (Memo.stats m).Memo.entries;
  Alcotest.(check int) "recompute after clear" 9 (f 3);
  Alcotest.(check int) "computed again" 2 !computed

let test_memo_bounded_second_chance () =
  let m = int_memo ~capacity:4 "test.clock" in
  let f k = Memo.find_or_add m k (fun () -> k * 10) in
  List.iter (fun k -> ignore (f k)) [ 1; 2; 3; 4 ];
  (* Touch 1: its reference bit grants a second chance at the hand. *)
  ignore (f 1);
  ignore (f 5);
  let s = Memo.stats m in
  Alcotest.(check int) "entries stay bounded" 4 s.Memo.entries;
  Alcotest.(check int) "one eviction" 1 s.Memo.evictions;
  Alcotest.(check (option int)) "recently-hit key survives" (Some 10)
    (Memo.find_opt m 1);
  Alcotest.(check (option int)) "cold key evicted" None (Memo.find_opt m 2);
  Alcotest.(check (option int)) "newcomer resident" (Some 50)
    (Memo.find_opt m 5)

let test_memo_cross_domain () =
  let m = int_memo ~capacity:64 "test.cross_domain" in
  with_pool 4 (fun p ->
      let out =
        Pool.parallel_init p ~n:200 (fun i ->
            Memo.find_or_add m (i mod 10) (fun () -> (i mod 10) * 7))
      in
      Array.iteri
        (fun i v -> Alcotest.(check int) "shared value" (i mod 10 * 7) v)
        out);
  let s = Memo.stats m in
  Alcotest.(check int) "entries = distinct keys" 10 s.Memo.entries;
  Alcotest.(check int) "every lookup accounted" 200 (s.Memo.hits + s.Memo.misses);
  (* Lost compute races are benign but each key misses at least once. *)
  Alcotest.(check bool) "misses cover the key set" true (s.Memo.misses >= 10)

(* clear_all is the "fresh process" reset used between benchmark phases:
   it must drop entries AND zero the stats counters atomically. The old
   clear_all dropped entries only, so hit/miss history leaked across
   phases. *)
let test_memo_purge_resets_stats () =
  let m = int_memo ~capacity:4 "test.purge" in
  let f k = Memo.find_or_add m k (fun () -> k * 2) in
  List.iter (fun k -> ignore (f k)) [ 1; 2; 3; 4; 5; 1; 2 ];
  let s = Memo.stats m in
  Alcotest.(check bool) "misses accrued" true (s.Memo.misses >= 5);
  Alcotest.(check bool) "evictions accrued" true (s.Memo.evictions >= 1);
  Memo.clear_all ();
  let s = Memo.stats m in
  Alcotest.(check int) "entries zero" 0 s.Memo.entries;
  Alcotest.(check int) "hits zero" 0 s.Memo.hits;
  Alcotest.(check int) "misses zero" 0 s.Memo.misses;
  Alcotest.(check int) "evictions zero" 0 s.Memo.evictions;
  Alcotest.(check int) "bytes zero" 0 s.Memo.bytes_estimate;
  (* The cache stays usable and accounting restarts from zero. *)
  Alcotest.(check int) "recompute" 6 (f 3);
  Alcotest.(check int) "one miss after purge" 1 (Memo.stats m).Memo.misses

let test_memo_validate () =
  let m = int_memo ~capacity:8 "test.validate" in
  let f k = Memo.find_or_add m k (fun () -> k * 3) in
  let check_ok ctx =
    match Memo.validate m with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "%s: bookkeeping drift: %s" ctx msg
  in
  check_ok "empty";
  List.iter (fun k -> ignore (f k)) [ 1; 2; 3; 4 ];
  check_ok "after inserts";
  (* Push past capacity so CLOCK evictions exercise the byte accounting. *)
  List.iter (fun k -> ignore (f k)) [ 5; 6; 7; 8; 9; 10; 11; 12; 13 ];
  Alcotest.(check bool)
    "evictions happened" true ((Memo.stats m).Memo.evictions > 0);
  check_ok "after evictions";
  Memo.purge m;
  check_ok "after purge";
  ignore (f 42);
  check_ok "after reuse"

let test_pool_grain_bit_identical () =
  let n = 512 in
  let input = Array.init n (fun i -> 1. /. float_of_int (i + 1)) in
  let f x = (x *. 3.7) +. sqrt x in
  let expected = Array.map f input in
  let seq_sum = Array.fold_left (fun a x -> a +. f x) 0. input in
  List.iter
    (fun d ->
      with_pool d (fun p ->
          List.iter
            (fun g ->
              Alcotest.(check (array (float 0.)))
                (Printf.sprintf "map, %d domains, grain %d" d g)
                expected
                (Pool.parallel_map ~grain:g p f input);
              let s =
                Pool.parallel_for_reduce ~grain:g p ~n
                  ~body:(fun i -> f input.(i))
                  ~init:0. ~combine:( +. )
              in
              if s <> seq_sum then
                Alcotest.failf "reduce differs: %d domains, grain %d" d g)
            [ 1; 3; 64; n; 100_000 ]))
    pool_sizes

let test_pool_grain_invalid () =
  with_pool 2 (fun p ->
      Alcotest.check_raises "grain 0"
        (Invalid_argument "Pool: grain must be positive") (fun () ->
          ignore (Pool.parallel_map ~grain:0 p Fun.id [| 1 |])))

(* Every chunk layout must partition [0, n) exactly: contiguous, nonempty
   chunks covering the range once. The boundary cases (n = 0, n smaller
   than the domain count, grain larger than n) used to be able to emit
   empty or out-of-range chunks. *)
let check_chunk_partition ~ctx ~n ranges =
  let rec go prev = function
    | [] ->
        Alcotest.(check int) (ctx ^ ": chunks end at n") n prev
    | (lo, hi) :: rest ->
        Alcotest.(check int) (ctx ^ ": contiguous") prev lo;
        if hi <= lo then
          Alcotest.failf "%s: empty chunk [%d, %d)" ctx lo hi;
        go hi rest
  in
  go 0 ranges

let test_pool_chunks_boundaries () =
  with_pool 4 (fun p ->
      (* n = 0: no work, no chunks — with or without an explicit grain. *)
      Alcotest.(check (list (pair int int))) "n=0" [] (Pool.chunks p 0);
      Alcotest.(check (list (pair int int)))
        "n=0, grain" [] (Pool.chunks ~grain:16 p 0);
      (* n = 1 and n < domains: every element lands in exactly one chunk. *)
      check_chunk_partition ~ctx:"n=1" ~n:1 (Pool.chunks p 1);
      check_chunk_partition ~ctx:"n<domains" ~n:3 (Pool.chunks p 3);
      (* grain > n collapses to a single chunk covering [0, n). *)
      Alcotest.(check (list (pair int int)))
        "grain>n" [ (0, 5) ] (Pool.chunks ~grain:100 p 5);
      (* grain = n is also a single chunk. *)
      Alcotest.(check (list (pair int int)))
        "grain=n" [ (0, 7) ] (Pool.chunks ~grain:7 p 7);
      (* General layouts keep the partition invariant. *)
      List.iter
        (fun (n, grain) ->
          let ranges =
            match grain with
            | None -> Pool.chunks p n
            | Some g -> Pool.chunks ~grain:g p n
          in
          check_chunk_partition
            ~ctx:(Printf.sprintf "n=%d grain=%s" n
                    (match grain with None -> "-" | Some g -> string_of_int g))
            ~n ranges)
        [ (1, None); (4, None); (5, Some 2); (17, Some 3); (64, Some 64);
          (65, Some 64); (1000, None); (1000, Some 1) ];
      (* Invalid inputs are rejected up front, not mangled into chunks. *)
      Alcotest.check_raises "n < 0" (Invalid_argument "Pool: negative length")
        (fun () -> ignore (Pool.chunks p (-1)));
      Alcotest.check_raises "grain 0"
        (Invalid_argument "Pool: grain must be positive") (fun () ->
          ignore (Pool.chunks ~grain:0 p 8)))

let test_prng_substream_independent_of_order () =
  let a = Prng.substream ~master:7 3 in
  (* consuming other substreams first must not affect substream 3 *)
  ignore (Prng.bits64 (Prng.substream ~master:7 0));
  ignore (Prng.bits64 (Prng.substream ~master:7 1));
  let b = Prng.substream ~master:7 3 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "same substream" (Prng.bits64 a) (Prng.bits64 b)
  done;
  Alcotest.(check bool)
    "distinct substreams differ" true
    (Prng.bits64 (Prng.substream ~master:7 4)
    <> Prng.bits64 (Prng.substream ~master:7 5))

(* ------------------------------------------------------------------ *)
(* Degenerate solver inputs: structured failures, never exceptions     *)
(* ------------------------------------------------------------------ *)

let reason_of = function
  | Ok _ -> Alcotest.fail "expected a structured failure"
  | Error f -> f.Robust.reason

let test_qp_r_infeasible () =
  (* x ≥ 0 vs x = −2: the phase-1 LP must report Infeasible. *)
  match
    Qp.minimize_r ~q:[| 2. |] ~c:[| 0. |] ~a_ub:[||] ~b_ub:[||]
      ~a_eq:[| [| 1. |] |] ~b_eq:[| -2. |] ()
  with
  | Error { Robust.reason = Robust.Infeasible; solver = Robust.Qp_active_set; _ }
    ->
      ()
  | Error f -> Alcotest.failf "wrong failure: %s" (Robust.to_string f)
  | Ok _ -> Alcotest.fail "expected infeasible"

let test_qp_r_contradictory_eq () =
  (* Rank-deficient *and* inconsistent: x = 1 and x = 2. *)
  match
    Qp.minimize_r ~q:[| 2. |] ~c:[| 0. |] ~a_ub:[||] ~b_ub:[||]
      ~a_eq:[| [| 1. |]; [| 1. |] |]
      ~b_eq:[| 1.; 2. |] ()
  with
  | Error { Robust.reason = Robust.Infeasible; _ } -> ()
  | Error f -> Alcotest.failf "wrong failure: %s" (Robust.to_string f)
  | Ok _ -> Alcotest.fail "expected infeasible"

let test_qp_r_redundant_eq_ok () =
  (* Rank-deficient but consistent duplicate rows must still solve. *)
  match
    Qp.minimize_r ~q:[| 2.; 2. |] ~c:[| 0.; 0. |] ~a_ub:[||] ~b_ub:[||]
      ~a_eq:[| [| 1.; 1. |]; [| 1.; 1. |] |]
      ~b_eq:[| 1.; 1. |] ()
  with
  | Ok r -> check_float "split evenly" 0.5 r.Qp.x.(0)
  | Error f -> Alcotest.failf "unexpected failure: %s" (Robust.to_string f)

let test_qp_r_invalid_inputs () =
  (match
     reason_of
       (Qp.minimize_r ~q:[| 0. |] ~c:[| 0. |] ~a_ub:[||] ~b_ub:[||] ~a_eq:[||]
          ~b_eq:[||] ())
   with
  | Robust.Invalid_input _ -> ()
  | r -> Alcotest.failf "q = 0: wrong reason %s" (Robust.reason_label r));
  (match
     reason_of
       (Qp.minimize_r ~q:[| 2. |] ~c:[| nan |] ~a_ub:[||] ~b_ub:[||] ~a_eq:[||]
          ~b_eq:[||] ())
   with
  | Robust.Non_finite _ -> ()
  | r -> Alcotest.failf "nan c: wrong reason %s" (Robust.reason_label r));
  match
    reason_of
      (Qp.minimize_r ~q:[| 2. |] ~c:[| 0. |] ~a_ub:[| [| infinity |] |]
         ~b_ub:[| 1. |] ~a_eq:[||] ~b_eq:[||] ())
  with
  | Robust.Non_finite _ -> ()
  | r -> Alcotest.failf "inf a_ub: wrong reason %s" (Robust.reason_label r)

let test_simplex_r_invalid_inputs () =
  match
    reason_of
      (Simplex.maximize_r ~c:[| nan |] ~a_ub:[| [| 1. |] |] ~b_ub:[| 1. |]
         ~a_eq:[||] ~b_eq:[||] ())
  with
  | Robust.Non_finite _ -> ()
  | r -> Alcotest.failf "nan c: wrong reason %s" (Robust.reason_label r)

let test_simpson_r_zero_width () =
  match reason_of (Integrate.simpson_r (fun x -> x) 1. 1.) with
  | Robust.Invalid_input _ -> ()
  | r -> Alcotest.failf "wrong reason %s" (Robust.reason_label r)

let test_simpson_r_non_finite () =
  (match reason_of (Integrate.simpson_r (fun _ -> nan) 0. 1.) with
  | Robust.Non_finite _ -> ()
  | r -> Alcotest.failf "nan integrand: wrong reason %s" (Robust.reason_label r));
  match reason_of (Integrate.simpson_r (fun x -> x) 0. infinity) with
  | Robust.Non_finite _ -> ()
  | r -> Alcotest.failf "inf endpoint: wrong reason %s" (Robust.reason_label r)

let test_simpson_r_smooth_ok () =
  match Integrate.simpson_r sin 0. Float.pi with
  | Ok v -> check_float ~eps:1e-9 "∫ sin over [0,π]" 2. v
  | Error f -> Alcotest.failf "unexpected failure: %s" (Robust.to_string f)

let test_bisect_r_degenerate () =
  (match reason_of (Special.solve_bisect_r (fun x -> (x *. x) +. 1.) 0. 1.) with
  | Robust.Invalid_input _ -> ()
  | r -> Alcotest.failf "no sign change: wrong reason %s" (Robust.reason_label r));
  (match reason_of (Special.solve_bisect_r (fun _ -> nan) 0. 1.) with
  | Robust.Non_finite _ -> ()
  | r -> Alcotest.failf "nan f: wrong reason %s" (Robust.reason_label r));
  match Special.solve_bisect_r (fun x -> (x *. x) -. 2.) 0. 2. with
  | Ok root -> check_float ~eps:1e-10 "sqrt 2" (sqrt 2.) root
  | Error f -> Alcotest.failf "unexpected failure: %s" (Robust.to_string f)

let () =
  Alcotest.run "numerics"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "float_open range" `Quick test_prng_float_open;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_prng_int_uniformity;
          Alcotest.test_case "bool balance" `Quick test_prng_bool_balance;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "int rejects 0" `Quick test_prng_int_invalid;
          Alcotest.test_case "xoshiro jump" `Quick test_xoshiro_jump_changes_state;
          Alcotest.test_case "splitmix injective" `Quick test_splitmix_mix_distinct;
          prop_float_range;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "salt sensitivity" `Quick test_hash_salt_sensitivity;
          Alcotest.test_case "key sensitivity" `Quick test_hash_key_sensitivity;
          Alcotest.test_case "string hashing" `Quick test_hash_string;
          Alcotest.test_case "to_unit range" `Quick test_to_unit_range;
          Alcotest.test_case "uniformity" `Quick test_uniform_int_uniformity;
          Alcotest.test_case "instance salts" `Quick test_salt_of_instance_distinct;
          Alcotest.test_case "combine order" `Quick test_combine_noncommutative;
        ] );
      ( "stats",
        [
          Alcotest.test_case "acc basic" `Quick test_acc_basic;
          Alcotest.test_case "acc empty" `Quick test_acc_empty;
          Alcotest.test_case "acc single" `Quick test_acc_single;
          Alcotest.test_case "acc merge" `Quick test_acc_merge;
          Alcotest.test_case "acc merge empty shard" `Quick
            test_acc_merge_empty;
          Alcotest.test_case "normal_ci n=0 guard" `Quick test_normal_ci_guard;
          prop_acc_merge_of_splits;
          Alcotest.test_case "correlation" `Quick test_cov_correlation;
          Alcotest.test_case "covariance value" `Quick test_cov_value;
          Alcotest.test_case "batch stats" `Quick test_batch_stats;
          Alcotest.test_case "erf" `Quick test_erf;
          Alcotest.test_case "z_of_level" `Quick test_z_of_level;
          Alcotest.test_case "normal ci" `Quick test_normal_ci;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "chi square" `Quick test_chi_square;
          prop_acc_var_nonneg;
          prop_quantile_bounds;
        ] );
      ( "pool",
        [
          Alcotest.test_case "parallel_map = Array.map" `Quick
            test_pool_parallel_map;
          Alcotest.test_case "for_reduce bit-identical" `Quick
            test_pool_for_reduce_bit_identical;
          Alcotest.test_case "map_streams scheduling-free" `Quick
            test_pool_map_streams_deterministic;
          Alcotest.test_case "nested parallelism" `Quick test_pool_nested;
          Alcotest.test_case "task exception propagates" `Quick
            test_pool_exception;
          Alcotest.test_case "shutdown runs inline" `Quick
            test_pool_shutdown_inline;
          Alcotest.test_case "substream order-independent" `Quick
            test_prng_substream_independent_of_order;
          Alcotest.test_case "grain keeps results bit-identical" `Quick
            test_pool_grain_bit_identical;
          Alcotest.test_case "grain must be positive" `Quick
            test_pool_grain_invalid;
          Alcotest.test_case "chunk layout boundaries" `Quick
            test_pool_chunks_boundaries;
        ] );
      ( "memo",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_memo_hit_miss;
          Alcotest.test_case "bounded CLOCK eviction" `Quick
            test_memo_bounded_second_chance;
          Alcotest.test_case "cross-domain sharing" `Quick
            test_memo_cross_domain;
          Alcotest.test_case "clear_all purges stats" `Quick
            test_memo_purge_resets_stats;
          Alcotest.test_case "byte/bucket audit" `Quick test_memo_validate;
        ] );
      ( "special",
        [
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "binomial_int" `Quick test_binomial_int;
          Alcotest.test_case "pow_int" `Quick test_pow_int;
          Alcotest.test_case "log_binomial" `Quick test_log_binomial;
          Alcotest.test_case "falling" `Quick test_falling;
          Alcotest.test_case "harmonic" `Quick test_harmonic;
          Alcotest.test_case "bisection" `Quick test_solve_bisect;
          Alcotest.test_case "bisection guard" `Quick test_solve_bisect_no_sign_change;
          Alcotest.test_case "float_equal" `Quick test_float_equal;
          prop_pow_int;
        ] );
      ( "integrate",
        [
          Alcotest.test_case "simpson polynomials" `Quick test_simpson_poly;
          Alcotest.test_case "piecewise kink" `Quick test_simpson_pieces_kink;
          Alcotest.test_case "trapezoid" `Quick test_trapezoid;
          Alcotest.test_case "GL exactness" `Quick test_gauss_legendre_exactness;
          Alcotest.test_case "GL analytic" `Quick test_gauss_legendre_analytic;
          Alcotest.test_case "GL vs simpson" `Quick test_gl_pieces_matches_simpson;
          Alcotest.test_case "2d expectation" `Quick test_expectation_2d;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "solve 2x2" `Quick test_solve_2x2;
          Alcotest.test_case "solve 3x3" `Quick test_solve_3x3;
          Alcotest.test_case "singular" `Quick test_solve_singular;
          Alcotest.test_case "matrix ops" `Quick test_mat_ops;
          Alcotest.test_case "least squares" `Quick test_lstsq;
          Alcotest.test_case "rank" `Quick test_rank;
          prop_solve_roundtrip;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "basic LP" `Quick test_simplex_basic;
          Alcotest.test_case "equality LP" `Quick test_simplex_equality;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "eq nonneg" `Quick test_solve_eq_nonneg;
          Alcotest.test_case "degenerate rows" `Quick test_simplex_degenerate;
          prop_simplex_constructed_feasible;
        ] );
      ( "qp",
        [
          Alcotest.test_case "unconstrained" `Quick test_qp_unconstrained;
          Alcotest.test_case "equality projection" `Quick test_qp_equality;
          Alcotest.test_case "active inequality" `Quick test_qp_active_inequality;
          Alcotest.test_case "nonneg bound" `Quick test_qp_nonneg_bound;
          Alcotest.test_case "infeasible" `Quick test_qp_infeasible;
          Alcotest.test_case "OR^(U) construction" `Quick test_qp_or_u_construction;
          Alcotest.test_case "duplicate rows (regression)" `Quick test_qp_duplicate_constraints;
          Alcotest.test_case "redundant equality" `Quick test_qp_redundant_equalities;
          prop_qp_respects_constraints;
        ] );
      ( "degenerate inputs",
        [
          Alcotest.test_case "qp_r infeasible" `Quick test_qp_r_infeasible;
          Alcotest.test_case "qp_r contradictory eq" `Quick
            test_qp_r_contradictory_eq;
          Alcotest.test_case "qp_r redundant eq ok" `Quick
            test_qp_r_redundant_eq_ok;
          Alcotest.test_case "qp_r invalid inputs" `Quick
            test_qp_r_invalid_inputs;
          Alcotest.test_case "simplex_r invalid inputs" `Quick
            test_simplex_r_invalid_inputs;
          Alcotest.test_case "simpson_r zero width" `Quick
            test_simpson_r_zero_width;
          Alcotest.test_case "simpson_r non-finite" `Quick
            test_simpson_r_non_finite;
          Alcotest.test_case "simpson_r smooth" `Quick test_simpson_r_smooth_ok;
          Alcotest.test_case "bisect_r degenerate" `Quick
            test_bisect_r_degenerate;
        ] );
    ]
