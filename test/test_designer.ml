(* Tests for the generic estimator-derivation engine (Algorithms 1 and 2)
   and the LP existence oracle (Theorem 6.1 certificates). *)

open Estcore
module D = Designer

let check_float ?(eps = 1e-9) msg expected actual =
  if not (Numerics.Special.float_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let vmax (v : float array) = Array.fold_left Float.max 0. v

(* ------------------------------------------------------------------ *)
(* Algorithm 1                                                         *)
(* ------------------------------------------------------------------ *)

let test_order_derives_or_l () =
  List.iter
    (fun (p1, p2) ->
      let probs = [| p1; p2 |] in
      let problem =
        D.Problems.oblivious ~probs ~grid:[ 0.; 1. ] ~f:vmax ()
        |> D.Problems.sort_data D.Problems.order_l
      in
      match D.solve_order problem with
      | Error e -> Alcotest.failf "unexpected failure: %s" e
      | Ok est ->
          Alcotest.(check bool) "unbiased" true (D.is_unbiased problem est);
          Alcotest.(check bool) "nonnegative" true (D.min_estimate est >= -1e-9);
          List.iter
            (fun (k, derived) ->
              let o = { Sampling.Outcome.Oblivious.probs; values = k } in
              check_float ~eps:1e-7 "matches closed form" (Max_oblivious.l_r2 o)
                derived)
            (D.bindings est))
    [ (0.5, 0.5); (0.3, 0.6); (0.2, 0.9) ]

let test_order_derives_max_l_grid () =
  (* Multi-valued grid, general (p1,p2): must agree with eq. (12). *)
  let probs = [| 0.35; 0.65 |] in
  let problem =
    D.Problems.oblivious ~probs ~grid:[ 0.; 1.; 2.; 5. ] ~f:vmax ()
    |> D.Problems.sort_data D.Problems.order_l
  in
  match D.solve_order problem with
  | Error e -> Alcotest.failf "failure: %s" e
  | Ok est ->
      Alcotest.(check bool) "unbiased" true (D.is_unbiased problem est);
      List.iter
        (fun (k, derived) ->
          let o = { Sampling.Outcome.Oblivious.probs; values = k } in
          check_float ~eps:1e-7 "eq (12)" (Max_oblivious.l_r2 o) derived)
        (D.bindings est)

let test_order_derives_max_l_r3_uniform () =
  (* r = 3 uniform p on a binary grid: must agree with the Theorem 4.2
     coefficients. *)
  let p = 0.3 in
  let probs = Array.make 3 p in
  let c = Max_oblivious.Coeffs.compute ~r:3 ~p in
  let problem =
    D.Problems.oblivious ~probs ~grid:[ 0.; 1. ] ~f:vmax ()
    |> D.Problems.sort_data D.Problems.order_l
  in
  match D.solve_order problem with
  | Error e -> Alcotest.failf "failure: %s" e
  | Ok est ->
      Alcotest.(check bool) "unbiased" true (D.is_unbiased problem est);
      List.iter
        (fun (k, derived) ->
          let o = { Sampling.Outcome.Oblivious.probs; values = k } in
          check_float ~eps:1e-7 "Thm 4.2 agreement"
            (Max_oblivious.l_uniform c o)
            derived)
        (D.bindings est)

let test_order_weighted_binary_or () =
  (* Algorithm 1 on the weighted known-seeds model reproduces OR^(L). *)
  let p1 = 0.3 and p2 = 0.45 in
  let or2 v = if vmax v > 0.5 then 1. else 0. in
  let problem =
    D.Problems.binary_known_seeds ~probs:[| p1; p2 |] ~f:or2 ()
    |> D.Problems.sort_data D.Problems.order_l
  in
  match D.solve_order problem with
  | Error e -> Alcotest.failf "failure: %s" e
  | Ok est ->
      Alcotest.(check bool) "unbiased" true (D.is_unbiased problem est);
      List.iter
        (fun ((below, sampled), derived) ->
          (* Reconstruct the Binary outcome and compare with OR^(L). *)
          let v = Array.map (fun s -> if s then 1 else 0) sampled in
          let o =
            Sampling.Outcome.Binary.of_below ~probs:[| p1; p2 |] ~below v
          in
          check_float ~eps:1e-7 "matches Or_weighted.l" (Or_weighted.l o)
            derived)
        (D.bindings est)

let test_order_failure_xor_unknown_seeds () =
  (* No unbiased nonnegative estimator exists for XOR with unknown seeds;
     Algorithm 1 must either fail or produce a biased/negative table. *)
  let xor v = if (v.(0) > 0.5) <> (v.(1) > 0.5) then 1. else 0. in
  let problem =
    D.Problems.binary_unknown_seeds ~probs:[| 0.6; 0.6 |] ~f:xor ()
    |> D.Problems.sort_data D.Problems.order_u
  in
  match D.solve_order problem with
  | Error _ -> ()
  | Ok est ->
      Alcotest.(check bool) "cannot be simultaneously unbiased and nonneg"
        false
        (D.is_unbiased problem est && D.min_estimate est >= -1e-9)

let test_order_expectation_variance () =
  let probs = [| 0.5; 0.5 |] in
  let problem =
    D.Problems.oblivious ~probs ~grid:[ 0.; 1. ] ~f:vmax ()
    |> D.Problems.sort_data D.Problems.order_l
  in
  match D.solve_order problem with
  | Error e -> Alcotest.failf "failure: %s" e
  | Ok est ->
      let v = [| 1.; 1. |] in
      check_float "expectation" 1. (D.expectation problem est v);
      check_float "variance = eq (24)"
        (Or_oblivious.var_l_11 ~p1:0.5 ~p2:0.5)
        (D.variance problem est v)

(* ------------------------------------------------------------------ *)
(* Algorithm 2                                                         *)
(* ------------------------------------------------------------------ *)

let test_partition_derives_u () =
  List.iter
    (fun (p1, p2) ->
      Alcotest.(check bool)
        (Printf.sprintf "U engine (%.2f,%.2f)" p1 p2)
        true
        (Experiments.Table42.engine_agrees_u ~p1 ~p2 ()))
    [ (0.5, 0.5); (0.3, 0.4); (0.2, 0.9) ]

let test_partition_derives_uas () =
  List.iter
    (fun (p1, p2) ->
      Alcotest.(check bool)
        (Printf.sprintf "Uas engine (%.2f,%.2f)" p1 p2)
        true
        (Experiments.Table42.engine_agrees_uas ~p1 ~p2 ()))
    [ (0.5, 0.5); (0.3, 0.4); (0.2, 0.9) ]

let test_partition_r3_or_u () =
  (* New derivation the paper does not tabulate: symmetric U for OR over
     r = 3 — check unbiasedness and nonnegativity of the derived table. *)
  let probs = [| 0.25; 0.25; 0.25 |] in
  let or3 v = if vmax v > 0.5 then 1. else 0. in
  let problem = D.Problems.oblivious ~probs ~grid:[ 0.; 1. ] ~f:or3 () in
  let batches =
    D.Problems.batches_by
      (fun v -> Array.fold_left (fun a x -> if x > 0. then a + 1 else a) 0 v)
      problem.D.data
  in
  match D.solve_partition ~batches ~f:or3 ~dist:problem.D.dist () with
  | Error e -> Alcotest.failf "failure: %s" e
  | Ok est ->
      Alcotest.(check bool) "unbiased" true (D.is_unbiased problem est);
      Alcotest.(check bool) "nonnegative" true (D.min_estimate est >= -1e-7)

let test_partition_symmetry () =
  (* The level-batch estimator must be symmetric when p1 = p2. *)
  let p = 0.35 in
  let probs = [| p; p |] in
  let problem = D.Problems.oblivious ~probs ~grid:[ 0.; 1.; 2. ] ~f:vmax () in
  let batches =
    D.Problems.batches_by
      (fun v -> Array.fold_left (fun a x -> if x > 0. then a + 1 else a) 0 v)
      problem.D.data
  in
  match D.solve_partition ~batches ~f:vmax ~dist:problem.D.dist () with
  | Error e -> Alcotest.failf "failure: %s" e
  | Ok est ->
      let est_of values = D.lookup est values in
      check_float ~eps:1e-7 "swap symmetry {1}↔{2}"
        (est_of [| Some 2.; None |])
        (est_of [| None; Some 2. |]);
      check_float ~eps:1e-7 "swap symmetry {1,2}"
        (est_of [| Some 2.; Some 1. |])
        (est_of [| Some 1.; Some 2. |])

let test_partition_infeasible () =
  (* XOR with unknown seeds: the partition engine must report failure. *)
  let xor v = if (v.(0) > 0.5) <> (v.(1) > 0.5) then 1. else 0. in
  let problem = D.Problems.binary_unknown_seeds ~probs:[| 0.6; 0.6 |] ~f:xor () in
  let batches =
    D.Problems.batches_by
      (fun v -> Array.fold_left (fun a x -> if x > 0. then a + 1 else a) 0 v)
      problem.D.data
  in
  match D.solve_partition ~batches ~f:xor ~dist:problem.D.dist () with
  | Error _ -> ()
  | Ok est ->
      Alcotest.(check bool) "if it returns, it cannot be valid" false
        (D.is_unbiased problem est && D.min_estimate est >= -1e-9)

let test_order_discretized_pps_converges () =
  (* Discretize the known-seeds weighted model (seed buckets) and let
     Algorithm 1 derive an estimator over a value grid. The result is the
     optimal order-based estimator of the *discrete* problem — not the
     continuous Figure 3 estimator, whose determining vectors (v, u·τ)
     fall off any fixed value grid — so we assert unbiasedness plus
     magnitude agreement with the continuous closed form on fully-sampled
     outcomes (the two optima price those outcomes within ~15% of each
     other here). *)
  let taus = [| 1.0; 1.3 |] in
  let grid = [ 0.; 0.25; 0.5; 0.75 ] in
  let m = 64 in
  let vmax2 v = Float.max v.(0) v.(1) in
  let problem =
    D.Problems.pps_discretized ~taus ~grid ~buckets:m ~f:vmax2 ()
    |> D.Problems.sort_data D.Problems.order_difference_multiset
  in
  match D.solve_order problem with
  | Error e -> Alcotest.failf "discretized derivation failed: %s" e
  | Ok est ->
      Alcotest.(check bool) "unbiased" true (D.is_unbiased problem est);
      (* Fully-sampled outcomes: compare with the continuous closed form
         (these estimates are seed-free, so discretization error comes
         only through the recursion — expect ~1/m accuracy). *)
      List.iter
        (fun (v1, v2) ->
          let o =
            Sampling.Outcome.Pps.of_seeds ~taus ~seeds:[| 0.01; 0.01 |]
              [| v1; v2 |]
          in
          let continuous = Estcore.Max_pps.l o in
          let derived = D.lookup est ([| Some v1; Some v2 |], [| 0; 0 |]) in
          if not (Numerics.Special.float_equal ~eps:0.15 continuous derived)
          then
            Alcotest.failf "(%.2f,%.2f): continuous %.4f vs derived %.4f" v1
              v2 continuous derived)
        [ (0.5, 0.25); (0.75, 0.5); (0.5, 0.5); (0.75, 0.25) ]

(* ------------------------------------------------------------------ *)
(* Existence oracle                                                    *)
(* ------------------------------------------------------------------ *)

let test_thm61_certificates () =
  Alcotest.(check bool) "all certificates" true (Experiments.Thm61.all_match ())

let test_or_threshold () =
  (* The OR feasibility boundary is exactly p1 + p2 = 1. *)
  Alcotest.(check bool) "0.49+0.49 infeasible" false
    (Existence.or_unknown_seeds ~p1:0.49 ~p2:0.49);
  Alcotest.(check bool) "0.51+0.51 feasible" true
    (Existence.or_unknown_seeds ~p1:0.51 ~p2:0.51);
  Alcotest.(check bool) "0.8+0.3 feasible" true
    (Existence.or_unknown_seeds ~p1:0.8 ~p2:0.3)

let test_find_witness_valid () =
  (* A feasible witness must actually be unbiased on every data vector. *)
  let or2 v = if vmax v > 0.5 then 1. else 0. in
  let problem = D.Problems.binary_unknown_seeds ~probs:[| 0.7; 0.7 |] ~f:or2 () in
  match Existence.find problem with
  | None -> Alcotest.fail "expected witness"
  | Some table ->
      List.iter
        (fun v ->
          let e =
            List.fold_left
              (fun acc (p, k) ->
                match List.assoc_opt k table with
                | Some x when p > 0. -> acc +. (p *. x)
                | _ -> acc)
              0. (problem.D.dist v)
          in
          check_float ~eps:1e-6 "witness unbiased" (or2 v) e;
          List.iter (fun (_, x) -> Alcotest.(check bool) "nonneg" true (x >= -1e-9)) table)
        problem.D.data

let test_find_none_when_infeasible () =
  let xor v = if (v.(0) > 0.5) <> (v.(1) > 0.5) then 1. else 0. in
  let problem = D.Problems.binary_unknown_seeds ~probs:[| 0.5; 0.5 |] ~f:xor () in
  Alcotest.(check bool) "no witness" true (Existence.find problem = None)

let test_lth_boundary () =
  (* For l < r, infeasible when the two smallest probabilities sum below 1;
     feasible when every pair sums to at least 1. *)
  Alcotest.(check bool) "l=1 r=2 p=0.7 feasible" true
    (Existence.lth_unknown_seeds ~r:2 ~l:1 ~p:[| 0.7; 0.7 |]);
  Alcotest.(check bool) "l=2 r=2 (min) always feasible" true
    (Existence.lth_unknown_seeds ~r:2 ~l:2 ~p:[| 0.2; 0.2 |])

(* ------------------------------------------------------------------ *)
(* Fingerprints: the cheap precomputed key vs the structural digest    *)
(* ------------------------------------------------------------------ *)

let is_cheap fp = String.length fp >= 2 && String.sub fp 0 2 = "k:"

let test_fingerprint_cheap_key () =
  let probs = [| 0.3; 0.6 |] in
  let mk ?fname ?(probs = probs) ~f () =
    D.Problems.oblivious ?fname ~probs ~grid:[ 0.; 1. ] ~f ()
  in
  let keyed = mk ~fname:"max2" ~f:vmax () in
  Alcotest.(check bool) "?fname gives a cheap key" true
    (is_cheap (D.fingerprint keyed));
  Alcotest.(check bool) "no ?fname digests structurally" false
    (is_cheap (D.fingerprint (mk ~f:vmax ())));
  Alcotest.(check string) "deterministic" (D.fingerprint keyed)
    (D.fingerprint (mk ~fname:"max2" ~f:vmax ()));
  Alcotest.(check bool) "probs distinguish keys" true
    (D.fingerprint keyed
    <> D.fingerprint (mk ~fname:"max2" ~probs:[| 0.3; 0.7 |] ~f:vmax ()));
  Alcotest.(check bool) "fname distinguishes keys" true
    (D.fingerprint keyed <> D.fingerprint (mk ~fname:"min2" ~f:(fun _ -> 0.) ()))

let test_fingerprint_sort_tag () =
  let keyed =
    D.Problems.oblivious ~fname:"max2" ~probs:[| 0.3; 0.6 |] ~grid:[ 0.; 1. ]
      ~f:vmax ()
  in
  let tagged = D.Problems.sort_data ~tag:"order-l" D.Problems.order_l keyed in
  Alcotest.(check bool) "tagged sort keeps a cheap key" true
    (is_cheap (D.fingerprint tagged));
  Alcotest.(check bool) "tag separates sorted from unsorted" true
    (D.fingerprint tagged <> D.fingerprint keyed);
  (* data order is part of what Algorithm 1 derives, and an untagged
     comparator is invisible to any caller-asserted name — the cheap key
     must be dropped, not silently reused *)
  Alcotest.(check bool) "untagged sort falls back to structural" false
    (is_cheap (D.fingerprint (D.Problems.sort_data D.Problems.order_l keyed)))

let test_cheap_key_derives_identical_table () =
  let probs = [| 0.3; 0.6 |] in
  let mk fname =
    (match fname with
    | Some n ->
        D.Problems.oblivious ~fname:n ~probs ~grid:[ 0.; 1. ] ~f:vmax ()
        |> D.Problems.sort_data ~tag:"order-l" D.Problems.order_l
    | None ->
        D.Problems.oblivious ~probs ~grid:[ 0.; 1. ] ~f:vmax ()
        |> D.Problems.sort_data D.Problems.order_l)
  in
  let cache = D.cache ~name:"test.cheap-key" () in
  match (D.solve_order_cached ~cache (mk (Some "max2")), D.solve_order (mk None)) with
  | Ok cached, Ok direct ->
      List.iter2
        (fun (k1, v1) (k2, v2) ->
          Alcotest.(check bool) "same outcome key" true (k1 = k2);
          check_float "cheap key derives the structural table" v2 v1)
        (D.bindings cached) (D.bindings direct);
      (* a second keyed solve must be a hit: the shared table itself *)
      (match D.solve_order_cached ~cache (mk (Some "max2")) with
      | Ok again ->
          Alcotest.(check bool) "cache hit returns the shared table" true
            (cached == again)
      | Error e -> Alcotest.failf "re-solve: %s" e)
  | Error e, _ | _, Error e -> Alcotest.failf "derivation failed: %s" e

let () =
  Alcotest.run "designer"
    [
      ( "algorithm-1",
        [
          Alcotest.test_case "derives OR^(L)" `Quick test_order_derives_or_l;
          Alcotest.test_case "derives max^(L) grid" `Quick test_order_derives_max_l_grid;
          Alcotest.test_case "derives max^(L) r=3" `Quick test_order_derives_max_l_r3_uniform;
          Alcotest.test_case "weighted binary OR" `Quick test_order_weighted_binary_or;
          Alcotest.test_case "fails on XOR/unknown" `Quick test_order_failure_xor_unknown_seeds;
          Alcotest.test_case "expectation/variance" `Quick test_order_expectation_variance;
          Alcotest.test_case "discretized PPS → Figure 3" `Slow
            test_order_discretized_pps_converges;
        ] );
      ( "algorithm-2",
        [
          Alcotest.test_case "derives max^(U)" `Quick test_partition_derives_u;
          Alcotest.test_case "derives max^(Uas)" `Quick test_partition_derives_uas;
          Alcotest.test_case "novel: OR^(U) r=3" `Quick test_partition_r3_or_u;
          Alcotest.test_case "symmetry" `Quick test_partition_symmetry;
          Alcotest.test_case "reports infeasible" `Quick test_partition_infeasible;
        ] );
      ( "existence",
        [
          Alcotest.test_case "Thm 6.1 certificates" `Quick test_thm61_certificates;
          Alcotest.test_case "OR threshold p1+p2=1" `Quick test_or_threshold;
          Alcotest.test_case "witness is valid" `Quick test_find_witness_valid;
          Alcotest.test_case "no witness when infeasible" `Quick test_find_none_when_infeasible;
          Alcotest.test_case "lth boundaries" `Quick test_lth_boundary;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "cheap key shape" `Quick test_fingerprint_cheap_key;
          Alcotest.test_case "sort tag" `Quick test_fingerprint_sort_tag;
          Alcotest.test_case "cheap key derives identical table" `Quick
            test_cheap_key_derives_identical_table;
        ] );
    ]
