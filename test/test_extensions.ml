(* Tests for the extension modules: coordinated sampling estimators,
   bottom-k application plumbing, the Lemma 2.1 bound checker, the
   Lemma 3.2 monotonicity checker, and the completed Section 6 picture. *)

open Estcore
module I = Sampling.Instance
module P = Sampling.Outcome.Pps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (Numerics.Special.float_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let vmax = Array.fold_left Float.max 0.

(* ------------------------------------------------------------------ *)
(* Coordinated sampling                                                *)
(* ------------------------------------------------------------------ *)

let test_coord_outcome () =
  let taus = [| 1.; 1. |] in
  let o = Coordinated.of_seed ~taus ~u:0.4 [| 0.5; 0.3 |] in
  (* Shared seed: entry 1 sampled (0.5 >= 0.4), entry 2 not (0.3 < 0.4). *)
  Alcotest.(check (list int)) "sampled" [ 0 ] (P.sampled o);
  check_float "seeds equal" o.P.seeds.(0) o.P.seeds.(1)

let test_coord_nesting () =
  (* With equal taus, samples are nested: larger values sampled whenever
     smaller ones are (consistency of shared-seed sampling). *)
  let taus = [| 1.; 1. |] in
  List.iter
    (fun u ->
      let o = Coordinated.of_seed ~taus ~u [| 0.7; 0.3 |] in
      if o.P.values.(1) <> None then
        Alcotest.(check bool) "larger sampled too" true (o.P.values.(0) <> None))
    [ 0.1; 0.2; 0.35; 0.5; 0.8 ]

let test_coord_expectation_indicator () =
  let taus = [| 1.; 1.3 |] in
  let v = [| 0.5; 0.6 |] in
  (* Pr[entry 2 sampled] = v2/tau2 under the shared seed too. *)
  let e =
    Coordinated.expectation ~taus ~v (fun o ->
        if o.P.values.(1) <> None then 1. else 0.)
  in
  check_float ~eps:1e-9 "marginal inclusion" (0.6 /. 1.3) e;
  (* Pr[both sampled] = min of the two inclusion probs (comonotone). *)
  let e2 =
    Coordinated.expectation ~taus ~v (fun o ->
        if P.sampled o = [ 0; 1 ] then 1. else 0.)
  in
  check_float ~eps:1e-9 "joint inclusion = min" (Float.min 0.5 (0.6 /. 1.3)) e2

let test_coord_max_unbiased () =
  List.iter
    (fun (taus, v) ->
      let m = Coordinated.moments ~taus ~v Coordinated.max_ht in
      check_float ~eps:1e-8 "E = max" (vmax v) m.Exact.mean)
    [
      ([| 1.; 1. |], [| 0.5; 0.3 |]);
      ([| 1.; 1. |], [| 0.3; 0.3 |]);
      ([| 1.; 1.3 |], [| 0.9; 0.2 |]);
      ([| 1.3; 0.7 |], [| 0.4; 0.6 |]);
      ([| 1.; 1. |], [| 0.7; 0. |]);
      ([| 1.; 1.; 1. |], [| 0.5; 0.3; 0.2 |]);
    ]

let test_coord_max_variance_equal_tau () =
  let taus = [| 1.; 1. |] in
  let v = [| 0.5; 0.3 |] in
  let m = Coordinated.moments ~taus ~v Coordinated.max_ht in
  check_float ~eps:1e-8 "closed form"
    (Coordinated.max_variance_equal_tau ~tau:1. ~v)
    m.Exact.var

let test_coord_min_unbiased () =
  List.iter
    (fun (taus, v) ->
      let m = Coordinated.moments ~taus ~v Coordinated.min_ht in
      let mn = Array.fold_left Float.min infinity v in
      check_float ~eps:1e-8 "E = min" mn m.Exact.mean)
    [
      ([| 1.; 1. |], [| 0.5; 0.3 |]);
      ([| 1.; 1.3 |], [| 0.9; 0.2 |]);
      ([| 1.; 1.; 1. |], [| 0.5; 0.3; 0.2 |]);
    ]

let test_coord_vs_independent_tradeoff () =
  (* Coordination wins on dissimilar values (independent samples cannot
     combine their partial information), while independent sampling wins
     on near-identical values (two independent chances to sample the
     key). Both directions, exactly. *)
  let taus = [| 1.; 1. |] in
  let var_c v = (Coordinated.moments ~taus ~v Coordinated.max_ht).Exact.var in
  let var_l v = (Exact.pps_r2_fast ~taus ~v Max_pps.l).Exact.var in
  let dissimilar = [| 0.3; 0. |] in
  Alcotest.(check bool)
    (Printf.sprintf "dissimilar: coord %.4f < indep L %.4f" (var_c dissimilar)
       (var_l dissimilar))
    true
    (var_c dissimilar < var_l dissimilar);
  let identical = [| 0.3; 0.3 |] in
  Alcotest.(check bool)
    (Printf.sprintf "identical: indep L %.4f < coord %.4f" (var_l identical)
       (var_c identical))
    true
    (var_l identical < var_c identical);
  (* Coordination always beats the independent HT baseline. *)
  List.iter
    (fun v ->
      Alcotest.(check bool) "coord <= indep HT" true
        (var_c v <= Ht.max_pps_variance ~taus ~v +. 1e-9))
    [ dissimilar; identical; [| 0.5; 0.2 |] ]

let test_coord_sum_covariance () =
  check_float "independent" 0.
    (Coordinated.sum_covariance ~p1:0.3 ~p2:0.5 ~v1:2. ~v2:3. ~shared:false);
  (* shared: (min(p1,p2)/(p1 p2) − 1) v1 v2 *)
  check_float "shared"
    (((0.3 /. 0.15) -. 1.) *. 6.)
    (Coordinated.sum_covariance ~p1:0.3 ~p2:0.5 ~v1:2. ~v2:3. ~shared:true);
  (* Cross-check against direct integration: E[v̂1 v̂2] − v1v2 under a
     shared seed with PPS thresholds τi = vi/pi. *)
  let p1 = 0.3 and p2 = 0.5 and v1 = 2. and v2 = 3. in
  let taus = [| v1 /. p1; v2 /. p2 |] in
  let cov =
    Coordinated.expectation ~taus ~v:[| v1; v2 |] (fun o ->
        let e1 = if o.P.values.(0) <> None then v1 /. p1 else 0. in
        let e2 = if o.P.values.(1) <> None then v2 /. p2 else 0. in
        e1 *. e2)
    -. (v1 *. v2)
  in
  check_float ~eps:1e-8 "integration agrees" cov
    (Coordinated.sum_covariance ~p1 ~p2 ~v1 ~v2 ~shared:true)

let test_coord_dominance_end_to_end () =
  (* Sampled estimate with Shared seeds is unbiased over masters. *)
  let rng = Numerics.Prng.create ~seed:50 () in
  let mk () =
    I.of_assoc
      (List.init 200 (fun i ->
           ( i + 1,
             if Numerics.Prng.float rng < 0.2 then 0.
             else 1. +. (10. *. Numerics.Prng.float rng) )))
  in
  let instances = [ mk (); mk () ] in
  let truth = I.max_dominance instances in
  let taus = [| 15.; 15. |] in
  let acc = Numerics.Stats.Acc.create () in
  for m = 1 to 300 do
    let seeds = Sampling.Seeds.create ~master:m Sampling.Seeds.Shared in
    let samples = Aggregates.Sum_agg.sample_pps seeds ~taus instances in
    Numerics.Stats.Acc.add acc
      (Aggregates.Dominance.max_dominance_coordinated samples
         ~select:(fun _ -> true))
  done;
  let mean = Numerics.Stats.Acc.mean acc in
  let sd = sqrt (Numerics.Stats.Acc.var acc /. 300.) in
  if abs_float (mean -. truth) > 5. *. sd then
    Alcotest.failf "coordinated maxdom biased: %g vs %g" mean truth;
  (* And the exact variance predicts the empirical one. *)
  let vc =
    Aggregates.Dominance.exact_variance_coordinated ~taus ~instances
      ~select:(fun _ -> true)
  in
  let emp = Numerics.Stats.Acc.var acc in
  Alcotest.(check bool)
    (Printf.sprintf "variance %.1f ~ %.1f" emp vc)
    true
    (emp > vc /. 2. && emp < vc *. 2.)

let test_coord_distinct () =
  let a, b = Workload.Setpairs.pair ~n:2_000 ~jaccard:0.5 in
  let truth = float_of_int (Workload.Setpairs.union_size a b) in
  let p = 0.2 in
  let acc = Numerics.Stats.Acc.create () in
  for m = 1 to 300 do
    let seeds = Sampling.Seeds.create ~master:m Sampling.Seeds.Shared in
    let s1 = Aggregates.Distinct.sample_binary seeds ~p ~instance:0 a in
    let s2 = Aggregates.Distinct.sample_binary seeds ~p ~instance:1 b in
    Numerics.Stats.Acc.add acc
      (Aggregates.Distinct.coordinated_estimate ~p ~s1 ~s2
         ~select:(fun _ -> true))
  done;
  let mean = Numerics.Stats.Acc.mean acc in
  let sd = sqrt (Numerics.Stats.Acc.var acc /. 300.) in
  if abs_float (mean -. truth) > 5. *. sd then
    Alcotest.failf "coordinated distinct biased: %g vs %g" mean truth;
  (* Exact variance formula. *)
  let pred = Aggregates.Distinct.var_coordinated ~d:truth ~p in
  let emp = Numerics.Stats.Acc.var acc in
  Alcotest.(check bool) "variance matches d(1/p-1)" true
    (emp > pred /. 1.5 && emp < pred *. 1.5)

let test_coord_vs_independent_formulas () =
  (* Distinct counts, per key class: coordination beats independent L on
     "change" keys (1,0) — by ≈ 1/(4p) for small p — while independent L
     beats coordination on "no change" keys (1,1) by a factor ≈ 2 (two
     independent chances to sample). HT is dominated by both. *)
  List.iter
    (fun p ->
      let vc = Aggregates.Distinct.var_coordinated ~d:1. ~p in
      Alcotest.(check bool) "coord beats L on (1,0)" true
        (vc <= Or_oblivious.var_l_10 ~p1:p ~p2:p +. 1e-9);
      Alcotest.(check bool) "L beats coord on (1,1)" true
        (Or_oblivious.var_l_11 ~p1:p ~p2:p <= vc +. 1e-9);
      Alcotest.(check bool) "coord beats HT" true
        (vc <= Or_oblivious.var_ht ~probs:[| p; p |] +. 1e-9))
    [ 0.05; 0.1; 0.3; 0.5 ]

(* ------------------------------------------------------------------ *)
(* Bottom-k plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let test_bottom_k_binary_sample () =
  let inst = I.of_keys (List.init 100 (fun i -> i + 1)) in
  let seeds = Sampling.Seeds.create ~master:3 Sampling.Seeds.Independent in
  let keys, p = Aggregates.Distinct.sample_binary_bottom_k seeds ~k:10 ~instance:0 inst in
  Alcotest.(check int) "k keys" 10 (List.length keys);
  (* p is the (k+1)-smallest seed: every sampled key has seed < p, and
     exactly k keys do. *)
  let below =
    I.fold
      (fun h _ acc ->
        if Sampling.Seeds.seed seeds ~instance:0 ~key:h < p then h :: acc
        else acc)
      inst []
    |> List.sort compare
  in
  Alcotest.(check (list int)) "sample = keys below threshold" below keys

let test_bottom_k_binary_small_support () =
  let inst = I.of_keys [ 1; 2; 3 ] in
  let seeds = Sampling.Seeds.create ~master:3 Sampling.Seeds.Independent in
  let keys, p = Aggregates.Distinct.sample_binary_bottom_k seeds ~k:10 ~instance:0 inst in
  Alcotest.(check int) "all keys" 3 (List.length keys);
  check_float "p = 1" 1. p

let test_bottom_k_distinct_unbiased () =
  let r = Experiments.Bottomk.distinct_bottom_k ~n:2_000 ~k:300 ~masters:150 () in
  (* Empirical mean within 5 empirical standard errors of the truth. *)
  let se = r.Experiments.Bottomk.rel_sd *. r.Experiments.Bottomk.truth /. sqrt 150. in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.1f vs truth %.1f" r.Experiments.Bottomk.mean
       r.Experiments.Bottomk.truth)
    true
    (abs_float (r.Experiments.Bottomk.mean -. r.Experiments.Bottomk.truth)
    < 5. *. se);
  (* Spread within 35% of the Poisson prediction. *)
  Alcotest.(check bool) "spread matches Poisson" true
    (r.Experiments.Bottomk.rel_sd
     /. r.Experiments.Bottomk.predicted_rel_sd < 1.35
    && r.Experiments.Bottomk.rel_sd /. r.Experiments.Bottomk.predicted_rel_sd
       > 0.65)

let test_sample_priority_shape () =
  let rng = Numerics.Prng.create ~seed:9 () in
  let mk () =
    I.of_assoc
      (List.init 150 (fun i -> (i + 1, 1. +. (10. *. Numerics.Prng.float rng))))
  in
  let instances = [ mk (); mk () ] in
  let seeds = Sampling.Seeds.create ~master:4 Sampling.Seeds.Independent in
  let s = Aggregates.Sum_agg.sample_priority seeds ~k:20 instances in
  Array.iter
    (fun (smp : Sampling.Poisson.pps) ->
      Alcotest.(check int) "k entries" 20 (List.length smp.Sampling.Poisson.entries))
    s.Aggregates.Sum_agg.samples;
  (* Every sampled key satisfies the PPS rule with the reported tau. *)
  Array.iteri
    (fun i (smp : Sampling.Poisson.pps) ->
      List.iter
        (fun (h, v) ->
          let u = Sampling.Seeds.seed seeds ~instance:i ~key:h in
          Alcotest.(check bool) "v >= u tau" true
            (v >= u *. smp.Sampling.Poisson.tau))
        smp.Sampling.Poisson.entries)
    s.Aggregates.Sum_agg.samples

let test_priority_maxdom_unbiased () =
  let l, ht = Experiments.Bottomk.maxdom_priority ~k:150 ~masters:120 () in
  List.iter
    (fun r ->
      let se = r.Experiments.Bottomk.rel_sd *. r.Experiments.Bottomk.truth /. sqrt 120. in
      Alcotest.(check bool)
        (Printf.sprintf "%s: mean %.4e vs %.4e" r.Experiments.Bottomk.label
           r.Experiments.Bottomk.mean r.Experiments.Bottomk.truth)
        true
        (abs_float (r.Experiments.Bottomk.mean -. r.Experiments.Bottomk.truth)
        < 5. *. se))
    [ l; ht ];
  (* L beats HT empirically too. *)
  Alcotest.(check bool) "L tighter than HT" true
    (l.Experiments.Bottomk.rel_sd < ht.Experiments.Bottomk.rel_sd)

(* ------------------------------------------------------------------ *)
(* Multi-instance distinct count (r = 3)                               *)
(* ------------------------------------------------------------------ *)

let multi_instances =
  let rng = Numerics.Prng.create ~seed:4 () in
  Array.init 3 (fun _ ->
      I.of_keys
        (List.filter
           (fun _ -> Numerics.Prng.float rng < 0.7)
           (List.init 1_500 (fun i -> i + 1))))

let test_multi_distinct_unbiased () =
  let truth =
    float_of_int (I.distinct_count (Array.to_list multi_instances))
  in
  let probs = [| 0.15; 0.2; 0.25 |] in
  let t = Aggregates.Distinct.Multi.create ~probs in
  let acc_l = Numerics.Stats.Acc.create () in
  let acc_ht = Numerics.Stats.Acc.create () in
  for m = 1 to 250 do
    let seeds = Sampling.Seeds.create ~master:m Sampling.Seeds.Independent in
    let samples =
      Array.mapi
        (fun i inst ->
          Aggregates.Distinct.sample_binary seeds ~p:probs.(i) ~instance:i inst)
        multi_instances
    in
    Numerics.Stats.Acc.add acc_l
      (Aggregates.Distinct.Multi.estimate t seeds ~samples
         ~select:(fun _ -> true));
    Numerics.Stats.Acc.add acc_ht
      (Aggregates.Distinct.Multi.ht_estimate ~probs seeds ~samples
         ~select:(fun _ -> true))
  done;
  List.iter
    (fun (label, acc) ->
      let mean = Numerics.Stats.Acc.mean acc in
      let sd = sqrt (Numerics.Stats.Acc.var acc /. 250.) in
      if abs_float (mean -. truth) > 5. *. sd then
        Alcotest.failf "%s biased: %g vs %g" label mean truth)
    [ ("L", acc_l); ("HT", acc_ht) ];
  (* The General OR^(L) must be far tighter than HT at these rates. *)
  Alcotest.(check bool) "L ≪ HT spread" true
    (Numerics.Stats.Acc.var acc_l < Numerics.Stats.Acc.var acc_ht /. 4.)

let test_multi_distinct_r2_consistency () =
  (* At r = 2 the Multi estimator must coincide with the Section 8.1
     class-count formula. *)
  let a, b = Workload.Setpairs.pair ~n:500 ~jaccard:0.4 in
  let probs = [| 0.3; 0.45 |] in
  let t = Aggregates.Distinct.Multi.create ~probs in
  let seeds = Sampling.Seeds.create ~master:77 Sampling.Seeds.Independent in
  let s1 = Aggregates.Distinct.sample_binary seeds ~p:probs.(0) ~instance:0 a in
  let s2 = Aggregates.Distinct.sample_binary seeds ~p:probs.(1) ~instance:1 b in
  let c =
    Aggregates.Distinct.classify seeds ~p1:probs.(0) ~p2:probs.(1) ~s1 ~s2
      ~select:(fun _ -> true)
  in
  check_float ~eps:1e-9 "Multi = classify-based L"
    (Aggregates.Distinct.l_estimate c ~p1:probs.(0) ~p2:probs.(1))
    (Aggregates.Distinct.Multi.estimate t seeds ~samples:[| s1; s2 |]
       ~select:(fun _ -> true))

let test_multi_arity_guard () =
  let t = Aggregates.Distinct.Multi.create ~probs:[| 0.3; 0.3; 0.3 |] in
  let seeds = Sampling.Seeds.create ~master:1 Sampling.Seeds.Independent in
  Alcotest.check_raises "arity"
    (Invalid_argument "Distinct.Multi.estimate: arity mismatch") (fun () ->
      ignore
        (Aggregates.Distinct.Multi.estimate t seeds ~samples:[| []; [] |]
           ~select:(fun _ -> true)))

(* ------------------------------------------------------------------ *)
(* Lemma 2.1 bounds                                                    *)
(* ------------------------------------------------------------------ *)

let or2 v = if vmax v > 0.5 then 1. else 0.
let xor2 v = if (v.(0) > 0.5) <> (v.(1) > 0.5) then 1. else 0.

let test_delta_xor_zero () =
  (* XOR with unknown seeds: data (1,0) has Δ = 0 (witness (1,1) is
     consistent with every outcome of (1,0)), proving non-existence. *)
  let problem = Designer.Problems.binary_unknown_seeds ~probs:[| 0.6; 0.6 |] ~f:xor2 () in
  check_float "delta = 0" 0. (Bounds.delta problem ~v:[| 1.; 0. |] ~eps:0.5);
  match Bounds.witness problem ~v:[| 1.; 0. |] ~eps:0.5 with
  | Some (z, mass) ->
      check_float "witness mass 1" 1. mass;
      Alcotest.(check bool) "witness is below f(v)-eps" true (xor2 z <= 0.5)
  | None -> Alcotest.fail "expected witness"

let test_delta_or_positive () =
  (* OR with known seeds: Δ > 0 everywhere (estimator exists). *)
  let problem = Designer.Problems.binary_known_seeds ~probs:[| 0.3; 0.3 |] ~f:or2 () in
  List.iter
    (fun v ->
      if or2 v > 0. then
        Alcotest.(check bool) "delta positive" true
          (Bounds.delta problem ~v ~eps:0.5 > 0.))
    problem.Designer.data

let test_delta_no_witness () =
  (* ε larger than the function's range: Δ = 1. *)
  let problem = Designer.Problems.binary_known_seeds ~probs:[| 0.3; 0.3 |] ~f:or2 () in
  check_float "delta = 1" 1. (Bounds.delta problem ~v:[| 1.; 1. |] ~eps:5.)

let test_refutes_matches_lp () =
  (* refutes_existence ⇒ LP infeasible (Lemma 2.1 is necessary only):
     check the implication across a battery of problems. *)
  let check label problem =
    let refuted = Bounds.refutes_existence problem in
    let exists = Existence.exists problem in
    if refuted && exists then
      Alcotest.failf "%s: delta = 0 but LP found an estimator" label
  in
  check "xor unknown"
    (Designer.Problems.binary_unknown_seeds ~probs:[| 0.6; 0.6 |] ~f:xor2 ());
  check "xor known"
    (Designer.Problems.binary_known_seeds ~probs:[| 0.6; 0.6 |] ~f:xor2 ());
  check "or unknown p<1"
    (Designer.Problems.binary_unknown_seeds ~probs:[| 0.3; 0.3 |] ~f:or2 ());
  check "or known"
    (Designer.Problems.binary_known_seeds ~probs:[| 0.3; 0.3 |] ~f:or2 ());
  (* And the Δ-criterion does fire on XOR/unknown. *)
  Alcotest.(check bool) "xor refuted by delta" true
    (Bounds.refutes_existence
       (Designer.Problems.binary_unknown_seeds ~probs:[| 0.6; 0.6 |] ~f:xor2 ()))

(* ------------------------------------------------------------------ *)
(* Monotonicity checker                                                *)
(* ------------------------------------------------------------------ *)

let test_monotone_or_l () =
  let probs = [| 0.4; 0.6 |] in
  let problem =
    Designer.Problems.oblivious ~probs ~grid:[ 0.; 1. ] ~f:vmax ()
    |> Designer.Problems.sort_data Designer.Problems.order_l
  in
  match Designer.solve_order problem with
  | Error e -> Alcotest.failf "derivation failed: %s" e
  | Ok est ->
      Alcotest.(check bool) "OR^(L) is monotone" true
        (Designer.is_monotone problem est)

let test_monotone_detects_violation () =
  (* A deliberately non-monotone estimator must be flagged: use the HT
     max estimator modified to a large value on a partial outcome. *)
  let probs = [| 0.5; 0.5 |] in
  let problem =
    Designer.Problems.oblivious ~probs ~grid:[ 0.; 1. ] ~f:vmax ()
    |> Designer.Problems.sort_data Designer.Problems.order_l
  in
  match Designer.solve_order problem with
  | Error e -> Alcotest.failf "derivation failed: %s" e
  | Ok est ->
      (* est is monotone; break it through a wrapper problem where the
         full outcome for (1,1) gets a lower value than the partial one.
         Simplest check: partition-based Uas is monotone as well, while a
         hand-made table is not. Construct the broken table directly. *)
      ignore est;
      (* Outcome keys as produced by Problems.oblivious: value vectors.
         The full outcome for (1,1) gets a smaller estimate than the
         less-informative one-entry outcomes — a monotonicity breach. *)
      let broken =
        Designer.of_bindings
          [
            ([| None; None |], 0.);
            ([| Some 1.; None |], 5.);
            ([| None; Some 1. |], 5.);
            ([| Some 1.; Some 1. |], 1.);
            ([| Some 0.; None |], 0.);
            ([| None; Some 0. |], 0.);
            ([| Some 0.; Some 0. |], 0.);
            ([| Some 1.; Some 0. |], 2.);
            ([| Some 0.; Some 1. |], 2.);
          ]
      in
      Alcotest.(check bool) "violation detected" false
        (Designer.is_monotone problem broken)

(* ------------------------------------------------------------------ *)
(* Section 6 completion                                                *)
(* ------------------------------------------------------------------ *)

let test_xor_known_seeds_feasible () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "xor known seeds p=%.2f" p)
        true
        (Existence.xor_known_seeds ~p1:p ~p2:p))
    [ 0.1; 0.3; 0.7 ]

let test_xor_known_seeds_derivable () =
  (* And the designer actually produces an unbiased nonnegative XOR
     estimator with known seeds. *)
  let problem = Designer.Problems.binary_known_seeds ~probs:[| 0.4; 0.4 |] ~f:xor2 () in
  let batches =
    Designer.Problems.batches_by
      (fun v -> Array.fold_left (fun a x -> if x > 0. then a + 1 else a) 0 v)
      problem.Designer.data
  in
  match Designer.solve_partition ~batches ~f:xor2 ~dist:problem.Designer.dist () with
  | Error e -> Alcotest.failf "derivation failed: %s" e
  | Ok est ->
      Alcotest.(check bool) "unbiased" true (Designer.is_unbiased problem est);
      Alcotest.(check bool) "nonnegative" true (Designer.min_estimate est >= -1e-7)

(* ------------------------------------------------------------------ *)
(* E17: derived quantile / range estimators                            *)
(* ------------------------------------------------------------------ *)

let test_median3_dominates () =
  match Experiments.Quantiles.median3 () with
  | Error e -> Alcotest.failf "median derivation failed: %s" e
  | Ok rows ->
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (Printf.sprintf "derived <= HT on (%g,%g,%g)"
               r.Experiments.Quantiles.data.(0)
               r.Experiments.Quantiles.data.(1)
               r.Experiments.Quantiles.data.(2))
            true
            (r.Experiments.Quantiles.var_derived
            <= r.Experiments.Quantiles.var_ht +. 1e-9))
        rows;
      (* Strict improvement somewhere. *)
      Alcotest.(check bool) "strictly better somewhere" true
        (List.exists
           (fun r ->
             r.Experiments.Quantiles.var_derived
             < r.Experiments.Quantiles.var_ht -. 1e-6)
           rows)

let test_range3_dominates () =
  match Experiments.Quantiles.range3 () with
  | Error e -> Alcotest.failf "range derivation failed: %s" e
  | Ok rows ->
      List.iter
        (fun r ->
          Alcotest.(check bool) "derived <= HT" true
            (r.Experiments.Quantiles.var_derived
            <= r.Experiments.Quantiles.var_ht +. 1e-9))
        rows

let test_quantiles_other_p () =
  (* Derivations stay sound across sampling probabilities. *)
  List.iter
    (fun p ->
      (match Experiments.Quantiles.median3 ~p () with
      | Error e -> Alcotest.failf "median p=%.2f: %s" p e
      | Ok _ -> ());
      match Experiments.Quantiles.range3 ~p () with
      | Error e -> Alcotest.failf "range p=%.2f: %s" p e
      | Ok _ -> ())
    [ 0.2; 0.6 ]

(* ------------------------------------------------------------------ *)
(* Cross-checks and fuzzing                                            *)
(* ------------------------------------------------------------------ *)

let qtest ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let test_general_vs_coeffs_prefix_sums () =
  (* Uniform p: General's prefix sums equal Theorem 4.2's A_i. *)
  List.iter
    (fun (r, p) ->
      let g = Max_oblivious.General.create ~probs:(Array.make r p) in
      let pre = Max_oblivious.Coeffs.prefix_sums (Max_oblivious.Coeffs.compute ~r ~p) in
      for h = 1 to r do
        let a = Max_oblivious.General.prefix_sum g (List.init h Fun.id) in
        if not (Numerics.Special.float_equal ~eps:1e-9 a pre.(h - 1)) then
          Alcotest.failf "A_%d at r=%d p=%.2f: %g vs %g" h r p a pre.(h - 1)
      done)
    [ (2, 0.3); (3, 0.5); (4, 0.2); (5, 0.7); (6, 0.45) ]

let prop_solve_order_sound =
  qtest ~count:60 "Algorithm 1 results are always unbiased when Ok"
    QCheck.small_int
    (fun seed ->
      let rng = Numerics.Prng.create ~seed () in
      let r = 2 + Numerics.Prng.int rng 2 in
      let probs =
        Array.init r (fun _ -> 0.1 +. (0.8 *. Numerics.Prng.float rng))
      in
      let grid = [ 0.; 1.; 1. +. Numerics.Prng.float rng ] in
      let f v = Array.fold_left Float.max 0. v in
      let problem =
        Designer.Problems.oblivious ~probs ~grid ~f ()
        |> Designer.Problems.sort_data Designer.Problems.order_l
      in
      match Designer.solve_order problem with
      | Error _ -> true
      | Ok est -> Designer.is_unbiased problem est)

let prop_instance_invariants =
  qtest ~count:100 "instance invariants"
    QCheck.(list_of_size Gen.(0 -- 30) (pair small_nat (float_bound_inclusive 10.)))
    (fun pairs ->
      let pairs = List.map (fun (k, v) -> (k, abs_float v)) pairs in
      let i = I.of_assoc pairs in
      let keys = I.keys i in
      List.sort compare keys = keys
      && I.cardinality i = List.length keys
      && List.for_all (fun h -> I.value i h > 0.) keys
      && I.total i >= 0.)

let prop_jaccard_bounds =
  qtest ~count:100 "jaccard within [0,1] and symmetric"
    QCheck.(pair (list_of_size Gen.(0 -- 20) small_nat) (list_of_size Gen.(0 -- 20) small_nat))
    (fun (ka, kb) ->
      let a = I.of_keys ka and b = I.of_keys kb in
      let j = I.jaccard a b in
      j >= 0. && j <= 1.
      && Numerics.Special.float_equal j (I.jaccard b a))

let test_summary_empty_instance () =
  let seeds = Sampling.Seeds.create ~master:1 Sampling.Seeds.Independent in
  List.iter
    (fun scheme ->
      let s = Sampling.Summary.summarize seeds scheme ~instance:0 I.empty in
      Alcotest.(check int) "empty" 0 (Sampling.Summary.size s);
      check_float "zero estimate" 0.
        (Sampling.Summary.subset_sum s ~select:(fun _ -> true)))
    [
      Sampling.Summary.Poisson_pps { tau = 10. };
      Sampling.Summary.Bottom_k { k = 4; family = Sampling.Rank.PPS };
      Sampling.Summary.Var_opt { k = 4 };
    ]

let test_tau_for_expected_size_guards () =
  let inst = I.of_assoc [ (1, 2.); (2, 3.) ] in
  Alcotest.check_raises "k too large"
    (Invalid_argument
       "Poisson.tau_for_expected_size: k = 3 not in (0, 2] (instance has 2 \
        keys)") (fun () ->
      ignore (Sampling.Poisson.tau_for_expected_size inst 3.));
  (* k = cardinality → a positive tau with every p_h = 1 (tau = 0 would
     be rejected by pps_sample). *)
  check_float "k = n" 2. (Sampling.Poisson.tau_for_expected_size inst 2.)

let () =
  Alcotest.run "extensions"
    [
      ( "coordinated",
        [
          Alcotest.test_case "outcome shape" `Quick test_coord_outcome;
          Alcotest.test_case "nesting" `Quick test_coord_nesting;
          Alcotest.test_case "E[indicator]" `Quick test_coord_expectation_indicator;
          Alcotest.test_case "max unbiased" `Quick test_coord_max_unbiased;
          Alcotest.test_case "max variance closed form" `Quick test_coord_max_variance_equal_tau;
          Alcotest.test_case "min unbiased" `Quick test_coord_min_unbiased;
          Alcotest.test_case "coord/indep trade-off" `Quick test_coord_vs_independent_tradeoff;
          Alcotest.test_case "sum covariance" `Quick test_coord_sum_covariance;
          Alcotest.test_case "dominance end-to-end" `Slow test_coord_dominance_end_to_end;
          Alcotest.test_case "distinct end-to-end" `Slow test_coord_distinct;
          Alcotest.test_case "beats independent formulas" `Quick test_coord_vs_independent_formulas;
        ] );
      ( "bottom-k-apps",
        [
          Alcotest.test_case "binary sample + threshold" `Quick test_bottom_k_binary_sample;
          Alcotest.test_case "small support" `Quick test_bottom_k_binary_small_support;
          Alcotest.test_case "distinct unbiased" `Slow test_bottom_k_distinct_unbiased;
          Alcotest.test_case "priority samples shape" `Quick test_sample_priority_shape;
          Alcotest.test_case "priority maxdom unbiased" `Slow test_priority_maxdom_unbiased;
        ] );
      ( "multi-distinct",
        [
          Alcotest.test_case "r=3 unbiased, L ≪ HT" `Slow test_multi_distinct_unbiased;
          Alcotest.test_case "r=2 consistency" `Quick test_multi_distinct_r2_consistency;
          Alcotest.test_case "arity guard" `Quick test_multi_arity_guard;
          Alcotest.test_case "exact variance matches 2-period formula" `Quick
            (fun () ->
              (* r=2: Multi.exact_variance must reproduce the Section 8.1
                 Jaccard variance formula. *)
              let n11 = 40 and n10 = 25 and n01 = 35 in
              let memberships =
                Array.init (n11 + n10 + n01) (fun i ->
                    if i < n11 then [| true; true |]
                    else if i < n11 + n10 then [| true; false |]
                    else [| false; true |])
              in
              let p = 0.3 in
              let t = Aggregates.Distinct.Multi.create ~probs:[| p; p |] in
              let d = float_of_int (n11 + n10 + n01) in
              let j = float_of_int n11 /. d in
              check_float ~eps:1e-9 "matches var_l"
                (Aggregates.Distinct.var_l ~d ~jaccard:j ~p1:p ~p2:p)
                (Aggregates.Distinct.Multi.exact_variance t ~memberships));
        ] );
      ( "multi-period",
        [
          Alcotest.test_case "advantage grows with r" `Quick
            (fun () ->
              let rows = Experiments.Multiperiod.series ~n_keys:2_000 () in
              let advs = List.map (fun r -> r.Experiments.Multiperiod.advantage) rows in
              Alcotest.(check bool) "monotone growth" true
                (List.sort compare advs = advs);
              Alcotest.(check bool) "large at r=5" true
                (List.nth advs 3 > 50.));
          Alcotest.test_case "HT variance ~ p^-r scaling" `Quick
            (fun () ->
              (* For an always-present key, Var[HT] = (1/p^r − 1); check the
                 series' HT column is dominated by that scaling. *)
              let rows = Experiments.Multiperiod.series ~n_keys:2_000 ~present_prob:1.0 () in
              List.iter
                (fun r ->
                  let p = 0.1 in
                  let expect =
                    r.Experiments.Multiperiod.truth
                    *. ((1. /. (p ** float_of_int r.Experiments.Multiperiod.r)) -. 1.)
                  in
                  if
                    not
                      (Numerics.Special.float_equal ~eps:1e-6 expect
                         r.Experiments.Multiperiod.var_ht)
                  then
                    Alcotest.failf "r=%d: %g vs %g" r.Experiments.Multiperiod.r
                      expect r.Experiments.Multiperiod.var_ht)
                rows);
          Alcotest.test_case "empirical sanity" `Slow
            (fun () ->
              let err, pred = Experiments.Multiperiod.empirical_check ~masters:30 ~p:0.1 ~r:3 () in
              Alcotest.(check bool) "errors in line with prediction" true
                (err < 3. *. pred));
        ] );
      ( "lemma-2.1",
        [
          Alcotest.test_case "XOR has delta 0" `Quick test_delta_xor_zero;
          Alcotest.test_case "OR/known has delta > 0" `Quick test_delta_or_positive;
          Alcotest.test_case "no witness → 1" `Quick test_delta_no_witness;
          Alcotest.test_case "refutation ⇒ LP infeasible" `Quick test_refutes_matches_lp;
        ] );
      ( "lemma-3.2",
        [
          Alcotest.test_case "OR^(L) monotone" `Quick test_monotone_or_l;
          Alcotest.test_case "detects violations" `Quick test_monotone_detects_violation;
        ] );
      ( "derived-quantiles",
        [
          Alcotest.test_case "median of 3 dominates HT" `Quick test_median3_dominates;
          Alcotest.test_case "range r=3 dominates HT" `Quick test_range3_dominates;
          Alcotest.test_case "other probabilities" `Quick test_quantiles_other_p;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "nonempty and well-formed" `Quick
            (fun () ->
              Alcotest.(check bool) "many entries" true
                (List.length Catalog.all >= 12);
              List.iter
                (fun e ->
                  Alcotest.(check bool) "fields populated" true
                    (e.Catalog.name <> "" && e.Catalog.source <> ""
                    && e.Catalog.properties <> []))
                Catalog.all;
              let b = Buffer.create 1024 in
              let f = Format.formatter_of_buffer b in
              Catalog.print f;
              Format.pp_print_flush f ();
              Alcotest.(check bool) "prints" true (Buffer.length b > 500));
        ] );
      ( "cross-checks",
        [
          Alcotest.test_case "General = Coeffs prefix sums" `Quick
            test_general_vs_coeffs_prefix_sums;
          prop_solve_order_sound;
          prop_instance_invariants;
          prop_jaccard_bounds;
          Alcotest.test_case "summary of empty instance" `Quick
            test_summary_empty_instance;
          Alcotest.test_case "tau_for_expected_size guards" `Quick
            test_tau_for_expected_size_guards;
        ] );
      ( "section-6",
        [
          Alcotest.test_case "XOR known seeds feasible" `Quick test_xor_known_seeds_feasible;
          Alcotest.test_case "XOR known seeds derivable" `Quick test_xor_known_seeds_derivable;
        ] );
    ]
