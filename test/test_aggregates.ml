(* Tests for the sum-aggregate layer: dataset model, per-key estimation
   over real samples, distinct counting (Section 8.1), dominance norms
   (Section 8.2). *)

module I = Sampling.Instance
module DS = Aggregates.Dataset
module SA = Aggregates.Sum_agg
module DC = Aggregates.Distinct

let check_float ?(eps = 1e-9) msg expected actual =
  if not (Numerics.Special.float_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* Statistical unbiasedness helper: mean over masters within 5 sigma. *)
let assert_unbiased ~masters ~truth f =
  let acc = Numerics.Stats.Acc.create () in
  for m = 1 to masters do
    Numerics.Stats.Acc.add acc (f m)
  done;
  let mean = Numerics.Stats.Acc.mean acc in
  let sd = sqrt (Numerics.Stats.Acc.var acc /. float_of_int masters) in
  if abs_float (mean -. truth) > (5. *. sd) +. 1e-9 then
    Alcotest.failf "biased: mean %.4f vs truth %.4f (sd %.4f)" mean truth sd;
  Numerics.Stats.Acc.var acc

(* ------------------------------------------------------------------ *)
(* Dataset                                                             *)
(* ------------------------------------------------------------------ *)

let test_dataset_basic () =
  let ds =
    DS.create [ I.of_assoc [ (1, 2.); (2, 3.) ]; I.of_assoc [ (2, 1.); (3, 4.) ] ]
  in
  Alcotest.(check int) "instances" 2 (DS.num_instances ds);
  Alcotest.(check (list int)) "keys" [ 1; 2; 3 ] (DS.keys ds);
  Alcotest.(check (array (float 1e-12))) "values" [| 3.; 1. |] (DS.values ds 2);
  check_float "max dominance" 9. (DS.max_dominance ds);
  check_float "min dominance" 1. (DS.min_dominance ds);
  Alcotest.(check int) "distinct" 3 (DS.distinct_count ds);
  check_float "l1" (2. +. 2. +. 4.) (DS.l1_distance ds 0 1);
  check_float "sum agg with select" 3.
    (DS.sum_aggregate ds
       ~f:(fun v -> Float.max v.(0) v.(1))
       ~select:(fun h -> h = 2))

let test_figure5_panelA () =
  Alcotest.(check bool) "printed aggregates" true (Experiments.Fig5.aggregates_match ())

let test_figure5_bottom3 () =
  Alcotest.(check bool) "independent bottom-3" true
    (Experiments.Fig5.independent_bottom3_match ());
  (* Shared-seed bottom-3 from correctly computed ranks (the paper's
     printed instance-2 row has an arithmetic slip; see EXPERIMENTS.md). *)
  let ranks = DS.Figure5.shared_ranks () in
  Alcotest.(check (list int)) "shared inst 1" [ 3; 1; 6 ]
    (DS.Figure5.bottom3 ~ranks ~instance:0);
  Alcotest.(check (list int)) "shared inst 2 (corrected)" [ 3; 1; 6 ]
    (DS.Figure5.bottom3 ~ranks ~instance:1);
  Alcotest.(check (list int)) "shared inst 3" [ 3; 1; 5 ]
    (DS.Figure5.bottom3 ~ranks ~instance:2)

let test_figure5_rank_values () =
  let ranks = DS.Figure5.shared_ranks () in
  let r h i = (List.assoc h ranks).(i) in
  check_float ~eps:1e-4 "r1(1)" 0.0147 (r 1 0);
  Alcotest.(check bool) "r1(2) = inf" true (r 2 0 = infinity);
  check_float ~eps:1e-4 "r3(3)" 0.0047 (r 3 2);
  check_float ~eps:1e-4 "r2(4)" 0.046 (r 4 1);
  (* The corrected value of the paper's slip: *)
  check_float ~eps:1e-4 "r2(3) = 0.07/12" (0.07 /. 12.) (r 3 1)

let test_figure5_consistency () =
  (* Shared-seed ranks are consistent: larger value => smaller rank. *)
  let ranks = DS.Figure5.shared_ranks () in
  let ds = DS.Figure5.dataset in
  List.iter
    (fun (h, rs) ->
      let v = DS.values ds h in
      for i = 0 to 2 do
        for j = 0 to 2 do
          if v.(i) > v.(j) then
            Alcotest.(check bool)
              (Printf.sprintf "key %d: v%d > v%d" h i j)
              true
              (rs.(i) < rs.(j) +. 1e-12)
        done
      done)
    ranks

(* ------------------------------------------------------------------ *)
(* Sum_agg                                                             *)
(* ------------------------------------------------------------------ *)

let two_instances =
  let rng = Numerics.Prng.create ~seed:50 () in
  let mk () =
    I.of_assoc
      (List.init 300 (fun i ->
           (i + 1, if Numerics.Prng.float rng < 0.2 then 0. else 1. +. (10. *. Numerics.Prng.float rng))))
  in
  [ mk (); mk () ]

let test_key_outcome_reconstruction () =
  let seeds = Sampling.Seeds.create ~master:9 Sampling.Seeds.Independent in
  let taus = [| 15.; 20. |] in
  let samples = SA.sample_pps seeds ~taus two_instances in
  (* The estimator-side outcome must agree with the data-side outcome. *)
  List.iter
    (fun h ->
      let from_samples = SA.key_outcome samples h in
      let from_data =
        Sampling.Poisson.key_outcome_pps seeds ~taus ~instances:two_instances h
      in
      Alcotest.(check (list int))
        (Printf.sprintf "sampled set of key %d" h)
        (Sampling.Outcome.Pps.sampled from_data)
        (Sampling.Outcome.Pps.sampled from_samples))
    (I.union_keys two_instances)

let test_sampled_keys_sorted () =
  let seeds = Sampling.Seeds.create ~master:9 Sampling.Seeds.Independent in
  let samples = SA.sample_pps seeds ~taus:[| 15.; 20. |] two_instances in
  let ks = SA.sampled_keys samples in
  Alcotest.(check bool) "sorted" true (List.sort compare ks = ks)

let test_sum_agg_unbiased_l () =
  let truth = I.max_dominance two_instances in
  let taus = [| 15.; 20. |] in
  let var =
    assert_unbiased ~masters:300 ~truth (fun m ->
        let seeds = Sampling.Seeds.create ~master:m Sampling.Seeds.Independent in
        let samples = SA.sample_pps seeds ~taus two_instances in
        SA.estimate samples ~est:Estcore.Max_pps.l ~select:(fun _ -> true))
  in
  (* Empirical variance should be within a factor 2 of the exact one. *)
  let exact =
    SA.exact_variance ~taus ~instances:two_instances
      ~moments:(fun ~taus ~v -> Estcore.Exact.pps_r2_fast ~taus ~v Estcore.Max_pps.l)
      ~select:(fun _ -> true)
  in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.1f vs exact %.1f" var exact)
    true
    (var > exact /. 2. && var < exact *. 2.)

let test_sum_agg_unbiased_ht () =
  let truth = I.max_dominance two_instances in
  let taus = [| 15.; 20. |] in
  ignore
    (assert_unbiased ~masters:300 ~truth (fun m ->
         let seeds = Sampling.Seeds.create ~master:m Sampling.Seeds.Independent in
         let samples = SA.sample_pps seeds ~taus two_instances in
         SA.estimate samples ~est:Estcore.Ht.max_pps ~select:(fun _ -> true)))

let test_sum_agg_flat_bit_identity () =
  (* The flat path reuses one Evalbuf per sweep; the guarantee is not
     "close", it is the same bits as the reference estimators — over
     plain PPS samples and priority (bottom-k) samples, with and
     without a selection predicate. *)
  let check_samples msg samples =
    List.iter
      (fun (sname, select) ->
        List.iter
          (fun (ename, est, ref_est) ->
            let flat = SA.estimate_flat samples ~est ~select in
            let reference = SA.estimate samples ~est:ref_est ~select in
            if Int64.bits_of_float flat <> Int64.bits_of_float reference then
              Alcotest.failf "%s/%s/%s: flat %.17g vs reference %.17g" msg
                ename sname flat reference)
          [
            ("max_l", `Max_l, Estcore.Max_pps.l);
            ("max_ht", `Max_ht, Estcore.Ht.max_pps);
          ])
      [ ("all", (fun _ -> true)); ("even keys", fun h -> h mod 2 = 0) ]
  in
  List.iter
    (fun master ->
      let seeds = Sampling.Seeds.create ~master Sampling.Seeds.Independent in
      check_samples "pps" (SA.sample_pps seeds ~taus:[| 15.; 20. |] two_instances);
      check_samples "priority" (SA.sample_priority seeds ~k:40 two_instances))
    [ 3; 9; 27 ]

let test_exact_variance_additive () =
  let taus = [| 15.; 20. |] in
  let sel h = h mod 2 = 0 in
  let direct =
    List.fold_left
      (fun acc h ->
        if sel h then
          acc
          +. (Estcore.Exact.pps_r2_fast ~taus
                ~v:(I.values_of_key two_instances h)
                Estcore.Max_pps.l)
               .Estcore.Exact.var
        else acc)
      0.
      (I.union_keys two_instances)
  in
  check_float "additivity" direct
    (SA.exact_variance ~taus ~instances:two_instances
       ~moments:(fun ~taus ~v -> Estcore.Exact.pps_r2_fast ~taus ~v Estcore.Max_pps.l)
       ~select:sel)

let test_of_summaries () =
  let seeds = Sampling.Seeds.create ~master:9 Sampling.Seeds.Independent in
  (* Poisson summaries reproduce sample_pps exactly. *)
  let taus = [| 15.; 20. |] in
  let summaries =
    Array.of_list
      (List.mapi
         (fun i inst ->
           Sampling.Summary.summarize seeds
             (Sampling.Summary.Poisson_pps { tau = taus.(i) })
             ~instance:i inst)
         two_instances)
  in
  let via_summaries = SA.of_summaries seeds summaries in
  let direct = SA.sample_pps seeds ~taus two_instances in
  check_float ~eps:0. "same L estimate"
    (SA.estimate direct ~est:Estcore.Max_pps.l ~select:(fun _ -> true))
    (SA.estimate via_summaries ~est:Estcore.Max_pps.l ~select:(fun _ -> true));
  (* Bottom-k (PPS ranks) summaries reproduce sample_priority. *)
  let k = 40 in
  let bk =
    Array.of_list
      (List.mapi
         (fun i inst ->
           Sampling.Summary.summarize seeds
             (Sampling.Summary.Bottom_k { k; family = Sampling.Rank.PPS })
             ~instance:i inst)
         two_instances)
  in
  let via_bk = SA.of_summaries seeds bk in
  let direct_bk = SA.sample_priority seeds ~k two_instances in
  check_float ~eps:0. "same priority estimate"
    (SA.estimate direct_bk ~est:Estcore.Max_pps.l ~select:(fun _ -> true))
    (SA.estimate via_bk ~est:Estcore.Max_pps.l ~select:(fun _ -> true));
  (* VarOpt has no threshold: rejected. *)
  let vo =
    [|
      Sampling.Summary.summarize seeds (Sampling.Summary.Var_opt { k = 10 })
        ~instance:0 (List.hd two_instances);
    |]
  in
  Alcotest.check_raises "varopt rejected"
    (Invalid_argument "Sum_agg.of_summaries: summary exposes no PPS threshold")
    (fun () -> ignore (SA.of_summaries seeds vo))

(* ------------------------------------------------------------------ *)
(* Distinct                                                            *)
(* ------------------------------------------------------------------ *)

let set_pair = Workload.Setpairs.pair ~n:800 ~jaccard:0.5

let test_classify_partition () =
  let a, b = set_pair in
  let seeds = Sampling.Seeds.create ~master:4 Sampling.Seeds.Independent in
  let p = 0.3 in
  let s1 = DC.sample_binary seeds ~p ~instance:0 a in
  let s2 = DC.sample_binary seeds ~p ~instance:1 b in
  let c = DC.classify seeds ~p1:p ~p2:p ~s1 ~s2 ~select:(fun _ -> true) in
  (* The classes partition the sampled union. *)
  let module S = Set.Make (Int) in
  let total = S.cardinal (S.union (S.of_list s1) (S.of_list s2)) in
  Alcotest.(check int) "partition"
    total
    (c.DC.f1q + c.DC.fq1 + c.DC.f11 + c.DC.f10 + c.DC.f01)

let test_sample_binary_rule () =
  let a, _ = set_pair in
  let seeds = Sampling.Seeds.create ~master:4 Sampling.Seeds.Independent in
  let p = 0.3 in
  let s1 = DC.sample_binary seeds ~p ~instance:0 a in
  List.iter
    (fun h ->
      Alcotest.(check bool) "u <= p" true
        (Sampling.Seeds.seed seeds ~instance:0 ~key:h <= p))
    s1;
  (* And no qualifying key is missing. *)
  let expected =
    I.fold
      (fun h _ acc ->
        if Sampling.Seeds.seed seeds ~instance:0 ~key:h <= p then h :: acc else acc)
      a []
    |> List.rev
  in
  Alcotest.(check (list int)) "exact sample" expected s1

let test_distinct_unbiased () =
  let a, b = set_pair in
  let truth = float_of_int (Workload.Setpairs.union_size a b) in
  let p = 0.25 in
  let run est m =
    let seeds = Sampling.Seeds.create ~master:m Sampling.Seeds.Independent in
    let s1 = DC.sample_binary seeds ~p ~instance:0 a in
    let s2 = DC.sample_binary seeds ~p ~instance:1 b in
    let c = DC.classify seeds ~p1:p ~p2:p ~s1 ~s2 ~select:(fun _ -> true) in
    est c ~p1:p ~p2:p
  in
  ignore (assert_unbiased ~masters:400 ~truth (run DC.ht_estimate));
  ignore (assert_unbiased ~masters:400 ~truth (run DC.l_estimate));
  ignore (assert_unbiased ~masters:400 ~truth (run DC.u_estimate))

let test_distinct_variance_formulas () =
  let a, b = set_pair in
  let truth = float_of_int (Workload.Setpairs.union_size a b) in
  let j = I.jaccard a b in
  let p = 0.25 in
  let collect est =
    let acc = Numerics.Stats.Acc.create () in
    for m = 1 to 600 do
      let seeds = Sampling.Seeds.create ~master:m Sampling.Seeds.Independent in
      let s1 = DC.sample_binary seeds ~p ~instance:0 a in
      let s2 = DC.sample_binary seeds ~p ~instance:1 b in
      let c = DC.classify seeds ~p1:p ~p2:p ~s1 ~s2 ~select:(fun _ -> true) in
      Numerics.Stats.Acc.add acc (est c ~p1:p ~p2:p)
    done;
    Numerics.Stats.Acc.var acc
  in
  let eht = DC.var_ht ~d:truth ~p1:p ~p2:p in
  let el = DC.var_l ~d:truth ~jaccard:j ~p1:p ~p2:p in
  let vht = collect DC.ht_estimate in
  let vl = collect DC.l_estimate in
  Alcotest.(check bool)
    (Printf.sprintf "HT var %.0f ~ %.0f" vht eht)
    true
    (vht > eht *. 0.7 && vht < eht *. 1.3);
  Alcotest.(check bool)
    (Printf.sprintf "L var %.0f ~ %.0f" vl el)
    true
    (vl > el *. 0.7 && vl < el *. 1.3);
  Alcotest.(check bool) "L beats HT" true (el < eht)

let test_required_ht_formula () =
  let n = 1e6 and j = 0.5 and cv = 0.1 in
  let p = DC.Required.p_ht ~n ~jaccard:j ~cv in
  let nu = DC.Required.union_size ~n ~jaccard:j in
  (* Achieved cv at that p equals the target. *)
  let var = DC.var_ht ~d:nu ~p1:p ~p2:p in
  check_float ~eps:1e-6 "achieves target" cv (sqrt var /. nu);
  check_float "sample size" (p *. n) (DC.Required.sample_size ~p ~n)

let test_required_l_solves () =
  List.iter
    (fun j ->
      let n = 1e5 and cv = 0.1 in
      let p = DC.Required.p_l ~n ~jaccard:j ~cv in
      let nu = DC.Required.union_size ~n ~jaccard:j in
      let var = DC.var_l ~d:nu ~jaccard:j ~p1:p ~p2:p in
      check_float ~eps:1e-5 (Printf.sprintf "achieves cv at J=%.1f" j) cv
        (sqrt var /. nu))
    [ 0.; 0.5; 0.9; 1. ]

let test_required_l_cheaper () =
  let n = 1e6 and cv = 0.1 in
  List.iter
    (fun j ->
      Alcotest.(check bool) "L needs fewer samples" true
        (DC.Required.p_l ~n ~jaccard:j ~cv < DC.Required.p_ht ~n ~jaccard:j ~cv))
    [ 0.; 0.5; 0.9; 1. ]

(* ------------------------------------------------------------------ *)
(* Dominance                                                           *)
(* ------------------------------------------------------------------ *)

let test_dominance_unbiased () =
  let truth = I.max_dominance two_instances in
  let taus = [| 15.; 20. |] in
  ignore
    (assert_unbiased ~masters:300 ~truth (fun m ->
         let seeds = Sampling.Seeds.create ~master:m Sampling.Seeds.Independent in
         let samples = SA.sample_pps seeds ~taus two_instances in
         Aggregates.Dominance.max_dominance_l samples ~select:(fun _ -> true)))

let test_min_dominance_unbiased () =
  let truth = I.min_dominance two_instances in
  let taus = [| 15.; 20. |] in
  ignore
    (assert_unbiased ~masters:400 ~truth (fun m ->
         let seeds = Sampling.Seeds.create ~master:m Sampling.Seeds.Independent in
         let samples = SA.sample_pps seeds ~taus two_instances in
         Aggregates.Dominance.min_dominance_ht samples ~select:(fun _ -> true)))

let test_dominance_exact_variances () =
  let taus = [| 15.; 20. |] in
  let vht, vl =
    Aggregates.Dominance.exact_variances ~taus ~instances:two_instances
      ~select:(fun _ -> true)
  in
  Alcotest.(check bool) "L dominates HT in aggregate" true (vl < vht);
  Alcotest.(check bool) "positive" true (vl > 0.);
  check_float "normalized variance" (vl /. 4.)
    (Aggregates.Dominance.normalized_variance ~var:vl ~truth:2.)

let () =
  Alcotest.run "aggregates"
    [
      ( "dataset",
        [
          Alcotest.test_case "basics" `Quick test_dataset_basic;
          Alcotest.test_case "figure 5 (A)" `Quick test_figure5_panelA;
          Alcotest.test_case "figure 5 bottom-3" `Quick test_figure5_bottom3;
          Alcotest.test_case "figure 5 rank values" `Quick test_figure5_rank_values;
          Alcotest.test_case "consistent ranks" `Quick test_figure5_consistency;
          Alcotest.test_case "load from files" `Quick
            (fun () ->
              let p1 = Filename.temp_file "i1" ".txt" in
              let p2 = Filename.temp_file "i2" ".txt" in
              Sampling.Io.write_instance ~path:p1 (I.of_assoc [ (1, 2.) ]);
              Sampling.Io.write_instance ~path:p2 (I.of_assoc [ (2, 3.) ]);
              let ds = DS.load ~paths:[ p1; p2 ] in
              Sys.remove p1;
              Sys.remove p2;
              Alcotest.(check int) "two instances" 2 (DS.num_instances ds);
              check_float "value" 3. (I.value (DS.instance ds 1) 2));
        ] );
      ( "sum-agg",
        [
          Alcotest.test_case "outcome reconstruction" `Quick test_key_outcome_reconstruction;
          Alcotest.test_case "sampled keys sorted" `Quick test_sampled_keys_sorted;
          Alcotest.test_case "L unbiased + variance" `Slow test_sum_agg_unbiased_l;
          Alcotest.test_case "HT unbiased" `Slow test_sum_agg_unbiased_ht;
          Alcotest.test_case "flat path bit-identical" `Quick
            test_sum_agg_flat_bit_identity;
          Alcotest.test_case "variance additivity" `Quick test_exact_variance_additive;
          Alcotest.test_case "of_summaries" `Quick test_of_summaries;
        ] );
      ( "distinct",
        [
          Alcotest.test_case "classes partition" `Quick test_classify_partition;
          Alcotest.test_case "sample rule" `Quick test_sample_binary_rule;
          Alcotest.test_case "estimators unbiased" `Slow test_distinct_unbiased;
          Alcotest.test_case "variance formulas" `Slow test_distinct_variance_formulas;
          Alcotest.test_case "required p (HT)" `Quick test_required_ht_formula;
          Alcotest.test_case "required p (L)" `Quick test_required_l_solves;
          Alcotest.test_case "L cheaper than HT" `Quick test_required_l_cheaper;
        ] );
      ( "dominance",
        [
          Alcotest.test_case "max-dominance unbiased" `Slow test_dominance_unbiased;
          Alcotest.test_case "min-dominance unbiased" `Slow test_min_dominance_unbiased;
          Alcotest.test_case "exact variances" `Quick test_dominance_exact_variances;
        ] );
    ]
