(* Tests for the streaming summary service: protocol parsing, the
   sharded store (incremental summaries vs. the batch samplers,
   determinism across shard counts), snapshots, the query engine, and an
   end-to-end daemon session over TCP. *)

module I = Sampling.Instance
module P = Server.Protocol
module Store = Server.Store
module Engine = Server.Engine
module Snapshot = Server.Snapshot

let check_float ?(eps = 1e-9) msg expected actual =
  if not (Numerics.Special.float_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let check_request msg line expected =
  match P.parse line with
  | Ok req ->
      Alcotest.(check bool) msg true (req = expected)
  | Error e -> Alcotest.failf "%s: parse error: %s" msg e.Sampling.Io.message

let check_rejected msg line =
  match P.parse line with
  | Ok _ -> Alcotest.failf "%s: expected a parse error" msg
  | Error e ->
      Alcotest.(check bool)
        (msg ^ " carries a message")
        true
        (String.length e.Sampling.Io.message > 0)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_parse () =
  check_request "hello" "HELLO 1" (P.Hello 1);
  check_request "create bare" "CREATE h1"
    (P.Create { name = "h1"; tau = None; k = None; p = None });
  check_request "create params" "CREATE h.2-x tau=50.5 k=16 p=0.25"
    (P.Create { name = "h.2-x"; tau = Some 50.5; k = Some 16; p = Some 0.25 });
  check_request "ingest" "INGEST h1 17 3.5"
    (P.Ingest { name = "h1"; key = 17; weight = 3.5 });
  check_request "ingestn" "INGESTN h1 16"
    (P.Ingest_many { name = "h1"; count = 16 });
  check_request "ingestn at the cap"
    (Printf.sprintf "INGESTN h1 %d" P.max_batch)
    (P.Ingest_many { name = "h1"; count = P.max_batch });
  check_request "query max" "QUERY max h1 h2"
    (P.Query { kind = P.Max; names = [ "h1"; "h2" ] });
  check_request "query or" "QUERY or a b c"
    (P.Query { kind = P.Or; names = [ "a"; "b"; "c" ] });
  check_request "query distinct" "QUERY distinct h1 h2"
    (P.Query { kind = P.Distinct; names = [ "h1"; "h2" ] });
  check_request "query dominance" "QUERY dominance h1 h2"
    (P.Query { kind = P.Dominance; names = [ "h1"; "h2" ] });
  check_request "snapshot" "SNAPSHOT /tmp/s.snap" (P.Snapshot "/tmp/s.snap");
  check_request "stats" "STATS" P.Stats;
  check_request "flush" "FLUSH" P.Flush;
  check_request "quit" "QUIT" P.Quit;
  check_request "shutdown" "SHUTDOWN" P.Shutdown

let test_protocol_parse_errors () =
  check_rejected "empty" "";
  check_rejected "unknown verb" "BOGUS 1";
  check_rejected "hello wrong version" "HELLO 2";
  check_rejected "hello non-int" "HELLO one";
  check_rejected "create bad name" "CREATE bad name";
  check_rejected "create bad param" "CREATE h1 q=3";
  check_rejected "create tau nonpositive" "CREATE h1 tau=0";
  check_rejected "create p out of range" "CREATE h1 p=1.5";
  check_rejected "ingest missing weight" "INGEST h1 17";
  check_rejected "ingest nonpositive weight" "INGEST h1 17 0";
  check_rejected "ingest non-finite weight" "INGEST h1 17 inf";
  check_rejected "ingest bad key" "INGEST h1 x 1.0";
  check_rejected "ingestn zero count" "INGESTN h1 0";
  check_rejected "ingestn over the cap"
    (Printf.sprintf "INGESTN h1 %d" (P.max_batch + 1));
  check_rejected "ingestn non-int count" "INGESTN h1 x";
  check_rejected "ingestn missing count" "INGESTN h1";
  check_rejected "query unknown kind" "QUERY median h1 h2";
  check_rejected "query one name" "QUERY max h1";
  check_rejected "snapshot no path" "SNAPSHOT";
  check_rejected "stats trailing" "STATS now"

let test_protocol_json () =
  let line =
    P.ok_fields
      [ ("name", P.jstr "h \"1\""); ("estimate", P.jfloat 0.1);
        ("n", P.jint 42) ]
  in
  Alcotest.(check bool) "ok" true (P.json_ok line);
  Alcotest.(check (option string)) "int field" (Some "42")
    (P.json_field "n" line);
  (match P.json_float_field "estimate" line with
  | Some v -> check_float ~eps:0. "float survives %.17g" 0.1 v
  | None -> Alcotest.fail "estimate field missing");
  Alcotest.(check (option string)) "escaped string decodes" (Some "h \"1\"")
    (P.json_field "name" line);
  let err = P.error "bad \"input\"" in
  Alcotest.(check bool) "error not ok" false (P.json_ok err);
  Alcotest.(check bool) "greeting ok" true (P.json_ok P.greeting);
  Alcotest.(check (option string)) "greeting protocol"
    (Some (string_of_int P.version))
    (P.json_field "protocol" P.greeting);
  Alcotest.(check bool) "valid name" true (P.valid_name "a.B-2_c");
  Alcotest.(check bool) "invalid name" false (P.valid_name "a b")

let test_protocol_batch_framing () =
  let records = [| (17, 3.5); (0, 0x1.fffp-3); (4096, 1e9) |] in
  let payload = P.batch_payload ~name:"h1" records in
  (match String.split_on_char '\n' payload with
  | header :: body ->
      check_request "batch header" header
        (P.Ingest_many { name = "h1"; count = 3 });
      Alcotest.(check int) "one body line per record" 3 (List.length body);
      List.iteri
        (fun i line ->
          match P.parse_batch_record line with
          | Ok (key, weight) ->
              Alcotest.(check int) "key roundtrips" (fst records.(i)) key;
              check_float ~eps:0. "weight roundtrips bit-exactly"
                (snd records.(i)) weight
          | Error e -> Alcotest.failf "record %d: %s" i e.Sampling.Io.message)
        body
  | [] -> Alcotest.fail "empty payload");
  List.iter
    (fun line ->
      match P.parse_batch_record line with
      | Ok _ -> Alcotest.failf "bad record %S accepted" line
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "%S carries a message" line)
            true
            (String.length e.Sampling.Io.message > 0))
    [ ""; "7"; "7 0"; "7 -1"; "7 nan"; "x 1.0"; "7 1 extra" ];
  (match P.batch_payload ~name:"h1" [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty batch payload accepted");
  match P.batch_payload ~name:"h1" (Array.make (P.max_batch + 1) (1, 1.)) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized batch payload accepted"

(* Batch-body diagnostics carry the 1-based body line number, so a
   client can point at the offending record of a thousand-line INGESTN
   the same way single-line INGEST errors point at the request. *)
let test_protocol_batch_line_numbers () =
  List.iter
    (fun bad ->
      match P.parse_batch_record ~line:3 bad with
      | Ok _ -> Alcotest.failf "bad record %S accepted" bad
      | Error e ->
          Alcotest.(check int)
            (Printf.sprintf "%S reports its body line" bad)
            3 e.Sampling.Io.line;
          let rendered = Sampling.Io.parse_error_to_string e in
          Alcotest.(check bool)
            (Printf.sprintf "%S renders 'line 3:'" bad)
            true
            (String.length rendered >= 7 && String.sub rendered 0 7 = "line 3:"))
    [ "7 nan"; "7 inf"; "7 -1"; "7 0"; "x 1.0"; "" ];
  (* A good record parses identically whatever line it sits on. *)
  match P.parse_batch_record ~line:9 "7 0x1.8p1" with
  | Ok (key, weight) ->
      Alcotest.(check int) "key" 7 key;
      check_float ~eps:0. "weight" 3.0 weight
  | Error e -> Alcotest.failf "good record rejected: %s" e.Sampling.Io.message

(* retry_after_ms hints are advice, not authority: non-finite and
   negative hints fall back to jittered backoff, and a sane hint is
   clamped into the attempt's backoff envelope. *)
let test_client_hint_clamping () =
  let retry = Server.Client.default_retry in
  (* default: base 10ms, max 2000ms -> envelope 10*2^attempt up to 2000 *)
  let clamp = Server.Client.clamp_hint_ms retry in
  Alcotest.(check (option int)) "NaN discarded" None (clamp ~attempt:0 Float.nan);
  Alcotest.(check (option int)) "+inf discarded" None
    (clamp ~attempt:0 Float.infinity);
  Alcotest.(check (option int)) "-inf discarded" None
    (clamp ~attempt:0 Float.neg_infinity);
  Alcotest.(check (option int)) "negative discarded" None
    (clamp ~attempt:0 (-5.));
  Alcotest.(check (option int)) "in-envelope hint honored" (Some 5)
    (clamp ~attempt:0 5.);
  Alcotest.(check (option int)) "zero honored" (Some 0) (clamp ~attempt:0 0.);
  Alcotest.(check (option int)) "absurd hint clamped to the envelope"
    (Some 10) (clamp ~attempt:0 1e300);
  Alcotest.(check (option int)) "envelope grows with the attempt" (Some 80)
    (clamp ~attempt:3 1e9);
  Alcotest.(check (option int)) "envelope capped at max_delay_ms" (Some 2000)
    (clamp ~attempt:19 1e9);
  (* The jittered draw itself never leaves the envelope either. *)
  let rng = Numerics.Prng.create ~seed:7 () in
  for attempt = 0 to 12 do
    let ms = Server.Client.backoff_ms rng retry ~attempt in
    Alcotest.(check bool) "backoff within the envelope" true
      (ms >= 0 && ms <= retry.Server.Client.max_delay_ms)
  done

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let cfg_one =
  { Store.default_config with master = 99; flush_every = 1024 }

let ingest_exn st ~name ~key ~weight =
  match Store.ingest st ~name ~key ~weight with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ingest: %s" (Store.ingest_error_to_string e)

let create_exn st ~name ?tau ?k ?p () =
  match Store.create_instance st ~name ?tau ?k ?p () with
  | Ok i -> i
  | Error m -> Alcotest.failf "create_instance: %s" m

(* A deterministic stream with heavy key repetition, so the incremental
   summaries face in-place weight growth (the interesting case). *)
let feed_random st ~names ~records ~keys ~seed =
  let rng = Numerics.Prng.create ~seed () in
  let pick n = int_of_float (Numerics.Prng.float rng *. float_of_int n) in
  for _ = 1 to records do
    let name = List.nth names (pick (List.length names)) in
    let key = 1 + pick keys in
    let weight = 0.1 +. (Numerics.Prng.float rng *. 20.) in
    ingest_exn st ~name ~key ~weight
  done

let test_store_incremental_matches_batch () =
  let st = Store.create cfg_one in
  let inst = create_exn st ~name:"h1" ~tau:40. ~k:32 ~p:0.3 () in
  feed_random st ~names:[ "h1" ] ~records:4000 ~keys:500 ~seed:5;
  Store.flush st;
  Alcotest.(check int) "all records applied" 4000 (Store.records inst);
  Alcotest.(check int) "nothing pending" 0 (Store.pending st);
  let acc = Store.to_instance inst in
  let seeds = Store.seeds st in
  Alcotest.(check bool) "pps equals batch sampler" true
    (Store.pps_sample inst
    = Sampling.Poisson.pps_sample seeds ~instance:0 ~tau:40. acc);
  Alcotest.(check bool) "bottom-k equals batch sampler" true
    (Store.bottom_k inst
    = Sampling.Bottom_k.sample seeds ~family:Sampling.Rank.PPS ~instance:0
        ~k:32 acc);
  Alcotest.(check bool) "binary equals batch sampler" true
    (Store.binary_sample inst
    = Aggregates.Distinct.sample_binary seeds ~p:0.3 ~instance:0 acc);
  check_float "volume" (I.total acc) (Store.volume inst);
  Alcotest.(check int) "cardinality" (I.cardinality acc)
    (Store.cardinality inst)

let test_store_ingest_guards () =
  let st = Store.create cfg_one in
  ignore (create_exn st ~name:"h1" ());
  Alcotest.(check bool) "unknown instance" true
    (Result.is_error (Store.ingest st ~name:"nope" ~key:1 ~weight:1.));
  Alcotest.(check bool) "nonpositive weight" true
    (Result.is_error (Store.ingest st ~name:"h1" ~key:1 ~weight:0.));
  Alcotest.(check bool) "non-finite weight" true
    (Result.is_error (Store.ingest st ~name:"h1" ~key:1 ~weight:nan));
  Alcotest.(check bool) "duplicate name" true
    (Result.is_error
       (Result.map (fun _ -> ()) (Store.create_instance st ~name:"h1" ())))

let test_store_auto_flush () =
  let st = Store.create { cfg_one with flush_every = 64 } in
  ignore (create_exn st ~name:"h1" ());
  for k = 1 to 64 do
    ingest_exn st ~name:"h1" ~key:k ~weight:1.
  done;
  (* The 64th push crossed [flush_every]: everything was applied. *)
  Alcotest.(check int) "auto-flushed" 0 (Store.pending st)

(* The coordinated-summary determinism claim: summaries and answers are
   bit-identical whatever the shard / domain count. *)
let summaries_of st =
  Store.flush st;
  List.map
    (fun i ->
      ( Store.name i, Store.records i, Store.volume i,
        Store.pps_sample i, Store.bottom_k i, Store.binary_sample i,
        Store.varopt_entries i, Store.varopt_threshold i ))
    (Store.instances st)

(* What a snapshot replay preserves bit-for-bit: the query-facing
   summaries. VarOpt is rebuilt (fresh stream draw), [records] restarts
   at the key count, and [volume] is re-summed in key order (last-ulp
   FP difference) — all documented in {!Snapshot}. *)
let preserved_summaries_of st =
  Store.flush st;
  List.map
    (fun i ->
      ( Store.name i, Store.id i, Store.instance_config i,
        Store.cardinality i, Store.pps_sample i, Store.bottom_k i,
        Store.binary_sample i ))
    (Store.instances st)

let test_store_ingest_many () =
  (* Bit-identity: a batch is exactly its records applied in arrival
     order — the single-CAS publish must not reorder them. Repeated keys
     make order observable through the incremental summaries. *)
  let records =
    Array.init 300 (fun i -> ((i * 7 mod 97) + 1, 0.5 +. (float_of_int i /. 13.)))
  in
  let build batched =
    let st = Store.create cfg_one in
    ignore (create_exn st ~name:"h" ~tau:40. ~k:32 ~p:0.3 ());
    if batched then (
      match Store.ingest_many st ~name:"h" ~records with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "ingest_many: %s" (Store.ingest_error_to_string e))
    else
      Array.iter (fun (key, weight) -> ingest_exn st ~name:"h" ~key ~weight)
        records;
    st
  in
  Alcotest.(check bool) "batch bit-identical to singles" true
    (summaries_of (build true) = summaries_of (build false))

let test_store_ingest_many_guards () =
  let st =
    Store.create { cfg_one with flush_every = max_int; max_inflight = 10 }
  in
  ignore (create_exn st ~name:"h" ());
  let records n = Array.init n (fun i -> (i + 1, 1.)) in
  (* All-or-nothing admission: a batch that would overflow the mailbox
     budget is shed whole, with no side effect. *)
  (match Store.check_ingest_many st ~name:"h" ~records:(records 11) with
  | Error (Store.Overloaded { depth; limit }) ->
      Alcotest.(check int) "depth reported" 0 depth;
      Alcotest.(check int) "limit reported" 10 limit
  | _ -> Alcotest.fail "expected an overload shed");
  (match Store.ingest_many st ~name:"h" ~records:(records 11) with
  | Error (Store.Overloaded _) -> ()
  | _ -> Alcotest.fail "ingest_many should shed too");
  Alcotest.(check int) "nothing queued by a shed batch" 0 (Store.pending st);
  (* Rejections: empty batch, a bad weight anywhere in the batch, an
     unknown instance — all before anything is queued. *)
  Alcotest.(check bool) "empty batch rejected" true
    (Result.is_error (Store.ingest_many st ~name:"h" ~records:[||]));
  Alcotest.(check bool) "bad weight poisons the whole batch" true
    (Result.is_error
       (Store.ingest_many st ~name:"h" ~records:[| (1, 1.); (2, 0.) |]));
  Alcotest.(check bool) "unknown instance" true
    (Result.is_error (Store.ingest_many st ~name:"nope" ~records:(records 2)));
  Alcotest.(check int) "still nothing queued" 0 (Store.pending st);
  (* A batch that exactly fits the budget lands whole. *)
  (match Store.ingest_many st ~name:"h" ~records:(records 10) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fit batch: %s" (Store.ingest_error_to_string e));
  Alcotest.(check int) "all ten queued" 10 (Store.pending st)

let answers_of st =
  let e = Engine.create st in
  List.map
    (fun (kind, names) ->
      match Engine.query e kind names with
      | Ok s -> s
      | Error m -> Alcotest.failf "query: %s" m)
    [ (P.Max, [ "a"; "b" ]); (P.Or, [ "a"; "b" ]);
      (P.Distinct, [ "a"; "b" ]); (P.Dominance, [ "a"; "b" ]);
      (P.Distinct, [ "a"; "b"; "c" ]) ]

let test_store_shard_determinism () =
  let build shards =
    let pool = Numerics.Pool.create ~domains:shards () in
    let st =
      Store.create ~pool
        { Store.default_config with shards; master = 7; flush_every = 257 }
    in
    List.iter
      (fun name -> ignore (create_exn st ~name ~tau:30. ~k:24 ~p:0.4 ()))
      [ "a"; "b"; "c" ];
    feed_random st ~names:[ "a"; "b"; "c" ] ~records:6000 ~keys:300 ~seed:17;
    (st, pool)
  in
  let st1, p1 = build 1 in
  let reference_summaries = summaries_of st1 in
  let reference_answers = answers_of st1 in
  List.iter
    (fun shards ->
      let st, p = build shards in
      Alcotest.(check bool)
        (Printf.sprintf "summaries identical at %d shards" shards)
        true
        (summaries_of st = reference_summaries);
      Alcotest.(check (list string))
        (Printf.sprintf "answers identical at %d shards" shards)
        reference_answers (answers_of st);
      Numerics.Pool.shutdown p)
    [ 2; 4 ];
  Numerics.Pool.shutdown p1

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

let populated_store () =
  let st = Store.create cfg_one in
  ignore (create_exn st ~name:"h1" ~tau:40. ~k:16 ~p:0.3 ());
  ignore (create_exn st ~name:"h2" ~tau:60. ~k:16 ~p:0.2 ());
  feed_random st ~names:[ "h1"; "h2" ] ~records:2000 ~keys:250 ~seed:23;
  Store.flush st;
  st

let of_string_exn s =
  match Snapshot.of_string_r s with
  | Ok st -> st
  | Error e ->
      Alcotest.failf "snapshot parse: line %d: %s" e.Sampling.Io.line
        e.Sampling.Io.message

let test_snapshot_roundtrip () =
  let st = populated_store () in
  let s = Snapshot.to_string st in
  let st2 = of_string_exn s in
  Alcotest.(check string) "byte-identical round trip" s
    (Snapshot.to_string st2);
  Alcotest.(check bool) "query summaries identical after reload" true
    (preserved_summaries_of st = preserved_summaries_of st2)

let test_snapshot_requery_identical () =
  let st = populated_store () in
  let e = Engine.create st in
  let st2 = of_string_exn (Snapshot.to_string st) in
  let e2 = Engine.create st2 in
  List.iter
    (fun (kind, names) ->
      match (Engine.query e kind names, Engine.query e2 kind names) with
      | Ok a, Ok b ->
          Alcotest.(check string)
            (P.query_kind_name kind ^ " identical after reload")
            a b
      | _ -> Alcotest.fail "query failed")
    [ (P.Max, [ "h1"; "h2" ]); (P.Or, [ "h1"; "h2" ]);
      (P.Distinct, [ "h1"; "h2" ]); (P.Dominance, [ "h1"; "h2" ]) ]

let test_snapshot_guards () =
  let st = populated_store () in
  let s = Snapshot.to_string st in
  let lines = String.split_on_char '\n' s in
  let fail_parse msg s =
    match Snapshot.of_string_r s with
    | Ok _ -> Alcotest.failf "%s: expected a parse error" msg
    | Error e ->
        Alcotest.(check bool) (msg ^ " carries a message") true
          (String.length e.Sampling.Io.message > 0)
  in
  fail_parse "bad magic" ("bogus 1\n" ^ String.concat "\n" (List.tl lines));
  fail_parse "trailing garbage" (s ^ "junk\n");
  (* Drop the final [end] marker: truncated input. *)
  let no_end =
    let rec drop_last_end acc = function
      | [] -> List.rev acc
      | [ "end"; "" ] -> List.rev acc @ [ "" ]
      | x :: rest -> drop_last_end (x :: acc) rest
    in
    String.concat "\n" (drop_last_end [] lines)
  in
  fail_parse "truncated" no_end;
  (* Duplicate the first entry line of the first instance section. *)
  let dup =
    let rec dup_first_entry seen_instance = function
      | [] -> []
      | x :: rest ->
          if seen_instance && String.length x > 0 && x.[0] <> '#'
             && not (String.length x >= 3 && String.sub x 0 3 = "end")
          then x :: x :: rest
          else
            x
            :: dup_first_entry
                 (seen_instance
                 || String.length x >= 9 && String.sub x 0 9 = "instance ")
                 rest
    in
    String.concat "\n" (dup_first_entry false lines)
  in
  fail_parse "duplicate key" dup

let test_snapshot_file_io () =
  let st = populated_store () in
  let path = Filename.temp_file "store" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Snapshot.write st ~path with
      | Ok n -> Alcotest.(check int) "instances written" 2 n
      | Error m -> Alcotest.failf "write: %s" m);
      match Snapshot.load path with
      | Ok st2 ->
          Alcotest.(check bool)
            "query summaries identical after file reload" true
            (preserved_summaries_of st = preserved_summaries_of st2)
      | Error e -> Alcotest.failf "load: %s" e.Sampling.Io.message)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_session_verbs () =
  let e = Engine.create (Store.create cfg_one) in
  let resp, act = Engine.handle_line e "CREATE h1 tau=50 k=8 p=0.5" in
  Alcotest.(check bool) "create ok" true (P.json_ok resp);
  Alcotest.(check bool) "create continues" true (act = Engine.Continue);
  let resp, _ = Engine.handle_line e "CREATE h1" in
  Alcotest.(check bool) "duplicate create rejected" false (P.json_ok resp);
  let resp, _ = Engine.handle_line e "INGEST h1 3 2.5" in
  Alcotest.(check bool) "ingest ok" true (P.json_ok resp);
  (* Batched framing is connection-level: a bare INGESTN header reaching
     the request dispatcher (no body collection in front of it) is
     answered as an error, not silently dropped. *)
  let resp, act = Engine.handle_line e "INGESTN h1 4" in
  Alcotest.(check bool) "bare INGESTN header rejected" false (P.json_ok resp);
  Alcotest.(check bool) "ingestn error continues" true (act = Engine.Continue);
  let resp = Engine.handle_ingest_many e ~name:"h1" [| (5, 1.5); (6, 2.5) |] in
  Alcotest.(check bool) "handle_ingest_many ok" true (P.json_ok resp);
  Alcotest.(check (option string)) "ingested count" (Some "2")
    (P.json_field "ingested" resp);
  let resp, _ = Engine.handle_line e "FLUSH" in
  Alcotest.(check bool) "flush ok" true (P.json_ok resp);
  Alcotest.(check (option string)) "flush reports empty mailboxes"
    (Some "0")
    (P.json_field "pending" resp);
  let resp, _ = Engine.handle_line e "STATS" in
  Alcotest.(check bool) "stats ok" true (P.json_ok resp);
  let resp, _ = Engine.handle_line e "QUERY max h1 nope" in
  Alcotest.(check bool) "unknown instance rejected" false (P.json_ok resp);
  let resp, _ = Engine.handle_line e "NONSENSE" in
  Alcotest.(check bool) "malformed line answered" false (P.json_ok resp);
  let _, act = Engine.handle_line e "QUIT" in
  Alcotest.(check bool) "quit closes" true (act = Engine.Close);
  let _, act = Engine.handle_line e "SHUTDOWN" in
  Alcotest.(check bool) "shutdown stops" true (act = Engine.Stop);
  let resp, act = Engine.handle_line e "HELLO 1" in
  Alcotest.(check bool) "hello ok" true (P.json_ok resp);
  Alcotest.(check bool) "hello continues" true (act = Engine.Continue)

let float_field_exn msg field line =
  match P.json_float_field field line with
  | Some v -> v
  | None -> Alcotest.failf "%s: field %s missing in %s" msg field line

(* The machine-derived OR table under order^(L) must reproduce the
   closed-form OR^(L) estimate (that is what order_l encodes). *)
let test_engine_or_designer_matches_closed_form () =
  let st = populated_store () in
  let e = Engine.create st in
  match Engine.query e P.Or [ "h1"; "h2" ] with
  | Error m -> Alcotest.failf "or query: %s" m
  | Ok resp ->
      Alcotest.(check (option string)) "designer provenance"
        (Some "designer")
        (P.json_field "provenance" resp);
      let est = float_field_exn "or" "estimate" resp in
      let closed = float_field_exn "or" "closed_form" resp in
      check_float "table equals closed form" closed est;
      Alcotest.(check (option string)) "no degradations" (Some "0")
        (P.json_field "degradations" resp)

(* The engine now serves [QUERY or] through the flattened 16-cell
   Or_weighted table. The flat walk must return the same bits as the
   hashtable oracle it replaced, on every (ids, sampled-sets) shape —
   and its per-key reads must allocate nothing. *)
let test_engine_or_flat_matches_table () =
  let p1 = 0.4 and p2 = 0.7 in
  match Engine.or_flat_tables ~p1 ~p2 with
  | Error m -> Alcotest.failf "derive: %s" m
  | Ok (table, flat) ->
      List.iter
        (fun master ->
          let seeds =
            Sampling.Seeds.create ~master Sampling.Seeds.Independent
          in
          List.iter
            (fun ((id1, id2) as ids) ->
              (* Well-formed binary outcomes only: key h is sampled in an
                 instance iff its value there is 1 AND its recomputed seed
                 is below p — the oracle's table has no rows for anything
                 else (and the engine can never produce anything else). *)
              let keys = List.init 12 (fun i -> i + 1) in
              let sampled id p v1 =
                List.filter
                  (fun h ->
                    v1 h
                    && Sampling.Seeds.seed seeds ~instance:id ~key:h <= p)
                  keys
              in
              let s1 = sampled id1 p1 (fun h -> h mod 2 = 0) in
              let s2 = sampled id2 p2 (fun h -> h mod 3 <> 0) in
              List.iter
                (fun (s1, s2) ->
                  let oracle =
                    Engine.eval_or_table table seeds ~ids ~p1 ~p2 ~s1 ~s2
                  in
                  let served =
                    Engine.eval_or_flat flat seeds ~ids ~p1 ~p2 ~s1 ~s2
                  in
                  if Int64.bits_of_float oracle <> Int64.bits_of_float served
                  then
                    Alcotest.failf
                      "flat OR serving differs: oracle %.17g vs flat %.17g"
                      oracle served)
                [ ([], []); (s1, []); ([], s2); (s1, s2) ])
            [ (0, 1); (3, 8) ])
        [ 7; 11; 13 ];
      let acc = Float.Array.make 1 0. in
      let code =
        Estcore.Or_weighted.Table.code ~b0:true ~b1:false ~s0:true ~s1:false
      in
      Allocheck.assert_no_alloc "Or_weighted.Table.eval_into" (fun () ->
          Estcore.Or_weighted.Table.eval_into flat ~code ~dst:acc ~di:0);
      Allocheck.assert_no_alloc "Or_weighted.Table.add_into" (fun () ->
          Estcore.Or_weighted.Table.add_into flat ~code acc)

(* Regression: [Sum_agg.key_outcome] must recompute seeds at the
   samples' recorded instance ids, not their array positions — live
   server instances are not numbered 0..r-1. *)
let test_sum_agg_recorded_ids () =
  let seeds = Sampling.Seeds.create ~master:31 Sampling.Seeds.Independent in
  let a = I.of_assoc [ (1, 50.); (2, 3.); (5, 20.) ] in
  let b = I.of_assoc [ (1, 8.); (3, 45.); (5, 12.) ] in
  let tau = 25. in
  let ps =
    {
      Aggregates.Sum_agg.seeds;
      taus = [| tau; tau |];
      samples =
        [|
          Sampling.Poisson.pps_sample seeds ~instance:3 ~tau a;
          Sampling.Poisson.pps_sample seeds ~instance:7 ~tau b;
        |];
    }
  in
  List.iter
    (fun h ->
      let o = Aggregates.Sum_agg.key_outcome ps h in
      check_float ~eps:0. "seed recomputed at id 3"
        (Sampling.Seeds.seed seeds ~instance:3 ~key:h)
        o.Sampling.Outcome.Pps.seeds.(0);
      check_float ~eps:0. "seed recomputed at id 7"
        (Sampling.Seeds.seed seeds ~instance:7 ~key:h)
        o.Sampling.Outcome.Pps.seeds.(1))
    (I.union_keys [ a; b ])

(* ------------------------------------------------------------------ *)
(* Similarity queries (the Monotone L* engine behind QUERY jaccard/...) *)
(* ------------------------------------------------------------------ *)

let shared_store () =
  let st =
    Store.create
      {
        Store.default_config with
        master = 808;
        flush_every = 1024;
        mode = Sampling.Seeds.Shared;
      }
  in
  ignore (create_exn st ~name:"h1" ~tau:40. ~k:16 ~p:0.3 ());
  ignore (create_exn st ~name:"h2" ~tau:60. ~k:16 ~p:0.2 ());
  feed_random st ~names:[ "h1"; "h2" ] ~records:2000 ~keys:250 ~seed:23;
  Store.flush st;
  st

(* The served estimates must equal the reference Similarity.sums run on
   the store's own samples — the engine's flat path is just a faster
   spelling of that sum. *)
let test_engine_similarity_queries () =
  let st = shared_store () in
  let e = Engine.create st in
  let insts =
    List.map
      (fun n ->
        match Store.find st n with
        | Some i -> i
        | None -> Alcotest.failf "instance %s missing" n)
      [ "h1"; "h2" ]
  in
  let ps =
    {
      Aggregates.Sum_agg.seeds = Store.seeds st;
      taus =
        Array.of_list
          (List.map (fun i -> (Store.instance_config i).Store.tau) insts);
      samples = Array.of_list (List.map Store.pps_sample insts);
    }
  in
  let s = Aggregates.Similarity.sums ps ~select:(fun _ -> true) in
  Alcotest.(check bool) "data produces a real union" true
    (s.Aggregates.Similarity.union_hat > 0.);
  List.iter
    (fun (kind, name, expected) ->
      match Engine.query e kind [ "h1"; "h2" ] with
      | Error m -> Alcotest.failf "%s query: %s" name m
      | Ok resp ->
          Alcotest.(check (option string))
            (name ^ " estimator name")
            (Some (name ^ "-lstar"))
            (P.json_field "estimator" resp);
          check_float ~eps:0.
            (name ^ " equals reference sums")
            expected
            (float_field_exn name "estimate" resp);
          check_float ~eps:0. (name ^ " union field")
            s.Aggregates.Similarity.union_hat
            (float_field_exn name "union" resp);
          check_float ~eps:0.
            (name ^ " intersection field")
            s.Aggregates.Similarity.inter_hat
            (float_field_exn name "intersection" resp))
    [
      (P.Union, "union", s.Aggregates.Similarity.union_hat);
      (P.Intersection, "intersection", s.Aggregates.Similarity.inter_hat);
      (P.Jaccard, "jaccard", Aggregates.Similarity.jaccard s);
      (P.L1, "l1", Aggregates.Similarity.l1 s);
    ]

(* Every refusal on the similarity path is a structured bad_request: the
   independent-seed store (where the estimate would be silently biased),
   the wrong l1 arity, unknown instances, and unknown query kinds at the
   parse layer. None of them may drop the session. *)
let test_engine_similarity_guards () =
  let bad_request resp =
    Alcotest.(check bool) "answered not-ok" false (P.json_ok resp);
    Alcotest.(check (option string)) "kind is bad_request"
      (Some "bad_request")
      (P.json_field "kind" resp)
  in
  let indep = Engine.create (populated_store ()) in
  let resp, act = Engine.handle_line indep "QUERY jaccard h1 h2" in
  bad_request resp;
  Alcotest.(check bool) "session continues" true (act = Engine.Continue);
  let shared = Engine.create (shared_store ()) in
  (match Engine.query shared P.Jaccard [ "h1"; "h2" ] with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "shared-store jaccard refused: %s" m);
  let resp, _ = Engine.handle_line shared "QUERY l1 h1 h2 h1" in
  bad_request resp;
  let resp, _ = Engine.handle_line shared "QUERY union h1 nope" in
  bad_request resp;
  let resp, _ = Engine.handle_line shared "QUERY frobnicate h1 h2" in
  bad_request resp;
  let resp, _ = Engine.handle_line shared "NONSENSE" in
  bad_request resp

(* ------------------------------------------------------------------ *)
(* End to end: daemon + client over TCP                                *)
(* ------------------------------------------------------------------ *)

let request_exn c line =
  match Server.Client.request c line with
  | Ok resp -> resp
  | Error m -> Alcotest.failf "request %S: %s" line m

let ok_exn c line =
  let resp = request_exn c line in
  if not (P.json_ok resp) then
    Alcotest.failf "request %S answered %s" line resp;
  resp

let e2e_params =
  { Workload.Traffic.default with n_shared = 4000; n_only = 2000; seed = 71 }

let e2e_master = 4242
let e2e_tau = 500.
let e2e_p = 0.2

(* Batch reference answers: materialize the same two hours, sample them
   with the same recorded seeds, and run the offline pipeline. *)
let batch_reference () =
  let a =
    Workload.Traffic.Stream.to_instance
      (Workload.Traffic.Stream.create ~hour:1 e2e_params)
  in
  let b =
    Workload.Traffic.Stream.to_instance
      (Workload.Traffic.Stream.create ~hour:2 e2e_params)
  in
  let seeds =
    Sampling.Seeds.create ~master:e2e_master Sampling.Seeds.Independent
  in
  let ps =
    {
      Aggregates.Sum_agg.seeds;
      taus = [| e2e_tau; e2e_tau |];
      samples =
        [|
          Sampling.Poisson.pps_sample seeds ~instance:0 ~tau:e2e_tau a;
          Sampling.Poisson.pps_sample seeds ~instance:1 ~tau:e2e_tau b;
        |];
    }
  in
  let select = fun (_ : int) -> true in
  let max_l =
    Aggregates.Sum_agg.estimate ps ~est:Estcore.Max_pps.l ~select
  in
  let s1 = Aggregates.Distinct.sample_binary seeds ~p:e2e_p ~instance:0 a in
  let s2 = Aggregates.Distinct.sample_binary seeds ~p:e2e_p ~instance:1 b in
  let classes =
    Aggregates.Distinct.classify seeds ~p1:e2e_p ~p2:e2e_p ~s1 ~s2 ~select
  in
  let distinct_l =
    Aggregates.Distinct.l_estimate classes ~p1:e2e_p ~p2:e2e_p
  in
  (max_l, distinct_l)

let test_e2e_daemon () =
  let st =
    Store.create
      { Store.default_config with master = e2e_master; flush_every = 4096 }
  in
  let daemon = Server.Daemon.start (Engine.create st) in
  let connect () =
    match Server.Client.connect_tcp ~port:(Server.Daemon.port daemon) () with
    | Ok c -> c
    | Error m -> Alcotest.failf "connect: %s" m
  in
  let c = connect () in
  ignore (ok_exn c "HELLO 1");
  let create_line name =
    Printf.sprintf "CREATE %s tau=%g k=256 p=%g" name e2e_tau e2e_p
  in
  ignore (ok_exn c (create_line "h1"));
  ignore (ok_exn c (create_line "h2"));
  (* A malformed line and a bad ingest answer with errors and leave the
     session usable. *)
  Alcotest.(check bool) "malformed line answered" false
    (P.json_ok (request_exn c "NONSENSE"));
  Alcotest.(check bool) "bad weight rejected" false
    (P.json_ok (request_exn c "INGEST h1 1 -3"));
  (* Replay both hours — 12,000 records across the two instances. *)
  let ingest name stream =
    Workload.Traffic.Stream.fold
      (fun n ~key ~weight ->
        ignore (ok_exn c (Printf.sprintf "INGEST %s %d %.17g" name key weight));
        n + 1)
      0 stream
  in
  let n1 = ingest "h1" (Workload.Traffic.Stream.create ~hour:1 e2e_params) in
  let n2 = ingest "h2" (Workload.Traffic.Stream.create ~hour:2 e2e_params) in
  Alcotest.(check bool) "at least 10k records" true (n1 + n2 >= 10_000);
  let q_max = ok_exn c "QUERY max h1 h2" in
  let q_or = ok_exn c "QUERY or h1 h2" in
  let q_distinct = ok_exn c "QUERY distinct h1 h2" in
  let max_l, distinct_l = batch_reference () in
  check_float "server max equals batch pipeline" max_l
    (float_field_exn "max" "estimate" q_max);
  check_float "server or equals batch pipeline" distinct_l
    (float_field_exn "or" "estimate" q_or);
  check_float "server distinct equals batch pipeline" distinct_l
    (float_field_exn "distinct" "estimate" q_distinct);
  let stats = ok_exn c "STATS" in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec find i =
      i + n <= h && (String.sub hay i n = needle || find (i + 1))
    in
    find 0
  in
  Alcotest.(check bool) "stats mentions both instances" true
    (contains "\"h1\"" stats && contains "\"h2\"" stats);
  (* Snapshot, stop the daemon, reload warm, and re-query: answers must
     be identical. *)
  let path = Filename.temp_file "daemon" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      ignore (ok_exn c ("SNAPSHOT " ^ path));
      ignore (ok_exn c "SHUTDOWN");
      Server.Client.close c;
      Server.Daemon.join daemon;
      let st2 =
        match Snapshot.load path with
        | Ok st2 -> st2
        | Error e -> Alcotest.failf "reload: %s" e.Sampling.Io.message
      in
      let daemon2 = Server.Daemon.start (Engine.create st2) in
      let c2 =
        match
          Server.Client.connect_tcp ~port:(Server.Daemon.port daemon2) ()
        with
        | Ok c2 -> c2
        | Error m -> Alcotest.failf "reconnect: %s" m
      in
      List.iter
        (fun (q, before) ->
          Alcotest.(check string)
            (q ^ " identical after warm restart")
            before (ok_exn c2 q))
        [ ("QUERY max h1 h2", q_max); ("QUERY or h1 h2", q_or);
          ("QUERY distinct h1 h2", q_distinct) ];
      ignore (ok_exn c2 "SHUTDOWN");
      Server.Client.close c2;
      Server.Daemon.join daemon2)

(* ------------------------------------------------------------------ *)
(* Event loop: concurrency, backpressure, batching                     *)
(* ------------------------------------------------------------------ *)

(* 64 concurrent connections (8 domains x 8 sockets, interleaved at the
   select loop) must leave the store bit-identical to one sequential
   client replaying the same per-connection streams: every connection
   owns its instance, so per-instance arrival order — the only order
   that matters — is fixed by construction, and the event loop must not
   corrupt, drop or cross-deliver a single line. *)
let test_e2e_concurrent_identical () =
  let n_conns = 64 and n_domains = 8 and per_conn = 120 in
  let stream cid =
    let rng = Numerics.Prng.create ~seed:(900 + cid) () in
    Array.init per_conn (fun _ ->
        (1 + Numerics.Prng.int rng 512, 0.25 +. (Numerics.Prng.float rng *. 8.)))
  in
  let run ~concurrent =
    let st =
      Store.create
        { Store.default_config with master = 77; flush_every = 4096 }
    in
    let daemon = Server.Daemon.start (Engine.create st) in
    let port = Server.Daemon.port daemon in
    let connect () =
      match Server.Client.connect_tcp ~port () with
      | Ok c -> c
      | Error m -> Alcotest.failf "connect: %s" m
    in
    (* Instance ids are assigned in creation order, so all creation goes
       through one setup connection before any traffic. *)
    let setup = connect () in
    for cid = 0 to n_conns - 1 do
      ignore
        (ok_exn setup (Printf.sprintf "CREATE c%d tau=200 k=64 p=0.15" cid))
    done;
    let send c cid (key, weight) =
      ignore (ok_exn c (Printf.sprintf "INGEST c%d %d %h" cid key weight))
    in
    (if concurrent then
       let worker d () =
         let width = n_conns / n_domains in
         let conns =
           List.init width (fun j ->
               let cid = (d * width) + j in
               (connect (), cid, stream cid))
         in
         for r = 0 to per_conn - 1 do
           List.iter (fun (c, cid, recs) -> send c cid recs.(r)) conns
         done;
         List.iter
           (fun (c, _, _) ->
             ignore (ok_exn c "QUIT");
             Server.Client.close c)
           conns
       in
       List.init n_domains (fun d -> Domain.spawn (worker d))
       |> List.iter Domain.join
     else
       for cid = 0 to n_conns - 1 do
         let c = connect () in
         Array.iter (send c cid) (stream cid);
         ignore (ok_exn c "QUIT");
         Server.Client.close c
       done);
    ignore (ok_exn setup "FLUSH");
    let answers =
      List.init (n_conns / 2) (fun i ->
          ok_exn setup
            (Printf.sprintf "QUERY max c%d c%d" (2 * i) ((2 * i) + 1)))
    in
    ignore (ok_exn setup "SHUTDOWN");
    Server.Client.close setup;
    Server.Daemon.join daemon;
    answers
  in
  Alcotest.(check (list string))
    "64 concurrent connections bit-identical to sequential"
    (run ~concurrent:false) (run ~concurrent:true)

(* A reader that stops draining its socket must not stall anyone else:
   once its queued responses cross the high-water mark the loop parks
   that connection (stops reading more requests from it) while other
   sessions keep getting answers — and every queued response is still
   delivered, in order, when the slow reader catches up. *)
let test_e2e_slow_reader_backpressure () =
  let st =
    Store.create { Store.default_config with master = 5; flush_every = 4096 }
  in
  let config =
    { Server.Daemon.default_config with Server.Daemon.write_highwater = 2048 }
  in
  let daemon = Server.Daemon.start ~config (Engine.create st) in
  let port = Server.Daemon.port daemon in
  let setup =
    match Server.Client.connect_tcp ~port () with
    | Ok c -> c
    | Error m -> Alcotest.failf "connect: %s" m
  in
  (* Enough instances that one STATS response dwarfs the high-water
     mark. *)
  for i = 1 to 48 do
    ignore (ok_exn setup (Printf.sprintf "CREATE s%d tau=50 k=16 p=0.2" i))
  done;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let slow = P.Conn.of_fd fd in
  (match P.Conn.input_line_opt slow with
  | Some g when P.json_ok g -> ()
  | _ -> Alcotest.fail "greeting");
  let n_requests = 400 in
  for _ = 1 to n_requests do
    P.Conn.output_line slow "STATS"
  done;
  (* The slow reader's responses are now queued (kernel buffers plus the
     daemon's bounded write queue); a well-behaved session still gets
     every answer. *)
  for _ = 1 to 25 do
    ignore (ok_exn setup "STATS")
  done;
  (* Catching up delivers every queued response, none dropped or torn. *)
  for i = 1 to n_requests do
    match P.Conn.input_line_opt slow with
    | Some resp when P.json_ok resp -> ()
    | Some resp -> Alcotest.failf "response %d not ok: %s" i resp
    | None -> Alcotest.failf "connection dropped after %d responses" (i - 1)
  done;
  ignore (ok_exn setup "SHUTDOWN");
  P.Conn.close slow;
  Server.Client.close setup;
  Server.Daemon.join daemon

(* Batched and line-at-a-time ingest land bit-identical state: same
   records, same arrival order, one frame vs many. Covers chunking too —
   the stream is longer than Protocol.max_batch. *)
let test_e2e_client_batch_identical () =
  let n_records = (2 * P.max_batch) + 300 in
  let recs seed =
    let rng = Numerics.Prng.create ~seed () in
    Array.init n_records (fun _ ->
        (1 + Numerics.Prng.int rng 1024, 0.5 +. (Numerics.Prng.float rng *. 20.)))
  in
  let run ~batched =
    let st =
      Store.create
        { Store.default_config with master = 909; flush_every = 8192 }
    in
    let daemon = Server.Daemon.start (Engine.create st) in
    let c =
      match Server.Client.connect_tcp ~port:(Server.Daemon.port daemon) () with
      | Ok c -> c
      | Error m -> Alcotest.failf "connect: %s" m
    in
    List.iter
      (fun name ->
        ignore (ok_exn c (Printf.sprintf "CREATE %s tau=300 k=96 p=0.1" name)))
      [ "a"; "b" ];
    List.iter
      (fun (name, seed) ->
        if batched then begin
          match Server.Client.ingest_many c ~name (recs seed) with
          | Ok resp ->
              if not (P.json_ok resp) then
                Alcotest.failf "ingest_many answered %s" resp;
              Alcotest.(check (option string)) "total ingested reported"
                (Some (string_of_int n_records))
                (P.json_field "ingested" resp)
          | Error m -> Alcotest.failf "ingest_many: %s" m
        end
        else
          Array.iter
            (fun (key, weight) ->
              ignore
                (ok_exn c (Printf.sprintf "INGEST %s %d %h" name key weight)))
            (recs seed))
      [ ("a", 31); ("b", 32) ];
    ignore (ok_exn c "FLUSH");
    let answers =
      List.map
        (fun q -> ok_exn c (Printf.sprintf "QUERY %s a b" q))
        [ "max"; "or"; "distinct"; "dominance" ]
    in
    ignore (ok_exn c "SHUTDOWN");
    Server.Client.close c;
    Server.Daemon.join daemon;
    answers
  in
  Alcotest.(check (list string)) "batched ingest bit-identical to lines"
    (run ~batched:false) (run ~batched:true)

(* The daemon's INGESTN rejection points at the offending body line by
   number — and the whole batch is refused (all-or-nothing), leaving the
   session usable. *)
let test_e2e_batch_line_diagnostic () =
  let st =
    Store.create { Store.default_config with master = 13; flush_every = 4096 }
  in
  let daemon = Server.Daemon.start (Engine.create st) in
  let port = Server.Daemon.port daemon in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let conn = P.Conn.of_fd fd in
  (match P.Conn.input_line_opt conn with
  | Some g when P.json_ok g -> ()
  | _ -> Alcotest.fail "greeting");
  let roundtrip line =
    P.Conn.output_line conn line;
    match P.Conn.input_line_opt conn with
    | Some resp -> resp
    | None -> Alcotest.fail "connection dropped"
  in
  if not (P.json_ok (roundtrip "CREATE h1 tau=50 k=16 p=0.2")) then
    Alcotest.fail "create failed";
  (* Third body line is bad: the response must say "line 3". *)
  P.Conn.output_line conn "INGESTN h1 4";
  P.Conn.output_line conn "1 0x1p0";
  P.Conn.output_line conn "2 0x1p0";
  P.Conn.output_line conn "3 nan";
  let resp = roundtrip "4 0x1p0" in
  Alcotest.(check bool) "bad batch rejected" false (P.json_ok resp);
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec find i = i + n <= h && (String.sub hay i n = needle || find (i + 1)) in
    find 0
  in
  Alcotest.(check bool) "diagnostic names body line 3" true
    (contains "line 3" resp);
  (* Nothing of the batch landed, and the session still works. *)
  let stats = roundtrip "STATS" in
  Alcotest.(check bool) "stats ok after rejected batch" true (P.json_ok stats);
  Alcotest.(check bool) "no record admitted from the bad batch" true
    (contains "\"records\":0" stats);
  ignore (roundtrip "SHUTDOWN");
  P.Conn.close conn;
  Server.Daemon.join daemon

(* Regression: an unknown verb or query kind over the wire must be
   answered with a structured bad_request on the same connection — a
   typo must not cost the session. *)
let test_e2e_unknown_verb_keeps_connection () =
  let st =
    Store.create { Store.default_config with master = 21; flush_every = 4096 }
  in
  let daemon = Server.Daemon.start (Engine.create st) in
  let port = Server.Daemon.port daemon in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let conn = P.Conn.of_fd fd in
  (match P.Conn.input_line_opt conn with
  | Some g when P.json_ok g -> ()
  | _ -> Alcotest.fail "greeting");
  let roundtrip line =
    P.Conn.output_line conn line;
    match P.Conn.input_line_opt conn with
    | Some resp -> resp
    | None -> Alcotest.failf "connection dropped after %S" line
  in
  if not (P.json_ok (roundtrip "CREATE h1 tau=50 k=16 p=0.2")) then
    Alcotest.fail "create failed";
  List.iter
    (fun line ->
      let resp = roundtrip line in
      Alcotest.(check bool) (line ^ " answered not-ok") false (P.json_ok resp);
      Alcotest.(check (option string)) (line ^ " kind") (Some "bad_request")
        (P.json_field "kind" resp))
    [ "FROBNICATE now"; "QUERY frobnicate h1"; "QUERY jaccard h1 h1" ];
  (* jaccard above: independent-seed store — same structured refusal. *)
  let stats = roundtrip "STATS" in
  Alcotest.(check bool) "session still serves after bad requests" true
    (P.json_ok stats);
  ignore (roundtrip "SHUTDOWN");
  P.Conn.close conn;
  Server.Daemon.join daemon

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse" `Quick test_protocol_parse;
          Alcotest.test_case "parse errors" `Quick test_protocol_parse_errors;
          Alcotest.test_case "json assembly and inspection" `Quick
            test_protocol_json;
          Alcotest.test_case "batch payload framing" `Quick
            test_protocol_batch_framing;
          Alcotest.test_case "batch diagnostics carry line numbers" `Quick
            test_protocol_batch_line_numbers;
          Alcotest.test_case "retry hint validation and clamping" `Quick
            test_client_hint_clamping;
        ] );
      ( "store",
        [
          Alcotest.test_case "incremental summaries equal batch samplers"
            `Quick test_store_incremental_matches_batch;
          Alcotest.test_case "ingest guards" `Quick test_store_ingest_guards;
          Alcotest.test_case "auto flush" `Quick test_store_auto_flush;
          Alcotest.test_case "batch ingest bit-identical to singles" `Quick
            test_store_ingest_many;
          Alcotest.test_case "batch admission all-or-nothing" `Quick
            test_store_ingest_many_guards;
          Alcotest.test_case "bit-identical across 1/2/4 shards" `Slow
            test_store_shard_determinism;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "byte round trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "re-query identical" `Quick
            test_snapshot_requery_identical;
          Alcotest.test_case "strict parser guards" `Quick
            test_snapshot_guards;
          Alcotest.test_case "file write and load" `Quick
            test_snapshot_file_io;
        ] );
      ( "engine",
        [
          Alcotest.test_case "session verbs" `Quick test_engine_session_verbs;
          Alcotest.test_case "or table equals closed form" `Quick
            test_engine_or_designer_matches_closed_form;
          Alcotest.test_case "flat OR serving bit-identical + alloc-free"
            `Quick test_engine_or_flat_matches_table;
          Alcotest.test_case "sum_agg recomputes seeds at recorded ids"
            `Quick test_sum_agg_recorded_ids;
          Alcotest.test_case "similarity queries equal reference sums" `Quick
            test_engine_similarity_queries;
          Alcotest.test_case "similarity refusals are structured bad_request"
            `Quick test_engine_similarity_guards;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "daemon over tcp" `Slow test_e2e_daemon;
          Alcotest.test_case "64 concurrent connections bit-identical" `Slow
            test_e2e_concurrent_identical;
          Alcotest.test_case "slow reader does not stall others" `Quick
            test_e2e_slow_reader_backpressure;
          Alcotest.test_case "batched client bit-identical to lines" `Slow
            test_e2e_client_batch_identical;
          Alcotest.test_case "batch rejection names the body line" `Quick
            test_e2e_batch_line_diagnostic;
          Alcotest.test_case "unknown verbs answer bad_request, keep session"
            `Quick test_e2e_unknown_verb_keeps_connection;
        ] );
    ]
