module IMap = Map.Make (Int)

type t = float IMap.t

let empty = IMap.empty

let of_assoc pairs =
  List.fold_left
    (fun m (k, v) ->
      if v < 0. then invalid_arg "Instance.of_assoc: negative value";
      if v = 0. then m
      else
        IMap.update k (function None -> Some v | Some v0 -> Some (v0 +. v)) m)
    IMap.empty pairs

let of_keys ks = of_assoc (List.map (fun k -> (k, 1.)) ks)
let value t h = match IMap.find_opt h t with None -> 0. | Some v -> v
let mem t h = IMap.mem h t
let cardinality t = IMap.cardinal t
let total t = IMap.fold (fun _ v acc -> acc +. v) t 0.
let keys t = IMap.fold (fun k _ acc -> k :: acc) t [] |> List.rev
let fold f t init = IMap.fold f t init
let iter f t = IMap.iter f t

let union_keys ts =
  let set =
    List.fold_left
      (fun acc t -> IMap.fold (fun k _ s -> IMap.add k () s) t acc)
      IMap.empty ts
  in
  IMap.fold (fun k () acc -> k :: acc) set [] |> List.rev

let values_of_key ts h = Array.of_list (List.map (fun t -> value t h) ts)

let max_dominance ts =
  List.fold_left
    (fun acc h ->
      acc +. Array.fold_left Float.max 0. (values_of_key ts h))
    0. (union_keys ts)

let min_dominance ts =
  List.fold_left
    (fun acc h ->
      acc +. Array.fold_left Float.min infinity (values_of_key ts h))
    0. (union_keys ts)

let l1_distance a b =
  List.fold_left
    (fun acc h -> acc +. abs_float (value a h -. value b h))
    0.
    (union_keys [ a; b ])

let distinct_count ts = List.length (union_keys ts)

let jaccard a b =
  let u = union_keys [ a; b ] in
  let inter = List.length (List.filter (fun h -> mem a h && mem b h) u) in
  if u = [] then 1. else float_of_int inter /. float_of_int (List.length u)
