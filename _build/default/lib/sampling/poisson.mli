(** Poisson sampling of a whole instance (Section 7.1).

    Every key is included independently: weight-obliviously with a fixed
    probability [p], or weighted (PPS) with probability
    [min(1, v(h)/τ)]. Seeds come from a {!Seeds.t}, so samples are
    reproducible and the "known seeds" estimators can recompute the seed
    of any key — sampled or not. *)

(** A weighted PPS Poisson sample of one instance. *)
type pps = {
  instance_id : int;
  tau : float;  (** the PPS threshold [τ*] *)
  entries : (int * float) list;  (** sampled (key, value), ascending keys *)
}

val pps_sample : Seeds.t -> instance:int -> tau:float -> Instance.t -> pps
(** Include key [h] iff [v(h) ≥ u(h)·τ], i.e. with probability
    [min(1, v(h)/τ)]. Only keys with positive value can be sampled. *)

val pps_expected_size : tau:float -> Instance.t -> float
(** Expected sample size [Σ_h min(1, v(h)/τ)]. *)

val tau_for_expected_size : Instance.t -> float -> float
(** [tau_for_expected_size inst k] finds [τ] with expected PPS sample size
    [k] (by bisection). Requires [0 < k ≤ cardinality]. *)

val pps_ht_estimate : pps -> select:(int -> bool) -> float
(** Horvitz–Thompson subset-sum estimate over a single instance:
    [Σ_{sampled h ∈ select} v(h) / min(1, v(h)/τ)]. *)

(** A weight-oblivious Poisson sample over an explicit key domain. *)
type oblivious = {
  instance_id : int;
  p : float;  (** uniform inclusion probability *)
  domain_size : int;
  entries : (int * float) list;  (** sampled (key, value) — zero values included *)
}

val oblivious_sample :
  Seeds.t -> instance:int -> p:float -> domain:int list -> Instance.t -> oblivious
(** Include each key of [domain] independently with probability [p],
    regardless of its value (the value recorded may be 0). *)

val oblivious_ht_estimate : oblivious -> select:(int -> bool) -> float
(** HT subset-sum estimate [Σ_{sampled h ∈ select} v(h)/p]. *)

val key_outcome_pps :
  Seeds.t -> taus:float array -> instances:Instance.t list -> int -> Outcome.Pps.t
(** The single-key outcome of key [h] across [instances] sampled
    independently with PPS thresholds [taus] — the estimator-side view
    reconstructed from the per-instance samples and seeds. *)

val key_outcome_binary :
  Seeds.t -> probs:float array -> instances:Instance.t list -> int -> Outcome.Binary.t
(** Single-key outcome for binary data under weighted sampling with known
    seeds: entry [i] sampled iff [v_i(h) = 1 ∧ u_i(h) ≤ p_i]. Values are
    read from [instances] ([> 0] counts as 1). *)
