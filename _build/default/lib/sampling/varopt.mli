(** VAROPT_k stream sampling (Cohen–Duffield–Kaplan–Lund–Thorup 2009 /
    Chao 1982), referenced as the third single-instance scheme in
    Section 7.1.

    Maintains a fixed-size-[k] sample with PPS (probability proportional
    to size) inclusion probabilities, non-positive inclusion
    covariances, and variance-optimal subset-sum estimates. Items kept in
    the sample carry an {e adjusted weight}: their exact weight if it
    exceeds the current threshold [τ], else [τ]; the sum of adjusted
    weights is an unbiased estimate of any subset sum. *)

type t

val create : k:int -> t
(** Empty reservoir of capacity [k]. *)

val k : t -> int
val size : t -> int

val threshold : t -> float
(** Current threshold [τ] (0 while fewer than [k] items seen). *)

val total_weight : t -> float
(** Exact running total of all weights fed in. *)

val add : t -> Numerics.Prng.t -> key:int -> weight:float -> unit
(** Feed one stream item. [weight > 0]. Keys need not be distinct, but
    estimates are per-item; aggregate duplicates upstream if needed. *)

val entries : t -> (int * float) list
(** Current sample as (key, adjusted weight), unspecified order. The
    adjusted weight of item [i] is [max(w_i, τ)]. *)

val estimate : t -> select:(int -> bool) -> float
(** Subset-sum estimate: sum of adjusted weights of sampled keys selected
    by [select]. Unbiased for the true subset sum. *)

val of_instance : k:int -> Numerics.Prng.t -> Instance.t -> t
(** Stream all (key, value) pairs of an instance through a fresh sampler. *)
