(** Plain-text persistence for instances and samples.

    The paper's deployment story is that instances are summarized where
    they are produced and the {e samples} are what gets stored or
    transmitted; estimation happens later, elsewhere. This module gives
    that story a concrete wire format: line-oriented, human-inspectable,
    lossless for floats (hex float literals), with a tagged header so a
    reader knows what it is loading.

    Formats (one record per line, [#]-comments and blank lines ignored):

    - instance: [optsample-instance 1] header, then [<key> <value-hex>]
    - PPS sample: [optsample-pps 1 <instance-id> <tau-hex>] header, then
      [<key> <value-hex>]

    Values are written with [%h] and parsed back exactly. *)

val write_instance : path:string -> Instance.t -> unit
val read_instance : path:string -> Instance.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val write_pps : path:string -> Poisson.pps -> unit
val read_pps : path:string -> Poisson.pps

val instance_to_string : Instance.t -> string
val instance_of_string : string -> Instance.t
val pps_to_string : Poisson.pps -> string
val pps_of_string : string -> Poisson.pps
