(** Unified single-instance summaries (Section 7.1's three schemes behind
    one interface).

    A summary is what a data owner would retain or transmit instead of
    the full instance: a Poisson PPS sample, a bottom-k sample, or a
    VarOpt reservoir. All three support unbiased subset-sum estimation;
    the scheme changes the size/variance profile:

    - {b Poisson}: independent inclusions, variable size, per-key
      decoupling (transmit-as-you-go);
    - {b Bottom-k} (priority): fixed size k, slightly higher variance via
      rank conditioning;
    - {b VarOpt}: fixed size k, variance-optimal subset sums, zero
      variance on the full total (but hash-seed reproducibility is
      unavailable: randomness is private, so no "known seeds" estimators
      on top).

    For multi-instance estimation, Poisson and bottom-k summaries expose
    their threshold so the estimators of {!module:Estcore} can be applied
    (see {!Aggregates.Sum_agg}); VarOpt is single-instance only, included
    for completeness of the Section 7.1 inventory. *)

type scheme =
  | Poisson_pps of { tau : float }
  | Bottom_k of { k : int; family : Rank.family }
  | Var_opt of { k : int }

type t

val summarize :
  ?rng:Numerics.Prng.t -> Seeds.t -> scheme -> instance:int -> Instance.t -> t
(** Build a summary of one instance. [rng] is only used by [Var_opt]
    (which needs private randomness); defaults to a generator seeded from
    the [Seeds.t] master and the instance id. *)

val scheme : t -> scheme
val size : t -> int
(** Number of retained keys. *)

val keys : t -> int list
(** Retained keys, ascending. *)

val entries : t -> (int * float) list
(** Retained (key, value) pairs, ascending keys. Poisson and bottom-k
    summaries carry exact values; VarOpt carries adjusted weights. *)

val mem : t -> int -> bool

val subset_sum : t -> select:(int -> bool) -> float
(** Unbiased estimate of [Σ_{h ∈ select} v(h)]: HT for Poisson, rank
    conditioning for bottom-k, adjusted weights for VarOpt. *)

val threshold : t -> float option
(** The effective PPS threshold usable by multi-instance estimators:
    [tau] for Poisson, [1/(k+1-smallest rank)] for bottom-k PPS ranks;
    [None] for EXP-rank bottom-k and VarOpt. *)
