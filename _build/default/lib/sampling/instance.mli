(** A single data instance: an assignment of nonnegative values to integer
    keys. Instances are the columns of the paper's instances × keys data
    matrix; only positive values are stored explicitly (sparse
    representation), matching the paper's observation that weighted
    sampling need only touch keys with positive value. *)

type t

val empty : t
val of_assoc : (int * float) list -> t
(** Build from (key, value) pairs. Values must be [≥ 0]; zero values are
    dropped; duplicate keys are summed. *)

val of_keys : int list -> t
(** Binary instance: a set of keys, each with value [1.]. *)

val value : t -> int -> float
(** [value t h] is the value of key [h] ([0.] when absent). *)

val mem : t -> int -> bool
(** Does [h] have positive value? *)

val cardinality : t -> int
(** Number of keys with positive value. *)

val total : t -> float
(** Sum of all values. *)

val keys : t -> int list
(** Keys with positive value, ascending. *)

val fold : (int -> float -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> float -> unit) -> t -> unit

val union_keys : t list -> int list
(** Ascending list of keys positive in at least one of the instances. *)

val values_of_key : t list -> int -> float array
(** [values_of_key instances h] is the data vector [v(h)] of key [h]
    across the given instances. *)

val max_dominance : t list -> float
(** [Σ_h max_i v_i(h)] — exact max-dominance norm (ground truth). *)

val min_dominance : t list -> float
(** [Σ_h min_i v_i(h)] (minimum over instances including zeros for
    absent keys). *)

val l1_distance : t -> t -> float
(** [Σ_h |v_1(h) − v_2(h)|]. *)

val distinct_count : t list -> int
(** Number of keys positive in at least one instance (size of union). *)

val jaccard : t -> t -> float
(** Jaccard coefficient of the supports: [|A∩B| / |A∪B|]. *)
