let instance_magic = "optsample-instance 1"
let pps_magic = "optsample-pps 1"

let lines_of_string s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let fail_line n msg = failwith (Printf.sprintf "line %d: %s" n msg)

let parse_kv n line =
  match String.split_on_char ' ' line with
  | [ k; v ] -> (
      match (int_of_string_opt k, float_of_string_opt v) with
      | Some k, Some v -> (k, v)
      | _ -> fail_line n "expected '<int-key> <hex-float>'")
  | _ -> fail_line n "expected two fields"

let instance_to_string inst =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf instance_magic;
  Buffer.add_char buf '\n';
  Instance.iter
    (fun k v -> Buffer.add_string buf (Printf.sprintf "%d %h\n" k v))
    inst;
  Buffer.contents buf

let instance_of_string s =
  match lines_of_string s with
  | [] -> failwith "empty input"
  | (n, header) :: rest ->
      if header <> instance_magic then fail_line n "not an optsample instance";
      Instance.of_assoc (List.map (fun (n, l) -> parse_kv n l) rest)

let pps_to_string (p : Poisson.pps) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %h\n" pps_magic p.Poisson.instance_id p.Poisson.tau);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%d %h\n" k v))
    p.Poisson.entries;
  Buffer.contents buf

let pps_of_string s =
  match lines_of_string s with
  | [] -> failwith "empty input"
  | (n, header) :: rest ->
      let p =
        match String.split_on_char ' ' header with
        | [ a; b; id; tau ] when a ^ " " ^ b = pps_magic -> (
            match (int_of_string_opt id, float_of_string_opt tau) with
            | Some id, Some tau -> (id, tau)
            | _ -> fail_line n "bad pps header fields")
        | _ -> fail_line n "not an optsample pps sample"
      in
      let id, tau = p in
      {
        Poisson.instance_id = id;
        tau;
        entries = List.map (fun (n, l) -> parse_kv n l) rest;
      }

let write_string ~path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let read_string ~path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_instance ~path inst = write_string ~path (instance_to_string inst)
let read_instance ~path = instance_of_string (read_string ~path)
let write_pps ~path p = write_string ~path (pps_to_string p)
let read_pps ~path = pps_of_string (read_string ~path)
