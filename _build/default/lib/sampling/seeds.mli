(** Per-(instance, key) seed assignment.

    Seeds drive all randomness in sampling. They are produced by hashing
    the key with a per-instance salt, which makes them {e reproducible}:
    anyone holding the master seed can recompute [u_i(h)] — the paper's
    "known seeds" model. Two modes:

    - {b Shared} (coordinated sampling / PRN method): every instance uses
      the same salt, so [u_i(h) = u_j(h)] for all instances — similar
      instances get similar samples.
    - {b Independent}: instance [i] salts with [i], so seeds of different
      instances are independent. *)

type mode = Shared | Independent

type t

val create : ?master:int -> mode -> t
(** [create ~master mode]; default [master = 42]. *)

val mode : t -> mode
val master : t -> int

val seed : t -> instance:int -> key:int -> float
(** [seed t ~instance ~key] is the uniform seed [u_instance(key) ∈ (0,1)].
    In [Shared] mode the result does not depend on [instance]. *)

val seed_string : t -> instance:int -> key:string -> float
(** Same for string keys. *)

val rank : t -> Rank.family -> instance:int -> key:int -> w:float -> float
(** Rank of [key] with value [w] in [instance]: [F_w^{-1}(seed)]. With
    [Shared] mode this yields {e consistent} ranks across instances:
    [v_i(h) ≥ v_j(h)] implies [rank_i(h) ≤ rank_j(h)]. *)
