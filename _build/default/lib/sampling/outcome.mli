(** Single-key outcome models.

    Estimators for a multi-instance function [f(v)] of the data vector
    [v = (v_1, ..., v_r)] of one key see an {e outcome}: the sampled
    entries with their values, plus — in the known-seeds models — the seed
    vector. This module defines the three outcome models used in the
    paper, with both random drawing and exact enumeration (for tests and
    exact variance computation).

    - {!Oblivious}: weight-oblivious Poisson (Section 4). Entry [i] is
      sampled with probability [p_i] independently of its value.
    - {!Pps}: weighted PPS Poisson with known seeds (Section 5.2). Entry
      [i] is sampled iff [v_i ≥ u_i·τ*_i]; the estimator sees [u].
    - {!Binary}: weighted sampling of binary data with known seeds
      (Section 5.1). Entry [i] is sampled iff [v_i = 1 ∧ u_i ≤ p_i]; the
      estimator sees [S] and the indicators [u_i ≤ p_i]. *)

(** Weight-oblivious Poisson outcomes. *)
module Oblivious : sig
  type t = {
    probs : float array;  (** per-entry inclusion probabilities *)
    values : float option array;  (** [Some v_i] iff entry [i] sampled *)
  }

  val r : t -> int
  val sampled : t -> int list
  (** Indices of sampled entries, ascending. *)

  val sampled_values : t -> float list

  val draw : Numerics.Prng.t -> probs:float array -> float array -> t
  (** Random outcome for data vector [v]. *)

  val of_mask : probs:float array -> float array -> bool array -> t
  (** Deterministic outcome from an inclusion mask. *)

  val enumerate : probs:float array -> float array -> (float * t) list
  (** All [2^r] outcomes for data [v], with their probabilities (they sum
      to 1). Basis of exact expectation / variance computation. *)

  val prob_of_mask : probs:float array -> bool array -> float
  (** Probability of a given inclusion mask. *)
end

(** Weighted PPS Poisson with known seeds. *)
module Pps : sig
  type t = {
    taus : float array;  (** PPS thresholds [τ*_i] *)
    seeds : float array;  (** the seed vector [u], known to the estimator *)
    values : float option array;  (** [Some v_i] iff sampled ([v_i ≥ u_i τ*_i]) *)
  }

  val r : t -> int
  val sampled : t -> int list

  val upper_bound : t -> int -> float
  (** For an unsampled entry [i], the partial information revealed by the
      seed: [v_i < u_i·τ*_i], i.e. [u_i·τ*_i] is a strict upper bound.
      For a sampled entry, its exact value. *)

  val inclusion_prob : taus:float array -> float array -> int -> float
  (** [min (1, v_i / τ*_i)]. *)

  val of_seeds : taus:float array -> seeds:float array -> float array -> t
  (** Outcome determined by data [v] and seed vector [u]. *)

  val draw : Numerics.Prng.t -> taus:float array -> float array -> t

  val expectation :
    ?tol:float -> taus:float array -> v:float array -> (t -> float) -> float
  (** [expectation ~taus ~v g] = E[g(outcome) | data v], computed by exact
      integration over the seed hypercube (r ≤ 2 uses piecewise adaptive
      quadrature with breakpoints at the sampling thresholds; only r ≤ 2 is
      supported — the paper's weighted derivations are for two instances). *)
end

(** Weighted sampling of binary data with known seeds. *)
module Binary : sig
  type t = {
    probs : float array;  (** [p_i] = inclusion probability when [v_i = 1] *)
    below : bool array;  (** [u_i ≤ p_i] — known to the estimator *)
    sampled : bool array;  (** [v_i = 1 ∧ u_i ≤ p_i] *)
  }

  val r : t -> int

  val known_value : t -> int -> int option
  (** What the outcome reveals about [v_i]: [Some 1] if sampled, [Some 0]
      if unsampled but [u_i ≤ p_i], [None] otherwise. *)

  val draw : Numerics.Prng.t -> probs:float array -> int array -> t
  val of_below : probs:float array -> below:bool array -> int array -> t

  val enumerate : probs:float array -> int array -> (float * t) list
  (** All outcomes (over the indicator vector [u ≤ p]) for binary data
      [v], with probabilities summing to 1. *)

  val to_oblivious : t -> Oblivious.t
  (** The information-preserving 1-1 mapping of Section 5 onto
      weight-oblivious outcomes: entry [i] is "obliviously sampled" iff
      [u_i ≤ p_i], with value 1 if actually sampled and 0 if not. *)
end
