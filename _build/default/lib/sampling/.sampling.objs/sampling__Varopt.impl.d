lib/sampling/varopt.ml: Array Float Instance List Numerics
