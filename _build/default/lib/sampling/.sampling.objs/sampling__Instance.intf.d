lib/sampling/instance.mli:
