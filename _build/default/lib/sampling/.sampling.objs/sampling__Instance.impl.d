lib/sampling/instance.ml: Array Float Int List Map
