lib/sampling/summary.ml: Bottom_k List Numerics Poisson Rank Seeds Varopt
