lib/sampling/varopt.mli: Instance Numerics
