lib/sampling/bottom_k.ml: Float Instance List Rank Seeds
