lib/sampling/outcome.mli: Numerics
