lib/sampling/rank.ml: Float Format Numerics
