lib/sampling/seeds.ml: Numerics Rank
