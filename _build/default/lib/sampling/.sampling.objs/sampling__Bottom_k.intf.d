lib/sampling/bottom_k.mli: Instance Rank Seeds
