lib/sampling/summary.mli: Instance Numerics Rank Seeds
