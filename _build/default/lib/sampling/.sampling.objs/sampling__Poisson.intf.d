lib/sampling/poisson.mli: Instance Outcome Seeds
