lib/sampling/rank.mli: Format
