lib/sampling/io.mli: Instance Poisson
