lib/sampling/outcome.ml: Array Float Fun List Numerics
