lib/sampling/io.ml: Buffer Instance List Poisson Printf String
