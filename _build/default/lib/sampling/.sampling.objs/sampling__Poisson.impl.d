lib/sampling/poisson.ml: Array Float Instance List Numerics Outcome Seeds
