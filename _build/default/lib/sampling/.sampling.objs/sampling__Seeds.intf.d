lib/sampling/seeds.mli: Rank
