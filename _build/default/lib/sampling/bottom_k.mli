(** Bottom-k (order) sampling (Section 7.1).

    Each key gets rank [F_{v(h)}^{-1}(u(h))]; the sample keeps the [k]
    smallest ranks. With PPS ranks this is {e priority sampling}
    (Duffield–Lund–Thorup); with EXP ranks it is weighted sampling
    without replacement.

    Subset-sum estimation uses {e rank conditioning} (RC): the
    (k+1)-smallest rank [τ] acts as a per-sample threshold, and each
    sampled key is weighted by the inverse of its conditional inclusion
    probability [F_{v(h)}(τ)]. *)

type entry = { key : int; value : float; rank : float }

type t = {
  instance_id : int;
  k : int;
  family : Rank.family;
  entries : entry list;  (** the [≤ k] smallest-ranked keys, by rank *)
  threshold : float;  (** (k+1)-smallest rank; [infinity] if fewer keys *)
}

val sample : Seeds.t -> family:Rank.family -> instance:int -> k:int -> Instance.t -> t

val keys : t -> int list
(** Sampled keys in rank order. *)

val rc_inclusion_prob : t -> float -> float
(** [rc_inclusion_prob s v] = conditional inclusion probability
    [F_v(threshold)] used by the RC estimator. *)

val rc_estimate : t -> select:(int -> bool) -> float
(** Rank-conditioning subset-sum estimate
    [Σ_{sampled h ∈ select} v(h) / F_{v(h)}(τ)]. For PPS ranks this is the
    priority-sampling estimator [Σ max(v(h), 1/τ)]. *)

val priority_estimate : t -> select:(int -> bool) -> float
(** Priority-sampling form [Σ max(v(h), 1/τ)] — defined for PPS ranks;
    raises [Invalid_argument] for EXP ranks. Equal to {!rc_estimate} for
    PPS ranks (used as a cross-check in tests). *)
