(** Random rank families for weighted sampling (Section 7.1).

    A rank assignment maps each key to a random rank; bottom-k keeps the
    [k] smallest ranks, Poisson keeps ranks below a threshold. The rank of
    a key with value [w] is [F_w^{-1}(u)] for a uniform seed [u], where
    [F_w] is the family CDF:

    - {b PPS} ranks: [F_w(x) = min(1, w·x)], i.e. rank [u/w]. Poisson
      sampling with threshold [tau] includes a key with probability
      [min(1, w·tau)] — probability proportional to size; bottom-k with
      PPS ranks is {e priority sampling}.
    - {b EXP} ranks: [F_w(x) = 1 - exp(-w·x)], i.e. rank [-ln(1-u)/w].
      Bottom-k with EXP ranks is weighted sampling without replacement. *)

type family = PPS | EXP

val pp_family : Format.formatter -> family -> unit

val rank : family -> w:float -> u:float -> float
(** [rank fam ~w ~u] is [F_w^{-1}(u)]; [infinity] when [w = 0]. Requires
    [u ∈ (0,1)] and [w ≥ 0]. *)

val cdf : family -> w:float -> float -> float
(** [cdf fam ~w x] is [F_w(x)] = Pr(rank < x), the inclusion probability of
    a key of value [w] under threshold [x]. *)

val inclusion_prob : family -> w:float -> tau:float -> float
(** Alias of {!cdf}: probability that a key with value [w] has rank below
    [tau]. *)

val min_rank_exp_total : float -> float -> float
(** [min_rank_exp_total total x] = CDF of the minimum EXP rank over a key
    set of total value [total]: [1 - exp (-total·x)]. (The defining
    property of EXP ranks used by bottom-k analyses.) *)
