(** Synthetic two-hour IP-traffic workload, calibrated to the statistics
    the paper reports for its (proprietary) data set in Section 8.2:

    - ≈ 2.45·10⁴ distinct destination IPs per hour,
    - 3.8·10⁴ distinct destinations over both hours
      (so ≈ 1.1·10⁴ persistent destinations),
    - 5.5·10⁵ flows per hour,
    - Σ_h max(v₁(h), v₂(h)) ≈ 7.47·10⁵.

    Values are heavy-tailed (Zipf); persistent destinations carry the top
    of the profile (they must hold ≈ 71% of each hour's volume for the
    Σmax/volume ratio to match) with bounded multiplicative variation
    between the hours; transient destinations are independent.
    The estimators' behaviour depends on the data only through the
    per-key value pairs and the sampling probabilities, so matching these
    marginals reproduces the paper's variance-ratio regime. *)

type params = {
  n_shared : int;  (** destinations active in both hours *)
  n_only : int;  (** destinations active in exactly one hour (each hour) *)
  total_per_hour : float;  (** flows per hour *)
  zipf_s : float;  (** value-profile skew *)
  jitter : float;  (** max relative hour-to-hour change of shared keys *)
  seed : int;
}

val default : params
(** Calibrated to the Section 8.2 statistics:
    [n_shared = 11_000], [n_only = 13_500], [total = 5.5e5],
    [zipf_s = 0.6], [jitter = 0.35]. *)

val generate : params -> Sampling.Instance.t * Sampling.Instance.t

type stats = {
  keys_hour1 : int;
  keys_hour2 : int;
  keys_union : int;
  flows_hour1 : float;
  flows_hour2 : float;
  sum_max : float;
}

val stats : Sampling.Instance.t * Sampling.Instance.t -> stats
val pp_stats : Format.formatter -> stats -> unit
