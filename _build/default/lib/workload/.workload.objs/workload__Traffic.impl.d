lib/workload/traffic.ml: Array Format List Numerics Sampling Zipf
