lib/workload/changes.ml: Array Float Fun List Numerics Sampling Zipf
