lib/workload/traffic.mli: Format Sampling
