lib/workload/zipf.mli: Numerics
