lib/workload/setpairs.mli: Sampling
