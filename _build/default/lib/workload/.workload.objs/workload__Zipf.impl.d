lib/workload/zipf.ml: Array Numerics
