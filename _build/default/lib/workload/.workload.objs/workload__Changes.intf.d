lib/workload/changes.mli: Sampling
