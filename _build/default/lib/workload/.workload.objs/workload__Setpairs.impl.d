lib/workload/setpairs.ml: Float List Sampling
