module I = Sampling.Instance

let pair ~n ~jaccard =
  if n <= 0 then invalid_arg "Setpairs.pair: n must be positive";
  if jaccard < 0. || jaccard > 1. then invalid_arg "Setpairs.pair: jaccard in [0,1]";
  (* |A| = |B| = n; |A∩B| = i; J = i/(2n−i)  ⇒  i = 2nJ/(1+J). *)
  let i =
    int_of_float (Float.round (2. *. float_of_int n *. jaccard /. (1. +. jaccard)))
  in
  let i = max 0 (min n i) in
  (* Shared keys 1..i; A-only keys i+1..n; B-only keys n+1..2n−i. *)
  let a = List.init n (fun k -> k + 1) in
  let b =
    List.init i (fun k -> k + 1) @ List.init (n - i) (fun k -> n + k + 1)
  in
  (I.of_keys a, I.of_keys b)

let actual_jaccard = I.jaccard
let union_size a b = List.length (I.union_keys [ a; b ])
