module I = Sampling.Instance

type params = {
  n_keys : int;
  r : int;
  zipf_s : float;
  total : float;
  change_prob : float;
  jitter : float;
  seed : int;
}

let default =
  {
    n_keys = 1000;
    r = 2;
    zipf_s = 0.8;
    total = 1e5;
    change_prob = 0.1;
    jitter = 0.25;
    seed = 7;
  }

let generate p =
  let rng = Numerics.Prng.create ~seed:p.seed () in
  let base = Zipf.frequencies ~n:p.n_keys ~s:p.zipf_s ~total:p.total in
  (* Shuffle so key id does not encode rank. *)
  let order = Array.init p.n_keys Fun.id in
  Numerics.Prng.shuffle rng order;
  List.init p.r (fun _ ->
      let entries = ref [] in
      for k = 0 to p.n_keys - 1 do
        if Numerics.Prng.float rng >= p.change_prob then begin
          let b = base.(order.(k)) in
          let v =
            b *. (1. +. (p.jitter *. ((2. *. Numerics.Prng.float rng) -. 1.)))
          in
          entries := (k + 1, v) :: !entries
        end
      done;
      I.of_assoc !entries)

let similarity insts =
  let keys = I.union_keys insts in
  if keys = [] then 1.
  else begin
    let acc = ref 0. in
    List.iter
      (fun h ->
        let v = I.values_of_key insts h in
        let mx = Array.fold_left Float.max 0. v in
        let mn = Array.fold_left Float.min infinity v in
        if mx > 0. then acc := !acc +. (mn /. mx))
      keys;
    !acc /. float_of_int (List.length keys)
  end
