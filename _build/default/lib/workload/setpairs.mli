(** Binary instance pairs with controlled size and Jaccard coefficient —
    the workload of the distinct-count experiments (Section 8.1 /
    Figure 6). *)

val pair :
  n:int -> jaccard:float -> (Sampling.Instance.t * Sampling.Instance.t)
(** Two sets of [n] keys each whose intersection/union ratio is as close
    to [jaccard] as integer arithmetic allows: intersection size
    [round (2nJ/(1+J))], keys numbered deterministically. *)

val actual_jaccard : Sampling.Instance.t -> Sampling.Instance.t -> float
(** Convenience re-export of {!Sampling.Instance.jaccard}. *)

val union_size : Sampling.Instance.t -> Sampling.Instance.t -> int
