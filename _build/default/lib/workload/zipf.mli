(** Zipf / power-law value generation — the heavy-tailed shape of
    per-destination flow counts and request frequencies that motivates
    the paper's applications. *)

type t

val create : n:int -> s:float -> t
(** Distribution over ranks 1..n with P(rank = i) ∝ i^(-s). *)

val pmf : t -> int -> float
(** Probability of rank [i] (1-indexed). *)

val draw : t -> Numerics.Prng.t -> int
(** Sample a rank by inverted-CDF binary search. *)

val frequencies : n:int -> s:float -> total:float -> float array
(** Deterministic Zipf profile: [n] values with value of rank i
    proportional to [i^(-s)], scaled so they sum to [total]. Index 0 is
    rank 1 (the largest). *)
