module I = Sampling.Instance

type params = {
  n_shared : int;
  n_only : int;
  total_per_hour : float;
  zipf_s : float;
  jitter : float;
  seed : int;
}

let default =
  {
    n_shared = 11_000;
    n_only = 13_500;
    total_per_hour = 5.5e5;
    zipf_s = 0.6;
    jitter = 0.35;
    seed = 2011;
  }

let generate p =
  let rng = Numerics.Prng.create ~seed:p.seed () in
  let n_hour = p.n_shared + p.n_only in
  (* Zipf profile over one hour's keys; shared keys take the head. *)
  let profile =
    Zipf.frequencies ~n:n_hour ~s:p.zipf_s ~total:p.total_per_hour
  in
  let jitter () = 1. +. (p.jitter *. ((2. *. Numerics.Prng.float rng) -. 1.)) in
  (* Key numbering: shared = 1..n_shared; hour-1-only and hour-2-only
     follow. *)
  let hour only_base =
    let shared =
      List.init p.n_shared (fun i -> (i + 1, profile.(i) *. jitter ()))
    in
    let only =
      List.init p.n_only (fun i ->
          (only_base + i, profile.(p.n_shared + i) *. jitter ()))
    in
    shared @ only
  in
  let h1 = hour (p.n_shared + 1) in
  let h2 = hour (p.n_shared + p.n_only + 1) in
  (* Rescale each hour to the exact target volume. *)
  let rescale entries =
    let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. entries in
    let c = p.total_per_hour /. total in
    I.of_assoc (List.map (fun (k, v) -> (k, v *. c)) entries)
  in
  (rescale h1, rescale h2)

type stats = {
  keys_hour1 : int;
  keys_hour2 : int;
  keys_union : int;
  flows_hour1 : float;
  flows_hour2 : float;
  sum_max : float;
}

let stats (a, b) =
  {
    keys_hour1 = I.cardinality a;
    keys_hour2 = I.cardinality b;
    keys_union = I.distinct_count [ a; b ];
    flows_hour1 = I.total a;
    flows_hour2 = I.total b;
    sum_max = I.max_dominance [ a; b ];
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "keys/hour = %d / %d, union = %d, flows/hour = %.3e / %.3e, sum-max = %.3e"
    s.keys_hour1 s.keys_hour2 s.keys_union s.flows_hour1 s.flows_hour2
    s.sum_max
