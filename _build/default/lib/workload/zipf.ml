type t = { n : int; s : float; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 1 to n do
    acc := !acc +. (float_of_int i ** -.s);
    cdf.(i - 1) <- !acc
  done;
  let z = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. z
  done;
  { n; s; cdf }

let pmf t i =
  if i < 1 || i > t.n then 0.
  else
    let z = if i = 1 then t.cdf.(0) else t.cdf.(i - 1) -. t.cdf.(i - 2) in
    z

let draw t rng =
  let u = Numerics.Prng.float rng in
  (* Smallest index with cdf >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let frequencies ~n ~s ~total =
  let raw = Array.init n (fun i -> float_of_int (i + 1) ** -.s) in
  let sum = Array.fold_left ( +. ) 0. raw in
  Array.map (fun x -> x *. total /. sum) raw
