(** Multi-instance numeric data with controlled cross-instance variation —
    snapshots of a slowly changing assignment with occasional
    appearance/disappearance events (the change/anomaly-detection setting
    of the paper's introduction). *)

type params = {
  n_keys : int;
  r : int;  (** number of instances *)
  zipf_s : float;  (** skew of the base value profile *)
  total : float;  (** approximate per-instance total value *)
  change_prob : float;  (** probability a key is absent from an instance *)
  jitter : float;  (** max relative per-instance deviation from the base *)
  seed : int;
}

val default : params

val generate : params -> Sampling.Instance.t list
(** Each key gets a base value from a Zipf profile; in each instance it
    is absent with probability [change_prob], otherwise worth
    base·(1 ± jitter). *)

val similarity : Sampling.Instance.t list -> float
(** Mean over keys of min(v)/max(v) (0 when some instance misses the
    key) — a crude similarity diagnostic used by examples. *)
