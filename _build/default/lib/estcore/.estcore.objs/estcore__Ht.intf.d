lib/estcore/ht.mli: Sampling
