lib/estcore/bounds.ml: Designer Hashtbl List
