lib/estcore/existence.mli: Designer
