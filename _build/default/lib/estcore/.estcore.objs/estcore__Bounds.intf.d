lib/estcore/bounds.mli: Designer
