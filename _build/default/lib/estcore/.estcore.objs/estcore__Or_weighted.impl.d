lib/estcore/or_weighted.ml: Exact Or_oblivious Sampling
