lib/estcore/or_oblivious.ml: Array Exact Ht Max_oblivious Sampling
