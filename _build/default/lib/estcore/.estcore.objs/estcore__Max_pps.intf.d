lib/estcore/max_pps.mli: Sampling
