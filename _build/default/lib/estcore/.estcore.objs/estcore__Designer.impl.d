lib/estcore/designer.ml: Array Float Fmt Format Fun Hashtbl List Numerics Option Sampling
