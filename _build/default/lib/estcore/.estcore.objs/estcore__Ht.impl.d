lib/estcore/ht.ml: Array Float Sampling
