lib/estcore/exact.ml: Array Float List Numerics Sampling
