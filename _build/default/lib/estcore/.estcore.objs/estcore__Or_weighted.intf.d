lib/estcore/or_weighted.mli: Sampling
