lib/estcore/exact.mli: Numerics Sampling
