lib/estcore/max_oblivious.ml: Array Exact Float Fun Hashtbl Ht List Numerics Sampling
