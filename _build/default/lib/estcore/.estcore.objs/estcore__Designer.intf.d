lib/estcore/designer.mli:
