lib/estcore/catalog.mli: Format
