lib/estcore/coordinated.mli: Exact Numerics Sampling
