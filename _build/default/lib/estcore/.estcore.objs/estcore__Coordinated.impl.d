lib/estcore/coordinated.ml: Array Exact Float List Numerics Sampling
