lib/estcore/or_oblivious.mli: Max_oblivious Sampling
