lib/estcore/existence.ml: Array Designer Hashtbl List Numerics
