lib/estcore/max_oblivious.mli: Sampling
