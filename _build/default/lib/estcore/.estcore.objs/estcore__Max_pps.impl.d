lib/estcore/max_pps.ml: Array Exact Float Ht Sampling
