lib/estcore/catalog.ml: Format List String
