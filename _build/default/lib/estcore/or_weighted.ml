module B = Sampling.Outcome.Binary

type outcome = B.t

let check_r2 (o : outcome) = if B.r o <> 2 then invalid_arg "Or_weighted: r = 2 only"

(* All three estimators are the Section 4.3 estimators transported through
   the outcome mapping of Section 5: apply the oblivious estimator to the
   mapped outcome. The closed-form tables in Section 5.1 are what this
   evaluates to; tests check the correspondence case by case. *)
let ht (o : outcome) =
  check_r2 o;
  Or_oblivious.ht (B.to_oblivious o)

let l (o : outcome) =
  check_r2 o;
  Or_oblivious.l_r2 (B.to_oblivious o)

let u (o : outcome) =
  check_r2 o;
  Or_oblivious.u_r2 (B.to_oblivious o)

let var_of est ~p1 ~p2 ~v = (Exact.binary ~probs:[| p1; p2 |] ~v est).Exact.var
let var_l ~p1 ~p2 ~v = var_of l ~p1 ~p2 ~v
let var_u ~p1 ~p2 ~v = var_of u ~p1 ~p2 ~v
let var_ht ~p1 ~p2 ~v = var_of ht ~p1 ~p2 ~v
