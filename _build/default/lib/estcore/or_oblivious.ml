module O = Sampling.Outcome.Oblivious

type outcome = O.t

let check_binary (o : outcome) =
  Array.iter
    (function
      | Some v when v <> 0. && v <> 1. ->
          invalid_arg "Or_oblivious: values must be 0/1"
      | _ -> ())
    o.values

let ht (o : outcome) =
  check_binary o;
  Ht.max_oblivious o

let l_r2 (o : outcome) =
  check_binary o;
  Max_oblivious.l_r2 o

let u_r2 (o : outcome) =
  check_binary o;
  Max_oblivious.u_r2 o

let l_uniform c (o : outcome) =
  check_binary o;
  Max_oblivious.l_uniform c o

let l_general g (o : outcome) =
  check_binary o;
  Max_oblivious.General.estimate g o

let var_ht ~probs =
  let pall = Array.fold_left ( *. ) 1. probs in
  (1. /. pall) -. 1.

let var_l_11 ~p1 ~p2 =
  let q = p1 +. p2 -. (p1 *. p2) in
  (1. /. q) -. 1.

let var_l_10 ~p1 ~p2 =
  (Exact.oblivious ~probs:[| p1; p2 |] ~v:[| 1.; 0. |] l_r2).Exact.var

let var_u_11 ~p1 ~p2 =
  (Exact.oblivious ~probs:[| p1; p2 |] ~v:[| 1.; 1. |] u_r2).Exact.var

let var_u_10 ~p1 ~p2 =
  (Exact.oblivious ~probs:[| p1; p2 |] ~v:[| 1.; 0. |] u_r2).Exact.var

let to_binary_outcome = Sampling.Outcome.Binary.to_oblivious
