(** Estimators for Boolean [OR(v) = v₁ ∨ ... ∨ v_r] over weight-oblivious
    Poisson samples (Section 4.3).

    OR is max restricted to the domain {0,1}^r, and the max estimators
    specialize to it while remaining Pareto optimal on the restricted
    domain. [OR^(L)] has minimum variance on the all-ones vector ("no
    change"); [OR^(U)] is the symmetric estimator with minimum variance on
    the single-one vectors ("change"). Both dominate [OR^(HT)]:
    asymptotically for p → 0 on two entries, Var[HT] ≈ 1/p² while
    Var[L], Var[U] ≈ 1/(4p²) on (1,0) and ≈ 1/(2p) on (1,1). *)

type outcome = Sampling.Outcome.Oblivious.t

val ht : outcome -> float
(** [OR^(HT)]: [1/Π p_i] when every entry is sampled and some sampled
    value is 1; else 0. *)

val l_r2 : outcome -> float
(** [OR^(L)], r = 2, arbitrary (p₁,p₂) — specialization of max^(L). *)

val u_r2 : outcome -> float
(** [OR^(U)], r = 2, arbitrary (p₁,p₂). *)

val l_uniform : Max_oblivious.Coeffs.t -> outcome -> float
(** [OR^(L)] for any r with uniform p (binary values required). *)

val l_general : Max_oblivious.General.t -> outcome -> float
(** [OR^(L)] for any r with {e arbitrary} per-entry probabilities, via
    the general Theorem 4.1 solver (binary values required). *)

val var_ht : probs:float array -> float
(** Eq. (23): variance of OR^(HT) on any data with OR(v) = 1. *)

val var_l_11 : p1:float -> p2:float -> float
(** Eq. (24): Var[OR^(L) | (1,1)] = 1/(p₁+p₂−p₁p₂) − 1. *)

val var_l_10 : p1:float -> p2:float -> float
(** Var[OR^(L) | (1,0)] (Section 4.3 display): the entry with value 1 is
    entry 1. *)

val var_u_11 : p1:float -> p2:float -> float
(** Var[OR^(U) | (1,1)] (exact, via enumeration). *)

val var_u_10 : p1:float -> p2:float -> float
(** Var[OR^(U) | (1,0)]. *)

val to_binary_outcome : Sampling.Outcome.Binary.t -> outcome
(** View a binary weighted known-seeds outcome as the equivalent
    weight-oblivious outcome (the 1-1 mapping of Section 5). *)
