(** A machine-readable inventory of the estimators in this library: which
    sampling model each needs, what it estimates, its properties, and
    where in the paper it comes from. Drives the CLI's [catalog]
    subcommand and keeps the library's surface discoverable. *)

type model =
  | Oblivious_poisson  (** weight-oblivious Poisson (Section 4) *)
  | Weighted_pps_known_seeds  (** PPS with recomputable seeds (Section 5) *)
  | Weighted_binary_known_seeds  (** binary weighted, known seeds (Sec 5.1) *)
  | Coordinated_pps  (** shared-seed PPS (Section 7.2) *)

type entry = {
  name : string;
  target : string;  (** the function estimated *)
  model : model;
  arity : string;  (** supported r *)
  properties : string list;
  source : string;  (** paper section / equation, or "extension" *)
}

val all : entry list

val pp_model : Format.formatter -> model -> unit
val pp_entry : Format.formatter -> entry -> unit
val print : Format.formatter -> unit
