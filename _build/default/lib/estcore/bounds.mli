(** Necessary conditions for estimator existence (Section 2.3,
    Lemma 2.1), computed exactly for finite problems.

    For a data vector [v] and gap [ε > 0], [Δ(v,ε)] is 1 minus the
    largest probability of a set of outcomes all consistent with some
    data vector [z] with [f(z) ≤ f(v) − ε]. Lemma 2.1:

    - an unbiased nonnegative estimator exists ⟹ [Δ(v,ε) > 0] for all
      [v, ε];
    - with bounded variance ⟹ [Δ(v,ε) = Ω(ε²)];
    - bounded ⟹ [Δ(v,ε) = Ω(ε)].

    On finite problems the supremum is attained at some witness [z]
    (taking Ω′ = all outcomes of [v] consistent with [z]), so Δ is
    computed by scanning the data domain. A zero Δ is a machine-checkable
    proof of non-existence — the combinatorial core of the Theorem 6.1
    impossibility arguments, complementary to the LP certificates in
    {!Existence}. *)

val delta : 'k Designer.problem -> v:float array -> eps:float -> float
(** [delta problem ~v ~eps] = Δ(v, ε). Returns 1. when no data vector of
    the domain satisfies [f(z) ≤ f(v) − ε]. *)

val witness :
  'k Designer.problem -> v:float array -> eps:float -> (float array * float) option
(** The maximizing witness vector [z] together with [Pr(Ω′_z | v)]
    (so [delta = 1 − snd]); [None] when no vector is ε below [f(v)]. *)

val refutes_existence : 'k Designer.problem -> bool
(** Is there a [(v, ε)] with [Δ(v,ε) = 0]? (Scans ε over the gaps between
    attained f-values.) [true] certifies that no unbiased nonnegative
    estimator exists — cross-checked against {!Existence.exists} in the
    tests. *)
