(** Existence oracle for nonnegative unbiased estimators.

    A nonnegative unbiased estimator for a finite problem exists iff the
    linear system

    {v ∀v:  Σ_o Pr(o|v)·x_o = f(v),   x ≥ 0 v}

    is feasible. This module decides that by LP (two-phase simplex),
    turning Section 6's impossibility proofs (Theorem 6.1: no nonnegative
    unbiased estimator for ℓth, ℓ < r, OR, or XOR/RG^d over independent
    weighted samples with {e unknown} seeds) into machine-checkable
    certificates — and confirming that the same functions {e are}
    estimable once seeds are known. *)

val exists : 'k Designer.problem -> bool
(** Is there a nonnegative unbiased (bounded, since the problem is
    finite) estimator for the problem? *)

val find : 'k Designer.problem -> ('k * float) list option
(** A witness estimator table when one exists. *)

val or_unknown_seeds : p1:float -> p2:float -> bool
(** Existence for OR of two bits under weighted sampling with unknown
    seeds. Theorem 6.1: [false] iff p₁ + p₂ < 1 (our oracle confirms
    feasibility when p₁ + p₂ ≥ 1). *)

val or_known_seeds : p1:float -> p2:float -> bool
(** Always [true] (Section 5.1 constructs the estimators). *)

val xor_unknown_seeds : p1:float -> p2:float -> bool
(** Existence for XOR (= RG over bits): [false] for all p < 1 (Section 6). *)

val xor_known_seeds : p1:float -> p2:float -> bool
(** XOR becomes estimable once seeds are known (both values are revealed
    with probability p₁p₂) — completing the Section 6 picture: [true]. *)

val lth_unknown_seeds : r:int -> l:int -> p:float array -> bool
(** Existence for the ℓ-th largest entry over r independently weighted-
    sampled bits with uniform-per-entry probabilities [p] and unknown
    seeds. Theorem 6.1: false for ℓ < r when [p.(0) + p.(1) < 1];
    min (ℓ = r) is always estimable. *)
