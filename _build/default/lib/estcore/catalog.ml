type model =
  | Oblivious_poisson
  | Weighted_pps_known_seeds
  | Weighted_binary_known_seeds
  | Coordinated_pps

type entry = {
  name : string;
  target : string;
  model : model;
  arity : string;
  properties : string list;
  source : string;
}

let unb = "unbiased"
let nn = "nonnegative"
let mono = "monotone"
let pareto = "Pareto optimal"
let dom = "dominates HT"

let all =
  [
    {
      name = "Ht.max_oblivious";
      target = "max";
      model = Oblivious_poisson;
      arity = "any r";
      properties = [ unb; nn; mono; "baseline" ];
      source = "Sec 2.2, eq. (10)";
    };
    {
      name = "Ht.min_oblivious";
      target = "min";
      model = Oblivious_poisson;
      arity = "any r";
      properties = [ unb; nn; mono; pareto ];
      source = "Sec 4";
    };
    {
      name = "Ht.range_oblivious";
      target = "max - min";
      model = Oblivious_poisson;
      arity = "any r (Pareto optimal at r = 2)";
      properties = [ unb; nn; mono ];
      source = "Sec 4";
    };
    {
      name = "Ht.quantile_oblivious";
      target = "l-th largest";
      model = Oblivious_poisson;
      arity = "any r";
      properties = [ unb; nn; mono; "suboptimal for 1 < l < r" ];
      source = "Sec 4";
    };
    {
      name = "Max_oblivious.l_r2 / l_r3 / l_uniform / General.estimate";
      target = "max";
      model = Oblivious_poisson;
      arity = "r = 2, 3 any p; any r uniform p; any r any p (General)";
      properties = [ unb; nn; mono; pareto; dom ];
      source = "Sec 4.1: eq. (12), Thm 4.1/4.2, Alg 3; General = extension";
    };
    {
      name = "Max_oblivious.u_r2";
      target = "max";
      model = Oblivious_poisson;
      arity = "r = 2";
      properties = [ unb; nn; pareto; dom; "symmetric, sparse-first" ];
      source = "Sec 4.2";
    };
    {
      name = "Max_oblivious.u_asym_r2";
      target = "max";
      model = Oblivious_poisson;
      arity = "r = 2";
      properties = [ unb; nn; pareto; "asymmetric, sparse-first" ];
      source = "Sec 4.2";
    };
    {
      name = "Or_oblivious.ht / l_r2 / u_r2 / l_uniform / l_general";
      target = "Boolean OR";
      model = Oblivious_poisson;
      arity = "r = 2 closed forms; any r via coefficients";
      properties = [ unb; nn; pareto ];
      source = "Sec 4.3";
    };
    {
      name = "Ht.max_pps";
      target = "max";
      model = Weighted_pps_known_seeds;
      arity = "any r";
      properties = [ unb; nn; mono; "optimal inverse-probability" ];
      source = "Sec 5.2 (from CKS'09)";
    };
    {
      name = "Ht.min_pps";
      target = "min";
      model = Weighted_pps_known_seeds;
      arity = "any r";
      properties = [ unb; nn; mono ];
      source = "Sec 5.2 / Sec 6";
    };
    {
      name = "Max_pps.l";
      target = "max";
      model = Weighted_pps_known_seeds;
      arity = "r = 2";
      properties =
        [ unb; nn; mono; pareto; "dominates HT at equal thresholds" ];
      source = "Sec 5.2, Fig 3, eqs. (25)-(30); eq. (30) corrected";
    };
    {
      name = "Or_weighted.ht / l / u";
      target = "Boolean OR";
      model = Weighted_binary_known_seeds;
      arity = "r = 2";
      properties = [ unb; nn; pareto ];
      source = "Sec 5.1";
    };
    {
      name = "Coordinated.max_ht";
      target = "max";
      model = Coordinated_pps;
      arity = "any r";
      properties = [ unb; nn; "Pareto optimal at equal thresholds" ];
      source = "Sec 7.2 (extension)";
    };
    {
      name = "Coordinated.min_ht";
      target = "min";
      model = Coordinated_pps;
      arity = "any r";
      properties = [ unb; nn ];
      source = "Sec 7.2 (extension)";
    };
    {
      name = "Designer.solve_order / solve_partition";
      target = "any f over a finite domain";
      model = Oblivious_poisson;
      arity = "any r (any finite outcome model)";
      properties = [ "machine-derived"; "Pareto optimal when it succeeds" ];
      source = "Sec 3, Algorithms 1-2";
    };
  ]

let pp_model ppf = function
  | Oblivious_poisson -> Format.pp_print_string ppf "oblivious Poisson"
  | Weighted_pps_known_seeds -> Format.pp_print_string ppf "weighted PPS, known seeds"
  | Weighted_binary_known_seeds ->
      Format.pp_print_string ppf "weighted binary, known seeds"
  | Coordinated_pps -> Format.pp_print_string ppf "coordinated PPS"

let pp_entry ppf e =
  let model = Format.asprintf "%a" pp_model e.model in
  Format.fprintf ppf "%-58s %-10s %-28s %s@.    %s; %s@." e.name e.target
    model e.arity
    (String.concat ", " e.properties)
    e.source

let print ppf =
  Format.fprintf ppf "%-58s %-10s %-28s %s@." "estimator" "target" "model"
    "arity";
  List.iter (pp_entry ppf) all
