type 'k problem = {
  data : float array list;
  f : float array -> float;
  dist : float array -> (float * 'k) list;
}

type 'k estimator = ('k, float) Hashtbl.t

let of_bindings bindings : 'k estimator =
  let t = Hashtbl.create (List.length bindings) in
  List.iter (fun (k, v) -> Hashtbl.replace t k v) bindings;
  t

let lookup (t : 'k estimator) k = Hashtbl.find t k
let bindings t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []

let min_estimate t =
  Hashtbl.fold (fun _ v acc -> Float.min v acc) t infinity

let positive_support dist = List.filter (fun (p, _) -> p > 0.) dist

let solve_order ?(eps = 1e-9) problem =
  let table : 'k estimator = Hashtbl.create 64 in
  let result = ref (Ok ()) in
  List.iter
    (fun v ->
      match !result with
      | Error _ -> ()
      | Ok () ->
          let support = positive_support (problem.dist v) in
          (* Contribution of already-assigned outcomes to E[est | v]. *)
          let f0 = ref 0. in
          let fresh = ref [] in
          let p_fresh = ref 0. in
          List.iter
            (fun (p, k) ->
              match Hashtbl.find_opt table k with
              | Some est -> f0 := !f0 +. (p *. est)
              | None ->
                  fresh := k :: !fresh;
                  p_fresh := !p_fresh +. p)
            support;
          let fv = problem.f v in
          if !p_fresh <= eps then begin
            if abs_float (fv -. !f0) > eps *. (1. +. abs_float fv) then
              result :=
                Error
                  (Format.asprintf
                     "no unbiased estimator: vector [%a] has no fresh \
                      outcomes but E=%g ≠ f=%g"
                     Fmt.(array ~sep:comma float)
                     v !f0 fv)
          end
          else begin
            let est = (fv -. !f0) /. !p_fresh in
            List.iter (fun k -> Hashtbl.replace table k est) !fresh
          end)
    problem.data;
  match !result with Ok () -> Ok table | Error e -> Error e

let solve_partition ?(eps = 1e-9) ~batches ~f ~dist () =
  let table : 'k estimator = Hashtbl.create 64 in
  let later_batches =
    ref (match batches with [] -> [] | _ :: tl -> tl @ [ [] ])
  in
  (* [later_batches] tracks the batches strictly after the current one;
     rebuilt as we walk. *)
  let result = ref (Ok ()) in
  List.iteri
    (fun bi batch ->
      ignore bi;
      match !result with
      | Error _ -> ()
      | Ok () ->
          let laters = List.concat !later_batches in
          (later_batches :=
             match !later_batches with [] -> [] | _ :: tl -> tl);
          (* Fresh outcomes consistent with the batch. *)
          let fresh_tbl = Hashtbl.create 16 in
          let fresh = ref [] in
          List.iter
            (fun v ->
              List.iter
                (fun (p, k) ->
                  if p > 0. && (not (Hashtbl.mem table k)) && not (Hashtbl.mem fresh_tbl k)
                  then begin
                    Hashtbl.add fresh_tbl k ();
                    fresh := k :: !fresh
                  end)
                (dist v))
            batch;
          let fresh = Array.of_list (List.rev !fresh) in
          let n = Array.length fresh in
          let index = Hashtbl.create 16 in
          Array.iteri (fun i k -> Hashtbl.add index k i) fresh;
          if n = 0 then begin
            (* Nothing to assign; unbiasedness must already hold. *)
            List.iter
              (fun v ->
                let e =
                  List.fold_left
                    (fun acc (p, k) ->
                      match Hashtbl.find_opt table k with
                      | Some est -> acc +. (p *. est)
                      | None -> acc)
                    0. (dist v)
                in
                let fv = f v in
                if abs_float (e -. fv) > eps *. (1. +. abs_float fv) then
                  result := Error "batch has no fresh outcomes but is biased")
              batch
          end
          else begin
            (* Row of coefficients over fresh outcomes and the assigned
               contribution f0, for a data vector v. *)
            let row_of v =
              let coeffs = Array.make n 0. in
              let f0 = ref 0. in
              List.iter
                (fun (p, k) ->
                  if p > 0. then
                    match Hashtbl.find_opt table k with
                    | Some est -> f0 := !f0 +. (p *. est)
                    | None -> (
                        match Hashtbl.find_opt index k with
                        | Some i -> coeffs.(i) <- coeffs.(i) +. p
                        | None -> ()))
                (dist v);
              (coeffs, !f0)
            in
            let a_eq, b_eq =
              batch
              |> List.map (fun v ->
                     let coeffs, f0 = row_of v in
                     (coeffs, f v -. f0))
              |> List.split
            in
            let a_ub, b_ub =
              laters
              |> List.filter_map (fun v' ->
                     let coeffs, f0 = row_of v' in
                     if Array.exists (fun c -> c > 0.) coeffs then
                       Some (coeffs, f v' -. f0)
                     else None)
              |> List.split
            in
            (* Objective: Σ_{v∈batch} Var[est|v] — i.e. Σ_o w_o x_o² with
               w_o = Σ_v Pr[o|v] (the unbiasedness constraints pin the
               linear part). *)
            let w = Array.make n 0. in
            List.iter
              (fun v ->
                List.iter
                  (fun (p, k) ->
                    match Hashtbl.find_opt index k with
                    | Some i -> w.(i) <- w.(i) +. p
                    | None -> ())
                  (dist v))
              batch;
            (* Outcomes reachable only from later vectors keep weight 0;
               give them a tiny weight for strict convexity (their value
               is then driven to 0 unless constrained). *)
            let q = Array.map (fun wi -> 2. *. Float.max wi 1e-9) w in
            match
              Numerics.Qp.minimize ~eps ~q ~c:(Array.make n 0.)
                ~a_ub:(Array.of_list a_ub) ~b_ub:(Array.of_list b_ub)
                ~a_eq:(Array.of_list a_eq) ~b_eq:(Array.of_list b_eq) ()
            with
            | None -> result := Error "infeasible batch (no nonnegative unbiased extension)"
            | Some { Numerics.Qp.x; _ } ->
                Array.iteri (fun i k -> Hashtbl.replace table k x.(i)) fresh
          end)
    batches;
  match !result with Ok () -> Ok table | Error e -> Error e

let expectation problem est v =
  List.fold_left
    (fun acc (p, k) ->
      if p > 0. then
        match Hashtbl.find_opt est k with
        | Some e -> acc +. (p *. e)
        | None -> acc
      else acc)
    0. (problem.dist v)

let variance problem est v =
  let mean = expectation problem est v in
  let second =
    List.fold_left
      (fun acc (p, k) ->
        if p > 0. then
          match Hashtbl.find_opt est k with
          | Some e -> acc +. (p *. e *. e)
          | None -> acc
        else acc)
      0. (problem.dist v)
  in
  second -. (mean *. mean)

let is_monotone ?(eps = 1e-9) problem est =
  (* Index the data vectors consistent with each reachable outcome. *)
  let consistent : ('k, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun vi v ->
      List.iter
        (fun (p, k) ->
          if p > 0. then
            Hashtbl.replace consistent k
              (vi :: Option.value ~default:[] (Hashtbl.find_opt consistent k)))
        (problem.dist v))
    problem.data;
  let outcomes =
    Hashtbl.fold (fun k vs acc -> (k, List.sort_uniq compare vs) :: acc) consistent []
  in
  let subset a b =
    List.for_all (fun x -> List.mem x b) a
  in
  List.for_all
    (fun (o, vs) ->
      match Hashtbl.find_opt est o with
      | None -> true
      | Some e_o ->
          List.for_all
            (fun (o', vs') ->
              if subset vs vs' then
                match Hashtbl.find_opt est o' with
                | Some e_o' -> e_o >= e_o' -. eps
                | None -> true
              else true)
            outcomes)
    outcomes

let is_unbiased ?(eps = 1e-7) problem est =
  List.for_all
    (fun v ->
      let fv = problem.f v in
      abs_float (expectation problem est v -. fv) <= eps *. (1. +. abs_float fv))
    problem.data

module Problems = struct
  let vectors_of_grid grid r =
    let cells = Array.of_list grid in
    let m = Array.length cells in
    let total = int_of_float (float_of_int m ** float_of_int r) in
    List.init total (fun idx ->
        let v = Array.make r 0. in
        let x = ref idx in
        for i = 0 to r - 1 do
          v.(i) <- cells.(!x mod m);
          x := !x / m
        done;
        v)

  let oblivious ~probs ~grid ~f =
    let r = Array.length probs in
    {
      data = vectors_of_grid grid r;
      f;
      dist =
        (fun v ->
          Sampling.Outcome.Oblivious.enumerate ~probs v
          |> List.map (fun (p, (o : Sampling.Outcome.Oblivious.t)) -> (p, o.values)));
    }

  let binary_domain r =
    List.init (1 lsl r) (fun bits ->
        Array.init r (fun i -> if bits land (1 lsl i) <> 0 then 1. else 0.))

  let to_bits v = Array.map (fun x -> if x > 0.5 then 1 else 0) v

  let binary_known_seeds ~probs ~f =
    let r = Array.length probs in
    {
      data = binary_domain r;
      f;
      dist =
        (fun v ->
          Sampling.Outcome.Binary.enumerate ~probs (to_bits v)
          |> List.map (fun (p, (o : Sampling.Outcome.Binary.t)) ->
                 (p, (o.below, o.sampled))));
    }

  let binary_unknown_seeds ~probs ~f =
    let r = Array.length probs in
    {
      data = binary_domain r;
      f;
      dist =
        (fun v ->
          (* Outcome = set of sampled entries; only entries with v_i = 1
             can be sampled, each independently with probability p_i. *)
          let bits = to_bits v in
          let rec go i =
            if i = r then [ (1., []) ]
            else
              let rest = go (i + 1) in
              if bits.(i) = 1 then
                List.concat_map
                  (fun (p, mask) ->
                    [ (p *. probs.(i), true :: mask); (p *. (1. -. probs.(i)), false :: mask) ])
                  rest
              else List.map (fun (p, mask) -> (p, false :: mask)) rest
          in
          go 0 |> List.map (fun (p, mask) -> (p, Array.of_list mask)));
    }

  let pps_discretized ~taus ~grid ~buckets ~f =
    let r = Array.length taus in
    if buckets <= 0 then invalid_arg "pps_discretized: buckets must be positive";
    let centers =
      Array.init buckets (fun j ->
          (float_of_int j +. 0.5) /. float_of_int buckets)
    in
    let prob_each = 1. /. (float_of_int buckets ** float_of_int r) in
    let rec bucket_vectors i =
      if i = r then [ [] ]
      else
        let rest = bucket_vectors (i + 1) in
        List.concat_map
          (fun j -> List.map (fun tl -> j :: tl) rest)
          (List.init buckets Fun.id)
    in
    let all_buckets = List.map Array.of_list (bucket_vectors 0) in
    {
      data = vectors_of_grid grid r;
      f;
      dist =
        (fun v ->
          List.map
            (fun b ->
              let observed =
                Array.init r (fun i ->
                    if v.(i) >= centers.(b.(i)) *. taus.(i) then Some v.(i)
                    else None)
              in
              (prob_each, (observed, b)))
            all_buckets);
    }

  let sort_data cmp problem = { problem with data = List.stable_sort cmp problem.data }

  let order_difference_multiset a b =
    let is_zero v = Array.for_all (fun x -> x = 0.) v in
    match (is_zero a, is_zero b) with
    | true, true -> 0
    | true, false -> -1
    | false, true -> 1
    | false, false ->
        let key v =
          let m = Array.fold_left Float.max neg_infinity v in
          List.sort compare (Array.to_list (Array.map (fun x -> m -. x) v))
        in
        compare (key a) (key b)

  let count_below_max v =
    let m = Array.fold_left Float.max neg_infinity v in
    Array.fold_left (fun acc x -> if x < m then acc + 1 else acc) 0 v

  let is_zero v = Array.for_all (fun x -> x = 0.) v

  let order_l a b =
    match (is_zero a, is_zero b) with
    | true, true -> 0
    | true, false -> -1
    | false, true -> 1
    | false, false -> compare (count_below_max a) (count_below_max b)

  let count_positive v =
    Array.fold_left (fun acc x -> if x > 0. then acc + 1 else acc) 0 v

  let order_u a b = compare (count_positive a) (count_positive b)

  let batches_by level data =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun v ->
        let l = level v in
        Hashtbl.replace tbl l (v :: (Option.value ~default:[] (Hashtbl.find_opt tbl l))))
      data;
    Hashtbl.fold (fun l vs acc -> (l, List.rev vs) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
end
