(** Estimators over {e coordinated} (shared-seed) weighted samples
    (Section 7.2; the PRN method).

    With coordination every instance uses the same seed [u(h)] for key
    [h]: entry [i] of the data vector is sampled iff [v_i ≥ u·τ*_i]. The
    joint outcome distribution is the diagonal of the seed square, which
    changes what outcomes reveal: with equal thresholds, whenever {e any}
    entry is sampled the maximum is known exactly, so quantile estimation
    collapses to an all-or-nothing problem and the inverse-probability
    estimator is optimal again. This module provides those estimators and
    an exact 1-D moment engine (the seed is a single scalar, so exact
    moments are one piecewise integral for any r) — used by the
    coordination-ablation benchmark to quantify the paper's §7.2 claims:
    coordination boosts multi-instance queries and hurts decomposable
    ones.

    Outcomes reuse {!Sampling.Outcome.Pps.t} with all seed components
    equal. *)

val of_seed : taus:float array -> u:float -> float array -> Sampling.Outcome.Pps.t
(** The outcome of data [v] under shared seed [u]. *)

val draw : Numerics.Prng.t -> taus:float array -> float array -> Sampling.Outcome.Pps.t

val expectation :
  taus:float array -> v:float array -> (Sampling.Outcome.Pps.t -> float) -> float
(** Exact E[g(outcome) | v] — one piecewise Gauss–Legendre integral over
    the shared seed (any r). *)

val moments :
  taus:float array -> v:float array -> (Sampling.Outcome.Pps.t -> float) -> Exact.moments

val max_ht : Sampling.Outcome.Pps.t -> float
(** Inverse-probability max estimator for coordinated PPS samples, any r
    and any thresholds: the maximum is determined exactly when
    [max_S v ≥ u·max_i τ*_i] (the shared seed makes larger values sampled
    whenever smaller ones are), with probability
    [min(1, max(v)/max_i τ*_i)]. With equal thresholds this is Pareto
    optimal: outcomes outside the determining set are exactly the empty
    ones, which are consistent with the zero vector. *)

val min_ht : Sampling.Outcome.Pps.t -> float
(** Inverse-probability min estimator: positive only when all entries are
    sampled, which under a shared seed happens with probability
    [min_i min(1, v_i/τ*_i)]. *)

val max_variance_equal_tau : tau:float -> v:float array -> float
(** Closed-form Var[{!max_ht}] when all thresholds equal [tau]:
    [max² (1/min(1,max/τ) − 1)]. *)

val sum_covariance :
  p1:float -> p2:float -> v1:float -> v2:float -> shared:bool -> float
(** Covariance of the two per-instance single-key HT estimates
    [v_i/p_i·1(sampled_i)] under shared vs independent seeds:
    [shared = true] gives [(min(p1,p2)/(p1·p2) − 1)·v1·v2 ≥ 0],
    independent gives 0 — the reason coordination {e hurts} decomposable
    (sum-over-instances) queries. *)
