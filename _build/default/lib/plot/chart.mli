(** Line-chart rendering to standalone SVG — used by the benchmark
    harness to draw the paper's figures from the regenerated series.

    Visual contract (deliberately fixed): a light chart surface; hairline
    solid gridlines one step off the surface; 2px series lines with round
    joins; ≥8px end markers carrying a 2px surface ring; a legend
    whenever there are two or more series (never for one) plus sparing
    direct end labels that are dropped rather than stacked when they
    would collide; text in ink tokens, never in series colors; a single
    y axis. Categorical colors come from a fixed, validated slot order
    and are assigned by position, never cycled. The numeric series
    behind every figure is also printed by the bench harness, which
    serves as the accompanying table view. *)

type scale = Linear | Log

type series = {
  label : string;
  points : (float * float) list;  (** (x, y); on a log axis, points with
                                      a non-positive coordinate on that
                                      axis are dropped *)
}

type spec = {
  title : string;
  x_label : string;
  y_label : string;
  x_scale : scale;
  y_scale : scale;
  series : series list;  (** at most 8; colors by fixed slot order *)
  width : float;
  height : float;
}

val default : spec
(** Empty 720×440 linear chart — override the fields you need. *)

val palette : string array
(** The categorical slots (validated, fixed order) — exposed for tests. *)

val ticks : scale -> lo:float -> hi:float -> float list
(** Tick positions: clean 1–2–5 steps on linear axes, decades on log
    axes. Exposed for tests. *)

val tick_label : float -> string
(** Compact clean formatting (1,500 / 0.25 / 1e-05). *)

val render : spec -> string
(** The SVG document. *)

val write : path:string -> spec -> unit
