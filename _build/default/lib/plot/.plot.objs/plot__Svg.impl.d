lib/plot/svg.ml: Buffer Float List Printf String
