lib/plot/chart.ml: Array Buffer Float Fun List Printf String Svg
