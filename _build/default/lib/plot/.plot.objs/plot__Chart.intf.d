lib/plot/chart.mli:
