lib/plot/svg.mli:
