(** Minimal SVG document builder — the substrate for {!Chart}.

    OCaml's plotting ecosystem is thin, so the figure renderer is built
    from scratch: a tree of elements with escaped attributes and text,
    serialized to standalone [.svg] files. Only what charts need is
    provided. *)

type t
(** An SVG element (or text node). *)

val text_node : string -> t
(** Escaped character data. *)

val el : string -> ?attrs:(string * string) list -> t list -> t
(** [el name ~attrs children]. Attribute values are escaped. *)

val line : x1:float -> y1:float -> x2:float -> y2:float -> ?attrs:(string * string) list -> unit -> t
val polyline : points:(float * float) list -> ?attrs:(string * string) list -> unit -> t
val circle : cx:float -> cy:float -> r:float -> ?attrs:(string * string) list -> unit -> t
val rect : x:float -> y:float -> w:float -> h:float -> ?attrs:(string * string) list -> unit -> t

val text :
  x:float ->
  y:float ->
  ?anchor:string ->
  ?size:float ->
  ?fill:string ->
  ?weight:string ->
  string ->
  t
(** A text element in the chart's sans stack. [anchor] is
    start/middle/end. *)

val document : width:float -> height:float -> t list -> string
(** Serialize a complete standalone SVG document. *)

val to_file : path:string -> width:float -> height:float -> t list -> unit
