type t =
  | Text of string
  | El of { name : string; attrs : (string * string) list; children : t list }

let text_node s = Text s
let el name ?(attrs = []) children = El { name; attrs; children }

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float x =
  (* Compact coordinates: two decimals is sub-pixel at chart scale. *)
  if Float.is_integer x && abs_float x < 1e7 then
    Printf.sprintf "%d" (int_of_float x)
  else Printf.sprintf "%.2f" x

let f = fmt_float

let line ~x1 ~y1 ~x2 ~y2 ?(attrs = []) () =
  el "line"
    ~attrs:
      ([ ("x1", f x1); ("y1", f y1); ("x2", f x2); ("y2", f y2) ] @ attrs)
    []

let polyline ~points ?(attrs = []) () =
  let pts =
    String.concat " " (List.map (fun (x, y) -> f x ^ "," ^ f y) points)
  in
  el "polyline" ~attrs:(("points", pts) :: ("fill", "none") :: attrs) []

let circle ~cx ~cy ~r ?(attrs = []) () =
  el "circle" ~attrs:([ ("cx", f cx); ("cy", f cy); ("r", f r) ] @ attrs) []

let rect ~x ~y ~w ~h ?(attrs = []) () =
  el "rect"
    ~attrs:([ ("x", f x); ("y", f y); ("width", f w); ("height", f h) ] @ attrs)
    []

let font_stack =
  "system-ui, -apple-system, 'Segoe UI', Roboto, 'Helvetica Neue', sans-serif"

let text ~x ~y ?(anchor = "start") ?(size = 12.) ?(fill = "#0b0b0b")
    ?(weight = "normal") s =
  el "text"
    ~attrs:
      [
        ("x", f x);
        ("y", f y);
        ("text-anchor", anchor);
        ("font-size", f size);
        ("fill", fill);
        ("font-weight", weight);
        ("font-family", font_stack);
      ]
    [ text_node s ]

let rec render buf = function
  | Text s -> Buffer.add_string buf (escape s)
  | El { name; attrs; children } ->
      Buffer.add_char buf '<';
      Buffer.add_string buf name;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape v);
          Buffer.add_char buf '"')
        attrs;
      if children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter (render buf) children;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
      end

let document ~width ~height children =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  render buf
    (el "svg"
       ~attrs:
         [
           ("xmlns", "http://www.w3.org/2000/svg");
           ("width", f width);
           ("height", f height);
           ("viewBox", Printf.sprintf "0 0 %s %s" (f width) (f height));
         ]
       children);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file ~path ~width ~height children =
  let oc = open_out path in
  output_string oc (document ~width ~height children);
  close_out oc
