(** Multi-instance data sets: the instances × keys matrix of Section 7,
    together with the paper's worked example (Figure 5). *)

type t

val create : Sampling.Instance.t list -> t
(** Instances are numbered 0, 1, ... in list order. *)

val load : paths:string list -> t
(** Build a data set from instance files written by
    {!Sampling.Io.write_instance}, in path order. *)

val instances : t -> Sampling.Instance.t list
val num_instances : t -> int
val instance : t -> int -> Sampling.Instance.t
val keys : t -> int list
(** Union of supports, ascending. *)

val values : t -> int -> float array
(** Data vector of a key across all instances. *)

val sum_aggregate :
  t -> f:(float array -> float) -> select:(int -> bool) -> float
(** Ground truth [Σ_{h ∈ select} f(v(h))] over the union of supports. *)

val max_dominance : ?select:(int -> bool) -> t -> float
val min_dominance : ?select:(int -> bool) -> t -> float
val distinct_count : ?select:(int -> bool) -> t -> int
val l1_distance : t -> int -> int -> float
(** L1 distance between two instances by index. *)

(** The Figure 5(A) example: keys 1..6, instances 1..3 (0-indexed here). *)
module Figure5 : sig
  val dataset : t

  val seeds_u : (int * float) list
  (** The shared-seed values u printed in Figure 5(B):
        key 1 → 0.22, 2 → 0.75, 3 → 0.07, 4 → 0.92, 5 → 0.55, 6 → 0.37. *)

  val independent_u : (int * float array) list
  (** Per-key seed vectors (u1,u2,u3) of the independent panel. *)

  val shared_ranks : unit -> (int * float array) list
  (** Consistent shared-seed PPS ranks r_i(h) = u(h)/v_i(h) for each key
      (infinity for zero values) — must reproduce the printed table. *)

  val independent_ranks : unit -> (int * float array) list

  val bottom3 : ranks:(int * float array) list -> instance:int -> int list
  (** The bottom-3 sample (keys of the 3 smallest ranks) of an instance
      under the given rank table. *)
end
