lib/aggregates/distinct.ml: Array Estcore Float Fun Hashtbl Int List Numerics Option Sampling Set
