lib/aggregates/dataset.ml: Array Float List Sampling
