lib/aggregates/dataset.mli: Sampling
