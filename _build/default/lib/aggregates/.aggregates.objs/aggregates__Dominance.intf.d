lib/aggregates/dominance.mli: Sampling Sum_agg
