lib/aggregates/distinct.mli: Sampling
