lib/aggregates/dominance.ml: Array Estcore Float Sum_agg
