lib/aggregates/sum_agg.ml: Array Estcore Int List Sampling Set
