lib/aggregates/sum_agg.mli: Estcore Sampling
