(** Dominance norms over independently PPS-sampled instances with known
    seeds (Section 8.2).

    The max-dominance norm [Σ_h max_i v_i(h)] is the sum aggregate of
    max; with two instances it is estimated per key by [max^(L)]
    ({!Estcore.Max_pps.l}) or the [max^(HT)] baseline. Min-dominance is
    the sum aggregate of min, estimated by the (optimal)
    inverse-probability [min^(HT)]. *)

val max_dominance_l : Sum_agg.pps_samples -> select:(int -> bool) -> float
(** Max-dominance estimate with per-key [max^(L)] (r = 2 samples). *)

val max_dominance_ht : Sum_agg.pps_samples -> select:(int -> bool) -> float

val min_dominance_ht : Sum_agg.pps_samples -> select:(int -> bool) -> float

val max_dominance_coordinated : Sum_agg.pps_samples -> select:(int -> bool) -> float
(** Max-dominance from {e coordinated} (shared-seed) PPS samples, using
    the all-or-nothing-optimal {!Estcore.Coordinated.max_ht} per key. The
    samples must have been drawn with a [Sampling.Seeds.Shared] seed
    assignment; any r. *)

val exact_variance_coordinated :
  taus:float array ->
  instances:Sampling.Instance.t list ->
  select:(int -> bool) ->
  float
(** Exact variance of {!max_dominance_coordinated} (per-key shared-seed
    quadrature; per-key estimates remain independent across keys because
    seeds are independent per key). *)

val exact_variances :
  taus:float array ->
  instances:Sampling.Instance.t list ->
  select:(int -> bool) ->
  float * float
(** [(var_ht, var_l)]: exact variances of the two max-dominance
    estimators — per-key variances summed (independent estimates), the HT
    one in closed form, the L one by fast seed-space quadrature. *)

val normalized_variance : var:float -> truth:float -> float
(** [var / truth²] — the y-axis of Figure 7. *)
