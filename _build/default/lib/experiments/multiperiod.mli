(** Experiment E18 (extension) — distinct counts across r > 2 periods.

    Section 8.1 treats two instances; the general Theorem 4.1 solver
    extends the optimal OR^(L) per-key estimator to any number of
    independently sampled periods. This experiment measures, with exact
    per-key-class variances (full enumeration of the [2^r] seed-class
    outcomes per membership pattern), how the L-over-HT advantage grows
    with the number of periods: HT needs all r seeds below threshold
    (probability [Π p_i]), so its variance explodes exponentially in r,
    while OR^(L) keeps extracting partial information. *)

type row = {
  r : int;
  truth : float;
  var_l : float;  (** exact *)
  var_ht : float;  (** exact *)
  advantage : float;  (** var_ht / var_l *)
}

val series : ?p:float -> ?n_keys:int -> ?present_prob:float -> ?rs:int list -> unit -> row list
(** Periods drawn as independent Bernoulli(present_prob) memberships over
    a key universe; exact variances summed over the realized membership
    patterns. *)

val empirical_check : ?masters:int -> p:float -> r:int -> unit -> float * float
(** [(mean_rel_err, predicted_rel_sd)] of actual sampled L estimates on
    the same workload — sanity that the exact numbers describe runs. *)

val run : Format.formatter -> unit
