module B = Sampling.Outcome.Binary
module OW = Estcore.Or_weighted

let outcome ~p1 ~p2 ~below ~v =
  B.of_below ~probs:[| p1; p2 |] ~below (Array.of_list v)

(* The printed rows: (description, below, data, expected-L, expected-U). *)
let rows ~p1 ~p2 =
  let q = p1 +. p2 -. (p1 *. p2) in
  let c = 1. +. Float.max 0. (1. -. p1 -. p2) in
  [
    ( "S={} (u below both, data 0)",
      [| true; true |],
      [ 0; 0 ],
      0.,
      (1. -. (((0. *. (1. -. p2)) +. (0. *. (1. -. p1))) /. c)) /. (p1 *. p2) );
    ("S={} (u above both)", [| false; false |], [ 1; 1 ], 0., 0.);
    ( "S={1} ∧ u2>p2",
      [| true; false |],
      [ 1; 0 ],
      1. /. q,
      1. /. (p1 *. c) );
    ( "S={2} ∧ u1>p1",
      [| false; true |],
      [ 0; 1 ],
      1. /. q,
      1. /. (p2 *. c) );
    ( "S={1,2}",
      [| true; true |],
      [ 1; 1 ],
      1. /. q,
      (1. -. ((2. -. p1 -. p2) /. c)) /. (p1 *. p2) );
    ( "S={1} ∧ u2≤p2",
      [| true; true |],
      [ 1; 0 ],
      1. /. (p1 *. q),
      (1. -. ((1. -. p2) /. c)) /. (p1 *. p2) );
    ( "S={2} ∧ u1≤p1",
      [| true; true |],
      [ 0; 1 ],
      1. /. (p2 *. q),
      (1. -. ((1. -. p1) /. c)) /. (p1 *. p2) );
  ]

let tables_match ~p1 ~p2 =
  List.for_all
    (fun (_, below, v, exp_l, exp_u) ->
      let o = outcome ~p1 ~p2 ~below ~v in
      (* Rows whose S is empty but data is (0,0) correspond to the "Else"
         case of the U table only when something is sampled; for the two
         S={} rows the U estimate must be 0 as well. *)
      let exp_u =
        if Array.for_all not o.B.sampled then 0. else exp_u
      in
      Numerics.Special.float_equal ~eps:1e-9 (OW.l o) exp_l
      && Numerics.Special.float_equal ~eps:1e-9 (OW.u o) exp_u)
    (rows ~p1 ~p2)

let unbiased ~p1 ~p2 =
  List.for_all
    (fun v ->
      let target = if v.(0) = 1 || v.(1) = 1 then 1. else 0. in
      let check est =
        let m = Estcore.Exact.binary ~probs:[| p1; p2 |] ~v est in
        Numerics.Special.float_equal ~eps:1e-9 m.Estcore.Exact.mean target
      in
      check OW.l && check OW.u && check OW.ht)
    [ [| 0; 0 |]; [| 1; 0 |]; [| 0; 1 |]; [| 1; 1 |] ]

let run ppf =
  Format.fprintf ppf
    "=== E11 / Section 5.1 tables: OR^(L), OR^(U), weighted known seeds ===@.";
  let p1 = 0.3 and p2 = 0.45 in
  Format.fprintf ppf "p = (%.2f, %.2f):@." p1 p2;
  Format.fprintf ppf "%-30s %-12s %-12s@." "outcome" "OR(L)" "OR(U)";
  List.iter
    (fun (label, below, v, _, _) ->
      let o = outcome ~p1 ~p2 ~below ~v in
      Format.fprintf ppf "%-30s %-12.6f %-12.6f@." label (OW.l o) (OW.u o))
    (rows ~p1 ~p2);
  Format.fprintf ppf "printed tables match the library: %b@."
    (tables_match ~p1 ~p2);
  Format.fprintf ppf "unbiased on all binary data (p=(%.2f,%.2f)): %b@." p1
    p2 (unbiased ~p1 ~p2);
  Format.fprintf ppf
    "variance equals the weight-oblivious case (Section 5 mapping): \
     Var[L|(1,1)] = %.6f = %.6f@."
    (OW.var_l ~p1 ~p2 ~v:[| 1; 1 |])
    (Estcore.Or_oblivious.var_l_11 ~p1 ~p2)
