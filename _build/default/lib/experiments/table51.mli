(** Experiment E11 — the Section 5.1 tables: [OR^(L)] and [OR^(U)] under
    weighted sampling with known seeds, r = 2. Checks every row of both
    tables against the library (which implements them through the
    Section 5 outcome mapping), and certifies unbiasedness on all four
    binary data vectors by exhaustive enumeration. *)

val tables_match : p1:float -> p2:float -> bool
(** Every (outcome, seed-class) row of both printed tables equals the
    library's value. *)

val unbiased : p1:float -> p2:float -> bool

val run : Format.formatter -> unit
