module DC = Aggregates.Distinct

type distinct_row = {
  p : float;
  var_coord : float;
  var_l : float;
  var_ht : float;
}

let distinct_series ?(jaccard = 0.5) ?(n = 10_000) ?(ps = [ 0.01; 0.02; 0.05; 0.1; 0.2 ]) () =
  let a, b = Workload.Setpairs.pair ~n ~jaccard in
  let d = float_of_int (Workload.Setpairs.union_size a b) in
  let j = Sampling.Instance.jaccard a b in
  List.map
    (fun p ->
      {
        p;
        var_coord = DC.var_coordinated ~d ~p;
        var_l = DC.var_l ~d ~jaccard:j ~p1:p ~p2:p;
        var_ht = DC.var_ht ~d ~p1:p ~p2:p;
      })
    ps

type maxdom_row = {
  percent : float;
  nvar_coord : float;
  nvar_l : float;
  nvar_ht : float;
}

let small_traffic =
  {
    Workload.Traffic.default with
    Workload.Traffic.n_shared = 2_200;
    n_only = 2_700;
    total_per_hour = 1.1e5;
  }

let maxdom_series ?(percents = [ 1.; 5.; 20. ]) ?(params = small_traffic) () =
  let ((a, b) as pair) = Workload.Traffic.generate params in
  ignore pair;
  let instances = [ a; b ] in
  let truth = Sampling.Instance.max_dominance instances in
  List.map
    (fun percent ->
      let k inst =
        percent /. 100. *. float_of_int (Sampling.Instance.cardinality inst)
      in
      let taus =
        [|
          Sampling.Poisson.tau_for_expected_size a (k a);
          Sampling.Poisson.tau_for_expected_size b (k b);
        |]
      in
      let vht, vl =
        Aggregates.Dominance.exact_variances ~taus ~instances
          ~select:(fun _ -> true)
      in
      let vc =
        Aggregates.Dominance.exact_variance_coordinated ~taus ~instances
          ~select:(fun _ -> true)
      in
      let t2 = truth *. truth in
      {
        percent;
        nvar_coord = vc /. t2;
        nvar_l = vl /. t2;
        nvar_ht = vht /. t2;
      })
    percents

let decomposable_penalty ~p ~v1 ~v2 =
  let var i = Estcore.Ht.single_variance ~p ~value:i in
  let cov = Estcore.Coordinated.sum_covariance ~p1:p ~p2:p ~v1 ~v2 ~shared:true in
  let indep = var v1 +. var v2 in
  (indep +. (2. *. cov)) /. indep

let run ppf =
  Format.fprintf ppf
    "=== E15 (extension): coordination ablation — §7.2 quantified ===@.";
  Format.fprintf ppf "@.Distinct count, n = 10k per set, J = 0.5 (exact Var):@.";
  Format.fprintf ppf "%-8s %-14s %-14s %-14s %-18s@." "p" "coordinated"
    "indep OR(L)" "indep OR(HT)" "coord/L advantage";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8.2f %-14.4e %-14.4e %-14.4e %-18.2f@." r.p
        r.var_coord r.var_l r.var_ht
        (r.var_l /. r.var_coord))
    (distinct_series ());
  Format.fprintf ppf "@.Max dominance on traffic (normalized exact Var):@.";
  Format.fprintf ppf "%-10s %-14s %-14s %-14s@." "% sampled" "coordinated"
    "indep max(L)" "indep max(HT)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10.1f %-14.4e %-14.4e %-14.4e@." r.percent
        r.nvar_coord r.nvar_l r.nvar_ht)
    (maxdom_series ());
  Format.fprintf ppf
    "@.Decomposable-query penalty Var_shared/Var_indep of v̂1+v̂2 per key:@.";
  List.iter
    (fun p ->
      Format.fprintf ppf "  p = %.2f: equal values %.3f, 4:1 values %.3f@." p
        (decomposable_penalty ~p ~v1:1. ~v2:1.)
        (decomposable_penalty ~p ~v1:4. ~v2:1.))
    [ 0.05; 0.2; 0.5 ];
  Format.fprintf ppf "@.Per-key-class picture (distinct count, exact):@.";
  List.iter
    (fun p ->
      Format.fprintf ppf
        "  p = %.2f: (1,0) keys — coord %.2f vs indep-L %.2f; (1,1) keys — \
         coord %.2f vs indep-L %.2f@."
        p
        (DC.var_coordinated ~d:1. ~p)
        (Estcore.Or_oblivious.var_l_10 ~p1:p ~p2:p)
        (DC.var_coordinated ~d:1. ~p)
        (Estcore.Or_oblivious.var_l_11 ~p1:p ~p2:p))
    [ 0.05; 0.2 ];
  Format.fprintf ppf
    "(coordination boosts multi-instance queries — dramatically so on \
     keys the instances disagree on, where independent samples cannot \
     combine their partial information — while independent sampling \
     retains a factor ≈ 2 on keys with identical values (two chances to \
     sample) and is strictly better for decomposable queries: the §7.2 \
     trade-off, quantified)@."
