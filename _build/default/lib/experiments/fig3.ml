module MP = Estcore.Max_pps

let unbiased_on ~taus ~v =
  let m = Estcore.Exact.pps ~taus ~v MP.l in
  Numerics.Special.float_equal ~eps:1e-7 m.Estcore.Exact.mean
    (Float.max v.(0) v.(1))

let case_grid () =
  [
    ("zero vector", [| 1.0; 1.3 |], [| 0.; 0. |]);
    ("v1 ≥ v2 ≥ τ2 (eq. 26)", [| 1.0; 1.3 |], [| 2.0; 1.5 |]);
    ("v1 ≥ τ1, v2 ≤ min(τ2,v1)", [| 1.0; 1.3 |], [| 1.2; 0.4 |]);
    ("v2 ≤ v1 ≤ min(τ1,τ2) (eq. 29)", [| 1.0; 1.3 |], [| 0.6; 0.25 |]);
    ("v2 ≤ τ2 ≤ v1 ≤ τ1 (eq. 30*)", [| 1.3; 0.6 |], [| 0.9; 0.3 |]);
    ("equal entries (eq. 25)", [| 1.0; 1.3 |], [| 0.5; 0.5 |]);
    ("swapped: v2 > v1", [| 1.0; 1.3 |], [| 0.25; 0.8 |]);
    ("one zero entry", [| 1.0; 1.3 |], [| 0.7; 0. |]);
  ]

let run ppf =
  Format.fprintf ppf
    "=== E6 / Figure 3: weighted PPS known-seeds max^(L), r = 2 ===@.";
  Format.fprintf ppf
    "Determining vectors on data (0.6,0.25), taus (1.0,1.3):@.";
  let taus = [| 1.0; 1.3 |] in
  let v = [| 0.6; 0.25 |] in
  List.iter
    (fun (label, seeds) ->
      let o = Sampling.Outcome.Pps.of_seeds ~taus ~seeds v in
      let phi = MP.determining_vector o in
      Format.fprintf ppf "  %-34s φ = (%.4f, %.4f)  est = %.6f@." label
        phi.(0) phi.(1) (MP.l o))
    [
      ("u=(0.9,0.9): S = {} ", [| 0.9; 0.9 |]);
      ("u=(0.3,0.9): S = {1}, bound>v1", [| 0.3; 0.9 |]);
      ("u=(0.3,0.3): S = {1}, bound<v1", [| 0.3; 0.3 |]);
      ("u=(0.9,0.1): S = {2}", [| 0.9; 0.1 |]);
      ("u=(0.3,0.1): S = {1,2}", [| 0.3; 0.1 |]);
    ];
  Format.fprintf ppf "@.Unbiasedness by seed-space quadrature, every case:@.";
  List.iter
    (fun (label, taus, v) ->
      Format.fprintf ppf "  %-34s taus=(%.1f,%.1f) v=(%.2f,%.2f): %s@." label
        taus.(0) taus.(1) v.(0) v.(1)
        (if unbiased_on ~taus ~v then "unbiased ✓" else "BIASED ✗"))
    (case_grid ());
  Format.fprintf ppf
    "(* eq. 30 as printed in the paper has a typo in its log argument; \
     see EXPERIMENTS.md — the corrected form is implemented and verified \
     above *)@."
