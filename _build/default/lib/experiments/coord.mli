(** Experiment E15 (extension) — coordination ablation, quantifying the
    Section 7.2 claims:

    - multi-instance queries (distinct count, max dominance) get sharply
      better with coordinated (shared-seed) samples than with independent
      samples — even against the optimal independent L estimators;
    - decomposable queries (sums over instances) get {e worse}, because
      coordinated per-instance estimates are positively correlated. *)

type distinct_row = {
  p : float;
  var_coord : float;
  var_l : float;  (** independent samples, OR^(L) *)
  var_ht : float;  (** independent samples, OR^(HT) *)
}

val distinct_series : ?jaccard:float -> ?n:int -> ?ps:float list -> unit -> distinct_row list
(** Exact variances of the three distinct-count estimators on a set pair. *)

type maxdom_row = {
  percent : float;
  nvar_coord : float;
  nvar_l : float;
  nvar_ht : float;
}

val maxdom_series :
  ?percents:float list -> ?params:Workload.Traffic.params -> unit -> maxdom_row list

val decomposable_penalty : p:float -> v1:float -> v2:float -> float
(** Var[v̂₁+v̂₂ | shared seed] / Var[v̂₁+v̂₂ | independent] for one key —
    always ≥ 1; equals [1 + 2·Cov/(Var₁+Var₂)]. *)

val run : Format.formatter -> unit
