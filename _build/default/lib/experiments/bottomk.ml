module DC = Aggregates.Distinct
module SA = Aggregates.Sum_agg

type row = {
  label : string;
  truth : float;
  mean : float;
  rel_sd : float;
  predicted_rel_sd : float;
}

let distinct_bottom_k ?(n = 5_000) ?(jaccard = 0.5) ?(k = 500) ?(masters = 200) () =
  let a, b = Workload.Setpairs.pair ~n ~jaccard in
  let truth = float_of_int (Workload.Setpairs.union_size a b) in
  let acc = Numerics.Stats.Acc.create () in
  for m = 1 to masters do
    let seeds = Sampling.Seeds.create ~master:m Sampling.Seeds.Independent in
    let s1, p1 = DC.sample_binary_bottom_k seeds ~k ~instance:0 a in
    let s2, p2 = DC.sample_binary_bottom_k seeds ~k ~instance:1 b in
    let c = DC.classify seeds ~p1 ~p2 ~s1 ~s2 ~select:(fun _ -> true) in
    Numerics.Stats.Acc.add acc (DC.l_estimate c ~p1 ~p2)
  done;
  let p_expected = float_of_int k /. float_of_int n in
  {
    label = Printf.sprintf "distinct, bottom-%d of %d, OR^(L)" k n;
    truth;
    mean = Numerics.Stats.Acc.mean acc;
    rel_sd = sqrt (Numerics.Stats.Acc.var acc) /. truth;
    predicted_rel_sd =
      sqrt (DC.var_l ~d:truth ~jaccard ~p1:p_expected ~p2:p_expected) /. truth;
  }

let small_traffic =
  {
    Workload.Traffic.default with
    Workload.Traffic.n_shared = 1_100;
    n_only = 1_350;
    total_per_hour = 5.5e4;
  }

let maxdom_priority ?(k = 250) ?(masters = 150) () =
  let a, b = Workload.Traffic.generate small_traffic in
  let instances = [ a; b ] in
  let truth = Sampling.Instance.max_dominance instances in
  let acc_l = Numerics.Stats.Acc.create () in
  let acc_ht = Numerics.Stats.Acc.create () in
  for m = 1 to masters do
    let seeds = Sampling.Seeds.create ~master:m Sampling.Seeds.Independent in
    let samples = SA.sample_priority seeds ~k instances in
    let all _ = true in
    Numerics.Stats.Acc.add acc_l
      (Aggregates.Dominance.max_dominance_l samples ~select:all);
    Numerics.Stats.Acc.add acc_ht
      (Aggregates.Dominance.max_dominance_ht samples ~select:all)
  done;
  (* Predicted: Poisson exact variance at the same expected size. *)
  let taus =
    [|
      Sampling.Poisson.tau_for_expected_size a (float_of_int k);
      Sampling.Poisson.tau_for_expected_size b (float_of_int k);
    |]
  in
  let vht, vl =
    Aggregates.Dominance.exact_variances ~taus ~instances ~select:(fun _ -> true)
  in
  ( {
      label = Printf.sprintf "max dominance, priority-%d, max^(L)" k;
      truth;
      mean = Numerics.Stats.Acc.mean acc_l;
      rel_sd = sqrt (Numerics.Stats.Acc.var acc_l) /. truth;
      predicted_rel_sd = sqrt vl /. truth;
    },
    {
      label = Printf.sprintf "max dominance, priority-%d, max^(HT)" k;
      truth;
      mean = Numerics.Stats.Acc.mean acc_ht;
      rel_sd = sqrt (Numerics.Stats.Acc.var acc_ht) /. truth;
      predicted_rel_sd = sqrt vht /. truth;
    } )

let pp_row ppf r =
  Format.fprintf ppf
    "  %-42s truth %.4e, mean %.4e (%+.2f%%), rel.sd %.4f (Poisson \
     prediction %.4f)@."
    r.label r.truth r.mean
    (100. *. (r.mean -. r.truth) /. r.truth)
    r.rel_sd r.predicted_rel_sd

let run ppf =
  Format.fprintf ppf
    "=== E16 (extension): fixed-size bottom-k / priority samples ===@.";
  pp_row ppf (distinct_bottom_k ());
  let l, ht = maxdom_priority () in
  pp_row ppf l;
  pp_row ppf ht;
  Format.fprintf ppf
    "(rank conditioning makes the Poisson estimators apply verbatim; \
     means land on the truth and spreads match the Poisson predictions \
     at equal expected sample size)@."
