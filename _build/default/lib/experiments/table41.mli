(** Experiment E2 — the Section 4.1 outcome table for [max^(L)] with
    general (p₁, p₂), r = 2, cross-checked against the estimator derived
    from scratch by the generic Algorithm 1 engine on a value grid. *)

val closed_form_table :
  p1:float -> p2:float -> v1:float -> v2:float -> (string * float) list
(** The four outcome rows of the paper's table. *)

val engine_agrees : ?grid:float list -> p1:float -> p2:float -> unit -> bool
(** Machine-derive [max^(L)] by Algorithm 1 (L order) on [grid²] and
    compare every outcome estimate with the closed form. *)

val run : Format.formatter -> unit
