module DC = Aggregates.Distinct
module B = Sampling.Outcome.Binary

type row = {
  r : int;
  truth : float;
  var_l : float;
  var_ht : float;
  advantage : float;
}

(* Membership matrix: keys × periods, deterministic. *)
let memberships ~n_keys ~periods ~present_prob ~seed =
  let rng = Numerics.Prng.create ~seed () in
  Array.init n_keys (fun _ ->
      Array.init periods (fun _ -> Numerics.Prng.float rng < present_prob))

let pattern_counts members r =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun row ->
      let pat = Array.to_list (Array.sub row 0 r) in
      if List.exists Fun.id pat then
        Hashtbl.replace tbl pat
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl pat)))
    members;
  tbl

let exact_row ~p ~members r =
  let probs = Array.make r p in
  let g = Estcore.Max_oblivious.General.create ~probs in
  let l_est o = Estcore.Max_oblivious.General.estimate g (B.to_oblivious o) in
  let inv = 1. /. Array.fold_left ( *. ) 1. probs in
  let ht_est (o : B.t) =
    if
      Array.for_all Fun.id o.B.below
      && Array.exists Fun.id o.B.sampled
    then inv
    else 0.
  in
  let tbl = pattern_counts members r in
  let truth = ref 0. and var_l = ref 0. and var_ht = ref 0. in
  Hashtbl.iter
    (fun pat count ->
      let v = Array.of_list (List.map (fun b -> if b then 1 else 0) pat) in
      let c = float_of_int count in
      truth := !truth +. c;
      var_l := !var_l +. (c *. (Estcore.Exact.binary ~probs ~v l_est).Estcore.Exact.var);
      var_ht :=
        !var_ht +. (c *. (Estcore.Exact.binary ~probs ~v ht_est).Estcore.Exact.var))
    tbl;
  { r; truth = !truth; var_l = !var_l; var_ht = !var_ht; advantage = !var_ht /. !var_l }

let default_members ~n_keys ~present_prob =
  memberships ~n_keys ~periods:6 ~present_prob ~seed:2718

let series ?(p = 0.1) ?(n_keys = 20_000) ?(present_prob = 0.6) ?(rs = [ 2; 3; 4; 5 ]) () =
  let members = default_members ~n_keys ~present_prob in
  List.map (exact_row ~p ~members) rs

let empirical_check ?(masters = 60) ~p ~r () =
  let n_keys = 5_000 in
  let members = default_members ~n_keys ~present_prob:0.6 in
  let instances =
    Array.init r (fun i ->
        Sampling.Instance.of_keys
          (List.filteri (fun _ _ -> true)
             (List.concat
                (List.init n_keys (fun h ->
                     if members.(h).(i) then [ h + 1 ] else [])))))
  in
  let probs = Array.make r p in
  let t = DC.Multi.create ~probs in
  let row = exact_row ~p ~members r in
  let acc = Numerics.Stats.Acc.create () in
  for m = 1 to masters do
    let seeds = Sampling.Seeds.create ~master:m Sampling.Seeds.Independent in
    let samples =
      Array.mapi
        (fun i inst -> DC.sample_binary seeds ~p ~instance:i inst)
        instances
    in
    Numerics.Stats.Acc.add acc
      (abs_float
         (DC.Multi.estimate t seeds ~samples ~select:(fun _ -> true)
         -. row.truth)
      /. row.truth)
  done;
  (Numerics.Stats.Acc.mean acc, sqrt row.var_l /. row.truth)

let run ppf =
  Format.fprintf ppf
    "=== E18 (extension): distinct counts across r > 2 periods ===@.";
  Format.fprintf ppf
    "20k keys, each present in a period w.p. 0.6, sampling p = 0.1 per \
     period (exact variances):@.";
  Format.fprintf ppf "%-4s %-10s %-12s %-12s %-12s@." "r" "truth"
    "Var[OR^(L)]" "Var[OR^(HT)]" "HT/L";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-4d %-10.0f %-12.4e %-12.4e %-12.1f@." row.r
        row.truth row.var_l row.var_ht row.advantage)
    (series ());
  let err, pred = empirical_check ~p:0.1 ~r:3 () in
  Format.fprintf ppf
    "empirical sanity (r = 3, 5k keys, 60 runs): mean |rel.err| %.4f vs \
     predicted rel.sd %.4f@."
    err pred;
  Format.fprintf ppf
    "(HT's positive outcomes need all r seeds below threshold — its \
     variance grows like p^{-r} — while OR^(L) extracts partial \
     information from every period and degrades only polynomially)@."
