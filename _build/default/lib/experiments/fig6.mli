(** Experiment E9 — Figure 6: required sample size for distinct-count
    estimation. For instances of size n with Jaccard coefficient
    J ∈ {0, 0.5, 0.9, 1} and a target coefficient of variation
    cv ∈ {0.1, 0.02}, the expected per-instance sample size s = p·n
    needed by the HT and L estimators, and the ratio s(L)/s(HT)
    (≈ √(1−J)/2 in the small-p regime, approaching a constant number of
    samples when p > (1−J)/(2J)). *)

type row = {
  n : float;
  s_ht : float array;  (** per Jaccard value *)
  s_l : float array;
}

val jaccards : float list

val series : cv:float -> ?ns:float list -> unit -> row list

val run : Format.formatter -> unit
