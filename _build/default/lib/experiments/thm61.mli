(** Experiment E12 — Theorem 6.1 and the Section 6 negative results as LP
    certificates: with {e unknown} seeds there is no nonnegative unbiased
    estimator for OR when p₁+p₂ < 1, for ℓth (ℓ < r), or for XOR (hence
    RG^d) at any p < 1 — while with {e known} seeds all of these OR/ℓth
    instances are feasible, and min (ℓ = r) is feasible even with unknown
    seeds. *)

type line = {
  label : string;
  feasible : bool;
  expected : bool;
}

val certificates : unit -> line list
val all_match : unit -> bool
val run : Format.formatter -> unit
