module E = Estcore.Existence

type line = { label : string; feasible : bool; expected : bool }

let certificates () =
  [
    {
      label = "OR, unknown seeds, p=(0.3,0.3) [p1+p2<1]";
      feasible = E.or_unknown_seeds ~p1:0.3 ~p2:0.3;
      expected = false;
    };
    {
      label = "OR, unknown seeds, p=(0.45,0.45)";
      feasible = E.or_unknown_seeds ~p1:0.45 ~p2:0.45;
      expected = false;
    };
    {
      label = "OR, unknown seeds, p=(0.6,0.6) [p1+p2≥1]";
      feasible = E.or_unknown_seeds ~p1:0.6 ~p2:0.6;
      expected = true;
    };
    {
      label = "OR, known seeds, p=(0.3,0.3)";
      feasible = E.or_known_seeds ~p1:0.3 ~p2:0.3;
      expected = true;
    };
    {
      label = "OR, known seeds, p=(0.05,0.05)";
      feasible = E.or_known_seeds ~p1:0.05 ~p2:0.05;
      expected = true;
    };
    {
      label = "XOR (RG), unknown seeds, p=(0.6,0.6)";
      feasible = E.xor_unknown_seeds ~p1:0.6 ~p2:0.6;
      expected = false;
    };
    {
      label = "XOR (RG), unknown seeds, p=(0.95,0.95)";
      feasible = E.xor_unknown_seeds ~p1:0.95 ~p2:0.95;
      expected = false;
    };
    {
      label = "XOR (RG), known seeds, p=(0.3,0.3)";
      feasible = E.xor_known_seeds ~p1:0.3 ~p2:0.3;
      expected = true;
    };
    {
      label = "2nd of r=3, unknown seeds, p=0.3";
      feasible = E.lth_unknown_seeds ~r:3 ~l:2 ~p:(Array.make 3 0.3);
      expected = false;
    };
    {
      label = "2nd of r=4, unknown seeds, p=0.4";
      feasible = E.lth_unknown_seeds ~r:4 ~l:2 ~p:(Array.make 4 0.4);
      expected = false;
    };
    {
      label = "min (l=r), r=3, unknown seeds, p=0.3";
      feasible = E.lth_unknown_seeds ~r:3 ~l:3 ~p:(Array.make 3 0.3);
      expected = true;
    };
    {
      label = "max (l=1), r=2, unknown seeds, p=0.25";
      feasible = E.lth_unknown_seeds ~r:2 ~l:1 ~p:(Array.make 2 0.25);
      expected = false;
    };
  ]

let all_match () =
  List.for_all (fun l -> l.feasible = l.expected) (certificates ())

let run ppf =
  Format.fprintf ppf
    "=== E12 / Theorem 6.1: existence certificates (two-phase simplex) ===@.";
  Format.fprintf ppf "%-46s %-10s %-10s@." "instance" "feasible" "expected";
  List.iter
    (fun l ->
      Format.fprintf ppf "%-46s %-10b %-10b@." l.label l.feasible l.expected)
    (certificates ());
  Format.fprintf ppf "all certificates match the theory: %b@." (all_match ())
