(** Experiment E17 (extension) — beyond the paper's tabulated cases.

    Section 4 notes that the inverse-probability estimator is {e not}
    optimal for middle quantiles (ℓth, 1 < ℓ < r) or for the range at
    r > 2, but derives no alternative. The designer engine fills the gap:
    it machine-derives order-based estimators for the median of three
    and for RG at r = 3 over a value grid, verifies them, and quantifies
    their variance advantage over the HT baseline. *)

type comparison = {
  label : string;
  data : float array;
  var_derived : float;
  var_ht : float;
}

val median3 :
  ?p:float -> ?grid:float list -> unit -> (comparison list, string) result
(** Derive the ℓ = 2 (median) estimator for r = 3 uniform-p Poisson by
    Algorithm 1 under the dense-first order and compare variances with
    the HT quantile estimator on representative vectors. The derived
    table is checked unbiased and nonnegative before comparison. *)

val range3 :
  ?p:float -> ?grid:float list -> unit -> (comparison list, string) result
(** Same for RG = max − min at r = 3 (where HT stops being optimal). Uses
    Algorithm 2 with dense-first batches, which keeps the nonnegativity
    constraints explicit. *)

val run : Format.formatter -> unit
