(** Experiment E3 — the Section 4.2 tables: the asymmetric [max^(Uas)]
    and the symmetric [max^(U)], cross-checked against the generic
    Algorithm 2 engine (singleton batches reproduce Uas; level batches
    reproduce U). *)

val engine_agrees_u : ?grid:float list -> p1:float -> p2:float -> unit -> bool
(** Algorithm 2 with batches by number of positive entries must equal the
    symmetric closed form [max^(U)] on every outcome. *)

val engine_agrees_uas : ?grid:float list -> p1:float -> p2:float -> unit -> bool
(** Algorithm 2 with singleton batches ordered "(v,0) before (0,v)" must
    equal the asymmetric closed form [max^(Uas)]. *)

val run : Format.formatter -> unit
