(** Experiment E13 — Theorem 4.2 / Lemma 4.2: the uniform-p coefficient
    recursion for [max^(L)] at general r. Prints the coefficients,
    verifies the r = 2, 3 parametric closed forms, checks unbiasedness by
    exhaustive enumeration up to r = 6, and extends the paper's r ≤ 4
    verification of the Lemma 4.2 conditions (α₁ ≤ p^{-r}, α_i < 0 for
    i > 1, hence monotonicity / nonnegativity / dominance over HT) to
    r ≤ 8 over a p grid. *)

val lemma42_grid : ?rs:int list -> ?ps:float list -> unit -> (int * float * bool) list

val closed_forms_match : p:float -> bool
(** r = 2 and r = 3 parametric forms (Section 4.1) vs the recursion. *)

val unbiased_up_to : ?rmax:int -> p:float -> unit -> bool

val run : Format.formatter -> unit
