module F = Aggregates.Dataset.Figure5
module DS = Aggregates.Dataset

let aggregates_match () =
  let ds = F.dataset in
  let even h = h mod 2 = 0 in
  let ds12 =
    DS.create [ DS.instance ds 0; DS.instance ds 1 ]
  in
  let maxdom_even = DS.max_dominance ~select:even ds12 in
  let l1_23 =
    List.fold_left
      (fun acc h ->
        acc
        +. abs_float
             (Sampling.Instance.value (DS.instance ds 1) h
             -. Sampling.Instance.value (DS.instance ds 2) h))
      0. [ 1; 2; 3 ]
  in
  (* Per-key rows printed in panel (A). *)
  let rows_ok =
    List.for_all2
      (fun h (m12, m123, mn12, rg) ->
        let v = DS.values ds h in
        Float.max v.(0) v.(1) = m12
        && Array.fold_left Float.max 0. v = m123
        && Float.min v.(0) v.(1) = mn12
        && Array.fold_left Float.max 0. v -. Array.fold_left Float.min infinity v = rg)
      [ 1; 2; 3; 4; 5; 6 ]
      (* As printed in Figure 5(A), except key 4's min(v1,v2): the paper
         prints 0, but min(5,20) = 5. *)
      [
        (20., 20., 15., 10.);
        (10., 15., 0., 15.);
        (12., 15., 10., 5.);
        (20., 20., 5., 20.);
        (10., 15., 0., 15.);
        (10., 10., 10., 0.);
      ]
  in
  maxdom_even = 40. && l1_23 = 18. && rows_ok

let independent_bottom3_match () =
  let ranks = F.independent_ranks () in
  List.for_all2
    (fun i expected -> F.bottom3 ~ranks ~instance:i = expected)
    [ 0; 1; 2 ]
    [ [ 3; 1; 6 ]; [ 1; 6; 4 ]; [ 3; 5; 2 ] ]

let pp_rank ppf r =
  if r = infinity then Format.pp_print_string ppf "  +inf "
  else Format.fprintf ppf "%7.4f" r

let run ppf =
  Format.fprintf ppf "=== E8 / Figure 5: worked example ===@.";
  Format.fprintf ppf "(A) aggregates match the printed values: %b@."
    (aggregates_match ());
  Format.fprintf ppf "@.(B) consistent shared-seed PPS ranks:@.";
  Format.fprintf ppf "  key:   1       2       3       4       5       6@.";
  let print_ranks ranks i =
    Format.fprintf ppf "  r%d: " (i + 1);
    List.iter (fun (_, rs) -> Format.fprintf ppf " %a" pp_rank rs.(i)) ranks;
    Format.fprintf ppf "@."
  in
  let shared = F.shared_ranks () in
  for i = 0 to 2 do
    print_ranks shared i
  done;
  Format.fprintf ppf "  independent PPS ranks:@.";
  let indep = F.independent_ranks () in
  for i = 0 to 2 do
    print_ranks indep i
  done;
  Format.fprintf ppf "@.(C) bottom-3 samples:@.";
  for i = 0 to 2 do
    Format.fprintf ppf "  shared %d: %s   independent %d: %s@." (i + 1)
      (String.concat ", "
         (List.map string_of_int (F.bottom3 ~ranks:shared ~instance:i)))
      (i + 1)
      (String.concat ", "
         (List.map string_of_int (F.bottom3 ~ranks:indep ~instance:i)))
  done;
  Format.fprintf ppf
    "independent bottom-3 match the paper exactly: %b@."
    (independent_bottom3_match ());
  Format.fprintf ppf
    "(the paper's shared panel prints r2(key 3) = 0.0583, but 0.07/12 = \
     0.0058, which moves key 3 into instance 2's shared bottom-3: we get \
     3,1,6 where the paper prints 1,6,4 — an arithmetic slip in the \
     paper's example; the independent panel, where 0.71/12 is computed \
     correctly as 0.0592, matches exactly. See EXPERIMENTS.md.)@."
