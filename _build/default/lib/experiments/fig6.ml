module R = Aggregates.Distinct.Required

let jaccards = [ 0.; 0.5; 0.9; 1. ]

type row = { n : float; s_ht : float array; s_l : float array }

let default_ns = List.init 9 (fun i -> 10. ** float_of_int (i + 2))

let series ~cv ?(ns = default_ns) () =
  List.map
    (fun n ->
      let s_of p_of =
        Array.of_list
          (List.map
             (fun j -> R.sample_size ~p:(p_of ~n ~jaccard:j ~cv) ~n)
             jaccards)
      in
      { n; s_ht = s_of R.p_ht; s_l = s_of R.p_l })
    ns

let run ppf =
  Format.fprintf ppf
    "=== E9 / Figure 6: required sample size s vs n (distinct count) ===@.";
  List.iter
    (fun cv ->
      Format.fprintf ppf "@.cv = %.2f:@." cv;
      Format.fprintf ppf "%-10s" "n";
      List.iter (fun j -> Format.fprintf ppf " HT J=%-8.1f" j) jaccards;
      List.iter (fun j -> Format.fprintf ppf " L J=%-9.1f" j) jaccards;
      Format.fprintf ppf "@.";
      List.iter
        (fun r ->
          Format.fprintf ppf "%-10.0e" r.n;
          Array.iter (fun s -> Format.fprintf ppf " %-11.3e" s) r.s_ht;
          Array.iter (fun s -> Format.fprintf ppf " %-11.3e" s) r.s_l;
          Format.fprintf ppf "@.")
        (series ~cv ());
      Format.fprintf ppf "ratio s(L)/s(HT):@.";
      Format.fprintf ppf "%-10s" "n";
      List.iter (fun j -> Format.fprintf ppf " J=%-8.1f" j) jaccards;
      Format.fprintf ppf "@.";
      List.iter
        (fun r ->
          Format.fprintf ppf "%-10.0e" r.n;
          Array.iteri
            (fun i s -> Format.fprintf ppf " %-9.3f" (s /. r.s_ht.(i)))
            r.s_l;
          Format.fprintf ppf "@.")
        (series ~cv ()))
    [ 0.1; 0.02 ];
  Format.fprintf ppf
    "@.(expected: ratio → √(1−J)/2 for large n — 0.5 at J=0, ≈0.354 at \
     J=0.5, ≈0.158 at J=0.9; and O(1) samples suffice for L at J=1)@."
