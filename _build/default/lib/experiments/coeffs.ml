module C = Estcore.Max_oblivious.Coeffs
module MO = Estcore.Max_oblivious

let default_rs = [ 2; 3; 4; 5; 6; 7; 8 ]
let default_ps = [ 0.05; 0.1; 0.25; 0.5; 0.75; 0.9 ]

let lemma42_grid ?(rs = default_rs) ?(ps = default_ps) () =
  List.concat_map
    (fun r ->
      List.map (fun p -> (r, p, C.lemma42_holds (C.compute ~r ~p))) ps)
    rs

let closed_forms_match ~p =
  let eq = Numerics.Special.float_equal ~eps:1e-9 in
  let a2 = C.alpha (C.compute ~r:2 ~p) in
  let d2 = p *. p *. (2. -. p) in
  let r2 = eq a2.(0) (1. /. d2) && eq a2.(1) (-.(1. -. p) /. d2) in
  let a3 = C.alpha (C.compute ~r:3 ~p) in
  let d = 3. -. (3. *. p) +. (p *. p) in
  let p3 = p *. p *. p in
  let r3 =
    eq a3.(0) ((2. -. (2. *. p) +. (p *. p)) /. (p3 *. (2. -. p) *. d))
    && eq a3.(1) (-.(1. -. p) /. (p3 *. d))
    && eq a3.(2) (-.((1. -. p) ** 2.) /. (p *. p *. (2. -. p) *. d))
  in
  r2 && r3

let unbiased_up_to ?(rmax = 6) ~p () =
  List.for_all
    (fun r ->
      let c = C.compute ~r ~p in
      let probs = Array.make r p in
      (* A few value profiles incl. ties and zeros. *)
      let profiles =
        [
          Array.init r (fun i -> float_of_int (r - i));
          Array.make r 3.;
          Array.init r (fun i -> if i = 0 then 5. else 0.);
          Array.init r (fun i -> float_of_int ((i * 7 mod 3) + 1));
        ]
      in
      List.for_all
        (fun v ->
          let m = Estcore.Exact.oblivious ~probs ~v (MO.l_uniform c) in
          Numerics.Special.float_equal ~eps:1e-8 m.Estcore.Exact.mean
            (Array.fold_left Float.max 0. v))
        profiles)
    (List.init (rmax - 1) (fun i -> i + 2))

let run ppf =
  Format.fprintf ppf
    "=== E13 / Theorem 4.2: uniform-p coefficients of max^(L) ===@.";
  let p = 0.5 in
  Format.fprintf ppf "alpha coefficients at p = %.2f:@." p;
  List.iter
    (fun r ->
      let a = C.alpha (C.compute ~r ~p) in
      Format.fprintf ppf "  r=%d: %s@." r
        (String.concat " "
           (Array.to_list (Array.map (Printf.sprintf "%+.4f") a))))
    [ 2; 3; 4; 5; 6 ];
  Format.fprintf ppf "r=2,3 parametric closed forms match (p=0.37): %b@."
    (closed_forms_match ~p:0.37);
  Format.fprintf ppf "unbiased up to r=6 (exhaustive, p=0.3): %b@."
    (unbiased_up_to ~p:0.3 ());
  let grid = lemma42_grid () in
  let bad = List.filter (fun (_, _, ok) -> not ok) grid in
  Format.fprintf ppf
    "Lemma 4.2 conditions (α1 ≤ p^-r, αi<0 for i>1) over r ≤ 8 × p grid: \
     %d/%d hold%s@."
    (List.length grid - List.length bad)
    (List.length grid)
    (if bad = [] then " (extends the paper's r ≤ 4 verification)" else "");
  List.iter
    (fun (r, p, _) -> Format.fprintf ppf "  VIOLATION at r=%d p=%.2f@." r p)
    bad;
  (* Beyond the paper's tabulation: the full Theorem 4.1 recursion with
     heterogeneous probabilities, exact at any r. *)
  let probs = [| 0.2; 0.35; 0.5; 0.65; 0.8 |] in
  let g = MO.General.create ~probs in
  let all_unbiased =
    List.for_all
      (fun v ->
        let m =
          Estcore.Exact.oblivious ~probs ~v (MO.General.estimate g)
        in
        Numerics.Special.float_equal ~eps:1e-9 m.Estcore.Exact.mean
          (Array.fold_left Float.max 0. v))
      [
        [| 5.; 4.; 3.; 2.; 1. |];
        [| 1.; 2.; 3.; 4.; 5. |];
        [| 0.; 0.; 7.; 0.; 0. |];
        [| 3.; 3.; 0.; 1.; 3. |];
      ]
  in
  Format.fprintf ppf
    "general recursion (eq. 17) at r=5, p=(0.2,0.35,0.5,0.65,0.8): exact \
     unbiasedness by full enumeration: %b@."
    all_unbiased
