(** Experiment E6 — Figure 3: the weighted known-seeds [max^(L)] for
    r = 2. Prints the outcome → determining-vector mapping and each of
    the four closed-form cases, and certifies unbiasedness of every case
    by exact seed-space quadrature. *)

val unbiased_on : taus:float array -> v:float array -> bool
(** E[max^(L)] = max(v) to 1e-7 relative, by quadrature. *)

val case_grid : unit -> (string * float array * float array) list
(** Labelled (taus, v) pairs exercising every closed-form case of the
    Figure 3 table, in both threshold orders. *)

val run : Format.formatter -> unit
