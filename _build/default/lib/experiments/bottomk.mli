(** Experiment E16 (extension) — fixed-size (bottom-k / priority) samples
    driving the Section 8 applications, via rank conditioning
    (Section 7.1): the (k+1)-smallest rank acts as a per-instance
    threshold and all the Poisson estimators apply unchanged. The paper
    states "results are the same for priority sampling" under Figure 7;
    this experiment substantiates that: bottom-k estimates are unbiased
    (empirically, over many hash masters) with variance close to the
    Poisson exact values at the same expected sample size. *)

type row = {
  label : string;
  truth : float;
  mean : float;  (** empirical mean over masters *)
  rel_sd : float;  (** empirical sd / truth *)
  predicted_rel_sd : float;  (** Poisson exact at the same sample size; nan when n/a *)
}

val distinct_bottom_k : ?n:int -> ?jaccard:float -> ?k:int -> ?masters:int -> unit -> row
val maxdom_priority : ?k:int -> ?masters:int -> unit -> row * row
(** [(L-estimator row, HT-estimator row)] on the small traffic replica. *)

val run : Format.formatter -> unit
