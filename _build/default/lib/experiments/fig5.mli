(** Experiment E8 — Figure 5: the paper's worked example. Reproduces the
    data matrix and per-key aggregates (A), the shared-seed and
    independent PPS rank tables (B), and the bottom-3 samples (C), using
    the exact seed values printed in the paper. *)

val aggregates_match : unit -> bool
(** The (A) panel's example aggregate values (max-dominance over even keys
    and instances {1,2} = 40; L1 distance over keys {1,2,3} of instances
    {2,3} = 18; per-key max/min/RG rows). *)

val independent_bottom3_match : unit -> bool
(** The independent-seed bottom-3 samples must equal the paper's
    (3,1,6 / 1,6,4 / 3,5,2). *)

val run : Format.formatter -> unit
