lib/experiments/fig4.ml: Estcore Format List
