lib/experiments/fig2.ml: Estcore Format List
