lib/experiments/table41.ml: Array Estcore Float Format List Numerics Sampling
