lib/experiments/bottomk.ml: Aggregates Format Numerics Printf Sampling Workload
