lib/experiments/coord.ml: Aggregates Estcore Format List Sampling Workload
