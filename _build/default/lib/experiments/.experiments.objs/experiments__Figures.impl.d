lib/experiments/figures.ml: Array Fig1 Fig2 Fig4 Fig6 Fig7 Filename List Multiperiod Plot Printf Sys Workload
