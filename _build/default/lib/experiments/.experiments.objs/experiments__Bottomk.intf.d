lib/experiments/bottomk.mli: Format
