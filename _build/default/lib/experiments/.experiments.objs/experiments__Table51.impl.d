lib/experiments/table51.ml: Array Estcore Float Format List Numerics Sampling
