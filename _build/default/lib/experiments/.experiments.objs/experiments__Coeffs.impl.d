lib/experiments/coeffs.ml: Array Estcore Float Format List Numerics Printf String
