lib/experiments/fig3.ml: Array Estcore Float Format List Numerics Sampling
