lib/experiments/fig5.ml: Aggregates Array Float Format List Sampling String
