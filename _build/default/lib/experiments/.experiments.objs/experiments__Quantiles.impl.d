lib/experiments/quantiles.ml: Array Estcore Float Format List String
