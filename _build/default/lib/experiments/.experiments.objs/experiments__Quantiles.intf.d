lib/experiments/quantiles.mli: Format
