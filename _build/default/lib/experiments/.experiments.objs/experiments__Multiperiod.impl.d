lib/experiments/multiperiod.ml: Aggregates Array Estcore Format Fun Hashtbl List Numerics Option Sampling
