lib/experiments/fig7.ml: Aggregates Float Format List Numerics Sampling Workload
