lib/experiments/coeffs.mli: Format
