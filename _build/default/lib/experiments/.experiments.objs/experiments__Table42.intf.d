lib/experiments/table42.mli: Format
