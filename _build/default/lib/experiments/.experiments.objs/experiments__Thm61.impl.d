lib/experiments/thm61.ml: Array Estcore Format List
