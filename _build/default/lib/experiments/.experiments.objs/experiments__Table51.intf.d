lib/experiments/table51.mli: Format
