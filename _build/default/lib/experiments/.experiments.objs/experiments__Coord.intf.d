lib/experiments/coord.mli: Format Workload
