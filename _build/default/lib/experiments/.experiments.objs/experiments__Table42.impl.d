lib/experiments/table42.ml: Array Estcore Float Format List Numerics Sampling
