lib/experiments/multiperiod.mli: Format
