lib/experiments/thm61.mli: Format
