lib/experiments/table41.mli: Format
