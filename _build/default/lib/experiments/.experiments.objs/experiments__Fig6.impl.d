lib/experiments/fig6.ml: Aggregates Array Format List
