lib/experiments/figures.mli: Workload
