lib/experiments/fig1.ml: Estcore Format List Sampling
