(** Reproducible hashing of keys to seeds.

    The paper's "known seeds" model requires that the uniform seed
    [u_i(h) ∈ [0,1)] used when sampling key [h] in instance [i] be
    recomputable by the estimator. We realize this with deterministic
    64-bit hash functions: a per-instance salt combined with the key
    through an avalanching mix. Shared-seed (coordinated) sampling uses
    the same salt for every instance; independent sampling uses distinct
    salts. *)

val mix64 : int64 -> int64
(** Bijective avalanching finalizer (SplitMix64's). *)

val combine : int64 -> int64 -> int64
(** [combine a b] mixes two 64-bit values non-commutatively. *)

val hash_int : salt:int64 -> int -> int64
(** Hash an integer key under [salt]. *)

val hash_string : salt:int64 -> string -> int64
(** FNV-1a over the bytes, post-finalized with {!mix64} and [salt]. *)

val to_unit : int64 -> float
(** Map a 64-bit hash to a uniform float in [[0,1)]. *)

val to_unit_open : int64 -> float
(** Map a 64-bit hash to a uniform float in [(0,1)]: never 0, so logarithms
    are safe. *)

val uniform_int : salt:int64 -> int -> float
(** [uniform_int ~salt h = to_unit_open (hash_int ~salt h)] — the seed
    [u(h)] of integer key [h]. *)

val uniform_string : salt:int64 -> string -> float
(** Seed of a string key. *)

val salt_of_instance : master:int -> int -> int64
(** [salt_of_instance ~master i] derives the salt of instance [i] from a
    master experiment seed. [salt_of_instance ~master i] for distinct [i]
    gives independent seeds; passing the same [i] (conventionally 0) for
    every instance gives shared seeds. *)
