(** Small convex quadratic programming by the primal active-set method.

    Solves

    {v min ½ xᵀ diag(q) x − cᵀ x
       s.t.  a_eq x = b_eq,  a_ub x ≤ b_ub,  x ≥ 0 v}

    with [q > 0] componentwise (strictly convex separable objective).

    This is exactly the shape of the local optimization in the paper's
    Algorithm 2 (ordered-partition estimator f^(U)): minimize the sum of
    conditional variances of the current batch — a diagonal weighted
    least-squares in the estimate values — subject to unbiasedness
    (equalities) and nonnegativity-preservation for later vectors
    (inequalities). Problems have at most a few dozen variables. *)

type result = {
  x : float array;  (** optimal point *)
  objective : float;  (** ½ xᵀQx − cᵀx at the optimum *)
  iterations : int;
}

val minimize :
  ?eps:float ->
  q:float array ->
  c:float array ->
  a_ub:float array array ->
  b_ub:float array ->
  a_eq:float array array ->
  b_eq:float array ->
  unit ->
  result option
(** Returns [None] when the constraints are infeasible. Raises [Failure]
    if the active-set loop fails to converge (ill-posed input). *)

val least_squares_targets :
  ?eps:float ->
  weights:float array ->
  targets:float array ->
  a_ub:float array array ->
  b_ub:float array ->
  a_eq:float array array ->
  b_eq:float array ->
  unit ->
  result option
(** Convenience wrapper: minimize [Σ weights_i (x_i − targets_i)²] under the
    same constraints — the variance-minimization form used by the designer
    (weights are outcome probabilities, targets the function value). *)
