lib/numerics/simplex.mli:
