lib/numerics/linalg.ml: Array
