lib/numerics/stats.ml: Array Stdlib
