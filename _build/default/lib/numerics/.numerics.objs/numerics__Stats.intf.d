lib/numerics/stats.mli:
