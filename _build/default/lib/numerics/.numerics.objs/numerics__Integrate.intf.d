lib/numerics/integrate.mli:
