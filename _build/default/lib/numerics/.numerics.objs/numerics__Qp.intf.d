lib/numerics/qp.mli:
