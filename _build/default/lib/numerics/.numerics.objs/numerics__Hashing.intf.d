lib/numerics/hashing.mli:
