lib/numerics/special.mli:
