lib/numerics/prng.mli:
