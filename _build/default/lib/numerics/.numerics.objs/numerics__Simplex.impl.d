lib/numerics/simplex.ml: Array List
