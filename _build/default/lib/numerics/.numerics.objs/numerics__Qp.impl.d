lib/numerics/qp.ml: Array Fun Hashtbl Linalg List Simplex
