lib/numerics/hashing.ml: Char Int64 Prng String
