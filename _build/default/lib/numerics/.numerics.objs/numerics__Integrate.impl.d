lib/numerics/integrate.ml: Array Float Hashtbl List
