lib/numerics/prng.ml: Array Int64
