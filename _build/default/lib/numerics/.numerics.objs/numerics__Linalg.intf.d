lib/numerics/linalg.mli:
