type result = { x : float array; objective : float; iterations : int }

let dot = Linalg.vec_dot

let objective_value ~q ~c x =
  let acc = ref 0. in
  Array.iteri (fun i xi -> acc := !acc +. (0.5 *. q.(i) *. xi *. xi) -. (c.(i) *. xi)) x;
  !acc

(* Solve the KKT system for the equality-constrained subproblem
     min ½ xᵀdiag(q)x − cᵀx   s.t.  rows·x = rhs
   Returns (x, multipliers). *)
let solve_kkt ~q ~c rows rhs =
  let n = Array.length q in
  let m = Array.length rows in
  let dim = n + m in
  let a = Linalg.make dim dim in
  let b = Array.make dim 0. in
  for i = 0 to n - 1 do
    a.(i).(i) <- q.(i);
    b.(i) <- c.(i)
  done;
  Array.iteri
    (fun k row ->
      for j = 0 to n - 1 do
        a.(n + k).(j) <- row.(j);
        a.(j).(n + k) <- row.(j)
      done;
      (* Tiny dual regularization keeps the KKT system nonsingular when
         active constraints are (numerically) redundant — duplicates then
         share the multiplier instead of producing a singular solve. *)
      a.(n + k).(n + k) <- -1e-10;
      b.(n + k) <- rhs.(k))
    rows;
  let sol = try Linalg.solve a b with Failure _ -> Linalg.solve_lstsq a b in
  (Array.sub sol 0 n, Array.sub sol n m)

let minimize ?(eps = 1e-9) ~q ~c ~a_ub ~b_ub ~a_eq ~b_eq () =
  let n = Array.length q in
  Array.iter (fun qi -> if qi <= 0. then invalid_arg "Qp.minimize: q must be > 0") q;
  (* Append the implicit x >= 0 bounds as -x_i <= 0 rows. *)
  let bound_row i =
    let r = Array.make n 0. in
    r.(i) <- -1.;
    r
  in
  (* Deduplicate inequality rows (symmetric problems produce many exact
     duplicates, which needlessly degrade the active-set iteration). *)
  let seen = Hashtbl.create 16 in
  let dedup_rows = ref [] and dedup_rhs = ref [] in
  Array.iteri
    (fun k row ->
      let key = (Array.to_list row, b_ub.(k)) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        dedup_rows := row :: !dedup_rows;
        dedup_rhs := b_ub.(k) :: !dedup_rhs
      end)
    a_ub;
  let a_ub = Array.of_list (List.rev !dedup_rows) in
  let b_ub = Array.of_list (List.rev !dedup_rhs) in
  let ub_rows = Array.append a_ub (Array.init n bound_row) in
  let ub_rhs = Array.append b_ub (Array.make n 0.) in
  let m_ub = Array.length ub_rows in
  (* Feasible start from phase-1 simplex (enforces x >= 0 natively). *)
  match Simplex.maximize ~c:(Array.make n 0.) ~a_ub ~b_ub ~a_eq ~b_eq () with
  | Simplex.Infeasible -> None
  | Simplex.Unbounded -> None (* cannot happen: objective is constant *)
  | Simplex.Optimal (_, x0) -> (
      let x = ref x0 in
      let active = Array.make m_ub false in
      for k = 0 to m_ub - 1 do
        if abs_float (dot ub_rows.(k) !x -. ub_rhs.(k)) <= eps then active.(k) <- true
      done;
      let iterations = ref 0 in
      let max_iter = 200 + (20 * (n + m_ub)) in
      let result = ref None in
      while !result = None do
        incr iterations;
        if !iterations > max_iter then failwith "Qp.minimize: did not converge";
        let active_idx =
          List.filter (fun k -> active.(k)) (List.init m_ub Fun.id)
        in
        let rows =
          Array.append a_eq (Array.of_list (List.map (fun k -> ub_rows.(k)) active_idx))
        in
        let rhs =
          Array.append b_eq (Array.of_list (List.map (fun k -> ub_rhs.(k)) active_idx))
        in
        let xk, lambda = solve_kkt ~q ~c rows rhs in
        (* Is the KKT point feasible for the inactive inequalities? *)
        let violated = ref (-1) in
        let step = ref 1. in
        let d = Linalg.vec_sub xk !x in
        if Linalg.vec_norm_inf d > eps then begin
          for k = 0 to m_ub - 1 do
            if not active.(k) then begin
              let ad = dot ub_rows.(k) d in
              if ad > eps then begin
                let slack = ub_rhs.(k) -. dot ub_rows.(k) !x in
                let alpha = slack /. ad in
                if alpha < !step -. 1e-15 then begin
                  step := max 0. alpha;
                  violated := k
                end
              end
            end
          done
        end;
        if !violated >= 0 then begin
          (* Blocked: advance to the blocking constraint and activate it. *)
          x := Linalg.vec_add !x (Linalg.vec_scale !step d);
          active.(!violated) <- true
        end
        else begin
          x := xk;
          (* Check multipliers of active inequality constraints. *)
          let m_eq = Array.length a_eq in
          let worst = ref (-1) in
          let worst_val = ref (-.eps) in
          List.iteri
            (fun pos k ->
              let l = lambda.(m_eq + pos) in
              if l < !worst_val then begin
                worst_val := l;
                worst := k
              end)
            active_idx;
          if !worst >= 0 then active.(!worst) <- false
          else
            result :=
              Some { x = !x; objective = objective_value ~q ~c !x; iterations = !iterations }
        end
      done;
      !result)

let least_squares_targets ?eps ~weights ~targets ~a_ub ~b_ub ~a_eq ~b_eq () =
  let q = Array.map (fun w -> 2. *. w) weights in
  let c = Array.mapi (fun i w -> 2. *. w *. targets.(i)) weights in
  match minimize ?eps ~q ~c ~a_ub ~b_ub ~a_eq ~b_eq () with
  | None -> None
  | Some r ->
      (* The QP objective is Σw(x−t)² − Σwt²; shift to report Σw(x−t)². *)
      let const =
        Array.fold_left ( +. ) 0.
          (Array.mapi (fun i w -> w *. targets.(i) *. targets.(i)) weights)
      in
      Some { r with objective = r.objective +. const }
