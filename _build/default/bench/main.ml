(* Benchmark / reproduction harness.

   With no arguments: run every experiment (one per table/figure of the
   paper's evaluation) and a quick Bechamel performance section (E14).
   With arguments: run only the named experiments, e.g.

     dune exec bench/main.exe -- fig1 fig7 perf *)

let experiments : (string * string * (Format.formatter -> unit)) list =
  [
    ("fig1", "Figure 1: max estimators, Poisson p=1/2", Experiments.Fig1.run);
    ("table41", "Sec 4.1 table: max^(L) general p", Experiments.Table41.run);
    ("table42", "Sec 4.2 tables: max^(U), max^(Uas)", Experiments.Table42.run);
    ("fig2", "Figure 2 + asymptotics: OR variances", Experiments.Fig2.run);
    ("fig3", "Figure 3: PPS known-seeds max^(L)", Experiments.Fig3.run);
    ("fig4", "Figure 4: PPS max^(L) vs max^(HT)", Experiments.Fig4.run);
    ("fig5", "Figure 5: worked example", Experiments.Fig5.run);
    ("fig6", "Figure 6: distinct-count sample sizes", Experiments.Fig6.run);
    ("fig7", "Figure 7: max dominance on traffic", Experiments.Fig7.run);
    ("table51", "Sec 5.1 tables: weighted OR", Experiments.Table51.run);
    ("thm61", "Theorem 6.1: LP certificates", Experiments.Thm61.run);
    ("coeffs", "Theorem 4.2: coefficient recursion", Experiments.Coeffs.run);
    ("coord", "E15: coordination ablation (§7.2)", Experiments.Coord.run);
    ("bottomk", "E16: bottom-k / priority samples", Experiments.Bottomk.run);
    ("quantiles", "E17: derived median/range estimators", Experiments.Quantiles.run);
    ("multiperiod", "E18: distinct counts across r > 2 periods", Experiments.Multiperiod.run);
  ]

(* --- E14: Bechamel micro-benchmarks of the library kernels --- *)

let bechamel_tests () =
  let open Bechamel in
  let rng = Numerics.Prng.create ~seed:17 () in
  let coeffs8 = Estcore.Max_oblivious.Coeffs.compute ~r:8 ~p:0.2 in
  let probs8 = Array.make 8 0.2 in
  let v8 = Array.init 8 (fun i -> float_of_int (8 - i)) in
  let outcome8 = Sampling.Outcome.Oblivious.draw rng ~probs:probs8 v8 in
  let taus = [| 1.0; 1.3 |] in
  let pps_outcome =
    Sampling.Outcome.Pps.of_seeds ~taus ~seeds:[| 0.3; 0.3 |] [| 0.6; 0.25 |]
  in
  let inst =
    Sampling.Instance.of_assoc
      (List.init 1000 (fun i -> (i, float_of_int (1 + (i mod 50)))))
  in
  let seeds = Sampling.Seeds.create ~master:5 Sampling.Seeds.Independent in
  Test.make_grouped ~name:"kernels"
    [
      Test.make ~name:"coeffs r=32 (Thm 4.2 recursion)"
        (Staged.stage (fun () ->
             ignore (Estcore.Max_oblivious.Coeffs.compute ~r:32 ~p:0.2)));
      Test.make ~name:"max^(L) uniform estimate r=8"
        (Staged.stage (fun () ->
             ignore (Estcore.Max_oblivious.l_uniform coeffs8 outcome8)));
      Test.make ~name:"max^(L) PPS estimate (Fig 3)"
        (Staged.stage (fun () -> ignore (Estcore.Max_pps.l pps_outcome)));
      Test.make ~name:"exact per-key moments (pps_r2_fast)"
        (Staged.stage (fun () ->
             ignore
               (Estcore.Exact.pps_r2_fast ~taus ~v:[| 0.6; 0.25 |]
                  Estcore.Max_pps.l)));
      Test.make ~name:"PPS sample, 1k-key instance"
        (Staged.stage (fun () ->
             ignore (Sampling.Poisson.pps_sample seeds ~instance:0 ~tau:100. inst)));
      Test.make ~name:"bottom-64 sample, 1k-key instance"
        (Staged.stage (fun () ->
             ignore
               (Sampling.Bottom_k.sample seeds ~family:Sampling.Rank.PPS
                  ~instance:0 ~k:64 inst)));
      Test.make ~name:"VarOpt-64, 1k-item stream"
        (Staged.stage (fun () ->
             let rng = Numerics.Prng.create ~seed:3 () in
             ignore (Sampling.Varopt.of_instance ~k:64 rng inst)));
      Test.make ~name:"General (Thm 4.1) table r=10"
        (Staged.stage (fun () ->
             ignore
               (Estcore.Max_oblivious.General.create
                  ~probs:(Array.init 10 (fun i -> 0.1 +. (0.08 *. float_of_int i))))));
      Test.make ~name:"coordinated exact moments r=2"
        (Staged.stage (fun () ->
             ignore
               (Estcore.Coordinated.moments ~taus ~v:[| 0.6; 0.25 |]
                  Estcore.Coordinated.max_ht)));
      Test.make ~name:"designer: derive OR^(L) r=2"
        (Staged.stage (fun () ->
             let problem =
               Estcore.Designer.Problems.oblivious ~probs:[| 0.3; 0.6 |]
                 ~grid:[ 0.; 1. ]
                 ~f:(fun v -> Float.max v.(0) v.(1))
               |> Estcore.Designer.Problems.sort_data
                    Estcore.Designer.Problems.order_l
             in
             ignore (Estcore.Designer.solve_order problem)));
    ]

let run_perf ppf =
  let open Bechamel in
  Format.fprintf ppf "=== E14: kernel micro-benchmarks (Bechamel) ===@.";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] (bechamel_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> (name, nan) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) -> Format.fprintf ppf "  %-48s %14.1f ns/run@." name est)
    rows

(* --- self-contained HTML report: all experiment outputs + figures --- *)

let html_escape s =
  let buf = Buffer.create (String.length s + 16) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let run_report ppf =
  let dir = "report" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (* Figures first (inlined below). *)
  let figure_paths = Experiments.Figures.write_all ~dir:(Filename.concat dir "figures") () in
  let buf = Buffer.create 65536 in
  let add = Buffer.add_string buf in
  add
    "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
     <title>optsample — reproduction report</title>\n\
     <style>\n\
     body { font: 15px/1.5 system-ui, sans-serif; color: #0b0b0b;\n\
            background: #fcfcfb; max-width: 980px; margin: 2rem auto;\n\
            padding: 0 1rem; }\n\
     pre { background: #f4f3f0; padding: 12px; overflow-x: auto;\n\
           font-size: 12.5px; border-radius: 6px; }\n\
     h1, h2 { line-height: 1.25; }\n\
     nav a { margin-right: 10px; }\n\
     figure { margin: 1rem 0; }\n\
     </style></head><body>\n";
  add "<h1>optsample — paper reproduction report</h1>\n";
  add
    "<p>Cohen &amp; Kaplan, <em>Get the Most out of Your Sample: Optimal \
     Unbiased Estimators using Partial Information</em> (PODS 2011). Every \
     experiment below regenerates a table or figure of the paper (or an \
     extension study); see EXPERIMENTS.md for the paper-vs-measured record \
     and the errata found along the way.</p>\n";
  add "<nav>";
  List.iter
    (fun (n, _, _) -> add (Printf.sprintf "<a href=\"#%s\">%s</a> " n n))
    experiments;
  add "<a href=\"#figures\">figures</a></nav>\n";
  List.iter
    (fun (name, doc, run) ->
      add (Printf.sprintf "<h2 id=\"%s\">%s — %s</h2>\n" name name (html_escape doc));
      let b = Buffer.create 4096 in
      let f = Format.formatter_of_buffer b in
      run f;
      Format.pp_print_flush f ();
      add "<pre>";
      add (html_escape (Buffer.contents b));
      add "</pre>\n")
    experiments;
  add "<h2 id=\"figures\">Figures (SVG)</h2>\n";
  List.iter
    (fun path ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let svg = really_input_string ic len in
      close_in ic;
      (* Drop the XML declaration for inline embedding. *)
      let svg =
        match String.index_opt svg '\n' with
        | Some i when String.length svg > 5 && String.sub svg 0 5 = "<?xml" ->
            String.sub svg (i + 1) (String.length svg - i - 1)
        | _ -> svg
      in
      add (Printf.sprintf "<figure>%s<figcaption>%s</figcaption></figure>\n" svg
             (html_escape (Filename.basename path))))
    figure_paths;
  add "</body></html>\n";
  let out = Filename.concat dir "index.html" in
  let oc = open_out out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.fprintf ppf "report written to %s@." out

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let ppf = Format.std_formatter in
  let names =
    match args with
    | [] -> List.map (fun (n, _, _) -> n) experiments @ [ "perf"; "plots" ]
    | _ -> args
  in
  List.iter
    (fun name ->
      if name = "report" then run_report ppf
      else if name = "plots" then begin
        let paths = Experiments.Figures.write_all ~dir:"plots" () in
        Format.fprintf ppf "=== figures written ===@.";
        List.iter (fun p -> Format.fprintf ppf "  %s@." p) paths
      end
      else if name = "perf" then run_perf ppf
      else
        match List.find_opt (fun (n, _, _) -> n = name) experiments with
        | Some (_, _, run) ->
            run ppf;
            Format.fprintf ppf "@."
        | None ->
            Format.fprintf ppf "unknown experiment %S; available: %s perf@."
              name
              (String.concat " " (List.map (fun (n, _, _) -> n) experiments)))
    names
