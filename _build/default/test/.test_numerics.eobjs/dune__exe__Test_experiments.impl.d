test/test_experiments.ml: Alcotest Array Buffer Estcore Experiments Format List Numerics Printf Workload
