test/test_sampling.ml: Alcotest Array Bottom_k Filename Float Format Gen Instance Io List Numerics Outcome Poisson Printf QCheck QCheck_alcotest Rank Sampling Seeds Summary Sys Varopt
