test/test_estcore.ml: Alcotest Array Coordinated Estcore Exact Experiments Float Fun Ht List Max_oblivious Max_pps Numerics Or_oblivious Or_weighted Printf QCheck QCheck_alcotest Sampling
