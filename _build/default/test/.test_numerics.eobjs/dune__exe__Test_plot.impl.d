test/test_plot.ml: Alcotest Array Experiments Filename Float List Numerics Plot Str String Sys Workload
