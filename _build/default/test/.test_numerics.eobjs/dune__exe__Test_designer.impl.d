test/test_designer.ml: Alcotest Array Designer Estcore Existence Experiments Float List Max_oblivious Numerics Or_oblivious Or_weighted Printf Sampling
