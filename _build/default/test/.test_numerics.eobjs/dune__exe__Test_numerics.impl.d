test/test_numerics.ml: Alcotest Array Float Fun Gen Hashing Hashtbl Int64 Integrate Linalg List Numerics Prng QCheck QCheck_alcotest Qp Simplex Special Stats
