test/test_designer.mli:
