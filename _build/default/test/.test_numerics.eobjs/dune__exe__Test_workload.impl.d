test/test_workload.ml: Alcotest Array List Numerics Printf Sampling Workload
