test/test_aggregates.ml: Aggregates Alcotest Array Estcore Experiments Filename Float Int List Numerics Printf Sampling Set Sys Workload
