test/test_estcore.mli:
