(* Tests for the SVG figure substrate: scales, ticks, labels, document
   structure, and the layout invariants that substitute for a visual
   inspection pass in this headless environment (all mark coordinates
   finite and inside the canvas, legend/label rules respected). *)

let check_float ?(eps = 1e-9) msg expected actual =
  if not (Numerics.Special.float_equal ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Svg                                                                 *)
(* ------------------------------------------------------------------ *)

let test_svg_escaping () =
  let doc =
    Plot.Svg.document ~width:10. ~height:10.
      [ Plot.Svg.text ~x:1. ~y:1. "a < b & \"c\"" ]
  in
  Alcotest.(check bool) "escaped lt" true
    (String.length doc > 0
    && (try ignore (Str.search_forward (Str.regexp_string "a &lt; b &amp; &quot;c&quot;") doc 0); true
        with Not_found -> false))

let test_svg_structure () =
  let doc =
    Plot.Svg.document ~width:100. ~height:50.
      [
        Plot.Svg.rect ~x:0. ~y:0. ~w:100. ~h:50. ();
        Plot.Svg.circle ~cx:5. ~cy:5. ~r:2. ();
        Plot.Svg.polyline ~points:[ (0., 0.); (1., 1.) ] ();
        Plot.Svg.line ~x1:0. ~y1:0. ~x2:9. ~y2:9. ();
      ]
  in
  List.iter
    (fun needle ->
      if
        not
          (try
             ignore (Str.search_forward (Str.regexp_string needle) doc 0);
             true
           with Not_found -> false)
      then Alcotest.failf "missing %s" needle)
    [ "<svg"; "</svg>"; "<rect"; "<circle"; "<polyline"; "<line"; "viewBox=\"0 0 100 50\"" ]

let test_svg_file_roundtrip () =
  let path = Filename.temp_file "chart" ".svg" in
  Plot.Svg.to_file ~path ~width:10. ~height:10. [ Plot.Svg.circle ~cx:1. ~cy:1. ~r:1. () ];
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "nonempty and xml" true
    (len > 50 && String.sub s 0 5 = "<?xml")

(* ------------------------------------------------------------------ *)
(* Ticks and labels                                                    *)
(* ------------------------------------------------------------------ *)

let test_linear_ticks () =
  let ts = Plot.Chart.ticks Plot.Chart.Linear ~lo:0. ~hi:1. in
  Alcotest.(check bool) "within range" true
    (List.for_all (fun t -> t >= -1e-9 && t <= 1. +. 1e-9) ts);
  Alcotest.(check bool) "several" true (List.length ts >= 4);
  (* Clean 1-2-5 steps: consecutive differences constant. *)
  (match ts with
  | a :: b :: c :: _ -> check_float ~eps:1e-9 "constant step" (b -. a) (c -. b)
  | _ -> Alcotest.fail "too few ticks");
  let ts2 = Plot.Chart.ticks Plot.Chart.Linear ~lo:0. ~hi:7342. in
  Alcotest.(check bool) "clean numbers" true
    (List.for_all (fun t -> Float.is_integer (t /. 100.)) ts2)

let test_log_ticks () =
  let ts = Plot.Chart.ticks Plot.Chart.Log ~lo:0.001 ~hi:100. in
  Alcotest.(check bool) "decades only over many decades" true
    (List.for_all
       (fun t ->
         let l = log10 t in
         abs_float (l -. Float.round l) < 1e-9)
       ts);
  Alcotest.(check int) "five decades + endpoints" 6 (List.length ts);
  (* Narrow log range gets 2/5 mantissas. *)
  let ts2 = Plot.Chart.ticks Plot.Chart.Log ~lo:1. ~hi:9. in
  Alcotest.(check bool) "includes 2 and 5" true
    (List.mem 2. ts2 && List.mem 5. ts2)

let test_tick_labels () =
  Alcotest.(check string) "zero" "0" (Plot.Chart.tick_label 0.);
  Alcotest.(check string) "thousands" "1,500" (Plot.Chart.tick_label 1500.);
  Alcotest.(check string) "tens of thousands commas" "15,000"
    (Plot.Chart.tick_label 15_000.);
  Alcotest.(check string) "decimal trimmed" "0.25" (Plot.Chart.tick_label 0.25);
  Alcotest.(check string) "negative" "-12" (Plot.Chart.tick_label (-12.));
  Alcotest.(check bool) "scientific small" true
    (String.contains (Plot.Chart.tick_label 1e-5) 'e');
  Alcotest.(check bool) "scientific large" true
    (String.contains (Plot.Chart.tick_label 1e7) 'e')

let test_palette_fixed_order () =
  Alcotest.(check int) "eight slots" 8 (Array.length Plot.Chart.palette);
  Alcotest.(check string) "slot 1 blue" "#2a78d6" Plot.Chart.palette.(0);
  Alcotest.(check string) "slot 2 aqua" "#1baf7a" Plot.Chart.palette.(1)

(* ------------------------------------------------------------------ *)
(* Chart rendering invariants                                          *)
(* ------------------------------------------------------------------ *)

let sample_spec =
  {
    Plot.Chart.default with
    Plot.Chart.title = "test";
    x_label = "x";
    y_label = "y";
    series =
      [
        { Plot.Chart.label = "one"; points = List.init 10 (fun i -> (float_of_int i, float_of_int (i * i))) };
        { Plot.Chart.label = "two"; points = List.init 10 (fun i -> (float_of_int i, float_of_int (20 - i))) };
      ];
  }

(* Pull every coordinate-bearing attribute out of the SVG text. *)
let all_coords doc =
  let re = Str.regexp "\\(x1\\|x2\\|y1\\|y2\\|cx\\|cy\\|x\\|y\\)=\"\\([-0-9.e+]+\\)\"" in
  let rec go acc pos =
    match Str.search_forward re doc pos with
    | exception Not_found -> acc
    | p -> go (float_of_string (Str.matched_group 2 doc) :: acc) (p + 1)
  in
  go [] 0

let points_coords doc =
  let re = Str.regexp "points=\"\\([^\"]*\\)\"" in
  let rec go acc pos =
    match Str.search_forward re doc pos with
    | exception Not_found -> acc
    | p ->
        let pts = Str.matched_group 1 doc in
        let nums =
          String.split_on_char ' ' pts
          |> List.concat_map (String.split_on_char ',')
          |> List.filter (fun s -> s <> "")
          |> List.map float_of_string
        in
        go (nums @ acc) (p + 1)
  in
  go [] 0

let test_chart_coordinates_finite_and_bounded () =
  let doc = Plot.Chart.render sample_spec in
  let coords = all_coords doc @ points_coords doc in
  Alcotest.(check bool) "has coordinates" true (List.length coords > 20);
  List.iter
    (fun c ->
      if Float.is_nan c || Float.is_integer (c /. 0.) then
        Alcotest.failf "non-finite coordinate %g" c;
      (* within canvas with a small allowance for rotated labels *)
      if c < -20. || c > 760. then Alcotest.failf "out of canvas: %g" c)
    coords

let test_chart_legend_rules () =
  let doc2 = Plot.Chart.render sample_spec in
  (* two series → both labels appear (legend), plus series colors *)
  List.iter
    (fun needle ->
      if
        not
          (try
             ignore (Str.search_forward (Str.regexp_string needle) doc2 0);
             true
           with Not_found -> false)
      then Alcotest.failf "missing %s" needle)
    [ "one"; "two"; "#2a78d6"; "#1baf7a" ];
  (* one series → no second color, label appears at most as end label *)
  let doc1 =
    Plot.Chart.render
      { sample_spec with Plot.Chart.series = [ List.hd sample_spec.Plot.Chart.series ] }
  in
  Alcotest.(check bool) "no slot-2 color for single series" true
    (not
       (try
          ignore (Str.search_forward (Str.regexp_string "#1baf7a") doc1 0);
          true
        with Not_found -> false))

let test_chart_log_drops_nonpositive () =
  let spec =
    {
      sample_spec with
      Plot.Chart.y_scale = Plot.Chart.Log;
      series =
        [
          { Plot.Chart.label = "s"; points = [ (1., 0.); (2., 10.); (3., 100.) ] };
        ];
    }
  in
  let doc = Plot.Chart.render spec in
  (* The polyline must contain exactly 2 points (the y = 0 one dropped). *)
  let re = Str.regexp "polyline points=\"\\([^\"]*\\)\"" in
  (match Str.search_forward re doc 0 with
  | exception Not_found -> Alcotest.fail "no polyline"
  | _ ->
      let pts = Str.matched_group 1 doc in
      Alcotest.(check int) "two points" 2
        (List.length (String.split_on_char ' ' pts)))

let test_chart_too_many_series () =
  let series =
    List.init 9 (fun i ->
        { Plot.Chart.label = string_of_int i; points = [ (0., 0.); (1., 1.) ] })
  in
  Alcotest.check_raises "ninth series rejected"
    (Invalid_argument
       "Chart.render: more series than categorical slots — fold or facet")
    (fun () -> ignore (Plot.Chart.render { sample_spec with Plot.Chart.series }))

let test_figures_written () =
  let dir = Filename.temp_file "plots" "" in
  Sys.remove dir;
  let paths =
    Experiments.Figures.write_all
      ~fig7_params:
        {
          Workload.Traffic.default with
          Workload.Traffic.n_shared = 300;
          n_only = 350;
          total_per_hour = 2e4;
        }
      ~dir ()
  in
  Alcotest.(check int) "eight figures" 8 (List.length paths);
  List.iter
    (fun p ->
      let ic = open_in p in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Alcotest.(check bool) (p ^ " nonempty svg") true
        (len > 500 && String.sub s 0 5 = "<?xml");
      (* balanced <svg> *)
      Alcotest.(check bool) "closed" true
        (try
           ignore (Str.search_forward (Str.regexp_string "</svg>") s 0);
           true
         with Not_found -> false);
      Sys.remove p)
    paths;
  Sys.rmdir dir

let () =
  Alcotest.run "plot"
    [
      ( "svg",
        [
          Alcotest.test_case "escaping" `Quick test_svg_escaping;
          Alcotest.test_case "structure" `Quick test_svg_structure;
          Alcotest.test_case "file roundtrip" `Quick test_svg_file_roundtrip;
        ] );
      ( "scales",
        [
          Alcotest.test_case "linear ticks" `Quick test_linear_ticks;
          Alcotest.test_case "log ticks" `Quick test_log_ticks;
          Alcotest.test_case "tick labels" `Quick test_tick_labels;
          Alcotest.test_case "palette order" `Quick test_palette_fixed_order;
        ] );
      ( "charts",
        [
          Alcotest.test_case "coordinates bounded" `Quick test_chart_coordinates_finite_and_bounded;
          Alcotest.test_case "legend rules" `Quick test_chart_legend_rules;
          Alcotest.test_case "log drops ≤ 0" `Quick test_chart_log_drops_nonpositive;
          Alcotest.test_case "series cap" `Quick test_chart_too_many_series;
          Alcotest.test_case "all figures render" `Slow test_figures_written;
        ] );
    ]
