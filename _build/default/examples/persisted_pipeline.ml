(* The deployment pipeline: summarize at the source, persist the sample,
   estimate post hoc — no access to the original data at query time.

     dune exec examples/persisted_pipeline.exe

   Phase 1 (at each data source): build the day's instance, PPS-sample
   it with hash seeds derived from a shared master, write the sample to
   disk, drop the instance.

   Phase 2 (at the analyst, later): load only the two sample files,
   recompute seeds from the shared master, and answer multi-instance
   queries. The max^(L) estimator uses the seed of every key it sees —
   including seeds of instances where the key was NOT sampled — which is
   exactly the "known seeds" capability that hash-derived seeds give for
   free. *)

let master = 2024

let source_phase ~instance ~gen_seed path =
  let insts =
    Workload.Changes.generate
      {
        Workload.Changes.default with
        Workload.Changes.n_keys = 4_000;
        r = 1;
        seed = gen_seed;
      }
  in
  let inst = List.hd insts in
  let seeds = Sampling.Seeds.create ~master Sampling.Seeds.Independent in
  let tau = Sampling.Poisson.tau_for_expected_size inst 400. in
  let sample = Sampling.Poisson.pps_sample seeds ~instance ~tau inst in
  Sampling.Io.write_pps ~path sample;
  Printf.printf
    "source %d: %d keys -> sampled %d, wrote %s (%d bytes), dropped the rest\n"
    instance
    (Sampling.Instance.cardinality inst)
    (List.length sample.Sampling.Poisson.entries)
    path
    (String.length (Sampling.Io.pps_to_string sample));
  (* Return the instance only to compute ground truth for the demo. *)
  inst

let () =
  let f1 = Filename.temp_file "day1" ".pps" in
  let f2 = Filename.temp_file "day2" ".pps" in
  Printf.printf "--- phase 1: at the sources ---\n";
  let day1 = source_phase ~instance:0 ~gen_seed:101 f1 in
  let day2 = source_phase ~instance:1 ~gen_seed:202 f2 in

  Printf.printf "\n--- phase 2: at the analyst (samples only) ---\n";
  let s1 = Sampling.Io.read_pps ~path:f1 in
  let s2 = Sampling.Io.read_pps ~path:f2 in
  let seeds = Sampling.Seeds.create ~master Sampling.Seeds.Independent in
  let samples =
    {
      Aggregates.Sum_agg.seeds;
      taus = [| s1.Sampling.Poisson.tau; s2.Sampling.Poisson.tau |];
      samples = [| s1; s2 |];
    }
  in
  let all _ = true in
  let est_l = Aggregates.Dominance.max_dominance_l samples ~select:all in
  let est_ht = Aggregates.Dominance.max_dominance_ht samples ~select:all in
  let truth = Sampling.Instance.max_dominance [ day1; day2 ] in
  Printf.printf "max-dominance: truth %.4e (never seen by the analyst)\n" truth;
  Printf.printf "  max^(L)  from files: %.4e  (error %+.2f%%)\n" est_l
    (100. *. (est_l -. truth) /. truth);
  Printf.printf "  max^(HT) from files: %.4e  (error %+.2f%%)\n" est_ht
    (100. *. (est_ht -. truth) /. truth);
  Sys.remove f1;
  Sys.remove f2
