examples/sensor_union.mli:
