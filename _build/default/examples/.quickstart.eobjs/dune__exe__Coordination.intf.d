examples/coordination.mli:
