examples/persisted_pipeline.mli:
