examples/network_monitoring.mli:
