examples/sensor_union.ml: Aggregates Format List Sampling Workload
