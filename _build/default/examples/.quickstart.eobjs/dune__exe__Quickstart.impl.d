examples/quickstart.ml: Aggregates Float List Numerics Printf Sampling
