examples/designer_demo.mli:
