examples/designer_demo.ml: Array Estcore Float Format List Numerics Printf Sampling String
