examples/network_monitoring.ml: Aggregates Array Format List Sampling Sys Workload
