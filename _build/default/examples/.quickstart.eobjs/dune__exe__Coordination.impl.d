examples/coordination.ml: Aggregates Array Estcore Float Format List Numerics Sampling
