examples/quickstart.mli:
