examples/persisted_pipeline.ml: Aggregates Filename List Printf Sampling String Sys Workload
