(* Quickstart: estimate multi-instance aggregates from independent
   weighted samples with known seeds.

     dune exec examples/quickstart.exe

   Two small "daily request log" instances are sampled independently
   (PPS Poisson, ~25% of keys each); we then estimate the max-dominance
   norm (Σ_h max(v₁(h), v₂(h))) with the paper's optimal max^(L)
   estimator and with the classical Horvitz–Thompson baseline, and the
   distinct count with OR^(L) vs OR^(HT). *)

let () =
  (* 1. The data: two instances (e.g. request counts per URL on two days).
     Only the owners of the data see this; estimators see samples. *)
  let rng = Numerics.Prng.create ~seed:42 () in
  let day keys =
    Sampling.Instance.of_assoc
      (List.filter_map
         (fun k ->
           if Numerics.Prng.float rng < 0.8 then
             Some (k, 1. +. Float.round (50. *. Numerics.Prng.float rng))
           else None)
         keys)
  in
  let keys = List.init 2_000 (fun i -> i + 1) in
  let day1 = day keys and day2 = day keys in

  (* 2. Sample each instance independently. Seeds come from hashing, so
     the estimator can recompute the seed of any key ("known seeds"). *)
  let seeds = Sampling.Seeds.create ~master:7 Sampling.Seeds.Independent in
  let tau1 = Sampling.Poisson.tau_for_expected_size day1 500. in
  let tau2 = Sampling.Poisson.tau_for_expected_size day2 500. in
  let samples =
    Aggregates.Sum_agg.sample_pps seeds ~taus:[| tau1; tau2 |] [ day1; day2 ]
  in

  (* 3. Estimate the max-dominance norm. *)
  let truth = Sampling.Instance.max_dominance [ day1; day2 ] in
  let all _ = true in
  let est_l = Aggregates.Dominance.max_dominance_l samples ~select:all in
  let est_ht = Aggregates.Dominance.max_dominance_ht samples ~select:all in
  Printf.printf "max-dominance:  truth = %10.1f\n" truth;
  Printf.printf "  max^(L)  estimate = %10.1f  (error %+.2f%%)\n" est_l
    (100. *. (est_l -. truth) /. truth);
  Printf.printf "  max^(HT) estimate = %10.1f  (error %+.2f%%)\n" est_ht
    (100. *. (est_ht -. truth) /. truth);

  (* Exact variances (computable because per-key estimates are independent
     and the per-key seed-space moments integrate in closed pieces): *)
  let vht, vl =
    Aggregates.Dominance.exact_variances ~taus:[| tau1; tau2 |]
      ~instances:[ day1; day2 ] ~select:all
  in
  Printf.printf "  exact stddev:  L = %.1f,  HT = %.1f  (ratio Var %.2fx)\n\n"
    (sqrt vl) (sqrt vht) (vht /. vl);

  (* 4. Distinct count (union of active URLs) from binary samples. *)
  let p = 0.25 in
  let s1 = Aggregates.Distinct.sample_binary seeds ~p ~instance:0 day1 in
  let s2 = Aggregates.Distinct.sample_binary seeds ~p ~instance:1 day2 in
  let classes =
    Aggregates.Distinct.classify seeds ~p1:p ~p2:p ~s1 ~s2 ~select:all
  in
  let d_truth = Sampling.Instance.distinct_count [ day1; day2 ] in
  Printf.printf "distinct count: truth = %d\n" d_truth;
  Printf.printf "  OR^(L)  estimate = %10.1f\n"
    (Aggregates.Distinct.l_estimate classes ~p1:p ~p2:p);
  Printf.printf "  OR^(HT) estimate = %10.1f\n"
    (Aggregates.Distinct.ht_estimate classes ~p1:p ~p2:p);
  let j = Sampling.Instance.jaccard day1 day2 in
  Printf.printf "  exact stddev:  L = %.1f,  HT = %.1f  (Jaccard %.2f)\n"
    (sqrt
       (Aggregates.Distinct.var_l ~d:(float_of_int d_truth) ~jaccard:j ~p1:p
          ~p2:p))
    (sqrt (Aggregates.Distinct.var_ht ~d:(float_of_int d_truth) ~p1:p ~p2:p))
    j
