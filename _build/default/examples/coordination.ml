(* Coordinated vs independent sampling (Section 7.2's trade-off).

     dune exec examples/coordination.exe

   The same master seed can drive all instances' samples (shared seeds —
   the PRN method, "similar instances get similar samples") or distinct
   per-instance streams. This example runs both designs over the same
   pair of instances and compares, with exact variances:

   - a multi-instance query (max dominance): coordination wins, hugely so
     when instances disagree;
   - a decomposable query (total volume across both instances):
     independence wins — coordinated per-instance estimates are
     positively correlated. *)

module I = Sampling.Instance

let () =
  let rng = Numerics.Prng.create ~seed:11 () in
  (* Two instances with a mix of stable and churned keys. *)
  let base = Array.init 3_000 (fun i -> (i + 1, 1. +. (20. *. Numerics.Prng.float rng))) in
  let instance jitter =
    I.of_assoc
      (Array.to_list base
      |> List.filter_map (fun (k, v) ->
             if Numerics.Prng.float rng < 0.25 then None
             else Some (k, v *. (1. +. (jitter *. ((2. *. Numerics.Prng.float rng) -. 1.))))))
  in
  let a = instance 0.3 and b = instance 0.3 in
  let instances = [ a; b ] in
  let truth = I.max_dominance instances in
  let taus = [| 40.; 40. |] in
  Format.printf
    "instances: %d / %d keys, union %d; true max-dominance %.4e@.@."
    (I.cardinality a) (I.cardinality b)
    (I.distinct_count instances)
    truth;

  let run mode label estimator =
    let seeds = Sampling.Seeds.create ~master:3 mode in
    let samples = Aggregates.Sum_agg.sample_pps seeds ~taus instances in
    let est = estimator samples in
    Format.printf "  %-28s estimate %.4e (error %+.2f%%)@." label est
      (100. *. (est -. truth) /. truth)
  in
  Format.printf "max dominance from one realized sample each:@.";
  run Sampling.Seeds.Shared "coordinated (shared seeds)" (fun s ->
      Aggregates.Dominance.max_dominance_coordinated s ~select:(fun _ -> true));
  run Sampling.Seeds.Independent "independent, max^(L)" (fun s ->
      Aggregates.Dominance.max_dominance_l s ~select:(fun _ -> true));
  run Sampling.Seeds.Independent "independent, max^(HT)" (fun s ->
      Aggregates.Dominance.max_dominance_ht s ~select:(fun _ -> true));

  (* Exact standard errors. *)
  let vc =
    Aggregates.Dominance.exact_variance_coordinated ~taus ~instances
      ~select:(fun _ -> true)
  in
  let vht, vl =
    Aggregates.Dominance.exact_variances ~taus ~instances ~select:(fun _ -> true)
  in
  Format.printf "@.exact standard errors (%% of truth):@.";
  Format.printf "  coordinated %.2f%%, independent L %.2f%%, independent HT %.2f%%@."
    (100. *. sqrt vc /. truth)
    (100. *. sqrt vl /. truth)
    (100. *. sqrt vht /. truth);

  (* Decomposable query: total volume over both instances. *)
  let p_of inst h = Float.min 1. (I.value inst h /. taus.(0)) in
  let var_sum shared =
    List.fold_left
      (fun acc h ->
        let v1 = I.value a h and v2 = I.value b h in
        let p1 = p_of a h and p2 = p_of b h in
        let var1 = if v1 > 0. then Estcore.Ht.single_variance ~p:p1 ~value:v1 else 0. in
        let var2 = if v2 > 0. then Estcore.Ht.single_variance ~p:p2 ~value:v2 else 0. in
        let cov =
          if v1 > 0. && v2 > 0. then
            Estcore.Coordinated.sum_covariance ~p1 ~p2 ~v1 ~v2 ~shared
          else 0.
        in
        acc +. var1 +. var2 +. (2. *. cov))
      0. (I.union_keys instances)
  in
  let total = I.total a +. I.total b in
  Format.printf "@.decomposable query (total volume %.4e), exact se:@." total;
  Format.printf "  coordinated %.2f%%, independent %.2f%%@."
    (100. *. sqrt (var_sum true) /. total)
    (100. *. sqrt (var_sum false) /. total);
  Format.printf
    "@.→ coordinate when the workload is dominated by multi-instance \
     queries; keep samples independent when it is dominated by \
     decomposable ones (§7.2).@."
