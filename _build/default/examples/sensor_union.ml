(* Sensor coverage (the Section 8.1 scenario): two battery-powered sensor
   gateways each observe a set of active device identifiers and can only
   transmit a small sample of them (independent weighted sampling with
   hash seeds — no coordination needed between the gateways). The
   operator wants the number of distinct active devices.

     dune exec examples/sensor_union.exe

   The example sweeps the overlap (Jaccard coefficient) between the two
   gateways' device sets and shows (a) the realized OR^(L) vs OR^(HT)
   estimates at a fixed 5% transmission budget and (b) the budget each
   estimator would need for a 10% coefficient of variation — the Figure 6
   story: L needs ≈ √(1−J)/2 of HT's budget, and O(1) transmissions
   when the sets coincide. *)

let () =
  let n = 20_000 in
  let p = 0.05 in
  Format.printf
    "two gateways, %d devices each, 5%% transmission budget (p = %.2f)@.@."
    n p;
  Format.printf "%-8s %-9s %-11s %-11s %-12s %-12s %-10s@." "J" "truth"
    "OR^(L)" "OR^(HT)" "s(L)@cv=.1" "s(HT)@cv=.1" "ratio";
  List.iter
    (fun jaccard ->
      let a, b = Workload.Setpairs.pair ~n ~jaccard in
      let truth = Workload.Setpairs.union_size a b in
      let seeds = Sampling.Seeds.create ~master:5 Sampling.Seeds.Independent in
      let s1 = Aggregates.Distinct.sample_binary seeds ~p ~instance:0 a in
      let s2 = Aggregates.Distinct.sample_binary seeds ~p ~instance:1 b in
      let c =
        Aggregates.Distinct.classify seeds ~p1:p ~p2:p ~s1 ~s2
          ~select:(fun _ -> true)
      in
      let cv = 0.1 in
      let nf = float_of_int n in
      let s_l =
        Aggregates.Distinct.Required.(
          sample_size ~p:(p_l ~n:nf ~jaccard ~cv) ~n:nf)
      in
      let s_ht =
        Aggregates.Distinct.Required.(
          sample_size ~p:(p_ht ~n:nf ~jaccard ~cv) ~n:nf)
      in
      Format.printf "%-8.2f %-9d %-11.1f %-11.1f %-12.1f %-12.1f %-10.3f@."
        jaccard truth
        (Aggregates.Distinct.l_estimate c ~p1:p ~p2:p)
        (Aggregates.Distinct.ht_estimate c ~p1:p ~p2:p)
        s_l s_ht (s_l /. s_ht))
    [ 0.; 0.25; 0.5; 0.75; 0.9; 1. ];
  Format.printf
    "@.(expected ratio → √(1−J)/2; at J = 1 a constant number of \
     transmissions suffices for OR^(L))@."
