(* Network monitoring (the Section 8.2 scenario): two consecutive hours
   of per-destination flow counts, summarized independently by PPS
   Poisson samples at a router. Post hoc, an analyst asks a
   multi-instance question — the max-dominance norm, a robust measure of
   combined activity used for planning — from the two samples alone.

     dune exec examples/network_monitoring.exe [-- <percent sampled>]

   The example sweeps the sampling rate and reports, for max^(L) and the
   HT baseline: a realized estimate, the exact standard error, and the
   variance ratio (the paper reports 2.45–2.7 on its AT&T data). *)

let () =
  let percent =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.
  in
  let params =
    (* A scaled-down replica of the paper's two-hour trace keeps the
       example snappy; pass a percentage to run a single full-size point. *)
    if percent > 0. then Workload.Traffic.default
    else
      {
        Workload.Traffic.default with
        Workload.Traffic.n_shared = 2_200;
        n_only = 2_700;
        total_per_hour = 1.1e5;
      }
  in
  let ((hour1, hour2) as pair) = Workload.Traffic.generate params in
  Format.printf "workload: %a@." Workload.Traffic.pp_stats
    (Workload.Traffic.stats pair);
  let instances = [ hour1; hour2 ] in
  let truth = Sampling.Instance.max_dominance instances in
  Format.printf "true max-dominance = %.4e@.@." truth;
  Format.printf "%-10s %-12s %-12s %-10s %-10s %-8s@." "%sampled" "est(L)"
    "est(HT)" "se(L)%" "se(HT)%" "VarHT/VarL";
  let percents = if percent > 0. then [ percent ] else [ 1.; 3.; 10.; 30. ] in
  List.iter
    (fun pc ->
      let k inst =
        pc /. 100. *. float_of_int (Sampling.Instance.cardinality inst)
      in
      let taus =
        [|
          Sampling.Poisson.tau_for_expected_size hour1 (k hour1);
          Sampling.Poisson.tau_for_expected_size hour2 (k hour2);
        |]
      in
      let seeds = Sampling.Seeds.create ~master:99 Sampling.Seeds.Independent in
      let samples = Aggregates.Sum_agg.sample_pps seeds ~taus instances in
      let all _ = true in
      let est_l = Aggregates.Dominance.max_dominance_l samples ~select:all in
      let est_ht = Aggregates.Dominance.max_dominance_ht samples ~select:all in
      let vht, vl =
        Aggregates.Dominance.exact_variances ~taus ~instances ~select:all
      in
      Format.printf "%-10.1f %-12.4e %-12.4e %-10.2f %-10.2f %-8.2f@." pc
        est_l est_ht
        (100. *. sqrt vl /. truth)
        (100. *. sqrt vht /. truth)
        (vht /. vl))
    percents;
  Format.printf
    "@.The optimal estimator extracts the same accuracy from roughly 40%% \
     of the samples the HT baseline needs.@."
