(** Synthetic two-hour IP-traffic workload, calibrated to the statistics
    the paper reports for its (proprietary) data set in Section 8.2:

    - ≈ 2.45·10⁴ distinct destination IPs per hour,
    - 3.8·10⁴ distinct destinations over both hours
      (so ≈ 1.1·10⁴ persistent destinations),
    - 5.5·10⁵ flows per hour,
    - Σ_h max(v₁(h), v₂(h)) ≈ 7.47·10⁵.

    Values are heavy-tailed (Zipf); persistent destinations carry the top
    of the profile (they must hold ≈ 71% of each hour's volume for the
    Σmax/volume ratio to match) with bounded multiplicative variation
    between the hours; transient destinations are independent.
    The estimators' behaviour depends on the data only through the
    per-key value pairs and the sampling probabilities, so matching these
    marginals reproduces the paper's variance-ratio regime. *)

type params = {
  n_shared : int;  (** destinations active in both hours *)
  n_only : int;  (** destinations active in exactly one hour (each hour) *)
  total_per_hour : float;  (** flows per hour *)
  zipf_s : float;  (** value-profile skew *)
  jitter : float;  (** max relative hour-to-hour change of shared keys *)
  seed : int;
}

val default : params
(** Calibrated to the Section 8.2 statistics:
    [n_shared = 11_000], [n_only = 13_500], [total = 5.5e5],
    [zipf_s = 0.6], [jitter = 0.35]. *)

val generate : params -> Sampling.Instance.t * Sampling.Instance.t

(** Pull-based record generator: the same workload shape as {!generate},
    one [(key, weight)] record at a time, so a serving benchmark can
    replay an hour into a live store without materializing instances.

    Each hour is an independent deterministic substream of the workload
    seed ([Prng.substream ~master:seed hour]) — streams are reproducible
    and hours keep the {!generate} structure (shared keys take the
    profile head, per-hour volume rescaled to exactly
    [total_per_hour]) — but the jitter realization is {e not}
    draw-for-draw identical to {!generate}'s (which interleaves both
    hours on one PRNG stream). Calibration statistics hold for both. *)
module Stream : sig
  type t

  val create : ?hour:int -> params -> t
  (** [hour] is 1 (default) or 2. O(n) setup (profile + rescale pass),
      O(1) per record after. *)

  val next : t -> int * float
  (** The next [(key, weight)] record; raises [Failure] when exhausted
      — check {!has_next}. Every key appears in exactly one record. *)

  val has_next : t -> bool
  val remaining : t -> int
  val length : t -> int

  val fold : ('a -> key:int -> weight:float -> 'a) -> 'a -> t -> 'a
  (** Consume the rest of the stream. *)

  val to_instance : t -> Sampling.Instance.t
  (** Materialize the rest (tests; defeats the point otherwise). *)
end

type stats = {
  keys_hour1 : int;
  keys_hour2 : int;
  keys_union : int;
  flows_hour1 : float;
  flows_hour2 : float;
  sum_max : float;
}

val stats : Sampling.Instance.t * Sampling.Instance.t -> stats
val pp_stats : Format.formatter -> stats -> unit
