module I = Sampling.Instance

type params = {
  n_shared : int;
  n_only : int;
  total_per_hour : float;
  zipf_s : float;
  jitter : float;
  seed : int;
}

let default =
  {
    n_shared = 11_000;
    n_only = 13_500;
    total_per_hour = 5.5e5;
    zipf_s = 0.6;
    jitter = 0.35;
    seed = 2011;
  }

let generate p =
  let rng = Numerics.Prng.create ~seed:p.seed () in
  let n_hour = p.n_shared + p.n_only in
  (* Zipf profile over one hour's keys; shared keys take the head. *)
  let profile =
    Zipf.frequencies ~n:n_hour ~s:p.zipf_s ~total:p.total_per_hour
  in
  let jitter () = 1. +. (p.jitter *. ((2. *. Numerics.Prng.float rng) -. 1.)) in
  (* Key numbering: shared = 1..n_shared; hour-1-only and hour-2-only
     follow. *)
  let hour only_base =
    let shared =
      List.init p.n_shared (fun i -> (i + 1, profile.(i) *. jitter ()))
    in
    let only =
      List.init p.n_only (fun i ->
          (only_base + i, profile.(p.n_shared + i) *. jitter ()))
    in
    shared @ only
  in
  let h1 = hour (p.n_shared + 1) in
  let h2 = hour (p.n_shared + p.n_only + 1) in
  (* Rescale each hour to the exact target volume. *)
  let rescale entries =
    let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. entries in
    let c = p.total_per_hour /. total in
    I.of_assoc (List.map (fun (k, v) -> (k, v *. c)) entries)
  in
  (rescale h1, rescale h2)

module Stream = struct
  type t = {
    params : params;
    hour : int;
    profile : float array;
    scale : float;
    rng : Numerics.Prng.t;
    mutable index : int;
  }

  let n_records p = p.n_shared + p.n_only

  let key_of p ~hour i =
    if i < p.n_shared then i + 1
    else
      let only_base =
        if hour = 1 then p.n_shared + 1 else p.n_shared + p.n_only + 1
      in
      only_base + (i - p.n_shared)

  let jitter p rng = 1. +. (p.jitter *. ((2. *. Numerics.Prng.float rng) -. 1.))

  (* Two passes over the same substream: the first sums the raw jittered
     profile to find the exact-volume rescale factor, the second (a fresh
     substream — identical draws) is what [next] consumes. Nothing is
     materialized beyond the O(n) profile array that any generator
     needs. *)
  let create ?(hour = 1) p =
    if hour <> 1 && hour <> 2 then
      invalid_arg (Printf.sprintf "Traffic.Stream.create: hour %d" hour);
    let n = n_records p in
    let profile = Zipf.frequencies ~n ~s:p.zipf_s ~total:p.total_per_hour in
    let pass = Numerics.Prng.substream ~master:p.seed hour in
    let raw_total = ref 0. in
    for i = 0 to n - 1 do
      raw_total := !raw_total +. (profile.(i) *. jitter p pass)
    done;
    {
      params = p;
      hour;
      profile;
      scale = p.total_per_hour /. !raw_total;
      rng = Numerics.Prng.substream ~master:p.seed hour;
      index = 0;
    }

  let length t = n_records t.params
  let remaining t = length t - t.index
  let has_next t = t.index < length t

  let next t =
    if not (has_next t) then failwith "Traffic.Stream.next: exhausted";
    let i = t.index in
    t.index <- i + 1;
    ( key_of t.params ~hour:t.hour i,
      t.profile.(i) *. jitter t.params t.rng *. t.scale )

  let fold f init t =
    let acc = ref init in
    while has_next t do
      let key, weight = next t in
      acc := f !acc ~key ~weight
    done;
    !acc

  let to_instance t =
    I.of_assoc
      (List.rev
         (fold (fun acc ~key ~weight -> (key, weight) :: acc) [] t))
end

type stats = {
  keys_hour1 : int;
  keys_hour2 : int;
  keys_union : int;
  flows_hour1 : float;
  flows_hour2 : float;
  sum_max : float;
}

let stats (a, b) =
  {
    keys_hour1 = I.cardinality a;
    keys_hour2 = I.cardinality b;
    keys_union = I.distinct_count [ a; b ];
    flows_hour1 = I.total a;
    flows_hour2 = I.total b;
    sum_max = I.max_dominance [ a; b ];
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "keys/hour = %d / %d, union = %d, flows/hour = %.3e / %.3e, sum-max = %.3e"
    s.keys_hour1 s.keys_hour2 s.keys_union s.flows_hour1 s.flows_hour2
    s.sum_max
