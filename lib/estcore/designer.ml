type 'k problem = {
  data : float array list;
  f : float array -> float;
  dist : float array -> (float * 'k) list;
  key : string option;
      (* precomputed-at-construction fingerprint key: scheme name,
         caller-asserted function name and parameters, rendered once.
         [None] falls back to the structural MD5 walk. *)
}

type 'k estimator = ('k, float) Hashtbl.t

let of_bindings bindings : 'k estimator =
  let t = Hashtbl.create (List.length bindings) in
  List.iter (fun (k, v) -> Hashtbl.replace t k v) bindings;
  t

let lookup (t : 'k estimator) k = Hashtbl.find t k
let bindings t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []

let min_estimate t =
  Hashtbl.fold (fun _ v acc -> Float.min v acc) t infinity

let positive_support dist = List.filter (fun (p, _) -> p > 0.) dist

let solve_order ?(eps = 1e-9) problem =
  let table : 'k estimator = Hashtbl.create 64 in
  let result = ref (Ok ()) in
  List.iter
    (fun v ->
      match !result with
      | Error _ -> ()
      | Ok () ->
          let support = positive_support (problem.dist v) in
          (* Contribution of already-assigned outcomes to E[est | v]. *)
          let f0 = ref 0. in
          let fresh = ref [] in
          let p_fresh = ref 0. in
          List.iter
            (fun (p, k) ->
              match Hashtbl.find_opt table k with
              | Some est -> f0 := !f0 +. (p *. est)
              | None ->
                  fresh := k :: !fresh;
                  p_fresh := !p_fresh +. p)
            support;
          let fv = problem.f v in
          if !p_fresh <= eps then begin
            if abs_float (fv -. !f0) > eps *. (1. +. abs_float fv) then
              result :=
                Error
                  (Format.asprintf
                     "no unbiased estimator: vector [%a] has no fresh \
                      outcomes but E=%g ≠ f=%g"
                     Fmt.(array ~sep:comma float)
                     v !f0 fv)
          end
          else begin
            let est = (fv -. !f0) /. !p_fresh in
            List.iter (fun k -> Hashtbl.replace table k est) !fresh
          end)
    problem.data;
  match !result with Ok () -> Ok table | Error e -> Error e

(* Fresh (not yet assigned, reachable with positive probability) outcomes
   of a batch, in first-encounter order. *)
let fresh_outcomes ~table ~dist batch =
  let fresh_tbl = Hashtbl.create 16 in
  let fresh = ref [] in
  List.iter
    (fun v ->
      List.iter
        (fun (p, k) ->
          if p > 0. && (not (Hashtbl.mem table k)) && not (Hashtbl.mem fresh_tbl k)
          then begin
            Hashtbl.add fresh_tbl k ();
            fresh := k :: !fresh
          end)
        (dist v))
    batch;
  Array.of_list (List.rev !fresh)

(* The batch's QP data: unbiasedness equalities over the batch,
   nonnegativity-preservation inequalities over later vectors, and the
   diagonal variance objective. *)
let batch_system ~table ~f ~dist ~batch ~laters ~fresh =
  let n = Array.length fresh in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i k -> Hashtbl.add index k i) fresh;
  (* Row of coefficients over fresh outcomes and the assigned
     contribution f0, for a data vector v. *)
  let row_of v =
    let coeffs = Array.make n 0. in
    let f0 = ref 0. in
    List.iter
      (fun (p, k) ->
        if p > 0. then
          match Hashtbl.find_opt table k with
          | Some est -> f0 := !f0 +. (p *. est)
          | None -> (
              match Hashtbl.find_opt index k with
              | Some i -> coeffs.(i) <- coeffs.(i) +. p
              | None -> ()))
      (dist v);
    (coeffs, !f0)
  in
  let a_eq, b_eq =
    batch
    |> List.map (fun v ->
           let coeffs, f0 = row_of v in
           (coeffs, f v -. f0))
    |> List.split
  in
  let a_ub, b_ub =
    laters
    |> List.filter_map (fun v' ->
           let coeffs, f0 = row_of v' in
           if Array.exists (fun c -> c > 0.) coeffs then
             Some (coeffs, f v' -. f0)
           else None)
    |> List.split
  in
  (* Objective: Σ_{v∈batch} Var[est|v] — i.e. Σ_o w_o x_o² with
     w_o = Σ_v Pr[o|v] (the unbiasedness constraints pin the
     linear part). *)
  let w = Array.make n 0. in
  List.iter
    (fun v ->
      List.iter
        (fun (p, k) ->
          match Hashtbl.find_opt index k with
          | Some i -> w.(i) <- w.(i) +. p
          | None -> ())
        (dist v))
    batch;
  (* Outcomes reachable only from later vectors keep weight 0; give them
     a tiny weight for strict convexity (their value is then driven to 0
     unless constrained). *)
  let q = Array.map (fun wi -> 2. *. Float.max wi 1e-9) w in
  ( q,
    Array.of_list a_ub,
    Array.of_list b_ub,
    Array.of_list a_eq,
    Array.of_list b_eq )

(* Unbiasedness check for a batch with no fresh outcomes. *)
let check_settled_batch ~eps ~table ~f ~dist batch =
  List.for_all
    (fun v ->
      let e =
        List.fold_left
          (fun acc (p, k) ->
            match Hashtbl.find_opt table k with
            | Some est -> acc +. (p *. est)
            | None -> acc)
          0. (dist v)
      in
      let fv = f v in
      abs_float (e -. fv) <= eps *. (1. +. abs_float fv))
    batch

let solve_partition ?(eps = 1e-9) ~batches ~f ~dist () =
  let table : 'k estimator = Hashtbl.create 64 in
  let later_batches =
    ref (match batches with [] -> [] | _ :: tl -> tl @ [ [] ])
  in
  (* [later_batches] tracks the batches strictly after the current one;
     rebuilt as we walk. *)
  let result = ref (Ok ()) in
  List.iter
    (fun batch ->
      match !result with
      | Error _ -> ()
      | Ok () ->
          let laters = List.concat !later_batches in
          (later_batches :=
             match !later_batches with [] -> [] | _ :: tl -> tl);
          let fresh = fresh_outcomes ~table ~dist batch in
          if Array.length fresh = 0 then begin
            if not (check_settled_batch ~eps ~table ~f ~dist batch) then
              result := Error "batch has no fresh outcomes but is biased"
          end
          else begin
            let q, a_ub, b_ub, a_eq, b_eq =
              batch_system ~table ~f ~dist ~batch ~laters ~fresh
            in
            match
              Numerics.Qp.minimize_r ~eps ~attempts:0
                ~q ~c:(Array.make (Array.length fresh) 0.)
                ~a_ub ~b_ub ~a_eq ~b_eq ()
            with
            | Error { Numerics.Robust.reason = Numerics.Robust.Infeasible; _ } ->
                result := Error "infeasible batch (no nonnegative unbiased extension)"
            | Error fl -> result := Error (Numerics.Robust.to_string fl)
            | Ok { Numerics.Qp.x; _ } ->
                Array.iteri (fun i k -> Hashtbl.replace table k x.(i)) fresh
          end)
    batches;
  match !result with Ok () -> Ok table | Error e -> Error e

type batch_outcome = {
  batch : int;
  rung : string;
  retries : int;
  cause : Numerics.Robust.failure option;
}

type provenance = {
  batches : int;
  qp_clean : int;
  degraded : batch_outcome list;
}

type 'k derived = { estimator : 'k estimator; provenance : provenance }

let pp_batch_outcome fmt { batch; rung; retries; cause } =
  Format.fprintf fmt "batch %d: %s (retries=%d)%a" batch rung retries
    (fun fmt -> function
      | None -> ()
      | Some fl -> Format.fprintf fmt " after %a" Numerics.Robust.pp fl)
    cause

(* Final ladder rung: Algorithm-1-style per-vector assignment restricted
   to this batch's fresh outcomes, clamped nonnegative. Trades exact
   unbiasedness (and optimality) for a finite, nonnegative table so a
   sweep can always finish; the degradation is recorded by the caller. *)
let ht_share_assign ~eps ~table ~f ~dist ~batch ~fresh =
  let assigned = Hashtbl.create 16 in
  let get k =
    match Hashtbl.find_opt table k with
    | Some _ as r -> r
    | None -> Hashtbl.find_opt assigned k
  in
  let failed = ref None in
  List.iter
    (fun v ->
      if !failed = None then begin
        let support = positive_support (dist v) in
        let f0 = ref 0. in
        let p_fresh = ref 0. in
        let fresh_ks = ref [] in
        List.iter
          (fun (p, k) ->
            match get k with
            | Some est -> f0 := !f0 +. (p *. est)
            | None ->
                fresh_ks := k :: !fresh_ks;
                p_fresh := !p_fresh +. p)
          support;
        if !p_fresh > eps then begin
          let est = Float.max 0. ((f v -. !f0) /. !p_fresh) in
          if not (Float.is_finite est) then
            failed :=
              Some
                (Numerics.Robust.fail Numerics.Robust.Designer
                   (Numerics.Robust.Non_finite "ht-share estimate"))
          else List.iter (fun k -> Hashtbl.replace assigned k est) !fresh_ks
        end
      end)
    batch;
  match !failed with
  | Some fl -> Error fl
  | None ->
      (* Outcomes reachable only from later vectors default to 0. *)
      Array.iter
        (fun k ->
          match get k with
          | Some _ -> ()
          | None -> Hashtbl.replace assigned k 0.)
        fresh;
      Ok assigned

let solve_partition_robust ?(eps = 1e-9) ?(seed = 0x7A57) ?(attempts = 2)
    ~batches ~f ~dist () =
  Numerics.Obs.span ~cat:"designer" "designer.solve_partition" @@ fun () ->
  let table : 'k estimator = Hashtbl.create 64 in
  let qp_clean = ref 0 in
  let degraded = ref [] in
  let later_batches =
    ref (match batches with [] -> [] | _ :: tl -> tl @ [ [] ])
  in
  let failure = ref None in
  let commit fresh x = Array.iteri (fun i k -> Hashtbl.replace table k x.(i)) fresh in
  (* One span per batch, tagged with the provenance rung it settled on
     ("qp-clean", "qp", "lp-feasible", "ht-share" or "failed"), so a
     trace shows at a glance which batches degraded and what they cost. *)
  let record_batch bi t0 =
    if Numerics.Obs.enabled () then begin
      let dur = Int64.sub (Numerics.Obs.now_ns ()) t0 in
      let rung =
        match !failure with
        | Some _ -> "failed"
        | None -> (
            match !degraded with
            | { batch = b; rung = r; _ } :: _ when b = bi -> r
            | _ -> "qp-clean")
      in
      Numerics.Obs.count ("designer.batch." ^ rung);
      (* record_span feeds the histogram itself; observe only when no
         span will be retained, so each batch lands exactly once. *)
      if Numerics.Obs.tracing () then
        Numerics.Obs.record_span ~cat:"designer"
          ~args:[ ("batch", string_of_int bi); ("rung", rung) ]
          ~name:"designer.batch" ~start_ns:t0 ~dur_ns:dur ()
      else Numerics.Obs.observe_ns "designer.batch" dur
    end
  in
  (try
     List.iteri
       (fun bi batch ->
         match !failure with
         | Some _ -> ()
         | None ->
             let t0 =
               if Numerics.Obs.enabled () then Numerics.Obs.now_ns () else 0L
             in
             let laters = List.concat !later_batches in
             (later_batches :=
                match !later_batches with [] -> [] | _ :: tl -> tl);
             let fresh = fresh_outcomes ~table ~dist batch in
             if Array.length fresh = 0 then begin
               if not (check_settled_batch ~eps ~table ~f ~dist batch) then
                 failure :=
                   Some
                     (Numerics.Robust.fail Numerics.Robust.Designer
                        (Numerics.Robust.Invalid_input
                           (Printf.sprintf
                              "batch %d has no fresh outcomes but is biased" bi)))
             end
             else begin
               let q, a_ub, b_ub, a_eq, b_eq =
                 batch_system ~table ~f ~dist ~batch ~laters ~fresh
               in
               let c = Array.make (Array.length fresh) 0. in
               match
                 Numerics.Qp.minimize_r ~eps ~seed:(seed + bi) ~attempts ~q ~c
                   ~a_ub ~b_ub ~a_eq ~b_eq ()
               with
               | Ok { Numerics.Qp.x; retries; _ } ->
                   commit fresh x;
                   if retries = 0 then incr qp_clean
                   else
                     degraded :=
                       { batch = bi; rung = "qp"; retries; cause = None }
                       :: !degraded
               | Error qp_failure -> (
                   (* Rung 2: any feasible nonnegative point of the same
                      constraint system (LP, zero objective) — unbiased,
                      just not variance-optimal. *)
                   Numerics.Robust.note_degradation ~site:"designer.batch"
                     ~fallback:"lp-feasible" qp_failure;
                   let lp =
                     match
                       (* Fallback rung: the LP itself must run clean. *)
                       Numerics.Faultify.suppress (fun () ->
                           Numerics.Simplex.maximize_r ~c ~a_ub ~b_ub ~a_eq
                             ~b_eq ())
                     with
                     | Ok (Numerics.Simplex.Optimal (_, x))
                       when Result.is_ok
                              (Numerics.Robust.check_vec
                                 Numerics.Robust.Designer ~what:"lp point" x) ->
                         Some x
                     | _ -> None
                   in
                   match lp with
                   | Some x ->
                       commit fresh x;
                       degraded :=
                         {
                           batch = bi;
                           rung = "lp-feasible";
                           retries = attempts;
                           cause = Some qp_failure;
                         }
                         :: !degraded
                   | None -> (
                       (* Rung 3: HT-share assignment; always finite and
                          nonnegative, possibly biased. *)
                       Numerics.Robust.note_degradation ~site:"designer.batch"
                         ~fallback:"ht-share" qp_failure;
                       match ht_share_assign ~eps ~table ~f ~dist ~batch ~fresh with
                       | Ok assigned ->
                           Hashtbl.iter (Hashtbl.replace table) assigned;
                           degraded :=
                             {
                               batch = bi;
                               rung = "ht-share";
                               retries = attempts;
                               cause = Some qp_failure;
                             }
                             :: !degraded
                       | Error fl -> failure := Some fl))
             end;
             record_batch bi t0)
       batches
   with Numerics.Robust.Solver_error fl -> failure := Some fl);
  match !failure with
  | Some fl -> Error fl
  | None ->
      Ok
        {
          estimator = table;
          provenance =
            {
              batches = List.length batches;
              qp_clean = !qp_clean;
              degraded = List.rev !degraded;
            };
        }

(* Canonical problem fingerprint: MD5 over the data domain, the target
   values, and each vector's outcome distribution (probability + a
   structural hash of the outcome key). Two problems with the same
   fingerprint derive the same estimator table, so the fingerprint is a
   sound memo key for the solvers below. *)
let structural_fingerprint problem =
  let buf = Buffer.create 1024 in
  List.iter
    (fun v ->
      Array.iter (fun x -> Buffer.add_string buf (Printf.sprintf "%h," x)) v;
      Buffer.add_string buf (Printf.sprintf "=%h;" (problem.f v));
      List.iter
        (fun (p, k) ->
          Buffer.add_string buf (Printf.sprintf "%h:%d," p (Hashtbl.hash k)))
        (problem.dist v);
      Buffer.add_char buf '\n')
    problem.data;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* The "k:" prefix keeps the cheap-key namespace disjoint from the
   structural one (an MD5 hex digest is pure hex, never "k:..."), so a
   keyed and an unkeyed problem can share one cache without colliding.
   The structural walk is timed into the [memo.fingerprint] histogram —
   the cost the precomputed key exists to avoid stays visible. *)
let fingerprint problem =
  match problem.key with
  | Some k -> "k:" ^ k
  | None ->
      if Numerics.Obs.enabled () then begin
        Numerics.Obs.count "memo.fingerprint.structural";
        let t0 = Numerics.Obs.now_ns () in
        let d = structural_fingerprint problem in
        Numerics.Obs.observe_ns "memo.fingerprint"
          (Int64.sub (Numerics.Obs.now_ns ()) t0);
        d
      end
      else structural_fingerprint problem

type 'k cache = (string, ('k estimator, string) result) Numerics.Memo.t

let cache ?(capacity = 64) ~name () : 'k cache =
  Numerics.Memo.create ~capacity ~name ~hash:String.hash ~equal:String.equal ()

let solve_order_cached ?(eps = 1e-9) ~cache:(c : 'k cache) problem =
  let key = Printf.sprintf "order:%h:%s" eps (fingerprint problem) in
  Numerics.Memo.find_or_add c key (fun () -> solve_order ~eps problem)

let expectation problem est v =
  List.fold_left
    (fun acc (p, k) ->
      if p > 0. then
        match Hashtbl.find_opt est k with
        | Some e -> acc +. (p *. e)
        | None -> acc
      else acc)
    0. (problem.dist v)

let variance problem est v =
  let mean = expectation problem est v in
  let second =
    List.fold_left
      (fun acc (p, k) ->
        if p > 0. then
          match Hashtbl.find_opt est k with
          | Some e -> acc +. (p *. e *. e)
          | None -> acc
        else acc)
      0. (problem.dist v)
  in
  second -. (mean *. mean)

let is_monotone ?(eps = 1e-9) problem est =
  (* Index the data vectors consistent with each reachable outcome. *)
  let consistent : ('k, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun vi v ->
      List.iter
        (fun (p, k) ->
          if p > 0. then
            Hashtbl.replace consistent k
              (vi :: Option.value ~default:[] (Hashtbl.find_opt consistent k)))
        (problem.dist v))
    problem.data;
  let outcomes =
    Hashtbl.fold
      (fun k vs acc -> (k, List.sort_uniq Int.compare vs) :: acc)
      consistent []
  in
  let subset a b =
    List.for_all (fun x -> List.mem x b) a
  in
  List.for_all
    (fun (o, vs) ->
      match Hashtbl.find_opt est o with
      | None -> true
      | Some e_o ->
          List.for_all
            (fun (o', vs') ->
              if subset vs vs' then
                match Hashtbl.find_opt est o' with
                | Some e_o' -> e_o >= e_o' -. eps
                | None -> true
              else true)
            outcomes)
    outcomes

let is_unbiased ?(eps = 1e-7) problem est =
  List.for_all
    (fun v ->
      let fv = problem.f v in
      abs_float (expectation problem est v -. fv) <= eps *. (1. +. abs_float fv))
    problem.data

module Problems = struct
  (* Canonical cheap-key rendering: scheme, caller-asserted function
     name, then every numeric parameter in %h (exact bit image). The key
     is sound only if [fname] really identifies [f] — that contract is
     the caller's. *)
  let floats_key a =
    String.concat "," (List.map (Printf.sprintf "%h") (Array.to_list a))

  let key_of scheme fname parts =
    Option.map (fun n -> String.concat ":" (scheme :: n :: parts)) fname

  let vectors_of_grid grid r =
    let cells = Array.of_list grid in
    let m = Array.length cells in
    let total = int_of_float (float_of_int m ** float_of_int r) in
    List.init total (fun idx ->
        let v = Array.make r 0. in
        let x = ref idx in
        for i = 0 to r - 1 do
          v.(i) <- cells.(!x mod m);
          x := !x / m
        done;
        v)

  let oblivious ?fname ~probs ~grid ~f () =
    let r = Array.length probs in
    {
      data = vectors_of_grid grid r;
      f;
      dist =
        (fun v ->
          Sampling.Outcome.Oblivious.enumerate ~probs v
          |> List.map (fun (p, (o : Sampling.Outcome.Oblivious.t)) -> (p, o.values)));
      key =
        key_of "oblivious" fname
          [ floats_key probs; floats_key (Array.of_list grid) ];
    }

  let binary_domain r =
    List.init (1 lsl r) (fun bits ->
        Array.init r (fun i -> if bits land (1 lsl i) <> 0 then 1. else 0.))

  let to_bits v = Array.map (fun x -> if x > 0.5 then 1 else 0) v

  let binary_known_seeds ?fname ~probs ~f () =
    let r = Array.length probs in
    {
      data = binary_domain r;
      f;
      dist =
        (fun v ->
          Sampling.Outcome.Binary.enumerate ~probs (to_bits v)
          |> List.map (fun (p, (o : Sampling.Outcome.Binary.t)) ->
                 (p, (o.below, o.sampled))));
      key = key_of "binary-known" fname [ floats_key probs ];
    }

  let binary_unknown_seeds ?fname ~probs ~f () =
    let r = Array.length probs in
    {
      data = binary_domain r;
      f;
      dist =
        (fun v ->
          (* Outcome = set of sampled entries; only entries with v_i = 1
             can be sampled, each independently with probability p_i. *)
          let bits = to_bits v in
          let rec go i =
            if i = r then [ (1., []) ]
            else
              let rest = go (i + 1) in
              if bits.(i) = 1 then
                List.concat_map
                  (fun (p, mask) ->
                    [ (p *. probs.(i), true :: mask); (p *. (1. -. probs.(i)), false :: mask) ])
                  rest
              else List.map (fun (p, mask) -> (p, false :: mask)) rest
          in
          go 0 |> List.map (fun (p, mask) -> (p, Array.of_list mask)));
      key = key_of "binary-unknown" fname [ floats_key probs ];
    }

  let pps_discretized ?fname ~taus ~grid ~buckets ~f () =
    let r = Array.length taus in
    if buckets <= 0 then invalid_arg "pps_discretized: buckets must be positive";
    let centers =
      Array.init buckets (fun j ->
          (float_of_int j +. 0.5) /. float_of_int buckets)
    in
    let prob_each = 1. /. (float_of_int buckets ** float_of_int r) in
    let rec bucket_vectors i =
      if i = r then [ [] ]
      else
        let rest = bucket_vectors (i + 1) in
        List.concat_map
          (fun j -> List.map (fun tl -> j :: tl) rest)
          (List.init buckets Fun.id)
    in
    let all_buckets = List.map Array.of_list (bucket_vectors 0) in
    {
      data = vectors_of_grid grid r;
      f;
      dist =
        (fun v ->
          List.map
            (fun b ->
              let observed =
                Array.init r (fun i ->
                    if v.(i) >= centers.(b.(i)) *. taus.(i) then Some v.(i)
                    else None)
              in
              (prob_each, (observed, b)))
            all_buckets);
      key =
        key_of "pps-discretized" fname
          [
            floats_key taus;
            floats_key (Array.of_list grid);
            string_of_int buckets;
          ];
    }

  (* Reordering the data domain changes what Algorithm 1 derives, so a
     reorder must change the fingerprint: with [?tag] the tag is folded
     into the cheap key; without it the key is dropped and the problem
     falls back to the structural (order-sensitive) digest. *)
  let sort_data ?tag cmp problem =
    let key =
      match (tag, problem.key) with
      | Some t, Some k -> Some (k ^ "#" ^ t)
      | _ -> None
    in
    { problem with data = List.stable_sort cmp problem.data; key }

  let order_difference_multiset a b =
    let is_zero v = Array.for_all (fun x -> x = 0.) v in
    match (is_zero a, is_zero b) with
    | true, true -> 0
    | true, false -> -1
    | false, true -> 1
    | false, false ->
        let key v =
          let m = Array.fold_left Float.max neg_infinity v in
          List.sort Float.compare (Array.to_list (Array.map (fun x -> m -. x) v))
        in
        compare (key a) (key b)

  let count_below_max v =
    let m = Array.fold_left Float.max neg_infinity v in
    Array.fold_left (fun acc x -> if x < m then acc + 1 else acc) 0 v

  let is_zero v = Array.for_all (fun x -> x = 0.) v

  let order_l a b =
    match (is_zero a, is_zero b) with
    | true, true -> 0
    | true, false -> -1
    | false, true -> 1
    | false, false -> Int.compare (count_below_max a) (count_below_max b)

  let count_positive v =
    Array.fold_left (fun acc x -> if x > 0. then acc + 1 else acc) 0 v

  let order_u a b = Int.compare (count_positive a) (count_positive b)

  let batches_by level data =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun v ->
        let l = level v in
        Hashtbl.replace tbl l (v :: (Option.value ~default:[] (Hashtbl.find_opt tbl l))))
      data;
    Hashtbl.fold (fun l vs acc -> (l, List.rev vs) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map snd
end
