(** The estimator designer: generic implementations of the paper's
    Algorithm 1 (order-based estimator [f^(≺)], Section 3) and
    Algorithm 2 (ordered-partition estimator [f^(U)]) over finite
    problems.

    A {e problem} is a finite data domain, a target function [f], and for
    each data vector the (finite) distribution over outcome keys. The
    designer machine-derives the optimal estimator table, which lets the
    test suite check every closed form in the paper against an
    independently derived table, and lets users derive estimators for
    sampling schemes the paper does not tabulate.

    Outcome keys ['k] must be plain structural values (arrays/tuples of
    scalars): they are compared and hashed structurally. *)

type 'k problem = {
  data : float array list;
      (** the data domain, in ≺ order for {!solve_order} *)
  f : float array -> float;  (** the estimated function *)
  dist : float array -> (float * 'k) list;
      (** outcome distribution given the data vector; probabilities must
          sum to 1 (zero-probability entries are allowed and ignored) *)
  key : string option;
      (** precomputed fingerprint key, rendered once at construction by
          the {!Problems} constructors when given [?fname]; [None] makes
          {!fingerprint} fall back to the structural MD5 walk over the
          whole problem *)
}

type 'k estimator
(** A derived estimator: a finite map from outcome keys to estimate
    values. *)

val of_bindings : ('k * float) list -> 'k estimator
(** Build an estimator table from explicit bindings — e.g. to evaluate a
    witness produced by {!Existence.find} or a hand-written table with
    {!expectation}/{!variance}/{!is_monotone}. *)

val lookup : 'k estimator -> 'k -> float
(** Estimate on an outcome key. Raises [Not_found] for a key that was
    never reachable during derivation. *)

val bindings : 'k estimator -> ('k * float) list
val min_estimate : 'k estimator -> float

val solve_order : ?eps:float -> 'k problem -> ('k estimator, string) result
(** Algorithm 1: process data vectors in list order; on each vector set
    the (single) estimate value on all still-unassigned outcomes in its
    support so that the estimator is unbiased for it. Returns [Error]
    when no unbiased estimator consistent with the order exists (the
    "failure" branch of the algorithm). The result may assume negative
    values — check {!min_estimate} (the paper's [f^(≺)] need not be
    nonnegative; see [max^(U)]'s derivation). *)

val solve_partition :
  ?eps:float ->
  batches:float array list list ->
  f:(float array -> float) ->
  dist:(float array -> (float * 'k) list) ->
  unit ->
  ('k estimator, string) result
(** Algorithm 2: process the given ordered partition of the data domain;
    for each batch, jointly set the estimates on the batch's unassigned
    outcomes by minimizing the sum of the batch's conditional variances
    (a diagonal QP) subject to unbiasedness for every vector of the
    batch, nonnegativity-preservation (constraint 9) for every vector of
    later batches, and nonnegativity of the estimates themselves. With a
    symmetric batch this yields the symmetric locally-optimal estimator
    (e.g. [max^(U)]); with singleton batches it reproduces the
    nonnegativity-forced order-based estimator [f^(+≺)] (e.g.
    [max^(Uas)] under the corresponding order). *)

(** {1 Hardened derivation}

    {!solve_partition} aborts a sweep on the first degenerate batch.
    {!solve_partition_robust} instead walks a fallback ladder per batch —
    QP with deterministic jittered retries, then any LP-feasible
    (unbiased but suboptimal) point, then a clamped HT-share assignment
    (finite and nonnegative, possibly biased) — and records what
    degraded, so callers can finish the sweep and report provenance. *)

type batch_outcome = {
  batch : int;  (** 0-based batch index *)
  rung : string;  (** which ladder rung answered: ["qp"], ["lp-feasible"], ["ht-share"] *)
  retries : int;  (** jittered QP restarts consumed *)
  cause : Numerics.Robust.failure option;
      (** the QP failure that forced a lower rung ([None] for ["qp"]) *)
}

type provenance = {
  batches : int;  (** total batches walked *)
  qp_clean : int;  (** batches answered by the QP on the first attempt *)
  degraded : batch_outcome list;  (** everything that did not, in order *)
}

type 'k derived = { estimator : 'k estimator; provenance : provenance }

val pp_batch_outcome : Format.formatter -> batch_outcome -> unit

val solve_partition_robust :
  ?eps:float ->
  ?seed:int ->
  ?attempts:int ->
  batches:float array list list ->
  f:(float array -> float) ->
  dist:(float array -> (float * 'k) list) ->
  unit ->
  ('k derived, Numerics.Robust.failure) result
(** Hardened {!solve_partition}. Per batch: the active-set QP (with up to
    [attempts] seeded jittered restarts, seed [seed + batch index]); on
    failure an LP-feasible point of the same constraint system; on
    failure a clamped HT-share assignment. Each fallback is recorded in
    the returned {!provenance} and via {!Numerics.Robust.note_degradation}
    (site ["designer.batch"]) — so in [Strict] mode the first degradation
    surfaces as [Error] instead. [Error] is reserved for genuinely
    unrecoverable batches (e.g. biased with no fresh outcomes, or a
    non-finite target function). *)

(** {1 Derivation caching}

    Deriving a table costs a QP/elimination sweep over the whole data
    domain; estimator sweeps (dominance grids, repeated panels) re-derive
    identical tables. {!fingerprint} canonicalizes a problem into a memo
    key, and {!solve_order_cached} memoizes Algorithm 1 under it. The
    cache is monomorphic in the outcome key type, so the {e caller} owns
    it (one per key type, typically a top-level value). *)

val fingerprint : 'k problem -> string
(** Memo key of a problem. With a precomputed [key] (constructors given
    [?fname]) this is ["k:" ^ key] — one small concatenation, strictly
    cheaper than any table derivation. Without one it is the canonical
    structural digest: MD5 over the data domain, its target values, and
    every vector's outcome distribution (probability plus a structural
    hash of the outcome key); that walk re-enumerates every outcome
    distribution, so it can cost as much as the derivation it guards —
    its latency is recorded in the [memo.fingerprint] histogram (and
    counted by [memo.fingerprint.structural]) whenever {!Numerics.Obs}
    is enabled. Problems with equal fingerprints derive equal tables;
    for cheap keys that soundness rests on the caller's [?fname]
    honestly identifying the target function. *)

type 'k cache
(** A bounded {!Numerics.Memo} of derived tables, keyed by fingerprint. *)

val cache : ?capacity:int -> name:string -> unit -> 'k cache
(** Fresh cache registered under [name] (default capacity 64). *)

val solve_order_cached :
  ?eps:float -> cache:'k cache -> 'k problem -> ('k estimator, string) result
(** {!solve_order} memoized on [(eps, fingerprint problem)]. The returned
    table is shared — treat it as read-only. *)

val expectation : 'k problem -> 'k estimator -> float array -> float
(** E[estimator | data v]. *)

val variance : 'k problem -> 'k estimator -> float array -> float

val is_unbiased : ?eps:float -> 'k problem -> 'k estimator -> bool
(** Does E[estimator|v] = f(v) hold on every vector of the domain? *)

val is_monotone : ?eps:float -> 'k problem -> 'k estimator -> bool
(** Lemma 3.2's monotonicity check, exact on finite problems: for every
    pair of reachable outcomes with [V*(o) ⊆ V*(o')] (o is more
    informative), the estimate on [o] must be at least the estimate on
    [o']. Nonnegativity is implied when the empty-information outcome is
    reachable. *)

(** Ready-made finite problems for the paper's sampling schemes.

    Every constructor takes [?fname]: a caller-asserted name for [f].
    When given, the problem carries a precomputed fingerprint key
    (scheme, [fname], and the numeric parameters rendered in [%h]), so
    {!fingerprint} is a cheap concatenation instead of the structural
    MD5 walk. The key is sound only if [fname] uniquely identifies the
    target function among uses of the same cache. *)
module Problems : sig
  val oblivious :
    ?fname:string ->
    probs:float array ->
    grid:float list ->
    f:(float array -> float) ->
    unit ->
    float option array problem
  (** Weight-oblivious Poisson over the data domain [grid^r] (r = length
      of [probs]). Outcome key: the vector of sampled values. Data is in
      raw enumeration order — reorder with {!sort_data} before
      {!solve_order}. *)

  val binary_known_seeds :
    ?fname:string ->
    probs:float array ->
    f:(float array -> float) ->
    unit ->
    (bool array * bool array) problem
  (** Weighted sampling of binary data with known seeds (Section 5.1):
      outcome key = (below, sampled) indicator pair. *)

  val binary_unknown_seeds :
    ?fname:string ->
    probs:float array ->
    f:(float array -> float) ->
    unit ->
    bool array problem
  (** Weighted sampling of binary data, seeds {e not} available: outcome
      key = the set of sampled entries only (Section 6's model). *)

  val pps_discretized :
    ?fname:string ->
    taus:float array ->
    grid:float list ->
    buckets:int ->
    f:(float array -> float) ->
    unit ->
    (float option array * int array) problem
  (** Weighted PPS sampling with known seeds, seeds discretized into
      [buckets] equal cells (bucket centers). Outcome key =
      (observed values, bucket indices) — exactly what a known-seeds
      estimator sees. The derived estimator solves the {e discretized}
      problem exactly — a numerical companion to the continuous closed
      forms of Section 5, useful for schemes with no derived closed
      form. Data is in raw enumeration order. *)

  val sort_data :
    ?tag:string ->
    (float array -> float array -> int) ->
    'k problem ->
    'k problem
  (** Stable-sort the data domain by the given ≺ comparator. The data
      order is part of what {!solve_order} derives, so the precomputed
      key must change with it: [?tag] (a caller-asserted name for the
      comparator) is appended to the cheap key; without it the key is
      dropped and the sorted problem falls back to the structural
      fingerprint. *)

  val order_difference_multiset : float array -> float array -> int
  (** The Section 5.2 order: 0 first, then lexicographically by the
      sorted multiset of differences [{max(v) − v_i}]. *)

  val order_l : float array -> float array -> int
  (** The [max^(L)] order: 0 first, then by the number of entries
      strictly below the maximum. *)

  val order_u : float array -> float array -> int
  (** The [max^(U)] order: by the number of positive entries. *)

  val batches_by :
    (float array -> int) -> float array list -> float array list list
  (** Group data vectors into batches by an integer level, ascending —
      e.g. [batches_by (fun v -> count_positive v)] gives the U
      partition. *)
end
