module O = Sampling.Outcome.Oblivious

type outcome = O.t

let determining_vector_l (o : outcome) =
  let vals = O.sampled_values o in
  let m = List.fold_left Float.max 0. vals in
  Array.map (function Some v -> v | None -> m) o.values

let check_r2 (o : outcome) =
  if O.r o <> 2 then invalid_arg "Max_oblivious: expected r = 2 outcome"

(* Eq. (12): for determining vector with larger entry [hi] (sampled with
   probability [phi]) and smaller entry [lo],
     est = hi/(phi·q) − lo·(1−phi)/(phi·q),  q = p1 + p2 − p1·p2. *)
let l_r2 (o : outcome) =
  check_r2 o;
  match (o.values.(0), o.values.(1)) with
  | None, None -> 0.
  | _ ->
      let phi = determining_vector_l o in
      let p1 = o.probs.(0) and p2 = o.probs.(1) in
      let q = p1 +. p2 -. (p1 *. p2) in
      if phi.(0) >= phi.(1) then
        (phi.(0) /. (p1 *. q)) -. (phi.(1) *. (1. -. p1) /. (p1 *. q))
      else (phi.(1) /. (p2 *. q)) -. (phi.(0) *. (1. -. p2) /. (p2 *. q))

module Coeffs = struct
  type t = { r : int; p : float; alpha : float array; prefix : float array }

  let r t = t.r
  let p t = t.p
  let alpha t = t.alpha
  let prefix_sums t = t.prefix

  (* Theorem 4.2 / Algorithm 3 COEFF. Arrays are 1-indexed internally
     (slot 0 unused) to mirror the paper. *)
  let derive ~r ~p =
    if r < 1 then invalid_arg "Coeffs.compute: r must be >= 1";
    if p <= 0. || p > 1. then invalid_arg "Coeffs.compute: p must be in (0,1]";
    let a = Array.make (r + 1) 0. in
    let qp = 1. -. p in
    let one_minus_q_pow n = 1. -. Numerics.Special.pow_int qp n in
    a.(r) <- 1. /. one_minus_q_pow r;
    for k = 0 to r - 2 do
      let t = ref 0. in
      for l = 1 to k do
        t :=
          !t
          +. Numerics.Special.binomial k l
             *. Numerics.Special.pow_int (qp /. p) l
             *. (a.(r - k + l) -. (one_minus_q_pow (r - k - 1) *. a.(r - k + l - 1)))
      done;
      a.(r - k - 1) <- (a.(r - k) +. !t) /. one_minus_q_pow (r - k - 1)
    done;
    let alpha =
      Array.init r (fun i -> if i = 0 then a.(1) else a.(i + 1) -. a.(i))
    in
    { r; p; alpha; prefix = Array.init r (fun i -> a.(i + 1)) }

  (* (r, p) → coefficient table, shared across sweeps and domains. *)
  let cache : (int * float, t) Numerics.Memo.t =
    Numerics.Memo.create ~capacity:64 ~name:"max_oblivious.coeffs"
      ~hash:Hashtbl.hash
      ~equal:(fun (r1, p1) (r2, p2) -> r1 = r2 && Float.equal p1 p2)
      ()

  let compute ~r ~p =
    if r < 1 then invalid_arg "Coeffs.compute: r must be >= 1";
    if p <= 0. || p > 1. then invalid_arg "Coeffs.compute: p must be in (0,1]";
    Numerics.Memo.find_or_add cache (r, p) (fun () -> derive ~r ~p)

  let lemma42_holds t =
    let ht_coeff = 1. /. Numerics.Special.pow_int t.p t.r in
    t.alpha.(0) <= ht_coeff +. 1e-9
    && Array.for_all (fun a -> a < 1e-12) (Array.sub t.alpha 1 (t.r - 1))
end

let l_uniform (c : Coeffs.t) (o : outcome) =
  let r = O.r o in
  if r <> Coeffs.r c then invalid_arg "Max_oblivious.l_uniform: r mismatch";
  Array.iter
    (fun p ->
      if not (Numerics.Special.float_equal p (Coeffs.p c)) then
        invalid_arg "Max_oblivious.l_uniform: non-uniform probabilities")
    o.probs;
  let z = O.sampled_values o in
  if z = [] then 0.
  else begin
    (* Sorted determining vector: |S| sampled values in non-increasing
       order in the last slots, the maximum replicated in front. *)
    let z = List.sort (fun a b -> Float.compare b a) z in
    let s = List.length z in
    let u = Array.make r (List.hd z) in
    List.iteri (fun i v -> u.(i + r - s) <- v) z;
    let alpha = Coeffs.alpha c in
    let acc = ref 0. in
    for i = 0 to r - 1 do
      acc := !acc +. (alpha.(i) *. u.(i))
    done;
    !acc
  end

(* r = 3, arbitrary probabilities: Theorem 4.1's prefix sums instantiated
   from eqs. (16) and (18). The estimate on an outcome is Σ α_i(q)·φ_{π_i}
   with φ the determining vector sorted non-increasingly, π its sorting
   permutation, and q = π(p). *)
let l_r3 (o : outcome) =
  if O.r o <> 3 then invalid_arg "Max_oblivious.l_r3: r = 3 only";
  if O.sampled_values o = [] then 0.
  else begin
    let phi = determining_vector_l o in
    let p = o.probs in
    (* Sorting permutation of φ (stable: ties keep index order — the
       estimate is invariant to the choice by Theorem 4.1's symmetry). *)
    let idx = [| 0; 1; 2 |] in
    Array.sort
      (fun a b ->
        match Float.compare phi.(b) phi.(a) with 0 -> Int.compare a b | c -> c)
      idx;
    let q = Array.map (fun i -> p.(i)) idx in
    let a3 =
      1. /. (1. -. ((1. -. q.(0)) *. (1. -. q.(1)) *. (1. -. q.(2))))
    in
    let a2 = a3 /. (1. -. ((1. -. q.(0)) *. (1. -. q.(1)))) in
    (* A₂ with the last two probabilities exchanged. *)
    let a2' = a3 /. (1. -. ((1. -. q.(0)) *. (1. -. q.(2)))) in
    let a1 = (a2 +. a2' -. a3) /. q.(0) in
    let alpha = [| a1; a2 -. a1; a3 -. a2 |] in
    let acc = ref 0. in
    for i = 0 to 2 do
      acc := !acc +. (alpha.(i) *. phi.(idx.(i)))
    done;
    !acc
  end

let l (o : outcome) =
  if O.r o = 2 then l_r2 o
  else if O.r o = 3 then l_r3 o
  else begin
    let p = o.probs.(0) in
    Array.iter
      (fun pi ->
        if not (Numerics.Special.float_equal pi p) then
          invalid_arg "Max_oblivious.l: r > 3 requires uniform probabilities")
      o.probs;
    l_uniform (Coeffs.compute ~r:(O.r o) ~p) o
  end

module General = struct
  type t = {
    probs : float array;
    r : int;
    (* Memoized prefix sums, keyed by the prefix as a bitmask of entry
       indices. *)
    table : (int, float) Hashtbl.t;
  }

  let r t = t.r

  let bits_of_mask r mask = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init r Fun.id)

  (* A for the prefix [mask]; solves equation (17) with memoization.
     The prefix must be nonempty. *)
  let rec a t mask =
    match Hashtbl.find_opt t.table mask with
    | Some v -> v
    | None ->
        let v = compute t mask in
        Hashtbl.replace t.table mask v;
        v

  and compute t mask =
    let full = (1 lsl t.r) - 1 in
    if mask = full then begin
      (* Eq. (16): A_r = 1/(1 − Π(1−p_i)). *)
      let prod =
        Array.fold_left (fun acc p -> acc *. (1. -. p)) 1. t.probs
      in
      1. /. (1. -. prod)
    end
    else begin
      (* S = prefix entries; t0 = one entry of the complement; K = the
         rest of the complement. Equation (17):
           0 = Σ_{U ⊆ K} w_U · (A(S∪U∪{t0}) − (1 − q_S)·A(S∪U))
         where U is the unsampled pattern of K,
         w_U = Π_{i∈U}(1−p_i)·Π_{i∈K∖U} p_i, and
         q_S = Π_{i∈S}(1−p_i). The U = ∅ term's A(S) is the unknown. *)
      let s_bits = bits_of_mask t.r mask in
      if s_bits = [] then invalid_arg "General: empty prefix";
      let comp = bits_of_mask t.r (lnot mask land ((1 lsl t.r) - 1)) in
      let t0, ks = (List.hd comp, List.tl comp) in
      let q_s =
        List.fold_left (fun acc i -> acc *. (1. -. t.probs.(i))) 1. s_bits
      in
      let one_minus_qs = 1. -. q_s in
      let k = List.length ks in
      let karr = Array.of_list ks in
      let acc = ref 0. in
      let w_empty = ref 1. in
      Array.iter (fun i -> w_empty := !w_empty *. t.probs.(i)) karr;
      for upat = 0 to (1 lsl k) - 1 do
        (* U = entries of K flagged in upat (unsampled). *)
        let w = ref 1. in
        let u_mask = ref 0 in
        for j = 0 to k - 1 do
          if upat land (1 lsl j) <> 0 then begin
            w := !w *. (1. -. t.probs.(karr.(j)));
            u_mask := !u_mask lor (1 lsl karr.(j))
          end
          else w := !w *. t.probs.(karr.(j))
        done;
        let up = a t (mask lor !u_mask lor (1 lsl t0)) in
        acc := !acc +. (!w *. up);
        if upat <> 0 then begin
          let down = a t (mask lor !u_mask) in
          acc := !acc -. (!w *. one_minus_qs *. down)
        end
      done;
      (* 0 = acc − w_∅·(1−q_S)·A(S)  ⇒  A(S) = acc/(w_∅(1−q_S)). *)
      !acc /. (!w_empty *. one_minus_qs)
    end

  (* probs → fully-forced prefix-sum table. Entries are 2^r floats, so
     the capacity stays small; the table is read-only after [create],
     which makes sharing across domains safe. *)
  let cache : (float array, t) Numerics.Memo.t =
    Numerics.Memo.create ~capacity:32 ~name:"max_oblivious.general"
      ~hash:Hashtbl.hash
      ~equal:(fun a b ->
        Array.length a = Array.length b && Array.for_all2 Float.equal a b)
      ()

  let create ~probs =
    Array.iter
      (fun p ->
        if p <= 0. || p > 1. then
          invalid_arg "General.create: probabilities must be in (0,1]")
      probs;
    Numerics.Memo.find_or_add cache (Array.copy probs) @@ fun () ->
    let t =
      { probs = Array.copy probs; r = Array.length probs; table = Hashtbl.create 64 }
    in
    (* Force the full table now so estimates are pure lookups. *)
    for mask = 1 to (1 lsl t.r) - 1 do
      ignore (a t mask)
    done;
    t

  let prefix_sum t indices =
    let mask =
      List.fold_left
        (fun acc i ->
          if i < 0 || i >= t.r then invalid_arg "General.prefix_sum: index";
          if acc land (1 lsl i) <> 0 then
            invalid_arg "General.prefix_sum: duplicate index";
          acc lor (1 lsl i))
        0 indices
    in
    if mask = 0 then invalid_arg "General.prefix_sum: empty prefix";
    a t mask

  let estimate t (o : outcome) =
    if O.r o <> t.r then invalid_arg "General.estimate: r mismatch";
    Array.iteri
      (fun i p ->
        if not (Numerics.Special.float_equal p t.probs.(i)) then
          invalid_arg "General.estimate: probability mismatch")
      o.O.probs;
    if O.sampled_values o = [] then 0.
    else begin
      let phi = determining_vector_l o in
      let idx = Array.init t.r Fun.id in
      Array.sort
        (fun x y ->
          match Float.compare phi.(y) phi.(x) with 0 -> Int.compare x y | c -> c)
        idx;
      let acc = ref 0. in
      let mask = ref 0 in
      let prev = ref 0. in
      Array.iter
        (fun i ->
          mask := !mask lor (1 lsl i);
          let ai = a t !mask in
          acc := !acc +. ((ai -. !prev) *. phi.(i));
          prev := ai)
        idx;
      !acc
    end
end

let u_r2 (o : outcome) =
  check_r2 o;
  let p1 = o.probs.(0) and p2 = o.probs.(1) in
  let c = 1. +. Float.max 0. (1. -. p1 -. p2) in
  match (o.values.(0), o.values.(1)) with
  | None, None -> 0.
  | Some v1, None -> v1 /. (p1 *. c)
  | None, Some v2 -> v2 /. (p2 *. c)
  | Some v1, Some v2 ->
      (Float.max v1 v2 -. (((v1 *. (1. -. p2)) +. (v2 *. (1. -. p1))) /. c))
      /. (p1 *. p2)

let u_asym_r2 (o : outcome) =
  check_r2 o;
  let p1 = o.probs.(0) and p2 = o.probs.(1) in
  let d = Float.max (1. -. p1) p2 in
  match (o.values.(0), o.values.(1)) with
  | None, None -> 0.
  | Some v1, None -> v1 /. p1
  | None, Some v2 -> v2 /. d
  | Some v1, Some v2 ->
      (Float.max v1 v2 -. (p2 *. (1. -. p1) /. d *. v2) -. ((1. -. p2) *. v1))
      /. (p1 *. p2)

let var_of est ~probs ~v = (Exact.oblivious ~probs ~v est).Exact.var
let var_l_r2 ~probs ~v = var_of l_r2 ~probs ~v
let var_u_r2 ~probs ~v = var_of u_r2 ~probs ~v
let var_ht_r2 ~probs ~v = var_of Ht.max_oblivious ~probs ~v
