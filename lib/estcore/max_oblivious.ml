module O = Sampling.Outcome.Oblivious

type outcome = O.t

let determining_vector_l (o : outcome) =
  let vals = O.sampled_values o in
  let m = List.fold_left Float.max 0. vals in
  Array.map (function Some v -> v | None -> m) o.values

let check_r2 (o : outcome) =
  if O.r o <> 2 then invalid_arg "Max_oblivious: expected r = 2 outcome"

(* Eq. (12): for determining vector with larger entry [hi] (sampled with
   probability [phi]) and smaller entry [lo],
     est = hi/(phi·q) − lo·(1−phi)/(phi·q),  q = p1 + p2 − p1·p2. *)
let l_r2 (o : outcome) =
  check_r2 o;
  match (o.values.(0), o.values.(1)) with
  | None, None -> 0.
  | _ ->
      let phi = determining_vector_l o in
      let p1 = o.probs.(0) and p2 = o.probs.(1) in
      let q = p1 +. p2 -. (p1 *. p2) in
      if phi.(0) >= phi.(1) then
        (phi.(0) /. (p1 *. q)) -. (phi.(1) *. (1. -. p1) /. (p1 *. q))
      else (phi.(1) /. (p2 *. q)) -. (phi.(0) *. (1. -. p2) /. (p2 *. q))

module Coeffs = struct
  type t = {
    r : int;
    p : float;
    alpha : float array;
    prefix : float array;
    (* [alpha] flattened into an unboxed float array: the flat evaluator
       reads coefficients without pointer-chasing boxed floats. Same
       values as [alpha], element for element. *)
    alpha_fa : floatarray;
  }

  let r t = t.r
  let p t = t.p
  let alpha t = t.alpha
  let prefix_sums t = t.prefix

  (* Theorem 4.2 / Algorithm 3 COEFF. Arrays are 1-indexed internally
     (slot 0 unused) to mirror the paper. *)
  let derive ~r ~p =
    if r < 1 then invalid_arg "Coeffs.compute: r must be >= 1";
    if p <= 0. || p > 1. then invalid_arg "Coeffs.compute: p must be in (0,1]";
    let a = Array.make (r + 1) 0. in
    let qp = 1. -. p in
    let one_minus_q_pow n = 1. -. Numerics.Special.pow_int qp n in
    a.(r) <- 1. /. one_minus_q_pow r;
    for k = 0 to r - 2 do
      let t = ref 0. in
      for l = 1 to k do
        t :=
          !t
          +. Numerics.Special.binomial k l
             *. Numerics.Special.pow_int (qp /. p) l
             *. (a.(r - k + l) -. (one_minus_q_pow (r - k - 1) *. a.(r - k + l - 1)))
      done;
      a.(r - k - 1) <- (a.(r - k) +. !t) /. one_minus_q_pow (r - k - 1)
    done;
    let alpha =
      Array.init r (fun i -> if i = 0 then a.(1) else a.(i + 1) -. a.(i))
    in
    {
      r;
      p;
      alpha;
      prefix = Array.init r (fun i -> a.(i + 1));
      alpha_fa = Float.Array.init r (fun i -> alpha.(i));
    }

  (* Monomorphic key hash: mixes [r] with the IEEE bit pattern of [p].
     Consistent with the [Float.equal] in [equal] on the valid domain
     p ∈ (0,1] (no −0/NaN, so bitwise-distinct ⇒ not [Float.equal]). *)
  let hash_key (r, p) =
    (r * 0x9e3779b1) lxor Int64.to_int (Int64.bits_of_float p)

  (* (r, p) → coefficient table, shared across sweeps and domains. *)
  let cache : (int * float, t) Numerics.Memo.t =
    Numerics.Memo.create ~capacity:64 ~name:"max_oblivious.coeffs"
      ~hash:hash_key
      ~equal:(fun (r1, p1) (r2, p2) -> r1 = r2 && Float.equal p1 p2)
      ()

  let compute ~r ~p =
    if r < 1 then invalid_arg "Coeffs.compute: r must be >= 1";
    if p <= 0. || p > 1. then invalid_arg "Coeffs.compute: p must be in (0,1]";
    Numerics.Memo.find_or_add cache (r, p) (fun () -> derive ~r ~p)

  let lemma42_holds t =
    let ht_coeff = 1. /. Numerics.Special.pow_int t.p t.r in
    t.alpha.(0) <= ht_coeff +. 1e-9
    && Array.for_all (fun a -> a < 1e-12) (Array.sub t.alpha 1 (t.r - 1))
end

let l_uniform (c : Coeffs.t) (o : outcome) =
  let r = O.r o in
  if r <> Coeffs.r c then invalid_arg "Max_oblivious.l_uniform: r mismatch";
  Array.iter
    (fun p ->
      if not (Numerics.Special.float_equal p (Coeffs.p c)) then
        invalid_arg "Max_oblivious.l_uniform: non-uniform probabilities")
    o.probs;
  let z = O.sampled_values o in
  if z = [] then 0.
  else begin
    (* Sorted determining vector: |S| sampled values in non-increasing
       order in the last slots, the maximum replicated in front. *)
    let z = List.sort (fun a b -> Float.compare b a) z in
    let s = List.length z in
    let u = Array.make r (List.hd z) in
    List.iteri (fun i v -> u.(i + r - s) <- v) z;
    let alpha = Coeffs.alpha c in
    let acc = ref 0. in
    for i = 0 to r - 1 do
      acc := !acc +. (alpha.(i) *. u.(i))
    done;
    !acc
  end

(* r = 3, arbitrary probabilities: Theorem 4.1's prefix sums instantiated
   from eqs. (16) and (18). The estimate on an outcome is Σ α_i(q)·φ_{π_i}
   with φ the determining vector sorted non-increasingly, π its sorting
   permutation, and q = π(p). *)
let l_r3 (o : outcome) =
  if O.r o <> 3 then invalid_arg "Max_oblivious.l_r3: r = 3 only";
  if O.sampled_values o = [] then 0.
  else begin
    let phi = determining_vector_l o in
    let p = o.probs in
    (* Sorting permutation of φ (stable: ties keep index order — the
       estimate is invariant to the choice by Theorem 4.1's symmetry). *)
    let idx = [| 0; 1; 2 |] in
    Array.sort
      (fun a b ->
        match Float.compare phi.(b) phi.(a) with 0 -> Int.compare a b | c -> c)
      idx;
    let q = Array.map (fun i -> p.(i)) idx in
    let a3 =
      1. /. (1. -. ((1. -. q.(0)) *. (1. -. q.(1)) *. (1. -. q.(2))))
    in
    let a2 = a3 /. (1. -. ((1. -. q.(0)) *. (1. -. q.(1)))) in
    (* A₂ with the last two probabilities exchanged. *)
    let a2' = a3 /. (1. -. ((1. -. q.(0)) *. (1. -. q.(2)))) in
    let a1 = (a2 +. a2' -. a3) /. q.(0) in
    let alpha = [| a1; a2 -. a1; a3 -. a2 |] in
    let acc = ref 0. in
    for i = 0 to 2 do
      acc := !acc +. (alpha.(i) *. phi.(idx.(i)))
    done;
    !acc
  end

let l (o : outcome) =
  if O.r o = 2 then l_r2 o
  else if O.r o = 3 then l_r3 o
  else begin
    let p = o.probs.(0) in
    Array.iter
      (fun pi ->
        if not (Numerics.Special.float_equal pi p) then
          invalid_arg "Max_oblivious.l: r > 3 requires uniform probabilities")
      o.probs;
    l_uniform (Coeffs.compute ~r:(O.r o) ~p) o
  end

module General = struct
  type t = {
    probs : float array;
    r : int;
    (* Memoized prefix sums, keyed by the prefix as a bitmask of entry
       indices. *)
    table : (int, float) Hashtbl.t;
    (* The fully-forced table flattened into an unboxed array indexed by
       prefix mask (slot 0 unused, 0.): the flat evaluator reads prefix
       sums with one bounds-free load instead of a hashtable probe.
       Filled by [create] after forcing; read-only afterwards. *)
    mutable a_flat : floatarray;
  }

  let r t = t.r

  let bits_of_mask r mask = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init r Fun.id)

  (* A for the prefix [mask]; solves equation (17) with memoization.
     The prefix must be nonempty. *)
  let rec a t mask =
    match Hashtbl.find_opt t.table mask with
    | Some v -> v
    | None ->
        let v = compute t mask in
        Hashtbl.replace t.table mask v;
        v

  and compute t mask =
    let full = (1 lsl t.r) - 1 in
    if mask = full then begin
      (* Eq. (16): A_r = 1/(1 − Π(1−p_i)). *)
      let prod =
        Array.fold_left (fun acc p -> acc *. (1. -. p)) 1. t.probs
      in
      1. /. (1. -. prod)
    end
    else begin
      (* S = prefix entries; t0 = one entry of the complement; K = the
         rest of the complement. Equation (17):
           0 = Σ_{U ⊆ K} w_U · (A(S∪U∪{t0}) − (1 − q_S)·A(S∪U))
         where U is the unsampled pattern of K,
         w_U = Π_{i∈U}(1−p_i)·Π_{i∈K∖U} p_i, and
         q_S = Π_{i∈S}(1−p_i). The U = ∅ term's A(S) is the unknown. *)
      let s_bits = bits_of_mask t.r mask in
      if s_bits = [] then invalid_arg "General: empty prefix";
      let comp = bits_of_mask t.r (lnot mask land ((1 lsl t.r) - 1)) in
      let t0, ks = (List.hd comp, List.tl comp) in
      let q_s =
        List.fold_left (fun acc i -> acc *. (1. -. t.probs.(i))) 1. s_bits
      in
      let one_minus_qs = 1. -. q_s in
      let k = List.length ks in
      let karr = Array.of_list ks in
      let acc = ref 0. in
      let w_empty = ref 1. in
      Array.iter (fun i -> w_empty := !w_empty *. t.probs.(i)) karr;
      for upat = 0 to (1 lsl k) - 1 do
        (* U = entries of K flagged in upat (unsampled). *)
        let w = ref 1. in
        let u_mask = ref 0 in
        for j = 0 to k - 1 do
          if upat land (1 lsl j) <> 0 then begin
            w := !w *. (1. -. t.probs.(karr.(j)));
            u_mask := !u_mask lor (1 lsl karr.(j))
          end
          else w := !w *. t.probs.(karr.(j))
        done;
        let up = a t (mask lor !u_mask lor (1 lsl t0)) in
        acc := !acc +. (!w *. up);
        if upat <> 0 then begin
          let down = a t (mask lor !u_mask) in
          acc := !acc -. (!w *. one_minus_qs *. down)
        end
      done;
      (* 0 = acc − w_∅·(1−q_S)·A(S)  ⇒  A(S) = acc/(w_∅(1−q_S)). *)
      !acc /. (!w_empty *. one_minus_qs)
    end

  (* Monomorphic probability-vector hash over IEEE bit patterns —
     consistent with the [Float.equal] element test below on the valid
     domain (0,1] (no −0/NaN). *)
  let hash_probs a =
    Array.fold_left
      (fun h p -> (h * 0x01000193) lxor Int64.to_int (Int64.bits_of_float p))
      0x811c9dc5 a

  (* probs → fully-forced prefix-sum table. Entries are 2^r floats, so
     the capacity stays small; the table is read-only after [create],
     which makes sharing across domains safe. *)
  let cache : (float array, t) Numerics.Memo.t =
    Numerics.Memo.create ~capacity:32 ~name:"max_oblivious.general"
      ~hash:hash_probs
      ~equal:(fun a b ->
        Array.length a = Array.length b && Array.for_all2 Float.equal a b)
      ()

  let create ~probs =
    Array.iter
      (fun p ->
        if p <= 0. || p > 1. then
          invalid_arg "General.create: probabilities must be in (0,1]")
      probs;
    Numerics.Memo.find_or_add cache (Array.copy probs) @@ fun () ->
    let t =
      {
        probs = Array.copy probs;
        r = Array.length probs;
        table = Hashtbl.create 64;
        a_flat = Float.Array.make 0 0.;
      }
    in
    (* Force the full table now so estimates are pure lookups. *)
    for mask = 1 to (1 lsl t.r) - 1 do
      ignore (a t mask)
    done;
    t.a_flat <-
      Float.Array.init (1 lsl t.r) (fun mask ->
          if mask = 0 then 0. else a t mask);
    t

  let prefix_sum t indices =
    let mask =
      List.fold_left
        (fun acc i ->
          if i < 0 || i >= t.r then invalid_arg "General.prefix_sum: index";
          if acc land (1 lsl i) <> 0 then
            invalid_arg "General.prefix_sum: duplicate index";
          acc lor (1 lsl i))
        0 indices
    in
    if mask = 0 then invalid_arg "General.prefix_sum: empty prefix";
    a t mask

  let estimate t (o : outcome) =
    if O.r o <> t.r then invalid_arg "General.estimate: r mismatch";
    Array.iteri
      (fun i p ->
        if not (Numerics.Special.float_equal p t.probs.(i)) then
          invalid_arg "General.estimate: probability mismatch")
      o.O.probs;
    if O.sampled_values o = [] then 0.
    else begin
      let phi = determining_vector_l o in
      let idx = Array.init t.r Fun.id in
      Array.sort
        (fun x y ->
          match Float.compare phi.(y) phi.(x) with 0 -> Int.compare x y | c -> c)
        idx;
      let acc = ref 0. in
      let mask = ref 0 in
      let prev = ref 0. in
      Array.iter
        (fun i ->
          mask := !mask lor (1 lsl i);
          let ai = a t !mask in
          acc := !acc +. ((ai -. !prev) *. phi.(i));
          prev := ai)
        idx;
      !acc
    end
end

(* Allocation-free per-key evaluation: inputs come from an [Evalbuf]
   (values in [vals], presence in [present]) and the result is stored
   into a caller slot, so a call passes only pointers and immediates —
   no boxed-float returns, no closures, no intermediate arrays. Each
   evaluator mirrors its reference implementation operation for
   operation (same comparator, same accumulation order), so results are
   bit-identical; the test suite enforces both properties. *)
module Flat = struct
  (* Descending insertion sort of [fa.(0..n-1)] under [Float.compare]'s
     total order — the same order as the reference's
     [List.sort (fun a b -> Float.compare b a)] (NaN sorts last). *)
  let sort_desc (fa : floatarray) n =
    for j = 1 to n - 1 do
      let v = Float.Array.unsafe_get fa j in
      let m = ref j in
      while
        !m > 0 && Float.compare (Float.Array.unsafe_get fa (!m - 1)) v < 0
      do
        Float.Array.unsafe_set fa !m (Float.Array.unsafe_get fa (!m - 1));
        decr m
      done;
      Float.Array.unsafe_set fa !m v
    done

  let l_uniform_into (c : Coeffs.t) (buf : Evalbuf.t) ~(dst : floatarray) ~di =
    let r = c.Coeffs.r in
    if r > Float.Array.length buf.Evalbuf.phi then
      invalid_arg "Flat.l_uniform_into: r exceeds buffer capacity";
    (* Compact the sampled values into [phi.(0..k-1)] in ascending entry
       order — the reference's [sampled_values] order. *)
    let k = ref 0 in
    for i = 0 to r - 1 do
      if Bytes.unsafe_get buf.Evalbuf.present i <> '\000' then begin
        Float.Array.unsafe_set buf.Evalbuf.phi !k
          (Float.Array.unsafe_get buf.Evalbuf.vals i);
        incr k
      end
    done;
    let k = !k in
    if k = 0 then Float.Array.unsafe_set dst di 0.
    else begin
      sort_desc buf.Evalbuf.phi k;
      (* Sorted determining vector: the max replicated in the first
         r − k slots, the sorted sampled values in the last k. *)
      let mx = Float.Array.unsafe_get buf.Evalbuf.phi 0 in
      let alpha = c.Coeffs.alpha_fa in
      let acc = ref 0. in
      for i = 0 to r - 1 do
        let u =
          if i < r - k then mx
          else Float.Array.unsafe_get buf.Evalbuf.phi (i - (r - k))
        in
        acc := !acc +. (Float.Array.unsafe_get alpha i *. u)
      done;
      Float.Array.unsafe_set dst di !acc
    end

  let general_into (g : General.t) (buf : Evalbuf.t) ~(dst : floatarray) ~di =
    let r = g.General.r in
    if r > Float.Array.length buf.Evalbuf.phi then
      invalid_arg "Flat.general_into: r exceeds buffer capacity";
    (* Determining vector: max of the sampled values (ascending entry
       order, 0. seed — exactly [determining_vector_l]). *)
    let m = ref 0. in
    let any = ref false in
    for i = 0 to r - 1 do
      if Bytes.unsafe_get buf.Evalbuf.present i <> '\000' then begin
        any := true;
        m := Float.max !m (Float.Array.unsafe_get buf.Evalbuf.vals i)
      end
    done;
    if not !any then Float.Array.unsafe_set dst di 0.
    else begin
      let m = !m in
      for i = 0 to r - 1 do
        Float.Array.unsafe_set buf.Evalbuf.phi i
          (if Bytes.unsafe_get buf.Evalbuf.present i <> '\000' then
             Float.Array.unsafe_get buf.Evalbuf.vals i
           else m)
      done;
      (* Sorting permutation of φ — the reference comparator
         (φ descending, entry index ascending on ties) is a strict total
         order, so insertion sort lands on the same unique permutation
         as [Array.sort]. *)
      for i = 0 to r - 1 do
        Bytes.unsafe_set buf.Evalbuf.perm i (Char.unsafe_chr i)
      done;
      for j = 1 to r - 1 do
        let x = Char.code (Bytes.unsafe_get buf.Evalbuf.perm j) in
        let phx = Float.Array.unsafe_get buf.Evalbuf.phi x in
        let m' = ref j in
        let continue = ref true in
        while !continue && !m' > 0 do
          let y = Char.code (Bytes.unsafe_get buf.Evalbuf.perm (!m' - 1)) in
          let c = Float.compare phx (Float.Array.unsafe_get buf.Evalbuf.phi y) in
          if c > 0 || (c = 0 && x < y) then begin
            Bytes.unsafe_set buf.Evalbuf.perm !m' (Char.unsafe_chr y);
            decr m'
          end
          else continue := false
        done;
        Bytes.unsafe_set buf.Evalbuf.perm !m' (Char.unsafe_chr x)
      done;
      (* Coefficients from consecutive prefix sums along the sorting
         permutation — same walk, same accumulation order as
         [General.estimate]. *)
      let a_flat = g.General.a_flat in
      let acc = ref 0. in
      let mask = ref 0 in
      let prev = ref 0. in
      for j = 0 to r - 1 do
        let i = Char.code (Bytes.unsafe_get buf.Evalbuf.perm j) in
        mask := !mask lor (1 lsl i);
        let ai = Float.Array.unsafe_get a_flat !mask in
        acc := !acc +. ((ai -. !prev) *. Float.Array.unsafe_get buf.Evalbuf.phi i);
        prev := ai
      done;
      Float.Array.unsafe_set dst di !acc
    end
end

let u_r2 (o : outcome) =
  check_r2 o;
  let p1 = o.probs.(0) and p2 = o.probs.(1) in
  let c = 1. +. Float.max 0. (1. -. p1 -. p2) in
  match (o.values.(0), o.values.(1)) with
  | None, None -> 0.
  | Some v1, None -> v1 /. (p1 *. c)
  | None, Some v2 -> v2 /. (p2 *. c)
  | Some v1, Some v2 ->
      (Float.max v1 v2 -. (((v1 *. (1. -. p2)) +. (v2 *. (1. -. p1))) /. c))
      /. (p1 *. p2)

let u_asym_r2 (o : outcome) =
  check_r2 o;
  let p1 = o.probs.(0) and p2 = o.probs.(1) in
  let d = Float.max (1. -. p1) p2 in
  match (o.values.(0), o.values.(1)) with
  | None, None -> 0.
  | Some v1, None -> v1 /. p1
  | None, Some v2 -> v2 /. d
  | Some v1, Some v2 ->
      (Float.max v1 v2 -. (p2 *. (1. -. p1) /. d *. v2) -. ((1. -. p2) *. v1))
      /. (p1 *. p2)

let var_of est ~probs ~v = (Exact.oblivious ~probs ~v est).Exact.var
let var_l_r2 ~probs ~v = var_of l_r2 ~probs ~v
let var_u_r2 ~probs ~v = var_of u_r2 ~probs ~v
let var_ht_r2 ~probs ~v = var_of Ht.max_oblivious ~probs ~v
