type moments = { mean : float; var : float }

let of_weighted_values pairs =
  let mean = List.fold_left (fun acc (p, x) -> acc +. (p *. x)) 0. pairs in
  let second = List.fold_left (fun acc (p, x) -> acc +. (p *. x *. x)) 0. pairs in
  { mean; var = second -. (mean *. mean) }

let oblivious ~probs ~v est =
  Sampling.Outcome.Oblivious.enumerate ~probs v
  |> List.map (fun (p, o) -> (p, est o))
  |> of_weighted_values

let binary ~probs ~v est =
  Sampling.Outcome.Binary.enumerate ~probs v
  |> List.map (fun (p, o) -> (p, est o))
  |> of_weighted_values

let pps ?tol ~taus ~v est =
  let mean = Sampling.Outcome.Pps.expectation ?tol ~taus ~v est in
  let second =
    Sampling.Outcome.Pps.expectation ?tol ~taus ~v (fun o ->
        let x = est o in
        x *. x)
  in
  { mean; var = second -. (mean *. mean) }

let pps_r2_fast_uncached ~taus ~v est =
  if Array.length v <> 2 then invalid_arg "Exact.pps_r2_fast: r = 2 only";
  let p1 = Float.min 1. (v.(0) /. taus.(0)) in
  let p2 = Float.min 1. (v.(1) /. taus.(1)) in
  let outcome ~s1 ~s2 ~u1 ~u2 =
    {
      Sampling.Outcome.Pps.taus;
      seeds = [| u1; u2 |];
      values =
        [|
          (if s1 then Some v.(0) else None); (if s2 then Some v.(1) else None);
        |];
    }
  in
  let graded = List.init 12 (fun k -> 10. ** float_of_int (-(k + 1))) in
  let breaks j = (v.(0) /. taus.(j)) :: (v.(1) /. taus.(j)) :: graded in
  let mean = ref 0. and second = ref 0. in
  let add p x =
    mean := !mean +. (p *. x);
    second := !second +. (p *. x *. x)
  in
  (* Both entries sampled: the estimate is seed-free; pick seeds below the
     inclusion thresholds as representatives. *)
  if p1 > 0. && p2 > 0. then
    add (p1 *. p2) (est (outcome ~s1:true ~s2:true ~u1:(0.5 *. p1) ~u2:(0.5 *. p2)));
  (* Entry 1 sampled, entry 2 not: integrate over u2 ∈ (p2, 1]. *)
  if p1 > 0. && p2 < 1. then begin
    let g u2 = est (outcome ~s1:true ~s2:false ~u1:(0.5 *. p1) ~u2) in
    mean :=
      !mean
      +. (p1 *. Numerics.Integrate.robust_pieces ~breakpoints:(breaks 1) g p2 1.);
    second :=
      !second
      +. p1
         *. Numerics.Integrate.robust_pieces ~breakpoints:(breaks 1)
              (fun u2 ->
                let x = g u2 in
                x *. x)
              p2 1.
  end;
  if p2 > 0. && p1 < 1. then begin
    let g u1 = est (outcome ~s1:false ~s2:true ~u1 ~u2:(0.5 *. p2)) in
    mean :=
      !mean
      +. (p2 *. Numerics.Integrate.robust_pieces ~breakpoints:(breaks 0) g p1 1.);
    second :=
      !second
      +. p2
         *. Numerics.Integrate.robust_pieces ~breakpoints:(breaks 0)
              (fun u1 ->
                let x = g u1 in
                x *. x)
              p1 1.
  end;
  (* Neither sampled: a nonnegative estimator consistent with possibly
     all-zero data must be 0 there (we evaluate once to be faithful). *)
  if p1 < 1. && p2 < 1. then begin
    let u1 = 0.5 *. (p1 +. 1.) and u2 = 0.5 *. (p2 +. 1.) in
    let x = est (outcome ~s1:false ~s2:false ~u1 ~u2) in
    if x <> 0. then begin
      (* Fall back to full quadrature for estimators that are nonzero on
         empty outcomes. *)
      let m = Sampling.Outcome.Pps.expectation ~taus ~v est in
      let s =
        Sampling.Outcome.Pps.expectation ~taus ~v (fun o ->
            let y = est o in
            y *. y)
      in
      mean := m;
      second := s
    end
  end;
  { mean = !mean; var = !second -. (!mean *. !mean) }

(* Per-key moment integrals keyed by (estimator id, taus, v). Sweeps
   (fig4/fig7 panels, dominance grids, table 4.1) revisit the same data
   points across panels and subset selections; each entry is two floats,
   so the capacity can be generous. *)
let pps_r2_cache : (string * float array * float array, moments) Numerics.Memo.t
    =
  Numerics.Memo.create ~capacity:8192 ~name:"exact.pps_r2" ~hash:Hashtbl.hash
    ~equal:(fun (ka, ta, va) (kb, tb, vb) ->
      let arr_eq a b =
        Array.length a = Array.length b && Array.for_all2 Float.equal a b
      in
      String.equal ka kb && arr_eq ta tb && arr_eq va vb)
    ()

let pps_r2_fast ?cache_key ~taus ~v est =
  match cache_key with
  | None -> pps_r2_fast_uncached ~taus ~v est
  | Some id ->
      Numerics.Memo.find_or_add pps_r2_cache (id, Array.copy taus, Array.copy v)
        (fun () -> pps_r2_fast_uncached ~taus ~v est)

let default_shards = 64

let monte_carlo ?pool ?master ?shards ~rng ~n ~draw est =
  match (pool, master) with
  | None, None ->
      let acc = Numerics.Stats.Acc.create () in
      for _ = 1 to n do
        Numerics.Stats.Acc.add acc (est (draw rng))
      done;
      { mean = Numerics.Stats.Acc.mean acc; var = Numerics.Stats.Acc.var acc }
  | _ ->
      (* Sharded substream mode. The trial-to-shard assignment depends
         only on (n, shards) and each shard's stream only on (master,
         shard index), so the merged moments are identical whether the
         shards run sequentially here or across any pool. *)
      let master = Option.value master ~default:0x5EED in
      let shards =
        match shards with
        | Some s -> Stdlib.max 1 (Stdlib.min s n)
        | None -> Stdlib.max 1 (Stdlib.min default_shards n)
      in
      let per = n / shards and rem = n mod shards in
      let run_shard rng s =
        let trials = per + if s < rem then 1 else 0 in
        let acc = Numerics.Stats.Acc.create () in
        for _ = 1 to trials do
          Numerics.Stats.Acc.add acc (est (draw rng))
        done;
        acc
      in
      let accs =
        match pool with
        | Some p -> Numerics.Pool.map_streams p ~master ~n:shards run_shard
        | None ->
            Array.init shards (fun s ->
                run_shard (Numerics.Prng.substream ~master s) s)
      in
      let acc =
        Array.fold_left Numerics.Stats.Acc.merge (Numerics.Stats.Acc.create ())
          accs
      in
      { mean = Numerics.Stats.Acc.mean acc; var = Numerics.Stats.Acc.var acc }

let dominates ?pool ~var_a ~var_b grid =
  let point v =
    let va = var_a v and vb = var_b v in
    va <= vb +. (1e-9 *. (1. +. abs_float vb))
  in
  match pool with
  | None -> List.for_all point grid
  | Some p -> List.for_all Fun.id (Numerics.Pool.parallel_list_map p point grid)
