(** Reusable scratch buffers for the allocation-free estimate path.

    The flat evaluators ({!Max_oblivious.Flat}, {!Ht.Flat},
    {!Max_pps.Flat}, {!Or_oblivious.Table}, {!Or_weighted.Table}) follow
    a store-into convention: inputs are read from caller-owned unboxed
    buffers and the result is written into {!field-out} slot 0, so a call
    passes only pointers and immediates and performs {e zero heap
    allocation} — measured, not assumed: the test suite pins every flat
    evaluator at a zero [Gc.minor_words] delta per call, and the classic
    (non-flambda) native compiler is the baseline for that guarantee.

    A buffer is scratch for {e one} evaluation at a time and must not be
    shared across domains: create one per domain (e.g. inside each
    parallel chunk body), never hoist one across a [Pool] fan-out. *)

type t = {
  vals : floatarray;  (** per-entry inputs (sampled values) *)
  phi : floatarray;  (** determining-vector / seed scratch *)
  perm : Bytes.t;  (** sorting-permutation scratch (entry indices) *)
  present : Bytes.t;  (** presence flags, ['\001'] = sampled *)
  out : floatarray;  (** result slots; slot 0 is the default target *)
}

val create : r_max:int -> t
(** Scratch sized for outcomes with up to [r_max] entries
    (1 ≤ r_max ≤ 255). *)

val r_max : t -> int
val result : t -> float
(** [result t] reads [out] slot 0 — the value the last [*_into] call
    stored. (Reading it boxes the float; do so outside hot loops.) *)

val load_oblivious : t -> Sampling.Outcome.Oblivious.t -> unit
(** Unpack an oblivious outcome into [vals]/[present]. Convenience for
    tests and benches; hot callers fill the buffers directly. *)

val load_pps : t -> Sampling.Outcome.Pps.t -> unit
(** Unpack a PPS outcome: values into [vals]/[present], seeds into
    [phi]. *)
