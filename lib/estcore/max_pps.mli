(** [max^(L)] under independent weighted PPS Poisson sampling with known
    seeds, r = 2 (Section 5.2, Figure 3, Appendix A).

    The outcome reveals the sampled values and, through the seeds, a
    strict upper bound [u_i·τ*_i] on each unsampled value. The order-based
    estimator with respect to the sorted multiset of differences
    [max(v) − v_i] maps each outcome to its determining vector φ(S) (the
    ≺-minimal consistent vector) and applies a closed-form estimate that
    is piecewise algebraic with logarithmic terms (eqs. 25, 26, 29, 30).

    [max^(L)] dominates [max^(HT)] ({!Ht.max_pps}) when the thresholds
    are equal — the setting of the paper's claim. With strongly unequal
    thresholds dominance can fail (e.g. τ = (1,3), v = (0, 0.9) gives
    Var[L] ≈ 1.31·Var[HT]; verified by quadrature and Monte Carlo —
    Pareto optimality is not contradicted). With
    [τ*₁ = τ*₂ = τ*] and [ρ = max(v)/τ* < 1] the variance ratio
    Var[HT]/Var[L] grows with min(v)/max(v) and reaches [≈ 2/ρ] near
    equal values. Note an erratum: Section 5.2 claims the estimator is
    two-valued on data [(ρτ*, 0)] (hence Var = (ρ−ρ²)τ*² and a ratio
    floor of [(1+ρ)/ρ] at min = 0), but by the paper's own Figure 3 table
    the estimate on a one-entry outcome varies with the revealed bound
    [u·τ*] of the unsampled entry, so the variance at min = 0 is strictly
    larger (verified here by exact quadrature and Monte Carlo); the
    measured ratio floor at min = 0 is ≈ 1.92–2.0 across ρ. See
    EXPERIMENTS.md. *)

type outcome = Sampling.Outcome.Pps.t

val determining_vector : outcome -> float array
(** φ(S): 0 on the empty outcome; otherwise sampled entries keep their
    values and unsampled entry [i] becomes [min(max sampled, u_i·τ*_i)]. *)

val estimate_det : tau_hi:float -> tau_lo:float -> hi:float -> lo:float -> float
(** The Figure 3 estimate as a function of the determining vector:
    [hi ≥ lo] are the two entries, [tau_hi]/[tau_lo] their PPS
    thresholds. Exposed for direct testing of each closed-form case. *)

val l : outcome -> float
(** The estimator: [estimate_det] applied to the determining vector. *)

val equal_values_estimate : tau1:float -> tau2:float -> float -> float
(** Eq. (25): the estimate for determining vectors (v,v); exposed for
    tests. *)

(** Allocation-free mirror of {!l}: inputs from an {!Evalbuf} (values in
    [vals], presence in [present], seeds in [phi]), result stored into
    [dst.(di)]. The closed forms are duplicated (a non-inlined
    float-returning call would box its result); bit-identity against
    {!l}/{!estimate_det} and the zero-allocation bound are enforced by
    the test suite. *)
module Flat : sig
  val estimate_det_into :
    tau_hi:float -> tau_lo:float -> hi:float -> lo:float ->
    floatarray -> int -> unit
  (** {!estimate_det} storing into the given slot; exposed for the
      case-by-case bit-identity tests. *)

  val l_into : taus:float array -> Evalbuf.t -> dst:floatarray -> di:int -> unit
end

val var_l : ?tol:float -> taus:float array -> v:float array -> unit -> float
(** Exact variance of {!l} on data [v] (seed-space quadrature). *)

val var_ht : taus:float array -> v:float array -> float
(** Closed-form variance of the HT baseline (same as
    {!Ht.max_pps_variance}). *)
