module P = Sampling.Outcome.Pps

let of_seed ~taus ~u v =
  P.of_seeds ~taus ~seeds:(Array.map (fun _ -> u) taus) v

let draw rng ~taus v = of_seed ~taus ~u:(Numerics.Prng.float_open rng) v

let expectation ~taus ~v g =
  (* Breakpoints: every u where the outcome or an estimator decision can
     flip — all ratios v_i/τ_j (inclusion thresholds i = j; bound-versus-
     value crossings i ≠ j, e.g. max^(HT)'s determination condition) —
     plus graded points near 0 for estimators with endpoint
     singularities. *)
  let breakpoints =
    List.concat_map
      (fun vi -> Array.to_list (Array.map (fun tau -> vi /. tau) taus))
      (Array.to_list v)
    @ List.init 12 (fun k -> 10. ** float_of_int (-(k + 1)))
  in
  Numerics.Integrate.robust_pieces ~breakpoints (fun u -> g (of_seed ~taus ~u v)) 0. 1.

let moments ~taus ~v g =
  let mean = expectation ~taus ~v g in
  let second =
    expectation ~taus ~v (fun o ->
        let x = g o in
        x *. x)
  in
  { Exact.mean; var = second -. (mean *. mean) }

let max_ht (o : P.t) =
  let r = P.r o in
  let max_sampled = ref 0. in
  let any = ref false in
  let tau_max = ref 0. in
  let u = if r > 0 then o.seeds.(0) else 0. in
  for i = 0 to r - 1 do
    tau_max := Float.max !tau_max o.taus.(i);
    match o.values.(i) with
    | Some v ->
        any := true;
        max_sampled := Float.max !max_sampled v
    | None -> ()
  done;
  if !any && !max_sampled >= u *. !tau_max then
    !max_sampled /. Float.min 1. (!max_sampled /. !tau_max)
  else 0.

let min_ht (o : P.t) =
  if Array.for_all (fun x -> x <> None) o.values then begin
    let v =
      Array.mapi
        (fun i -> function
          | Some x -> x
          | None ->
              failwith
                (Printf.sprintf
                   "Coordinated.min_ht: unsampled slot %d after an all-sampled check"
                   i))
        o.values
    in
    let p = ref 1. in
    Array.iteri
      (fun i vi -> p := Float.min !p (Float.min 1. (vi /. o.taus.(i))))
      v;
    Array.fold_left Float.min infinity v /. !p
  end
  else 0.

let max_variance_equal_tau ~tau ~v =
  let m = Array.fold_left Float.max 0. v in
  if m <= 0. then 0.
  else
    let p = Float.min 1. (m /. tau) in
    m *. m *. ((1. /. p) -. 1.)

let sum_covariance ~p1 ~p2 ~v1 ~v2 ~shared =
  if not shared then 0.
  else ((Float.min p1 p2 /. (p1 *. p2)) -. 1.) *. v1 *. v2
