(** Estimators for Boolean OR under {e weighted} Poisson sampling with
    known seeds, r = 2 (Section 5.1).

    With binary data, weighted sampling with known seeds is equivalent to
    weight-oblivious sampling through a 1-1 outcome mapping: entry [i] is
    "obliviously sampled" iff [u_i ≤ p_i]; its value is 1 if actually
    sampled and 0 otherwise. The OR estimators transfer verbatim and keep
    their variance (and optimality). Zero-valued entries never enter the
    sample itself — knowledge of the seeds compensates.

    These are the per-key estimators behind the distinct-count
    application (Section 8.1). *)

type outcome = Sampling.Outcome.Binary.t

val ht : outcome -> float
(** [OR^(HT)]: [1/(p₁p₂)] when [u_i ≤ p_i] for both entries and at least
    one is sampled; else 0. *)

val l : outcome -> float
(** [OR^(L)] (Section 5.1 table):
    - ∅: 0
    - one entry sampled, other's seed above its p (value unknown), or both
      sampled: [1/(p₁+p₂−p₁p₂)]
    - entry i sampled, other's seed below p (other value known 0):
      [1/(p_i(p₁+p₂−p₁p₂))]. *)

val u : outcome -> float
(** [OR^(U)] (Section 5.1 table), with [c = 1 + max(0, 1−p₁−p₂)]. *)

(** Flattened binary known-seeds OR^(L) table, r = 2. The outcome key is
    the (below, sampled) indicator pair — 16 combinations — flattened
    from a machine-derived {!Designer} table into 16 unboxed cells
    served by one load per key. This is the engine's serving path for
    [QUERY or]: same cell values as [Designer.lookup], so responses are
    bit-identical to the hashtable path it replaces. Combinations the
    derivation never reached hold NaN (never addressed by well-formed
    outcomes). *)
module Table : sig
  type t

  val code : b0:bool -> b1:bool -> s0:bool -> s1:bool -> int
  (** Cell index of the ((below₀, below₁), (sampled₀, sampled₁)) key. *)

  val of_estimator : (bool array * bool array) Designer.estimator -> t
  val cell : t -> int -> float
  val eval_into : t -> code:int -> dst:floatarray -> di:int -> unit
  val add_into : t -> code:int -> floatarray -> unit
  (** [add_into t ~code acc] adds the cell to [acc.(0)]. *)
end

val var_l : p1:float -> p2:float -> v:int array -> float
(** Exact variance of {!l} on binary data [v] — equals the
    weight-oblivious variance (Section 5.1). *)

val var_u : p1:float -> p2:float -> v:int array -> float
val var_ht : p1:float -> p2:float -> v:int array -> float
