module O = Sampling.Outcome.Oblivious
module P = Sampling.Outcome.Pps

let single ~p ~sampled ~value = if sampled then value /. p else 0.
let single_variance ~p ~value = value *. value *. ((1. /. p) -. 1.)

let all_sampled values = Array.for_all (fun x -> x <> None) values

(* Only called after an [all_sampled] check; a [None] here means the
   outcome record itself is inconsistent. *)
let sampled_value_exn i = function
  | Some x -> x
  | None ->
      failwith
        (Printf.sprintf "Ht: unsampled slot %d after an all-sampled check" i)

let multi_oblivious ~f (o : O.t) =
  if all_sampled o.values then begin
    let v = Array.mapi sampled_value_exn o.values in
    let pall = Array.fold_left ( *. ) 1. o.probs in
    f v /. pall
  end
  else 0.

let multi_oblivious_variance ~probs ~fv =
  let pall = Array.fold_left ( *. ) 1. probs in
  fv *. fv *. ((1. /. pall) -. 1.)

let vmax v = Array.fold_left Float.max neg_infinity v
let vmin v = Array.fold_left Float.min infinity v

let max_oblivious o = multi_oblivious ~f:vmax o
let min_oblivious o = multi_oblivious ~f:vmin o
let range_oblivious o = multi_oblivious ~f:(fun v -> vmax v -. vmin v) o

let quantile_oblivious ~l o =
  multi_oblivious
    ~f:(fun v ->
      let s = Array.copy v in
      Array.sort (fun a b -> Float.compare b a) s;
      if l < 1 || l > Array.length s then invalid_arg "Ht.quantile_oblivious";
      s.(l - 1))
    o

let max_pps (o : P.t) =
  let r = P.r o in
  let max_sampled = ref 0. in
  let max_unsampled_bound = ref 0. in
  for i = 0 to r - 1 do
    match o.values.(i) with
    | Some v -> max_sampled := Float.max !max_sampled v
    | None ->
        max_unsampled_bound := Float.max !max_unsampled_bound (o.seeds.(i) *. o.taus.(i))
  done;
  if !max_sampled > 0. && !max_unsampled_bound <= !max_sampled then begin
    let p = ref 1. in
    for i = 0 to r - 1 do
      p := !p *. Float.min 1. (!max_sampled /. o.taus.(i))
    done;
    !max_sampled /. !p
  end
  else 0.

let max_pps_variance ~taus ~v =
  let m = vmax v in
  if m <= 0. then 0.
  else begin
    let p = Array.fold_left (fun acc tau -> acc *. Float.min 1. (m /. tau)) 1. taus in
    m *. m *. ((1. /. p) -. 1.)
  end

(* Allocation-free variants reading from an [Evalbuf] (values in [vals],
   presence in [present], seeds in [phi]) and storing into a caller
   slot. Operation-for-operation mirrors of the reference evaluators
   above — bit-identity and the zero-allocation bound are enforced by
   the test suite. *)
module Flat = struct
  let max_pps_into ~(taus : float array) (buf : Evalbuf.t) ~(dst : floatarray)
      ~di =
    let r = Array.length taus in
    if r > Float.Array.length buf.Evalbuf.phi then
      invalid_arg "Ht.Flat.max_pps_into: r exceeds buffer capacity";
    let max_sampled = ref 0. in
    let max_unsampled_bound = ref 0. in
    for i = 0 to r - 1 do
      if Bytes.unsafe_get buf.Evalbuf.present i <> '\000' then
        max_sampled :=
          Float.max !max_sampled (Float.Array.unsafe_get buf.Evalbuf.vals i)
      else
        max_unsampled_bound :=
          Float.max !max_unsampled_bound
            (Float.Array.unsafe_get buf.Evalbuf.phi i *. Array.unsafe_get taus i)
    done;
    if !max_sampled > 0. && !max_unsampled_bound <= !max_sampled then begin
      let p = ref 1. in
      for i = 0 to r - 1 do
        p := !p *. Float.min 1. (!max_sampled /. Array.unsafe_get taus i)
      done;
      Float.Array.unsafe_set dst di (!max_sampled /. !p)
    end
    else Float.Array.unsafe_set dst di 0.

  let max_oblivious_into ~(probs : float array) (buf : Evalbuf.t)
      ~(dst : floatarray) ~di =
    let r = Array.length probs in
    if r > Float.Array.length buf.Evalbuf.vals then
      invalid_arg "Ht.Flat.max_oblivious_into: r exceeds buffer capacity";
    let all = ref true in
    for i = 0 to r - 1 do
      if Bytes.unsafe_get buf.Evalbuf.present i = '\000' then all := false
    done;
    if !all then begin
      let vmax = ref neg_infinity in
      for i = 0 to r - 1 do
        vmax := Float.max !vmax (Float.Array.unsafe_get buf.Evalbuf.vals i)
      done;
      let pall = ref 1. in
      for i = 0 to r - 1 do
        pall := !pall *. Array.unsafe_get probs i
      done;
      Float.Array.unsafe_set dst di (!vmax /. !pall)
    end
    else Float.Array.unsafe_set dst di 0.
end

let min_pps (o : P.t) =
  if Array.for_all (fun x -> x <> None) o.values then begin
    let v = Array.mapi sampled_value_exn o.values in
    let p = ref 1. in
    Array.iteri (fun i vi -> p := !p *. Float.min 1. (vi /. o.taus.(i))) v;
    vmin v /. !p
  end
  else 0.
