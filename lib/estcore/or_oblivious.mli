(** Estimators for Boolean [OR(v) = v₁ ∨ ... ∨ v_r] over weight-oblivious
    Poisson samples (Section 4.3).

    OR is max restricted to the domain {0,1}^r, and the max estimators
    specialize to it while remaining Pareto optimal on the restricted
    domain. [OR^(L)] has minimum variance on the all-ones vector ("no
    change"); [OR^(U)] is the symmetric estimator with minimum variance on
    the single-one vectors ("change"). Both dominate [OR^(HT)]:
    asymptotically for p → 0 on two entries, Var[HT] ≈ 1/p² while
    Var[L], Var[U] ≈ 1/(4p²) on (1,0) and ≈ 1/(2p) on (1,1). *)

type outcome = Sampling.Outcome.Oblivious.t

val ht : outcome -> float
(** [OR^(HT)]: [1/Π p_i] when every entry is sampled and some sampled
    value is 1; else 0. *)

val l_r2 : outcome -> float
(** [OR^(L)], r = 2, arbitrary (p₁,p₂) — specialization of max^(L). *)

val u_r2 : outcome -> float
(** [OR^(U)], r = 2, arbitrary (p₁,p₂). *)

val l_uniform : Max_oblivious.Coeffs.t -> outcome -> float
(** [OR^(L)] for any r with uniform p (binary values required). *)

val l_general : Max_oblivious.General.t -> outcome -> float
(** [OR^(L)] for any r with {e arbitrary} per-entry probabilities, via
    the general Theorem 4.1 solver (binary values required). *)

(** Flattened OR^(L) table for r = 2: binary data gives each outcome
    entry one of three states — unsampled, sampled 0, sampled 1 — so
    the whole estimator is nine floats, derived once by the reference
    {!l_r2} and then served by a single unboxed load per key
    (allocation-free, bit-identical to {!l_r2}). *)
module Table : sig
  type t

  val state_unsampled : int
  (** Entry state 0: not sampled. *)

  val state_zero : int
  (** Entry state 1: sampled, value 0. *)

  val state_one : int
  (** Entry state 2: sampled, value 1. *)

  val code : int -> int -> int
  (** [code s0 s1] — cell index of the state pair, [3·s0 + s1]. *)

  val of_probs : p1:float -> p2:float -> t
  (** Derive the nine cells via {!l_r2} (probabilities in (0,1]). *)

  val create : p1:float -> p2:float -> t
  (** {!of_probs} memoized on [(p1, p2)] (cache ["or_oblivious.table"]);
      the returned table is shared — treat it as read-only. *)

  val cell : t -> int -> float
  (** Cell value at a code; for tests (reading boxes the float). *)

  val eval_into : t -> code:int -> dst:floatarray -> di:int -> unit
  val add_into : t -> code:int -> floatarray -> unit
  (** [add_into t ~code acc] adds the cell to [acc.(0)] — the
      sum-aggregate hot path. *)
end

val var_ht : probs:float array -> float
(** Eq. (23): variance of OR^(HT) on any data with OR(v) = 1. *)

val var_l_11 : p1:float -> p2:float -> float
(** Eq. (24): Var[OR^(L) | (1,1)] = 1/(p₁+p₂−p₁p₂) − 1. *)

val var_l_10 : p1:float -> p2:float -> float
(** Var[OR^(L) | (1,0)] (Section 4.3 display): the entry with value 1 is
    entry 1. *)

val var_u_11 : p1:float -> p2:float -> float
(** Var[OR^(U) | (1,1)] (exact, via enumeration). *)

val var_u_10 : p1:float -> p2:float -> float
(** Var[OR^(U) | (1,0)]. *)

val to_binary_outcome : Sampling.Outcome.Binary.t -> outcome
(** View a binary weighted known-seeds outcome as the equivalent
    weight-oblivious outcome (the 1-1 mapping of Section 5). *)
