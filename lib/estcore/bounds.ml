let support problem v =
  List.filter (fun (p, _) -> p > 0.) (problem.Designer.dist v)

(* Probability mass of v's outcomes that are also possible under z. *)
let shared_mass problem ~v ~z =
  let z_keys = Hashtbl.create 16 in
  List.iter (fun (_, k) -> Hashtbl.replace z_keys k ()) (support problem z);
  List.fold_left
    (fun acc (p, k) -> if Hashtbl.mem z_keys k then acc +. p else acc)
    0. (support problem v)

let witness problem ~v ~eps =
  let fv = problem.Designer.f v in
  let best = ref None in
  List.iter
    (fun z ->
      if problem.Designer.f z <= fv -. eps then begin
        let mass = shared_mass problem ~v ~z in
        match !best with
        | Some (_, m) when m >= mass -> ()
        | _ -> best := Some (z, mass)
      end)
    problem.Designer.data;
  !best

let delta problem ~v ~eps =
  match witness problem ~v ~eps with
  | None -> 1.
  | Some (_, mass) -> 1. -. mass

let refutes_existence problem =
  (* Candidate gaps: differences between attained f values. *)
  let fvals =
    List.sort_uniq Float.compare
      (List.map problem.Designer.f problem.Designer.data)
  in
  let gaps =
    List.concat_map
      (fun a ->
        List.filter_map (fun b -> if b < a then Some (a -. b) else None) fvals)
      fvals
    |> List.sort_uniq Float.compare
  in
  List.exists
    (fun v ->
      List.exists
        (fun eps -> delta problem ~v ~eps <= 1e-12)
        (List.map (fun g -> g /. 2.) gaps))
    problem.Designer.data
