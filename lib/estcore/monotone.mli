(** The monotone-estimation framework over {e coordinated} samples — the
    L* estimator of "Estimation for Monotone Sampling" (arXiv:1212.0243)
    and "What You Can Do with Coordinated Samples" (arXiv:1206.5637),
    specialized to the {!Coordinated} PPS scheme.

    A coordinated outcome is monotone in the shared seed: raising [u]
    can only lose information (entry [i] is sampled iff [u ≤ a_i] where
    [a_i = min(1, v_i/τ*_i)] is its {e entry point}). For a monotone
    nonnegative [f] of the data vector, let [f̲(x)] be the {e lower
    bound function} — the infimum of [f] over all data consistent with
    the outcome the realized data would produce at seed [x]. The L*
    estimator is the lower-end integral

    {[ f̂ = f̲(u)/u − ∫_u^1 f̲(x)/x² dx ]}

    It is unbiased whenever [f̲(0⁺) = f(v)] (full information in the
    limit — true for max, min and sum over PPS outcomes), nonnegative,
    and variance-competitive: at most 4× the variance of any admissible
    estimator, pointwise.

    For the step trajectories PPS outcomes induce, the integral
    telescopes to the exact closed form [Σ_t δ_t / x_t] over the jumps
    [(x_t, δ_t)] of [f̲] — each jump is paid for by the probability
    [x_t] of observing it. That closed form is what serves; the
    quadrature engine ({!lstar}) is the generic-f reference the tests
    pin it against. *)

(** {2 Lower-bound function machinery (generic monotone f)} *)

type lb = {
  at : float -> float;
      (** [f̲(x)] for [x ∈ (0,1]] — non-increasing, nonnegative. At a
          jump point the bound includes the jump (an entry with
          [a_i = x] is still sampled at seed [x]). *)
  breakpoints : float list;
      (** where [at] jumps — quadrature splits pieces here. *)
}

val lstar : ?tol:float -> lb -> u:float -> float
(** The lower-end integral evaluated by
    {!Numerics.Integrate.robust_pieces} (GL-32 with the 64-vs-48 and
    adaptive-Simpson degradation ladder behind it): [f̲(u)/u −
    ∫_u^1 f̲(x)/x² dx]. Raises [Invalid_argument] unless [u ∈ (0,1]].
    The generic engine for arbitrary monotone [f]; the step-trajectory
    paths below shortcut it exactly. *)

val guard : site:string -> float -> float
(** Nonnegativity/finiteness guard on an estimate: a NaN, infinite or
    negative value is recorded via {!Numerics.Robust.note_degradation}
    (so [Strict] mode raises, and server responses count it in their
    [degradations] field) and degrades to 0. The L* closed forms are
    provably nonnegative, so a trip means corrupted inputs — the guard
    keeps one poisoned key from taking down a whole aggregate. *)

(** {2 Step trajectories (PPS outcomes)} *)

type steps = {
  xs : float array;  (** jump positions, strictly ascending, in (0,1] *)
  ds : float array;  (** jump sizes, [> 0] *)
}
(** A piecewise-constant lower-bound function: [f̲(x) = Σ_{x_t ≥ x} δ_t].
    Entries with [v ≥ τ*] have entry point 1 and contribute a jump at
    [x = 1]. *)

val total : steps -> float
(** [f̲(0⁺) = Σ_t δ_t] — must equal [f(v)] for the estimator to be
    unbiased (the estimability condition). *)

val lb_of_steps : steps -> lb
(** The trajectory as a {!lb}, for the quadrature reference path. *)

val lstar_steps : steps -> float
(** Exact closed form of {!lstar} on a step trajectory: [Σ_t δ_t/x_t],
    summed in descending-[x] order (the order the reference estimators
    discover the jumps in). Independent of the realized seed: sampled
    entries are exactly those with [x_t ≥ u]. *)

(** {2 Coordinated-outcome estimators}

    Reference (allocating) per-key estimators for the three monotone
    functions the similarity queries decompose into. All read only the
    sampled values and thresholds — never the seeds — so they apply
    unchanged to store summaries. Unbiased under {e shared} seeds only
    ({!Sampling.Seeds.Shared}); the server refuses them on
    independent-seed stores. *)

val max_steps : Sampling.Outcome.Pps.t -> steps
(** Trajectory of [f = max]: walking the sampled entries by descending
    entry point, each new running maximum [v] jumps the bound by
    [v − m] at its entry point. *)

val min_steps : Sampling.Outcome.Pps.t -> steps
(** Trajectory of [f = min]: one jump of [min(v)] at [min_i a_i] — the
    minimum is known only when {e every} entry is sampled (empty when
    any entry is missing: the infimum over consistent data is 0). *)

val sum_steps : Sampling.Outcome.Pps.t -> steps
(** Trajectory of [f = Σ]: each sampled entry jumps by [v_i] at [a_i]. *)

val max_lstar : Sampling.Outcome.Pps.t -> float
(** L* for [max]: [Σ (v − m)/a] over the descending-entry-point walk.
    Specializes to the classic optimal coordinated max estimator
    ({!Coordinated.max_ht}) when thresholds are equal. *)

val min_lstar : Sampling.Outcome.Pps.t -> float
(** L* for [min]: [min(v)/min_i a_i] when all entries are sampled, else
    0 — exactly the inverse-probability {!Coordinated.min_ht} (for
    all-or-nothing information, L* {e is} HT). *)

val sum_lstar : Sampling.Outcome.Pps.t -> float
(** L* for [Σ]: [Σ v_i/a_i] over sampled entries — the per-entry HT
    sum, recovered as a sanity anchor. *)

(** {2 Allocation-free serving twins}

    Store-into evaluators over a reused {!Evalbuf}, in the
    {!Max_pps.Flat} mold: inputs from [vals]/[present], sort scratch in
    [perm], result into a caller slot, zero minor words per call. Each
    duplicates its reference estimator operation for operation — same
    entry-point computation, same total (entry point desc, index asc)
    sort order, same left-to-right accumulation — so the pair is
    bit-identical (pinned by the test suite). Seeds ([phi]) are never
    read: the L* closed forms are seed-free. *)
module Flat : sig
  val max_into :
    taus:float array -> Evalbuf.t -> dst:floatarray -> di:int -> unit

  val min_into :
    taus:float array -> Evalbuf.t -> dst:floatarray -> di:int -> unit
end
