module O = Sampling.Outcome.Oblivious

type outcome = O.t

let check_binary (o : outcome) =
  Array.iter
    (function
      | Some v when v <> 0. && v <> 1. ->
          invalid_arg "Or_oblivious: values must be 0/1"
      | _ -> ())
    o.values

let ht (o : outcome) =
  check_binary o;
  Ht.max_oblivious o

let l_r2 (o : outcome) =
  check_binary o;
  Max_oblivious.l_r2 o

let u_r2 (o : outcome) =
  check_binary o;
  Max_oblivious.u_r2 o

let l_uniform c (o : outcome) =
  check_binary o;
  Max_oblivious.l_uniform c o

let l_general g (o : outcome) =
  check_binary o;
  Max_oblivious.General.estimate g o

(* Flattened OR^(L) table for r = 2: with binary data an outcome entry
   carries one of three states (unsampled / sampled 0 / sampled 1), so
   the whole estimator is nine floats. Cells are produced by the
   reference [l_r2], then served by one unboxed load per key —
   allocation-free and bit-identical to evaluating [l_r2] directly. *)
module Table = struct
  type t = { cells : floatarray }

  let state_unsampled = 0
  let state_zero = 1
  let state_one = 2
  let[@inline] code s0 s1 = (3 * s0) + s1

  let of_probs ~p1 ~p2 =
    if p1 <= 0. || p1 > 1. || p2 <= 0. || p2 > 1. then
      invalid_arg "Or_oblivious.Table: probabilities must be in (0,1]";
    let value = function 0 -> None | 1 -> Some 0. | _ -> Some 1. in
    let probs = [| p1; p2 |] in
    let cells =
      Float.Array.init 9 (fun c ->
          l_r2
            {
              Sampling.Outcome.Oblivious.probs;
              values = [| value (c / 3); value (c mod 3) |];
            })
    in
    { cells }

  (* Bit-pattern hash over the probability pair; consistent with the
     [Float.equal] test on the validated domain (0,1]. *)
  let hash_pp (p1, p2) =
    Int64.to_int (Int64.bits_of_float p1)
    lxor (Int64.to_int (Int64.bits_of_float p2) * 0x9e3779b1)

  let cache : (float * float, t) Numerics.Memo.t =
    Numerics.Memo.create ~capacity:64 ~name:"or_oblivious.table" ~hash:hash_pp
      ~equal:(fun (a1, a2) (b1, b2) -> Float.equal a1 b1 && Float.equal a2 b2)
      ()

  let create ~p1 ~p2 =
    Numerics.Memo.find_or_add cache (p1, p2) (fun () -> of_probs ~p1 ~p2)

  let cell t c = Float.Array.get t.cells c

  let eval_into t ~code ~(dst : floatarray) ~di =
    Float.Array.unsafe_set dst di (Float.Array.get t.cells code)

  let add_into t ~code (acc : floatarray) =
    Float.Array.unsafe_set acc 0
      (Float.Array.unsafe_get acc 0 +. Float.Array.get t.cells code)
end

let var_ht ~probs =
  let pall = Array.fold_left ( *. ) 1. probs in
  (1. /. pall) -. 1.

let var_l_11 ~p1 ~p2 =
  let q = p1 +. p2 -. (p1 *. p2) in
  (1. /. q) -. 1.

let var_l_10 ~p1 ~p2 =
  (Exact.oblivious ~probs:[| p1; p2 |] ~v:[| 1.; 0. |] l_r2).Exact.var

let var_u_11 ~p1 ~p2 =
  (Exact.oblivious ~probs:[| p1; p2 |] ~v:[| 1.; 1. |] u_r2).Exact.var

let var_u_10 ~p1 ~p2 =
  (Exact.oblivious ~probs:[| p1; p2 |] ~v:[| 1.; 0. |] u_r2).Exact.var

let to_binary_outcome = Sampling.Outcome.Binary.to_oblivious
