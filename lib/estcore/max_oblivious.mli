(** Pareto-optimal estimators for [max(v)] under weight-oblivious Poisson
    sampling (Section 4).

    Two incomparable Pareto-optimal families:

    - [max^(L)] (Section 4.1) prioritizes {e dense} data vectors (entries
      close to each other): order-based with respect to the number of
      entries strictly below the maximum. Monotone, nonnegative,
      dominates [max^(HT)].
    - [max^(U)] (Section 4.2) prioritizes {e sparse} vectors (few positive
      entries): ordered-partition by the number of positive entries. The
      symmetric variant [u_r2] and the asymmetric order-based variant
      [u_asym_r2] are both Pareto optimal; [u_r2] balances variance across
      symmetric vectors.

    For [max^(L)] the module implements the general-[r] uniform-[p]
    coefficient recursion of Theorem 4.2 (Algorithm 3, O(r²)) and the
    closed form (12) for r = 2 with arbitrary (p₁, p₂). *)

type outcome = Sampling.Outcome.Oblivious.t

val determining_vector_l : outcome -> float array
(** The ≺-minimal consistent vector φ(S) for the L order: sampled entries
    keep their values; unsampled entries are set to the largest sampled
    value (all zeros for the empty outcome). *)

val l_r2 : outcome -> float
(** [max^(L)] for r = 2, arbitrary (p₁, p₂) — eq. (12). *)

(** Coefficients of the uniform-[p] estimator (Theorem 4.2). *)
module Coeffs : sig
  type t

  val compute : r:int -> p:float -> t
  (** O(r²) recursion (20) for the prefix sums A_i, then α_i = A_i −
      A_{i−1}. Requires [r ≥ 1] and [p ∈ (0,1]]. Memoized on [(r, p)]
      (cache ["max_oblivious.coeffs"]): repeated calls return one shared
      table — treat {!alpha}/{!prefix_sums} as read-only. *)

  val r : t -> int
  val p : t -> float
  val alpha : t -> float array
  (** α₁..α_r (index 0 = α₁). The estimate on an outcome with sorted
      determining vector u is [Σ α_i u_i]. *)

  val prefix_sums : t -> float array
  (** A₁..A_r; A_h = Σ_{i≤h} α_i. *)

  val lemma42_holds : t -> bool
  (** Lemma 4.2 sufficient conditions for monotonicity, nonnegativity and
      dominance over HT: α_i < 0 for i > 1 and α₁ ≤ 1/p^r. (The paper
      verified them for r ≤ 4; our tests extend to r = 8.) *)
end

val l_uniform : Coeffs.t -> outcome -> float
(** [max^(L)] for uniform p, any r (Algorithm 3's EST): 0 on the empty
    outcome; otherwise apply the coefficients to the sorted determining
    vector. The outcome's probabilities must all equal [Coeffs.p]. *)

val l_r3 : outcome -> float
(** [max^(L)] for r = 3 with {e arbitrary} (p₁, p₂, p₃) — the general
    prefix-sum recursion of Theorem 4.1 instantiated at r = 3:

    {v A₃(q) = 1/(1 − (1−q₁)(1−q₂)(1−q₃))        (eq. 16)
       A₂(q) = A₃(q)/(1 − (1−q₁)(1−q₂))           (eq. 18)
       A₁(q) = (A₂(q) + A₂(q₁,q₃,q₂) − A₃(q))/q₁  (eq. after 18) v}

    where [q] is the probability vector permuted like the sorted
    determining vector. The paper states the recursion but tabulates
    coefficients only for uniform p; this instantiation is verified
    unbiased by exhaustive enumeration and against both {!l_uniform} and
    the Algorithm 1 engine in the tests. *)

val l : outcome -> float
(** Dispatch: r = 2 uses {!l_r2}, r = 3 uses {!l_r3}; r > 3 requires
    uniform probabilities (raises [Invalid_argument] otherwise) and
    computes coefficients on the fly — use {!l_uniform} with precomputed
    {!Coeffs.t} in hot loops, or {!General} for arbitrary probabilities
    at any r. *)

(** The complete Theorem 4.1 estimator: [max^(L)] for {e any} r and
    {e arbitrary} per-entry probabilities, by memoized solving of the
    prefix-sum equation (17).

    The prefix sums [A_{h,π(p)}] are symmetric in their first [h] and
    last [r−h] probabilities (Theorem 4.1), so they are indexed by the
    {e set} of entries forming the prefix; each value is determined by a
    linear equation over larger prefixes, obtained by comparing data
    vectors [z]/[z′] that differ in one coordinate (the paper's induction
    step), with the sum running over sampled/unsampled patterns of the
    strictly-smaller entries. Solving all [2^r] prefix sets costs
    [O(3^r)] — exact, and instantaneous for the r ≤ 12 of practical
    multi-instance queries. Specializes to (12), {!l_r3} and the
    Theorem 4.2 uniform coefficients (verified in the tests). *)
module General : sig
  type t

  val create : probs:float array -> t
  (** Precompute the prefix-sum table for a probability vector
      (all entries in (0,1]). Memoized on the probability vector (cache
      ["max_oblivious.general"]): sweeps that re-derive the same table
      (Thm 4.1 grids, multi-period distinct counts) get a shared,
      read-only instance back. *)

  val r : t -> int

  val prefix_sum : t -> int list -> float
  (** [A] for the prefix formed by the given entry indices (duplicates
      rejected); exposed for testing against the closed forms. *)

  val estimate : t -> outcome -> float
  (** The [max^(L)] estimate: coefficients from consecutive prefix sums
      along the sorting permutation of the determining vector. *)
end

(** Allocation-free per-key evaluation. The functions here are
    operation-for-operation mirrors of {!l_uniform} and
    {!General.estimate} — same comparator, same accumulation order, so
    results are {e bit-identical} — that read inputs from an {!Evalbuf}
    ([vals] + [present], filled by the caller or {!Evalbuf.load_oblivious})
    and store the estimate into [dst.(di)]. A call passes only pointers
    and immediates and performs zero heap allocation; both properties
    are enforced by the test suite. Hot-path discipline: probability /
    coefficient validation is the caller's job (do it once per batch,
    not per key). *)
module Flat : sig
  val l_uniform_into : Coeffs.t -> Evalbuf.t -> dst:floatarray -> di:int -> unit
  (** {!l_uniform} on the outcome described by the buffer ([r] entries,
      [r = Coeffs.r]): 0 when nothing is sampled, else the coefficient
      form on the sorted determining vector. *)

  val general_into : General.t -> Evalbuf.t -> dst:floatarray -> di:int -> unit
  (** {!General.estimate} on the outcome described by the buffer:
      determining vector, sorting permutation, prefix-sum walk — all in
      scratch, with the prefix sums read from the table's flattened
      [2^r]-entry float array. *)
end

val u_r2 : outcome -> float
(** Symmetric [max^(U)], r = 2 (Section 4.2 final table). *)

val u_asym_r2 : outcome -> float
(** Asymmetric order-based [max^(Uas)], r = 2 (vectors (v,0) processed
    before (0,v)). *)

val var_l_r2 : probs:float array -> v:float array -> float
(** Exact variance of {!l_r2} on data [v] (by outcome enumeration). *)

val var_u_r2 : probs:float array -> v:float array -> float
val var_ht_r2 : probs:float array -> v:float array -> float
