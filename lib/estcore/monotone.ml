module P = Sampling.Outcome.Pps

(* --- lower-bound function machinery (generic monotone f) --- *)

type lb = { at : float -> float; breakpoints : float list }

let lstar ?tol lb ~u =
  if not (u > 0. && u <= 1.) then
    invalid_arg (Printf.sprintf "Monotone.lstar: seed %g outside (0,1]" u);
  let head = lb.at u /. u in
  let tail =
    if u < 1. then
      Numerics.Integrate.robust_pieces ?tol ~breakpoints:lb.breakpoints
        (fun x -> lb.at x /. (x *. x))
        u 1.
    else 0.
  in
  head -. tail

let guard ~site x =
  if Float.is_finite x && x >= 0. then x
  else begin
    let reason =
      if Float.is_finite x then
        Numerics.Robust.Invalid_input (Printf.sprintf "negative estimate %h" x)
      else Numerics.Robust.Non_finite "estimate"
    in
    Numerics.Robust.note_degradation ~site ~fallback:"zero"
      (Numerics.Robust.fail (Numerics.Robust.Other "monotone-lstar") reason);
    0.
  end

(* --- step trajectories --- *)

type steps = { xs : float array; ds : float array }

let total s =
  let acc = ref 0. in
  for t = Array.length s.ds - 1 downto 0 do
    acc := !acc +. s.ds.(t)
  done;
  !acc

let lb_of_steps s =
  let n = Array.length s.xs in
  {
    at =
      (fun x ->
        (* descending-t order: the same order [lstar_steps] and [total]
           accumulate in, so the three agree to the last bit. *)
        let acc = ref 0. in
        for t = n - 1 downto 0 do
          if s.xs.(t) >= x then acc := !acc +. s.ds.(t)
        done;
        !acc);
    breakpoints = Array.to_list s.xs;
  }

(* Σ δ_t/x_t, descending x — the telescoped lower-end integral: piece j
   of the seed line contributes f̲(u)/u − ∫_u^1 f̲/x² =
   Σ_{x_t ≥ u} δ_t/x_t, independent of where in the piece u fell. *)
let lstar_steps s =
  let acc = ref 0. in
  for t = Array.length s.xs - 1 downto 0 do
    acc := !acc +. (s.ds.(t) /. s.xs.(t))
  done;
  !acc

(* Merge coincident jump positions (equal entry points) so [xs] is
   strictly ascending; [pairs] arrives ascending. *)
let steps_of_ascending pairs =
  let n = List.length pairs in
  if n = 0 then { xs = [||]; ds = [||] }
  else begin
    let xs = Array.make n 0. and ds = Array.make n 0. in
    let m = ref 0 in
    List.iter
      (fun (x, d) ->
        if !m > 0 && Float.equal xs.(!m - 1) x then
          ds.(!m - 1) <- ds.(!m - 1) +. d
        else begin
          xs.(!m) <- x;
          ds.(!m) <- d;
          incr m
        end)
      pairs;
    { xs = Array.sub xs 0 !m; ds = Array.sub ds 0 !m }
  end

(* --- coordinated-outcome estimators --- *)

(* Entry point of a sampled entry: the largest seed that still samples
   it ([v ≥ u·τ*] ⇔ [u ≤ min(1, v/τ)] with τ the PPS threshold). *)
let[@inline always] entry_point v tau = Float.min 1. (v /. tau)

let value_exn (o : P.t) i =
  match o.values.(i) with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Monotone: unsampled slot %d after a presence check" i)

(* Sampled indices, insertion-sorted under the total order (entry point
   descending, index ascending) — the walk order the max trajectory is
   discovered in. Total, so any correct sort gives the same sequence;
   the Flat twin repeats the identical algorithm on its Bytes scratch. *)
let sorted_sampled (o : P.t) =
  let r = P.r o in
  let perm = Array.make (max r 1) 0 in
  let c = ref 0 in
  for i = 0 to r - 1 do
    match o.values.(i) with
    | Some _ ->
        perm.(!c) <- i;
        incr c
    | None -> ()
  done;
  let c = !c in
  for k = 1 to c - 1 do
    let j = perm.(k) in
    let aj = entry_point (value_exn o j) o.taus.(j) in
    let i = ref (k - 1) in
    let moving = ref true in
    while !moving && !i >= 0 do
      let p = perm.(!i) in
      let ap = entry_point (value_exn o p) o.taus.(p) in
      if ap < aj || (Float.equal ap aj && p > j) then begin
        perm.(!i + 1) <- perm.(!i);
        decr i
      end
      else moving := false
    done;
    perm.(!i + 1) <- j
  done;
  (perm, c)

let max_lstar (o : P.t) =
  let perm, c = sorted_sampled o in
  let acc = ref 0. and m = ref 0. in
  for k = 0 to c - 1 do
    let j = perm.(k) in
    let v = value_exn o j in
    if v > !m then begin
      acc := !acc +. ((v -. !m) /. entry_point v o.taus.(j));
      m := v
    end
  done;
  !acc

let max_steps (o : P.t) =
  let perm, c = sorted_sampled o in
  let jumps = ref [] and m = ref 0. in
  for k = 0 to c - 1 do
    let j = perm.(k) in
    let v = value_exn o j in
    if v > !m then begin
      jumps := (entry_point v o.taus.(j), v -. !m) :: !jumps;
      m := v
    end
  done;
  (* the walk ran entry points descending, so the reversal ascends *)
  steps_of_ascending !jumps

let min_lstar (o : P.t) =
  let r = P.r o in
  if r = 0 then 0.
  else begin
    let all = ref true in
    for i = 0 to r - 1 do
      match o.values.(i) with None -> all := false | Some _ -> ()
    done;
    if not !all then 0.
    else begin
      let mv = ref infinity and ma = ref 1. in
      for i = 0 to r - 1 do
        let v = value_exn o i in
        let a = entry_point v o.taus.(i) in
        if v < !mv then mv := v;
        if a < !ma then ma := a
      done;
      !mv /. !ma
    end
  end

let min_steps (o : P.t) =
  let r = P.r o in
  let all = ref (r > 0) in
  for i = 0 to r - 1 do
    match o.values.(i) with None -> all := false | Some _ -> ()
  done;
  if not !all then { xs = [||]; ds = [||] }
  else begin
    let mv = ref infinity and ma = ref 1. in
    for i = 0 to r - 1 do
      let v = value_exn o i in
      let a = entry_point v o.taus.(i) in
      if v < !mv then mv := v;
      if a < !ma then ma := a
    done;
    { xs = [| !ma |]; ds = [| !mv |] }
  end

let sum_lstar (o : P.t) =
  let r = P.r o in
  let acc = ref 0. in
  for i = 0 to r - 1 do
    match o.values.(i) with
    | Some v -> acc := !acc +. (v /. entry_point v o.taus.(i))
    | None -> ()
  done;
  !acc

let sum_steps (o : P.t) =
  let r = P.r o in
  let pairs = ref [] in
  for i = r - 1 downto 0 do
    match o.values.(i) with
    | Some v -> pairs := (entry_point v o.taus.(i), v) :: !pairs
    | None -> ()
  done;
  steps_of_ascending
    (List.sort (fun ((a : float), _) (b, _) -> Float.compare a b) !pairs)

(* --- allocation-free serving twins --- *)

(* Duplicates of [max_lstar]/[min_lstar] over an [Evalbuf]: values in
   [vals], presence in [present], the sort permutation in [perm] (entry
   indices as bytes), result stored into a caller slot. Same entry-point
   arithmetic, same total sort order, same accumulation sequence as the
   references — bit-identity is pinned by the test suite. [phi] (seeds)
   is never read: the closed forms are seed-free. *)
module Flat = struct
  let max_into ~(taus : float array) (buf : Evalbuf.t) ~(dst : floatarray) ~di
      =
    let r = Array.length taus in
    if r > Evalbuf.r_max buf then
      invalid_arg "Monotone.Flat.max_into: r exceeds r_max";
    let perm = buf.Evalbuf.perm in
    let vals = buf.Evalbuf.vals in
    let c = ref 0 in
    for i = 0 to r - 1 do
      if Bytes.unsafe_get buf.Evalbuf.present i <> '\000' then begin
        Bytes.unsafe_set perm !c (Char.unsafe_chr i);
        incr c
      end
    done;
    let c = !c in
    for k = 1 to c - 1 do
      let j = Char.code (Bytes.unsafe_get perm k) in
      let aj =
        entry_point (Float.Array.unsafe_get vals j) (Array.unsafe_get taus j)
      in
      let i = ref (k - 1) in
      let moving = ref true in
      while !moving && !i >= 0 do
        let p = Char.code (Bytes.unsafe_get perm !i) in
        let ap =
          entry_point (Float.Array.unsafe_get vals p) (Array.unsafe_get taus p)
        in
        if ap < aj || (Float.equal ap aj && p > j) then begin
          Bytes.unsafe_set perm (!i + 1) (Bytes.unsafe_get perm !i);
          decr i
        end
        else moving := false
      done;
      Bytes.unsafe_set perm (!i + 1) (Char.unsafe_chr j)
    done;
    let acc = ref 0. and m = ref 0. in
    for k = 0 to c - 1 do
      let j = Char.code (Bytes.unsafe_get perm k) in
      let v = Float.Array.unsafe_get vals j in
      if v > !m then begin
        acc := !acc +. ((v -. !m) /. entry_point v (Array.unsafe_get taus j));
        m := v
      end
    done;
    Float.Array.unsafe_set dst di !acc

  let min_into ~(taus : float array) (buf : Evalbuf.t) ~(dst : floatarray) ~di
      =
    let r = Array.length taus in
    if r > Evalbuf.r_max buf then
      invalid_arg "Monotone.Flat.min_into: r exceeds r_max";
    if r = 0 then Float.Array.unsafe_set dst di 0.
    else begin
      let all = ref true in
      for i = 0 to r - 1 do
        if Bytes.unsafe_get buf.Evalbuf.present i = '\000' then all := false
      done;
      if not !all then Float.Array.unsafe_set dst di 0.
      else begin
        let mv = ref infinity and ma = ref 1. in
        for i = 0 to r - 1 do
          let v = Float.Array.unsafe_get buf.Evalbuf.vals i in
          let a = entry_point v (Array.unsafe_get taus i) in
          if v < !mv then mv := v;
          if a < !ma then ma := a
        done;
        Float.Array.unsafe_set dst di (!mv /. !ma)
      end
    end
end
