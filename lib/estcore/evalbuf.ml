(* Reusable per-domain scratch for the allocation-free ("flat")
   evaluators. Allocated once per domain / chunk body, then threaded
   through every per-key evaluation: the evaluators read inputs from and
   write results into these buffers, so a call performs zero heap
   allocation on the classic (non-flambda) native compiler, where a
   float-returning call would box its result at the boundary. *)

type t = {
  vals : floatarray; (* per-entry inputs (sampled values, seeds, ...) *)
  phi : floatarray; (* determining-vector / sort scratch *)
  perm : Bytes.t; (* sorting permutation scratch, entry indices *)
  present : Bytes.t; (* per-entry presence flags, '\001' = sampled *)
  out : floatarray; (* result slots; slot 0 is the default target *)
}

let create ~r_max =
  if r_max < 1 then invalid_arg "Evalbuf.create: r_max must be >= 1";
  if r_max > 255 then invalid_arg "Evalbuf.create: r_max must be <= 255";
  {
    vals = Float.Array.make r_max 0.;
    phi = Float.Array.make r_max 0.;
    perm = Bytes.make r_max '\000';
    present = Bytes.make r_max '\000';
    out = Float.Array.make 1 0.;
  }

let r_max t = Float.Array.length t.vals
let result t = Float.Array.get t.out 0

let load_oblivious t (o : Sampling.Outcome.Oblivious.t) =
  let r = Array.length o.values in
  if r > r_max t then invalid_arg "Evalbuf.load_oblivious: r exceeds r_max";
  for i = 0 to r - 1 do
    match o.values.(i) with
    | Some v ->
        Float.Array.set t.vals i v;
        Bytes.set t.present i '\001'
    | None ->
        Float.Array.set t.vals i 0.;
        Bytes.set t.present i '\000'
  done

let load_pps t (o : Sampling.Outcome.Pps.t) =
  let r = Array.length o.values in
  if r > r_max t then invalid_arg "Evalbuf.load_pps: r exceeds r_max";
  for i = 0 to r - 1 do
    (* seeds ride in [phi]: the PPS evaluators read the seed only for
       unsampled entries, and never use [phi] as sort scratch. *)
    Float.Array.set t.phi i o.seeds.(i);
    match o.values.(i) with
    | Some v ->
        Float.Array.set t.vals i v;
        Bytes.set t.present i '\001'
    | None ->
        Float.Array.set t.vals i 0.;
        Bytes.set t.present i '\000'
  done
