module B = Sampling.Outcome.Binary

type outcome = B.t

let check_r2 (o : outcome) = if B.r o <> 2 then invalid_arg "Or_weighted: r = 2 only"

(* All three estimators are the Section 4.3 estimators transported through
   the outcome mapping of Section 5: apply the oblivious estimator to the
   mapped outcome. The closed-form tables in Section 5.1 are what this
   evaluates to; tests check the correspondence case by case. *)
let ht (o : outcome) =
  check_r2 o;
  Or_oblivious.ht (B.to_oblivious o)

let l (o : outcome) =
  check_r2 o;
  Or_oblivious.l_r2 (B.to_oblivious o)

let u (o : outcome) =
  check_r2 o;
  Or_oblivious.u_r2 (B.to_oblivious o)

(* Flattened binary known-seeds OR^(L) table, r = 2: the outcome key is
   the (below, sampled) indicator pair — 16 combinations — so a derived
   estimator flattens into 16 unboxed cells served by one load per key.
   Cells come from a machine-derived [Designer] table (the serving
   path's source of truth); combinations the derivation never reached
   (e.g. sampled without below) hold NaN and are never addressed by
   well-formed outcomes. *)
module Table = struct
  type t = { cells : floatarray }

  let[@inline] code ~b0 ~b1 ~s0 ~s1 =
    (if b0 then 1 else 0)
    lor (if b1 then 2 else 0)
    lor (if s0 then 4 else 0)
    lor if s1 then 8 else 0

  let of_estimator (est : (bool array * bool array) Designer.estimator) =
    let cells =
      Float.Array.init 16 (fun c ->
          let key =
            ( [| c land 1 <> 0; c land 2 <> 0 |],
              [| c land 4 <> 0; c land 8 <> 0 |] )
          in
          match Designer.lookup est key with
          | v -> v
          | exception Not_found -> Float.nan)
    in
    { cells }

  let cell t c = Float.Array.get t.cells c

  let eval_into t ~code ~(dst : floatarray) ~di =
    Float.Array.unsafe_set dst di (Float.Array.get t.cells code)

  let add_into t ~code (acc : floatarray) =
    Float.Array.unsafe_set acc 0
      (Float.Array.unsafe_get acc 0 +. Float.Array.get t.cells code)
end

let var_of est ~p1 ~p2 ~v = (Exact.binary ~probs:[| p1; p2 |] ~v est).Exact.var
let var_l ~p1 ~p2 ~v = var_of l ~p1 ~p2 ~v
let var_u ~p1 ~p2 ~v = var_of u ~p1 ~p2 ~v
let var_ht ~p1 ~p2 ~v = var_of ht ~p1 ~p2 ~v
