(** Horvitz–Thompson (inverse-probability) estimators (Section 2.2).

    The classic estimator for "all-or-nothing" outcomes: 0 when the
    quantity is not recoverable, [f(v)/Pr(recoverable)] when it is. For a
    single entry it is the minimum-variance unbiased nonnegative
    estimator; for multi-entry functions it is the baseline our L/U
    estimators dominate. *)

val single : p:float -> sampled:bool -> value:float -> float
(** Single-entry HT: [value/p] when sampled, else 0. *)

val single_variance : p:float -> value:float -> float
(** Eq. (1): [value² (1/p − 1)]. *)

val multi_oblivious : f:(float array -> float) -> Sampling.Outcome.Oblivious.t -> float
(** Multi-entry HT over weight-oblivious Poisson outcomes (Section 4):
    [f(v)/Π p_i] when all [r] entries are sampled, else 0. This is the
    optimal inverse-probability estimator for quantiles and range, and is
    Pareto optimal for [min] and for [RG] at r = 2. *)

val multi_oblivious_variance : probs:float array -> fv:float -> float
(** Eq. (10): [fv² (1/Π p_i − 1)]. *)

val max_oblivious : Sampling.Outcome.Oblivious.t -> float
(** [multi_oblivious] specialized to the maximum. *)

val min_oblivious : Sampling.Outcome.Oblivious.t -> float
(** Specialized to the minimum (Pareto optimal, Section 4). *)

val range_oblivious : Sampling.Outcome.Oblivious.t -> float
(** Specialized to the range max − min (Pareto optimal for r = 2). *)

val quantile_oblivious : l:int -> Sampling.Outcome.Oblivious.t -> float
(** Specialized to the [l]-th largest entry (1-indexed). *)

val max_pps : Sampling.Outcome.Pps.t -> float
(** The weighted known-seeds [max^(HT)] of Section 5.2: positive exactly
    on outcomes where [max_{i∉S} u_i·τ*_i ≤ max_{i∈S} v_i] (the maximum is
    then known to be the largest sampled value), with inverse probability
    [Π_i min(1, max_S v / τ*_i)]. Works for any r. *)

val max_pps_variance : taus:float array -> v:float array -> float
(** Closed-form variance of {!max_pps}: [max(v)² (1/Π min(1,max/τ_i) − 1)]
    (0 when [max(v) = 0]). *)

(** Allocation-free mirrors of {!max_pps} / {!max_oblivious}: inputs
    from an {!Evalbuf} (values in [vals], presence in [present], seeds
    in [phi] for the PPS variant), result stored into [dst.(di)].
    Bit-identical to the reference evaluators and zero-allocation per
    call — both enforced by the test suite. *)
module Flat : sig
  val max_pps_into :
    taus:float array -> Evalbuf.t -> dst:floatarray -> di:int -> unit

  val max_oblivious_into :
    probs:float array -> Evalbuf.t -> dst:floatarray -> di:int -> unit
end

val min_pps : Sampling.Outcome.Pps.t -> float
(** Weighted min estimator: positive only when all entries are sampled
    (the only outcomes determining the minimum), with probability
    [Π_i min(1, v_i/τ*_i)] — the optimal inverse-probability estimator for
    [min] with weighted sampling and unknown or known seeds. *)
