let build_system (problem : 'k Designer.problem) =
  (* Collect the union of outcome supports and index them. *)
  let index : ('k, int) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 0 in
  let keys = ref [] in
  List.iter
    (fun v ->
      List.iter
        (fun (p, k) ->
          if p > 0. && not (Hashtbl.mem index k) then begin
            Hashtbl.add index k !next;
            keys := k :: !keys;
            incr next
          end)
        (problem.Designer.dist v))
    problem.Designer.data;
  let n = !next in
  let rows =
    List.map
      (fun v ->
        let row = Array.make n 0. in
        List.iter
          (fun (p, k) ->
            if p > 0. then begin
              let i = Hashtbl.find index k in
              row.(i) <- row.(i) +. p
            end)
          (problem.Designer.dist v);
        (row, problem.Designer.f v))
      problem.Designer.data
  in
  let a = Array.of_list (List.map fst rows) in
  let b = Array.of_list (List.map snd rows) in
  (a, b, Array.of_list (List.rev !keys))

let exists problem =
  let a, b, _ = build_system problem in
  Numerics.Simplex.solve_eq_nonneg a b <> None

let find problem =
  let a, b, keys = build_system problem in
  match Numerics.Simplex.solve_eq_nonneg a b with
  | None -> None
  | Some x -> Some (Array.to_list (Array.mapi (fun i k -> (k, x.(i))) keys))

let or2 v = if v.(0) > 0.5 || v.(1) > 0.5 then 1. else 0.
let xor2 v = if (v.(0) > 0.5) <> (v.(1) > 0.5) then 1. else 0.

let or_unknown_seeds ~p1 ~p2 =
  exists (Designer.Problems.binary_unknown_seeds ~probs:[| p1; p2 |] ~f:or2 ())

let or_known_seeds ~p1 ~p2 =
  exists (Designer.Problems.binary_known_seeds ~probs:[| p1; p2 |] ~f:or2 ())

let xor_unknown_seeds ~p1 ~p2 =
  exists (Designer.Problems.binary_unknown_seeds ~probs:[| p1; p2 |] ~f:xor2 ())

let xor_known_seeds ~p1 ~p2 =
  exists (Designer.Problems.binary_known_seeds ~probs:[| p1; p2 |] ~f:xor2 ())

let lth_unknown_seeds ~r ~l ~p =
  if Array.length p <> r then invalid_arg "Existence.lth_unknown_seeds";
  if l < 1 || l > r then invalid_arg "Existence.lth_unknown_seeds: l out of range";
  let f v =
    let s = Array.copy v in
    Array.sort (fun a b -> Float.compare b a) s;
    s.(l - 1)
  in
  exists (Designer.Problems.binary_unknown_seeds ~probs:p ~f ())
