module P = Sampling.Outcome.Pps

type outcome = P.t

let check_r2 (o : outcome) =
  if P.r o <> 2 then invalid_arg "Max_pps: r = 2 only"

let determining_vector (o : outcome) =
  check_r2 o;
  match (o.values.(0), o.values.(1)) with
  | None, None -> [| 0.; 0. |]
  | Some v1, Some v2 -> [| v1; v2 |]
  | Some v1, None -> [| v1; Float.min (o.seeds.(1) *. o.taus.(1)) v1 |]
  | None, Some v2 -> [| Float.min (o.seeds.(0) *. o.taus.(0)) v2; v2 |]

(* Eq. (25): determining vector with two equal entries (v,v). [tau1] is
   the threshold of the entry listed first in the derivation; the
   expression is symmetric in the thresholds. *)
let equal_values_estimate ~tau1 ~tau2 v =
  if v <= 0. then 0.
  else begin
    let p1 = Float.min 1. (v /. tau1) in
    let p2 = Float.min 1. (v /. tau2) in
    v /. (p1 +. ((1. -. p1) *. p2))
  end

let estimate_det ~tau_hi ~tau_lo ~hi ~lo =
  if lo > hi then invalid_arg "Max_pps.estimate_det: lo > hi";
  if hi <= 0. then 0.
  else if hi = lo then equal_values_estimate ~tau1:tau_hi ~tau2:tau_lo hi
  else if lo >= tau_lo then
    (* Case v1 ≥ v2 ≥ τ2: eq. (26). *)
    lo +. ((hi -. lo) /. Float.min 1. (hi /. tau_hi))
  else if hi >= tau_hi then
    (* Case v1 ≥ τ1, v2 ≤ min(τ2, v1). *)
    hi
  else begin
    let t1 = tau_hi and t2 = tau_lo in
    let tt = t1 *. t2 in
    let s = t1 +. t2 in
    if hi <= t2 then
      (* Case v2 ≤ v1 ≤ min(τ1,τ2): eq. (29). Requires lo > 0, which holds
         for every achievable determining vector with hi > 0. *)
      (tt /. (s -. hi))
      +. (tt *. (t1 -. hi) /. (hi *. s)
         *. log ((s -. lo) *. hi /. (lo *. (s -. hi))))
      +. ((hi -. lo) *. tt *. (t1 -. hi) /. (hi *. (s -. lo) *. (s -. hi)))
    else
      (* Case v2 ≤ τ2 ≤ v1 ≤ τ1: eq. (30), with a correction. The paper's
         printed evaluation of ∫_{v−τ2}^{∆} dx/((s−v+x)²(v−x)) has a typo
         in the logarithm's argument: the correct antiderivative
         s⁻²·ln(y/(s−y)) − 1/(s·y) evaluated from y₀ = τ1 to y₁ = s − lo
         gives ln((s−lo)·τ2/(τ1·lo)), which satisfies the boundary
         condition g(v−τ2) = τ1+τ2−τ1τ2/v (the printed form does not).
         Unbiasedness of this corrected form is verified by seed-space
         quadrature in the tests. *)
      t1 +. t2 -. (tt /. hi)
      +. (tt *. (t1 -. hi) /. (hi *. s)
         *. log ((s -. lo) *. t2 /. (t1 *. lo)))
      +. (t2 *. (t1 -. hi) *. (t2 -. lo) /. ((s -. lo) *. hi))
  end

let l (o : outcome) =
  check_r2 o;
  let phi = determining_vector o in
  if phi.(0) >= phi.(1) then
    estimate_det ~tau_hi:o.taus.(0) ~tau_lo:o.taus.(1) ~hi:phi.(0) ~lo:phi.(1)
  else estimate_det ~tau_hi:o.taus.(1) ~tau_lo:o.taus.(0) ~hi:phi.(1) ~lo:phi.(0)

(* Allocation-free variant: inputs from an [Evalbuf] (values in [vals],
   presence in [present], seeds in [phi]), result stored into a caller
   slot. The closed forms are duplicated rather than called — a
   non-inlined float-returning call would box its result — and the
   duplication is pinned to [estimate_det]/[l] bit for bit by the test
   suite. *)
module Flat = struct
  (* [@inline always]: a direct call would box the four float arguments
     at the boundary; inlined into [l_into] they stay unboxed locals. *)
  let[@inline always] estimate_det_into ~tau_hi ~tau_lo ~hi ~lo
      (dst : floatarray) di =
    if lo > hi then invalid_arg "Max_pps.Flat: lo > hi";
    if hi <= 0. then Float.Array.unsafe_set dst di 0.
    else if hi = lo then
      (* Eq. (25), as in [equal_values_estimate]. *)
      if hi <= 0. then Float.Array.unsafe_set dst di 0.
      else begin
        let p1 = Float.min 1. (hi /. tau_hi) in
        let p2 = Float.min 1. (hi /. tau_lo) in
        Float.Array.unsafe_set dst di (hi /. (p1 +. ((1. -. p1) *. p2)))
      end
    else if lo >= tau_lo then
      (* Case v1 ≥ v2 ≥ τ2: eq. (26). *)
      Float.Array.unsafe_set dst di
        (lo +. ((hi -. lo) /. Float.min 1. (hi /. tau_hi)))
    else if hi >= tau_hi then
      (* Case v1 ≥ τ1, v2 ≤ min(τ2, v1). *)
      Float.Array.unsafe_set dst di hi
    else begin
      let t1 = tau_hi and t2 = tau_lo in
      let tt = t1 *. t2 in
      let s = t1 +. t2 in
      if hi <= t2 then
        (* Case v2 ≤ v1 ≤ min(τ1,τ2): eq. (29). *)
        Float.Array.unsafe_set dst di
          ((tt /. (s -. hi))
          +. (tt *. (t1 -. hi) /. (hi *. s)
             *. log ((s -. lo) *. hi /. (lo *. (s -. hi))))
          +. ((hi -. lo) *. tt *. (t1 -. hi) /. (hi *. (s -. lo) *. (s -. hi))))
      else
        (* Case v2 ≤ τ2 ≤ v1 ≤ τ1: eq. (30) with the corrected log (see
           [estimate_det]). *)
        Float.Array.unsafe_set dst di
          (t1 +. t2 -. (tt /. hi)
          +. (tt *. (t1 -. hi) /. (hi *. s)
             *. log ((s -. lo) *. t2 /. (t1 *. lo)))
          +. (t2 *. (t1 -. hi) *. (t2 -. lo) /. ((s -. lo) *. hi)))
    end

  let l_into ~(taus : float array) (buf : Evalbuf.t) ~(dst : floatarray) ~di =
    if Array.length taus <> 2 then invalid_arg "Max_pps.Flat.l_into: r = 2 only";
    let s0 = Bytes.unsafe_get buf.Evalbuf.present 0 <> '\000' in
    let s1 = Bytes.unsafe_get buf.Evalbuf.present 1 <> '\000' in
    let v0 = Float.Array.unsafe_get buf.Evalbuf.vals 0 in
    let v1 = Float.Array.unsafe_get buf.Evalbuf.vals 1 in
    let u0 = Float.Array.unsafe_get buf.Evalbuf.phi 0 in
    let u1 = Float.Array.unsafe_get buf.Evalbuf.phi 1 in
    let t0 = Array.unsafe_get taus 0 in
    let t1 = Array.unsafe_get taus 1 in
    (* [determining_vector], branch for branch. *)
    let phi0 = ref 0. and phi1 = ref 0. in
    (if s0 then
       if s1 then begin
         phi0 := v0;
         phi1 := v1
       end
       else begin
         phi0 := v0;
         phi1 := Float.min (u1 *. t1) v0
       end
     else if s1 then begin
       phi0 := Float.min (u0 *. t0) v1;
       phi1 := v1
     end);
    if !phi0 >= !phi1 then
      estimate_det_into ~tau_hi:t0 ~tau_lo:t1 ~hi:!phi0 ~lo:!phi1 dst di
    else estimate_det_into ~tau_hi:t1 ~tau_lo:t0 ~hi:!phi1 ~lo:!phi0 dst di
end

let var_l ?tol ~taus ~v () = (Exact.pps ?tol ~taus ~v l).Exact.var
let var_ht ~taus ~v = Ht.max_pps_variance ~taus ~v
