(** Exact moments of single-key estimators.

    For weight-oblivious and binary-weighted sampling the outcome space
    given the data is finite ([2^r] masks), so expectations and variances
    are computed by full enumeration. For weighted PPS sampling they are
    computed by piecewise adaptive quadrature over the seed hypercube
    (r ≤ 2). These are the ground-truth oracles used by the test suite
    and by the figure benchmarks (no Monte Carlo noise). *)

type moments = { mean : float; var : float }

val oblivious :
  probs:float array ->
  v:float array ->
  (Sampling.Outcome.Oblivious.t -> float) ->
  moments
(** Exact E and Var of an estimator under weight-oblivious Poisson
    sampling of data [v]. *)

val binary :
  probs:float array ->
  v:int array ->
  (Sampling.Outcome.Binary.t -> float) ->
  moments
(** Exact moments under binary weighted sampling with known seeds. *)

val pps :
  ?tol:float ->
  taus:float array ->
  v:float array ->
  (Sampling.Outcome.Pps.t -> float) ->
  moments
(** Moments under weighted PPS with known seeds, by seed-space quadrature
    (r ≤ 2). *)

val pps_r2_fast :
  ?cache_key:string ->
  taus:float array ->
  v:float array ->
  (Sampling.Outcome.Pps.t -> float) ->
  moments
(** Fast exact moments for r = 2 PPS estimators that depend on the seeds
    only through the {e unsampled} entries (true of [max^(L)], [max^(HT)]
    and [min^(HT)]). The seed square decomposes into four rectangles by
    the inclusion indicators; on each the estimate is a function of at
    most one seed, so the 2-D integral reduces to two 1-D piecewise
    Gauss–Legendre integrals plus constants. Roughly 100× faster than
    {!pps} — this is what makes the Figure 7 sweep (exact per-key
    variance over tens of thousands of keys) practical.

    [?cache_key] additionally memoizes the result on
    [(cache_key, taus, v)] in the shared ["exact.pps_r2"] cache, so
    sweeps that revisit data points (dominance grids, repeated panels)
    integrate each point once. The key must uniquely identify [est]
    (e.g. ["max_pps.l"]) — the closure itself cannot be hashed; a
    colliding key returns the other estimator's moments. *)

val monte_carlo :
  ?pool:Numerics.Pool.t ->
  ?master:int ->
  ?shards:int ->
  rng:Numerics.Prng.t ->
  n:int ->
  draw:(Numerics.Prng.t -> 'o) ->
  ('o -> float) ->
  moments
(** Monte-Carlo moments — used as a consistency cross-check and as the
    benchmark kernel.

    With neither [?pool] nor [?master]: the legacy sequential path, [n]
    draws from [rng]. Otherwise the {e sharded substream} path: trials
    are split over [?shards] (default 64, clamped to [n]) shards, shard
    [s] drawing from [Prng.substream ~master s] ([master] defaults to
    [0x5EED]; [rng] is unused) into its own accumulator; shard
    accumulators are merged left-to-right with {!Numerics.Stats.Acc.merge}.
    The result depends only on [(master, n, shards)] — a pool (any size)
    only changes wall-clock time, never the moments. *)

val dominates :
  ?pool:Numerics.Pool.t ->
  var_a:(float array -> float) -> var_b:(float array -> float) -> float array list -> bool
(** [dominates ~var_a ~var_b grid]: does estimator [a] have variance ≤ [b]
    (within 1e-9 relative) on every data vector of [grid]? *)
