(** Similarity / distance queries over coordinated samples.

    Every query here decomposes into the two monotone sum aggregates the
    {!Estcore.Monotone} L* engine estimates per key:

    - weighted union size [Σ_h max_i v_i(h)] — L* for [max];
    - weighted intersection size [Σ_h min_i v_i(h)] — L* for [min]
      (with [v_i(h) = 0] for keys absent from instance [i], so a key
      short of any instance truly contributes 0);
    - L1 difference [Σ_h |v_1(h) − v_2(h)| = union − intersection] for
      r = 2 (the Lp difference is not itself monotone — it is served as
      the difference of the two monotone estimates, so a single answer
      may be negative even though its expectation is not);
    - weighted Jaccard [Σ min / Σ max] — a ratio of the two unbiased
      sums (the ratio itself is consistent, not unbiased; both
      components are reported so nothing is hidden).

    Meaningful only under {e shared} seeds ({!Sampling.Seeds.Shared}):
    with independent seeds the joint inclusion law is a product, not a
    diagonal, and the L* forms are biased — the server refuses the
    query instead of serving it quietly. *)

type sums = {
  union_hat : float;  (** [Σ_h] L*-max — the weighted union estimate *)
  inter_hat : float;
      (** [Σ_h] L*-min — the weighted intersection estimate *)
}

val sums :
  Sum_agg.pps_samples -> select:(int -> bool) -> sums
(** Reference path: {!Sum_agg.estimate} with
    {!Estcore.Monotone.max_lstar} / {!Estcore.Monotone.min_lstar}, each
    per-key value through {!Estcore.Monotone.guard} (sites
    ["similarity.union"], ["similarity.intersection"]). The oracle the
    bit-identity tests hold the serving path to. *)

val sums_flat :
  Sum_agg.pps_samples -> select:(int -> bool) -> sums
(** Serving path: one columnar cursor-merge walk over the union keys (in
    the {!Sum_agg.estimate_flat} mold), both per-key estimates through
    the {!Estcore.Monotone.Flat} store-into twins and the same guard.
    The L* closed forms never read seeds, so — unlike
    {!Sum_agg.estimate_flat} — the walk computes none, and a per-key
    evaluation allocates nothing at all. Bit-identical to {!sums}: same
    ascending union-key order, same left-to-right accumulation, twin
    evaluators (asserted by the test suite). *)

val jaccard : sums -> float
(** [inter_hat / union_hat], 0 when the union estimate is not positive.
    Unclamped: a value outside [\[0,1\]] is possible (both components
    are unbiased, their ratio is not) and more honest than hiding it. *)

val l1 : sums -> float
(** [union_hat − inter_hat]. *)
