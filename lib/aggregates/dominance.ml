let max_dominance_l samples ~select =
  Sum_agg.estimate samples ~est:Estcore.Max_pps.l ~select

let max_dominance_ht samples ~select =
  Sum_agg.estimate samples ~est:Estcore.Ht.max_pps ~select

let min_dominance_ht samples ~select =
  Sum_agg.estimate samples ~est:Estcore.Ht.min_pps ~select

let max_dominance_coordinated samples ~select =
  Sum_agg.estimate samples ~est:Estcore.Coordinated.max_ht ~select

let exact_variance_coordinated ~taus ~instances ~select =
  Sum_agg.exact_variance ~taus ~instances ~select ~moments:(fun ~taus ~v ->
      Estcore.Coordinated.moments ~taus ~v Estcore.Coordinated.max_ht)

let exact_variances ~taus ~instances ~select =
  let var_ht =
    Sum_agg.exact_variance ~taus ~instances ~select ~moments:(fun ~taus ~v ->
        {
          Estcore.Exact.mean = Array.fold_left Float.max 0. v;
          var = Estcore.Ht.max_pps_variance ~taus ~v;
        })
  in
  let var_l =
    Sum_agg.exact_variance ~taus ~instances ~select ~moments:(fun ~taus ~v ->
        Estcore.Exact.pps_r2_fast ~cache_key:"max_pps.l" ~taus ~v
          Estcore.Max_pps.l)
  in
  (var_ht, var_l)

let normalized_variance ~var ~truth = var /. (truth *. truth)
