module I = Sampling.Instance

type t = { insts : I.t array }

let create l = { insts = Array.of_list l }

let load ~paths =
  create (List.map (fun path -> Sampling.Io.read_instance ~path) paths)
let instances t = Array.to_list t.insts
let num_instances t = Array.length t.insts
let instance t i = t.insts.(i)
let keys t = I.union_keys (instances t)
let values t h = I.values_of_key (instances t) h

let sum_aggregate t ~f ~select =
  List.fold_left
    (fun acc h -> if select h then acc +. f (values t h) else acc)
    0. (keys t)

let all _ = true

let max_dominance ?(select = all) t =
  sum_aggregate t ~select ~f:(Array.fold_left Float.max 0.)

let min_dominance ?(select = all) t =
  sum_aggregate t ~select ~f:(Array.fold_left Float.min infinity)

let distinct_count ?(select = all) t =
  List.length (List.filter select (keys t))

let l1_distance t i j = I.l1_distance t.insts.(i) t.insts.(j)

module Figure5 = struct
  (* Figure 5(A): rows = instances 1..3, columns = keys 1..6. *)
  let matrix =
    [|
      [| 15.; 0.; 10.; 5.; 10.; 10. |];
      [| 20.; 10.; 12.; 20.; 0.; 10. |];
      [| 10.; 15.; 15.; 0.; 15.; 10. |];
    |]

  let dataset =
    create
      (Array.to_list
         (Array.map
            (fun row ->
              I.of_assoc (List.init 6 (fun j -> (j + 1, row.(j)))))
            matrix))

  let seeds_u =
    [ (1, 0.22); (2, 0.75); (3, 0.07); (4, 0.92); (5, 0.55); (6, 0.37) ]

  let independent_u =
    [
      (1, [| 0.22; 0.47; 0.63 |]);
      (2, [| 0.75; 0.58; 0.92 |]);
      (3, [| 0.07; 0.71; 0.08 |]);
      (4, [| 0.92; 0.84; 0.59 |]);
      (5, [| 0.55; 0.25; 0.32 |]);
      (6, [| 0.37; 0.32; 0.80 |]);
    ]

  let pps_rank u v = if v = 0. then infinity else u /. v

  let shared_ranks () =
    List.map
      (fun (h, u) ->
        (h, Array.init 3 (fun i -> pps_rank u matrix.(i).(h - 1))))
      seeds_u

  let independent_ranks () =
    List.map
      (fun (h, us) ->
        (h, Array.init 3 (fun i -> pps_rank us.(i) matrix.(i).(h - 1))))
      independent_u

  let bottom3 ~ranks ~instance =
    ranks
    |> List.map (fun (h, rs) -> (rs.(instance), h))
    |> List.sort (fun ((r1 : float), k1) (r2, k2) ->
           match Float.compare r1 r2 with 0 -> Int.compare k1 k2 | c -> c)
    |> List.filteri (fun i _ -> i < 3)
    |> List.map snd
end
