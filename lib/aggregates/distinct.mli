(** Distinct-count estimation over two independently sampled binary
    instances with known seeds (Section 8.1).

    [D_A = |(N₁ ∪ N₂) ∩ A|] is the sum aggregate of OR. Sampled keys are
    categorized by what the outcome reveals (p_i is instance i's sampling
    probability, u_i(h) its recomputable seed):

    - [F1?]: in S₁, u₂ > p₂ (membership in N₂ unknown)
    - [F?1]: in S₂, u₁ > p₁
    - [F11]: in both samples
    - [F10]: in S₁, u₂ ≤ p₂ (so h ∉ N₂)
    - [F01]: in S₂, u₁ ≤ p₁

    The HT estimate uses only F11 ∪ F10 ∪ F01; the L estimate (per-key
    OR^(L)) uses all five classes and needs a factor ~2 fewer samples for
    the same accuracy (Figure 6). *)

type classes = { f1q : int; fq1 : int; f11 : int; f10 : int; f01 : int }

val classify :
  ?ids:int * int ->
  Sampling.Seeds.t ->
  p1:float ->
  p2:float ->
  s1:int list ->
  s2:int list ->
  select:(int -> bool) ->
  classes
(** Categorize the sampled keys (S₁, S₂ as key lists) that pass
    [select]. [ids] (default [(0, 1)]) are the instance ids the two
    samples were drawn under — seeds are recomputed at those ids, so
    samples of instances other than 0 and 1 (e.g. live server instances)
    classify correctly under [Independent] seeds. *)

val sample_binary :
  Sampling.Seeds.t ->
  p:float ->
  instance:int ->
  Sampling.Instance.t ->
  int list
(** Weighted Poisson sample of a binary instance: keys of the support
    with [u_instance(h) ≤ p]. *)

val sample_binary_bottom_k :
  Sampling.Seeds.t ->
  k:int ->
  instance:int ->
  Sampling.Instance.t ->
  int list * float
(** Bottom-k sample of a binary instance (the k keys of smallest seed)
    together with the effective inclusion probability [p] = the
    (k+1)-smallest seed — Section 8.1's recipe for using the Section 5.1
    estimators with fixed-size samples ([p = 1] when the support has at
    most [k] keys). Feed the result to {!classify} as the sample and its
    [p_i]. *)

val ht_estimate : classes -> p1:float -> p2:float -> float
(** [|F11 ∪ F10 ∪ F01| / (p₁p₂)]. *)

val l_estimate : classes -> p1:float -> p2:float -> float
(** Section 8.1's D̂_A^(L). *)

val u_estimate : classes -> p1:float -> p2:float -> float
(** Per-key OR^(U) summed — the companion estimator (not tabulated in the
    paper's Section 8.1 but immediate from Section 5.1). *)

val var_ht : d:float -> p1:float -> p2:float -> float
(** [d(1/(p₁p₂) − 1)] where [d = D_A]. *)

val var_l : d:float -> jaccard:float -> p1:float -> p2:float -> float
(** [d·J·Var[OR^(L)|(1,1)] + d(1−J)·Var[OR^(L)|(1,0)]]. *)

val var_u : d:float -> jaccard:float -> p1:float -> p2:float -> float

val coordinated_estimate : p:float -> s1:int list -> s2:int list -> select:(int -> bool) -> float
(** Distinct count from {e coordinated} samples with a common sampling
    probability [p] (shared seed per key, e.g. [Sampling.Seeds.Shared]):
    every key of the union is sampled somewhere iff its shared seed is
    [≤ p], so [|S₁ ∪ S₂ ∩ select| / p] is the optimal
    inverse-probability estimate. *)

val var_coordinated : d:float -> p:float -> float
(** [d(1/p − 1)] — per-key Bernoulli(p); compare with {!var_l} and
    {!var_ht} to quantify the benefit of coordination (§7.2). *)

val cv_of_variance : d:float -> var:float -> float
(** Coefficient of variation [√var / d]. *)

(** Distinct counts across r ≥ 2 instances — an extension enabled by the
    general Theorem 4.1 solver ({!Estcore.Max_oblivious.General}): the
    per-key OR^(L) estimate for any number of independently sampled
    periods, through the Section 5 binary outcome mapping. *)
module Multi : sig
  type t
  (** Precomputed OR^(L) coefficients for a probability vector. *)

  val create : probs:float array -> t

  val estimate :
    ?ids:int array ->
    t ->
    Sampling.Seeds.t ->
    samples:int list array ->
    select:(int -> bool) ->
    float
  (** [estimate t seeds ~samples ~select]: unbiased estimate of the
      number of distinct selected keys across the r instances, from their
      r independent weighted samples (key lists) and the recomputable
      seeds. Keys sampled nowhere contribute 0 (as they must). [ids]
      (default [[|0; …; r−1|]]) are the instance ids the samples were
      drawn under. *)

  val ht_estimate :
    ?ids:int array ->
    probs:float array ->
    Sampling.Seeds.t ->
    samples:int list array ->
    select:(int -> bool) ->
    float
  (** The HT baseline: a key counts [1/Π p_i] iff its seed is below [p_i]
      in every instance and it is sampled somewhere. *)

  val exact_variance : t -> memberships:bool array array -> float
  (** Exact variance of {!estimate} for a key universe given as
      membership rows (keys × instances): per-pattern enumeration of the
      seed-class outcomes, summed over patterns. *)
end

(** Figure 6 machinery: the sampling probability / expected sample size
    required to reach a target coefficient of variation, for instances of
    size n with Jaccard coefficient J (so the union has
    [N = 2n/(1+J)] keys). *)
module Required : sig
  val union_size : n:float -> jaccard:float -> float

  val p_ht : n:float -> jaccard:float -> cv:float -> float
  (** Closed form [1/√(1 + cv²·N)] (capped at 1). *)

  val p_l : n:float -> jaccard:float -> cv:float -> float
  (** By bisection on the exact variance formula. *)

  val sample_size : p:float -> n:float -> float
  (** Expected per-instance sample size [s = p·n]. *)
end
