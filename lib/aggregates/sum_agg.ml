module P = Sampling.Poisson
module O = Sampling.Outcome.Pps

type pps_samples = {
  seeds : Sampling.Seeds.t;
  taus : float array;
  samples : P.pps array;
}

let sample_pps seeds ~taus instances =
  let samples =
    List.mapi
      (fun i inst -> P.pps_sample seeds ~instance:i ~tau:taus.(i) inst)
      instances
  in
  { seeds; taus; samples = Array.of_list samples }

let sample_priority seeds ~k instances =
  let samples =
    List.mapi
      (fun i inst ->
        let bk =
          Sampling.Bottom_k.sample seeds ~family:Sampling.Rank.PPS ~instance:i
            ~k inst
        in
        (* rank < τ_rank  ⇔  u/v < τ_rank  ⇔  v ≥ u·(1/τ_rank):
           the (k+1)-smallest rank is a PPS threshold τ* = 1/τ_rank. An
           infinite rank threshold (≤ k keys) means every key is sampled
           with probability 1; a tiny positive τ* encodes that while
           keeping the PPS algebra well defined. *)
        let tau =
          if bk.Sampling.Bottom_k.threshold = infinity then 1e-300
          else 1. /. bk.Sampling.Bottom_k.threshold
        in
        {
          P.instance_id = i;
          tau;
          entries =
            List.sort
              (fun (k1, (v1 : float)) (k2, v2) ->
                match Int.compare k1 k2 with
                | 0 -> Float.compare v1 v2
                | c -> c)
              (List.map
                 (fun e -> (e.Sampling.Bottom_k.key, e.Sampling.Bottom_k.value))
                 bk.Sampling.Bottom_k.entries);
        })
      instances
  in
  { seeds; taus = Array.of_list (List.map (fun s -> s.P.tau) samples);
    samples = Array.of_list samples }

let of_summaries seeds summaries =
  let samples =
    Array.mapi
      (fun i s ->
        match Sampling.Summary.threshold s with
        | None ->
            invalid_arg
              "Sum_agg.of_summaries: summary exposes no PPS threshold"
        | Some tau ->
            {
              P.instance_id = i;
              tau;
              entries = Sampling.Summary.entries s;
            })
      summaries
  in
  {
    seeds;
    taus = Array.map (fun s -> s.P.tau) samples;
    samples;
  }

let key_outcome t h =
  let r = Array.length t.samples in
  let values =
    Array.init r (fun i -> List.assoc_opt h t.samples.(i).P.entries)
  in
  let seeds =
    (* Recompute each seed at the sample's *recorded* instance id, not its
       array position: a caller may assemble samples of instances 3 and 7,
       and under Independent seeds position-based recomputation would pair
       the sampled values with the wrong seeds. *)
    Array.init r (fun i ->
        Sampling.Seeds.seed t.seeds ~instance:t.samples.(i).P.instance_id
          ~key:h)
  in
  { O.taus = t.taus; seeds; values }

module ISet = Set.Make (Int)

let sampled_keys t =
  Array.fold_left
    (fun acc (s : P.pps) ->
      List.fold_left (fun acc (h, _) -> ISet.add h acc) acc s.P.entries)
    ISet.empty t.samples
  |> ISet.elements

let estimate t ~est ~select =
  List.fold_left
    (fun acc h -> if select h then acc +. est (key_outcome t h) else acc)
    0. (sampled_keys t)

module EB = Estcore.Evalbuf

(* Allocation-free estimate loop (the serving hot path). The samples are
   flattened once into per-instance (ascending key, unboxed value)
   columns; each union key is then assembled into an {!Estcore.Evalbuf}
   by cursor merge instead of [key_outcome]'s three fresh arrays and
   [List.assoc_opt] walks, and the per-key estimate goes through the
   store-into flat evaluators. Per key the only allocations left are the
   boxed floats [Seeds.seed] returns. Bit-identical to {!estimate} with
   the corresponding reference estimator: same ascending union-key
   order, same seed recomputation at recorded instance ids, same
   left-to-right accumulation, and evaluators that mirror the reference
   closed forms operation for operation (enforced by the test suite).
   The entry columns are stable-sorted by key, so a duplicated key
   resolves to its first binding — exactly [List.assoc_opt]'s answer. *)
let estimate_flat t ~est ~select =
  let r = Array.length t.samples in
  let buf = EB.create ~r_max:(max r 1) in
  let sorted =
    Array.map
      (fun (s : P.pps) ->
        List.stable_sort
          (fun ((a : int), _) (b, _) -> Int.compare a b)
          s.P.entries)
      t.samples
  in
  let keys = Array.map (fun l -> Array.of_list (List.map fst l)) sorted in
  let vals = Array.map (fun l -> Float.Array.of_list (List.map snd l)) sorted in
  let cursors = Array.make (max r 1) 0 in
  let acc = Float.Array.make 1 0. in
  List.iter
    (fun h ->
      if select h then begin
        for i = 0 to r - 1 do
          Float.Array.set buf.EB.phi i
            (Sampling.Seeds.seed t.seeds
               ~instance:t.samples.(i).P.instance_id ~key:h);
          let ks = keys.(i) in
          let n = Array.length ks in
          let c = ref cursors.(i) in
          while !c < n && Array.unsafe_get ks !c < h do
            incr c
          done;
          cursors.(i) <- !c;
          if !c < n && Array.unsafe_get ks !c = h then begin
            Float.Array.set buf.EB.vals i (Float.Array.get vals.(i) !c);
            Bytes.set buf.EB.present i '\001'
          end
          else begin
            Float.Array.set buf.EB.vals i 0.;
            Bytes.set buf.EB.present i '\000'
          end
        done;
        (match est with
        | `Max_l ->
            Estcore.Max_pps.Flat.l_into ~taus:t.taus buf ~dst:buf.EB.out ~di:0
        | `Max_ht ->
            Estcore.Ht.Flat.max_pps_into ~taus:t.taus buf ~dst:buf.EB.out
              ~di:0);
        Float.Array.set acc 0
          (Float.Array.get acc 0 +. Float.Array.get buf.EB.out 0)
      end)
    (sampled_keys t);
  Float.Array.get acc 0

let exact_variance ~taus ~instances ~moments ~select =
  List.fold_left
    (fun acc h ->
      if select h then begin
        let v = Sampling.Instance.values_of_key instances h in
        acc +. (moments ~taus ~v).Estcore.Exact.var
      end
      else acc)
    0.
    (Sampling.Instance.union_keys instances)
