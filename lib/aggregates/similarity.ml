module M = Estcore.Monotone
module EB = Estcore.Evalbuf

type sums = { union_hat : float; inter_hat : float }

let site_union = "similarity.union"
let site_inter = "similarity.intersection"

let sums t ~select =
  let union_hat =
    Sum_agg.estimate t
      ~est:(fun o -> M.guard ~site:site_union (M.max_lstar o))
      ~select
  in
  let inter_hat =
    Sum_agg.estimate t
      ~est:(fun o -> M.guard ~site:site_inter (M.min_lstar o))
      ~select
  in
  { union_hat; inter_hat }

(* One cursor-merge walk computing both sums — the serving hot path,
   mirroring {!Sum_agg.estimate_flat}'s columnar layout. The monotone
   closed forms read only values/presence/thresholds, so no per-key
   seeds are recomputed (the one allocation the max/or flat loops still
   pay); bit-identity to {!sums} holds because both walk the same
   ascending union keys and accumulate the same guarded per-key values
   left to right, with twin evaluators underneath. *)
let sums_flat t ~select =
  let r = Array.length t.Sum_agg.samples in
  let buf = EB.create ~r_max:(max r 1) in
  let sorted =
    Array.map
      (fun (s : Sampling.Poisson.pps) ->
        List.stable_sort
          (fun ((a : int), _) (b, _) -> Int.compare a b)
          s.Sampling.Poisson.entries)
      t.Sum_agg.samples
  in
  let keys = Array.map (fun l -> Array.of_list (List.map fst l)) sorted in
  let vals = Array.map (fun l -> Float.Array.of_list (List.map snd l)) sorted in
  let cursors = Array.make (max r 1) 0 in
  let acc = Float.Array.make 2 0. in
  let out = Float.Array.make 1 0. in
  List.iter
    (fun h ->
      if select h then begin
        for i = 0 to r - 1 do
          let ks = keys.(i) in
          let n = Array.length ks in
          let c = ref cursors.(i) in
          while !c < n && Array.unsafe_get ks !c < h do
            incr c
          done;
          cursors.(i) <- !c;
          if !c < n && Array.unsafe_get ks !c = h then begin
            Float.Array.set buf.EB.vals i (Float.Array.get vals.(i) !c);
            Bytes.set buf.EB.present i '\001'
          end
          else begin
            Float.Array.set buf.EB.vals i 0.;
            Bytes.set buf.EB.present i '\000'
          end
        done;
        M.Flat.max_into ~taus:t.Sum_agg.taus buf ~dst:out ~di:0;
        Float.Array.set acc 0
          (Float.Array.get acc 0
          +. M.guard ~site:site_union (Float.Array.get out 0));
        M.Flat.min_into ~taus:t.Sum_agg.taus buf ~dst:out ~di:0;
        Float.Array.set acc 1
          (Float.Array.get acc 1
          +. M.guard ~site:site_inter (Float.Array.get out 0))
      end)
    (Sum_agg.sampled_keys t);
  { union_hat = Float.Array.get acc 0; inter_hat = Float.Array.get acc 1 }

let jaccard s = if s.union_hat > 0. then s.inter_hat /. s.union_hat else 0.
let l1 s = s.union_hat -. s.inter_hat
