(** Sum-aggregate estimation from per-instance samples (Section 7).

    A sum aggregate [Σ_{h ∈ select} f(v(h))] is estimated by summing
    per-key estimates; only keys that appear in at least one sample can
    contribute (every estimator assigns 0 to the empty outcome), so the
    estimator runs over the samples, never the raw data. Seeds are
    recomputed from the {!Sampling.Seeds.t} — the "known seeds" model. *)

type pps_samples = {
  seeds : Sampling.Seeds.t;
  taus : float array;
  samples : Sampling.Poisson.pps array;  (** one per instance *)
}

val sample_pps :
  Sampling.Seeds.t -> taus:float array -> Sampling.Instance.t list -> pps_samples
(** Draw independent (or shared-seed, per the seeds mode) PPS samples of
    each instance. *)

val sample_priority :
  Sampling.Seeds.t -> k:int -> Sampling.Instance.t list -> pps_samples
(** Bottom-k sampling with PPS ranks ({e priority sampling}) of each
    instance, exposed through the same interface: the (k+1)-smallest rank
    [τ_rank] of instance [i] acts — by rank conditioning (Section 7.1) —
    as a fixed PPS threshold [τ*_i = 1/τ_rank], since
    [rank < τ_rank ⇔ v ≥ u/τ_rank]. All per-key estimators then apply
    unchanged; this is the "results are the same for priority sampling"
    statement under Figure 7. Instances with at most [k] keys get
    [τ* = 0⁺] semantics via an infinite rank threshold (every key
    sampled, inclusion probability 1), represented by a tiny [τ*]. *)

val of_summaries :
  Sampling.Seeds.t -> Sampling.Summary.t array -> pps_samples
(** Assemble the multi-instance view from per-instance {!Sampling.Summary}
    values (one per instance, in instance order). Every summary must
    expose a PPS threshold (Poisson or bottom-k with PPS ranks); raises
    [Invalid_argument] otherwise (EXP-rank bottom-k and VarOpt do not
    support the known-seeds estimators). *)

val key_outcome : pps_samples -> int -> Sampling.Outcome.Pps.t
(** Estimator-side reconstruction of the single-key outcome of [h]:
    sampled values read from the samples, seeds recomputed at each
    sample's recorded [instance_id] (so samples of arbitrary instances —
    not just 0..r−1 — pair with the right seeds). *)

val sampled_keys : pps_samples -> int list
(** Union of sampled keys, ascending. *)

val estimate :
  pps_samples ->
  est:(Sampling.Outcome.Pps.t -> float) ->
  select:(int -> bool) ->
  float
(** [Σ_{h ∈ select ∩ sampled} est(outcome h)]. Unbiased for the sum
    aggregate when [est] is unbiased per key. *)

val estimate_flat :
  pps_samples ->
  est:[ `Max_l | `Max_ht ] ->
  select:(int -> bool) ->
  float
(** {!estimate} through the allocation-free flat evaluators
    ({!Estcore.Max_pps.Flat.l_into} / {!Estcore.Ht.Flat.max_pps_into}):
    samples are flattened once into per-instance ascending-key columns,
    each union key is assembled into a reused {!Estcore.Evalbuf} by
    cursor merge, and per-key evaluation allocates nothing beyond the
    boxed seeds. Bit-identical to {!estimate} with the corresponding
    reference estimator (asserted by the test suite). *)

val exact_variance :
  taus:float array ->
  instances:Sampling.Instance.t list ->
  moments:(taus:float array -> v:float array -> Estcore.Exact.moments) ->
  select:(int -> bool) ->
  float
(** [Σ_{h ∈ select} Var[est | v(h)]] — the exact variance of {!estimate}
    under independent sampling (per-key estimates are independent, so
    variances add). [moments] supplies per-key moments (e.g.
    {!Estcore.Exact.pps_r2_fast} partially applied to the estimator). *)
