type classes = { f1q : int; fq1 : int; f11 : int; f10 : int; f01 : int }

module ISet = Set.Make (Int)

let classify ?(ids = (0, 1)) seeds ~p1 ~p2 ~s1 ~s2 ~select =
  let id1, id2 = ids in
  let set1 = ISet.of_list s1 and set2 = ISet.of_list s2 in
  let acc = ref { f1q = 0; fq1 = 0; f11 = 0; f10 = 0; f01 = 0 } in
  ISet.iter
    (fun h ->
      if select h then begin
        let in1 = ISet.mem h set1 and in2 = ISet.mem h set2 in
        let u1 = Sampling.Seeds.seed seeds ~instance:id1 ~key:h in
        let u2 = Sampling.Seeds.seed seeds ~instance:id2 ~key:h in
        let c = !acc in
        acc :=
          (if in1 && in2 then { c with f11 = c.f11 + 1 }
           else if in1 then
             if u2 <= p2 then { c with f10 = c.f10 + 1 }
             else { c with f1q = c.f1q + 1 }
           else if u1 <= p1 then { c with f01 = c.f01 + 1 }
           else { c with fq1 = c.fq1 + 1 })
      end)
    (ISet.union set1 set2);
  !acc

let sample_binary seeds ~p ~instance inst =
  Sampling.Instance.fold
    (fun h _ acc ->
      if Sampling.Seeds.seed seeds ~instance ~key:h <= p then h :: acc else acc)
    inst []
  |> List.rev

let sample_binary_bottom_k seeds ~k ~instance inst =
  let seeded =
    Sampling.Instance.fold
      (fun h _ acc -> (Sampling.Seeds.seed seeds ~instance ~key:h, h) :: acc)
      inst []
    |> List.sort (fun ((u1 : float), k1) (u2, k2) ->
           match Float.compare u1 u2 with 0 -> Int.compare k1 k2 | c -> c)
  in
  let rec take n = function
    | [] -> ([], 1.)
    | (u, h) :: rest ->
        if n = 0 then ([], u)
        else
          let kept, p = take (n - 1) rest in
          (h :: kept, p)
  in
  let keys, p = take k seeded in
  (List.sort Int.compare keys, p)

let ht_estimate c ~p1 ~p2 =
  float_of_int (c.f11 + c.f10 + c.f01) /. (p1 *. p2)

let l_estimate c ~p1 ~p2 =
  let q = p1 +. p2 -. (p1 *. p2) in
  (float_of_int (c.f1q + c.fq1 + c.f11) /. q)
  +. (float_of_int c.f10 /. (p1 *. q))
  +. (float_of_int c.f01 /. (p2 *. q))

let u_estimate c ~p1 ~p2 =
  let cc = 1. +. Float.max 0. (1. -. p1 -. p2) in
  (* Per-key OR^(U) values by class (through the Section 5 mapping):
     F1? : sampled=(1,0), below=(1,0) → oblivious S={1}, v=1   → 1/(p1·cc)
     F?1 : symmetric                                            → 1/(p2·cc)
     F11 : S={1,2}, v=(1,1) → (1 − (2−p1−p2)/cc)/(p1p2)
     F10 : S={1,2}, v=(1,0) → (1 − (1−p2)/cc)/(p1p2)
     F01 : S={1,2}, v=(0,1) → (1 − (1−p1)/cc)/(p1p2) *)
  (float_of_int c.f1q /. (p1 *. cc))
  +. (float_of_int c.fq1 /. (p2 *. cc))
  +. (float_of_int c.f11 *. ((1. -. ((2. -. p1 -. p2) /. cc)) /. (p1 *. p2)))
  +. (float_of_int c.f10 *. ((1. -. ((1. -. p2) /. cc)) /. (p1 *. p2)))
  +. (float_of_int c.f01 *. ((1. -. ((1. -. p1) /. cc)) /. (p1 *. p2)))

let var_ht ~d ~p1 ~p2 = d *. ((1. /. (p1 *. p2)) -. 1.)

let var_l ~d ~jaccard ~p1 ~p2 =
  let v11 = Estcore.Or_oblivious.var_l_11 ~p1 ~p2 in
  let v10 = Estcore.Or_oblivious.var_l_10 ~p1 ~p2 in
  d *. ((jaccard *. v11) +. ((1. -. jaccard) *. v10))

let coordinated_estimate ~p ~s1 ~s2 ~select =
  let u = ISet.union (ISet.of_list s1) (ISet.of_list s2) in
  float_of_int (ISet.cardinal (ISet.filter select u)) /. p

let var_coordinated ~d ~p = d *. ((1. /. p) -. 1.)

let var_u ~d ~jaccard ~p1 ~p2 =
  let v11 = Estcore.Or_oblivious.var_u_11 ~p1 ~p2 in
  let v10 = Estcore.Or_oblivious.var_u_10 ~p1 ~p2 in
  d *. ((jaccard *. v11) +. ((1. -. jaccard) *. v10))

let cv_of_variance ~d ~var = sqrt var /. d

module Multi = struct
  type t = { probs : float array; general : Estcore.Max_oblivious.General.t }

  let create ~probs =
    { probs; general = Estcore.Max_oblivious.General.create ~probs }

  (* Per-key outcome through the Section 5 mapping: entry i is
     "obliviously sampled" iff u_i ≤ p_i, with value 1 when the key is in
     sample i and 0 otherwise. *)
  let key_outcome t seeds ~ids ~sets h =
    let r = Array.length t.probs in
    let values =
      Array.init r (fun i ->
          if ISet.mem h sets.(i) then Some 1.
          else if
            Sampling.Seeds.seed seeds ~instance:ids.(i) ~key:h <= t.probs.(i)
          then Some 0.
          else None)
    in
    { Sampling.Outcome.Oblivious.probs = t.probs; values }

  let union_of samples =
    Array.fold_left
      (fun acc s -> ISet.union acc (ISet.of_list s))
      ISet.empty samples

  let estimate ?ids t seeds ~samples ~select =
    if Array.length samples <> Array.length t.probs then
      invalid_arg "Distinct.Multi.estimate: arity mismatch";
    let ids =
      match ids with
      | Some ids -> ids
      | None -> Array.init (Array.length t.probs) Fun.id
    in
    let sets = Array.map ISet.of_list samples in
    ISet.fold
      (fun h acc ->
        if select h then
          acc
          +. Estcore.Max_oblivious.General.estimate t.general
               (key_outcome t seeds ~ids ~sets h)
        else acc)
      (union_of samples) 0.

  let exact_variance t ~memberships =
    let r = Array.length t.probs in
    let tbl = Hashtbl.create 64 in
    Array.iter
      (fun row ->
        if Array.length row <> r then
          invalid_arg "Distinct.Multi.exact_variance: row arity";
        if Array.exists Fun.id row then
          let pat = Array.to_list row in
          Hashtbl.replace tbl pat
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl pat)))
      memberships;
    let est o =
      Estcore.Max_oblivious.General.estimate t.general
        (Sampling.Outcome.Binary.to_oblivious o)
    in
    Hashtbl.fold
      (fun pat count acc ->
        let v = Array.of_list (List.map (fun b -> if b then 1 else 0) pat) in
        acc
        +. (float_of_int count
           *. (Estcore.Exact.binary ~probs:t.probs ~v est).Estcore.Exact.var))
      tbl 0.

  let ht_estimate ?ids ~probs seeds ~samples ~select =
    let r = Array.length probs in
    let ids =
      match ids with Some ids -> ids | None -> Array.init r Fun.id
    in
    let inv = 1. /. Array.fold_left ( *. ) 1. probs in
    let union = union_of samples in
    ISet.fold
      (fun h acc ->
        if
          select h
          && List.init r (fun i ->
                 Sampling.Seeds.seed seeds ~instance:ids.(i) ~key:h
                 <= probs.(i))
             |> List.for_all Fun.id
        then acc +. inv
        else acc)
      union 0.
end

module Required = struct
  let union_size ~n ~jaccard = 2. *. n /. (1. +. jaccard)

  let p_ht ~n ~jaccard ~cv =
    let nu = union_size ~n ~jaccard in
    Float.min 1. (1. /. sqrt (1. +. (cv *. cv *. nu)))

  let p_l ~n ~jaccard ~cv =
    let nu = union_size ~n ~jaccard in
    (* cv²(p) = (J·v11 + (1−J)·v10)/N is decreasing in p; solve for the
       target. *)
    let f p =
      let var = var_l ~d:nu ~jaccard ~p1:p ~p2:p in
      (sqrt var /. nu) -. cv
    in
    if f 1. >= 0. then 1.
    else begin
      (* Bracket from below. *)
      let lo = ref 1e-12 in
      while f !lo < 0. && !lo > 1e-300 do
        lo := !lo /. 10.
      done;
      Numerics.Special.solve_bisect f !lo 1.
    end

  let sample_size ~p ~n = p *. n
end
