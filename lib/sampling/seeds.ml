type mode = Shared | Independent
type t = { mode : mode; master : int }

let create ?(master = 42) mode = { mode; master }
let mode t = t.mode
let master t = t.master

let[@inline] salt t ~instance =
  let i = match t.mode with Shared -> 0 | Independent -> 1 + instance in
  Numerics.Hashing.salt_of_instance ~master:t.master i

let[@inline] seed t ~instance ~key = Numerics.Hashing.uniform_int ~salt:(salt t ~instance) key

let seed_string t ~instance ~key =
  Numerics.Hashing.uniform_string ~salt:(salt t ~instance) key

let rank t family ~instance ~key ~w =
  if w = 0. then infinity else Rank.rank family ~w ~u:(seed t ~instance ~key)
