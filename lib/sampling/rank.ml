type family = PPS | EXP

let pp_family ppf = function
  | PPS -> Format.pp_print_string ppf "PPS"
  | EXP -> Format.pp_print_string ppf "EXP"

let[@inline] rank family ~w ~u =
  if w < 0. then invalid_arg "Rank.rank: negative value";
  if u <= 0. || u >= 1. then invalid_arg "Rank.rank: seed must be in (0,1)";
  if w = 0. then infinity
  else
    match family with
    | PPS -> u /. w
    | EXP -> -.Numerics.Special.log1p (-.u) /. w

let cdf family ~w x =
  if w <= 0. || x <= 0. then 0.
  else
    match family with
    | PPS -> Float.min 1. (w *. x)
    | EXP -> -.Numerics.Special.expm1 (-.w *. x)

let inclusion_prob family ~w ~tau = cdf family ~w tau
let min_rank_exp_total total x = cdf EXP ~w:total x
