(** Plain-text persistence for instances and samples.

    The paper's deployment story is that instances are summarized where
    they are produced and the {e samples} are what gets stored or
    transmitted; estimation happens later, elsewhere. This module gives
    that story a concrete wire format: line-oriented, human-inspectable,
    lossless for floats (hex float literals), with a tagged header so a
    reader knows what it is loading.

    Formats (one record per line, [#]-comments and blank lines ignored):

    - instance: [optsample-instance 1] header, then [<key> <value-hex>]
    - PPS sample: [optsample-pps 1 <instance-id> <tau-hex>] header, then
      [<key> <value-hex>]
    - single-key outcome: [optsample-outcome 1 <r>] header, then [r]
      lines [<tau-hex> <seed-hex> <value-hex|->] (['-'] = entry not
      sampled)

    Values are written with [%h] and parsed back exactly. *)

type parse_error = { line : int; message : string }
(** A malformed-input diagnostic; [line] is 1-based, or [0] when the
    error is not tied to a specific line (empty input, I/O error,
    semantic rejection of the parsed record). *)

val parse_error_to_string : parse_error -> string
val pp_parse_error : Format.formatter -> parse_error -> unit

val write_instance : path:string -> Instance.t -> unit
val read_instance : path:string -> Instance.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val read_instance_opt : path:string -> (Instance.t, parse_error) result
(** Non-raising variant of {!read_instance}: file-system errors and
    malformed input (bad header, bad key/value syntax, duplicate keys,
    negative values) come back as [Error]. *)

val write_pps : path:string -> Poisson.pps -> unit
val read_pps : path:string -> Poisson.pps
val read_pps_opt : path:string -> (Poisson.pps, parse_error) result

val instance_to_string : Instance.t -> string
val instance_of_string : string -> Instance.t

val instance_of_string_r : string -> (Instance.t, parse_error) result
(** Result-returning parser behind {!instance_of_string} /
    {!read_instance_opt}. Rejects duplicate keys (a repeated key on the
    wire is a corrupted or mis-concatenated file). *)

val pps_to_string : Poisson.pps -> string
val pps_of_string : string -> Poisson.pps
val pps_of_string_r : string -> (Poisson.pps, parse_error) result

(** {2 Single-key outcomes}

    A persisted {!Outcome.Pps.t} is the estimator-side view of one key
    across [r] independently PPS-sampled instances — thresholds, seeds,
    and the sampled values. Persisting outcomes decouples where samples
    are taken from where per-key estimates run (the paper's deployment
    story taken one level further down). *)

val write_outcome : path:string -> Outcome.Pps.t -> unit
val read_outcome : path:string -> Outcome.Pps.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val read_outcome_opt : path:string -> (Outcome.Pps.t, parse_error) result

val outcome_to_string : Outcome.Pps.t -> string
val outcome_of_string : string -> Outcome.Pps.t

val outcome_of_string_r : string -> (Outcome.Pps.t, parse_error) result
(** Strict: rejects non-positive or non-finite thresholds, seeds outside
    [(0,1)], negative or non-finite values, arity mismatches, and sampled
    values inconsistent with their seed (a sampled entry must satisfy
    [v ≥ u·τ*] — anything else is a corrupted file). *)
