type scheme =
  | Poisson_pps of { tau : float }
  | Bottom_k of { k : int; family : Rank.family }
  | Var_opt of { k : int }

type payload =
  | P of Poisson.pps
  | B of Bottom_k.t
  | V of Varopt.t

type t = { scheme : scheme; payload : payload }

let summarize ?rng seeds scheme ~instance inst =
  let payload =
    match scheme with
    | Poisson_pps { tau } -> P (Poisson.pps_sample seeds ~instance ~tau inst)
    | Bottom_k { k; family } -> B (Bottom_k.sample seeds ~family ~instance ~k inst)
    | Var_opt { k } ->
        let rng =
          match rng with
          | Some r -> r
          | None ->
              Numerics.Prng.create
                ~seed:((Seeds.master seeds * 1_000_003) + instance)
                ()
        in
        V (Varopt.of_instance ~k rng inst)
  in
  { scheme; payload }

let scheme t = t.scheme

let entry_compare (k1, (v1 : float)) (k2, v2) =
  match Int.compare k1 k2 with 0 -> Float.compare v1 v2 | c -> c

let keys t =
  match t.payload with
  | P p -> List.map fst p.Poisson.entries
  | B b -> List.sort Int.compare (Bottom_k.keys b)
  | V v -> List.sort Int.compare (List.map fst (Varopt.entries v))

let entries t =
  match t.payload with
  | P p -> p.Poisson.entries
  | B b ->
      List.sort entry_compare
        (List.map
           (fun e -> (e.Bottom_k.key, e.Bottom_k.value))
           b.Bottom_k.entries)
  | V v -> List.sort entry_compare (Varopt.entries v)

let size t = List.length (keys t)
let mem t h = List.mem h (keys t)

let subset_sum t ~select =
  match t.payload with
  | P p -> Poisson.pps_ht_estimate p ~select
  | B b -> Bottom_k.rc_estimate b ~select
  | V v -> Varopt.estimate v ~select

let threshold t =
  match t.payload with
  | P p -> Some p.Poisson.tau
  | B b ->
      (match b.Bottom_k.family with
      | Rank.PPS ->
          if b.Bottom_k.threshold = infinity then Some 1e-300
          else Some (1. /. b.Bottom_k.threshold)
      | Rank.EXP -> None)
  | V _ -> None
