type entry = { key : int; value : float; rank : float }

type t = {
  instance_id : int;
  k : int;
  family : Rank.family;
  entries : entry list;
  threshold : float;
}

let sample seeds ~family ~instance ~k inst =
  if k <= 0 then invalid_arg "Bottom_k.sample: k must be positive";
  (* Counters only — one per draw plus the item volume ranked, no spans
     on the sampling path. *)
  Numerics.Obs.count "bottom_k.sample";
  Numerics.Obs.count ~by:(Instance.cardinality inst) "bottom_k.ranked";
  let ranked =
    Instance.fold
      (fun h v acc ->
        { key = h; value = v; rank = Seeds.rank seeds family ~instance ~key:h ~w:v }
        :: acc)
      inst []
  in
  let sorted =
    List.sort
      (fun a b ->
        match Float.compare a.rank b.rank with
        | 0 -> Int.compare a.key b.key
        | c -> c)
      ranked
  in
  let rec take n = function
    | [] -> ([], infinity)
    | e :: rest ->
        if n = 0 then ([], e.rank)
        else
          let kept, thr = take (n - 1) rest in
          (e :: kept, thr)
  in
  let entries, threshold = take k sorted in
  { instance_id = instance; k; family; entries; threshold }

let keys t = List.map (fun e -> e.key) t.entries

let rc_inclusion_prob t v = Rank.cdf t.family ~w:v t.threshold

let rc_estimate t ~select =
  List.fold_left
    (fun acc e ->
      if select e.key then acc +. (e.value /. rc_inclusion_prob t e.value) else acc)
    0. t.entries

let priority_estimate t ~select =
  (match t.family with
  | Rank.PPS -> ()
  | Rank.EXP -> invalid_arg "Bottom_k.priority_estimate: PPS ranks only");
  List.fold_left
    (fun acc e ->
      if select e.key then acc +. Float.max e.value (1. /. t.threshold) else acc)
    0. t.entries
