type item = { key : int; w : float }

type t = {
  cap : int;
  mutable items : item array;  (* at most [cap] items *)
  mutable n : int;
  mutable tau : float;
  mutable total : float;
}

let create ~k =
  if k <= 0 then invalid_arg "Varopt.create: k must be positive";
  { cap = k; items = Array.make k { key = 0; w = 0. }; n = 0; tau = 0.; total = 0. }

let k t = t.cap
let size t = t.n
let threshold t = t.tau
let total_weight t = t.total

(* Effective (adjusted) weight of a stored item: max of its exact weight
   and the current threshold. *)
let eff t w = Float.max w t.tau

(* Find tau' solving sum_i min(1, w_i/tau') = cap over the [cap+1]
   candidate weights [ws] (any order). *)
let solve_tau cap ws =
  let s = Array.copy ws in
  Array.sort compare s;
  let m = Array.length s in
  assert (m = cap + 1);
  (* With the j smallest below tau: tau = (sum of j smallest)/(j-1). *)
  let prefix = ref 0. in
  let result = ref nan in
  (try
     for j = 1 to m do
       prefix := !prefix +. s.(j - 1);
       if j >= 2 then begin
         let tau = !prefix /. float_of_int (j - 1) in
         if s.(j - 1) <= tau +. 1e-12 && (j = m || tau <= s.(j) +. 1e-12) then begin
           result := tau;
           raise Exit
         end
       end
     done
   with Exit -> ());
  if Float.is_nan !result then
    failwith
      (Printf.sprintf
         "Varopt.solve_tau: no threshold solves sum min(1, w/tau) = %d over %d weights in [%g, %g]"
         cap m s.(0) s.(m - 1));
  !result

let add t rng ~key ~weight =
  if weight <= 0. then invalid_arg "Varopt.add: weight must be positive";
  t.total <- t.total +. weight;
  if t.n < t.cap then begin
    t.items.(t.n) <- { key; w = weight };
    t.n <- t.n + 1
  end
  else begin
    (* cap+1 candidates: stored items at their adjusted weights + newcomer. *)
    let cand_w =
      Array.init (t.cap + 1) (fun i ->
          if i < t.cap then eff t t.items.(i).w else weight)
    in
    let tau' = solve_tau t.cap cand_w in
    (* Drop candidate i with probability 1 - min(1, w_i/tau'); these sum
       to exactly 1 over the cap+1 candidates. *)
    let u = Numerics.Prng.float rng in
    let drop = ref (t.cap) in
    let acc = ref 0. in
    (try
       for i = 0 to t.cap do
         acc := !acc +. (1. -. Float.min 1. (cand_w.(i) /. tau'));
         if u < !acc then begin
           drop := i;
           raise Exit
         end
       done
     with Exit -> ());
    (* If rounding left u uncovered, drop the last candidate (newcomer). *)
    if !drop < t.cap then t.items.(!drop) <- { key; w = weight };
    t.tau <- tau'
  end

let entries t =
  List.init t.n (fun i ->
      let it = t.items.(i) in
      (it.key, eff t it.w))

let estimate t ~select =
  let acc = ref 0. in
  for i = 0 to t.n - 1 do
    let it = t.items.(i) in
    if select it.key then acc := !acc +. eff t it.w
  done;
  !acc

let of_instance ~k rng inst =
  let t = create ~k in
  Instance.iter (fun key w -> add t rng ~key ~weight:w) inst;
  t
