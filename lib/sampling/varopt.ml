(* VAROPT_k with the classic two-structure scheme (Cohen–Duffield–
   Kaplan–Lund–Thorup 2009): a min-heap of "large" items whose exact
   weight exceeds the threshold τ, plus a flat buffer of "τ-items" whose
   adjusted weight is exactly τ (their exact weights are dead — only the
   key matters). A full insertion solves

     Σ_i min(1, w_i/τ') = k   over the k+1 candidates

   by pooling the τ-items (each contributes τ) with the newcomer and
   popping heap minima while they fall below the candidate threshold
   τ' = W_B / (|B| − 1); each item is popped at most once over its
   lifetime, so inserts cost O(log k) amortized — versus the reference
   implementation's per-insert sort (O(k log k), kept below as the
   testing oracle). The drop draw walks the below-threshold set only:
   τ-items share one drop probability 1 − τ/τ', so that block is an O(1)
   inverse-CDF jump. *)

type t = {
  cap : int;
  mutable tau : float;
  mutable total : float;
  (* Large items: min-heap on weight, every weight > tau. *)
  heap_keys : int array; (* length cap + 1 *)
  heap_ws : float array;
  mutable heap_n : int;
  (* τ-items: adjusted weight = tau each; exact weights forgotten. *)
  small_keys : int array; (* length cap + 1 *)
  mutable small_n : int;
  (* Scratch for heap items popped below τ' during one insertion. *)
  ext_keys : int array; (* length cap + 1 *)
  ext_ws : float array;
}

let create ~k =
  if k <= 0 then invalid_arg "Varopt.create: k must be positive";
  {
    cap = k;
    tau = 0.;
    total = 0.;
    heap_keys = Array.make (k + 1) 0;
    heap_ws = Array.make (k + 1) 0.;
    heap_n = 0;
    small_keys = Array.make (k + 1) 0;
    small_n = 0;
    ext_keys = Array.make (k + 1) 0;
    ext_ws = Array.make (k + 1) 0.;
  }

let k t = t.cap
let size t = t.heap_n + t.small_n
let threshold t = t.tau
let total_weight t = t.total

(* --- min-heap on heap_ws --- *)

let heap_swap t i j =
  let wk = t.heap_ws.(i) and kk = t.heap_keys.(i) in
  t.heap_ws.(i) <- t.heap_ws.(j);
  t.heap_keys.(i) <- t.heap_keys.(j);
  t.heap_ws.(j) <- wk;
  t.heap_keys.(j) <- kk

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.heap_ws.(i) < t.heap_ws.(parent) then begin
      heap_swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < t.heap_n && t.heap_ws.(l) < t.heap_ws.(i) then l else i in
  let m = if r < t.heap_n && t.heap_ws.(r) < t.heap_ws.(m) then r else m in
  if m <> i then begin
    heap_swap t i m;
    sift_down t m
  end

let heap_push t key w =
  t.heap_keys.(t.heap_n) <- key;
  t.heap_ws.(t.heap_n) <- w;
  t.heap_n <- t.heap_n + 1;
  sift_up t (t.heap_n - 1)

let heap_pop_min t =
  let key = t.heap_keys.(0) and w = t.heap_ws.(0) in
  t.heap_n <- t.heap_n - 1;
  if t.heap_n > 0 then begin
    t.heap_keys.(0) <- t.heap_keys.(t.heap_n);
    t.heap_ws.(0) <- t.heap_ws.(t.heap_n);
    sift_down t 0
  end;
  (key, w)

(* --- reference threshold solve, kept as the testing oracle --- *)

(* Find tau' solving sum_i min(1, w_i/tau') = cap over the [cap+1]
   candidate weights [ws] (any order). O(k log k); the fast path below
   solves the same equation incrementally — property tests hold the two
   together. *)
let solve_tau cap ws =
  let s = Array.copy ws in
  Array.sort Float.compare s;
  let m = Array.length s in
  if m <> cap + 1 then
    invalid_arg
      (Printf.sprintf "Varopt.solve_tau: expected %d candidates, got %d"
         (cap + 1) m);
  (* With the j smallest below tau: tau = (sum of j smallest)/(j-1). *)
  let prefix = ref 0. in
  let result = ref nan in
  (try
     for j = 1 to m do
       prefix := !prefix +. s.(j - 1);
       if j >= 2 then begin
         let tau = !prefix /. float_of_int (j - 1) in
         if s.(j - 1) <= tau +. 1e-12 && (j = m || tau <= s.(j) +. 1e-12) then begin
           result := tau;
           raise Exit
         end
       end
     done
   with Exit -> ());
  if Float.is_nan !result then
    failwith
      (Printf.sprintf
         "Varopt.solve_tau: no threshold solves sum min(1, w/tau) = %d over %d weights in [%g, %g]"
         cap m s.(0) s.(m - 1));
  !result

(* --- the O(log k) insertion --- *)

let add t rng ~key ~weight =
  if weight <= 0. then invalid_arg "Varopt.add: weight must be positive";
  (* Counters only on the insert path — never a span: at stream rates a
     per-insert event allocation would dominate the O(log k) work. *)
  Numerics.Obs.count "varopt.add";
  t.total <- t.total +. weight;
  if size t < t.cap then
    (* Growing phase: τ = 0, so every item is "large". *)
    heap_push t key weight
  else begin
    Numerics.Obs.count "varopt.add.threshold";
    (* Build the below-threshold candidate set B incrementally. The
       τ-items are in B from the start (weight τ each); the newcomer
       joins B or the heap by weight; heap minima migrate into the
       scratch extras while they fall below τ' = W_B/(|B|−1). *)
    let nb = ref t.small_n in
    let wb = ref (float_of_int t.small_n *. t.tau) in
    let new_small = weight <= t.tau in
    if new_small then begin
      incr nb;
      wb := !wb +. weight
    end
    else heap_push t key weight;
    let ext_n = ref 0 in
    let continue = ref true in
    while !continue && t.heap_n > 0 do
      (* Pop while |B| < 2 (τ' still unbounded) or heap-min ≤ τ'. *)
      if !nb < 2 || t.heap_ws.(0) *. float_of_int (!nb - 1) <= !wb then begin
        let k', w' = heap_pop_min t in
        t.ext_keys.(!ext_n) <- k';
        t.ext_ws.(!ext_n) <- w';
        incr ext_n;
        incr nb;
        wb := !wb +. w'
      end
      else continue := false
    done;
    let tau' = !wb /. float_of_int (!nb - 1) in
    (* Drop one candidate of B with probability 1 − w/τ' (these sum to
       exactly 1). Order: τ-items (one shared drop probability — an O(1)
       block jump), then popped extras in pop order, then the newcomer
       last; rounding leftovers drop the last candidate, mirroring the
       reference implementation's newcomer fallback. *)
    let u = Numerics.Prng.float rng in
    let d_small = 1. -. (t.tau /. tau') in
    let small_block = float_of_int t.small_n *. d_small in
    (* Which candidate of B gets dropped: a pre-existing τ-item (index
       into small_keys), a popped extra (index into ext), or the small
       newcomer (ext index ext_n). Rounding leftovers drop the last
       candidate, mirroring the reference's newcomer fallback. *)
    let drop_ext = ref (-1) in
    if t.small_n > 0 && d_small > 0. && u < small_block then begin
      (* Drop τ-item ⌊u/d⌋ (one shared probability per τ-item). *)
      let i = Stdlib.min (int_of_float (u /. d_small)) (t.small_n - 1) in
      t.small_keys.(i) <- t.small_keys.(t.small_n - 1);
      t.small_n <- t.small_n - 1
    end
    else if !ext_n = 0 && not new_small then
      (* All drop mass sits on the τ-items, but rounding pushed u past
         the block: drop the last τ-item. *)
      t.small_n <- t.small_n - 1
    else begin
      let u = ref (u -. small_block) in
      drop_ext := !ext_n - if new_small then 0 else 1;
      (try
         for i = 0 to !ext_n - 1 do
           let p = 1. -. (t.ext_ws.(i) /. tau') in
           if !u < p then begin
             drop_ext := i;
             raise Exit
           end
           else u := !u -. p
         done
       with Exit -> ())
    end;
    (* Surviving extras and (if small and surviving) the newcomer become
       τ-items; ext index ext_n stands for the newcomer. *)
    for i = 0 to !ext_n - 1 do
      if i <> !drop_ext then begin
        t.small_keys.(t.small_n) <- t.ext_keys.(i);
        t.small_n <- t.small_n + 1
      end
    done;
    if new_small && !drop_ext <> !ext_n then begin
      t.small_keys.(t.small_n) <- key;
      t.small_n <- t.small_n + 1
    end;
    t.tau <- tau'
  end

let entries t =
  let heap =
    List.init t.heap_n (fun i -> (t.heap_keys.(i), t.heap_ws.(i)))
  in
  let small = List.init t.small_n (fun i -> (t.small_keys.(i), t.tau)) in
  heap @ small

let estimate t ~select =
  let acc = ref 0. in
  for i = 0 to t.heap_n - 1 do
    if select t.heap_keys.(i) then acc := !acc +. t.heap_ws.(i)
  done;
  for i = 0 to t.small_n - 1 do
    if select t.small_keys.(i) then acc := !acc +. t.tau
  done;
  !acc

let of_instance ~k rng inst =
  let t = create ~k in
  Instance.iter (fun key w -> add t rng ~key ~weight:w) inst;
  t

(* --- the seed implementation, kept verbatim as a testing oracle --- *)

module Reference = struct
  type item = { key : int; w : float }

  type t = {
    cap : int;
    mutable items : item array; (* at most [cap] items *)
    mutable n : int;
    mutable tau : float;
    mutable total : float;
  }

  let create ~k =
    if k <= 0 then invalid_arg "Varopt.Reference.create: k must be positive";
    { cap = k; items = Array.make k { key = 0; w = 0. }; n = 0; tau = 0.; total = 0. }

  let size t = t.n
  let threshold t = t.tau
  let total_weight t = t.total

  (* Effective (adjusted) weight of a stored item: max of its exact
     weight and the current threshold. *)
  let eff t w = Float.max w t.tau

  let add t rng ~key ~weight =
    if weight <= 0. then
      invalid_arg "Varopt.Reference.add: weight must be positive";
    t.total <- t.total +. weight;
    if t.n < t.cap then begin
      t.items.(t.n) <- { key; w = weight };
      t.n <- t.n + 1
    end
    else begin
      (* cap+1 candidates: stored items at their adjusted weights +
         newcomer. *)
      let cand_w =
        Array.init (t.cap + 1) (fun i ->
            if i < t.cap then eff t t.items.(i).w else weight)
      in
      let tau' = solve_tau t.cap cand_w in
      (* Drop candidate i with probability 1 - min(1, w_i/tau'); these
         sum to exactly 1 over the cap+1 candidates. *)
      let u = Numerics.Prng.float rng in
      let drop = ref t.cap in
      let acc = ref 0. in
      (try
         for i = 0 to t.cap do
           acc := !acc +. (1. -. Float.min 1. (cand_w.(i) /. tau'));
           if u < !acc then begin
             drop := i;
             raise Exit
           end
         done
       with Exit -> ());
      (* If rounding left u uncovered, drop the last candidate
         (newcomer). *)
      if !drop < t.cap then t.items.(!drop) <- { key; w = weight };
      t.tau <- tau'
    end

  let entries t =
    List.init t.n (fun i ->
        let it = t.items.(i) in
        (it.key, eff t it.w))

  let estimate t ~select =
    let acc = ref 0. in
    for i = 0 to t.n - 1 do
      let it = t.items.(i) in
      if select it.key then acc := !acc +. eff t it.w
    done;
    !acc

  let of_instance ~k rng inst =
    let t = create ~k in
    Instance.iter (fun key w -> add t rng ~key ~weight:w) inst;
    t
end
