let instance_magic = "optsample-instance 1"
let pps_magic = "optsample-pps 1"

type parse_error = { line : int; message : string }

let parse_error_to_string { line; message } =
  if line = 0 then message else Printf.sprintf "line %d: %s" line message

let pp_parse_error fmt e = Format.pp_print_string fmt (parse_error_to_string e)

let err line message = Error { line; message }

(* Line numbering happens BEFORE comment/blank filtering so diagnostics
   match what an editor shows. CRLF files are accepted: the carriage
   return is stripped explicitly (it arrives glued to the last field
   after splitting on '\n'), and a final line without a trailing newline
   still gets its own number. *)
let strip_cr l =
  let n = String.length l in
  if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l

let lines_of_string s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim (strip_cr l)))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

(* Weights must be finite and non-negative right here, with the line
   number in hand: [Instance.of_assoc] rejects negatives too, but from
   there the error surfaces as "line 0", and NaN used to slip through
   entirely ([v < 0.] is false for NaN) and poison every estimate
   downstream. *)
let parse_kv_r n line =
  match String.split_on_char ' ' line with
  | [ k; v ] -> (
      match (int_of_string_opt k, float_of_string_opt v) with
      | Some k, Some v ->
          if not (Float.is_finite v) then
            err n (Printf.sprintf "value %g is not a finite weight" v)
          else if v < 0. then
            err n (Printf.sprintf "negative weight %g (weights must be >= 0)" v)
          else Ok (k, v)
      | Some _, None ->
          err n (Printf.sprintf "bad value %S (expected a hex float)" v)
      | None, _ -> err n (Printf.sprintf "bad key %S (expected an integer)" k))
  | _ -> err n "expected two fields '<int-key> <hex-float>'"

(* Parse all entry lines, rejecting duplicate keys: on the wire a repeated
   key is a corrupted or mis-concatenated file, not a legitimate record. *)
let parse_entries rest =
  let seen = Hashtbl.create 16 in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (n, l) :: rest -> (
        match parse_kv_r n l with
        | Error e -> Error e
        | Ok (k, v) -> (
            match Hashtbl.find_opt seen k with
            | Some first ->
                err n (Printf.sprintf "duplicate key %d (first seen on line %d)" k first)
            | None ->
                Hashtbl.add seen k n;
                go ((k, v) :: acc) rest))
  in
  go [] rest

let instance_to_string inst =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf instance_magic;
  Buffer.add_char buf '\n';
  Instance.iter
    (fun k v -> Buffer.add_string buf (Printf.sprintf "%d %h\n" k v))
    inst;
  Buffer.contents buf

let instance_of_string_r s =
  match lines_of_string s with
  | [] -> err 0 "empty input"
  | (n, header) :: rest -> (
      if header <> instance_magic then
        err n
          (Printf.sprintf "not an optsample instance (header %S, expected %S)"
             header instance_magic)
      else
        match parse_entries rest with
        | Error e -> Error e
        | Ok kvs -> (
            try Ok (Instance.of_assoc kvs)
            with Invalid_argument m | Failure m -> err 0 m))

let instance_of_string s =
  match instance_of_string_r s with
  | Ok inst -> inst
  | Error e -> failwith (parse_error_to_string e)

let pps_to_string (p : Poisson.pps) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %h\n" pps_magic p.Poisson.instance_id p.Poisson.tau);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%d %h\n" k v))
    p.Poisson.entries;
  Buffer.contents buf

let pps_of_string_r s =
  match lines_of_string s with
  | [] -> err 0 "empty input"
  | (n, header) :: rest -> (
      let parsed_header =
        match String.split_on_char ' ' header with
        | [ a; b; id; tau ] when a ^ " " ^ b = pps_magic -> (
            match (int_of_string_opt id, float_of_string_opt tau) with
            | Some _, Some tau when not (Float.is_finite tau) || tau <= 0. ->
                err n
                  (Printf.sprintf "bad pps tau %g (must be finite and positive)"
                     tau)
            | Some id, Some tau -> Ok (id, tau)
            | None, _ ->
                err n (Printf.sprintf "bad pps instance id %S (expected an integer)" id)
            | _, None ->
                err n (Printf.sprintf "bad pps tau %S (expected a hex float)" tau))
        | (a :: b :: _ as fields) when a ^ " " ^ b = pps_magic ->
            err n
              (Printf.sprintf
                 "truncated pps header: %d field(s), expected 4 ('%s <id> <tau-hex>')"
                 (List.length fields) pps_magic)
        | _ ->
            err n
              (Printf.sprintf "not an optsample pps sample (header %S)" header)
      in
      match parsed_header with
      | Error e -> Error e
      | Ok (id, tau) -> (
          match parse_entries rest with
          | Error e -> Error e
          | Ok entries -> Ok { Poisson.instance_id = id; tau; entries }))

let pps_of_string s =
  match pps_of_string_r s with
  | Ok p -> p
  | Error e -> failwith (parse_error_to_string e)

let outcome_magic = "optsample-outcome 1"

(* One entry per line: threshold, seed, and the sampled value or '-' for
   an unsampled entry. The outcome is the paper's estimator-side object —
   persisting it decouples where samples are taken from where per-key
   estimates are computed. *)
let outcome_to_string (o : Outcome.Pps.t) =
  let r = Array.length o.Outcome.Pps.taus in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %d\n" outcome_magic r);
  for i = 0 to r - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%h %h " o.Outcome.Pps.taus.(i) o.Outcome.Pps.seeds.(i));
    (match o.Outcome.Pps.values.(i) with
    | Some v -> Buffer.add_string buf (Printf.sprintf "%h" v)
    | None -> Buffer.add_char buf '-');
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let parse_outcome_entry n line =
  match String.split_on_char ' ' line with
  | [ tau; seed; value ] -> (
      match (float_of_string_opt tau, float_of_string_opt seed) with
      | Some tau, Some seed ->
          if not (Float.is_finite tau) || tau <= 0. then
            err n (Printf.sprintf "tau %g must be finite and > 0" tau)
          else if not (seed > 0. && seed < 1.) then
            err n (Printf.sprintf "seed %g out of (0,1)" seed)
          else if value = "-" then Ok (tau, seed, None)
          else (
            match float_of_string_opt value with
            | Some v when Float.is_finite v && v >= 0. ->
                if v < seed *. tau then
                  err n
                    (Printf.sprintf
                       "value %g inconsistent with seed: sampled entries \
                        satisfy v >= u*tau = %g" v (seed *. tau))
                else Ok (tau, seed, Some v)
            | Some v ->
                err n
                  (Printf.sprintf "value %g must be finite and >= 0" v)
            | None ->
                err n
                  (Printf.sprintf "bad value %S (expected a hex float or '-')"
                     value))
      | None, _ -> err n (Printf.sprintf "bad tau %S (expected a hex float)" tau)
      | _, None ->
          err n (Printf.sprintf "bad seed %S (expected a hex float)" seed))
  | _ -> err n "expected three fields '<tau-hex> <seed-hex> <value-hex|->'"

let outcome_of_string_r s =
  match lines_of_string s with
  | [] -> err 0 "empty input"
  | (n, header) :: rest -> (
      let parsed_header =
        match String.split_on_char ' ' header with
        | [ a; b; r ] when a ^ " " ^ b = outcome_magic -> (
            match int_of_string_opt r with
            | Some r when r >= 1 -> Ok r
            | Some r -> err n (Printf.sprintf "bad arity %d (must be >= 1)" r)
            | None ->
                err n (Printf.sprintf "bad arity %S (expected an integer)" r))
        | a :: b :: _ when a ^ " " ^ b = outcome_magic ->
            err n
              (Printf.sprintf
                 "truncated outcome header (expected '%s <r>')" outcome_magic)
        | _ ->
            err n
              (Printf.sprintf "not an optsample outcome (header %S)" header)
      in
      match parsed_header with
      | Error e -> Error e
      | Ok r ->
          if List.length rest <> r then
            err 0
              (Printf.sprintf "expected %d entry line(s), found %d" r
                 (List.length rest))
          else
            let rec go acc = function
              | [] ->
                  let entries = Array.of_list (List.rev acc) in
                  Ok
                    {
                      Outcome.Pps.taus = Array.map (fun (t, _, _) -> t) entries;
                      seeds = Array.map (fun (_, u, _) -> u) entries;
                      values = Array.map (fun (_, _, v) -> v) entries;
                    }
              | (n, l) :: rest -> (
                  match parse_outcome_entry n l with
                  | Error e -> Error e
                  | Ok entry -> go (entry :: acc) rest)
            in
            go [] rest)

let outcome_of_string s =
  match outcome_of_string_r s with
  | Ok o -> o
  | Error e -> failwith (parse_error_to_string e)

let write_string ~path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let read_string ~path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_instance ~path inst = write_string ~path (instance_to_string inst)
let read_instance ~path = instance_of_string (read_string ~path)
let write_pps ~path p = write_string ~path (pps_to_string p)
let read_pps ~path = pps_of_string (read_string ~path)

let read_file_r ~path =
  match read_string ~path with
  | s -> Ok s
  | exception Sys_error m -> err 0 m

let read_instance_opt ~path =
  Result.bind (read_file_r ~path) instance_of_string_r

let read_pps_opt ~path = Result.bind (read_file_r ~path) pps_of_string_r

let write_outcome ~path o = write_string ~path (outcome_to_string o)
let read_outcome ~path = outcome_of_string (read_string ~path)

let read_outcome_opt ~path =
  Result.bind (read_file_r ~path) outcome_of_string_r
