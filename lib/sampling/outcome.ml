module Oblivious = struct
  type t = { probs : float array; values : float option array }

  let r t = Array.length t.probs

  let sampled t =
    let acc = ref [] in
    Array.iteri (fun i v -> if v <> None then acc := i :: !acc) t.values;
    List.rev !acc

  let sampled_values t =
    Array.to_list t.values |> List.filter_map Fun.id

  let of_mask ~probs v mask =
    if Array.length probs <> Array.length v || Array.length mask <> Array.length v
    then invalid_arg "Oblivious.of_mask: length mismatch";
    { probs; values = Array.mapi (fun i m -> if m then Some v.(i) else None) mask }

  let draw rng ~probs v =
    let mask = Array.map (fun p -> Numerics.Prng.float rng < p) probs in
    of_mask ~probs v mask

  let prob_of_mask ~probs mask =
    let acc = ref 1. in
    Array.iteri
      (fun i m -> acc := !acc *. (if m then probs.(i) else 1. -. probs.(i)))
      mask;
    !acc

  let enumerate ~probs v =
    let r = Array.length probs in
    let n = 1 lsl r in
    List.init n (fun bits ->
        let mask = Array.init r (fun i -> bits land (1 lsl i) <> 0) in
        (prob_of_mask ~probs mask, of_mask ~probs v mask))
end

module Pps = struct
  type t = {
    taus : float array;
    seeds : float array;
    values : float option array;
  }

  let r t = Array.length t.taus

  let sampled t =
    let acc = ref [] in
    Array.iteri (fun i v -> if v <> None then acc := i :: !acc) t.values;
    List.rev !acc

  let upper_bound t i =
    match t.values.(i) with
    | Some v -> v
    | None -> t.seeds.(i) *. t.taus.(i)

  let inclusion_prob ~taus v i = Float.min 1. (v.(i) /. taus.(i))

  let of_seeds ~taus ~seeds v =
    let n = Array.length v in
    if Array.length taus <> n || Array.length seeds <> n then
      invalid_arg "Pps.of_seeds: length mismatch";
    {
      taus;
      seeds;
      values =
        Array.init n (fun i ->
            if v.(i) >= seeds.(i) *. taus.(i) then Some v.(i) else None);
    }

  let draw rng ~taus v =
    let seeds = Array.map (fun _ -> Numerics.Prng.float_open rng) taus in
    of_seeds ~taus ~seeds v

  let expectation ?tol ~taus ~v g =
    (* The integrand is piecewise analytic in the seeds, with kinks where
       an inclusion decision flips (u_i = v_i/τ_i) and where a revealed
       upper bound crosses the other entry's value (u_i = v_j/τ_i); we
       split at those points and use fixed-order Gauss–Legendre on each
       smooth piece — deterministic, so the nesting is noise-free. *)
    ignore tol;
    (* Graded breakpoints near 0 resolve the integrable logarithmic
       singularity some estimators exhibit as a seed tends to 0 (e.g.
       max^(L) when the other entry's value is 0). *)
    let graded = List.init 12 (fun k -> 10. ** float_of_int (-(k + 1))) in
    let breaks j =
      ([ v.(0) /. taus.(j); v.(1) /. taus.(j) ] @ graded)
      |> List.filter (fun x -> x > 0. && x < 1.)
    in
    match Array.length v with
    | 1 ->
        Numerics.Integrate.robust_pieces ~breakpoints:(breaks 0)
          (fun u1 -> g (of_seeds ~taus ~seeds:[| u1 |] v))
          0. 1.
    | 2 ->
        Numerics.Integrate.robust_pieces ~breakpoints:(breaks 0)
          (fun u1 ->
            Numerics.Integrate.robust_pieces ~breakpoints:(breaks 1)
              (fun u2 -> g (of_seeds ~taus ~seeds:[| u1; u2 |] v))
              0. 1.)
          0. 1.
    | _ -> invalid_arg "Pps.expectation: only r <= 2 supported"
end

module Binary = struct
  type t = { probs : float array; below : bool array; sampled : bool array }

  let r t = Array.length t.probs

  let known_value t i =
    if t.sampled.(i) then Some 1 else if t.below.(i) then Some 0 else None

  let of_below ~probs ~below v =
    let n = Array.length v in
    if Array.length probs <> n || Array.length below <> n then
      invalid_arg "Binary.of_below: length mismatch";
    Array.iter (fun b -> if b <> 0 && b <> 1 then invalid_arg "Binary: data must be 0/1") v;
    { probs; below; sampled = Array.mapi (fun i b -> v.(i) = 1 && b) below }

  let draw rng ~probs v =
    let below = Array.map (fun p -> Numerics.Prng.float rng <= p) probs in
    of_below ~probs ~below v

  let enumerate ~probs v =
    let r = Array.length probs in
    let n = 1 lsl r in
    List.init n (fun bits ->
        let below = Array.init r (fun i -> bits land (1 lsl i) <> 0) in
        let p = ref 1. in
        Array.iteri
          (fun i b -> p := !p *. (if b then probs.(i) else 1. -. probs.(i)))
          below;
        (!p, of_below ~probs ~below v))

  let to_oblivious t =
    {
      Oblivious.probs = t.probs;
      values =
        Array.init (r t) (fun i ->
            if t.sampled.(i) then Some 1.
            else if t.below.(i) then Some 0.
            else None);
    }
end
