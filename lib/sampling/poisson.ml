type pps = { instance_id : int; tau : float; entries : (int * float) list }

let pps_sample seeds ~instance ~tau inst =
  if tau <= 0. then invalid_arg "Poisson.pps_sample: tau must be > 0";
  let entries =
    Instance.fold
      (fun h v acc ->
        let u = Seeds.seed seeds ~instance ~key:h in
        if v >= u *. tau then (h, v) :: acc else acc)
      inst []
    |> List.rev
  in
  { instance_id = instance; tau; entries }

let pps_expected_size ~tau inst =
  Instance.fold (fun _ v acc -> acc +. Float.min 1. (v /. tau)) inst 0.

let tau_for_expected_size inst k =
  let n = float_of_int (Instance.cardinality inst) in
  if k <= 0. || k > n then
    invalid_arg
      (Printf.sprintf
         "Poisson.tau_for_expected_size: k = %g not in (0, %g] (instance has \
          %g keys)"
         k n n);
  if k = n then begin
    (* Keep every key: any tau ≤ the minimum weight gives p_h = 1 for
       all h. tau = 0 would be rejected by {!pps_sample}. *)
    let vmin = Instance.fold (fun _ v m -> Float.min v m) inst infinity in
    if vmin > 0. then vmin
    else
      invalid_arg
        (Printf.sprintf
           "Poisson.tau_for_expected_size: k = n = %g unattainable (a \
            zero-weight key can never be sampled)"
           n)
  end
  else begin
    (* Expected size is decreasing in tau; bracket then bisect. *)
    let f tau = pps_expected_size ~tau inst -. k in
    let hi = ref 1. in
    while f !hi > 0. do
      hi := !hi *. 2.
    done;
    let lo = ref (!hi /. 2.) in
    while f !lo < 0. && !lo > 1e-300 do
      lo := !lo /. 2.
    done;
    Numerics.Special.solve_bisect f !lo !hi
  end

let pps_ht_estimate s ~select =
  List.fold_left
    (fun acc (h, v) ->
      if select h then acc +. (v /. Float.min 1. (v /. s.tau)) else acc)
    0. s.entries

type oblivious = {
  instance_id : int;
  p : float;
  domain_size : int;
  entries : (int * float) list;
}

let oblivious_sample seeds ~instance ~p ~domain inst =
  if p <= 0. || p > 1. then invalid_arg "Poisson.oblivious_sample: p out of (0,1]";
  let entries =
    List.filter_map
      (fun h ->
        let u = Seeds.seed seeds ~instance ~key:h in
        if u < p then Some (h, Instance.value inst h) else None)
      domain
  in
  { instance_id = instance; p; domain_size = List.length domain; entries }

let oblivious_ht_estimate s ~select =
  List.fold_left
    (fun acc (h, v) -> if select h then acc +. (v /. s.p) else acc)
    0. s.entries

let key_outcome_pps seeds ~taus ~instances h =
  let v =
    Array.of_list (List.map (fun inst -> Instance.value inst h) instances)
  in
  let u =
    Array.init (Array.length v) (fun i -> Seeds.seed seeds ~instance:i ~key:h)
  in
  Outcome.Pps.of_seeds ~taus ~seeds:u v

let key_outcome_binary seeds ~probs ~instances h =
  let v =
    Array.of_list
      (List.map (fun inst -> if Instance.value inst h > 0. then 1 else 0) instances)
  in
  let below =
    Array.init (Array.length v) (fun i ->
        Seeds.seed seeds ~instance:i ~key:h <= probs.(i))
  in
  Outcome.Binary.of_below ~probs ~below v
