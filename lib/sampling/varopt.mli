(** VAROPT_k stream sampling (Cohen–Duffield–Kaplan–Lund–Thorup 2009 /
    Chao 1982), referenced as the third single-instance scheme in
    Section 7.1.

    Maintains a fixed-size-[k] sample with PPS (probability proportional
    to size) inclusion probabilities, non-positive inclusion
    covariances, and variance-optimal subset-sum estimates. Items kept in
    the sample carry an {e adjusted weight}: their exact weight if it
    exceeds the current threshold [τ], else [τ]; the sum of adjusted
    weights is an unbiased estimate of any subset sum (and exactly
    {!total_weight} for the full population).

    Implementation: the classic two-structure scheme — a min-heap of
    items above [τ] plus a flat buffer of [τ]-items — giving
    O(log k) amortized inserts. {!solve_tau} and {!Reference} expose the
    per-insert-sort seed implementation as a testing oracle. *)

type t

val create : k:int -> t
(** Empty reservoir of capacity [k]. *)

val k : t -> int
val size : t -> int

val threshold : t -> float
(** Current threshold [τ] (0 while fewer than [k] items seen). *)

val total_weight : t -> float
(** Exact running total of all weights fed in. *)

val add : t -> Numerics.Prng.t -> key:int -> weight:float -> unit
(** Feed one stream item. [weight > 0]. Keys need not be distinct, but
    estimates are per-item; aggregate duplicates upstream if needed. *)

val entries : t -> (int * float) list
(** Current sample as (key, adjusted weight), unspecified order. The
    adjusted weight of item [i] is [max(w_i, τ)]. *)

val estimate : t -> select:(int -> bool) -> float
(** Subset-sum estimate: sum of adjusted weights of sampled keys selected
    by [select]. Unbiased for the true subset sum. *)

val of_instance : k:int -> Numerics.Prng.t -> Instance.t -> t
(** Stream all (key, value) pairs of an instance through a fresh sampler. *)

(** {1 Reference oracle} *)

val solve_tau : int -> float array -> float
(** [solve_tau k ws] solves [Σ min(1, w/τ') = k] over the [k+1]
    candidate weights [ws] by sorting — the O(k log k) reference the
    fast insertion path is property-tested against. Raises
    [Invalid_argument] unless [Array.length ws = k + 1]. *)

(** The seed implementation (per-insert candidate sort via
    {!solve_tau}). Same sampling distribution as the fast structure —
    property tests compare per-key inclusion frequencies — but {e not}
    draw-for-draw identical: the two walk their drop candidates in
    different orders. *)
module Reference : sig
  type t

  val create : k:int -> t
  val size : t -> int
  val threshold : t -> float
  val total_weight : t -> float
  val add : t -> Numerics.Prng.t -> key:int -> weight:float -> unit
  val entries : t -> (int * float) list
  val estimate : t -> select:(int -> bool) -> float
  val of_instance : k:int -> Numerics.Prng.t -> Instance.t -> t
end
