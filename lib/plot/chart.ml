type scale = Linear | Log
type series = { label : string; points : (float * float) list }

type spec = {
  title : string;
  x_label : string;
  y_label : string;
  x_scale : scale;
  y_scale : scale;
  series : series list;
  width : float;
  height : float;
}

let default =
  {
    title = "";
    x_label = "";
    y_label = "";
    x_scale = Linear;
    y_scale = Linear;
    series = [];
    width = 720.;
    height = 440.;
  }

(* Reference categorical palette, light mode, fixed slot order
   (validated: worst adjacent CVD ΔE 24.2; sub-3:1 slots are relieved by
   direct labels and the printed table view). *)
let palette =
  [|
    "#2a78d6" (* blue *);
    "#1baf7a" (* aqua *);
    "#eda100" (* yellow *);
    "#008300" (* green *);
    "#4a3aa7" (* violet *);
    "#e34948" (* red *);
    "#e87ba4" (* magenta *);
    "#eb6834" (* orange *);
  |]

let surface = "#fcfcfb"
let grid_color = "#eceae6"
let ink = "#0b0b0b"
let ink_secondary = "#52514e"

let ticks scale ~lo ~hi =
  match scale with
  | Linear ->
      if hi <= lo then [ lo ]
      else begin
        let range = hi -. lo in
        let raw = range /. 5. in
        let mag = 10. ** floor (log10 raw) in
        let step =
          let m = raw /. mag in
          if m <= 1. then mag
          else if m <= 2. then 2. *. mag
          else if m <= 5. then 5. *. mag
          else 10. *. mag
        in
        let first = ceil (lo /. step) *. step in
        let rec go acc t =
          if t > hi +. (step /. 1e6) then List.rev acc
          else go ((if abs_float t < step /. 1e6 then 0. else t) :: acc) (t +. step)
        in
        go [] first
      end
  | Log ->
      if lo <= 0. || hi <= lo then [ Float.max lo 1e-300 ]
      else begin
        let d0 = int_of_float (floor (log10 lo +. 1e-12)) in
        let d1 = int_of_float (ceil (log10 hi -. 1e-12)) in
        let decades = List.init (d1 - d0 + 1) (fun i -> 10. ** float_of_int (d0 + i)) in
        if List.length decades >= 3 then
          List.filter (fun t -> t >= lo /. 1.001 && t <= hi *. 1.001) decades
        else begin
          (* Under three decades: add 2 and 5 mantissas. *)
          List.concat_map
            (fun d -> [ d; 2. *. d; 5. *. d ])
            decades
          |> List.filter (fun t -> t >= lo /. 1.001 && t <= hi *. 1.001)
          |> List.sort_uniq Float.compare
        end
      end

let tick_label v =
  if v = 0. then "0"
  else begin
    let a = abs_float v in
    if a >= 1e5 || a < 1e-3 then begin
      (* 1e+05 style, trimmed. *)
      let s = Printf.sprintf "%.0e" v in
      s
    end
    else if Float.is_integer v then begin
      (* Thousands separators. *)
      let s = Printf.sprintf "%.0f" (abs_float v) in
      let n = String.length s in
      let buf = Buffer.create (n + 4) in
      if v < 0. then Buffer.add_char buf '-';
      String.iteri
        (fun i c ->
          if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char buf ',';
          Buffer.add_char buf c)
        s;
      Buffer.contents buf
    end
    else begin
      let s = Printf.sprintf "%.4f" v in
      (* Trim trailing zeros. *)
      let rec trim i = if i > 0 && s.[i] = '0' then trim (i - 1) else i in
      let last = trim (String.length s - 1) in
      let last = if s.[last] = '.' then last - 1 else last in
      String.sub s 0 (last + 1)
    end
  end

type extent = { lo : float; hi : float }

let extent_of scale values =
  let values =
    match scale with Log -> List.filter (fun v -> v > 0.) values | Linear -> values
  in
  match values with
  | [] -> { lo = 0.; hi = 1. }
  | v :: _ ->
      let lo = List.fold_left Float.min v values in
      let hi = List.fold_left Float.max v values in
      if lo = hi then
        match scale with
        | Linear -> { lo = lo -. 1.; hi = hi +. 1. }
        | Log -> { lo = lo /. 10.; hi = hi *. 10. }
      else begin
        match scale with
        | Linear ->
            (* Pad 5%; anchor to zero when close. *)
            let pad = 0.05 *. (hi -. lo) in
            let lo = if lo >= 0. && lo -. pad < 0. then 0. else lo -. pad in
            { lo; hi = hi +. pad }
        | Log -> { lo = lo /. 1.3; hi = hi *. 1.3 }
      end

let project scale ext ~a ~b v =
  match scale with
  | Linear -> a +. ((v -. ext.lo) /. (ext.hi -. ext.lo) *. (b -. a))
  | Log ->
      let l v = log10 v in
      a +. ((l v -. l ext.lo) /. (l ext.hi -. l ext.lo) *. (b -. a))

let render spec =
  if List.length spec.series > Array.length palette then
    invalid_arg "Chart.render: more series than categorical slots — fold or facet";
  let margin_l = 72. and margin_r = 150. and margin_t = 48. and margin_b = 56. in
  let x0 = margin_l and x1 = spec.width -. margin_r in
  let y0 = spec.height -. margin_b and y1 = margin_t in
  (* y0 is the bottom (baseline), y1 the top. *)
  let clean s =
    List.filter
      (fun (x, y) ->
        (spec.x_scale = Linear || x > 0.) && (spec.y_scale = Linear || y > 0.))
      s.points
  in
  let all_points = List.concat_map clean spec.series in
  let xext = extent_of spec.x_scale (List.map fst all_points) in
  let yext = extent_of spec.y_scale (List.map snd all_points) in
  let px v = project spec.x_scale xext ~a:x0 ~b:x1 v in
  let py v = project spec.y_scale yext ~a:y0 ~b:y1 v in
  let open Svg in
  let background =
    rect ~x:0. ~y:0. ~w:spec.width ~h:spec.height ~attrs:[ ("fill", surface) ] ()
  in
  let xticks = ticks spec.x_scale ~lo:xext.lo ~hi:xext.hi in
  let yticks = ticks spec.y_scale ~lo:yext.lo ~hi:yext.hi in
  let gridlines =
    List.map
      (fun t ->
        line ~x1:x0 ~y1:(py t) ~x2:x1 ~y2:(py t)
          ~attrs:[ ("stroke", grid_color); ("stroke-width", "1") ]
          ())
      yticks
  in
  let axes =
    [
      line ~x1:x0 ~y1:y0 ~x2:x1 ~y2:y0
        ~attrs:[ ("stroke", ink_secondary); ("stroke-width", "1") ]
        ();
      line ~x1:x0 ~y1:y0 ~x2:x0 ~y2:y1
        ~attrs:[ ("stroke", ink_secondary); ("stroke-width", "1") ]
        ();
    ]
  in
  let x_tick_marks =
    List.concat_map
      (fun t ->
        [
          line ~x1:(px t) ~y1:y0 ~x2:(px t) ~y2:(y0 +. 4.)
            ~attrs:[ ("stroke", ink_secondary); ("stroke-width", "1") ]
            ();
          text ~x:(px t) ~y:(y0 +. 18.) ~anchor:"middle" ~size:11.
            ~fill:ink_secondary (tick_label t);
        ])
      xticks
  in
  let y_tick_labels =
    List.map
      (fun t ->
        text ~x:(x0 -. 8.) ~y:(py t +. 4.) ~anchor:"end" ~size:11.
          ~fill:ink_secondary (tick_label t))
      yticks
  in
  let series_marks =
    List.concat
      (List.mapi
         (fun i s ->
           let pts = List.map (fun (x, y) -> (px x, py y)) (clean s) in
           match pts with
           | [] -> []
           | _ ->
               let color = palette.(i) in
               let lineel =
                 polyline ~points:pts
                   ~attrs:
                     [
                       ("stroke", color);
                       ("stroke-width", "2");
                       ("stroke-linejoin", "round");
                       ("stroke-linecap", "round");
                     ]
                   ()
               in
               let ex, ey = List.nth pts (List.length pts - 1) in
               (* End marker: r = 4 (8px) with a 2px surface ring. *)
               let marker =
                 circle ~cx:ex ~cy:ey ~r:4.
                   ~attrs:
                     [
                       ("fill", color); ("stroke", surface); ("stroke-width", "2");
                     ]
                   ()
               in
               [ lineel; marker ])
         spec.series)
  in
  (* Direct end labels: sparing — drop (never stack) on collision; the
     legend below carries identity regardless. *)
  let end_labels =
    let ends =
      List.mapi
        (fun i s ->
          match List.rev (clean s) with
          | [] -> None
          | (x, y) :: _ -> Some (i, s.label, px x, py y))
        spec.series
      |> List.filter_map Fun.id
      |> List.sort (fun (_, _, _, a) (_, _, _, b) -> Float.compare a b)
    in
    let rec keep prev = function
      | [] -> []
      | ((_, _, _, y) as e) :: rest ->
          if abs_float (y -. prev) < 13. then keep prev rest
          else e :: keep y rest
    in
    let kept = if List.length spec.series <= 4 then keep neg_infinity ends else [] in
    List.map
      (fun (_, label, x, y) ->
        text ~x:(x +. 10.) ~y:(y +. 4.) ~size:11. ~fill:ink label)
      kept
  in
  let legend =
    if List.length spec.series < 2 then []
    else begin
      let lx = x1 +. 24. in
      List.concat
        (List.mapi
           (fun i s ->
             let ly = y1 +. 10. +. (float_of_int i *. 20.) in
             [
               line ~x1:lx ~y1:ly ~x2:(lx +. 18.) ~y2:ly
                 ~attrs:
                   [
                     ("stroke", palette.(i));
                     ("stroke-width", "2");
                     ("stroke-linecap", "round");
                   ]
                 ();
               text ~x:(lx +. 24.) ~y:(ly +. 4.) ~size:11. ~fill:ink s.label;
             ])
           spec.series)
    end
  in
  let titles =
    [
      text ~x:margin_l ~y:26. ~size:14. ~weight:"600" ~fill:ink spec.title;
      text
        ~x:((x0 +. x1) /. 2.)
        ~y:(spec.height -. 14.)
        ~anchor:"middle" ~size:12. ~fill:ink_secondary spec.x_label;
      el "text"
        ~attrs:
          [
            ("x", "0");
            ("y", "0");
            ("transform",
             Printf.sprintf "translate(16,%f) rotate(-90)" ((y0 +. y1) /. 2.));
            ("text-anchor", "middle");
            ("font-size", "12");
            ("fill", ink_secondary);
            ( "font-family",
              "system-ui, -apple-system, 'Segoe UI', Roboto, 'Helvetica \
               Neue', sans-serif" );
          ]
        [ text_node spec.y_label ];
    ]
  in
  document ~width:spec.width ~height:spec.height
    ((background :: gridlines) @ axes @ x_tick_marks @ y_tick_labels
    @ series_marks @ end_labels @ legend @ titles)

let write ~path spec =
  let oc = open_out path in
  output_string oc (render spec);
  close_out oc
