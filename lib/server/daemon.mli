(** The serving loop: a minimal TCP / Unix-socket daemon over
    {!Protocol} + {!Engine}, stdlib [Unix] only.

    Sessions are handled {e sequentially} — one connection at a time —
    which matches the store's single-producer ingest contract (the
    parallelism lives below, in the sharded flush, not in the accept
    loop). A malformed request or a session-level exception answers with
    an error object and keeps the daemon alive; only [SHUTDOWN] (or
    closing the listening socket) stops the loop. *)

val listen_tcp : ?host:string -> port:int -> unit -> Unix.file_descr * int
(** Bind + listen on [host:port] (default host ["127.0.0.1"]); returns
    the listening socket and the bound port — pass [port:0] to let the
    kernel pick one (the in-process test harness does). *)

val listen_unix : path:string -> Unix.file_descr
(** Bind + listen on a Unix-domain socket path (unlinked first if a
    stale socket file is in the way). *)

val serve : Engine.t -> Unix.file_descr -> unit
(** Run the accept loop on the calling domain until a session issues
    [SHUTDOWN]. Closes the listening socket before returning.
    Instrumented with [server.accept] / [server.session] counters and a
    [server.session] span per connection. *)

(** {2 In-process daemon (tests, bench)} *)

type t
(** A daemon running on its own domain. *)

val start : Engine.t -> t
(** Bind [127.0.0.1:0], then run {!serve} on a fresh domain. The engine
    (and its store) must not be touched directly by other domains while
    the daemon runs — talk to it through a {!Client}. *)

val port : t -> int

val join : t -> unit
(** Wait for the daemon domain to finish (send [SHUTDOWN] first). *)
