(** The serving loop: a readiness-driven multi-client TCP / Unix-socket
    daemon over {!Protocol} + {!Engine}, stdlib [Unix] only.

    All sockets are nonblocking and multiplexed through one
    [Unix.select] on a single domain — up to [max_conns] connections
    stay open at once, while request {e execution} remains sequential,
    which is exactly the store's single-producer ingest contract (the
    parallelism lives below, in the sharded flush, not in the serving
    loop). Each connection is a state machine: an incremental read
    buffer carrying the byte-bounded line discipline, a buffered write
    queue drained as the socket accepts bytes, and an optional in-flight
    [INGESTN] batch collecting body lines.

    Hardening, preserved from the sequential loop and extended:

    - an over-long request line (slowloris, binary garbage) answers a
      structured [kind="line_too_long"] error and closes, without
      unbounded buffering;
    - a connection idle past [read_timeout_s] answers [kind="timeout"]
      and closes (deadlines tracked in the loop; no [SO_RCVTIMEO]
      blocking reads anywhere);
    - a peer that stops consuming responses (write queue past
      [write_highwater]) stops being {e read} until it drains —
      backpressure per connection, never a stall for the others;
    - a malformed request or an engine exception answers an error object
      and keeps the daemon alive; only [SHUTDOWN] (or closing the
      listening socket) stops the loop, and the shutdown drains every
      connection's pending responses (bounded by a 5 s deadline) before
      closing. *)

type config = {
  backlog : int;  (** [Unix.listen] backlog (default 64) *)
  max_line_bytes : int;
      (** reject request lines longer than this (default 8192) *)
  read_timeout_s : float;
      (** idle deadline per connection; [0.] (default) = no timeout *)
  max_conns : int;
      (** accept at most this many simultaneous connections (default
          960 — [Unix.select] is FD_SETSIZE-bound at 1024); excess
          connections wait in the listen backlog *)
  write_highwater : int;
      (** stop reading from a connection whose pending output exceeds
          this many bytes, until it drains (default 256 KiB) *)
}

val default_config : config

val listen_tcp :
  ?host:string -> ?backlog:int -> port:int -> unit -> Unix.file_descr * int
(** Bind + listen on [host:port] (default host ["127.0.0.1"]); returns
    the listening socket and the bound port — pass [port:0] to let the
    kernel pick one (the in-process test harness does). *)

val listen_unix :
  ?backlog:int -> path:string -> unit -> (Unix.file_descr, string) result
(** Bind + listen on a Unix-domain socket path. A stale {e socket} file
    at the path is unlinked and reclaimed; any other kind of file is an
    [Error] — the daemon must never destroy a mistyped data file. *)

(** {2 Pluggable request handling}

    The event loop is transport + framing only; request {e meaning}
    lives behind these hooks. A storage daemon plugs in {!Engine}
    ({!serve}); the cluster {!Router} plugs in fan-out handlers over the
    same loop. INGESTN body collection stays in the loop (it is
    connection-level framing): [on_batch] receives whole, well-formed
    batches, with malformed body lines already answered as line-numbered
    errors. Handler exceptions answer as error objects, same as engine
    exceptions. *)
type handlers = {
  on_request : Protocol.request -> string * Engine.action;
  on_batch : name:string -> (int * float) array -> string;
}

val serve_handlers : ?config:config -> handlers -> Unix.file_descr -> unit
(** Run the event loop on the calling domain until a session issues
    [SHUTDOWN] (i.e. [on_request] returns {!Engine.Stop}). Closes every
    connection and the listening socket before returning. Instrumented
    with [server.accept] / [server.session.timeout] /
    [server.session.line_too_long] counters. *)

val serve : ?config:config -> Engine.t -> Unix.file_descr -> unit
(** {!serve_handlers} over {!Engine.handle_request} /
    {!Engine.handle_ingest_many}. *)

(** {2 In-process daemon (tests, bench)} *)

type t
(** A daemon running on its own domain. *)

val start : ?config:config -> Engine.t -> t
(** Bind [127.0.0.1:0], then run {!serve} on a fresh domain. The engine
    (and its store) must not be touched directly by other domains while
    the daemon runs — talk to it through a {!Client}. *)

val start_handlers : ?config:config -> handlers -> t
(** {!start} with custom {!handlers} (how tests run an in-process
    {!Router}). The handlers run on the daemon's domain — any state they
    close over must not be touched by other domains while it runs. *)

val port : t -> int

val join : t -> unit
(** Wait for the daemon domain to finish (send [SHUTDOWN] first). *)
