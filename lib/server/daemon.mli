(** The serving loop: a minimal TCP / Unix-socket daemon over
    {!Protocol} + {!Engine}, stdlib [Unix] only.

    Sessions are handled {e sequentially} — one connection at a time —
    which matches the store's single-producer ingest contract (the
    parallelism lives below, in the sharded flush, not in the accept
    loop). A malformed request or a session-level exception answers with
    an error object and keeps the daemon alive; only [SHUTDOWN] (or
    closing the listening socket) stops the loop.

    Sessions are hardened against abusive peers: request lines are read
    through {!Protocol.Conn.input_line_bounded}, so an over-long line
    (slowloris, binary garbage) answers a structured
    [kind="line_too_long"] error and closes without unbounded buffering,
    and an optional [SO_RCVTIMEO] read timeout answers
    [kind="timeout"] and closes an idle connection. *)

type config = {
  backlog : int;  (** [Unix.listen] backlog (default 16) *)
  max_line_bytes : int;
      (** reject request lines longer than this (default 8192) *)
  read_timeout_s : float;
      (** per-session [SO_RCVTIMEO]; [0.] (default) = no timeout *)
}

val default_config : config

val listen_tcp :
  ?host:string -> ?backlog:int -> port:int -> unit -> Unix.file_descr * int
(** Bind + listen on [host:port] (default host ["127.0.0.1"]); returns
    the listening socket and the bound port — pass [port:0] to let the
    kernel pick one (the in-process test harness does). *)

val listen_unix :
  ?backlog:int -> path:string -> unit -> (Unix.file_descr, string) result
(** Bind + listen on a Unix-domain socket path. A stale {e socket} file
    at the path is unlinked and reclaimed; any other kind of file is an
    [Error] — the daemon must never destroy a mistyped data file. *)

val serve : ?config:config -> Engine.t -> Unix.file_descr -> unit
(** Run the accept loop on the calling domain until a session issues
    [SHUTDOWN]. Closes the listening socket before returning.
    Instrumented with [server.accept] / [server.session] counters and a
    [server.session] span per connection. *)

(** {2 In-process daemon (tests, bench)} *)

type t
(** A daemon running on its own domain. *)

val start : ?config:config -> Engine.t -> t
(** Bind [127.0.0.1:0], then run {!serve} on a fresh domain. The engine
    (and its store) must not be touched directly by other domains while
    the daemon runs — talk to it through a {!Client}. *)

val port : t -> int

val join : t -> unit
(** Wait for the daemon domain to finish (send [SHUTDOWN] first). *)
