type query_kind =
  | Max
  | Or
  | Distinct
  | Dominance
  | Jaccard
  | L1
  | Union
  | Intersection

type request =
  | Hello of int
  | Create of {
      name : string;
      tau : float option;
      k : int option;
      p : float option;
    }
  | Ingest of { name : string; key : int; weight : float }
  | Ingest_many of { name : string; count : int }
  | Query of { kind : query_kind; names : string list }
  | Snapshot of string
  | Stats
  | Flush
  | Pull of string
  | Sync
  | Quit
  | Shutdown

let version = 1

(* Batch size cap: 1024 records per INGESTN frame keeps the worst-case
   WAL payload ("B <name> <n>" + 1024 "<key> <%h weight>" pairs, ~45
   bytes each) comfortably under [Wal.max_payload] (64 KiB), so one
   batch is always one loggable frame. *)
let max_batch = 1024

let query_kind_name = function
  | Max -> "max"
  | Or -> "or"
  | Distinct -> "distinct"
  | Dominance -> "dominance"
  | Jaccard -> "jaccard"
  | L1 -> "l1"
  | Union -> "union"
  | Intersection -> "intersection"

let valid_name s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '.' || c = '-')
       s

let err message = Error { Sampling.Io.line = 0; message }

let parse_name what s =
  if valid_name s then Ok s
  else
    err
      (Printf.sprintf "bad %s %S (expected [A-Za-z0-9_.-]+)" what s)

(* Weights and thresholds arrive as decimal or hex float literals; both
   are accepted, both must be finite. *)
let parse_float what s =
  match float_of_string_opt s with
  | Some v when Float.is_finite v -> Ok v
  | Some v -> err (Printf.sprintf "%s %g is not finite" what v)
  | None -> err (Printf.sprintf "bad %s %S (expected a float)" what s)

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> err (Printf.sprintf "bad %s %S (expected an integer)" what s)

let ( let* ) = Result.bind

(* CREATE parameters are [key=value] tokens; unknown keys are rejected
   (a typo must not silently fall back to a default). *)
let parse_create_params tokens =
  let rec go acc = function
    | [] -> Ok acc
    | tok :: rest -> (
        match String.index_opt tok '=' with
        | None ->
            err (Printf.sprintf "bad CREATE parameter %S (expected key=value)" tok)
        | Some i -> (
            let key = String.sub tok 0 i in
            let value = String.sub tok (i + 1) (String.length tok - i - 1) in
            let tau, k, p = acc in
            match key with
            | "tau" ->
                let* v = parse_float "tau" value in
                if v <= 0. then err (Printf.sprintf "tau %g must be > 0" v)
                else go (Some v, k, p) rest
            | "k" ->
                let* v = parse_int "k" value in
                if v <= 0 then err (Printf.sprintf "k %d must be > 0" v)
                else go (tau, Some v, p) rest
            | "p" ->
                let* v = parse_float "p" value in
                if v <= 0. || v > 1. then
                  err (Printf.sprintf "p %g out of (0,1]" v)
                else go (tau, k, Some v) rest
            | _ ->
                err
                  (Printf.sprintf
                     "unknown CREATE parameter %S (expected tau=, k= or p=)" key)))
  in
  go (None, None, None) tokens

let parse line =
  let tokens =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun t -> t <> "")
  in
  match tokens with
  | [] -> err "empty request"
  | verb :: args -> (
      match (String.uppercase_ascii verb, args) with
      | "HELLO", [ v ] ->
          let* v = parse_int "protocol version" v in
          if v <> version then
            err
              (Printf.sprintf "unsupported protocol version %d (this server \
                               speaks %d)" v version)
          else Ok (Hello v)
      | "HELLO", _ -> err "HELLO takes exactly one argument: the version"
      | "CREATE", name :: params ->
          let* name = parse_name "instance name" name in
          let* tau, k, p = parse_create_params params in
          Ok (Create { name; tau; k; p })
      | "CREATE", [] -> err "CREATE needs an instance name"
      | "INGEST", [ name; key; weight ] ->
          let* name = parse_name "instance name" name in
          let* key = parse_int "key" key in
          let* weight = parse_float "weight" weight in
          if weight <= 0. then
            err (Printf.sprintf "weight %g must be > 0" weight)
          else Ok (Ingest { name; key; weight })
      | "INGEST", _ -> err "INGEST takes: <instance> <key> <weight>"
      | "INGESTN", [ name; count ] ->
          let* name = parse_name "instance name" name in
          let* count = parse_int "record count" count in
          if count < 1 || count > max_batch then
            err
              (Printf.sprintf "record count %d out of [1,%d]" count max_batch)
          else Ok (Ingest_many { name; count })
      | "INGESTN", _ ->
          err
            (Printf.sprintf
               "INGESTN takes: <instance> <count>, followed by <count> body \
                lines '<key> <weight>' (count <= %d)" max_batch)
      | "QUERY", kind :: names ->
          let* kind =
            match String.lowercase_ascii kind with
            | "max" -> Ok Max
            | "or" -> Ok Or
            | "distinct" -> Ok Distinct
            | "dominance" -> Ok Dominance
            | "jaccard" -> Ok Jaccard
            | "l1" -> Ok L1
            | "union" -> Ok Union
            | "intersection" -> Ok Intersection
            | k ->
                err
                  (Printf.sprintf
                     "unknown query kind %S (expected max, or, distinct, \
                      dominance, jaccard, l1, union or intersection)" k)
          in
          if List.length names < 2 then
            err "QUERY needs at least two instance names"
          else
            let* names =
              List.fold_left
                (fun acc n ->
                  let* acc = acc in
                  let* n = parse_name "instance name" n in
                  Ok (n :: acc))
                (Ok []) names
            in
            Ok (Query { kind; names = List.rev names })
      | "QUERY", _ -> err "QUERY takes: <kind> <instance> <instance> [...]"
      | "SNAPSHOT", [ path ] when path <> "" -> Ok (Snapshot path)
      | "SNAPSHOT", _ -> err "SNAPSHOT takes exactly one argument: the path"
      | "STATS", [] -> Ok Stats
      | "STATS", _ -> err "STATS takes no arguments"
      | "FLUSH", [] -> Ok Flush
      | "FLUSH", _ -> err "FLUSH takes no arguments"
      | "PULL", [ name ] ->
          let* name = parse_name "instance name" name in
          Ok (Pull name)
      | "PULL", _ -> err "PULL takes exactly one argument: the instance name"
      | "SYNC", [] -> Ok Sync
      | "SYNC", _ -> err "SYNC takes no arguments"
      | "QUIT", [] -> Ok Quit
      | "QUIT", _ -> err "QUIT takes no arguments"
      | "SHUTDOWN", [] -> Ok Shutdown
      | "SHUTDOWN", _ -> err "SHUTDOWN takes no arguments"
      | v, _ -> err (Printf.sprintf "unknown request %S" v))

(* A batch body line is "<key> <weight>" — same key/weight grammar and
   validation as INGEST, without re-tokenizing the verb and name n
   times. [line] (1-based body line index) stamps any diagnostic, so a
   NaN/infinite/negative weight deep inside a batch is reported with the
   offending body line, exactly like the single-line path reports the
   offending tokens. *)
let parse_batch_record ?(line = 0) s =
  let tokens =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun t -> t <> "")
  in
  (match tokens with
  | [ key; weight ] ->
      let* key = parse_int "key" key in
      let* weight = parse_float "weight" weight in
      if weight <= 0. then err (Printf.sprintf "weight %g must be > 0" weight)
      else Ok (key, weight)
  | _ -> err "batch record takes: <key> <weight>")
  |> Result.map_error (fun e -> { e with Sampling.Io.line })

(* Shared by Client.ingest_many, the CLI coalescer and the bench: the
   whole batch as one multi-line payload (header + body, no trailing
   newline) so a retry resends it atomically over one write. Weights are
   emitted as lossless hex literals — the server parses back the exact
   same float, so batched and line-at-a-time ingest are bit-identical. *)
let batch_payload ~name records =
  let n = Array.length records in
  if n < 1 || n > max_batch then
    invalid_arg
      (Printf.sprintf "Protocol.batch_payload: %d records out of [1,%d]" n
         max_batch);
  let buf = Buffer.create (24 + (24 * n)) in
  Buffer.add_string buf (Printf.sprintf "INGESTN %s %d" name n);
  Array.iter
    (fun (key, weight) ->
      Buffer.add_string buf (Printf.sprintf "\n%d %h" key weight))
    records;
  Buffer.contents buf

(* --- response assembly --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""

let jfloat v =
  if Float.is_nan v then jstr "nan"
  else if v = infinity then jstr "inf"
  else if v = neg_infinity then jstr "-inf"
  else Printf.sprintf "%.17g" v

let jint = string_of_int

let ok_fields fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"ok\":true";
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      Buffer.add_string buf (json_escape k);
      Buffer.add_string buf "\":";
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Error responses optionally carry a machine-readable [kind] (e.g.
   "overloaded", "timeout", "line_too_long") and a retry hint, so
   clients can distinguish back-off-and-retry from fix-your-request
   without parsing prose. *)
let error ?kind ?retry_after_ms msg =
  let buf = Buffer.create 96 in
  Buffer.add_string buf "{\"ok\":false,\"error\":";
  Buffer.add_string buf (jstr msg);
  (match kind with
  | Some k ->
      Buffer.add_string buf ",\"kind\":";
      Buffer.add_string buf (jstr k)
  | None -> ());
  (match retry_after_ms with
  | Some ms ->
      Buffer.add_string buf ",\"retry_after_ms\":";
      Buffer.add_string buf (jint ms)
  | None -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let greeting =
  ok_fields
    [ ("server", jstr "optsample-serve"); ("protocol", jint version) ]

(* Multi-line responses (PULL, SYNC): a JSON header whose ["lines"]
   field announces how many raw payload lines follow — the response
   direction's mirror of INGESTN's request framing. Payload lines are
   raw text (the snapshot / summary formats), never JSON. *)
let ok_lines fields lines =
  String.concat "\n"
    (ok_fields (fields @ [ ("lines", jint (List.length lines)) ]) :: lines)

(* --- response inspection --- *)

let json_field key line =
  let needle = "\"" ^ key ^ "\":" in
  let nlen = String.length needle and llen = String.length line in
  let rec find i =
    if i + nlen > llen then None
    else if String.sub line i nlen = needle then Some (i + nlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      (* Scan the value: a string (quote-aware) or a scalar up to the
         next top-level ',' or '}'. Values this protocol emits never
         nest objects, so no brace counting is needed. *)
      if start < llen && line.[start] = '"' then begin
        let buf = Buffer.create 16 in
        let rec scan i =
          if i >= llen then None
          else
            match line.[i] with
            | '\\' when i + 1 < llen ->
                Buffer.add_char buf line.[i + 1];
                scan (i + 2)
            | '"' -> Some (Buffer.contents buf)
            | c ->
                Buffer.add_char buf c;
                scan (i + 1)
        in
        scan (start + 1)
      end
      else begin
        let stop = ref start in
        while
          !stop < llen && line.[!stop] <> ',' && line.[!stop] <> '}'
        do
          incr stop
        done;
        if !stop > start then Some (String.sub line start (!stop - start))
        else None
      end

let json_float_field key line =
  Option.bind (json_field key line) float_of_string_opt

let json_ok line = json_field "ok" line = Some "true"

(* --- connection I/O --- *)

module Conn = struct
  module F = Numerics.Faultify

  type t = { ic : in_channel; oc : out_channel }

  let of_fd fd = { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

  let close t =
    (* One close for both channels: they share the fd. *)
    try close_out t.oc with Sys_error _ -> ()

  (* select-based sleep: the blocking sleep syscalls are banned under
     lib/server (they park a whole domain); a select with no fds is the
     same wait without tripping the discipline lint. *)
  let sleep_s s = ignore (Unix.select [] [] [] s)

  let read_fault t =
    match F.fire_io ~site:"conn.read" ~kinds:[ F.Io_drop; F.Io_delay ] with
    | Some F.Io_drop ->
        close t;
        true
    | Some F.Io_delay ->
        sleep_s 0.02;
        false
    | _ -> false

  let strip_cr line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

  let input_line_opt t =
    if read_fault t then None
    else
      match input_line t.ic with
      | line -> Some (strip_cr line)
      | exception End_of_file -> None
      | exception Sys_error _ -> None
      | exception Sys_blocked_io -> None

  let input_line_bounded t ~max =
    if read_fault t then `Eof
    else
      let buf = Buffer.create 128 in
      let rec go () =
        match input_char t.ic with
        | '\n' -> `Line (strip_cr (Buffer.contents buf))
        | _ when Buffer.length buf >= max -> `Too_long
        | c ->
            Buffer.add_char buf c;
            go ()
        | exception End_of_file ->
            if Buffer.length buf = 0 then `Eof
            else `Line (strip_cr (Buffer.contents buf))
        | exception Sys_error _ ->
            (* A read timeout (SO_RCVTIMEO) surfaces as Sys_error from
               the buffered channel; a half-received line is abandoned
               with the session. *)
            `Timeout
        | exception Sys_blocked_io ->
            (* SO_RCVTIMEO expiry is EAGAIN, which the channel layer
               raises as Sys_blocked_io, not Sys_error. *)
            `Timeout
      in
      go ()

  let output_line t line =
    match F.fire_io ~site:"conn.write" ~kinds:[ F.Io_drop ] with
    | Some F.Io_drop ->
        close t;
        raise (Sys_error "connection dropped (injected)")
    | _ ->
        output_string t.oc line;
        output_char t.oc '\n';
        flush t.oc
end
