module P = Protocol
module Designer = Estcore.Designer
module Distinct = Aggregates.Distinct

type t = { t_store : Store.t; t_wal : Wal.t option }

let create ?wal s = { t_store = s; t_wal = wal }
let store t = t.t_store
let wal t = t.t_wal

type action = Continue | Close | Stop

(* Derived OR^(L) tables, memoized under the problem fingerprint. The
   cache is monomorphic in the outcome key, so the engine owns one for
   the binary-known-seeds key type. *)
let or_cache : (bool array * bool array) Designer.cache =
  Designer.cache ~name:"server.or" ()

let or2 v = if v.(0) > 0.5 || v.(1) > 0.5 then 1. else 0.

(* [~fname]/[~tag] give the problem a precomputed fingerprint key, so
   the per-query cache lookup is a cheap string build instead of the
   structural MD5 walk over the whole 16-vector domain. *)
let or_problem ~p1 ~p2 =
  Designer.Problems.binary_known_seeds ~fname:"or2" ~probs:[| p1; p2 |] ~f:or2
    ()
  |> Designer.Problems.sort_data ~tag:"order-l" Designer.Problems.order_l

(* Flattened 16-cell copies of the served OR^(L) tables, keyed by the
   probability pair. [Or_weighted.Table.of_estimator] copies the derived
   cell values verbatim, so the flat path returns bit-identical sums. *)
let or_table_cache : (float * float, Estcore.Or_weighted.Table.t) Numerics.Memo.t
    =
  Numerics.Memo.create ~capacity:64 ~name:"server.or_table"
    ~hash:(fun (p1, p2) ->
      (* bit-pattern hash, consistent with Float.equal on the validated
         domain p ∈ (0,1] (no -0. or nan to distinguish) *)
      Int64.to_int (Int64.bits_of_float p1)
      lxor (Int64.to_int (Int64.bits_of_float p2) * 0x9e3779b1))
    ~equal:(fun (a1, a2) (b1, b2) -> Float.equal a1 b1 && Float.equal a2 b2)
    ()

let or_table ~p1 ~p2 table =
  Numerics.Memo.find_or_add or_table_cache (p1, p2) (fun () ->
      Estcore.Or_weighted.Table.of_estimator table)

let or_flat_tables ~p1 ~p2 =
  match Designer.solve_order_cached ~cache:or_cache (or_problem ~p1 ~p2) with
  | Ok table -> Ok (table, or_table ~p1 ~p2 table)
  | Error e -> Error e

module ISet = Set.Make (Int)

(* Sum of per-key table lookups over the union of the two samples; the
   outcome key of key h is its (below, sampled) indicator pair, with
   seeds recomputed at the instances' recorded ids. The reference for
   {!eval_or_flat} below; kept as the oracle the bit-identity tests
   compare against. *)
let eval_or_table table seeds ~ids:(id1, id2) ~p1 ~p2 ~s1 ~s2 =
  let set1 = ISet.of_list s1 and set2 = ISet.of_list s2 in
  ISet.fold
    (fun h acc ->
      let u1 = Sampling.Seeds.seed seeds ~instance:id1 ~key:h in
      let u2 = Sampling.Seeds.seed seeds ~instance:id2 ~key:h in
      let key =
        ([| u1 <= p1; u2 <= p2 |], [| ISet.mem h set1; ISet.mem h set2 |])
      in
      acc +. Designer.lookup table key)
    (ISet.union set1 set2)
    0.

(* Serving path of [QUERY or]: same ascending key walk and same
   left-to-right accumulation as {!eval_or_table}, but each key costs
   one cell index and one unboxed load instead of two fresh bool arrays
   and a hashtable probe — bit-identical by construction. *)
let eval_or_flat flat seeds ~ids:(id1, id2) ~p1 ~p2 ~s1 ~s2 =
  let set1 = ISet.of_list s1 and set2 = ISet.of_list s2 in
  let acc = Float.Array.make 1 0. in
  ISet.iter
    (fun h ->
      let u1 = Sampling.Seeds.seed seeds ~instance:id1 ~key:h in
      let u2 = Sampling.Seeds.seed seeds ~instance:id2 ~key:h in
      let code =
        Estcore.Or_weighted.Table.code ~b0:(u1 <= p1) ~b1:(u2 <= p2)
          ~s0:(ISet.mem h set1) ~s1:(ISet.mem h set2)
      in
      Estcore.Or_weighted.Table.add_into flat ~code acc)
    (ISet.union set1 set2);
  Float.Array.get acc 0

let select_all _ = true

let mode_name = function
  | Sampling.Seeds.Shared -> "shared"
  | Sampling.Seeds.Independent -> "independent"

let pps_samples_of st insts =
  {
    Aggregates.Sum_agg.seeds = Store.seeds st;
    taus =
      Array.of_list
        (List.map (fun i -> (Store.instance_config i).Store.tau) insts);
    samples = Array.of_list (List.map Store.pps_sample insts);
  }

let names_field insts =
  "[" ^ String.concat "," (List.map (fun i -> P.jstr (Store.name i)) insts) ^ "]"

let run_max st insts =
  let ps = pps_samples_of st insts in
  let r = List.length insts in
  let ht = Aggregates.Sum_agg.estimate_flat ps ~est:`Max_ht ~select:select_all in
  if r = 2 then
    let l =
      Aggregates.Sum_agg.estimate_flat ps ~est:`Max_l ~select:select_all
    in
    [ ("estimate", P.jfloat l); ("estimator", P.jstr "max-l");
      ("ht", P.jfloat ht) ]
  else
    [ ("estimate", P.jfloat ht); ("estimator", P.jstr "max-ht");
      ("ht", P.jfloat ht) ]

let run_or st insts =
  let seeds = Store.seeds st in
  let probs =
    Array.of_list (List.map (fun i -> (Store.instance_config i).Store.p) insts)
  in
  let ids = Array.of_list (List.map Store.id insts) in
  let samples = Array.of_list (List.map Store.binary_sample insts) in
  match insts with
  | [ _; _ ] ->
      let p1 = probs.(0) and p2 = probs.(1) in
      let s1 = samples.(0) and s2 = samples.(1) in
      let classes =
        Distinct.classify ~ids:(ids.(0), ids.(1)) seeds ~p1 ~p2 ~s1 ~s2
          ~select:select_all
      in
      let closed = Distinct.l_estimate classes ~p1 ~p2 in
      let ht = Distinct.ht_estimate classes ~p1 ~p2 in
      let estimate, provenance =
        (* Degradation ladder: machine-derived table first, closed form
           when Algorithm 1 fails on this probability pair. *)
        match Designer.solve_order_cached ~cache:or_cache (or_problem ~p1 ~p2) with
        | Ok table ->
            let flat = or_table ~p1 ~p2 table in
            ( eval_or_flat flat seeds ~ids:(ids.(0), ids.(1)) ~p1 ~p2 ~s1 ~s2,
              "designer" )
        | Error cause ->
            Numerics.Robust.note_degradation ~site:"server.query.or"
              ~fallback:"closed-form"
              (Numerics.Robust.fail Numerics.Robust.Designer
                 (Numerics.Robust.Invalid_input cause));
            (closed, "closed-form")
      in
      [ ("estimate", P.jfloat estimate); ("estimator", P.jstr "or-l");
        ("provenance", P.jstr provenance); ("closed_form", P.jfloat closed);
        ("ht", P.jfloat ht) ]
  | _ ->
      let m = Distinct.Multi.create ~probs in
      let l = Distinct.Multi.estimate ~ids m seeds ~samples ~select:select_all in
      let ht =
        Distinct.Multi.ht_estimate ~ids ~probs seeds ~samples ~select:select_all
      in
      [ ("estimate", P.jfloat l); ("estimator", P.jstr "or-multi-l");
        ("provenance", P.jstr "general-solver"); ("ht", P.jfloat ht) ]

let run_distinct st insts =
  let seeds = Store.seeds st in
  let probs =
    Array.of_list (List.map (fun i -> (Store.instance_config i).Store.p) insts)
  in
  let ids = Array.of_list (List.map Store.id insts) in
  let samples = Array.of_list (List.map Store.binary_sample insts) in
  match insts with
  | [ _; _ ] ->
      let p1 = probs.(0) and p2 = probs.(1) in
      let classes =
        Distinct.classify ~ids:(ids.(0), ids.(1)) seeds ~p1 ~p2
          ~s1:samples.(0) ~s2:samples.(1) ~select:select_all
      in
      [ ("estimate", P.jfloat (Distinct.l_estimate classes ~p1 ~p2));
        ("estimator", P.jstr "distinct-l");
        ("u", P.jfloat (Distinct.u_estimate classes ~p1 ~p2));
        ("ht", P.jfloat (Distinct.ht_estimate classes ~p1 ~p2));
        ("f1q", P.jint classes.Distinct.f1q);
        ("fq1", P.jint classes.Distinct.fq1);
        ("f11", P.jint classes.Distinct.f11);
        ("f10", P.jint classes.Distinct.f10);
        ("f01", P.jint classes.Distinct.f01) ]
  | _ ->
      let m = Distinct.Multi.create ~probs in
      let l = Distinct.Multi.estimate ~ids m seeds ~samples ~select:select_all in
      let ht =
        Distinct.Multi.ht_estimate ~ids ~probs seeds ~samples ~select:select_all
      in
      [ ("estimate", P.jfloat l); ("estimator", P.jstr "distinct-multi-l");
        ("ht", P.jfloat ht) ]

let run_dominance st insts =
  let ps = pps_samples_of st insts in
  let r = List.length insts in
  let max_ht = Aggregates.Dominance.max_dominance_ht ps ~select:select_all in
  let min_ht = Aggregates.Dominance.min_dominance_ht ps ~select:select_all in
  let fields =
    [ ("max_ht", P.jfloat max_ht); ("min_ht", P.jfloat min_ht) ]
  in
  if r = 2 then
    let l = Aggregates.Dominance.max_dominance_l ps ~select:select_all in
    (("estimate", P.jfloat l) :: ("estimator", P.jstr "maxdom-l") :: fields)
  else
    (("estimate", P.jfloat max_ht) :: ("estimator", P.jstr "maxdom-ht")
    :: fields)

(* Similarity / distance queries: the union and intersection sum
   aggregates through the Monotone L* engine, one columnar walk for
   both ({!Aggregates.Similarity.sums_flat}), with jaccard and l1
   derived from the pair. Guard degradations (a poisoned per-key
   estimate clamped to 0) surface in the response's [degradations]
   field like every other ladder. Shared-seed stores only: under
   independent seeds the joint inclusion law is a product, not the
   diagonal the L* forms integrate over, so the engine refuses rather
   than serve a silently biased answer. *)
let run_similarity st kind insts =
  match (Store.config st).Store.mode with
  | Sampling.Seeds.Independent ->
      Error
        "similarity queries need coordinated samples: restart with shared \
         seeds (serve --shared-seeds)"
  | Sampling.Seeds.Shared -> (
      match (kind, insts) with
      | P.L1, _ :: _ :: _ :: _ ->
          Error
            (Printf.sprintf "l1 takes exactly two instances (got %d)"
               (List.length insts))
      | _ ->
          let ps = pps_samples_of st insts in
          let s = Aggregates.Similarity.sums_flat ps ~select:select_all in
          let tail =
            [ ("union", P.jfloat s.Aggregates.Similarity.union_hat);
              ("intersection", P.jfloat s.Aggregates.Similarity.inter_hat) ]
          in
          let estimate, estimator =
            match kind with
            | P.Union -> (s.Aggregates.Similarity.union_hat, "union-lstar")
            | P.Intersection ->
                (s.Aggregates.Similarity.inter_hat, "intersection-lstar")
            | P.Jaccard -> (Aggregates.Similarity.jaccard s, "jaccard-lstar")
            | _ -> (Aggregates.Similarity.l1 s, "l1-lstar")
          in
          Ok
            (("estimate", P.jfloat estimate)
            :: ("estimator", P.jstr estimator)
            :: tail))

let query t kind names =
  let st = t.t_store in
  let resolve name =
    match Store.find st name with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "unknown instance %S" name)
  in
  let rec resolve_all = function
    | [] -> Ok []
    | n :: rest ->
        Result.bind (resolve n) (fun i ->
            Result.map (fun is -> i :: is) (resolve_all rest))
  in
  match resolve_all names with
  | Error _ as e -> e
  | Ok insts ->
      let kind_name = P.query_kind_name kind in
      Numerics.Obs.span ~cat:"server" ("server.query/" ^ kind_name)
      @@ fun () ->
      Store.flush st;
      let before = Numerics.Robust.degradation_count () in
      let fields_r =
        match kind with
        | P.Max -> Ok (run_max st insts)
        | P.Or -> Ok (run_or st insts)
        | P.Distinct -> Ok (run_distinct st insts)
        | P.Dominance -> Ok (run_dominance st insts)
        | P.Jaccard | P.L1 | P.Union | P.Intersection ->
            run_similarity st kind insts
      in
      Result.map
        (fun fields ->
          let degraded = Numerics.Robust.degradation_count () - before in
          P.ok_fields
            (("kind", P.jstr kind_name)
            :: ("instances", names_field insts)
            :: ("r", P.jint (List.length insts))
            :: fields
            @ [ ("degradations", P.jint degraded) ]))
        fields_r

let instance_stats inst =
  let cfg = Store.instance_config inst in
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> P.jstr k ^ ":" ^ v)
         [ ("name", P.jstr (Store.name inst)); ("id", P.jint (Store.id inst));
           ("records", P.jint (Store.records inst));
           ("volume", P.jfloat (Store.volume inst));
           ("cardinality", P.jint (Store.cardinality inst));
           ("tau", P.jfloat cfg.Store.tau); ("k", P.jint cfg.Store.k);
           ("p", P.jfloat cfg.Store.p);
           ( "pps_size",
             P.jint (List.length (Store.pps_sample inst).Sampling.Poisson.entries)
           );
           ( "bk_size",
             P.jint
               (List.length (Store.bottom_k inst).Sampling.Bottom_k.entries) );
           ("binary_size", P.jint (List.length (Store.binary_sample inst)));
           ("varopt_size", P.jint (List.length (Store.varopt_entries inst))) ])
  ^ "}"

let shard_stats_json st =
  let items =
    List.map
      (fun (s : Store.shard_stats) ->
        Printf.sprintf "{\"shard\":%d,\"queue_depth\":%d,\"applied\":%d}"
          s.Store.shard s.Store.queue_depth s.Store.applied)
      (Store.shard_stats st)
  in
  "[" ^ String.concat "," items ^ "]"

let run_stats st =
  Store.flush st;
  let insts = Store.instances st in
  P.ok_fields
    [ ("instances",
       "[" ^ String.concat "," (List.map instance_stats insts) ^ "]");
      ("shards", shard_stats_json st);
      ("pending", P.jint (Store.pending st));
      ("degradations", P.jint (Numerics.Robust.degradation_count ())) ]

(* Mutating requests follow the write-ahead discipline: validate (no
   side effect), log to the WAL, then apply. An op that fails to log is
   answered as an error and never applied — the log is always a superset
   of acknowledged state, so replay reproduces it exactly. *)
let log_op t op =
  match t.t_wal with None -> Ok () | Some wal -> Wal.append wal op

(* Back-off hint: proportional to how deep the shard backlog is — a
   drain pass clears thousands of records per millisecond, so the
   constant is deliberately small. *)
let overloaded_response depth limit =
  P.error ~kind:"overloaded"
    ~retry_after_ms:(1 + (depth / 1024))
    (Printf.sprintf "overloaded: %d records pending on shard (limit %d)" depth
       limit)

(* One batch = one admission check, one WAL frame (group commit), one
   mailbox CAS — same write-ahead discipline as single INGEST, amortized
   over the whole batch. All-or-nothing end to end: a rejected or
   overloaded batch applies no record and logs no frame. *)
let handle_ingest_many t ~name records =
  let st = t.t_store in
  match Store.check_ingest_many st ~name ~records with
  | Error (Store.Overloaded { depth; limit }) -> overloaded_response depth limit
  | Error (Store.Rejected m) -> P.error m
  | Ok () -> (
      match log_op t (Wal.Ingest_batch { name; records }) with
      | Error m -> P.error ~kind:"wal" m
      | Ok () -> (
          match Store.ingest_many st ~name ~records with
          | Ok () ->
              P.ok_fields [ ("ingested", P.jint (Array.length records)) ]
          | Error e -> P.error (Store.ingest_error_to_string e)))

let handle_request t req =
  let st = t.t_store in
  match req with
  | P.Hello _ -> (P.ok_fields [ ("protocol", P.jint P.version) ], Continue)
  | P.Create { name; tau; k; p } -> (
      (* Pre-resolve defaults and pre-check the name so the logged op is
         self-contained (replay is independent of server defaults) and
         logging cannot be followed by a failing apply. *)
      let cfg = Store.config st in
      let tau = Option.value tau ~default:cfg.Store.default_tau in
      let k = Option.value k ~default:cfg.Store.default_k in
      let p = Option.value p ~default:cfg.Store.default_p in
      if Store.find st name <> None then
        (P.error (Printf.sprintf "instance %S already exists" name), Continue)
      else
        match log_op t (Wal.Create { name; tau; k; p }) with
        | Error m -> (P.error ~kind:"wal" m, Continue)
        | Ok () -> (
            match Store.create_instance st ~name ~tau ~k ~p () with
            | Ok inst ->
                ( P.ok_fields
                    [ ("name", P.jstr name); ("id", P.jint (Store.id inst));
                      ("tau", P.jfloat tau); ("k", P.jint k);
                      ("p", P.jfloat p) ],
                  Continue )
            | Error m -> (P.error m, Continue)))
  | P.Ingest { name; key; weight } -> (
      match Store.check_ingest st ~name ~weight with
      | Error (Store.Overloaded { depth; limit }) ->
          (overloaded_response depth limit, Continue)
      | Error (Store.Rejected m) -> (P.error m, Continue)
      | Ok () -> (
          match log_op t (Wal.Ingest { name; key; weight }) with
          | Error m -> (P.error ~kind:"wal" m, Continue)
          | Ok () -> (
              match Store.ingest st ~name ~key ~weight with
              | Ok () -> (P.ok_fields [], Continue)
              | Error e -> (P.error (Store.ingest_error_to_string e), Continue))))
  | P.Ingest_many { name = _; count } ->
      (* The header alone is not executable — the [count] body lines are
         connection-level framing, collected by the daemon's event loop
         (or any transport) and executed via [handle_ingest_many]. *)
      ( P.error
          (Printf.sprintf
             "INGESTN header without its %d body lines (batched framing is \
              connection-level)" count),
        Continue )
  | P.Query { kind; names } -> (
      match query t kind names with
      | Ok response -> (response, Continue)
      | Error m ->
          (* Every query failure is a fix-your-request condition (unknown
             instance, wrong arity, wrong seed mode) — say so in a
             machine-readable way. *)
          (P.error ~kind:"bad_request" m, Continue))
  | P.Snapshot path -> (
      Store.flush st;
      match Snapshot.write st ~path with
      | Error m -> (P.error m, Continue)
      | Ok n -> (
          let base = [ ("path", P.jstr path); ("instances", P.jint n) ] in
          (* With a WAL attached, a manual SNAPSHOT doubles as a
             checkpoint: the log rolls over and replay-on-restart
             shortens to the delta since this point. *)
          match t.t_wal with
          | None -> (P.ok_fields base, Continue)
          | Some wal -> (
              match Wal.checkpoint wal st with
              | Ok epoch ->
                  (P.ok_fields (base @ [ ("epoch", P.jint epoch) ]), Continue)
              | Error m -> (P.error ~kind:"wal" m, Continue))))
  | P.Pull name -> (
      match Store.find st name with
      | None ->
          (P.error (Printf.sprintf "unknown instance %S" name), Continue)
      | Some inst ->
          Store.flush st;
          let cfg = Store.config st in
          let lines = Merge.payload (Store.export_summary inst) in
          ( P.ok_lines
              [ ("name", P.jstr name); ("id", P.jint (Store.id inst));
                ("master", P.jint cfg.Store.master);
                ("mode", P.jstr (mode_name cfg.Store.mode)) ]
              lines,
            Continue ))
  | P.Sync -> (
      Store.flush st;
      (* Checkpoint-then-ship: with a WAL attached the shipped snapshot
         is exactly the new checkpoint's content (same Snapshot.to_string
         of the same flushed store), so a follower holding the payload
         holds the checkpoint. *)
      let extra =
        match t.t_wal with
        | None -> Ok []
        | Some wal -> (
            match Wal.checkpoint wal st with
            | Ok epoch -> Ok [ ("epoch", P.jint epoch) ]
            | Error m -> Error m)
      in
      match extra with
      | Error m -> (P.error ~kind:"wal" m, Continue)
      | Ok extra ->
          let cfg = Store.config st in
          let lines =
            match
              List.rev (String.split_on_char '\n' (Snapshot.to_string st))
            with
            | "" :: rev -> List.rev rev
            | rev -> List.rev rev
          in
          ( P.ok_lines
              (("instances", P.jint (List.length (Store.instances st)))
               :: ("master", P.jint cfg.Store.master)
               :: ("mode", P.jstr (mode_name cfg.Store.mode))
               :: extra)
              lines,
            Continue ))
  | P.Stats -> (run_stats st, Continue)
  | P.Flush -> (
      match log_op t Wal.Flush with
      | Error m -> (P.error ~kind:"wal" m, Continue)
      | Ok () ->
          Store.flush st;
          (P.ok_fields [ ("pending", P.jint (Store.pending st)) ], Continue))
  | P.Quit -> (P.ok_fields [ ("bye", P.jstr "quit") ], Close)
  | P.Shutdown -> (P.ok_fields [ ("bye", P.jstr "shutdown") ], Stop)

let handle_line t line =
  match P.parse line with
  | Ok req -> handle_request t req
  | Error e ->
      (* Structured kind so a client that sent an unknown verb or a
         malformed token can tell fix-your-request from back-off — and a
         regression test can pin that the session survives it. *)
      ( P.error ~kind:"bad_request" (Sampling.Io.parse_error_to_string e),
        Continue )
