(** Query execution over live {!Store} summaries.

    The engine turns parsed {!Protocol.request}s into one-line JSON
    responses. Every query flushes the store first (so answers reflect
    all ingested records), then routes to the estimation pipeline:

    - [max] — the sum aggregate of max over the instances' live PPS
      samples: per-key [max^(L)] ({!Estcore.Max_pps.l}) for r = 2 (the
      paper's closed form), the [max^(HT)] baseline for any r. Both are
      reported; [estimate] carries the preferred one.
    - [or] — binary OR / distinct count over the live binary support
      samples. The per-key table is machine-derived by Algorithm 1 on
      {!Estcore.Designer.Problems.binary_known_seeds} (memoized in a
      designer cache under the problem's precomputed cheap fingerprint),
      then flattened into an {!Estcore.Or_weighted.Table} (memoized per
      probability pair) so serving reads one unboxed cell per key —
      bit-identical to the hashtable walk; when derivation
      fails the engine degrades to the closed-form [OR^(L)]
      ({!Aggregates.Distinct.l_estimate}) and says so in the
      [provenance] field — the {!Numerics.Robust} ladder pattern.
      r > 2 routes to {!Aggregates.Distinct.Multi} (Theorem 4.1 solver).
    - [distinct] — the L / U / HT distinct-count estimates with the
      five outcome-class counts (Section 8.1).
    - [dominance] — max-dominance ([max^(L)] for r = 2, HT for any r)
      and min-dominance (HT) over the live PPS samples (Section 8.2).
    - [jaccard] / [l1] / [union] / [intersection] — similarity and
      distance queries served by the {!Estcore.Monotone} L* engine over
      the live PPS samples ({!Aggregates.Similarity}): weighted
      union/intersection sums, their ratio (jaccard) and difference
      (l1, r = 2 only). Shared-seed stores only — an independent-seed
      store answers [kind="bad_request"] instead of a silently biased
      estimate, and every other query refusal (unknown instance, wrong
      arity, unknown verb at the parse layer) carries the same
      structured kind.

    Responses carry a [degradations] field — the number of
    {!Numerics.Robust} fallbacks consumed while answering — so clients
    see degraded answers without scraping logs. Each query runs under an
    {!Numerics.Obs} span named [server.query/<kind>]. *)

type t

val mode_name : Sampling.Seeds.mode -> string
(** ["shared"] / ["independent"] — the wire spelling used by PULL / SYNC
    headers and the snapshot format. *)

val eval_or_table :
  (bool array * bool array) Estcore.Designer.estimator ->
  Sampling.Seeds.t ->
  ids:int * int ->
  p1:float ->
  p2:float ->
  s1:int list ->
  s2:int list ->
  float
(** Reference OR^(L) sum: per-key hashtable lookups on freshly built
    (below, sampled) keys. Exposed as the oracle the bit-identity tests
    compare the serving path against. *)

val eval_or_flat :
  Estcore.Or_weighted.Table.t ->
  Sampling.Seeds.t ->
  ids:int * int ->
  p1:float ->
  p2:float ->
  s1:int list ->
  s2:int list ->
  float
(** The serving path: same walk through a flattened 16-cell table —
    bit-identical to {!eval_or_table} on the table it was flattened
    from. *)

val or_flat_tables : p1:float -> p2:float -> ((bool array * bool array) Estcore.Designer.estimator * Estcore.Or_weighted.Table.t, string) result
(** Derive (memoized) the served OR^(L) table for a probability pair and
    its flattened copy — the exact pair [QUERY or] uses; for tests. *)

val create : ?wal:Wal.t -> Store.t -> t
(** With [?wal], mutating requests (CREATE / INGEST / FLUSH) follow the
    write-ahead discipline — validate, log, apply — so the log is always
    a superset of acknowledged state; SNAPSHOT additionally rolls the
    log over as a {!Wal.checkpoint} (the response gains an [epoch]
    field). An overloaded store answers a structured error with
    [kind="overloaded"] and a [retry_after_ms] hint instead of queueing
    unboundedly. *)

val store : t -> Store.t
val wal : t -> Wal.t option

type action = Continue | Close | Stop

val handle_ingest_many : t -> name:string -> (int * float) array -> string
(** Execute one whole [INGESTN] batch: one admission check
    ({!Store.check_ingest_many}), one {!Wal.Ingest_batch} frame (the
    group commit), one {!Store.ingest_many} push — all-or-nothing, same
    write-ahead discipline and structured [overloaded] / [wal] errors as
    single INGEST. Returns the single JSON response for the batch. *)

val handle_request : t -> Protocol.request -> string * action
(** Execute one request; returns the response and what the session
    should do next ([Close] after QUIT, [Stop] after SHUTDOWN). Most
    responses are one JSON line; [PULL] answers {!Protocol.ok_lines}
    with the instance's {!Merge.payload}, and [SYNC] answers the full
    snapshot text the same way (taking a {!Wal.checkpoint} first when a
    WAL is attached — the response carries the new [epoch], and the
    shipped payload {e is} the checkpoint's content, which is how a
    follower receives checkpoints for failover). *)

val handle_line : t -> string -> string * action
(** {!Protocol.parse} + {!handle_request}; malformed requests produce an
    error response and [Continue]. *)

val query :
  t -> Protocol.query_kind -> string list -> (string, string) result
(** The query path alone (flush + estimate + response assembly), exposed
    so tests and the bench can compare server answers against the batch
    pipeline without a transport. *)
