(** Bit-deterministic merge of instance summaries — the algebra behind
    cluster mode.

    Every {!Store} summary is a pure function of the accumulated per-key
    weights and the recorded seeds, so merging reduces to summing the
    weight maps and re-deriving only the entries whose inputs changed:

    - {b weights / volume / records} — pointwise (float / int) sums;
    - {b binary support} — exact union ([u(h) ≤ p] depends on the seed
      alone);
    - {b PPS} — union, with the inclusion predicate [v ≥ u(h)·tau]
      re-tested for keys both sides held (each side may sit below the
      threshold while the sum crosses it); recorded values are refreshed
      to the merged weights;
    - {b bottom-k} — union of the two [k+1]-smallest working sets plus
      every overlap key (ranks recomputed from merged weights where the
      weight changed), truncated to the [k+1] smallest [(rank, key)]
      pairs. Ranks are monotone nonincreasing in the weight, so this
      candidate set provably contains the true working set of the union;
    - {b VarOpt} — rebuilt canonically from the merged weights at
      {!Store.install_summary} time (the snapshot-restore law; no query
      kind reads the reservoir).

    Laws, tested in [test/test_merge.ml]: [merge] is commutative,
    associative up to bit-identity, has the empty summary as identity,
    and satisfies [merge (ingest A) (ingest B) ≡ ingest (A ∪ B)]
    bit-for-bit whenever the per-key weight sums are exact — trivially
    when the key sets are disjoint, which the {!Router}'s hash placement
    guarantees.

    Both stores must share the seed universe (same master seed and
    mode — the [seeds] argument) and the two sides of a merge must agree
    on instance name, id and [tau]/[k]/[p]; anything else is an
    [Error]. *)

val merge :
  Sampling.Seeds.t ->
  Store.summary ->
  Store.summary ->
  (Store.summary, string) result

val merge_all :
  Sampling.Seeds.t -> Store.summary list -> (Store.summary, string) result
(** Left fold of {!merge}; [Error] on an empty list. *)

(** {2 Wire payload}

    Line-oriented, floats as lossless [%h] hex literals, every section
    sorted (byte-stable — the same guarantee as the snapshot format):

    {v
    summary <name> <id> <tau> <k> <p> <records> <volume>
    w <key> <weight>      (ascending key)
    s <key> <value>       (ascending key)
    b <key>               (ascending)
    r <key> <rank>        (ascending (rank, key))
    end
    v} *)

val payload : Store.summary -> string list
(** Serialize; [of_lines (payload s) = Ok s]. *)

val of_lines : string list -> (Store.summary, string) result
(** Strict parse: wrong section order, out-of-order keys, non-finite
    numbers, sampled keys without a weight entry, an oversized working
    set and trailing garbage are all errors. *)

val materialize :
  ?pool:Numerics.Pool.t ->
  Store.config ->
  Store.summary list ->
  (Store.t, string) result
(** Build a queryable store holding exactly these summaries, each
    installed under its recorded id (so seed recomputation — and hence
    every query answer — matches the exporting daemons bit for bit). *)
