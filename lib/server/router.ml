(* Cluster front door: N daemons each own a hash slice of the key
   space; this process fans writes to owners and answers queries by
   pulling per-instance summaries from every daemon and merging them
   locally (Merge), then running the ordinary Engine over the merged
   store. Summing per-daemon *estimates* would break bit-identity
   (float addition order differs per partition count); merging the
   *summaries* and estimating once reproduces the single-node float
   walk exactly.

   The router never mutates a Store itself — every backend effect
   travels over the wire protocol (enforced by bench/lint.sh), and the
   merged query stores are built by Merge.materialize from pulled
   payloads. *)

module P = Protocol

let ( let* ) = Result.bind

type t = {
  backends : Client.t array;
  retry : Client.retry;
  cfg : Store.config;  (* must match the daemons' master/mode *)
  seeds : Sampling.Seeds.t;
  pool : Numerics.Pool.t;
  mutable names : string list;  (* created instances, in creation order *)
}

(* Placement: a fixed salt (independent of any store config) hashes the
   key; the top 63 bits reduce mod N. Deterministic across router
   restarts — a key's owner is a pure function of (key, N). *)
let placement_salt = 0x6f707473616d70L

let owner ~backends key =
  let h = Numerics.Hashing.hash_int ~salt:placement_salt key in
  Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int backends))

let backend_count t = Array.length t.backends

let close t =
  Array.iter Client.close t.backends;
  Numerics.Pool.shutdown t.pool

(* --- catalog bootstrap ---

   The router mirrors the instance catalog (it fans every CREATE), but a
   *restarted* router must relearn it: SYNC any backend and read the
   instance headers out of the snapshot text. Backend 0 is as good as
   any — CREATE fans to all daemons in order, so every daemon holds the
   identical catalog. The snapshot header also carries the daemon's
   master seed and mode, checked against ours: a router merging under
   the wrong seed universe would answer garbage with full confidence. *)

let check_universe cfg ~master ~mode_s ~where =
  if master <> string_of_int cfg.Store.master then
    Error
      (Printf.sprintf "%s has master seed %s, router has %d" where master
         cfg.Store.master)
  else if mode_s <> Engine.mode_name cfg.Store.mode then
    Error
      (Printf.sprintf "%s samples in %s mode, router in %s" where mode_s
         (Engine.mode_name cfg.Store.mode))
  else Ok ()

let catalog_of_sync cfg (header, lines) =
  if not (P.json_ok header) then
    Error
      (Option.value ~default:header (P.json_field "error" header))
  else
    let* () =
      match (P.json_field "master" header, P.json_field "mode" header) with
      | Some master, Some mode_s ->
          check_universe cfg ~master ~mode_s ~where:"backend 0"
      | _ -> Error (Printf.sprintf "SYNC header without master/mode: %s" header)
    in
    let names =
      List.filter_map
        (fun line ->
          match String.split_on_char ' ' line with
          | "instance" :: name :: _ -> Some name
          | _ -> None)
        lines
    in
    Ok names

let connect ?(retry = Client.default_retry) ~store_cfg addrs =
  match addrs with
  | [] -> Error "router needs at least one backend"
  | _ -> (
      let cfg = { store_cfg with Store.shards = 1 } in
      let rec dial acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | addr :: rest -> (
            match Client.connect addr with
            | Ok c -> dial (c :: acc) rest
            | Error m ->
                List.iter Client.close acc;
                Error
                  (Printf.sprintf "backend %d: %s" (List.length acc) m))
      in
      match dial [] addrs with
      | Error _ as e -> e
      | Ok backends -> (
          let t =
            {
              backends;
              retry;
              cfg;
              seeds =
                Sampling.Seeds.create ~master:cfg.Store.master cfg.Store.mode;
              pool = Numerics.Pool.create ~domains:1 ();
              names = [];
            }
          in
          match
            Result.bind (Client.request_lines backends.(0) "SYNC")
              (catalog_of_sync cfg)
          with
          | Ok names ->
              t.names <- names;
              Ok t
          | Error m ->
              close t;
              Error (Printf.sprintf "catalog bootstrap: %s" m)))

(* --- fan-out plumbing --- *)

(* Sequential fan-out, first failure wins: a transport error answers a
   structured backend error; a backend's own error response passes
   through verbatim. *)
let fwd_all t line =
  let n = backend_count t in
  let rec go i acc =
    if i = n then Ok (List.rev acc)
    else
      match Client.request_retry ~retry:t.retry t.backends.(i) line with
      | Error m ->
          Error (P.error ~kind:"backend" (Printf.sprintf "backend %d: %s" i m))
      | Ok resp when not (P.json_ok resp) -> Error resp
      | Ok resp -> go (i + 1) (resp :: acc)
  in
  go 0 []

let pull_summary t i ~name =
  match Client.request_lines t.backends.(i) ("PULL " ^ name) with
  | Error m -> Error (Printf.sprintf "backend %d: %s" i m)
  | Ok (header, lines) ->
      if not (P.json_ok header) then
        Error
          (Printf.sprintf "backend %d: %s" i
             (Option.value ~default:header (P.json_field "error" header)))
      else
        let* () =
          match (P.json_field "master" header, P.json_field "mode" header) with
          | Some master, Some mode_s ->
              check_universe t.cfg ~master ~mode_s
                ~where:(Printf.sprintf "backend %d" i)
          | _ ->
              Error
                (Printf.sprintf "backend %d: PULL header without master/mode" i)
        in
        Result.map_error
          (fun m -> Printf.sprintf "backend %d: bad summary payload: %s" i m)
          (Merge.of_lines lines)

let merged_summary t ~name =
  let n = backend_count t in
  let rec go i acc =
    if i = n then Merge.merge_all t.seeds (List.rev acc)
    else
      match pull_summary t i ~name with
      | Ok s -> go (i + 1) (s :: acc)
      | Error _ as e -> e
  in
  go 0 []

let merged_store t names =
  let rec each acc = function
    | [] -> Merge.materialize ~pool:t.pool t.cfg (List.rev acc)
    | name :: rest -> (
        match merged_summary t ~name with
        | Ok s -> each (s :: acc) rest
        | Error _ as e -> e)
  in
  each [] names

(* --- request handling --- *)

let resolved_create t ~name ~tau ~k ~p =
  Printf.sprintf "CREATE %s tau=%h k=%d p=%h" name
    (Option.value tau ~default:t.cfg.Store.default_tau)
    (Option.value k ~default:t.cfg.Store.default_k)
    (Option.value p ~default:t.cfg.Store.default_p)

let on_request t (req : P.request) : string * Engine.action =
  match req with
  | P.Hello _ -> (P.ok_fields [ ("protocol", P.jint P.version) ], Engine.Continue)
  | P.Create { name; tau; k; p } -> (
      (* Defaults resolve against the *router's* config before fan-out,
         so every daemon registers identical parameters whatever its own
         defaults — the merge-compatibility invariant. *)
      match fwd_all t (resolved_create t ~name ~tau ~k ~p) with
      | Error resp -> (resp, Engine.Continue)
      | Ok responses ->
          t.names <- t.names @ [ name ];
          (* All backends answered identically (same resolved line, same
             creation order); relay backend 0's response. *)
          (List.hd responses, Engine.Continue))
  | P.Ingest { name; key; weight } -> (
      let b = owner ~backends:(backend_count t) key in
      match
        Client.request_retry ~retry:t.retry t.backends.(b)
          (Printf.sprintf "INGEST %s %d %h" name key weight)
      with
      | Ok resp -> (resp, Engine.Continue)
      | Error m ->
          ( P.error ~kind:"backend" (Printf.sprintf "backend %d: %s" b m),
            Engine.Continue ))
  | P.Ingest_many { count; _ } ->
      ( P.error
          (Printf.sprintf
             "INGESTN header without its %d body lines (batched framing is \
              connection-level)" count),
        Engine.Continue )
  | P.Query { kind; names } -> (
      match merged_store t names with
      | Error m -> (P.error m, Engine.Continue)
      | Ok st -> (
          match Engine.query (Engine.create st) kind names with
          | Ok response -> (response, Engine.Continue)
          | Error m ->
              (* Same structured kind as a single node: a query the
                 merged store refuses is a client mistake, not a backend
                 fault. *)
              (P.error ~kind:"bad_request" m, Engine.Continue)))
  | P.Pull name -> (
      (* Merged PULL: what a single node holding the union would answer —
         lets routers stack and gives operators one-stop summaries. *)
      match merged_summary t ~name with
      | Error m -> (P.error m, Engine.Continue)
      | Ok s ->
          ( P.ok_lines
              [ ("name", P.jstr name); ("id", P.jint s.Store.s_id);
                ("master", P.jint t.cfg.Store.master);
                ("mode", P.jstr (Engine.mode_name t.cfg.Store.mode)) ]
              (Merge.payload s),
            Engine.Continue ))
  | P.Sync -> (
      match merged_store t t.names with
      | Error m -> (P.error m, Engine.Continue)
      | Ok st ->
          let lines =
            match
              List.rev (String.split_on_char '\n' (Snapshot.to_string st))
            with
            | "" :: rev -> List.rev rev
            | rev -> List.rev rev
          in
          ( P.ok_lines
              [ ("instances", P.jint (List.length t.names));
                ("master", P.jint t.cfg.Store.master);
                ("mode", P.jstr (Engine.mode_name t.cfg.Store.mode)) ]
              lines,
            Engine.Continue ))
  | P.Snapshot path -> (
      (* Whole-cluster snapshot, written router-side. *)
      match merged_store t t.names with
      | Error m -> (P.error m, Engine.Continue)
      | Ok st -> (
          match Snapshot.write st ~path with
          | Ok n ->
              ( P.ok_fields
                  [ ("path", P.jstr path); ("instances", P.jint n) ],
                Engine.Continue )
          | Error m -> (P.error m, Engine.Continue)))
  | P.Stats -> (
      (* Merged view: instance counters as a single node holding the
         union would report them; shard/pending counters describe the
         router's local merged store (one shard, nothing pending). *)
      match merged_store t t.names with
      | Error m -> (P.error m, Engine.Continue)
      | Ok st ->
          let response, _ = Engine.handle_request (Engine.create st) P.Stats in
          (response, Engine.Continue))
  | P.Flush -> (
      match fwd_all t "FLUSH" with
      | Error resp -> (resp, Engine.Continue)
      | Ok responses ->
          let pending =
            List.fold_left
              (fun acc r ->
                acc
                + Option.value ~default:0
                    (Option.bind (P.json_field "pending" r) int_of_string_opt))
              0 responses
          in
          (P.ok_fields [ ("pending", P.jint pending) ], Engine.Continue))
  | P.Quit -> (P.ok_fields [ ("bye", P.jstr "quit") ], Engine.Close)
  | P.Shutdown ->
      (* Stops the router's loop only; the daemons are separate
         processes with their own lifecycles. *)
      (P.ok_fields [ ("bye", P.jstr "shutdown") ], Engine.Stop)

(* One batch, split by ownership: each daemon receives its records as
   one INGESTN (order within a partition preserved — per-key application
   order is what summaries depend on, and a key never spans partitions).
   All-or-nothing holds per partition; a failing partition reports the
   backend's response verbatim and leaves later partitions unsent. *)
let on_batch t ~name records =
  let nb = backend_count t in
  let parts = Array.make nb [] in
  Array.iter
    (fun ((key, _) as r) ->
      let o = owner ~backends:nb key in
      parts.(o) <- r :: parts.(o))
    records;
  let rec go i total =
    if i = nb then P.ok_fields [ ("ingested", P.jint total) ]
    else
      match parts.(i) with
      | [] -> go (i + 1) total
      | part -> (
          let sub = Array.of_list (List.rev part) in
          match Client.ingest_many ~retry:t.retry t.backends.(i) ~name sub with
          | Error m ->
              P.error ~kind:"backend" (Printf.sprintf "backend %d: %s" i m)
          | Ok resp when not (P.json_ok resp) -> resp
          | Ok _ -> go (i + 1) (total + Array.length sub))
  in
  go 0 0

let handlers t =
  {
    Daemon.on_request = (fun req -> on_request t req);
    on_batch = (fun ~name records -> on_batch t ~name records);
  }

let serve ?config t sock = Daemon.serve_handlers ?config (handlers t) sock
let start ?config t = Daemon.start_handlers ?config (handlers t)
