type t = { conn : Protocol.Conn.t }

let handshake conn =
  match Protocol.Conn.input_line_opt conn with
  | None -> Error "connection closed before greeting"
  | Some greeting ->
      if not (Protocol.json_ok greeting) then
        Error (Printf.sprintf "bad greeting %S" greeting)
      else (
        match Protocol.json_field "protocol" greeting with
        | Some v when v = string_of_int Protocol.version -> Ok { conn }
        | Some v ->
            Error
              (Printf.sprintf "server speaks protocol %s, this client %d" v
                 Protocol.version)
        | None -> Error (Printf.sprintf "greeting has no protocol field: %S" greeting))

let connect sockaddr =
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sockaddr with
  | () -> handshake (Protocol.Conn.of_fd fd)
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)

let connect_tcp ?(host = "127.0.0.1") ~port () =
  connect (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))

let connect_unix ~path = connect (Unix.ADDR_UNIX path)

let request t line =
  match
    Protocol.Conn.output_line t.conn line;
    Protocol.Conn.input_line_opt t.conn
  with
  | Some response -> Ok response
  | None -> Error "connection closed"
  | exception Sys_error m -> Error m

let close t = Protocol.Conn.close t.conn
