type retry = {
  attempts : int;
  base_delay_ms : int;
  max_delay_ms : int;
  seed : int;
}

let default_retry =
  { attempts = 5; base_delay_ms = 10; max_delay_ms = 2000; seed = 42 }

type t = {
  addr : Unix.sockaddr;
  mutable conn : Protocol.Conn.t option;  (* [None] after a drop *)
}

let handshake addr conn =
  match Protocol.Conn.input_line_opt conn with
  | None -> Error "connection closed before greeting"
  | Some greeting ->
      if not (Protocol.json_ok greeting) then
        Error (Printf.sprintf "bad greeting %S" greeting)
      else (
        match Protocol.json_field "protocol" greeting with
        | Some v when v = string_of_int Protocol.version ->
            Ok { addr; conn = Some conn }
        | Some v ->
            Error
              (Printf.sprintf "server speaks protocol %s, this client %d" v
                 Protocol.version)
        | None -> Error (Printf.sprintf "greeting has no protocol field: %S" greeting))

let dial sockaddr =
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sockaddr with
  | () -> Ok (Protocol.Conn.of_fd fd)
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)

let connect sockaddr = Result.bind (dial sockaddr) (handshake sockaddr)

let connect_tcp ?(host = "127.0.0.1") ~port () =
  connect (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))

let connect_unix ~path = connect (Unix.ADDR_UNIX path)

(* Re-establish after a drop: fresh socket, fresh greeting. The
   greeting's protocol check already passed once; re-checking costs one
   comparison and guards against the server restarting as something
   else. *)
let reconnect t =
  match dial t.addr with
  | Error _ as e -> e
  | Ok conn -> (
      match Protocol.Conn.input_line_opt conn with
      | Some greeting
        when Protocol.json_ok greeting
             && Protocol.json_field "protocol" greeting
                = Some (string_of_int Protocol.version) ->
          t.conn <- Some conn;
          Ok conn
      | Some greeting ->
          Protocol.Conn.close conn;
          Error (Printf.sprintf "bad greeting on reconnect: %S" greeting)
      | None ->
          Protocol.Conn.close conn;
          Error "connection closed before greeting on reconnect")

let request t line =
  match t.conn with
  | None -> Error "connection closed"
  | Some conn -> (
      match
        Protocol.Conn.output_line conn line;
        Protocol.Conn.input_line_opt conn
      with
      | Some response -> Ok response
      | None ->
          Protocol.Conn.close conn;
          t.conn <- None;
          Error "connection closed"
      | exception Sys_error m ->
          Protocol.Conn.close conn;
          t.conn <- None;
          Error m)

(* Exponential backoff with full jitter: attempt [i] sleeps
   uniform[0, min(max_delay, base * 2^i)) milliseconds. Full jitter
   (rather than equal or decorrelated) desynchronizes a thundering herd
   fastest; the draw comes from a seeded Numerics.Prng stream so retry
   schedules are reproducible in tests. *)
let backoff_ms rng retry ~attempt =
  let cap =
    min (float_of_int retry.max_delay_ms)
      (float_of_int retry.base_delay_ms *. Float.of_int (1 lsl min attempt 20))
  in
  int_of_float (Numerics.Prng.float rng *. cap)

(* select-based sleep (the blocking sleep syscalls are banned under
   lib/server — they would park a pool domain if a client ever runs on
   one). *)
let default_sleep ms =
  if ms > 0 then ignore (Unix.select [] [] [] (float_of_int ms /. 1000.))

let retryable_response response =
  (not (Protocol.json_ok response))
  && Protocol.json_field "kind" response = Some "overloaded"

let request_retry ?(retry = default_retry) ?(sleep = default_sleep) t line =
  (* A fresh seeded stream per call: retry schedules are reproducible
     in tests, and distinct [retry.seed]s desynchronize distinct
     clients. *)
  let rng = Numerics.Prng.create ~seed:retry.seed () in
  let rec go attempt =
    let outcome =
      match t.conn with
      | Some _ -> request t line
      | None -> Result.bind (reconnect t) (fun _ -> request t line)
    in
    let retry_again hint =
      if attempt + 1 >= retry.attempts then outcome
      else begin
        let ms =
          match hint with
          | Some ms when ms >= 0 -> min ms retry.max_delay_ms
          | _ -> backoff_ms rng retry ~attempt
        in
        sleep ms;
        go (attempt + 1)
      end
    in
    match outcome with
    | Ok response when retryable_response response ->
        (* The server shed the request: honor its retry_after_ms hint
           when present, jittered backoff otherwise. *)
        retry_again
          (Option.map int_of_float
             (Protocol.json_float_field "retry_after_ms" response))
    | Ok _ -> outcome
    | Error _ -> retry_again None
  in
  go 0

(* Batched ingest: the whole batch travels as one multi-line payload
   through [request_retry] — [Protocol.Conn.output_line] writes the
   payload verbatim plus one newline, and the server answers exactly one
   response per batch. Retry semantics therefore match the single-op
   path for free: a shed (kind="overloaded") or dropped batch is resent
   {e whole} on a fresh payload write, and the server's all-or-nothing
   admission guarantees it was never half-applied. *)
let ingest_many ?retry ?sleep t ~name records =
  let n = Array.length records in
  if n = 0 then Ok (Protocol.ok_fields [ ("ingested", Protocol.jint 0) ])
  else begin
    let chunk = Protocol.max_batch in
    let rec go start acc =
      if start >= n then
        Ok (Protocol.ok_fields [ ("ingested", Protocol.jint acc) ])
      else
        let len = min chunk (n - start) in
        let payload =
          Protocol.batch_payload ~name (Array.sub records start len)
        in
        match request_retry ?retry ?sleep t payload with
        | Error _ as e -> e
        | Ok response when not (Protocol.json_ok response) -> Ok response
        | Ok response ->
            if start + len >= n && start = 0 then Ok response
            else go (start + len) (acc + len)
    in
    go 0 0
  end

let close t =
  match t.conn with
  | Some conn ->
      Protocol.Conn.close conn;
      t.conn <- None
  | None -> ()
