type retry = {
  attempts : int;
  base_delay_ms : int;
  max_delay_ms : int;
  seed : int;
}

let default_retry =
  { attempts = 5; base_delay_ms = 10; max_delay_ms = 2000; seed = 42 }

type t = {
  addr : Unix.sockaddr;
  mutable conn : Protocol.Conn.t option;  (* [None] after a drop *)
}

let handshake addr conn =
  match Protocol.Conn.input_line_opt conn with
  | None -> Error "connection closed before greeting"
  | Some greeting ->
      if not (Protocol.json_ok greeting) then
        Error (Printf.sprintf "bad greeting %S" greeting)
      else (
        match Protocol.json_field "protocol" greeting with
        | Some v when v = string_of_int Protocol.version ->
            Ok { addr; conn = Some conn }
        | Some v ->
            Error
              (Printf.sprintf "server speaks protocol %s, this client %d" v
                 Protocol.version)
        | None -> Error (Printf.sprintf "greeting has no protocol field: %S" greeting))

let dial sockaddr =
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sockaddr with
  | () -> Ok (Protocol.Conn.of_fd fd)
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)

let connect sockaddr = Result.bind (dial sockaddr) (handshake sockaddr)

let connect_tcp ?(host = "127.0.0.1") ~port () =
  connect (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))

let connect_unix ~path = connect (Unix.ADDR_UNIX path)

(* Re-establish after a drop: fresh socket, fresh greeting. The
   greeting's protocol check already passed once; re-checking costs one
   comparison and guards against the server restarting as something
   else. *)
let reconnect t =
  match dial t.addr with
  | Error _ as e -> e
  | Ok conn -> (
      match Protocol.Conn.input_line_opt conn with
      | Some greeting
        when Protocol.json_ok greeting
             && Protocol.json_field "protocol" greeting
                = Some (string_of_int Protocol.version) ->
          t.conn <- Some conn;
          Ok conn
      | Some greeting ->
          Protocol.Conn.close conn;
          Error (Printf.sprintf "bad greeting on reconnect: %S" greeting)
      | None ->
          Protocol.Conn.close conn;
          Error "connection closed before greeting on reconnect")

let request t line =
  match t.conn with
  | None -> Error "connection closed"
  | Some conn -> (
      match
        Protocol.Conn.output_line conn line;
        Protocol.Conn.input_line_opt conn
      with
      | Some response -> Ok response
      | None ->
          Protocol.Conn.close conn;
          t.conn <- None;
          Error "connection closed"
      | exception Sys_error m ->
          Protocol.Conn.close conn;
          t.conn <- None;
          Error m)

(* Exponential backoff with full jitter: attempt [i] sleeps
   uniform[0, min(max_delay, base * 2^i)) milliseconds. Full jitter
   (rather than equal or decorrelated) desynchronizes a thundering herd
   fastest; the draw comes from a seeded Numerics.Prng stream so retry
   schedules are reproducible in tests. *)
let envelope_ms retry ~attempt =
  min (float_of_int retry.max_delay_ms)
    (float_of_int retry.base_delay_ms *. Float.of_int (1 lsl min attempt 20))

let backoff_ms rng retry ~attempt =
  int_of_float (Numerics.Prng.float rng *. envelope_ms retry ~attempt)

(* A server's retry_after_ms is advice, not authority: a NaN, infinite
   or negative hint (confused or malicious server) is discarded, and a
   valid one is clamped into the same envelope this attempt's jittered
   backoff draws from — a peer can speed our retry up, never stall us
   past our own schedule. The comparison happens in float space, so an
   absurd 1e300 never reaches int_of_float (whose result is undefined
   outside [min_int, max_int]). *)
let clamp_hint_ms retry ~attempt hint =
  if Float.is_finite hint && hint >= 0. then
    Some (int_of_float (Float.min hint (envelope_ms retry ~attempt)))
  else None

(* select-based sleep (the blocking sleep syscalls are banned under
   lib/server — they would park a pool domain if a client ever runs on
   one). *)
let default_sleep ms =
  if ms > 0 then ignore (Unix.select [] [] [] (float_of_int ms /. 1000.))

let retryable_response response =
  (not (Protocol.json_ok response))
  && Protocol.json_field "kind" response = Some "overloaded"

let request_retry ?(retry = default_retry) ?(sleep = default_sleep) t line =
  (* A fresh seeded stream per call: retry schedules are reproducible
     in tests, and distinct [retry.seed]s desynchronize distinct
     clients. *)
  let rng = Numerics.Prng.create ~seed:retry.seed () in
  let rec go attempt =
    let outcome =
      match t.conn with
      | Some _ -> request t line
      | None -> Result.bind (reconnect t) (fun _ -> request t line)
    in
    let retry_again hint =
      if attempt + 1 >= retry.attempts then outcome
      else begin
        let ms =
          match Option.bind hint (clamp_hint_ms retry ~attempt) with
          | Some ms -> ms
          | None -> backoff_ms rng retry ~attempt
        in
        sleep ms;
        go (attempt + 1)
      end
    in
    match outcome with
    | Ok response when retryable_response response ->
        (* The server shed the request: honor its retry_after_ms hint
           when present and sane (validated + clamped into this
           attempt's backoff envelope), jittered backoff otherwise. *)
        retry_again (Protocol.json_float_field "retry_after_ms" response)
    | Ok _ -> outcome
    | Error _ -> retry_again None
  in
  go 0

(* Multi-line responses (PULL, SYNC): the header's "lines" field says
   how many raw payload lines follow. A dropped connection is re-dialed
   once before reading the header (so a restarted backend is transparent
   to pull/sync callers, mirroring request_retry's transport recovery);
   a drop *mid-payload* is an error — there is no way to resume a
   half-read payload. *)
let request_lines t line =
  let header =
    let attempt () =
      match t.conn with
      | Some _ -> request t line
      | None -> Result.bind (reconnect t) (fun _ -> request t line)
    in
    match attempt () with Ok _ as ok -> ok | Error _ -> attempt ()
  in
  match header with
  | Error m -> Error m
  | Ok header -> (
      let announced =
        if Protocol.json_ok header then
          Option.bind (Protocol.json_field "lines" header) int_of_string_opt
        else None
      in
      match (announced, t.conn) with
      | None, _ | Some _, None -> Ok (header, [])
      | Some n, Some conn ->
          let rec go i acc =
            if i = n then Ok (header, List.rev acc)
            else
              match Protocol.Conn.input_line_opt conn with
              | Some l -> go (i + 1) (l :: acc)
              | None ->
                  Protocol.Conn.close conn;
                  t.conn <- None;
                  Error
                    (Printf.sprintf
                       "connection closed after %d of %d payload lines" i n)
          in
          go 0 [])

(* Batched ingest: the whole batch travels as one multi-line payload
   through [request_retry] — [Protocol.Conn.output_line] writes the
   payload verbatim plus one newline, and the server answers exactly one
   response per batch. Retry semantics therefore match the single-op
   path for free: a shed (kind="overloaded") or dropped batch is resent
   {e whole} on a fresh payload write, and the server's all-or-nothing
   admission guarantees it was never half-applied. *)
let ingest_many ?retry ?sleep t ~name records =
  let n = Array.length records in
  if n = 0 then Ok (Protocol.ok_fields [ ("ingested", Protocol.jint 0) ])
  else begin
    let chunk = Protocol.max_batch in
    let rec go start acc =
      if start >= n then
        Ok (Protocol.ok_fields [ ("ingested", Protocol.jint acc) ])
      else
        let len = min chunk (n - start) in
        let payload =
          Protocol.batch_payload ~name (Array.sub records start len)
        in
        match request_retry ?retry ?sleep t payload with
        | Error _ as e -> e
        | Ok response when not (Protocol.json_ok response) -> Ok response
        | Ok response ->
            if start + len >= n && start = 0 then Ok response
            else go (start + len) (acc + len)
    in
    go 0 0
  end

let close t =
  match t.conn with
  | Some conn ->
      Protocol.Conn.close conn;
      t.conn <- None
  | None -> ()
