(* The one module allowed to push bytes at WAL / snapshot files.

   Every durability-plane write in lib/server funnels through here (the
   lint in bench/lint.sh enforces it): this is where CRCs are computed,
   where fsync policy is honored, and — crucially — where the
   Numerics.Faultify I/O plane is consulted, so torn writes, short
   writes and failed fsyncs hit every durable path identically. *)

module F = Numerics.Faultify

(* --- CRC-32 (IEEE 802.3, reflected), table-driven ------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32_update crc s pos len =
  let table = Lazy.force crc_table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let crc32 s = crc32_update 0l s 0 (String.length s)

(* --- fault-aware append writer -------------------------------------- *)

type writer = {
  w_path : string;
  w_fd : Unix.file_descr;
  mutable w_offset : int;  (* bytes durably framed so far *)
  mutable w_closed : bool;
}

let openw ~path =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 with
  | fd ->
      let offset = (Unix.fstat fd).Unix.st_size in
      Ok { w_path = path; w_fd = fd; w_offset = offset; w_closed = false }
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot open %s: %s" path (Unix.error_message e))

let offset w = w.w_offset
let path w = w.w_path

let write_all fd s pos len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write_substring fd s (pos + !written) (len - !written)
  done

(* Append [s] as one unit. The fault plane can cut the buffer: a torn
   write puts a prefix on disk and kills the "process" (raises Crash); a
   short write puts a prefix on disk, then the writer restores the old
   tail with ftruncate and reports the error — the record was never
   acknowledged and the file stays consistent. *)
let append ~site w s =
  if w.w_closed then Error (Printf.sprintf "%s: writer closed" w.w_path)
  else
    let len = String.length s in
    match F.fire_io ~site ~kinds:[ F.Io_torn_write; F.Io_short_write ] with
    | Some F.Io_torn_write ->
        write_all w.w_fd s 0 (len / 2);
        raise (F.Crash site)
    | Some F.Io_short_write ->
        write_all w.w_fd s 0 (len / 2);
        Unix.ftruncate w.w_fd w.w_offset;
        Error (Printf.sprintf "%s: short write (injected), tail restored" w.w_path)
    | _ -> (
        match write_all w.w_fd s 0 len with
        | () ->
            w.w_offset <- w.w_offset + len;
            Ok ()
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "%s: write failed: %s" w.w_path (Unix.error_message e)))

(* An injected fsync failure models the nastiest real case: the bytes
   were handed to the OS (they may well be on disk) but durability was
   never confirmed. Per the fsync-gate discipline the caller must treat
   the store as crashed — so the injection raises Crash rather than
   limping on with an unknown tail. *)
let fsync ~site w =
  if w.w_closed then Error (Printf.sprintf "%s: writer closed" w.w_path)
  else
    match F.fire_io ~site ~kinds:[ F.Io_fsync_fail ] with
    | Some F.Io_fsync_fail -> raise (F.Crash site)
    | _ -> (
        match Unix.fsync w.w_fd with
        | () -> Ok ()
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "%s: fsync failed: %s" w.w_path (Unix.error_message e)))

let close w =
  if not w.w_closed then begin
    w.w_closed <- true;
    try Unix.close w.w_fd with Unix.Unix_error _ -> ()
  end

(* Best-effort physical truncation — how recovery drops a torn tail it
   has already decided to ignore. Failure is harmless (the tail is
   re-detected and re-dropped on the next recovery). *)
let truncate_file ~path len =
  match Unix.openfile path [ Unix.O_WRONLY ] 0o644 with
  | fd ->
      (try Unix.ftruncate fd len with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* --- whole-file helpers --------------------------------------------- *)

let read_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | s -> Ok s
  | exception Sys_error m -> Error m

(* Atomic replace: write a sibling tmp file, fsync it, rename over the
   target. A crash mid-write leaves only the tmp behind — the previous
   good file is never touched — which is what lets recovery fall back to
   the last durable checkpoint. *)
let write_file_atomic ~site ~path s =
  let tmp = path ^ ".tmp" in
  match openw ~path:tmp with
  | Error _ as e -> e
  | Ok w -> (
      let result =
        match append ~site w s with
        | Error _ as e -> e
        | Ok () -> fsync ~site w
      in
      match result with
      | Error m ->
          close w;
          (try Sys.remove tmp with Sys_error _ -> ());
          Error m
      | Ok () -> (
          close w;
          match Unix.rename tmp path with
          | () -> Ok ()
          | exception Unix.Unix_error (e, _, _) ->
              (try Sys.remove tmp with Sys_error _ -> ());
              Error
                (Printf.sprintf "rename %s -> %s failed: %s" tmp path
                   (Unix.error_message e))))
