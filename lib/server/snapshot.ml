let magic = "optsample-snapshot 1"

type parse_error = Sampling.Io.parse_error = { line : int; message : string }

let err line message = Error { line; message }

let mode_name = function
  | Sampling.Seeds.Shared -> "shared"
  | Sampling.Seeds.Independent -> "independent"

let mode_of_name = function
  | "shared" -> Some Sampling.Seeds.Shared
  | "independent" -> Some Sampling.Seeds.Independent
  | _ -> None

let to_string st =
  Store.flush st;
  let cfg = Store.config st in
  let insts = Store.instances st in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %s %h %d %h %d %d\n" magic cfg.Store.master
       (mode_name cfg.Store.mode) cfg.Store.default_tau cfg.Store.default_k
       cfg.Store.default_p cfg.Store.flush_every (List.length insts));
  List.iter
    (fun inst ->
      let icfg = Store.instance_config inst in
      Buffer.add_string buf
        (Printf.sprintf "instance %s %d %h %d %h\n" (Store.name inst)
           (Store.id inst) icfg.Store.tau icfg.Store.k icfg.Store.p);
      Sampling.Instance.iter
        (fun k v -> Buffer.add_string buf (Printf.sprintf "%d %h\n" k v))
        (Store.to_instance inst);
      Buffer.add_string buf "end\n")
    insts;
  Buffer.contents buf

(* Same line discipline as Sampling.Io: number lines before filtering
   comments/blanks, accept CRLF. *)
let strip_cr l =
  let n = String.length l in
  if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l

let lines_of_string s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim (strip_cr l)))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let ( let* ) = Result.bind

let parse_int n what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> err n (Printf.sprintf "bad %s %S (expected an integer)" what s)

let parse_pos_float n what s =
  match float_of_string_opt s with
  | Some v when Float.is_finite v && v > 0. -> Ok v
  | Some v -> err n (Printf.sprintf "%s %g must be finite and > 0" what v)
  | None -> err n (Printf.sprintf "bad %s %S (expected a hex float)" what s)

let parse_header n header =
  match String.split_on_char ' ' header with
  | a :: b :: rest when a ^ " " ^ b = magic -> (
      match rest with
      | [ master; mode; tau; k; p; flush_every; count ] -> (
          let* master = parse_int n "master seed" master in
          match mode_of_name mode with
          | None ->
              err n
                (Printf.sprintf
                   "bad seed mode %S (expected shared or independent)" mode)
          | Some mode ->
              let* default_tau = parse_pos_float n "default tau" tau in
              let* default_k = parse_int n "default k" k in
              let* default_p = parse_pos_float n "default p" p in
              let* flush_every = parse_int n "flush_every" flush_every in
              let* count = parse_int n "instance count" count in
              if count < 0 then
                err n (Printf.sprintf "negative instance count %d" count)
              else
                Ok (master, mode, default_tau, default_k, default_p,
                    flush_every, count))
      | fields ->
          err n
            (Printf.sprintf
               "truncated snapshot header: %d field(s) after %S, expected 7"
               (List.length fields) magic))
  | _ ->
      err n
        (Printf.sprintf "not an optsample snapshot (header %S, expected %S …)"
           header magic)

let parse_instance_header n line =
  match String.split_on_char ' ' line with
  | [ "instance"; name; id; tau; k; p ] ->
      let* id = parse_int n "instance id" id in
      let* tau = parse_pos_float n "tau" tau in
      let* k = parse_int n "k" k in
      let* p = parse_pos_float n "p" p in
      if k <= 0 then err n (Printf.sprintf "k %d must be > 0" k)
      else if p > 1. then err n (Printf.sprintf "p %g out of (0,1]" p)
      else Ok (name, id, tau, k, p)
  | _ ->
      err n
        (Printf.sprintf
           "expected 'instance <name> <id> <tau> <k> <p>', got %S" line)

let of_string_r ?pool ?shards s =
  match lines_of_string s with
  | [] -> err 0 "empty input"
  | (n, header) :: rest ->
      let* master, mode, default_tau, default_k, default_p, flush_every, count
          =
        parse_header n header
      in
      let cfg =
        {
          Store.shards =
            Option.value shards ~default:Store.default_config.Store.shards;
          master;
          mode;
          default_tau;
          default_k;
          default_p;
          flush_every;
          max_inflight = Store.default_config.Store.max_inflight;
        }
      in
      let st = Store.create ?pool cfg in
      (* One instance section at a time: header, entries, 'end'. *)
      let rec instances seen lines =
        if seen = count then
          match lines with
          | [] ->
              Store.flush st;
              Ok st
          | (n, l) :: _ ->
              err n (Printf.sprintf "trailing garbage after %d instance(s): %S"
                       count l)
        else
          match lines with
          | [] ->
              err 0
                (Printf.sprintf "truncated snapshot: %d of %d instance(s)"
                   seen count)
          | (n, l) :: lines -> (
              let* name, id, tau, k, p = parse_instance_header n l in
              if id <> seen then
                err n
                  (Printf.sprintf
                     "instance id %d out of order (expected %d)" id seen)
              else
                match Store.create_instance st ~name ~tau ~k ~p () with
                | Error m -> err n m
                | Ok _ -> entries name (Hashtbl.create 64) lines)
      and entries name seen lines =
        match lines with
        | [] -> err 0 (Printf.sprintf "missing 'end' for instance %S" name)
        | (_, "end") :: lines ->
            instances (Store.id (Option.get (Store.find st name)) + 1) lines
        | (n, l) :: lines -> (
            match String.split_on_char ' ' l with
            | [ k; v ] -> (
                let* key = parse_int n "key" k in
                let* weight = parse_pos_float n "weight" v in
                match Hashtbl.find_opt seen key with
                | Some first ->
                    err n
                      (Printf.sprintf
                         "duplicate key %d (first seen on line %d)" key first)
                | None -> (
                    Hashtbl.add seen key n;
                    match Store.ingest st ~name ~key ~weight with
                    | Ok () -> entries name seen lines
                    | Error (Store.Overloaded _) -> (
                        (* Replay outruns the drain; shedding here would
                           drop snapshotted records. Flush and retry. *)
                        Store.flush st;
                        match Store.ingest st ~name ~key ~weight with
                        | Ok () -> entries name seen lines
                        | Error e -> err n (Store.ingest_error_to_string e))
                    | Error e -> err n (Store.ingest_error_to_string e)))
            | _ -> err n "expected two fields '<int-key> <hex-float>' or 'end'")
      in
      instances 0 rest

(* All snapshot bytes go through Durable: the write is atomic (tmp +
   fsync + rename — a crash mid-write never damages the previous file)
   and the I/O fault plane applies, so the crash-recovery suite can tear
   snapshot writes too. *)
let write st ~path =
  let s = to_string st in
  match Durable.write_file_atomic ~site:"snapshot.write" ~path s with
  | Ok () -> Ok (List.length (Store.instances st))
  | Error m -> Error m

let load ?pool ?shards path =
  match Durable.read_file path with
  | Ok s -> of_string_r ?pool ?shards s
  | Error m -> err 0 m
