type config = {
  backlog : int;
  max_line_bytes : int;
  read_timeout_s : float;
}

let default_config = { backlog = 16; max_line_bytes = 8192; read_timeout_s = 0. }

let listen_tcp ?(host = "127.0.0.1") ?(backlog = default_config.backlog) ~port
    () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock backlog;
  let bound =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (sock, bound)

(* Reclaiming the path is only safe when what sits there is a stale
   socket; unlinking whatever file the operator mistyped (a snapshot, a
   WAL segment, ...) would be data loss dressed up as convenience. *)
let listen_unix ?(backlog = default_config.backlog) ~path () =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) | { Unix.st_kind = Unix.S_SOCK; _ }
    -> (
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.bind sock (Unix.ADDR_UNIX path) with
      | () ->
          Unix.listen sock backlog;
          Ok sock
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close sock with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e)))
  | { Unix.st_kind = _; _ } ->
      Error
        (Printf.sprintf
           "refusing to unlink %s: it exists and is not a socket" path)
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot stat %s: %s" path (Unix.error_message e))

(* One session: greeting, then request/response lines until EOF, QUIT or
   SHUTDOWN. Engine exceptions (strict-mode solver errors, invalid
   arguments) answer as error objects — a bad query must not take the
   daemon down. Reads are bounded both in size (slowloris / garbage
   defense: an over-long line answers a structured error and the
   connection closes) and, when configured, in time (SO_RCVTIMEO on the
   accepted socket). *)
let session ?(config = default_config) engine conn =
  Protocol.Conn.output_line conn Protocol.greeting;
  let rec loop () =
    match Protocol.Conn.input_line_bounded conn ~max:config.max_line_bytes with
    | `Eof -> `Closed
    | `Timeout ->
        Numerics.Obs.count "server.session.timeout";
        (try
           Protocol.Conn.output_line conn
             (Protocol.error ~kind:"timeout"
                (Printf.sprintf "idle for more than %gs" config.read_timeout_s))
         with Sys_error _ -> ());
        `Closed
    | `Too_long ->
        Numerics.Obs.count "server.session.line_too_long";
        (try
           Protocol.Conn.output_line conn
             (Protocol.error ~kind:"line_too_long"
                (Printf.sprintf "request line exceeds %d bytes"
                   config.max_line_bytes))
         with Sys_error _ -> ());
        `Closed
    | `Line line ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then loop ()
        else begin
          let response, action =
            try Engine.handle_line engine line with
            | Numerics.Robust.Solver_error f ->
                ( Protocol.error ("strict: " ^ Numerics.Robust.to_string f),
                  Engine.Continue )
            | Invalid_argument m | Failure m ->
                (Protocol.error m, Engine.Continue)
          in
          Protocol.Conn.output_line conn response;
          match action with
          | Engine.Continue -> loop ()
          | Engine.Close -> `Closed
          | Engine.Stop -> `Stop
        end
  in
  let outcome = try loop () with Sys_error _ | End_of_file -> `Closed in
  Protocol.Conn.close conn;
  outcome

let serve ?(config = default_config) engine sock =
  let rec accept_loop () =
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | fd, _ -> (
        Numerics.Obs.count "server.accept";
        if config.read_timeout_s > 0. then
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO config.read_timeout_s
           with Unix.Unix_error _ -> ());
        let outcome =
          Numerics.Obs.span ~cat:"server" "server.session" @@ fun () ->
          session ~config engine (Protocol.Conn.of_fd fd)
        in
        match outcome with `Closed -> accept_loop () | `Stop -> ())
  in
  accept_loop ();
  try Unix.close sock with Unix.Unix_error _ -> ()

type t = { d_port : int; dom : unit Domain.t }

let start ?(config = default_config) engine =
  let sock, port = listen_tcp ~backlog:config.backlog ~port:0 () in
  { d_port = port; dom = Domain.spawn (fun () -> serve ~config engine sock) }

let port t = t.d_port
let join t = Domain.join t.dom
