let listen_tcp ?(host = "127.0.0.1") ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock 16;
  let bound =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (sock, bound)

let listen_unix ~path =
  (if Sys.file_exists path then
     try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  sock

(* One session: greeting, then request/response lines until EOF, QUIT or
   SHUTDOWN. Engine exceptions (strict-mode solver errors, invalid
   arguments) answer as error objects — a bad query must not take the
   daemon down. *)
let session engine conn =
  Protocol.Conn.output_line conn Protocol.greeting;
  let rec loop () =
    match Protocol.Conn.input_line_opt conn with
    | None -> `Closed
    | Some line ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then loop ()
        else begin
          let response, action =
            try Engine.handle_line engine line with
            | Numerics.Robust.Solver_error f ->
                ( Protocol.error ("strict: " ^ Numerics.Robust.to_string f),
                  Engine.Continue )
            | Invalid_argument m | Failure m ->
                (Protocol.error m, Engine.Continue)
          in
          Protocol.Conn.output_line conn response;
          match action with
          | Engine.Continue -> loop ()
          | Engine.Close -> `Closed
          | Engine.Stop -> `Stop
        end
  in
  let outcome = try loop () with Sys_error _ | End_of_file -> `Closed in
  Protocol.Conn.close conn;
  outcome

let serve engine sock =
  let rec accept_loop () =
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | fd, _ -> (
        Numerics.Obs.count "server.accept";
        let outcome =
          Numerics.Obs.span ~cat:"server" "server.session" @@ fun () ->
          session engine (Protocol.Conn.of_fd fd)
        in
        match outcome with `Closed -> accept_loop () | `Stop -> ())
  in
  accept_loop ();
  try Unix.close sock with Unix.Unix_error _ -> ()

type t = { d_port : int; dom : unit Domain.t }

let start engine =
  let sock, port = listen_tcp ~port:0 () in
  { d_port = port; dom = Domain.spawn (fun () -> serve engine sock) }

let port t = t.d_port
let join t = Domain.join t.dom
