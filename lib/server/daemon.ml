(* Readiness-driven serving loop: the listening socket and every client
   socket are nonblocking and multiplexed through one [Unix.select]
   call, so many connections stay open at once while the store keeps its
   single-producer contract (all request execution happens on this one
   domain). Each connection is a small state machine — an incremental
   read buffer carrying the byte-bounded line discipline, an outgoing
   write queue drained as the socket accepts bytes, and an optional
   in-flight INGESTN batch collecting its body lines. A connection whose
   peer stops reading (write queue past the high-water mark) is simply
   dropped from the read set until it drains — backpressure that never
   stalls the other connections. *)

type config = {
  backlog : int;
  max_line_bytes : int;
  read_timeout_s : float;
  max_conns : int;
  write_highwater : int;
}

let default_config =
  {
    backlog = 64;
    max_line_bytes = 8192;
    read_timeout_s = 0.;
    (* OCaml's [Unix.select] is FD_SETSIZE-bound (1024 fds); 960 leaves
       room for the listener and the process's own files. *)
    max_conns = 960;
    write_highwater = 1 lsl 18;
  }

let listen_tcp ?(host = "127.0.0.1") ?(backlog = default_config.backlog) ~port
    () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock backlog;
  let bound =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (sock, bound)

(* Reclaiming the path is only safe when what sits there is a stale
   socket; unlinking whatever file the operator mistyped (a snapshot, a
   WAL segment, ...) would be data loss dressed up as convenience. *)
let listen_unix ?(backlog = default_config.backlog) ~path () =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) | { Unix.st_kind = Unix.S_SOCK; _ }
    -> (
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.bind sock (Unix.ADDR_UNIX path) with
      | () ->
          Unix.listen sock backlog;
          Ok sock
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close sock with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e)))
  | { Unix.st_kind = _; _ } ->
      Error
        (Printf.sprintf
           "refusing to unlink %s: it exists and is not a socket" path)
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot stat %s: %s" path (Unix.error_message e))

(* --- per-connection state --- *)

(* An INGESTN header opens a batch; the next [b_want] lines are body
   records, collected (reversed) until the batch executes as one engine
   call. A malformed body line poisons the batch but the remaining body
   lines are still consumed — the framing stays in sync and the single
   error response covers the whole batch. *)
type batch = {
  b_name : string;
  b_want : int;
  mutable b_got : (int * float) list;
  mutable b_n : int;
  mutable b_err : string option;
}

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable rpos : int;  (* consumed prefix of rbuf *)
  mutable rlen : int;  (* filled prefix of rbuf *)
  wq : string Queue.t;  (* outgoing, head partially written *)
  mutable woff : int;  (* bytes of the head already written *)
  mutable wbytes : int;  (* total queued outgoing bytes *)
  mutable batch : batch option;
  mutable closing : bool;  (* close once the write queue drains *)
  mutable last_read_ns : int64;  (* idle-deadline bookkeeping *)
}

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let ns_to_s ns = Int64.to_float ns /. 1e9

(* --- the event loop --- *)

(* The loop itself is transport + framing only; what a request *means*
   is behind these two hooks, so the same loop serves both a storage
   daemon (hooks into Engine) and the cluster router (hooks that fan out
   over the wire). The INGESTN body collection stays in the loop — it is
   connection-level framing — and hands the handler whole, well-formed
   batches. *)
type handlers = {
  on_request : Protocol.request -> string * Engine.action;
  on_batch : name:string -> (int * float) array -> string;
}

let serve_handlers ?(config = default_config) handlers sock =
  (* A peer that closes mid-response must surface as a write error on
     this connection, not as a process-fatal signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Unix.set_nonblock sock;
  let max_conns = max 1 config.max_conns in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let draining = ref false in
  let drain_deadline_ns = ref Int64.max_int in
  let destroy c =
    Hashtbl.remove conns c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let enqueue c line =
    Queue.add (line ^ "\n") c.wq;
    c.wbytes <- c.wbytes + String.length line + 1
  in
  (* Write as much queued output as the socket accepts right now; EAGAIN
     leaves the rest for the next readiness round. *)
  let flush_writes c =
    let rec go () =
      match Queue.peek_opt c.wq with
      | None -> `Ok
      | Some head -> (
          let len = String.length head - c.woff in
          match Unix.write_substring c.fd head c.woff len with
          | n ->
              c.wbytes <- c.wbytes - n;
              if n = len then begin
                ignore (Queue.pop c.wq);
                c.woff <- 0;
                go ()
              end
              else begin
                c.woff <- c.woff + n;
                `Ok
              end
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              `Ok
          | exception Unix.Unix_error (_, _, _) -> `Dead)
    in
    go ()
  in
  let too_long c =
    Numerics.Obs.count "server.session.line_too_long";
    enqueue c
      (Protocol.error ~kind:"line_too_long"
         (Printf.sprintf "request line exceeds %d bytes" config.max_line_bytes));
    c.closing <- true
  in
  (* Execute one complete request line (or batch body line). All engine
     exceptions (strict-mode solver errors, invalid arguments) answer as
     error objects — a bad request must not take the daemon down. *)
  let handle_line c line =
    match c.batch with
    | Some b ->
        b.b_n <- b.b_n + 1;
        (* [~line] = 1-based body line index: a bad record deep in the
           batch is diagnosed as "line <n>: ...", so the client can find
           it without bisecting the payload. *)
        (match Protocol.parse_batch_record ~line:b.b_n line with
        | Ok r -> if b.b_err = None then b.b_got <- r :: b.b_got
        | Error e ->
            if b.b_err = None then
              b.b_err <- Some (Sampling.Io.parse_error_to_string e));
        if b.b_n = b.b_want then begin
          c.batch <- None;
          let response =
            match b.b_err with
            | Some m -> Protocol.error m
            | None -> (
                let records = Array.of_list (List.rev b.b_got) in
                try handlers.on_batch ~name:b.b_name records
                with
                | Numerics.Robust.Solver_error f ->
                    Protocol.error ("strict: " ^ Numerics.Robust.to_string f)
                | Invalid_argument m | Failure m -> Protocol.error m)
          in
          enqueue c response
        end
    | None -> (
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then ()
        else
          match Protocol.parse line with
          | Ok (Protocol.Ingest_many { name; count }) ->
              c.batch <-
                Some
                  { b_name = name; b_want = count; b_got = []; b_n = 0;
                    b_err = None }
          | Ok req -> (
              let response, action =
                try handlers.on_request req with
                | Numerics.Robust.Solver_error f ->
                    ( Protocol.error
                        ("strict: " ^ Numerics.Robust.to_string f),
                      Engine.Continue )
                | Invalid_argument m | Failure m ->
                    (Protocol.error m, Engine.Continue)
              in
              enqueue c response;
              match action with
              | Engine.Continue -> ()
              | Engine.Close -> c.closing <- true
              | Engine.Stop ->
                  c.closing <- true;
                  draining := true;
                  drain_deadline_ns :=
                    Int64.add (Numerics.Obs.now_ns ()) 5_000_000_000L)
          | Error e ->
              (* Unknown verbs and malformed tokens answer a structured
                 bad_request and the session continues — a typo must not
                 cost the connection. *)
              enqueue c
                (Protocol.error ~kind:"bad_request"
                   (Sampling.Io.parse_error_to_string e)))
  in
  (* Consume every complete line in the read buffer, then compact. The
     leftover is always one partial line; longer than the bound means a
     slowloris/garbage peer and the structured error + close. *)
  let rec process_buffer c =
    if not c.closing then begin
      let nl = ref (-1) in
      (let i = ref c.rpos in
       while !nl < 0 && !i < c.rlen do
         if Bytes.unsafe_get c.rbuf !i = '\n' then nl := !i;
         incr i
       done);
      if !nl >= 0 then begin
        let line = Bytes.sub_string c.rbuf c.rpos (!nl - c.rpos) in
        c.rpos <- !nl + 1;
        if String.length line > config.max_line_bytes then too_long c
        else begin
          handle_line c (strip_cr line);
          process_buffer c
        end
      end
      else if c.rlen - c.rpos > config.max_line_bytes then too_long c
      else if c.rpos > 0 then begin
        Bytes.blit c.rbuf c.rpos c.rbuf 0 (c.rlen - c.rpos);
        c.rlen <- c.rlen - c.rpos;
        c.rpos <- 0
      end
    end
  in
  let read_conn c =
    (if c.rlen = Bytes.length c.rbuf then
       if c.rpos > 0 then begin
         Bytes.blit c.rbuf c.rpos c.rbuf 0 (c.rlen - c.rpos);
         c.rlen <- c.rlen - c.rpos;
         c.rpos <- 0
       end
       else begin
         (* Bounded growth: an unconsumed region past the line bound has
            already answered [line_too_long], so the buffer never doubles
            past ~2x [max_line_bytes]. *)
         let nbuf = Bytes.create (2 * Bytes.length c.rbuf) in
         Bytes.blit c.rbuf 0 nbuf 0 c.rlen;
         c.rbuf <- nbuf
       end);
    match Unix.read c.fd c.rbuf c.rlen (Bytes.length c.rbuf - c.rlen) with
    | 0 ->
        (* EOF. A final unterminated line is still served (same behavior
           as the buffered line reader), then the connection drains out
           and closes. *)
        if c.rlen > c.rpos then begin
          let line = Bytes.sub_string c.rbuf c.rpos (c.rlen - c.rpos) in
          c.rpos <- c.rlen;
          if String.length line > config.max_line_bytes then too_long c
          else handle_line c (strip_cr line)
        end;
        c.closing <- true
    | n ->
        c.rlen <- c.rlen + n;
        c.last_read_ns <- Numerics.Obs.now_ns ();
        process_buffer c
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error (_, _, _) -> destroy c
  in
  let accept_ready () =
    let rec go () =
      if Hashtbl.length conns < max_conns then
        match Unix.accept sock with
        | fd, _ ->
            Numerics.Obs.count "server.accept";
            Unix.set_nonblock fd;
            let c =
              {
                fd;
                rbuf = Bytes.create 4096;
                rpos = 0;
                rlen = 0;
                wq = Queue.create ();
                woff = 0;
                wbytes = 0;
                batch = None;
                closing = false;
                last_read_ns = Numerics.Obs.now_ns ();
              }
            in
            Hashtbl.replace conns fd c;
            enqueue c Protocol.greeting;
            (match flush_writes c with `Ok -> () | `Dead -> destroy c);
            go ()
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ()
        | exception Unix.Unix_error (_, _, _) -> ()
    in
    go ()
  in
  let rec loop () =
    let now = Numerics.Obs.now_ns () in
    (* Idle deadlines: a connection silent past [read_timeout_s] answers
       a structured timeout error and closes. *)
    if config.read_timeout_s > 0. && not !draining then
      Hashtbl.iter
        (fun _ c ->
          if
            (not c.closing)
            && ns_to_s (Int64.sub now c.last_read_ns) > config.read_timeout_s
          then begin
            Numerics.Obs.count "server.session.timeout";
            enqueue c
              (Protocol.error ~kind:"timeout"
                 (Printf.sprintf "idle for more than %gs" config.read_timeout_s));
            c.closing <- true
          end)
        conns;
    (* Reap connections whose goodbyes are fully written; when draining
       (post-SHUTDOWN) a stuck peer is cut off at the drain deadline so
       the daemon always terminates. *)
    let dead =
      let expired = !draining && Int64.compare now !drain_deadline_ns > 0 in
      Hashtbl.fold
        (fun _ c acc ->
          if (c.wbytes = 0 && (c.closing || !draining)) || expired then
            c :: acc
          else acc)
        conns []
    in
    List.iter destroy dead;
    if not (!draining && Hashtbl.length conns = 0) then begin
      let reads = ref [] and writes = ref [] in
      if (not !draining) && Hashtbl.length conns < max_conns then
        reads := [ sock ];
      Hashtbl.iter
        (fun fd c ->
          if c.wbytes > 0 then writes := fd :: !writes;
          (* Backpressure: a connection whose peer is not consuming its
             responses (queue past the high-water mark) stops being
             read; the others keep their full readiness budget. *)
          if
            (not !draining) && (not c.closing)
            && c.wbytes < config.write_highwater
          then reads := fd :: !reads)
        conns;
      let timeout =
        if !draining then 0.05
        else if config.read_timeout_s > 0. && Hashtbl.length conns > 0 then begin
          let slack =
            Hashtbl.fold
              (fun _ c acc ->
                if c.closing then acc
                else
                  Float.min acc
                    (config.read_timeout_s
                    -. ns_to_s (Int64.sub now c.last_read_ns)))
              conns infinity
          in
          if Float.is_finite slack then Float.max 0.001 slack else -1.
        end
        else -1.
      in
      match Unix.select !reads !writes [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | rs, ws, _ ->
          List.iter
            (fun fd ->
              match Hashtbl.find_opt conns fd with
              | Some c -> (
                  match flush_writes c with `Ok -> () | `Dead -> destroy c)
              | None -> ())
            ws;
          List.iter
            (fun fd ->
              if fd = sock then accept_ready ()
              else
                match Hashtbl.find_opt conns fd with
                | Some c when not c.closing ->
                    read_conn c;
                    (* Opportunistic flush: the response usually fits the
                       socket buffer, so it goes out without waiting for
                       the next readiness round. *)
                    if Hashtbl.mem conns fd && c.wbytes > 0 then (
                      match flush_writes c with
                      | `Ok -> ()
                      | `Dead -> destroy c)
                | _ -> ())
            rs;
          loop ()
    end
  in
  loop ();
  Hashtbl.iter
    (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    conns;
  try Unix.close sock with Unix.Unix_error _ -> ()

let engine_handlers engine =
  {
    on_request = (fun req -> Engine.handle_request engine req);
    on_batch =
      (fun ~name records -> Engine.handle_ingest_many engine ~name records);
  }

let serve ?config engine sock =
  serve_handlers ?config (engine_handlers engine) sock

type t = { d_port : int; dom : unit Domain.t }

let start_handlers ?(config = default_config) handlers =
  let sock, port = listen_tcp ~backlog:config.backlog ~port:0 () in
  {
    d_port = port;
    dom = Domain.spawn (fun () -> serve_handlers ~config handlers sock);
  }

let start ?config engine = start_handlers ?config (engine_handlers engine)
let port t = t.d_port
let join t = Domain.join t.dom
