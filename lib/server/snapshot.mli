(** Full-store persistence, so a daemon restart starts warm.

    Format (line-oriented, [#]-comments and blank lines ignored, floats
    as lossless hex literals — the {!Sampling.Io} house style):

    {v
    optsample-snapshot 1 <master> <mode> <tau-hex> <k> <p-hex> <flush_every> <n>
    instance <name> <id> <tau-hex> <k> <p-hex>
    <key> <weight-hex>        (accumulated weight, ascending keys)
    ...
    end
    ...                       (n instance sections, in id order)
    v}

    Loading recreates the store (instances in id order, so ids — and
    therefore seed derivations — are preserved) and {e replays} each
    key's accumulated weight as one record. PPS, bottom-k and binary
    summaries depend only on the accumulated weights and the recorded
    seeds, so after the replay they are bit-identical to the summaries at
    snapshot time — re-queries answer identically. The VarOpt reservoir
    is rebuilt by the same replay (its stream randomness is consumed
    per-record, so it is a fresh draw over the aggregated stream, not the
    original reservoir); the per-instance [records] counter likewise
    restarts at the key count.

    The shard count is {e not} part of the snapshot: summaries never
    depend on it, so the loader picks its own (default
    {!Store.default_config}[.shards], override with [?shards]). *)

val magic : string
(** ["optsample-snapshot 1"]. *)

val to_string : Store.t -> string
(** Serialize (flushes the store first). *)

val of_string_r :
  ?pool:Numerics.Pool.t ->
  ?shards:int ->
  string ->
  (Store.t, Sampling.Io.parse_error) result
(** Parse and replay. Strict: bad headers, malformed entries, duplicate
    keys, non-positive weights, out-of-order instance ids and trailing
    garbage are all structured errors. *)

val write : Store.t -> path:string -> (int, string) result
(** Write to a file {e atomically} (via {!Durable.write_file_atomic}:
    tmp + fsync + rename, so a crash mid-write never damages a previous
    snapshot at the same path); returns the number of instances
    persisted. File system errors come back as [Error]. *)

val load :
  ?pool:Numerics.Pool.t ->
  ?shards:int ->
  string ->
  (Store.t, Sampling.Io.parse_error) result
(** [load path]: {!of_string_r} on the file's contents. *)
