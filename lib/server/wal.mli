(** Append-only, CRC-guarded op log composing with {!Snapshot} for
    exact crash recovery: checkpoint = full snapshot, WAL = delta since.

    Mutating requests (CREATE / INGEST / FLUSH) are framed as
    [[len:int32le][crc32:int32le][payload]] and appended to segment
    files [wal-<epoch>-<seq>.log] under the log directory; a
    {!checkpoint} writes [checkpoint-<epoch>.snap] atomically, bumps the
    epoch, and prunes everything older than one fallback generation.

    Because summaries are deterministic functions of the accumulated
    per-key weights and the recorded seeds (see {!Store}), replaying the
    log against the checkpoint reproduces query answers {e bit for bit}
    — the crash-recovery property suite in [test/test_wal.ml] enforces
    this at injected torn-write / fsync-failure / mid-checkpoint crash
    points. *)

type fsync_policy =
  | Always  (** fsync after every append — no acknowledged record is ever lost *)
  | Interval of int  (** fsync every [n] appends — bounded loss window *)
  | Never  (** leave flushing to the OS — crash loses the unsynced tail *)

val fsync_policy_to_string : fsync_policy -> string
val fsync_policy_of_string : string -> (fsync_policy, string) result
(** Accepts ["always"], ["never"], ["interval=N"] (or a bare positive
    integer, meaning [Interval]). *)

type config = {
  dir : string;  (** log directory (created on {!recover} if missing) *)
  fsync : fsync_policy;
  segment_bytes : int;  (** rotate the segment once it reaches this size *)
}

val default_config : dir:string -> config
(** [fsync = Always], [segment_bytes = 4 MiB]. *)

type op =
  | Create of { name : string; tau : float; k : int; p : float }
      (** resolved parameters — defaults applied {e before} logging, so
          replay is independent of the server's defaults *)
  | Ingest of { name : string; key : int; weight : float }
  | Ingest_batch of { name : string; records : (int * float) array }
      (** one [INGESTN] batch as {e one} frame — the group commit: a
          single append (hence a single fsync under [Always], a single
          interval tick under [Interval]) covers the whole batch, and a
          torn tail drops the batch atomically (a frame is all-or-nothing
          by construction, so no partial batch can ever replay) *)
  | Flush

(** {2 Frames (exposed for tests and the bench kernels)} *)

val max_payload : int
(** Largest payload a frame may carry (64 KiB); [Protocol.max_batch] is
    sized so a full batch always fits. *)

val encode_frame : op -> string

type decoded =
  | Frame of op * int  (** the op and the next frame's byte offset *)
  | End  (** clean end of the segment *)
  | Torn of string  (** malformed suffix: torn tail or corruption *)

val decode_at : string -> int -> decoded

(** {2 The live log} *)

type t

val append : t -> op -> (unit, string) result
(** Frame and append one op, honoring the fsync policy and rotating the
    segment when full. [Error] means the op is {e not} durable and must
    not be applied or acknowledged (write-ahead discipline). *)

val checkpoint : t -> Store.t -> (int, string) result
(** Write a snapshot of the store as the next epoch's checkpoint
    (atomically: tmp + fsync + rename), start a fresh segment, and prune
    files older than one fallback generation. Returns the new epoch. *)

val close : t -> unit
(** Final fsync (unless [Never]) and close the current segment. *)

val dir : t -> string
val epoch : t -> int
val entries : t -> int
(** Ops appended through this handle (not counting replayed history). *)

val segment : t -> string
(** Path of the segment currently being appended. *)

(** {2 Recovery} *)

type recovery = {
  store : Store.t;  (** checkpoint + replayed delta, flushed *)
  wal : t;  (** attached for further appends, continuing the log *)
  checkpoint_epoch : int option;  (** [None] on a cold start *)
  replayed : int;  (** ops re-applied from segments *)
  truncated_bytes : int;  (** torn tail dropped from the final segment *)
  skipped_checkpoints : string list;
      (** damaged checkpoints, quarantined as [<file>.corrupt], with the
          parse diagnostic *)
}

val recover :
  ?pool:Numerics.Pool.t ->
  ?store_cfg:Store.config ->
  config ->
  (recovery, string) result
(** Rebuild the store from the newest usable checkpoint plus its delta.
    A damaged newest checkpoint is quarantined and the previous
    generation takes over (its segments were kept for exactly this); a
    malformed suffix of the {e final} segment is treated as a torn tail,
    dropped, and physically truncated — malformed bytes anywhere else
    are an error, never silently skipped. [store_cfg] (default
    {!Store.default_config}) supplies the configuration when no
    checkpoint exists, and the shard count always. *)
