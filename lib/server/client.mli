(** Line-protocol client for the daemon (tests, the [optsample client]
    subcommand, and the replay bench).

    [connect_*] checks the server greeting — wrong protocol version or a
    non-greeting first line is an [Error], per the versioning contract in
    {!Protocol}. *)

type t

val connect_tcp : ?host:string -> port:int -> unit -> (t, string) result
val connect_unix : path:string -> (t, string) result

val request : t -> string -> (string, string) result
(** Send one request line, read the one-line JSON response. [Error] on a
    closed connection. The response is returned verbatim — inspect it
    with {!Protocol.json_field} / {!Protocol.json_float_field} /
    {!Protocol.json_ok}. *)

val close : t -> unit
