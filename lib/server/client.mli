(** Line-protocol client for the daemon (tests, the [optsample client]
    subcommand, and the replay bench).

    [connect_*] checks the server greeting — wrong protocol version or a
    non-greeting first line is an [Error], per the versioning contract in
    {!Protocol}. *)

type t

val connect : Unix.sockaddr -> (t, string) result
val connect_tcp : ?host:string -> port:int -> unit -> (t, string) result
val connect_unix : path:string -> (t, string) result

val request : t -> string -> (string, string) result
(** Send one request line, read the one-line JSON response. [Error] on a
    closed connection (the client remembers the drop; a later
    {!request_retry} reconnects, {!request} does not). The response is
    returned verbatim — inspect it with {!Protocol.json_field} /
    {!Protocol.json_float_field} / {!Protocol.json_ok}. *)

val request_lines : t -> string -> (string * string list, string) result
(** Send a request whose response may be multi-line (PULL, SYNC): read
    the JSON header, then exactly as many raw payload lines as its
    [lines] field announces. A response without a [lines] field (an
    error object, or any single-line response) returns with an empty
    payload list. A dropped connection is re-dialed once before the
    request; a drop {e mid-payload} is an [Error] (a half-read payload
    cannot be resumed). *)

(** {2 Retry} *)

type retry = {
  attempts : int;  (** total tries, including the first *)
  base_delay_ms : int;
  max_delay_ms : int;
  seed : int;  (** jitter stream seed — fix it for reproducible schedules *)
}

val default_retry : retry
(** [attempts = 5], [base_delay_ms = 10], [max_delay_ms = 2000],
    [seed = 42]. *)

val backoff_ms : Numerics.Prng.t -> retry -> attempt:int -> int
(** Exponential backoff with {e full} jitter: a uniform draw from
    [\[0, min (max_delay_ms, base_delay_ms * 2^attempt))]. Full jitter
    desynchronizes a thundering herd fastest; exposed for the schedule
    tests. *)

val clamp_hint_ms : retry -> attempt:int -> float -> int option
(** Validate a server's [retry_after_ms] hint: [None] for NaN, infinite
    or negative values (the hint is discarded and jittered backoff
    used), otherwise the hint clamped to this attempt's backoff envelope
    [min (max_delay_ms, base_delay_ms * 2^attempt)] — a confused or
    malicious server can speed a retry up but never stall the client
    past its own schedule. Exposed for the validation tests. *)

val request_retry :
  ?retry:retry -> ?sleep:(int -> unit) -> t -> string -> (string, string) result
(** {!request} with retries: a dropped connection is re-dialed (fresh
    socket, greeting re-checked) and a structured [kind="overloaded"]
    response backs off and resends — honoring the server's
    [retry_after_ms] hint when present, jittered backoff otherwise.
    Non-retryable responses (ok, or any other error) return immediately.
    [sleep] (milliseconds; default a [select]-based wait) is injectable
    so tests can record the schedule instead of waiting it out. *)

val ingest_many :
  ?retry:retry ->
  ?sleep:(int -> unit) ->
  t ->
  name:string ->
  (int * float) array ->
  (string, string) result
(** Batched ingest: the records are sent as [INGESTN] payloads
    ({!Protocol.batch_payload}, chunks of at most {!Protocol.max_batch})
    with {!request_retry} semantics per chunk — a shed or dropped batch
    is retried {e whole} (the server's all-or-nothing admission
    guarantees it was never half-applied). A batch that fits one chunk
    returns the server's response verbatim; larger inputs return a
    synthesized [{"ok":true,"ingested":<total>}] on success, or the
    first failing chunk's response/error (records after it unsent). An
    empty array sends nothing and answers [ingested = 0]. *)

val close : t -> unit
